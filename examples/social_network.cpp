/**
 * @file
 * SocialNet scenario: the workload the paper's introduction
 * motivates. Runs the 8 DeathStarBench-like SocialNet services under
 * bursty Alibaba-style load and compares all five architectures on
 * tail latency — printing, per service, where the latency goes
 * (queueing, reassignment, flushing, execution, I/O).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/social_network
 */

#include <cstdio>
#include <vector>

#include "cluster/experiment.h"

int
main()
{
    using namespace hh::cluster;

    std::printf("SocialNet under bursty load: where does the tail "
                "go?\n\n");

    const SystemKind kinds[] = {
        SystemKind::NoHarvest, SystemKind::HarvestBlock,
        SystemKind::HardHarvestBlock};

    for (const SystemKind kind : kinds) {
        SystemConfig cfg = makeSystem(kind);
        cfg.requestsPerVm = 300;
        cfg.accessSampling = 12;
        const ServerResults res = runServer(cfg, "PRank", 3);

        std::printf("=== %s ===\n", systemName(kind));
        std::printf("%-10s %8s %8s | mean ms: %8s %8s %8s %8s %8s\n",
                    "service", "p50", "p99", "queue", "reassign",
                    "flush", "exec", "io");
        for (const auto &s : res.services) {
            std::printf("%-10s %8.3f %8.3f | %17.3f %8.3f %8.3f "
                        "%8.3f %8.3f\n",
                        s.name.c_str(), s.p50Ms, s.p99Ms, s.queueMs,
                        s.reassignMs, s.flushMs, s.execMs, s.ioMs);
        }
        std::printf("avg p99 %.3f ms | busy cores %.1f/36 | "
                    "loans %llu reclaims %llu\n\n",
                    res.avgP99Ms(), res.avgBusyCores,
                    static_cast<unsigned long long>(res.coreLoans),
                    static_cast<unsigned long long>(
                        res.coreReclaims));
    }

    std::printf("Reading guide: software harvesting (Harvest-Block) "
                "shifts the tail into\nreassign+flush stalls; "
                "HardHarvest keeps both near zero while harvesting\n"
                "far more aggressively (see loans).\n");
    return 0;
}
