/**
 * @file
 * Batch-harvesting scenario: how much batch work can a Harvest VM
 * squeeze out of one server, per batch application, and what does it
 * cost the latency-critical side?
 *
 * Sweeps the 8 batch applications under HardHarvest-Block and prints
 * throughput (normalized to the NoHarvest 4-core baseline), achieved
 * core utilization, and the Primary-VM tail impact.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/batch_harvesting
 */

#include <cstdio>

#include "cluster/experiment.h"
#include "workload/batch.h"

int
main()
{
    using namespace hh::cluster;

    std::printf("Harvest VM throughput per batch application "
                "(HardHarvest-Block)\n\n");
    std::printf("%-10s %12s %12s %12s %12s\n", "app", "tasks/s",
                "vs NoHarv", "busy cores", "prim p99[ms]");

    for (const auto &app : hh::workload::batchApplications()) {
        SystemConfig base = makeSystem(SystemKind::NoHarvest);
        base.requestsPerVm = 150;
        base.accessSampling = 16;
        const auto no = runServer(base, app.name, 5);

        SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
        cfg.requestsPerVm = 150;
        cfg.accessSampling = 16;
        const auto hh = runServer(cfg, app.name, 5);

        std::printf("%-10s %12.0f %11.2fx %12.1f %12.3f\n",
                    app.name.c_str(), hh.batchThroughput,
                    hh.batchThroughput / no.batchThroughput,
                    hh.avgBusyCores, hh.avgP99Ms());
    }

    std::printf("\nEvery idle Primary cycle becomes batch work; "
                "memory-intensive apps gain\nless per borrowed core "
                "(restricted harvest region + shared LLC "
                "partition).\n");
    return 0;
}
