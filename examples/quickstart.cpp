/**
 * @file
 * Quickstart: simulate one server under NoHarvest and
 * HardHarvest-Block and compare Primary tail latency, Harvest
 * throughput, and core utilization.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "cluster/experiment.h"

int
main()
{
    using namespace hh::cluster;

    std::printf("HardHarvest quickstart: one server, 8 Primary VMs "
                "(4 cores each) + 1 Harvest VM\n\n");

    for (const SystemKind kind :
         {SystemKind::NoHarvest, SystemKind::HardHarvestBlock}) {
        SystemConfig cfg = makeSystem(kind);
        cfg.requestsPerVm = 300;  // quick demo run
        cfg.accessSampling = 12;  // coarse memory sampling for speed
        const ServerResults res = runServer(cfg, "BFS", /*seed=*/7);

        std::printf("=== %s ===\n", systemName(kind));
        std::printf("%-10s %10s %10s %10s\n", "service", "p50[ms]",
                    "p99[ms]", "count");
        for (const auto &s : res.services) {
            std::printf("%-10s %10.3f %10.3f %10llu\n",
                        s.name.c_str(), s.p50Ms, s.p99Ms,
                        static_cast<unsigned long long>(s.count));
        }
        std::printf("avg p99           : %.3f ms\n", res.avgP99Ms());
        std::printf("batch throughput  : %.1f tasks/s\n",
                    res.batchThroughput);
        std::printf("avg busy cores    : %.1f / 36\n",
                    res.avgBusyCores);
        std::printf("loans / reclaims  : %llu / %llu\n\n",
                    static_cast<unsigned long long>(res.coreLoans),
                    static_cast<unsigned long long>(res.coreReclaims));
    }
    return 0;
}
