/**
 * @file
 * Replacement-policy explorer: a small, self-contained tour of the
 * cache substrate's public API. Builds a way-partitioned cache,
 * streams a mix of shared and private lines through each policy, and
 * shows how Algorithm 1 steers shared state into the non-harvest
 * region and how it survives harvest-region flushes.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/replacement_explorer
 */

#include <cstdio>
#include <vector>

#include "cache/repl_belady.h"
#include "cache/set_assoc.h"
#include "sim/rng.h"

using namespace hh::cache;

namespace {

struct Ref
{
    Addr key;
    bool shared;
};

/** Mixed stream: a hot shared set plus a private streaming flood. */
std::vector<Ref>
makeStream(std::uint64_t seed)
{
    hh::sim::Rng rng(seed, 1);
    hh::sim::ZipfSampler hot(64, 0.9);
    std::vector<Ref> refs;
    Addr next_private = 1 << 20;
    for (int i = 0; i < 40000; ++i) {
        if (rng.bernoulli(0.55))
            refs.push_back({hot.sample(rng), true});
        else
            refs.push_back({next_private++, false});
    }
    return refs;
}

struct Outcome
{
    double hitRate;
    double sharedInNonHarvest; //!< Fraction of shared entries there.
    double survivedFlush;      //!< Shared hit rate right after flush.
};

Outcome
explore(const std::vector<Ref> &refs, ReplKind kind)
{
    SetAssocArray cache(Geometry{16, 8, 1}, makePolicy(kind));
    cache.setHarvestWayCount(4);
    if (kind == ReplKind::HardHarvest)
        cache.setCandidateFraction(0.75);

    std::uint64_t shared_hits = 0;
    std::uint64_t shared_refs = 0;
    for (const auto &r : refs) {
        const bool hit = cache.access(r.key, r.shared).hit;
        if (r.shared) {
            ++shared_refs;
            shared_hits += hit ? 1 : 0;
        }
    }

    // Where did the shared entries end up?
    std::uint64_t shared_nh = 0;
    std::uint64_t shared_total = 0;
    const WayMask harvest = cache.harvestWays();
    for (std::uint32_t s = 0; s < cache.geometry().sets; ++s) {
        for (unsigned w = 0; w < cache.geometry().ways; ++w) {
            const auto &ws = cache.wayState(s, w);
            if (ws.valid && ws.shared) {
                ++shared_total;
                if (!(harvest & (WayMask{1} << w)))
                    ++shared_nh;
            }
        }
    }

    // Flush the harvest region (a core reassignment) and measure how
    // much of the hot shared set still hits.
    cache.flushWays(harvest);
    cache.resetStats();
    std::uint64_t probe_hits = 0;
    for (Addr k = 0; k < 64; ++k)
        probe_hits += cache.access(k, true).hit ? 1 : 0;

    Outcome o;
    o.hitRate = static_cast<double>(shared_hits) /
                static_cast<double>(shared_refs);
    o.sharedInNonHarvest =
        shared_total ? static_cast<double>(shared_nh) /
                           static_cast<double>(shared_total)
                     : 0.0;
    o.survivedFlush = static_cast<double>(probe_hits) / 64.0;
    return o;
}

} // namespace

int
main()
{
    std::printf("Replacement explorer: 16-set x 8-way cache, 4 "
                "harvest ways,\n55%% hot-shared / 45%% streaming-"
                "private references\n\n");
    std::printf("%-12s %12s %20s %16s\n", "policy", "shared hits",
                "shared in non-harv", "survive flush");

    const auto refs = makeStream(7);
    for (const ReplKind kind :
         {ReplKind::LRU, ReplKind::RRIP, ReplKind::HardHarvest}) {
        const auto o = explore(refs, kind);
        std::printf("%-12s %11.1f%% %19.1f%% %15.1f%%\n",
                    replKindName(kind), o.hitRate * 100,
                    o.sharedInNonHarvest * 100,
                    o.survivedFlush * 100);
    }

    std::printf("\nAlgorithm 1 concentrates shared (cross-"
                "invocation) state in the non-harvest\nways, so a "
                "core reassignment flush costs the Primary VM almost "
                "nothing.\n");
    return 0;
}
