file(REMOVE_RECURSE
  "CMakeFiles/sec67_core_utilization.dir/sec67_core_utilization.cpp.o"
  "CMakeFiles/sec67_core_utilization.dir/sec67_core_utilization.cpp.o.d"
  "sec67_core_utilization"
  "sec67_core_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec67_core_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
