# Empty dependencies file for sec67_core_utilization.
# This may be replaced when dependencies are built.
