# Empty compiler generated dependencies file for fig05_flush_overhead.
# This may be replaced when dependencies are built.
