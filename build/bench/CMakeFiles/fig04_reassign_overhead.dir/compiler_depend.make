# Empty compiler generated dependencies file for fig04_reassign_overhead.
# This may be replaced when dependencies are built.
