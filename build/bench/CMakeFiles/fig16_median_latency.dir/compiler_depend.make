# Empty compiler generated dependencies file for fig16_median_latency.
# This may be replaced when dependencies are built.
