file(REMOVE_RECURSE
  "CMakeFiles/fig16_median_latency.dir/fig16_median_latency.cpp.o"
  "CMakeFiles/fig16_median_latency.dir/fig16_median_latency.cpp.o.d"
  "fig16_median_latency"
  "fig16_median_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_median_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
