# Empty dependencies file for fig11_tail_latency.
# This may be replaced when dependencies are built.
