# Empty dependencies file for tab01_params.
# This may be replaced when dependencies are built.
