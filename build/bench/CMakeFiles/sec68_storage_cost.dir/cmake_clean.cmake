file(REMOVE_RECURSE
  "CMakeFiles/sec68_storage_cost.dir/sec68_storage_cost.cpp.o"
  "CMakeFiles/sec68_storage_cost.dir/sec68_storage_cost.cpp.o.d"
  "sec68_storage_cost"
  "sec68_storage_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec68_storage_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
