# Empty compiler generated dependencies file for sec68_storage_cost.
# This may be replaced when dependencies are built.
