# Empty dependencies file for fig03_util_timeseries.
# This may be replaced when dependencies are built.
