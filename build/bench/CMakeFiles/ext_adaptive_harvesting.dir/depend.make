# Empty dependencies file for ext_adaptive_harvesting.
# This may be replaced when dependencies are built.
