file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptive_harvesting.dir/ext_adaptive_harvesting.cpp.o"
  "CMakeFiles/ext_adaptive_harvesting.dir/ext_adaptive_harvesting.cpp.o.d"
  "ext_adaptive_harvesting"
  "ext_adaptive_harvesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive_harvesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
