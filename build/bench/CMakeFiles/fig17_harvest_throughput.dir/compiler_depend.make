# Empty compiler generated dependencies file for fig17_harvest_throughput.
# This may be replaced when dependencies are built.
