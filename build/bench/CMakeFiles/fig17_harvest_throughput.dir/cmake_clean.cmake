file(REMOVE_RECURSE
  "CMakeFiles/fig17_harvest_throughput.dir/fig17_harvest_throughput.cpp.o"
  "CMakeFiles/fig17_harvest_throughput.dir/fig17_harvest_throughput.cpp.o.d"
  "fig17_harvest_throughput"
  "fig17_harvest_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_harvest_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
