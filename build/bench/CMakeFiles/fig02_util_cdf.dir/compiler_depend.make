# Empty compiler generated dependencies file for fig02_util_cdf.
# This may be replaced when dependencies are built.
