file(REMOVE_RECURSE
  "CMakeFiles/fig19_evict_candidates.dir/fig19_evict_candidates.cpp.o"
  "CMakeFiles/fig19_evict_candidates.dir/fig19_evict_candidates.cpp.o.d"
  "fig19_evict_candidates"
  "fig19_evict_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_evict_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
