# Empty dependencies file for fig19_evict_candidates.
# This may be replaced when dependencies are built.
