# Empty dependencies file for fig12_opt_breakdown.
# This may be replaced when dependencies are built.
