# Empty dependencies file for fig15_noharvest_opts.
# This may be replaced when dependencies are built.
