file(REMOVE_RECURSE
  "CMakeFiles/fig15_noharvest_opts.dir/fig15_noharvest_opts.cpp.o"
  "CMakeFiles/fig15_noharvest_opts.dir/fig15_noharvest_opts.cpp.o.d"
  "fig15_noharvest_opts"
  "fig15_noharvest_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_noharvest_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
