# Empty dependencies file for fig14_l2_hitrate.
# This may be replaced when dependencies are built.
