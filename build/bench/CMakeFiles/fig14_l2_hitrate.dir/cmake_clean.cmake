file(REMOVE_RECURSE
  "CMakeFiles/fig14_l2_hitrate.dir/fig14_l2_hitrate.cpp.o"
  "CMakeFiles/fig14_l2_hitrate.dir/fig14_l2_hitrate.cpp.o.d"
  "fig14_l2_hitrate"
  "fig14_l2_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_l2_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
