# Empty dependencies file for fig13_sched_ctxtsw.
# This may be replaced when dependencies are built.
