file(REMOVE_RECURSE
  "CMakeFiles/fig13_sched_ctxtsw.dir/fig13_sched_ctxtsw.cpp.o"
  "CMakeFiles/fig13_sched_ctxtsw.dir/fig13_sched_ctxtsw.cpp.o.d"
  "fig13_sched_ctxtsw"
  "fig13_sched_ctxtsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sched_ctxtsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
