# Empty dependencies file for fig07_cache_fraction.
# This may be replaced when dependencies are built.
