file(REMOVE_RECURSE
  "CMakeFiles/fig07_cache_fraction.dir/fig07_cache_fraction.cpp.o"
  "CMakeFiles/fig07_cache_fraction.dir/fig07_cache_fraction.cpp.o.d"
  "fig07_cache_fraction"
  "fig07_cache_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cache_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
