# Empty dependencies file for fig18_llc_sensitivity.
# This may be replaced when dependencies are built.
