file(REMOVE_RECURSE
  "CMakeFiles/fig18_llc_sensitivity.dir/fig18_llc_sensitivity.cpp.o"
  "CMakeFiles/fig18_llc_sensitivity.dir/fig18_llc_sensitivity.cpp.o.d"
  "fig18_llc_sensitivity"
  "fig18_llc_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_llc_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
