file(REMOVE_RECURSE
  "CMakeFiles/replacement_explorer.dir/replacement_explorer.cpp.o"
  "CMakeFiles/replacement_explorer.dir/replacement_explorer.cpp.o.d"
  "replacement_explorer"
  "replacement_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replacement_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
