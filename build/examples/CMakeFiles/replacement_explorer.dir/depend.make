# Empty dependencies file for replacement_explorer.
# This may be replaced when dependencies are built.
