
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/batch_harvesting.cpp" "examples/CMakeFiles/batch_harvesting.dir/batch_harvesting.cpp.o" "gcc" "examples/CMakeFiles/batch_harvesting.dir/batch_harvesting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hh_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/hh_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hh_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hh_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hh_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
