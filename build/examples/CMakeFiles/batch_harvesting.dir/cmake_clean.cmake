file(REMOVE_RECURSE
  "CMakeFiles/batch_harvesting.dir/batch_harvesting.cpp.o"
  "CMakeFiles/batch_harvesting.dir/batch_harvesting.cpp.o.d"
  "batch_harvesting"
  "batch_harvesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_harvesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
