# Empty compiler generated dependencies file for batch_harvesting.
# This may be replaced when dependencies are built.
