# Empty dependencies file for hh_cluster.
# This may be replaced when dependencies are built.
