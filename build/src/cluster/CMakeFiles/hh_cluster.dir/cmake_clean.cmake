file(REMOVE_RECURSE
  "CMakeFiles/hh_cluster.dir/experiment.cc.o"
  "CMakeFiles/hh_cluster.dir/experiment.cc.o.d"
  "CMakeFiles/hh_cluster.dir/server.cc.o"
  "CMakeFiles/hh_cluster.dir/server.cc.o.d"
  "CMakeFiles/hh_cluster.dir/system_config.cc.o"
  "CMakeFiles/hh_cluster.dir/system_config.cc.o.d"
  "libhh_cluster.a"
  "libhh_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
