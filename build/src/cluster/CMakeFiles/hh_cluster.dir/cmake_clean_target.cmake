file(REMOVE_RECURSE
  "libhh_cluster.a"
)
