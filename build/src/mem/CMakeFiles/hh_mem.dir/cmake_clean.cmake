file(REMOVE_RECURSE
  "CMakeFiles/hh_mem.dir/dram.cc.o"
  "CMakeFiles/hh_mem.dir/dram.cc.o.d"
  "libhh_mem.a"
  "libhh_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
