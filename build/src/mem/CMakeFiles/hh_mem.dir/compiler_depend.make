# Empty compiler generated dependencies file for hh_mem.
# This may be replaced when dependencies are built.
