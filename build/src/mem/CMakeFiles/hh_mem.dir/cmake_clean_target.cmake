file(REMOVE_RECURSE
  "libhh_mem.a"
)
