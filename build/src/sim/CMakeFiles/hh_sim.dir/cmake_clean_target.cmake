file(REMOVE_RECURSE
  "libhh_sim.a"
)
