file(REMOVE_RECURSE
  "CMakeFiles/hh_sim.dir/event_queue.cc.o"
  "CMakeFiles/hh_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/hh_sim.dir/log.cc.o"
  "CMakeFiles/hh_sim.dir/log.cc.o.d"
  "CMakeFiles/hh_sim.dir/rng.cc.o"
  "CMakeFiles/hh_sim.dir/rng.cc.o.d"
  "CMakeFiles/hh_sim.dir/simulator.cc.o"
  "CMakeFiles/hh_sim.dir/simulator.cc.o.d"
  "libhh_sim.a"
  "libhh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
