# Empty compiler generated dependencies file for hh_sim.
# This may be replaced when dependencies are built.
