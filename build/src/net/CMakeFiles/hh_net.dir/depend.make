# Empty dependencies file for hh_net.
# This may be replaced when dependencies are built.
