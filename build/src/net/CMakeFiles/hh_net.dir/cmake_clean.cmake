file(REMOVE_RECURSE
  "CMakeFiles/hh_net.dir/fabric.cc.o"
  "CMakeFiles/hh_net.dir/fabric.cc.o.d"
  "CMakeFiles/hh_net.dir/nic.cc.o"
  "CMakeFiles/hh_net.dir/nic.cc.o.d"
  "libhh_net.a"
  "libhh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
