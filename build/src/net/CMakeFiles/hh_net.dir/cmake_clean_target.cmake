file(REMOVE_RECURSE
  "libhh_net.a"
)
