file(REMOVE_RECURSE
  "CMakeFiles/hh_cpu.dir/core.cc.o"
  "CMakeFiles/hh_cpu.dir/core.cc.o.d"
  "libhh_cpu.a"
  "libhh_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
