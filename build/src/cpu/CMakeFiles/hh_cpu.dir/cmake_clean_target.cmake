file(REMOVE_RECURSE
  "libhh_cpu.a"
)
