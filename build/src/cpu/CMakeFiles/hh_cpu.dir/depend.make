# Empty dependencies file for hh_cpu.
# This may be replaced when dependencies are built.
