file(REMOVE_RECURSE
  "CMakeFiles/hh_noc.dir/control_tree.cc.o"
  "CMakeFiles/hh_noc.dir/control_tree.cc.o.d"
  "CMakeFiles/hh_noc.dir/mesh.cc.o"
  "CMakeFiles/hh_noc.dir/mesh.cc.o.d"
  "libhh_noc.a"
  "libhh_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
