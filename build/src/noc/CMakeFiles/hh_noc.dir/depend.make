# Empty dependencies file for hh_noc.
# This may be replaced when dependencies are built.
