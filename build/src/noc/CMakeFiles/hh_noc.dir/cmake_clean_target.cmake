file(REMOVE_RECURSE
  "libhh_noc.a"
)
