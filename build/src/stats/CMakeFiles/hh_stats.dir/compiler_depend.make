# Empty compiler generated dependencies file for hh_stats.
# This may be replaced when dependencies are built.
