file(REMOVE_RECURSE
  "libhh_stats.a"
)
