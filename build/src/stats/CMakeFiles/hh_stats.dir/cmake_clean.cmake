file(REMOVE_RECURSE
  "CMakeFiles/hh_stats.dir/histogram.cc.o"
  "CMakeFiles/hh_stats.dir/histogram.cc.o.d"
  "CMakeFiles/hh_stats.dir/percentile.cc.o"
  "CMakeFiles/hh_stats.dir/percentile.cc.o.d"
  "CMakeFiles/hh_stats.dir/utilization.cc.o"
  "CMakeFiles/hh_stats.dir/utilization.cc.o.d"
  "libhh_stats.a"
  "libhh_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
