file(REMOVE_RECURSE
  "CMakeFiles/hh_workload.dir/address_space.cc.o"
  "CMakeFiles/hh_workload.dir/address_space.cc.o.d"
  "CMakeFiles/hh_workload.dir/alibaba.cc.o"
  "CMakeFiles/hh_workload.dir/alibaba.cc.o.d"
  "CMakeFiles/hh_workload.dir/batch.cc.o"
  "CMakeFiles/hh_workload.dir/batch.cc.o.d"
  "CMakeFiles/hh_workload.dir/loadgen.cc.o"
  "CMakeFiles/hh_workload.dir/loadgen.cc.o.d"
  "CMakeFiles/hh_workload.dir/service.cc.o"
  "CMakeFiles/hh_workload.dir/service.cc.o.d"
  "libhh_workload.a"
  "libhh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
