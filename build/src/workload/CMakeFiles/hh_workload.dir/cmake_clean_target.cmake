file(REMOVE_RECURSE
  "libhh_workload.a"
)
