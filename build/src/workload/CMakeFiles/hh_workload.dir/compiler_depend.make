# Empty compiler generated dependencies file for hh_workload.
# This may be replaced when dependencies are built.
