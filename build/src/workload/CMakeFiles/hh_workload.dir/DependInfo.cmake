
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/address_space.cc" "src/workload/CMakeFiles/hh_workload.dir/address_space.cc.o" "gcc" "src/workload/CMakeFiles/hh_workload.dir/address_space.cc.o.d"
  "/root/repo/src/workload/alibaba.cc" "src/workload/CMakeFiles/hh_workload.dir/alibaba.cc.o" "gcc" "src/workload/CMakeFiles/hh_workload.dir/alibaba.cc.o.d"
  "/root/repo/src/workload/batch.cc" "src/workload/CMakeFiles/hh_workload.dir/batch.cc.o" "gcc" "src/workload/CMakeFiles/hh_workload.dir/batch.cc.o.d"
  "/root/repo/src/workload/loadgen.cc" "src/workload/CMakeFiles/hh_workload.dir/loadgen.cc.o" "gcc" "src/workload/CMakeFiles/hh_workload.dir/loadgen.cc.o.d"
  "/root/repo/src/workload/service.cc" "src/workload/CMakeFiles/hh_workload.dir/service.cc.o" "gcc" "src/workload/CMakeFiles/hh_workload.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hh_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hh_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
