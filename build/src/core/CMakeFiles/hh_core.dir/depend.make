# Empty dependencies file for hh_core.
# This may be replaced when dependencies are built.
