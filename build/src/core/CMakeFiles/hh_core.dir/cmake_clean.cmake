file(REMOVE_RECURSE
  "CMakeFiles/hh_core.dir/context_memory.cc.o"
  "CMakeFiles/hh_core.dir/context_memory.cc.o.d"
  "CMakeFiles/hh_core.dir/controller.cc.o"
  "CMakeFiles/hh_core.dir/controller.cc.o.d"
  "CMakeFiles/hh_core.dir/harvest_mask.cc.o"
  "CMakeFiles/hh_core.dir/harvest_mask.cc.o.d"
  "CMakeFiles/hh_core.dir/queue_manager.cc.o"
  "CMakeFiles/hh_core.dir/queue_manager.cc.o.d"
  "CMakeFiles/hh_core.dir/rq.cc.o"
  "CMakeFiles/hh_core.dir/rq.cc.o.d"
  "CMakeFiles/hh_core.dir/storage_cost.cc.o"
  "CMakeFiles/hh_core.dir/storage_cost.cc.o.d"
  "CMakeFiles/hh_core.dir/vm_state.cc.o"
  "CMakeFiles/hh_core.dir/vm_state.cc.o.d"
  "libhh_core.a"
  "libhh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
