file(REMOVE_RECURSE
  "libhh_core.a"
)
