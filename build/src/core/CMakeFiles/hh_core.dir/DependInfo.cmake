
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/context_memory.cc" "src/core/CMakeFiles/hh_core.dir/context_memory.cc.o" "gcc" "src/core/CMakeFiles/hh_core.dir/context_memory.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/hh_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/hh_core.dir/controller.cc.o.d"
  "/root/repo/src/core/harvest_mask.cc" "src/core/CMakeFiles/hh_core.dir/harvest_mask.cc.o" "gcc" "src/core/CMakeFiles/hh_core.dir/harvest_mask.cc.o.d"
  "/root/repo/src/core/queue_manager.cc" "src/core/CMakeFiles/hh_core.dir/queue_manager.cc.o" "gcc" "src/core/CMakeFiles/hh_core.dir/queue_manager.cc.o.d"
  "/root/repo/src/core/rq.cc" "src/core/CMakeFiles/hh_core.dir/rq.cc.o" "gcc" "src/core/CMakeFiles/hh_core.dir/rq.cc.o.d"
  "/root/repo/src/core/storage_cost.cc" "src/core/CMakeFiles/hh_core.dir/storage_cost.cc.o" "gcc" "src/core/CMakeFiles/hh_core.dir/storage_cost.cc.o.d"
  "/root/repo/src/core/vm_state.cc" "src/core/CMakeFiles/hh_core.dir/vm_state.cc.o" "gcc" "src/core/CMakeFiles/hh_core.dir/vm_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hh_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/hh_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hh_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
