
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/config.cc" "src/cache/CMakeFiles/hh_cache.dir/config.cc.o" "gcc" "src/cache/CMakeFiles/hh_cache.dir/config.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/cache/CMakeFiles/hh_cache.dir/hierarchy.cc.o" "gcc" "src/cache/CMakeFiles/hh_cache.dir/hierarchy.cc.o.d"
  "/root/repo/src/cache/repl_belady.cc" "src/cache/CMakeFiles/hh_cache.dir/repl_belady.cc.o" "gcc" "src/cache/CMakeFiles/hh_cache.dir/repl_belady.cc.o.d"
  "/root/repo/src/cache/repl_cdp.cc" "src/cache/CMakeFiles/hh_cache.dir/repl_cdp.cc.o" "gcc" "src/cache/CMakeFiles/hh_cache.dir/repl_cdp.cc.o.d"
  "/root/repo/src/cache/repl_hardharvest.cc" "src/cache/CMakeFiles/hh_cache.dir/repl_hardharvest.cc.o" "gcc" "src/cache/CMakeFiles/hh_cache.dir/repl_hardharvest.cc.o.d"
  "/root/repo/src/cache/repl_lru.cc" "src/cache/CMakeFiles/hh_cache.dir/repl_lru.cc.o" "gcc" "src/cache/CMakeFiles/hh_cache.dir/repl_lru.cc.o.d"
  "/root/repo/src/cache/repl_rrip.cc" "src/cache/CMakeFiles/hh_cache.dir/repl_rrip.cc.o" "gcc" "src/cache/CMakeFiles/hh_cache.dir/repl_rrip.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/cache/CMakeFiles/hh_cache.dir/replacement.cc.o" "gcc" "src/cache/CMakeFiles/hh_cache.dir/replacement.cc.o.d"
  "/root/repo/src/cache/set_assoc.cc" "src/cache/CMakeFiles/hh_cache.dir/set_assoc.cc.o" "gcc" "src/cache/CMakeFiles/hh_cache.dir/set_assoc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hh_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
