file(REMOVE_RECURSE
  "CMakeFiles/hh_cache.dir/config.cc.o"
  "CMakeFiles/hh_cache.dir/config.cc.o.d"
  "CMakeFiles/hh_cache.dir/hierarchy.cc.o"
  "CMakeFiles/hh_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/hh_cache.dir/repl_belady.cc.o"
  "CMakeFiles/hh_cache.dir/repl_belady.cc.o.d"
  "CMakeFiles/hh_cache.dir/repl_cdp.cc.o"
  "CMakeFiles/hh_cache.dir/repl_cdp.cc.o.d"
  "CMakeFiles/hh_cache.dir/repl_hardharvest.cc.o"
  "CMakeFiles/hh_cache.dir/repl_hardharvest.cc.o.d"
  "CMakeFiles/hh_cache.dir/repl_lru.cc.o"
  "CMakeFiles/hh_cache.dir/repl_lru.cc.o.d"
  "CMakeFiles/hh_cache.dir/repl_rrip.cc.o"
  "CMakeFiles/hh_cache.dir/repl_rrip.cc.o.d"
  "CMakeFiles/hh_cache.dir/replacement.cc.o"
  "CMakeFiles/hh_cache.dir/replacement.cc.o.d"
  "CMakeFiles/hh_cache.dir/set_assoc.cc.o"
  "CMakeFiles/hh_cache.dir/set_assoc.cc.o.d"
  "libhh_cache.a"
  "libhh_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
