file(REMOVE_RECURSE
  "libhh_cache.a"
)
