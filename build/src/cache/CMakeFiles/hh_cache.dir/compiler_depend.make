# Empty compiler generated dependencies file for hh_cache.
# This may be replaced when dependencies are built.
