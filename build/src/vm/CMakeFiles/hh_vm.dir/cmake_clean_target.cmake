file(REMOVE_RECURSE
  "libhh_vm.a"
)
