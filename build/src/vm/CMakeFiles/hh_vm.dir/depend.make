# Empty dependencies file for hh_vm.
# This may be replaced when dependencies are built.
