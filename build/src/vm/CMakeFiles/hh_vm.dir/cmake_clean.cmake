file(REMOVE_RECURSE
  "CMakeFiles/hh_vm.dir/hypervisor.cc.o"
  "CMakeFiles/hh_vm.dir/hypervisor.cc.o.d"
  "CMakeFiles/hh_vm.dir/sw_harvest.cc.o"
  "CMakeFiles/hh_vm.dir/sw_harvest.cc.o.d"
  "CMakeFiles/hh_vm.dir/vm.cc.o"
  "CMakeFiles/hh_vm.dir/vm.cc.o.d"
  "libhh_vm.a"
  "libhh_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
