# Empty compiler generated dependencies file for test_vm_state.
# This may be replaced when dependencies are built.
