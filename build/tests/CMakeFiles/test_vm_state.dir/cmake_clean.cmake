file(REMOVE_RECURSE
  "CMakeFiles/test_vm_state.dir/test_vm_state.cpp.o"
  "CMakeFiles/test_vm_state.dir/test_vm_state.cpp.o.d"
  "test_vm_state"
  "test_vm_state.pdb"
  "test_vm_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
