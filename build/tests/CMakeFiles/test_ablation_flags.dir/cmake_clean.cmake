file(REMOVE_RECURSE
  "CMakeFiles/test_ablation_flags.dir/test_ablation_flags.cpp.o"
  "CMakeFiles/test_ablation_flags.dir/test_ablation_flags.cpp.o.d"
  "test_ablation_flags"
  "test_ablation_flags.pdb"
  "test_ablation_flags[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ablation_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
