# Empty compiler generated dependencies file for test_ablation_flags.
# This may be replaced when dependencies are built.
