file(REMOVE_RECURSE
  "CMakeFiles/test_rq.dir/test_rq.cpp.o"
  "CMakeFiles/test_rq.dir/test_rq.cpp.o.d"
  "test_rq"
  "test_rq.pdb"
  "test_rq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
