# Empty dependencies file for test_rq.
# This may be replaced when dependencies are built.
