# Empty dependencies file for test_queue_manager.
# This may be replaced when dependencies are built.
