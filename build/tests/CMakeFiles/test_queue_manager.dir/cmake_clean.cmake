file(REMOVE_RECURSE
  "CMakeFiles/test_queue_manager.dir/test_queue_manager.cpp.o"
  "CMakeFiles/test_queue_manager.dir/test_queue_manager.cpp.o.d"
  "test_queue_manager"
  "test_queue_manager.pdb"
  "test_queue_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
