# Empty compiler generated dependencies file for test_repl_policies.
# This may be replaced when dependencies are built.
