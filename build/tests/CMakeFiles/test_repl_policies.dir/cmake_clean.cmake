file(REMOVE_RECURSE
  "CMakeFiles/test_repl_policies.dir/test_repl_policies.cpp.o"
  "CMakeFiles/test_repl_policies.dir/test_repl_policies.cpp.o.d"
  "test_repl_policies"
  "test_repl_policies.pdb"
  "test_repl_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repl_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
