file(REMOVE_RECURSE
  "CMakeFiles/test_harvest_mask.dir/test_harvest_mask.cpp.o"
  "CMakeFiles/test_harvest_mask.dir/test_harvest_mask.cpp.o.d"
  "test_harvest_mask"
  "test_harvest_mask.pdb"
  "test_harvest_mask[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harvest_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
