# Empty dependencies file for test_alibaba.
# This may be replaced when dependencies are built.
