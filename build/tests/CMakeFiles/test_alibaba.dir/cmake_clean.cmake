file(REMOVE_RECURSE
  "CMakeFiles/test_alibaba.dir/test_alibaba.cpp.o"
  "CMakeFiles/test_alibaba.dir/test_alibaba.cpp.o.d"
  "test_alibaba"
  "test_alibaba.pdb"
  "test_alibaba[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alibaba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
