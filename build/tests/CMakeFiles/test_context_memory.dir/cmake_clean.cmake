file(REMOVE_RECURSE
  "CMakeFiles/test_context_memory.dir/test_context_memory.cpp.o"
  "CMakeFiles/test_context_memory.dir/test_context_memory.cpp.o.d"
  "test_context_memory"
  "test_context_memory.pdb"
  "test_context_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
