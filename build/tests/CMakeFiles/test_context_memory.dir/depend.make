# Empty dependencies file for test_context_memory.
# This may be replaced when dependencies are built.
