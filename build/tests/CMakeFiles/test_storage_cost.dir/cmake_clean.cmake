file(REMOVE_RECURSE
  "CMakeFiles/test_storage_cost.dir/test_storage_cost.cpp.o"
  "CMakeFiles/test_storage_cost.dir/test_storage_cost.cpp.o.d"
  "test_storage_cost"
  "test_storage_cost.pdb"
  "test_storage_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
