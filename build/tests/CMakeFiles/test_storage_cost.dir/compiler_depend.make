# Empty compiler generated dependencies file for test_storage_cost.
# This may be replaced when dependencies are built.
