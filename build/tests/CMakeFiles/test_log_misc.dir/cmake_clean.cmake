file(REMOVE_RECURSE
  "CMakeFiles/test_log_misc.dir/test_log_misc.cpp.o"
  "CMakeFiles/test_log_misc.dir/test_log_misc.cpp.o.d"
  "test_log_misc"
  "test_log_misc.pdb"
  "test_log_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
