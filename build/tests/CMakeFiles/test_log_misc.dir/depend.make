# Empty dependencies file for test_log_misc.
# This may be replaced when dependencies are built.
