file(REMOVE_RECURSE
  "CMakeFiles/test_belady.dir/test_belady.cpp.o"
  "CMakeFiles/test_belady.dir/test_belady.cpp.o.d"
  "test_belady"
  "test_belady.pdb"
  "test_belady[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_belady.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
