file(REMOVE_RECURSE
  "CMakeFiles/test_vm_layout.dir/test_vm_layout.cpp.o"
  "CMakeFiles/test_vm_layout.dir/test_vm_layout.cpp.o.d"
  "test_vm_layout"
  "test_vm_layout.pdb"
  "test_vm_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
