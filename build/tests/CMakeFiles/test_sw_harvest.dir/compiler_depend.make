# Empty compiler generated dependencies file for test_sw_harvest.
# This may be replaced when dependencies are built.
