file(REMOVE_RECURSE
  "CMakeFiles/test_sw_harvest.dir/test_sw_harvest.cpp.o"
  "CMakeFiles/test_sw_harvest.dir/test_sw_harvest.cpp.o.d"
  "test_sw_harvest"
  "test_sw_harvest.pdb"
  "test_sw_harvest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sw_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
