/**
 * @file
 * Unit tests for VM descriptors and the per-server layout (§5).
 */

#include <gtest/gtest.h>

#include <set>

#include "vm/vm.h"

using namespace hh::vm;

TEST(VmLayout, PaperDefaultShape)
{
    const auto vms = defaultServerLayout();
    ASSERT_EQ(vms.size(), 9u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_TRUE(vms[i].isPrimary());
        EXPECT_EQ(vms[i].cores.size(), 4u);
    }
    EXPECT_FALSE(vms[8].isPrimary());
    EXPECT_EQ(vms[8].cores.size(), 4u);
    EXPECT_EQ(vms[8].type, VmType::Harvest);
}

TEST(VmLayout, CoresPartitionTheServer)
{
    const auto vms = defaultServerLayout(36, 8, 4);
    std::set<unsigned> cores;
    for (const auto &vm : vms)
        cores.insert(vm.cores.begin(), vm.cores.end());
    EXPECT_EQ(cores.size(), 36u);
    EXPECT_EQ(*cores.begin(), 0u);
    EXPECT_EQ(*cores.rbegin(), 35u);
}

TEST(VmLayout, IdsAndAsidsUnique)
{
    const auto vms = defaultServerLayout();
    std::set<std::uint32_t> ids;
    for (const auto &vm : vms) {
        EXPECT_EQ(vm.id, vm.asid);
        ids.insert(vm.id);
    }
    EXPECT_EQ(ids.size(), vms.size());
}

TEST(VmLayout, CustomShapes)
{
    const auto vms = defaultServerLayout(16, 3, 4);
    ASSERT_EQ(vms.size(), 4u);
    EXPECT_EQ(vms[3].cores.size(), 4u);
}

TEST(VmLayout, NoHarvestCoresFatal)
{
    EXPECT_THROW(defaultServerLayout(32, 8, 4), std::runtime_error);
}
