/**
 * @file
 * Unit tests for the page-level address-space model.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/address_space.h"

using hh::cache::Addr;
using hh::workload::AddressSpace;

TEST(AddressSpace, RegionsAreDisjoint)
{
    AddressSpace s(1, 4, 4);
    std::set<Addr> pages;
    for (std::uint32_t i = 0; i < 4; ++i) {
        pages.insert(s.codePage(i));
        pages.insert(s.sharedDataPage(i));
    }
    for (Addr p : s.allocPrivatePages(4))
        pages.insert(p);
    EXPECT_EQ(pages.size(), 12u);
}

TEST(AddressSpace, DifferentAsidsNeverAlias)
{
    AddressSpace a(1, 8, 8);
    AddressSpace b(2, 8, 8);
    std::set<Addr> pages;
    for (std::uint32_t i = 0; i < 8; ++i) {
        pages.insert(a.codePage(i));
        pages.insert(b.codePage(i));
        pages.insert(a.sharedDataPage(i));
        pages.insert(b.sharedDataPage(i));
    }
    EXPECT_EQ(pages.size(), 32u);
}

TEST(AddressSpace, PrivatePagesNeverRecycled)
{
    AddressSpace s(1, 1, 1);
    const auto first = s.allocPrivatePages(3);
    const auto second = s.allocPrivatePages(3);
    std::set<Addr> all(first.begin(), first.end());
    all.insert(second.begin(), second.end());
    EXPECT_EQ(all.size(), 6u);
    EXPECT_EQ(s.privatePagesAllocated(), 6u);
}

TEST(AddressSpace, OutOfRangePanics)
{
    AddressSpace s(1, 2, 2);
    EXPECT_THROW(s.codePage(2), std::logic_error);
    EXPECT_THROW(s.sharedDataPage(2), std::logic_error);
}

TEST(AddressSpace, NoCodePagesFatal)
{
    EXPECT_THROW(AddressSpace(1, 0, 4), std::runtime_error);
}

TEST(AddressSpace, CountsExposed)
{
    AddressSpace s(9, 3, 5);
    EXPECT_EQ(s.codePageCount(), 3u);
    EXPECT_EQ(s.sharedDataPageCount(), 5u);
    EXPECT_EQ(s.asid(), 9u);
}
