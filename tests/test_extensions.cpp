/**
 * @file
 * Tests for the CDP replacement variant and the §4.1.5 future-work
 * harvesting extensions (adaptive block-harvesting, hardware
 * emergency buffer).
 */

#include <gtest/gtest.h>

#include "cache/repl_cdp.h"
#include "cache/set_assoc.h"
#include "cluster/experiment.h"

using namespace hh::cache;
using namespace hh::cluster;

namespace {

SystemConfig
tiny(SystemKind kind)
{
    SystemConfig cfg = makeSystem(kind);
    cfg.requestsPerVm = 60;
    cfg.accessSampling = 32;
    cfg.seed = 11;
    return cfg;
}

} // namespace

TEST(Cdp, FactoryAndName)
{
    EXPECT_STREQ(makePolicy(ReplKind::CDP)->name(), "CDP");
    EXPECT_STREQ(replKindName(ReplKind::CDP), "CDP");
}

TEST(Cdp, ProtectsInstructionEntries)
{
    SetAssocArray arr(Geometry{1, 4, 1},
                      std::make_unique<CdpPolicy>());
    // Fill: 2 instruction entries, 2 data entries.
    arr.access(1, true, ~WayMask{0}, /*instr=*/true);
    arr.access(2, true, ~WayMask{0}, /*instr=*/true);
    arr.access(3, true, ~WayMask{0}, /*instr=*/false);
    arr.access(4, false, ~WayMask{0}, /*instr=*/false);
    // New fills evict the data entries first.
    arr.access(5, true, ~WayMask{0}, false);
    arr.access(6, true, ~WayMask{0}, false);
    EXPECT_TRUE(arr.probe(1));
    EXPECT_TRUE(arr.probe(2));
    EXPECT_FALSE(arr.probe(3));
    EXPECT_FALSE(arr.probe(4));
}

TEST(Cdp, AllInstructionFallsBackToLru)
{
    SetAssocArray arr(Geometry{1, 2, 1},
                      std::make_unique<CdpPolicy>());
    arr.access(1, true, ~WayMask{0}, true);
    arr.access(2, true, ~WayMask{0}, true);
    arr.access(1, true, ~WayMask{0}, true); // 2 becomes LRU
    arr.access(3, true, ~WayMask{0}, true);
    EXPECT_TRUE(arr.probe(1));
    EXPECT_FALSE(arr.probe(2));
}

TEST(Cdp, InstrBitStoredOnFill)
{
    SetAssocArray arr(Geometry{1, 2, 1},
                      std::make_unique<CdpPolicy>());
    arr.access(1, true, ~WayMask{0}, true);
    arr.access(2, false, ~WayMask{0}, false);
    EXPECT_TRUE(arr.wayState(0, 0).instr);
    EXPECT_FALSE(arr.wayState(0, 1).instr);
}

TEST(Extensions, EmergencyBufferReducesReclaims)
{
    auto base = tiny(SystemKind::HardHarvestBlock);
    const auto no_buffer = runServer(base, "BFS", 11);
    base.hwEmergencyBuffer = 1;
    const auto buffered = runServer(base, "BFS", 11);
    EXPECT_LT(buffered.coreReclaims, no_buffer.coreReclaims);
    // The buffer trades batch throughput for Primary headroom.
    EXPECT_LT(buffered.batchThroughput,
              no_buffer.batchThroughput * 1.05);
}

TEST(Extensions, AdaptiveWithHugeThresholdActsLikeTerm)
{
    auto block = tiny(SystemKind::HardHarvestBlock);
    auto adaptive = block;
    adaptive.adaptiveHarvest = true;
    adaptive.adaptiveBlockThreshold = hh::sim::secToCycles(1.0);
    const auto a = runServer(adaptive, "BFS", 11);
    const auto term =
        runServer(tiny(SystemKind::HardHarvestTerm), "BFS", 11);
    // With an unreachable threshold, block-harvesting never fires:
    // loan counts land at Term levels, below plain Block.
    const auto b = runServer(block, "BFS", 11);
    EXPECT_LE(a.coreLoans, b.coreLoans);
    EXPECT_NEAR(static_cast<double>(a.coreLoans),
                static_cast<double>(term.coreLoans),
                0.2 * static_cast<double>(term.coreLoans) + 50.0);
}

TEST(Extensions, AdaptiveWithZeroThresholdActsLikeBlock)
{
    auto block = tiny(SystemKind::HardHarvestBlock);
    auto adaptive = block;
    adaptive.adaptiveHarvest = true;
    adaptive.adaptiveBlockThreshold = 0;
    const auto a = runServer(adaptive, "BFS", 11);
    const auto b = runServer(block, "BFS", 11);
    EXPECT_EQ(a.coreLoans, b.coreLoans);
    EXPECT_EQ(a.coreReclaims, b.coreReclaims);
}

TEST(Extensions, CdpRunsEndToEnd)
{
    auto cfg = tiny(SystemKind::HardHarvestBlock);
    cfg.repl = ReplKind::CDP;
    const auto res = runServer(cfg, "BFS", 11);
    for (const auto &s : res.services)
        EXPECT_EQ(s.count, 54u);
}
