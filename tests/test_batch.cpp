/**
 * @file
 * Unit tests for the batch (Harvest VM) workload models.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/batch.h"

using namespace hh::workload;

TEST(BatchCatalog, HasTheEightApplications)
{
    const auto v = batchApplications();
    ASSERT_EQ(v.size(), 8u);
    const std::set<std::string> expected{
        "BFS",     "CC",        "DC",     "PRank",
        "LRTrain", "RndFTrain", "Hadoop", "MUMmer"};
    std::set<std::string> got;
    for (const auto &b : v)
        got.insert(b.name);
    EXPECT_EQ(got, expected);
}

TEST(BatchCatalog, ByNameFindsAndRejects)
{
    EXPECT_EQ(batchByName("PRank").name, "PRank");
    EXPECT_THROW(batchByName("Quake"), std::runtime_error);
}

TEST(BatchCatalog, RndFTrainIsMostMemoryIntensive)
{
    // §6.6: memory-intensive apps (RndFTrain) gain least from
    // harvested cores; we encode that as the largest footprint with
    // the flattest page popularity.
    const auto rf = batchByName("RndFTrain");
    for (const auto &b : batchApplications()) {
        EXPECT_LE(b.dataPages, rf.dataPages) << b.name;
        EXPECT_GE(b.zipfTheta, rf.zipfTheta) << b.name;
    }
}

TEST(BatchTask, PlansWithinVariabilityBand)
{
    BatchWorkload wl(batchByName("BFS"), 10, 42);
    const auto spec = wl.spec();
    for (int i = 0; i < 200; ++i) {
        const auto t = wl.planTask();
        const double us = hh::sim::cyclesToUs(t.compute);
        EXPECT_GE(us, spec.taskComputeUs * 0.84);
        EXPECT_LE(us, spec.taskComputeUs * 1.16);
        EXPECT_EQ(t.accesses, spec.taskAccesses);
    }
}

TEST(BatchAccess, PagesWithinFootprint)
{
    BatchWorkload wl(batchByName("Hadoop"), 10, 42);
    for (int i = 0; i < 5000; ++i) {
        const auto a = wl.nextAccess();
        EXPECT_LT(a.line, hh::cache::kLinesPerPage);
        EXPECT_TRUE(a.shared); // batch state persists across tasks
    }
}

TEST(BatchAccess, InstructionFractionRoughlyMatches)
{
    BatchWorkload wl(batchByName("CC"), 10, 42);
    int instr = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        instr += wl.nextAccess().isInstr ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(instr) / n, wl.spec().instrFrac,
                0.02);
}

TEST(BatchWorkload, Deterministic)
{
    BatchWorkload a(batchByName("MUMmer"), 10, 42);
    BatchWorkload b(batchByName("MUMmer"), 10, 42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.planTask().compute, b.planTask().compute);
        EXPECT_EQ(a.nextAccess().page, b.nextAccess().page);
    }
}
