/**
 * @file
 * Unit tests for the software hypervisor cost model (§3).
 */

#include <gtest/gtest.h>

#include "vm/hypervisor.h"

using namespace hh::vm;
using hh::sim::Cycles;

TEST(Hypervisor, KvmReassignmentIsFiveMilliseconds)
{
    Hypervisor h(SoftwareCosts{}, 1);
    // §3: moving a core across VMs with KVM takes ~5 ms, half
    // detach/attach and half context load.
    EXPECT_NEAR(hh::sim::cyclesToMs(h.reassignCost(ReassignImpl::Kvm)),
                5.0, 0.01);
    EXPECT_EQ(h.detachAttachCost(ReassignImpl::Kvm),
              h.vmContextLoadCost(ReassignImpl::Kvm));
}

TEST(Hypervisor, OptimizedIsHundredsOfMicroseconds)
{
    Hypervisor h(SoftwareCosts{}, 1);
    const double us = hh::sim::cyclesToUs(
        h.reassignCost(ReassignImpl::Optimized));
    EXPECT_GT(us, 100.0);
    EXPECT_LT(us, 1000.0);
}

TEST(Hypervisor, WbinvdWithinDocumentedRange)
{
    SoftwareCosts costs;
    Hypervisor h(costs, 2);
    for (int i = 0; i < 200; ++i) {
        const Cycles c = h.wbinvdCost();
        EXPECT_GE(c, costs.wbinvdMin + costs.wbinvdFence);
        EXPECT_LE(c, costs.wbinvdMax + costs.wbinvdFence);
    }
}

TEST(Hypervisor, PollDelayPositiveAndMeanReasonable)
{
    SoftwareCosts costs;
    Hypervisor h(costs, 3);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(h.pollDelay());
    const double mean = sum / n;
    EXPECT_NEAR(mean, static_cast<double>(costs.pollInterval) / 2.0,
                static_cast<double>(costs.pollInterval) * 0.05);
}

TEST(Hypervisor, LockSerializesOverlappingMoves)
{
    Hypervisor h(SoftwareCosts{}, 4);
    // First acquisition at t=0 is free; the lock is then held.
    EXPECT_EQ(h.acquireReassignLock(0, 100), 0u);
    EXPECT_EQ(h.acquireReassignLock(0, 100), 100u);
    EXPECT_EQ(h.acquireReassignLock(50, 100), 150u);
}

TEST(Hypervisor, LockFreeAfterDrain)
{
    Hypervisor h(SoftwareCosts{}, 5);
    h.acquireReassignLock(0, 100);
    EXPECT_EQ(h.acquireReassignLock(1000, 100), 0u);
}

TEST(Hypervisor, LockWaitGrowsUnderBurst)
{
    Hypervisor h(SoftwareCosts{}, 6);
    Cycles prev = 0;
    for (int i = 0; i < 5; ++i) {
        const Cycles w = h.acquireReassignLock(0, 200);
        EXPECT_GE(w, prev);
        prev = w;
    }
    EXPECT_EQ(prev, 800u);
}
