/**
 * @file
 * Unit tests for time-weighted utilization tracking.
 */

#include <gtest/gtest.h>

#include "stats/utilization.h"

using hh::stats::UtilizationSeries;
using hh::stats::UtilizationTracker;

TEST(UtilizationTracker, IntegratesBusyTime)
{
    UtilizationTracker t;
    t.setBusy(0, true);
    t.setBusy(100, false);
    EXPECT_EQ(t.busyCycles(100), 100u);
    EXPECT_EQ(t.busyCycles(200), 100u);
    EXPECT_DOUBLE_EQ(t.utilization(200), 0.5);
}

TEST(UtilizationTracker, OngoingBusyCounted)
{
    UtilizationTracker t;
    t.setBusy(50, true);
    EXPECT_EQ(t.busyCycles(150), 100u);
    EXPECT_DOUBLE_EQ(t.utilization(200), 0.75);
}

TEST(UtilizationTracker, RedundantTransitionsIgnored)
{
    UtilizationTracker t;
    t.setBusy(0, true);
    t.setBusy(10, true);
    t.setBusy(20, false);
    t.setBusy(30, false);
    EXPECT_EQ(t.busyCycles(100), 20u);
}

TEST(UtilizationTracker, NeverBusyIsZero)
{
    UtilizationTracker t;
    EXPECT_EQ(t.busyCycles(1000), 0u);
    EXPECT_DOUBLE_EQ(t.utilization(1000), 0.0);
}

TEST(UtilizationTracker, UtilizationAtStartIsZero)
{
    UtilizationTracker t;
    EXPECT_DOUBLE_EQ(t.utilization(0), 0.0);
}

TEST(UtilizationTracker, ResetRestartsMeasurement)
{
    UtilizationTracker t;
    t.setBusy(0, true);
    t.setBusy(100, false);
    t.reset(100);
    EXPECT_EQ(t.busyCycles(200), 0u);
    t.setBusy(150, true);
    EXPECT_DOUBLE_EQ(t.utilization(200), 0.5);
}

TEST(UtilizationTracker, TimeBackwardsPanics)
{
    UtilizationTracker t;
    t.setBusy(100, true);
    EXPECT_THROW(t.setBusy(50, false), std::logic_error);
}

TEST(UtilizationSeries, WindowsAccumulate)
{
    UtilizationSeries s(100);
    s.addBusy(50, 30);
    s.addBusy(150, 50);
    s.addBusy(160, 20);
    const auto v = s.series(300);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 0.3);
    EXPECT_DOUBLE_EQ(v[1], 0.7);
    EXPECT_DOUBLE_EQ(v[2], 0.0);
}

TEST(UtilizationSeries, ClampsToOne)
{
    UtilizationSeries s(100);
    s.addBusy(10, 500);
    const auto v = s.series(100);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_DOUBLE_EQ(v[0], 1.0);
}

TEST(UtilizationSeries, ZeroWindowPanics)
{
    EXPECT_THROW(UtilizationSeries(0), std::logic_error);
}

TEST(UtilizationSeries, PartialFinalWindow)
{
    UtilizationSeries s(100);
    s.addBusy(250, 10);
    const auto v = s.series(260);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[2], 0.1);
}
