/**
 * @file
 * Determinism tests for the parallel cluster engine: the same
 * experiment must produce byte-identical ClusterResults at any
 * thread-pool worker count, because each server simulation is an
 * isolated task with its own seed and the aggregation is performed
 * in server order.
 */

#include <gtest/gtest.h>

#include "cluster/experiment.h"

using namespace hh::cluster;

namespace {

SystemConfig
tinyConfig()
{
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 30;
    cfg.accessSampling = 32;
    cfg.seed = 11;
    return cfg;
}

} // namespace

TEST(ParallelCluster, BitIdenticalAcrossWorkerCounts)
{
    const auto cfg = tinyConfig();
    const ClusterResults seq = runCluster(cfg, 8, 11, 1);
    const std::string golden = seq.serialized();
    EXPECT_FALSE(golden.empty());

    for (const unsigned workers : {4u, 8u}) {
        const ClusterResults par = runCluster(cfg, 8, 11, workers);
        EXPECT_EQ(par.serialized(), golden)
            << workers << " workers diverged from sequential";
    }
}

TEST(ParallelCluster, AggregationMatchesSequentialFieldByField)
{
    const auto cfg = tinyConfig();
    const ClusterResults a = runCluster(cfg, 4, 11, 1);
    const ClusterResults b = runCluster(cfg, 4, 11, 4);
    ASSERT_EQ(a.services.size(), b.services.size());
    for (std::size_t i = 0; i < a.services.size(); ++i) {
        EXPECT_EQ(a.services[i].count, b.services[i].count);
        EXPECT_EQ(a.services[i].p50Ms, b.services[i].p50Ms);
        EXPECT_EQ(a.services[i].p99Ms, b.services[i].p99Ms);
        EXPECT_EQ(a.services[i].execMs, b.services[i].execMs);
    }
    EXPECT_EQ(a.coreLoans, b.coreLoans);
    EXPECT_EQ(a.coreReclaims, b.coreReclaims);
    EXPECT_EQ(a.avgBusyCores, b.avgBusyCores);
    ASSERT_EQ(a.batchThroughput.size(), b.batchThroughput.size());
    for (std::size_t i = 0; i < a.batchThroughput.size(); ++i) {
        EXPECT_EQ(a.batchThroughput[i].first,
                  b.batchThroughput[i].first);
        EXPECT_EQ(a.batchThroughput[i].second,
                  b.batchThroughput[i].second);
    }
}

TEST(ParallelCluster, SerializationDistinguishesSeeds)
{
    const auto cfg = tinyConfig();
    const ClusterResults a = runCluster(cfg, 2, 11, 2);
    const ClusterResults b = runCluster(cfg, 2, 12, 2);
    EXPECT_NE(a.serialized(), b.serialized());
}

TEST(ParallelCluster, DefaultWorkerAutoSelectionRuns)
{
    // workers = 0 resolves via HH_THREADS/hardware concurrency; the
    // result must still match the sequential golden run.
    const auto cfg = tinyConfig();
    const ClusterResults seq = runCluster(cfg, 2, 11, 1);
    const ClusterResults aut = runCluster(cfg, 2, 11, 0);
    EXPECT_EQ(aut.serialized(), seq.serialized());
}

TEST(ParallelCluster, ObservabilityStaysBitIdentical)
{
    // With tracing and metric sampling enabled, serialized() gains
    // the registry section and the trace summary line; both — and
    // the full Chrome JSON — must still be byte-identical at any
    // worker count.
    SystemConfig cfg = tinyConfig();
    cfg.traceEnabled = true;
    cfg.metricsEnabled = true;

    const ClusterResults seq = runCluster(cfg, 4, 11, 1);
    const std::string golden = seq.serialized();
    const std::string golden_json = seq.traceJson();
    EXPECT_NE(golden.find("server0."), std::string::npos)
        << "registry section missing from serialization";
    EXPECT_NE(golden.find("trace "), std::string::npos)
        << "trace summary missing from serialization";
    EXPECT_FALSE(golden_json.empty());

    for (const unsigned workers : {4u, 8u}) {
        const ClusterResults par = runCluster(cfg, 4, 11, workers);
        EXPECT_EQ(par.serialized(), golden)
            << workers << " workers diverged with tracing on";
        EXPECT_EQ(par.traceJson(), golden_json)
            << workers << " workers: trace JSON diverged";
    }
}

TEST(ParallelCluster, ObservabilityDoesNotPerturbResults)
{
    // Tracing and sampling are read-only: the simulation fields of
    // the serialization must be identical with and without them.
    const ClusterResults plain = runCluster(tinyConfig(), 2, 11, 2);

    SystemConfig cfg = tinyConfig();
    cfg.traceEnabled = true;
    cfg.metricsEnabled = true;
    const ClusterResults traced = runCluster(cfg, 2, 11, 2);

    const std::string a = plain.serialized();
    const std::string b = traced.serialized();
    // The traced serialization extends the plain one; the common
    // prefix (all simulation results) must match exactly.
    ASSERT_GE(b.size(), a.size());
    EXPECT_EQ(b.substr(0, a.size()), a)
        << "enabling observability changed simulation results";
}
