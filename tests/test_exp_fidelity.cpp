/**
 * @file
 * FidelityGate tests: each check kind evaluates correctly, gate
 * levels skip what they must (bands and fullOnly directions below
 * Full), absent measurements skip with the missing name in the
 * detail, and the EXPERIMENTS.md catalogue passes wholesale when fed
 * the measured values its verdict tables record.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/fidelity.h"

using hh::exp::evaluateFidelity;
using hh::exp::fidelityPassed;
using hh::exp::FidelityCheck;
using hh::exp::FidelityOutcome;
using hh::exp::GateLevel;
using hh::exp::MeasurementSet;
using hh::exp::paperFidelityCatalogue;

using Kind = FidelityCheck::Kind;
using Status = FidelityOutcome::Status;

namespace {

MeasurementSet
smallSet()
{
    MeasurementSet m;
    m.set("a", 1.0);
    m.set("b", 2.0);
    m.set("c", 3.0);
    return m;
}

FidelityCheck
check(Kind kind, std::vector<std::string> terms, double constant = 0,
      double lo = 0, double hi = 0, bool fullOnly = false)
{
    return {"id", "row", kind, std::move(terms), constant, lo, hi,
            fullOnly};
}

Status
evalOne(const FidelityCheck &c, const MeasurementSet &m,
        GateLevel level = GateLevel::Full)
{
    const auto out = evaluateFidelity({c}, m, level);
    EXPECT_EQ(out.size(), 1u);
    return out.at(0).status;
}

} // namespace

TEST(ExpFidelity, LessAndGreaterAgainstConstantsAndTerms)
{
    const MeasurementSet m = smallSet();
    EXPECT_EQ(evalOne(check(Kind::Less, {"a"}, 1.5), m), Status::Pass);
    EXPECT_EQ(evalOne(check(Kind::Less, {"a"}, 0.5), m), Status::Fail);
    EXPECT_EQ(evalOne(check(Kind::Greater, {"b"}, 1.5), m),
              Status::Pass);
    EXPECT_EQ(evalOne(check(Kind::Greater, {"b"}, 2.5), m),
              Status::Fail);
    EXPECT_EQ(evalOne(check(Kind::Less, {"a", "b"}), m), Status::Pass);
    EXPECT_EQ(evalOne(check(Kind::Greater, {"a", "b"}), m),
              Status::Fail);
    // Strict comparison: equal values fail a direction claim.
    EXPECT_EQ(evalOne(check(Kind::Less, {"a", "a"}), m), Status::Fail);
}

TEST(ExpFidelity, OrderingRequiresNonDecreasingChain)
{
    const MeasurementSet m = smallSet();
    EXPECT_EQ(evalOne(check(Kind::Ordering, {"a", "b", "c"}), m),
              Status::Pass);
    EXPECT_EQ(evalOne(check(Kind::Ordering, {"a", "c", "b"}), m),
              Status::Fail);
    // Plateaus are allowed (<=, not <).
    EXPECT_EQ(evalOne(check(Kind::Ordering, {"a", "a", "b"}), m),
              Status::Pass);
}

TEST(ExpFidelity, BandsRunOnlyAtFullLevel)
{
    const MeasurementSet m = smallSet();
    const FidelityCheck band = check(Kind::Band, {"b"}, 0, 1.0, 3.0);
    EXPECT_EQ(evalOne(band, m, GateLevel::Full), Status::Pass);
    EXPECT_EQ(evalOne(band, m, GateLevel::Direction), Status::Skipped);
    EXPECT_EQ(evalOne(check(Kind::Band, {"b"}, 0, 2.5, 3.0), m),
              Status::Fail);
    // Bounds are inclusive.
    EXPECT_EQ(evalOne(check(Kind::Band, {"b"}, 0, 2.0, 2.0), m),
              Status::Pass);
}

TEST(ExpFidelity, FullOnlyDirectionsSkipAtDirectionLevel)
{
    const MeasurementSet m = smallSet();
    const FidelityCheck c =
        check(Kind::Greater, {"b", "a"}, 0, 0, 0, /*fullOnly=*/true);
    EXPECT_EQ(evalOne(c, m, GateLevel::Direction), Status::Skipped);
    EXPECT_EQ(evalOne(c, m, GateLevel::Full), Status::Pass);
}

TEST(ExpFidelity, MissingMeasurementSkipsWithName)
{
    const MeasurementSet m = smallSet();
    const auto out = evaluateFidelity(
        {check(Kind::Greater, {"a", "not_measured"})}, m,
        GateLevel::Full);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].status, Status::Skipped);
    EXPECT_NE(out[0].detail.find("not_measured"), std::string::npos)
        << out[0].detail;
}

TEST(ExpFidelity, PassedIgnoresSkipsButNotFails)
{
    FidelityOutcome pass, fail, skip;
    pass.status = Status::Pass;
    fail.status = Status::Fail;
    skip.status = Status::Skipped;
    EXPECT_TRUE(fidelityPassed({}));
    EXPECT_TRUE(fidelityPassed({pass, skip}));
    EXPECT_FALSE(fidelityPassed({pass, fail, skip}));
}

namespace {

/**
 * The measured values EXPERIMENTS.md's verdict tables record (plus
 * plausible stand-ins for the rows whose harnesses are not ported
 * yet, e.g. fig12's step decomposition): the catalogue is the
 * machine form of those tables, so it must pass wholesale on them.
 */
MeasurementSet
experimentsMdValues()
{
    MeasurementSet m;
    // Headline: Fig 11 P99 ratios and the HHB-vs-HT reduction.
    m.set("fig11.ht_over_noh", 3.53);
    m.set("fig11.hb_over_noh", 3.79);
    m.set("fig11.hht_over_noh", 0.78);
    m.set("fig11.hhb_over_noh", 0.80);
    m.set("fig11.hhb_reduction_vs_ht", 0.773);
    // Fig 16 median latency delta (negative = better than NoHarvest).
    m.set("fig16.hhb_median_delta", -0.176);
    // Fig 17 normalized harvest throughput.
    m.set("fig17.ht_norm", 6.1);
    m.set("fig17.hhb_norm", 7.8);
    // §6.7 busy cores.
    m.set("sec67.noh_busy", 6.1);
    m.set("sec67.ht_busy", 26.0);
    m.set("sec67.sw_max_busy", 26.0);
    m.set("sec67.hw_min_busy", 35.5);
    // Fig 12 cumulative optimization breakdown.
    m.set("fig12.endpoint_reduction", 0.788);
    m.set("fig12.part_step_minus_max_other", 0.05);
    // Fig 14 L2 hit rates.
    m.set("fig14.lru", 0.393);
    m.set("fig14.rrip", 0.427);
    m.set("fig14.hh", 0.481);
    m.set("fig14.belady", 0.586);
    m.set("fig14.hh_minus_lru", 0.088);
    m.set("fig14.hh_minus_rrip", 0.054);
    // Fig 15 no-harvest optimization endpoint.
    m.set("fig15.endpoint_reduction", 0.21);
    // Fig 18 LLC sensitivity / Fig 19 candidate sweep.
    m.set("fig18.max_abs_delta", 0.05);
    m.set("fig19.best_candidate_fraction", 0.75);
    // §6.3 CDP replacement comparison.
    m.set("sec63.cdp_tail_delta", 0.08);
    // §6.8 storage and area.
    m.set("sec68.controller_kb", 18.95);
    m.set("sec68.shared_kb", 68.4);
    m.set("sec68.area_pct", 0.19);
    return m;
}

} // namespace

TEST(ExpFidelity, CatalogueAllPassOnExperimentsMdValues)
{
    const auto outcomes = evaluateFidelity(
        paperFidelityCatalogue(), experimentsMdValues(),
        GateLevel::Full);
    ASSERT_FALSE(outcomes.empty());
    for (const auto &o : outcomes)
        EXPECT_EQ(o.status, Status::Pass)
            << o.id << ": " << o.detail;
    EXPECT_TRUE(fidelityPassed(outcomes));
}

TEST(ExpFidelity, CatalogueDirectionLevelSkipsEveryBand)
{
    const auto checks = paperFidelityCatalogue();
    const auto outcomes = evaluateFidelity(
        checks, experimentsMdValues(), GateLevel::Direction);
    ASSERT_EQ(outcomes.size(), checks.size());
    std::size_t skipped = 0;
    for (std::size_t i = 0; i < checks.size(); ++i) {
        const bool must_skip = checks[i].fullOnly ||
                               checks[i].kind == Kind::Band;
        if (must_skip) {
            EXPECT_EQ(outcomes[i].status, Status::Skipped)
                << checks[i].id;
            ++skipped;
        } else {
            EXPECT_EQ(outcomes[i].status, Status::Pass)
                << checks[i].id << ": " << outcomes[i].detail;
        }
    }
    EXPECT_GT(skipped, 0u);
    EXPECT_TRUE(fidelityPassed(outcomes));
}

TEST(ExpFidelity, CatalogueSkipsUnmeasuredFiguresInsteadOfFailing)
{
    // A quick repro_all run only fills fig11/fig14/fig17 and §6.7:
    // every other catalogue row must skip, never fail.
    MeasurementSet partial;
    partial.set("fig11.ht_over_noh", 3.53);
    partial.set("fig11.hb_over_noh", 3.79);
    partial.set("fig11.hht_over_noh", 0.78);
    partial.set("fig11.hhb_over_noh", 0.80);
    partial.set("fig11.hhb_reduction_vs_ht", 0.773);
    const auto outcomes = evaluateFidelity(
        paperFidelityCatalogue(), partial, GateLevel::Direction);
    std::size_t passed = 0;
    for (const auto &o : outcomes) {
        EXPECT_NE(o.status, Status::Fail) << o.id << ": " << o.detail;
        if (o.status == Status::Pass)
            ++passed;
    }
    EXPECT_GE(passed, 5u);
}
