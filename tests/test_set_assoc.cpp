/**
 * @file
 * Unit tests for the generic set-associative array: lookups, fills,
 * way masks, harvest regions, selective flushing and statistics.
 */

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "cache/repl_lru.h"
#include "cache/set_assoc.h"

using hh::cache::Geometry;
using hh::cache::LruPolicy;
using hh::cache::SetAssocArray;
using hh::cache::WayMask;

namespace {

SetAssocArray
makeArray(std::uint32_t sets = 4, std::uint32_t ways = 4)
{
    return SetAssocArray(Geometry{sets, ways, 1},
                         std::make_unique<LruPolicy>());
}

} // namespace

TEST(SetAssoc, MissThenHit)
{
    auto a = makeArray();
    EXPECT_FALSE(a.access(0x100, true).hit);
    EXPECT_TRUE(a.access(0x100, true).hit);
    EXPECT_EQ(a.hits(), 1u);
    EXPECT_EQ(a.misses(), 1u);
}

TEST(SetAssoc, DistinctKeysDistinctEntries)
{
    auto a = makeArray();
    a.access(1, true);
    a.access(2, true);
    EXPECT_TRUE(a.probe(1));
    EXPECT_TRUE(a.probe(2));
    EXPECT_EQ(a.validCount(), 2u);
}

TEST(SetAssoc, LruEvictionOrder)
{
    auto a = makeArray(1, 2);
    a.access(1, true);
    a.access(2, true);
    a.access(1, true);       // 2 is now LRU
    const auto r = a.access(3, true);
    EXPECT_TRUE(r.evictedValid);
    EXPECT_FALSE(a.probe(2)); // the LRU entry was evicted
    EXPECT_TRUE(a.probe(1));
    EXPECT_TRUE(a.probe(3));
}

TEST(SetAssoc, EvictionCountsOnlyValidVictims)
{
    auto a = makeArray(1, 2);
    a.access(1, true);
    a.access(2, true);
    EXPECT_EQ(a.evictions(), 0u);
    a.access(3, true);
    EXPECT_EQ(a.evictions(), 1u);
}

TEST(SetAssoc, KeysMapToSetsByLowBits)
{
    auto a = makeArray(4, 1);
    // Keys 0 and 4 share set 0 with 1 way: second evicts first.
    a.access(0, true);
    a.access(4, true);
    EXPECT_FALSE(a.probe(0));
    // Key 1 lives in set 1, untouched.
    a.access(1, true);
    EXPECT_TRUE(a.probe(1));
    EXPECT_TRUE(a.probe(4));
}

TEST(SetAssoc, ProbeDoesNotFill)
{
    auto a = makeArray();
    EXPECT_FALSE(a.probe(42));
    EXPECT_EQ(a.validCount(), 0u);
    EXPECT_EQ(a.misses(), 0u);
}

TEST(SetAssoc, FlushAllInvalidatesEverything)
{
    auto a = makeArray();
    for (int i = 0; i < 8; ++i)
        a.access(static_cast<hh::cache::Addr>(i), true);
    a.flushAll();
    EXPECT_EQ(a.validCount(), 0u);
    EXPECT_FALSE(a.probe(0));
}

TEST(SetAssoc, FlushWaysIsSelective)
{
    auto a = makeArray(1, 4);
    // Fill ways 0..3 with keys 0,1,2,3 (all map to set 0 via sets=1).
    for (int i = 0; i < 4; ++i)
        a.access(static_cast<hh::cache::Addr>(i), true);
    EXPECT_EQ(a.validCount(), 4u);
    a.flushWays(0b0011);
    EXPECT_EQ(a.validCount(), 2u);
}

TEST(SetAssoc, AllowedMaskRestrictsFills)
{
    auto a = makeArray(1, 4);
    // Only way 0 allowed: repeated fills keep evicting way 0.
    a.access(1, true, 0b0001);
    a.access(2, true, 0b0001);
    EXPECT_EQ(a.validCount(), 1u);
    EXPECT_FALSE(a.probe(1));
    EXPECT_TRUE(a.probe(2));
}

TEST(SetAssoc, LookupScansAllWaysRegardlessOfMask)
{
    auto a = makeArray(1, 4);
    a.access(1, true, 0b1000); // filled into way 3
    // Even with a different allowed mask, the lookup still hits.
    EXPECT_TRUE(a.access(1, true, 0b0001).hit);
}

TEST(SetAssoc, EmptyAllowedMaskPanics)
{
    auto a = makeArray();
    EXPECT_THROW(a.access(1, true, 0), std::logic_error);
}

TEST(SetAssoc, HarvestWayHelpers)
{
    auto a = makeArray(2, 8);
    a.setHarvestWayCount(4);
    EXPECT_EQ(a.harvestWays(), 0b1111u);
    a.setHarvestWays(0b1010'1010);
    EXPECT_EQ(a.harvestWays(), 0b1010'1010u);
    EXPECT_EQ(a.allWays(), 0xFFu);
}

TEST(SetAssoc, HarvestMaskClampedToWays)
{
    auto a = makeArray(2, 4);
    a.setHarvestWays(~WayMask{0});
    EXPECT_EQ(a.harvestWays(), 0b1111u);
    a.setHarvestWayCount(100);
    EXPECT_EQ(a.harvestWays(), 0b1111u);
}

TEST(SetAssoc, HitRate)
{
    auto a = makeArray();
    a.access(1, true);
    a.access(1, true);
    a.access(1, true);
    a.access(2, true);
    EXPECT_DOUBLE_EQ(a.hitRate(), 0.5);
    a.resetStats();
    EXPECT_DOUBLE_EQ(a.hitRate(), 0.0);
    EXPECT_EQ(a.hits(), 0u);
}

TEST(SetAssoc, SharedBitStoredPerEntry)
{
    auto a = makeArray(1, 2);
    a.access(1, true);
    a.access(2, false);
    EXPECT_TRUE(a.wayState(0, 0).shared);
    EXPECT_FALSE(a.wayState(0, 1).shared);
}

TEST(SetAssoc, CandidateFractionValidation)
{
    auto a = makeArray();
    EXPECT_THROW(a.setCandidateFraction(0.0), std::runtime_error);
    EXPECT_THROW(a.setCandidateFraction(1.5), std::runtime_error);
    a.setCandidateFraction(0.75); // fine
}

TEST(SetAssoc, InvalidGeometryFatal)
{
    EXPECT_THROW(SetAssocArray(Geometry{0, 4, 1},
                               std::make_unique<LruPolicy>()),
                 std::runtime_error);
    EXPECT_THROW(SetAssocArray(Geometry{4, 0, 1},
                               std::make_unique<LruPolicy>()),
                 std::runtime_error);
    EXPECT_THROW(SetAssocArray(Geometry{4, 65, 1},
                               std::make_unique<LruPolicy>()),
                 std::runtime_error);
}

TEST(SetAssoc, NonPowerOfTwoSetsWork)
{
    auto a = SetAssocArray(Geometry{3, 2, 1},
                           std::make_unique<LruPolicy>());
    for (hh::cache::Addr k = 0; k < 6; ++k)
        a.access(k, true);
    EXPECT_EQ(a.validCount(), 6u);
}

TEST(SetAssoc, WayStateOutOfRangePanics)
{
    auto a = makeArray(2, 2);
    EXPECT_THROW(a.wayState(2, 0), std::logic_error);
    EXPECT_THROW(a.wayState(0, 2), std::logic_error);
}

// ----------------------------------- partition moves (cache leases)

/**
 * One harvest-mask transition as the cache-lease subsystem performs
 * it: fill the array, flush the ways leaving the old region, install
 * the new mask. See CacheLeaseManager::grant()/release().
 */
struct PartitionMoveCase
{
    const char *label;
    WayMask before;    //!< harvest mask before the move
    WayMask after;     //!< harvest mask after the move
};

class SetAssocPartitionMove
    : public ::testing::TestWithParam<PartitionMoveCase>
{};

TEST_P(SetAssocPartitionMove, DepartingWaysFlushSurvivorsKeepState)
{
    const auto &c = GetParam();
    auto a = makeArray(2, 8);
    a.setHarvestWays(c.before);
    // Fill every way of both sets; alternate the shared bit so
    // surviving entries prove their metadata rides along.
    for (hh::cache::Addr k = 0; k < 16; ++k)
        a.access(k, (k & 1) != 0);
    ASSERT_EQ(a.validCount(), 16u);

    // The move: ways leaving the harvest region are flushed (both
    // grant and release flush the leased ways), then the mask flips.
    const WayMask departing = c.before & ~c.after;
    const WayMask arriving = c.after & ~c.before;
    a.flushWays(departing);
    a.setHarvestWays(c.after);
    EXPECT_EQ(a.harvestWays(), c.after & a.allWays());

    // Departing ways are empty, untouched ways kept everything.
    EXPECT_EQ(a.validCountInWays(departing), 0u);
    const WayMask untouched = a.allWays() & ~departing;
    EXPECT_EQ(a.validCountInWays(untouched),
              2ull * std::popcount(untouched));
    EXPECT_EQ(a.validCount(), a.validCountInWays(a.allWays()));

    // Arriving ways were not flushed by the move (the manager
    // flushes them at grant time, a separate step).
    EXPECT_EQ(a.validCountInWays(arriving),
              2ull * std::popcount(arriving));

    // Survivors keep tag and shared bit: the enumeration sees
    // exactly the filled keys, with the parity metadata intact.
    std::uint64_t seen = 0;
    a.forEachValidInWays(untouched, [&](std::uint32_t s, unsigned w,
                                        hh::cache::Addr tag) {
        ++seen;
        EXPECT_EQ(tag & 1u, static_cast<hh::cache::Addr>(s));
        EXPECT_EQ(a.wayState(s, w).shared, (tag & 1) != 0);
    });
    EXPECT_EQ(seen, a.validCountInWays(untouched));
}

INSTANTIATE_TEST_SUITE_P(
    Moves, SetAssocPartitionMove,
    ::testing::Values(
        PartitionMoveCase{"shrink", 0b0000'1111, 0b0000'0011},
        PartitionMoveCase{"grow", 0b0000'0011, 0b0000'1111},
        PartitionMoveCase{"disjoint", 0b0000'1100, 0b0011'0000},
        PartitionMoveCase{"single_way", 0b0000'0001, 0b0000'0010},
        PartitionMoveCase{"to_nothing", 0b0000'0111, 0b0000'0000},
        PartitionMoveCase{"from_nothing", 0b0000'0000,
                          0b0000'0001}));

TEST(SetAssocWayScan, CountAndEnumerationAgree)
{
    auto a = makeArray(4, 4);
    // Sparse fill: only sets 0 and 2, restricted to ways {0, 2}.
    a.access(0, true, 0b0101);
    a.access(8, true, 0b0101);  // set 0 again, second allowed way
    a.access(2, false, 0b0101); // set 2
    EXPECT_EQ(a.validCountInWays(0b0101), 3u);
    EXPECT_EQ(a.validCountInWays(0b1010), 0u);
    EXPECT_EQ(a.validCountInWays(0), 0u);
    // Out-of-range mask bits are ignored, not miscounted.
    EXPECT_EQ(a.validCountInWays(~WayMask{0}), 3u);
    std::uint64_t seen = 0;
    a.forEachValidInWays(~WayMask{0},
                         [&](std::uint32_t, unsigned w,
                             hh::cache::Addr) {
                             ++seen;
                             EXPECT_TRUE(w == 0 || w == 2);
                         });
    EXPECT_EQ(seen, 3u);
}

TEST(SetAssocWayScan, FlushedEntriesDisappearFromTheScan)
{
    auto a = makeArray(1, 4);
    for (hh::cache::Addr k = 0; k < 4; ++k)
        a.access(k, true);
    a.flushWays(0b0110);
    std::vector<hh::cache::Addr> tags;
    a.forEachValidInWays(~WayMask{0},
                         [&](std::uint32_t, unsigned,
                             hh::cache::Addr t) { tags.push_back(t); });
    ASSERT_EQ(tags.size(), 2u);
    EXPECT_EQ(a.validCountInWays(0b0110), 0u);
    EXPECT_EQ(a.validCountInWays(0b1001), 2u);
}

/** Property: filling N distinct keys never exceeds capacity. */
class SetAssocCapacity
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(SetAssocCapacity, ValidCountBounded)
{
    const auto [sets, ways] = GetParam();
    SetAssocArray a(Geometry{sets, ways, 1},
                    std::make_unique<LruPolicy>());
    for (hh::cache::Addr k = 0; k < sets * ways * 3; ++k)
        a.access(k * 7919, true);
    EXPECT_LE(a.validCount(),
              static_cast<std::uint64_t>(sets) * ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SetAssocCapacity,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(4u, 2u),
                      std::make_pair(64u, 12u),
                      std::make_pair(256u, 8u),
                      std::make_pair(32u, 16u)));
