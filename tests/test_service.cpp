/**
 * @file
 * Unit tests for the microservice catalog and invocation planner.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/service.h"

using namespace hh::workload;

TEST(ServiceCatalog, HasTheEightSocialNetServices)
{
    const auto v = deathStarBenchServices();
    ASSERT_EQ(v.size(), 8u);
    const std::set<std::string> expected{"Text",   "SGraph",
                                         "User",   "PstStr",
                                         "UsrMnt", "HomeT",
                                         "CPost",  "UrlShort"};
    std::set<std::string> got;
    for (const auto &s : v)
        got.insert(s.name);
    EXPECT_EQ(got, expected);
}

TEST(ServiceCatalog, LoadsWithinPaperRange)
{
    // §5: 65-250 requests per second per Primary VM core.
    for (const auto &s : deathStarBenchServices()) {
        EXPECT_GE(s.rpsPerCore, 40.0) << s.name;
        EXPECT_LE(s.rpsPerCore, 250.0) << s.name;
    }
}

TEST(ServiceCatalog, ByNameFindsAndRejects)
{
    EXPECT_EQ(serviceByName("HomeT").name, "HomeT");
    EXPECT_THROW(serviceByName("Nope"), std::runtime_error);
}

TEST(ServiceCatalog, UserBlocksMost)
{
    // The paper calls out User as I/O-heavy (§6.1).
    const auto user = serviceByName("User");
    for (const auto &s : deathStarBenchServices())
        EXPECT_LE(s.ioCalls, user.ioCalls) << s.name;
}

TEST(ServiceCatalog, HomeTIsSharedHeavy)
{
    const auto homet = serviceByName("HomeT");
    for (const auto &s : deathStarBenchServices())
        EXPECT_LE(s.sharedFrac, homet.sharedFrac) << s.name;
}

TEST(InvocationPlan, SegmentsMatchIoCalls)
{
    ServiceWorkload wl(serviceByName("Text"), 1, 42);
    for (int i = 0; i < 50; ++i) {
        const auto plan = wl.planInvocation();
        ASSERT_GE(plan.segments.size(), 1u);
        for (std::size_t s = 0; s + 1 < plan.segments.size(); ++s) {
            EXPECT_TRUE(plan.segments[s].endsInIo);
            EXPECT_GT(plan.segments[s].ioTime, 0u);
        }
        EXPECT_FALSE(plan.segments.back().endsInIo);
    }
}

TEST(InvocationPlan, PrivatePagesAllocatedPerInvocation)
{
    const auto spec = serviceByName("PstStr");
    ServiceWorkload wl(spec, 1, 42);
    const auto a = wl.planInvocation();
    const auto b = wl.planInvocation();
    EXPECT_EQ(a.privatePages.size(), spec.privatePages);
    std::set<hh::cache::Addr> all(a.privatePages.begin(),
                                  a.privatePages.end());
    all.insert(b.privatePages.begin(), b.privatePages.end());
    EXPECT_EQ(all.size(), 2u * spec.privatePages);
}

TEST(InvocationPlan, ComputeScalesWithSpec)
{
    ServiceWorkload small(serviceByName("UrlShort"), 1, 7);
    ServiceWorkload big(serviceByName("CPost"), 2, 7);
    double small_sum = 0;
    double big_sum = 0;
    for (int i = 0; i < 200; ++i) {
        for (const auto &seg : small.planInvocation().segments)
            small_sum += static_cast<double>(seg.compute);
        for (const auto &seg : big.planInvocation().segments)
            big_sum += static_cast<double>(seg.compute);
    }
    EXPECT_GT(big_sum, small_sum * 2);
}

TEST(InvocationPlan, MeanComputeNearSpec)
{
    const auto spec = serviceByName("Text");
    ServiceWorkload wl(spec, 1, 11);
    double total_us = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        hh::sim::Cycles c = 0;
        for (const auto &seg : wl.planInvocation().segments)
            c += seg.compute;
        total_us += hh::sim::cyclesToUs(c);
    }
    EXPECT_NEAR(total_us / n, spec.computeUs,
                spec.computeUs * 0.1);
}

TEST(AccessStream, PagesBelongToTheService)
{
    const auto spec = serviceByName("SGraph");
    ServiceWorkload wl(spec, 5, 42);
    const auto plan = wl.planInvocation();
    auto &space = wl.addressSpace();
    std::set<hh::cache::Addr> valid;
    for (std::uint32_t i = 0; i < spec.codePages; ++i)
        valid.insert(space.codePage(i));
    for (std::uint32_t i = 0; i < spec.sharedDataPages; ++i)
        valid.insert(space.sharedDataPage(i));
    valid.insert(plan.privatePages.begin(), plan.privatePages.end());

    for (int i = 0; i < 2000; ++i) {
        const auto a = wl.nextAccess(plan);
        EXPECT_TRUE(valid.count(a.page)) << "stray page";
        EXPECT_LT(a.line, hh::cache::kLinesPerPage);
    }
}

TEST(AccessStream, SharedBitConsistent)
{
    const auto spec = serviceByName("Text");
    ServiceWorkload wl(spec, 1, 42);
    const auto plan = wl.planInvocation();
    const std::set<hh::cache::Addr> priv(plan.privatePages.begin(),
                                         plan.privatePages.end());
    for (int i = 0; i < 2000; ++i) {
        const auto a = wl.nextAccess(plan);
        if (a.isInstr)
            EXPECT_TRUE(a.shared);
        if (priv.count(a.page))
            EXPECT_FALSE(a.shared);
        else
            EXPECT_TRUE(a.shared);
    }
}

TEST(AccessStream, InstructionFractionRoughlyMatches)
{
    const auto spec = serviceByName("UsrMnt");
    ServiceWorkload wl(spec, 1, 42);
    const auto plan = wl.planInvocation();
    int instr = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        instr += wl.nextAccess(plan).isInstr ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(instr) / n, spec.instrFrac, 0.02);
}

TEST(ServiceWorkload, DeterministicAcrossInstances)
{
    ServiceWorkload a(serviceByName("Text"), 1, 42);
    ServiceWorkload b(serviceByName("Text"), 1, 42);
    const auto pa = a.planInvocation();
    const auto pb = b.planInvocation();
    ASSERT_EQ(pa.segments.size(), pb.segments.size());
    for (std::size_t i = 0; i < pa.segments.size(); ++i) {
        EXPECT_EQ(pa.segments[i].compute, pb.segments[i].compute);
        EXPECT_EQ(pa.segments[i].ioTime, pb.segments[i].ioTime);
    }
}
