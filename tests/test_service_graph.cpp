/**
 * @file
 * Service-graph subsystem tests (src/svc/): spec parsing and
 * validation, multi-hop packet snapshot round-trips, fleet smoke
 * runs, worker-count bit-identity, mid-tree checkpoint-resume with
 * live RPC trees and in-flight wire packets, tree-drain edge cases
 * (zero-fanout leaves, same-server loopback, saturated back tiers),
 * and Zipf-table sharing across identical service instances.
 */

#include <gtest/gtest.h>

#include <string>

#include "cluster/system_config.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "svc/fleet.h"
#include "svc/graph_spec.h"
#include "workload/service.h"

using namespace hh::svc;
using hh::cluster::SystemConfig;
using hh::cluster::SystemKind;

namespace {

/** Reduced server shape + budget so fleet tests stay fast. */
SystemConfig
quickConfig()
{
    SystemConfig cfg =
        hh::cluster::makeSystem(SystemKind::HardHarvestBlock);
    cfg.cores = 18;
    cfg.primaryVms = 4;
    cfg.coresPerPrimary = 4;
    cfg.requestsPerVm = 10;
    cfg.accessSampling = 32;
    return cfg;
}

/** depth-2 graph over 4 servers: front on 0..1, back on 2..3. */
ServiceGraphSpec
twoTierSpec()
{
    ServiceGraphSpec spec;
    spec.name = "t2";
    spec.servers = 4;
    spec.tiers.push_back({"Text", 2, true, 0, 1, 2});
    spec.tiers.push_back({"User", 0, true, 2, 3, 2});
    return spec;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** Total expected roots: front VMs x per-VM budget. */
std::uint64_t
expectedRoots(const ServiceGraphSpec &spec, const SystemConfig &cfg)
{
    const TierSpec &front = spec.tiers[0];
    const std::uint64_t vms =
        static_cast<std::uint64_t>(front.serverHi - front.serverLo +
                                   1) *
        front.vmsPerServer;
    return vms * cfg.requestsPerVm;
}

} // namespace

TEST(GraphSpec, CanonicalTextRoundTrips)
{
    const ServiceGraphSpec spec = makeLayeredGraphSpec(3, 2, 16);
    ServiceGraphSpec parsed;
    std::string err;
    ASSERT_TRUE(parseGraphSpec(spec.canonicalText(), &parsed, &err))
        << err;
    EXPECT_EQ(spec.canonicalText(), parsed.canonicalText());
    EXPECT_EQ(parsed.depth(), 3u);
    EXPECT_EQ(parsed.servers, 16u);
    EXPECT_EQ(parsed.tiers[0].fanout, 2u);
    EXPECT_EQ(parsed.tiers[2].fanout, 0u);
}

TEST(GraphSpec, ParseErrorsCarryLineNumbers)
{
    ServiceGraphSpec spec;
    std::string err;
    EXPECT_FALSE(parseGraphSpec("graph.servers = x\n", &spec, &err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;

    EXPECT_FALSE(parseGraphSpec(
        "graph.servers = 2\ntier0.mode = sideways\n", &spec, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("sync or async"), std::string::npos) << err;

    EXPECT_FALSE(
        parseGraphSpec("graph.servers = 2\nbogus.key = 1\n", &spec,
                       &err));
    EXPECT_NE(err.find("unknown key"), std::string::npos) << err;
}

TEST(GraphSpec, StructuralValidation)
{
    ServiceGraphSpec spec;
    std::string err;

    // Non-contiguous tier indices.
    EXPECT_FALSE(parseGraphSpec("graph.servers = 2\n"
                                "tier1.service = Text\n",
                                &spec, &err));
    EXPECT_NE(err.find("contiguous"), std::string::npos) << err;

    // Unknown service name.
    EXPECT_FALSE(parseGraphSpec("graph.servers = 1\n"
                                "tier0.service = NoSuchSvc\n"
                                "tier0.servers = 0\n",
                                &spec, &err));
    EXPECT_NE(err.find("unknown service"), std::string::npos) << err;

    // Last tier must not fan out.
    EXPECT_FALSE(parseGraphSpec("graph.servers = 1\n"
                                "tier0.service = Text\n"
                                "tier0.fanout = 2\n"
                                "tier0.servers = 0\n",
                                &spec, &err));
    EXPECT_NE(err.find("fanout 0"), std::string::npos) << err;

    // Server range out of bounds.
    EXPECT_FALSE(parseGraphSpec("graph.servers = 2\n"
                                "tier0.service = Text\n"
                                "tier0.servers = 0..5\n",
                                &spec, &err));
    EXPECT_NE(err.find("range ends"), std::string::npos) << err;
}

TEST(GraphSpec, CapacityValidation)
{
    // 2 tiers x 3 VMs on the same single server > 4 Primary slots.
    ServiceGraphSpec spec;
    spec.servers = 1;
    spec.tiers.push_back({"Text", 1, true, 0, 0, 3});
    spec.tiers.push_back({"User", 0, true, 0, 0, 3});
    std::string err;
    EXPECT_FALSE(validateGraphSpec(spec, 4, &err));
    EXPECT_NE(err.find("Primary slots"), std::string::npos) << err;
    EXPECT_TRUE(validateGraphSpec(spec, 8, &err)) << err;
}

TEST(GraphPacket, WireTagRoundTripsEveryField)
{
    hh::net::Packet p;
    p.kind = hh::net::PacketKind::GraphCall;
    p.dstVm = 7;
    p.requestId = 0;
    p.payloadBytes = 2048;
    p.arrival = 123456789;
    p.srcServer = 513;
    p.srcVm = 3;
    p.nodeRef = 0xDEADBEEFCAFEULL;
    p.salt = 0x123456789ABCDEF0ULL;
    p.tier = 5;

    const auto tag = p.wireTag();
    EXPECT_EQ(tag.kind, hh::snap::SnapTag::kGraphWireArrive);
    const hh::net::Packet q = hh::net::Packet::fromDeliveryTag(tag);
    EXPECT_EQ(q.kind, p.kind);
    EXPECT_EQ(q.dstVm, p.dstVm);
    EXPECT_EQ(q.requestId, p.requestId);
    EXPECT_EQ(q.payloadBytes, p.payloadBytes);
    EXPECT_EQ(q.arrival, p.arrival);
    EXPECT_EQ(q.srcServer, p.srcServer);
    EXPECT_EQ(q.srcVm, p.srcVm);
    EXPECT_EQ(q.nodeRef, p.nodeRef);
    EXPECT_EQ(q.salt, p.salt);
    EXPECT_EQ(q.tier, p.tier);

    p.kind = hh::net::PacketKind::GraphDone;
    const hh::net::Packet r =
        hh::net::Packet::fromDeliveryTag(p.deliveryTag());
    EXPECT_EQ(r.kind, hh::net::PacketKind::GraphDone);
    EXPECT_EQ(r.tier, p.tier);
}

TEST(ZipfSharing, IdenticalParamsShareOneTable)
{
    const auto a = hh::sim::sharedZipfSampler(4096, 0.9);
    const auto b = hh::sim::sharedZipfSampler(4096, 0.9);
    const auto c = hh::sim::sharedZipfSampler(4096, 0.95);
    const auto d = hh::sim::sharedZipfSampler(2048, 0.9);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_NE(a.get(), d.get());

    // Shared tables still sample correctly from independent streams.
    hh::sim::Rng rng(7, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(a->sample(rng), 4096u);
}

TEST(Fleet, TwoTierSmokeDrainsAndAccounts)
{
    const ServiceGraphSpec spec = twoTierSpec();
    const SystemConfig cfg = quickConfig();
    const FleetResults r = runFleet(spec, cfg, 1, 2);

    EXPECT_EQ(r.rootsDone + r.rootsShed, expectedRoots(spec, cfg));
    EXPECT_GT(r.rootsDone, 0u);
    ASSERT_EQ(r.tiers.size(), 2u);
    // Every admitted root finished; each issued exactly 2 children,
    // all of which were handled (finished or accounted as shed).
    EXPECT_EQ(r.tiers[0].nodes, r.rootsDone);
    EXPECT_EQ(r.tiers[1].nodes + r.tiers[1].sheds,
              2 * r.tiers[0].nodes);
    EXPECT_GT(r.e2eCount, 0u);
    EXPECT_GT(r.e2eP99Us, 0.0);
    EXPECT_GE(r.e2eP99Us, r.e2eP50Us);
    EXPECT_GT(r.fleetP99Us, 0.0);
    // Front and back tiers are on different servers, so child calls
    // and their completions crossed the fabric.
    EXPECT_GT(r.wireMessages, 0u);
    EXPECT_GT(r.windows, 0u);
    EXPECT_GT(r.maxPeakLiveNodes, 0u);
    EXPECT_GT(r.maxFootprintBytes, 0u);
}

TEST(Fleet, BitIdenticalAcrossWorkerCounts)
{
    const ServiceGraphSpec spec = twoTierSpec();
    const SystemConfig cfg = quickConfig();
    const std::string s1 = runFleet(spec, cfg, 1, 1).serialized();
    const std::string s2 = runFleet(spec, cfg, 1, 2).serialized();
    const std::string s4 = runFleet(spec, cfg, 1, 4).serialized();
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s4);
}

TEST(Fleet, MidTreeCheckpointResumeIsByteIdentical)
{
    const ServiceGraphSpec spec = twoTierSpec();
    SystemConfig cfg = quickConfig();
    // Audit the engine invariants through the resumed run too —
    // restored trees must still match the server's request states.
    cfg.auditEnabled = true;
    cfg.auditPeriod = 1024;

    const FleetResults full = runFleet(spec, cfg, 1, 1);
    EXPECT_EQ(full.auditViolations, 0u);

    // Advance window by window until trees are provably mid-flight,
    // then save: live nodes on the servers plus (with distinct front
    // and back server ranges) wire packets captured as
    // kGraphWireArrive events in destination queues.
    FleetSim fleet(spec, cfg, 1);
    fleet.start();
    while (!fleet.drained() && fleet.totalLiveNodes() == 0)
        fleet.advanceWindows(1, fleet.barrier() + 1);
    ASSERT_FALSE(fleet.drained());
    ASSERT_GT(fleet.totalLiveNodes(), 0u);

    const std::string path = tmpPath("fleet_midtree.hhcp");
    std::string err;
    ASSERT_TRUE(fleet.save(path, &err)) << err;

    const auto resumed = resumeFleet(path, spec, cfg, 1, 2, &err);
    ASSERT_TRUE(resumed.has_value()) << err;
    EXPECT_EQ(full.serialized(), resumed->serialized());
    EXPECT_EQ(resumed->auditViolations, 0u);
    EXPECT_GT(resumed->auditsRun, 0u);
}

TEST(Fleet, ResumeRejectsDifferentTopology)
{
    const ServiceGraphSpec spec = twoTierSpec();
    const SystemConfig cfg = quickConfig();
    const std::string path = tmpPath("fleet_topology.hhcp");
    std::string err;
    ASSERT_TRUE(checkpointFleetAt(spec, cfg, 1, 2,
                                  hh::sim::usToCycles(200), path,
                                  &err))
        << err;

    // Same servers and config, different wiring: fanout 1.
    ServiceGraphSpec other = spec;
    other.tiers[0].fanout = 1;
    const auto res = resumeFleet(path, other, cfg, 1, 2, &err);
    EXPECT_FALSE(res.has_value());
    EXPECT_NE(err.find("topology"), std::string::npos) << err;
}

TEST(Fleet, ZeroFanoutLeafGraphDrains)
{
    // Single-tier graph: every root is a leaf; no RPCs at all.
    ServiceGraphSpec spec;
    spec.name = "leaf";
    spec.servers = 2;
    spec.tiers.push_back({"UrlShort", 0, true, 0, 1, 2});
    const SystemConfig cfg = quickConfig();
    const FleetResults r = runFleet(spec, cfg, 1, 2);

    EXPECT_EQ(r.rootsDone + r.rootsShed, expectedRoots(spec, cfg));
    EXPECT_EQ(r.tiers[0].nodes, r.rootsDone);
    EXPECT_EQ(r.wireMessages, 0u);
    EXPECT_GT(r.e2eCount, 0u);
}

TEST(Fleet, SameServerLoopbackSkipsFabric)
{
    // Both tiers on the single server: children loop back through
    // the local NIC and nothing crosses the fabric.
    ServiceGraphSpec spec;
    spec.name = "loop";
    spec.servers = 1;
    spec.tiers.push_back({"Text", 2, true, 0, 0, 2});
    spec.tiers.push_back({"User", 0, true, 0, 0, 2});
    const SystemConfig cfg = quickConfig();
    const FleetResults r = runFleet(spec, cfg, 1, 1);

    EXPECT_EQ(r.rootsDone + r.rootsShed, expectedRoots(spec, cfg));
    EXPECT_GT(r.rootsDone, 0u);
    EXPECT_EQ(r.wireMessages, 0u);
    EXPECT_EQ(r.tiers[1].nodes + r.tiers[1].sheds,
              2 * r.tiers[0].nodes);
}

TEST(Fleet, SaturatedBackTierShedsAreAccounted)
{
    // Fan out 4 children per root into a single back-tier VM that
    // may hold only 2 live nodes: sheds are inevitable, and every
    // shed must be accounted (never silently dropped) while the
    // trees still drain.
    ServiceGraphSpec spec;
    spec.name = "sat";
    spec.servers = 2;
    spec.maxLiveNodesPerVm = 2;
    spec.tiers.push_back({"UrlShort", 4, true, 0, 0, 2});
    spec.tiers.push_back({"User", 0, true, 1, 1, 1});
    SystemConfig cfg = quickConfig();
    cfg.loadScale = 4.0; // pile arrivals up to force saturation
    const FleetResults r = runFleet(spec, cfg, 1, 2);

    EXPECT_EQ(r.rootsDone + r.rootsShed, expectedRoots(spec, cfg));
    EXPECT_EQ(r.tiers[1].nodes + r.tiers[1].sheds,
              4 * r.tiers[0].nodes);
    EXPECT_GT(r.tiers[1].sheds, 0u);
}
