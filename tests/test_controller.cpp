/**
 * @file
 * Unit tests for the HardHarvest controller: VM registration, chunk
 * proportioning/donation, the request path and latency model.
 */

#include <gtest/gtest.h>

#include "core/controller.h"

using hh::core::ControllerConfig;
using hh::core::HardHarvestController;

namespace {

HardHarvestController
makeController(unsigned cores = 36)
{
    return HardHarvestController(ControllerConfig{}, cores);
}

} // namespace

TEST(Controller, SingleVmGetsWholeRq)
{
    auto c = makeController();
    auto &qm = c.registerVm(0, true, 4);
    EXPECT_EQ(qm.queue().rqMap().size(), 32u);
    EXPECT_EQ(qm.queue().capacity(), 2048u);
}

TEST(Controller, ProportionalSplitByWeight)
{
    auto c = makeController();
    c.registerVm(0, true, 4);
    c.registerVm(1, true, 4);
    c.registerVm(2, false, 8);
    // Weights 4:4:8 over 32 chunks -> 8:8:16.
    EXPECT_EQ(c.qmFor(0)->queue().rqMap().size(), 8u);
    EXPECT_EQ(c.qmFor(1)->queue().rqMap().size(), 8u);
    EXPECT_EQ(c.qmFor(2)->queue().rqMap().size(), 16u);
    EXPECT_EQ(c.rq().freeChunks(), 0u);
}

TEST(Controller, PaperLayoutSplit)
{
    // 8 Primary VMs x 4 cores + 1 Harvest VM x 4 cores: equal
    // weights, 32 chunks -> at least 3 each, remainder spread.
    auto c = makeController();
    for (std::uint32_t vm = 0; vm < 9; ++vm)
        c.registerVm(vm, vm < 8, 4);
    unsigned total = 0;
    for (std::uint32_t vm = 0; vm < 9; ++vm) {
        const auto n = c.qmFor(vm)->queue().rqMap().size();
        EXPECT_GE(n, 3u);
        EXPECT_LE(n, 4u);
        total += static_cast<unsigned>(n);
    }
    EXPECT_EQ(total, 32u);
}

TEST(Controller, NewVmTriggersDonation)
{
    auto c = makeController();
    c.registerVm(0, true, 4);
    ASSERT_EQ(c.qmFor(0)->queue().rqMap().size(), 32u);
    c.registerVm(1, true, 4);
    // VM0 donated half its chunks from its subqueue tail.
    EXPECT_EQ(c.qmFor(0)->queue().rqMap().size(), 16u);
    EXPECT_EQ(c.qmFor(1)->queue().rqMap().size(), 16u);
}

TEST(Controller, DonationSpillsToOverflow)
{
    auto c = makeController();
    auto &qm0 = c.registerVm(0, true, 4);
    // Fill the whole RQ with requests for VM0.
    for (std::uint64_t i = 0; i < 2048; ++i)
        EXPECT_TRUE(c.enqueue(0, i));
    c.registerVm(1, true, 4);
    // Half the requests no longer fit in hardware.
    EXPECT_EQ(qm0.queue().capacity(), 1024u);
    EXPECT_EQ(qm0.queue().occupancy(), 1024u);
    EXPECT_EQ(qm0.queue().overflowSize(), 1024u);
}

TEST(Controller, RemovalRedistributesChunks)
{
    auto c = makeController();
    c.registerVm(0, true, 4);
    c.registerVm(1, true, 4);
    c.removeVm(1);
    EXPECT_EQ(c.qmFor(0)->queue().rqMap().size(), 32u);
    EXPECT_EQ(c.qmFor(1), nullptr);
    EXPECT_EQ(c.numVms(), 1u);
}

TEST(Controller, DuplicateRegistrationPanics)
{
    auto c = makeController();
    c.registerVm(0, true, 4);
    EXPECT_THROW(c.registerVm(0, true, 4), std::logic_error);
}

TEST(Controller, RemoveUnknownPanics)
{
    auto c = makeController();
    EXPECT_THROW(c.removeVm(3), std::logic_error);
}

TEST(Controller, ZeroWeightFatal)
{
    auto c = makeController();
    EXPECT_THROW(c.registerVm(0, true, 0), std::runtime_error);
}

TEST(Controller, QmLimitEnforced)
{
    ControllerConfig cfg;
    cfg.maxQms = 2;
    HardHarvestController c(cfg, 8);
    c.registerVm(0, true, 1);
    c.registerVm(1, true, 1);
    EXPECT_THROW(c.registerVm(2, true, 1), std::runtime_error);
}

TEST(Controller, RequestPathEndToEnd)
{
    auto c = makeController();
    c.registerVm(0, true, 4);
    EXPECT_TRUE(c.enqueue(0, 101));
    EXPECT_TRUE(c.enqueue(0, 102));
    const auto r = c.dequeue(0);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 101u);
    c.markBlocked(0, 101);
    c.markReady(0, 101);
    const auto again = c.dequeue(0);
    EXPECT_EQ(*again, 101u); // unblocked resumes before 102
    c.complete(0, 101);
    const auto next = c.dequeue(0);
    EXPECT_EQ(*next, 102u);
    c.preempt(0, 102);
    EXPECT_EQ(*c.dequeue(0), 102u);
}

TEST(Controller, UnknownVmRequestPathPanics)
{
    auto c = makeController();
    EXPECT_THROW(c.enqueue(9, 1), std::logic_error);
    EXPECT_THROW(c.dequeue(9), std::logic_error);
    EXPECT_THROW(c.markBlocked(9, 1), std::logic_error);
    EXPECT_THROW(c.markReady(9, 1), std::logic_error);
    EXPECT_THROW(c.complete(9, 1), std::logic_error);
    EXPECT_THROW(c.preempt(9, 1), std::logic_error);
}

TEST(Controller, LatenciesAreNanosecondScale)
{
    auto c = makeController();
    // §4.1.1/4.1.8: queue operations cost a control-tree round trip
    // plus an SRAM access; far below software microseconds.
    EXPECT_GT(c.queueOpLatency(), 0u);
    EXPECT_LT(c.queueOpLatency(), hh::sim::usToCycles(0.5));
    EXPECT_GT(c.notifyLatency(), 0u);
    EXPECT_LT(c.notifyLatency(), c.queueOpLatency());
    EXPECT_EQ(c.flushBound(), 1000u);
}

TEST(Controller, TotalWeightTracksVms)
{
    auto c = makeController();
    c.registerVm(0, true, 4);
    c.registerVm(1, false, 8);
    EXPECT_EQ(c.totalWeight(), 12u);
    c.removeVm(0);
    EXPECT_EQ(c.totalWeight(), 8u);
}
