/**
 * @file
 * Cache-capacity leasing tests (src/lease/): CacheLeaseManager
 * lifecycle unit behavior (grant / recall / expiry / flush-on-return
 * accounting, way-cycle accrual, degenerate-grant panics, snapshot
 * round-trip), the cluster-level conformance contract (byte-identical
 * results and telemetry JSONL across worker counts and a mid-lease
 * checkpoint save/load/resume), resume rejection on mismatched
 * cacheLend* knobs, spec-level validation of the cacheLend keys, the
 * auditor's "lease" invariant staying clean on a leasing run, and the
 * lease-overstay fault action as its positive control.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cache/repl_lru.h"
#include "cache/set_assoc.h"
#include "cluster/checkpoint.h"
#include "cluster/experiment.h"
#include "cluster/telemetry_hub.h"
#include "exp/spec.h"
#include "lease/cache_lease.h"
#include "snapshot/archive.h"

using namespace hh::cluster;
using hh::cache::Geometry;
using hh::cache::LruPolicy;
using hh::cache::SetAssocArray;
using hh::cache::WayMask;
using hh::lease::CacheLeaseManager;

namespace {

SetAssocArray
makeL3(std::uint32_t sets = 8, std::uint32_t ways = 16)
{
    return SetAssocArray(Geometry{sets, ways, 1},
                         std::make_unique<LruPolicy>());
}

/**
 * Reduced-scale leasing cluster config. The shortened period and
 * term force several grant -> expiry -> re-grant rounds through the
 * short run, so recalls/expiries and their flushes are exercised,
 * not just the initial grants.
 */
SystemConfig
leaseConfig(const std::string &policy)
{
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 40;
    cfg.accessSampling = 32;
    cfg.policy = policy;
    cfg.telemetryEnabled = true;
    cfg.cacheLendEnabled = true;
    cfg.cacheLendPeriod = hh::sim::msToCycles(0.25);
    cfg.cacheLendTerm = hh::sim::msToCycles(1.0);
    return cfg;
}

/** Build the hub over a run's per-server payloads. */
TelemetryHub
hubFor(const SystemConfig &cfg, ClusterResults res)
{
    TelemetryHub hub(cfg);
    for (auto &t : res.serverTelemetry)
        hub.addServer(std::move(t));
    return hub;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

} // namespace

// ------------------------------------------------- manager lifecycle

TEST(CacheLeaseManager_, GrantFlushesAndMarksTheHarvestRegion)
{
    auto l3 = makeL3();
    // Pre-fill the low ways so the handoff flush has victims.
    for (hh::cache::Addr k = 0; k < 8 * 16; ++k)
        l3.access(k, true);
    ASSERT_EQ(l3.validCount(), 8u * 16u);

    CacheLeaseManager mgr(2, /*term=*/1000);
    const std::uint64_t flushed =
        mgr.grant(0, l3, /*now=*/100, 0b1111, /*l2Bonus=*/1);
    EXPECT_EQ(flushed, 8u * 4u); // 4 low ways of 8 sets
    EXPECT_EQ(l3.harvestWays(), 0b1111u);
    EXPECT_EQ(l3.validCountInWays(0b1111), 0u);
    EXPECT_TRUE(mgr.active(0));
    EXPECT_FALSE(mgr.active(1));
    EXPECT_EQ(mgr.lease(0).l2Bonus, 1u);
    EXPECT_EQ(mgr.lease(0).grantedAt, 100u);
    EXPECT_EQ(mgr.lease(0).expiresAt, 1100u);
    EXPECT_EQ(mgr.lease(0).everLeased, 0b1111u);
    EXPECT_EQ(mgr.grants(), 1u);
    EXPECT_EQ(mgr.flushedLines(), flushed);
    EXPECT_EQ(mgr.lentL3Ways(), 4u);
    EXPECT_EQ(mgr.activeLenders(), std::vector<unsigned>{0});
}

TEST(CacheLeaseManager_, ReleaseFlushesBorrowerLinesOnReturn)
{
    auto l3 = makeL3();
    CacheLeaseManager mgr(1, 1000);
    mgr.grant(0, l3, 0, 0b0011, 0);
    // The borrower fills the leased ways; the owner fills around.
    for (hh::cache::Addr k = 0; k < 16; ++k)
        l3.access(k, true, 0b0011);
    ASSERT_EQ(l3.validCountInWays(0b0011), 16u);

    const std::uint64_t flushed =
        mgr.release(0, l3, 500, /*expired=*/false);
    EXPECT_EQ(flushed, 16u); // flush-on-return: every borrower line
    EXPECT_EQ(l3.validCountInWays(0b0011), 0u);
    EXPECT_EQ(l3.harvestWays(), 0u);
    EXPECT_FALSE(mgr.active(0));
    EXPECT_EQ(mgr.recalls(), 1u);
    EXPECT_EQ(mgr.expiries(), 0u);
    // The returned ways stay marked for the auditor's overstay scan.
    EXPECT_EQ(mgr.lease(0).everLeased, 0b0011u);
    EXPECT_EQ(mgr.lease(0).l3Ways, 0u);

    // A later expiry-release counts separately.
    mgr.grant(0, l3, 600, 0b0011, 0);
    mgr.release(0, l3, 2000, /*expired=*/true);
    EXPECT_EQ(mgr.recalls(), 1u);
    EXPECT_EQ(mgr.expiries(), 1u);
}

TEST(CacheLeaseManager_, LazyExpiryAndWayCycleAccrual)
{
    auto l3 = makeL3();
    CacheLeaseManager mgr(1, 1000);
    mgr.grant(0, l3, 100, 0b1111, 0);
    EXPECT_FALSE(mgr.expired(0, 1099));
    EXPECT_TRUE(mgr.expired(0, 1100)); // now >= expiresAt
    // 4 ways lent since t=100: the integral tracks open leases too.
    EXPECT_EQ(mgr.wayCycles(600), 4u * 500u);
    mgr.release(0, l3, 1100, true);
    EXPECT_EQ(mgr.wayCycles(1100), 4u * 1000u);
    // After the release the integral is frozen.
    EXPECT_EQ(mgr.wayCycles(5000), 4u * 1000u);
    EXPECT_FALSE(mgr.expired(0, 5000)); // inactive is never expired
}

TEST(CacheLeaseManager_, DegenerateGrantsPanic)
{
    auto l3 = makeL3();
    CacheLeaseManager mgr(1, 1000);
    // No ways and all ways are both degenerate leases.
    EXPECT_THROW(mgr.grant(0, l3, 0, 0, 0), std::logic_error);
    EXPECT_THROW(mgr.grant(0, l3, 0, l3.allWays(), 0),
                 std::logic_error);
    // Out-of-range bits are clamped first: only ways beyond the
    // geometry is degenerate-empty too.
    EXPECT_THROW(mgr.grant(0, l3, 0, ~WayMask{0} << 16, 0),
                 std::logic_error);
    // Double grant and bad vm ids panic; release without a lease too.
    mgr.grant(0, l3, 0, 0b0011, 0);
    EXPECT_THROW(mgr.grant(0, l3, 10, 0b1100, 0), std::logic_error);
    EXPECT_THROW(mgr.grant(1, l3, 0, 0b0011, 0), std::logic_error);
    mgr.release(0, l3, 20, false);
    EXPECT_THROW(mgr.release(0, l3, 30, false), std::logic_error);
}

TEST(CacheLeaseManager_, StateRoundTripsThroughSnapshot)
{
    auto l3 = makeL3();
    CacheLeaseManager mgr(2, 1000);
    mgr.grant(0, l3, 100, 0b0011, 2);
    mgr.grant(1, l3, 150, 0b0100, 0);
    mgr.release(1, l3, 300, true);

    auto save = hh::snap::Archive::forSave();
    mgr.serialize(save);
    const auto blob = save.take();

    CacheLeaseManager loaded(2, 1000);
    auto load = hh::snap::Archive::forLoad(blob);
    loaded.serialize(load);
    ASSERT_TRUE(load.ok()) << load.error();
    EXPECT_TRUE(loaded.active(0));
    EXPECT_FALSE(loaded.active(1));
    EXPECT_EQ(loaded.lease(0).l3Ways, 0b0011u);
    EXPECT_EQ(loaded.lease(0).l2Bonus, 2u);
    EXPECT_EQ(loaded.lease(0).expiresAt, 1100u);
    EXPECT_EQ(loaded.lease(1).everLeased, 0b0100u);
    EXPECT_EQ(loaded.grants(), 2u);
    EXPECT_EQ(loaded.expiries(), 1u);
    EXPECT_EQ(loaded.flushedLines(), mgr.flushedLines());
    EXPECT_EQ(loaded.wayCycles(300), mgr.wayCycles(300));
}

// ----------------------------------------------- conformance contract

class LeaseConformance : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LeaseConformance, WorkerCountsAndMidLeaseResumeAreByteIdentical)
{
    const SystemConfig cfg = leaseConfig(GetParam());
    const unsigned servers = 2;
    const std::uint64_t seed = 5;

    const ClusterResults ref = runCluster(cfg, servers, seed, 1);
    // The run actually leased: the contract would be vacuous without
    // grants, and the shortened term forces full lifecycles through.
    EXPECT_GT(ref.leaseGrants, 0u);
    EXPECT_GT(ref.leaseRecalls + ref.leaseExpiries, 0u);
    EXPECT_GT(ref.leaseWayCycles, 0u);
    const std::string want = ref.serialized();
    const std::string want_jsonl = hubFor(cfg, ref).jsonl();
    for (const unsigned workers : {4u, 8u}) {
        ClusterResults res = runCluster(cfg, servers, seed, workers);
        EXPECT_EQ(res.serialized(), want) << "workers=" << workers;
        EXPECT_EQ(hubFor(cfg, std::move(res)).jsonl(), want_jsonl)
            << "workers=" << workers;
    }

    // Save mid-run — past several grant/expiry rounds, with leases in
    // flight — load, resume: the lease slots ride snapshot section
    // 0x18 and the partitions' harvest masks ride their VM sections,
    // so the resumed run must reproduce the uninterrupted one
    // byte-for-byte, telemetry included.
    const std::string path =
        tmpPath(std::string("hh_lease_") + GetParam() + ".hhcp");
    std::string err;
    ASSERT_TRUE(checkpointClusterAt(cfg, servers, seed, 2,
                                    hh::sim::msToCycles(2.0), path,
                                    &err))
        << err;
    auto resumed = resumeCluster(path, cfg, 4, &err);
    ASSERT_TRUE(resumed.has_value()) << err;
    EXPECT_EQ(resumed->serialized(), want);
    EXPECT_EQ(hubFor(cfg, *std::move(resumed)).jsonl(), want_jsonl);
}

INSTANTIATE_TEST_SUITE_P(LeasePolicies, LeaseConformance,
                         ::testing::Values("legacy", "static",
                                           "hysteresis"));

TEST(LeaseCheckpoint, MismatchedLendKnobsRejectCheckpoint)
{
    // The config fingerprint covers every cacheLend* knob, so a
    // resume under different leasing parameters is refused up front
    // instead of desynchronizing section 0x18 mid-load.
    const SystemConfig cfg = leaseConfig("static");
    const std::string path = tmpPath("hh_lease_mismatch.hhcp");
    std::string err;
    ASSERT_TRUE(checkpointClusterAt(cfg, 2, 5, 2,
                                    hh::sim::msToCycles(2.0), path,
                                    &err))
        << err;
    SystemConfig off = cfg;
    off.cacheLendEnabled = false;
    EXPECT_FALSE(resumeCluster(path, off, 2, &err).has_value());
    EXPECT_NE(err.find("different SystemConfig"), std::string::npos)
        << err;
    SystemConfig narrower = cfg;
    narrower.cacheLendL3Ways = 2;
    EXPECT_FALSE(resumeCluster(path, narrower, 2, &err).has_value());
    EXPECT_NE(err.find("different SystemConfig"), std::string::npos)
        << err;
    SystemConfig shorter = cfg;
    shorter.cacheLendTerm = hh::sim::msToCycles(0.5);
    EXPECT_FALSE(resumeCluster(path, shorter, 2, &err).has_value());
    EXPECT_NE(err.find("different SystemConfig"), std::string::npos)
        << err;
}

// --------------------------------------------------- spec validation

TEST(LeaseSpec, CacheLendKeysParseIntoTheConfig)
{
    hh::exp::ExperimentSpec spec;
    std::string err;
    ASSERT_TRUE(hh::exp::parseSpec("name = l\n"
                                   "cacheLendEnabled = true\n"
                                   "cacheLendL3Ways = 6\n"
                                   "cacheLendL2WayFraction = 0.25\n"
                                   "cacheLendPeriodMs = 0.5\n"
                                   "cacheLendTermMs = 2\n",
                                   &spec, &err))
        << err;
    const auto pts = spec.points();
    ASSERT_FALSE(pts.empty());
    const SystemConfig &cfg = pts[0].cfg;
    EXPECT_TRUE(cfg.cacheLendEnabled);
    EXPECT_EQ(cfg.cacheLendL3Ways, 6u);
    EXPECT_DOUBLE_EQ(cfg.cacheLendL2WayFraction, 0.25);
    EXPECT_EQ(cfg.cacheLendPeriod, hh::sim::msToCycles(0.5));
    EXPECT_EQ(cfg.cacheLendTerm, hh::sim::msToCycles(2.0));
}

TEST(LeaseSpec, DegenerateLendValuesFailWithLineNumbers)
{
    hh::exp::ExperimentSpec spec;
    std::string err;
    // The owner must keep at least one way of its 16-way partition.
    EXPECT_FALSE(hh::exp::parseSpec("name = l\ncacheLendL3Ways = 16\n",
                                    &spec, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("1..15"), std::string::npos) << err;
    EXPECT_FALSE(hh::exp::parseSpec("cacheLendL3Ways = 0\n", &spec,
                                    &err));

    // An L2 fraction that rounds to a 0-way bonus is a silent no-op:
    // rejected at parse time like harvestWayFraction degeneracies.
    EXPECT_FALSE(hh::exp::parseSpec(
        "cacheLendL2WayFraction = 0.01\n", &spec, &err));
    EXPECT_NE(err.find("0-way"), std::string::npos) << err;
    // ... while a fraction covering the whole L2 leaves the owner
    // nothing private.
    EXPECT_FALSE(hh::exp::parseSpec(
        "cacheLendL2WayFraction = 0.95\n", &spec, &err));
    EXPECT_FALSE(hh::exp::parseSpec("cacheLendPeriodMs = 0\n", &spec,
                                    &err));
    EXPECT_FALSE(hh::exp::parseSpec("cacheLendTermMs = -1\n", &spec,
                                    &err));
    // Explicit 0 stays the documented way to disable the L2 bonus.
    EXPECT_TRUE(hh::exp::parseSpec("cacheLendL2WayFraction = 0\n",
                                   &spec, &err))
        << err;
}

// -------------------------------------------- auditor + fault action

TEST(LeaseAudit, LeaseInvariantHoldsOnALeasingRun)
{
    SystemConfig cfg = leaseConfig("static");
    cfg.auditEnabled = true;
    const ClusterResults res = runCluster(cfg, 2, 5, 2);
    EXPECT_GT(res.leaseGrants, 0u);
    EXPECT_GT(res.auditsRun, 0u);
    EXPECT_EQ(res.auditViolations, 0u) << [&] {
        std::string all;
        for (const auto &[s, v] : res.auditReports)
            all += v.component + ": " + v.message + "\n";
        return all;
    }();
}

TEST(LeaseAudit, OverstayFaultActionIsCaughtByTheLeaseInvariant)
{
    // Positive control: the lease-overstay action plants a batch line
    // in a way whose lease already ended — exactly the corruption
    // flush-on-return exists to prevent — and the auditor's "lease"
    // invariant must flag it.
    SystemConfig cfg = leaseConfig("static");
    cfg.auditEnabled = true;
    cfg.auditPeriod = 256;
    cfg.auditStopOnViolation = true;
    cfg.faults.enabled = true;
    cfg.faults.meanPeriod = hh::sim::usToCycles(20);
    cfg.faults.startAt = hh::sim::usToCycles(10);
    cfg.faults.actionsPerTick = 4;
    const auto res = runServer(cfg, "BFS", 2);
    ASSERT_GT(res.faultsInjected, 0u);
    ASSERT_GT(res.auditViolations, 0u);
    ASSERT_FALSE(res.auditReports.empty());
    bool lease_flagged = false;
    for (const auto &v : res.auditReports) {
        if (v.component == "lease") {
            lease_flagged = true;
            EXPECT_NE(v.message.find("after its lease ended"),
                      std::string::npos)
                << v.message;
        }
    }
    EXPECT_TRUE(lease_flagged);
}
