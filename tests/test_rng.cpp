/**
 * @file
 * Unit and property tests for the deterministic RNG and samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.h"

using hh::sim::Rng;
using hh::sim::ZipfSampler;

TEST(Rng, DeterministicForSameSeedAndStream)
{
    Rng a(42, 7);
    Rng b(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsDiffer)
{
    Rng a(42, 1);
    Rng b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1, 0);
    Rng b(2, 0);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(4);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(-3.0, 7.5);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 7.5);
    }
}

TEST(Rng, UniformIntWithinBound)
{
    Rng r(6);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniformInt(std::uint64_t{10});
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values hit
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng r(7);
    bool lo_seen = false;
    bool hi_seen = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniformInt(std::int64_t{-2}, std::int64_t{2});
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo_seen |= v == -2;
        hi_seen |= v == 2;
    }
    EXPECT_TRUE(lo_seen);
    EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformIntZeroPanics)
{
    Rng r(8);
    EXPECT_THROW(r.uniformInt(std::uint64_t{0}), std::logic_error);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(10);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ExponentialPositive)
{
    Rng r(12);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments)
{
    Rng r(13);
    double sum = 0;
    double sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted)
{
    Rng r(14);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMedian)
{
    Rng r(15);
    std::vector<double> v;
    const int n = 20001;
    for (int i = 0; i < n; ++i)
        v.push_back(r.lognormal(std::log(5.0), 0.5));
    std::sort(v.begin(), v.end());
    EXPECT_NEAR(v[n / 2], 5.0, 0.25);
}

TEST(Zipf, SizeAndRange)
{
    Rng r(16);
    ZipfSampler z(100, 0.9);
    EXPECT_EQ(z.size(), 100u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(z.sample(r), 100u);
}

TEST(Zipf, SkewFavorsLowIndices)
{
    Rng r(17);
    ZipfSampler z(1000, 0.99);
    int low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        low += z.sample(r) < 10 ? 1 : 0;
    // With theta=0.99 the top-10 of 1000 items draw a large share.
    EXPECT_GT(static_cast<double>(low) / n, 0.25);
}

TEST(Zipf, ZeroThetaIsUniform)
{
    Rng r(18);
    ZipfSampler z(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(r)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

TEST(Zipf, SingleItem)
{
    Rng r(19);
    ZipfSampler z(1, 0.9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(z.sample(r), 0u);
}

TEST(Zipf, EmptyPanics)
{
    EXPECT_THROW(ZipfSampler(0, 0.9), std::logic_error);
}

/** Property: every distribution is reproducible per (seed, stream). */
class RngReproduce : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngReproduce, SequencesMatch)
{
    const std::uint64_t seed = GetParam();
    Rng a(seed, 3);
    Rng b(seed, 3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
        EXPECT_DOUBLE_EQ(a.exponential(2.0), b.exponential(2.0));
        EXPECT_DOUBLE_EQ(a.normal(), b.normal());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngReproduce,
                         ::testing::Values(1, 2, 3, 17, 1234567,
                                           0xDEADBEEF));
