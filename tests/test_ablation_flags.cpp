/**
 * @file
 * Integration tests for the ablation flags behind Figures 12/13/15:
 * each hardware feature must remove the software cost it replaces.
 */

#include <gtest/gtest.h>

#include "cluster/experiment.h"

using namespace hh::cluster;

namespace {

SystemConfig
base()
{
    SystemConfig cfg = makeSystem(SystemKind::HarvestBlock);
    cfg.requestsPerVm = 60;
    cfg.accessSampling = 32;
    cfg.seed = 13;
    return cfg;
}

double
sumReassignMs(const ServerResults &r)
{
    double s = 0;
    for (const auto &svc : r.services)
        s += svc.reassignMs;
    return s;
}

double
sumFlushMs(const ServerResults &r)
{
    double s = 0;
    for (const auto &svc : r.services)
        s += svc.flushMs;
    return s;
}

} // namespace

TEST(Ablation, HwSchedRemovesHypervisorCost)
{
    auto cfg = base();
    const auto sw = runServer(cfg, "BFS", 13);
    cfg.hwSched = true;
    const auto hw = runServer(cfg, "BFS", 13);
    EXPECT_LT(sumReassignMs(hw), sumReassignMs(sw) / 5.0);
}

TEST(Ablation, PartitioningRemovesCriticalPathFlush)
{
    auto cfg = base();
    cfg.hwSched = true;
    const auto full_flush = runServer(cfg, "BFS", 13);
    cfg.partitioning = true;
    const auto part = runServer(cfg, "BFS", 13);
    // With partitioning, reclamation flushes happen in the
    // background: the charged flush time collapses.
    EXPECT_LT(sumFlushMs(part), sumFlushMs(full_flush) / 2.0);
}

TEST(Ablation, EachStepNeverIncreasesReassignOrFlushCharges)
{
    auto cfg = base();
    double prev_overhead = 1e18;
    const auto step = [&](auto mutate) {
        mutate(cfg);
        const auto r = runServer(cfg, "BFS", 13);
        const double overhead = sumReassignMs(r) + sumFlushMs(r);
        EXPECT_LE(overhead, prev_overhead * 1.10);
        prev_overhead = overhead;
    };
    step([](SystemConfig &) {});
    step([](SystemConfig &c) { c.hwSched = true; });
    step([](SystemConfig &c) { c.hwQueue = true; });
    step([](SystemConfig &c) { c.hwCtxtSwitch = true; });
    step([](SystemConfig &c) { c.partitioning = true; });
    step([](SystemConfig &c) { c.efficientFlush = true; });
    step([](SystemConfig &c) {
        c.repl = hh::cache::ReplKind::HardHarvest;
    });
}

TEST(Ablation, HwQueueLowersQueueComponent)
{
    auto cfg = makeSystem(SystemKind::NoHarvest);
    cfg.requestsPerVm = 60;
    cfg.accessSampling = 32;
    cfg.hwSched = true; // isolate the queue-op term
    const auto sw = runServer(cfg, "BFS", 13);
    cfg.hwQueue = true;
    const auto hw = runServer(cfg, "BFS", 13);
    double sw_q = 0;
    double hw_q = 0;
    for (std::size_t i = 0; i < sw.services.size(); ++i) {
        sw_q += sw.services[i].queueMs;
        hw_q += hw.services[i].queueMs;
    }
    EXPECT_LT(hw_q, sw_q);
}

TEST(Ablation, FlagsAreIndependentOfKindLabel)
{
    // A HarvestBlock config with every hardware flag on behaves like
    // HardHarvest-Block (same loans mechanism, tiny overheads).
    auto cfg = base();
    cfg.hwSched = true;
    cfg.hwQueue = true;
    cfg.hwCtxtSwitch = true;
    cfg.partitioning = true;
    cfg.efficientFlush = true;
    cfg.repl = hh::cache::ReplKind::HardHarvest;
    const auto res = runServer(cfg, "BFS", 13);
    auto hh = makeSystem(SystemKind::HardHarvestBlock);
    hh.requestsPerVm = 60;
    hh.accessSampling = 32;
    const auto ref = runServer(hh, "BFS", 13);
    EXPECT_EQ(res.coreLoans, ref.coreLoans);
    EXPECT_EQ(res.coreReclaims, ref.coreReclaims);
}
