/**
 * @file
 * Tests that the storage/area/power model reproduces §6.8 exactly.
 */

#include <gtest/gtest.h>

#include "core/storage_cost.h"

using hh::core::computeStorageCost;
using hh::core::StorageCostParams;

TEST(StorageCost, RqArraySize)
{
    const auto c = computeStorageCost();
    // 2048 entries x 66 bits = 16.5 KB.
    EXPECT_NEAR(c.rqKb, 16.5, 0.01);
}

TEST(StorageCost, QmPairsSize)
{
    const auto c = computeStorageCost();
    // 16 x (128 B VM state + 24 B RQ-Map + 5 B HarvestMask).
    EXPECT_NEAR(c.qmKb, 16.0 * 157.0 / 1024.0, 0.01);
}

TEST(StorageCost, ControllerMatchesPaper)
{
    const auto c = computeStorageCost();
    // §6.8: 18.9 KB per controller, 0.53 KB per core.
    EXPECT_NEAR(c.controllerKb, 18.9, 0.2);
    EXPECT_NEAR(c.controllerPerCoreKb, 0.53, 0.02);
}

TEST(StorageCost, SharedBitsMatchPaper)
{
    const auto c = computeStorageCost();
    // §6.8: 67.8 KB per server (1.9 KB per core).
    EXPECT_NEAR(c.sharedBitsPerCoreKb, 1.9, 0.05);
    EXPECT_NEAR(c.sharedBitsServerKb, 67.8, 1.5);
}

TEST(StorageCost, AreaAndPowerOverheadsMatchPaper)
{
    const auto c = computeStorageCost();
    // §6.8: 0.19% area and 0.16% power at 7 nm.
    EXPECT_NEAR(c.areaOverheadPct, 0.19, 0.02);
    EXPECT_NEAR(c.powerOverheadPct, 0.16, 0.02);
}

TEST(StorageCost, ScalesWithRqEntries)
{
    StorageCostParams p;
    p.rqEntries = 4096;
    const auto c = computeStorageCost(p);
    EXPECT_NEAR(c.rqKb, 33.0, 0.01);
}

TEST(StorageCost, TotalsAreConsistent)
{
    const auto c = computeStorageCost();
    EXPECT_NEAR(c.totalServerKb,
                c.controllerKb + c.sharedBitsServerKb, 1e-9);
    EXPECT_NEAR(c.controllerKb, c.rqKb + c.qmKb, 1e-9);
}
