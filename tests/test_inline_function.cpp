/**
 * @file
 * Unit tests for the small-buffer-optimised callable wrapper used by
 * the event-queue hot path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_function.h"

using hh::sim::InlineFunction;

TEST(InlineFunction, DefaultIsEmpty)
{
    InlineFunction<int()> f;
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, InvokesSmallLambdaInline)
{
    int x = 41;
    InlineFunction<int()> f = [&x] { return x + 1; };
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_TRUE(f.isInline());
    EXPECT_EQ(f(), 42);
}

TEST(InlineFunction, PassesArgumentsAndReturns)
{
    InlineFunction<int(int, int)> f = [](int a, int b) {
        return a * 10 + b;
    };
    EXPECT_EQ(f(3, 4), 34);
}

TEST(InlineFunction, LargeCaptureFallsBackToHeap)
{
    struct Big
    {
        std::uint64_t words[16] = {};
    };
    Big big;
    big.words[0] = 7;
    big.words[15] = 9;
    InlineFunction<std::uint64_t()> f = [big] {
        return big.words[0] + big.words[15];
    };
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_FALSE(f.isInline());
    EXPECT_EQ(f(), 16u);
}

TEST(InlineFunction, MoveTransfersOwnership)
{
    int calls = 0;
    InlineFunction<void()> a = [&calls] { ++calls; };
    InlineFunction<void()> b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);
}

TEST(InlineFunction, MoveAssignReplacesHeldCallable)
{
    int first = 0;
    int second = 0;
    InlineFunction<void()> f = [&first] { ++first; };
    f = InlineFunction<void()>([&second] { ++second; });
    f();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
}

TEST(InlineFunction, MoveOnlyCallableSupported)
{
    auto p = std::make_unique<int>(5);
    InlineFunction<int()> f = [p = std::move(p)] { return *p; };
    EXPECT_EQ(f(), 5);
}

TEST(InlineFunction, DestroysCaptureExactlyOnce)
{
    struct Probe
    {
        int *counter;
        explicit Probe(int *c) : counter(c) {}
        Probe(const Probe &o) : counter(o.counter) { ++*counter; }
        Probe(Probe &&o) noexcept : counter(o.counter)
        {
            o.counter = nullptr;
        }
        ~Probe()
        {
            if (counter)
                --*counter;
        }
    };
    int alive = 0;
    {
        Probe probe(&alive);
        ++alive; // the capture copy below
        InlineFunction<void()> f = [p = std::move(probe)] {
            (void)p;
        };
        InlineFunction<void()> g = std::move(f);
        g();
        EXPECT_EQ(alive, 1); // only the moved-into capture remains
    }
    EXPECT_EQ(alive, 0);
}

TEST(InlineFunction, ResetDestroysAndEmpties)
{
    int alive = 0;
    struct Probe
    {
        int *c;
        explicit Probe(int *counter) : c(counter) { ++*c; }
        Probe(Probe &&o) noexcept : c(o.c) { o.c = nullptr; }
        Probe(const Probe &) = delete;
        ~Probe()
        {
            if (c)
                --*c;
        }
    };
    InlineFunction<void()> f = [p = Probe(&alive)] { (void)p; };
    EXPECT_EQ(alive, 1);
    f.reset();
    EXPECT_EQ(alive, 0);
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, SurvivesVectorReallocation)
{
    std::vector<InlineFunction<int()>> fns;
    for (int i = 0; i < 100; ++i)
        fns.emplace_back([i] { return i; });
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fns[static_cast<std::size_t>(i)](), i);
}
