/**
 * @file
 * Unit tests for the SmartHarvest-like lending policy.
 */

#include <gtest/gtest.h>

#include "vm/sw_harvest.h"

using hh::vm::SmartHarvestPolicy;
using hh::vm::SwHarvestConfig;

TEST(SwHarvest, EwmaTracksObservations)
{
    SmartHarvestPolicy p;
    p.observe(0, 2.0);
    EXPECT_DOUBLE_EQ(p.predictedBusy(0), 2.0);
    p.observe(0, 0.0);
    EXPECT_LT(p.predictedBusy(0), 2.0);
    EXPECT_GT(p.predictedBusy(0), 0.0);
}

TEST(SwHarvest, UnknownVmPredictsZero)
{
    SmartHarvestPolicy p;
    EXPECT_DOUBLE_EQ(p.predictedBusy(7), 0.0);
}

TEST(SwHarvest, EmergencyBufferReservesCores)
{
    SwHarvestConfig cfg;
    cfg.emergencyBuffer = 2;
    SmartHarvestPolicy p(cfg);
    p.observe(0, 0.0);
    // 4 bound cores, all idle long enough: only 2 may be lent.
    EXPECT_EQ(p.lendableCores(0, 4, 4, 4), 2u);
}

TEST(SwHarvest, PredictionReducesLending)
{
    SwHarvestConfig cfg;
    cfg.emergencyBuffer = 1;
    SmartHarvestPolicy p(cfg);
    p.observe(0, 2.0); // expects 2 busy cores soon
    EXPECT_EQ(p.lendableCores(0, 4, 4, 4), 1u);
}

TEST(SwHarvest, NoLendingWhenFullyUtilized)
{
    SwHarvestConfig cfg;
    cfg.emergencyBuffer = 1;
    SmartHarvestPolicy p(cfg);
    p.observe(0, 4.0);
    EXPECT_EQ(p.lendableCores(0, 4, 0, 0), 0u);
}

TEST(SwHarvest, LimitedByIdleAndThresholdCounts)
{
    SwHarvestConfig cfg;
    cfg.emergencyBuffer = 0;
    SmartHarvestPolicy p(cfg);
    p.observe(0, 0.0);
    EXPECT_EQ(p.lendableCores(0, 4, 2, 1), 1u);
    EXPECT_EQ(p.lendableCores(0, 4, 2, 2), 2u);
}

TEST(SwHarvest, FractionalPredictionRoundsUp)
{
    SwHarvestConfig cfg;
    cfg.emergencyBuffer = 0;
    SmartHarvestPolicy p(cfg);
    p.observe(0, 0.4); // ceil -> reserves one core
    EXPECT_EQ(p.lendableCores(0, 4, 4, 4), 3u);
}

TEST(SwHarvest, VmsTrackedIndependently)
{
    SmartHarvestPolicy p;
    p.observe(0, 4.0);
    p.observe(1, 0.0);
    EXPECT_LT(p.lendableCores(0, 4, 4, 4),
              p.lendableCores(1, 4, 4, 4));
}
