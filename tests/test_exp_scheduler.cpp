/**
 * @file
 * JobScheduler contract tests: deduplication, bit-identity of engine
 * results against direct runServer() calls, ledger memoization across
 * scheduler instances, the non-cacheable bypass for observability
 * configs, custom-job replay, and warm-started sweep members being
 * byte-identical to cold runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "cluster/system_config.h"
#include "exp/codec.h"
#include "exp/ledger.h"
#include "exp/scheduler.h"

using hh::cluster::makeSystem;
using hh::cluster::SystemConfig;
using hh::cluster::SystemKind;
using hh::exp::encodeServerResults;
using hh::exp::JobScheduler;
using hh::exp::ResultLedger;

namespace {

/** Tiny-but-real server config; ~1s per cold run. */
SystemConfig
tinyConfig()
{
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 30;
    cfg.accessSampling = 32;
    return cfg;
}

/**
 * Sweep point for the warm-start group: a single uniform primary VM
 * keeps per-VM completion skew from shrinking the shareable prefix,
 * and warmupFraction 0.5 gives the donor a wide snapshot window
 * (mirrors the bench_speed "experiment" sweep).
 */
SystemConfig
sweepConfig(unsigned budget)
{
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = budget;
    cfg.accessSampling = 32;
    cfg.primaryVms = 1;
    cfg.warmupFraction = 0.5;
    return cfg;
}

std::string
tmpLedger(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::unique_ptr<ResultLedger>
openLedger(const std::string &path)
{
    ResultLedger::Meta meta;
    meta.command = "test_exp_scheduler";
    meta.hardwareThreads = 2;
    meta.poolWorkers = 2;
    std::string err;
    auto ledger = ResultLedger::open(path, meta, &err);
    EXPECT_NE(ledger, nullptr) << err;
    return ledger;
}

} // namespace

TEST(ExpScheduler, DedupAndBitIdentityToDirectRun)
{
    const SystemConfig cfg = tinyConfig();
    JobScheduler sched;
    const auto h1 = sched.addServer(cfg, "BFS", 1);
    const auto h2 = sched.addServer(cfg, "BFS", 1);
    sched.run();

    EXPECT_EQ(sched.stats().submitted, 2u);
    EXPECT_EQ(sched.stats().unique, 1u);
    EXPECT_EQ(sched.stats().simulated, 1u);

    const std::string via_engine =
        encodeServerResults(sched.serverResult(h1));
    EXPECT_EQ(via_engine, encodeServerResults(sched.serverResult(h2)));
    EXPECT_EQ(via_engine, encodeServerResults(
                              hh::cluster::runServer(cfg, "BFS", 1)));

    // A different seed is a different job.
    JobScheduler sched2;
    sched2.addServer(cfg, "BFS", 1);
    sched2.addServer(cfg, "BFS", 2);
    EXPECT_EQ(sched2.stats().unique, 2u);
}

TEST(ExpScheduler, LedgerMemoizesAcrossSchedulers)
{
    const std::string path = tmpLedger("hh_sched_memo.jsonl");
    const SystemConfig cfg = tinyConfig();

    std::string first;
    {
        auto ledger = openLedger(path);
        JobScheduler::Options opts;
        opts.ledger = ledger.get();
        JobScheduler sched(opts);
        const auto h = sched.addServer(cfg, "BFS", 1);
        const auto c = sched.addCustom("unit", "memo-key", 7, [] {
            return std::string("custom payload");
        });
        sched.run();
        EXPECT_EQ(sched.stats().simulated, 2u);
        EXPECT_EQ(ledger->rows(), 2u);
        first = encodeServerResults(sched.serverResult(h));
        EXPECT_EQ(sched.payload(c), "custom payload");
    }

    // A fresh scheduler against the same ledger simulates nothing and
    // must not even invoke the custom job's function.
    auto ledger = openLedger(path);
    EXPECT_EQ(ledger->recoveredRows(), 2u);
    JobScheduler::Options opts;
    opts.ledger = ledger.get();
    JobScheduler sched(opts);
    const auto h = sched.addServer(cfg, "BFS", 1);
    std::atomic<int> calls{0};
    const auto c = sched.addCustom("unit", "memo-key", 7, [&] {
        ++calls;
        return std::string("custom payload");
    });
    sched.run();
    EXPECT_EQ(sched.stats().memoized, 2u);
    EXPECT_EQ(sched.stats().simulated, 0u);
    EXPECT_EQ(calls.load(), 0);
    EXPECT_EQ(encodeServerResults(sched.serverResult(h)), first);
    EXPECT_EQ(sched.payload(c), "custom payload");
}

TEST(ExpScheduler, ObservabilityConfigsBypassTheCache)
{
    const std::string path = tmpLedger("hh_sched_obs.jsonl");
    SystemConfig cfg = tinyConfig();
    cfg.traceEnabled = true;
    cfg.traceCapacity = 1u << 12;

    auto ledger = openLedger(path);
    JobScheduler::Options opts;
    opts.ledger = ledger.get();
    {
        JobScheduler sched(opts);
        sched.addServer(cfg, "BFS", 1);
        sched.run();
        EXPECT_EQ(sched.stats().simulated, 1u);
    }
    // Nothing was memoized, and a second scheduler re-simulates.
    EXPECT_EQ(ledger->rows(), 0u);
    JobScheduler sched(opts);
    sched.addServer(cfg, "BFS", 1);
    sched.run();
    EXPECT_EQ(sched.stats().memoized, 0u);
    EXPECT_EQ(sched.stats().simulated, 1u);
}

TEST(ExpScheduler, WarmStartedSweepIsBitIdenticalToCold)
{
    const std::vector<unsigned> budgets = {60, 120};

    JobScheduler::Options cold_opts;
    cold_opts.warmStart = false;
    JobScheduler cold(cold_opts);
    std::vector<JobScheduler::Handle> cold_handles;
    for (const unsigned b : budgets)
        cold_handles.push_back(cold.addServer(sweepConfig(b), "BFS", 3));
    cold.run();
    EXPECT_EQ(cold.stats().prefixGroups, 0u);
    EXPECT_EQ(cold.stats().warmStarted, 0u);

    JobScheduler warm;
    std::vector<JobScheduler::Handle> warm_handles;
    for (const unsigned b : budgets)
        warm_handles.push_back(warm.addServer(sweepConfig(b), "BFS", 3));
    warm.run();
    EXPECT_EQ(warm.stats().prefixGroups, 1u);
    EXPECT_EQ(warm.stats().warmStarted, 1u);

    for (std::size_t i = 0; i < budgets.size(); ++i)
        EXPECT_EQ(
            encodeServerResults(warm.serverResult(warm_handles[i])),
            encodeServerResults(cold.serverResult(cold_handles[i])))
            << "budget " << budgets[i];
}

TEST(ExpScheduler, WarmPrefixKeyIgnoresOnlyTheBudget)
{
    const SystemConfig a = sweepConfig(60);
    const SystemConfig b = sweepConfig(120);
    EXPECT_EQ(hh::exp::warmPrefixKey(a, "BFS", 3),
              hh::exp::warmPrefixKey(b, "BFS", 3));
    EXPECT_NE(hh::exp::warmPrefixKey(a, "BFS", 3),
              hh::exp::warmPrefixKey(a, "BFS", 4));
    EXPECT_NE(hh::exp::warmPrefixKey(a, "BFS", 3),
              hh::exp::warmPrefixKey(a, "PRank", 3));
    SystemConfig c = a;
    c.candidateFraction = 0.5;
    EXPECT_NE(hh::exp::warmPrefixKey(a, "BFS", 3),
              hh::exp::warmPrefixKey(c, "BFS", 3));
}

TEST(ExpScheduler, SpecPointsRunThroughTheEngine)
{
    hh::exp::ExperimentSpec spec;
    spec.name = "unit";
    spec.systems = {"NoHarvest"};
    spec.overrides = {{"requestsPerVm", "20"},
                      {"accessSampling", "32"}};
    spec.seeds = {1, 2};

    JobScheduler sched;
    const auto handles = sched.addSpec(spec);
    ASSERT_EQ(handles.size(), 2u);
    sched.run();
    EXPECT_EQ(sched.stats().unique, 2u);
    EXPECT_GT(sched.serverResult(handles[0]).avgP99Ms(), 0.0);
}
