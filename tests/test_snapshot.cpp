/**
 * @file
 * Unit tests for the snapshot subsystem's component round-trips: Rng
 * position-exactness and stream independence, SubQueue state with
 * overflow pending, a cache hierarchy mid-flush (hidden harvest
 * ways), and a full server saved while a lend/reclaim race is in
 * flight (the PR-1 regression state).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/hierarchy.h"
#include "sim/event_queue.h"
#include "sim/event_queue_heap.h"
#include "cluster/server.h"
#include "cluster/system_config.h"
#include "core/rq.h"
#include "sim/rng.h"
#include "snapshot/archive.h"

using hh::snap::Archive;

namespace {

std::vector<std::uint8_t>
saveRng(hh::sim::Rng &rng)
{
    auto ar = Archive::forSave();
    rng.serialize(ar);
    EXPECT_TRUE(ar.ok());
    return ar.take();
}

void
loadRng(hh::sim::Rng &rng, const std::vector<std::uint8_t> &bytes)
{
    auto ar = Archive::forLoad(bytes);
    rng.serialize(ar);
    EXPECT_TRUE(ar.ok());
}

} // namespace

TEST(SnapshotRng, RestoreIsPositionExact)
{
    hh::sim::Rng rng(42, 7);
    for (int i = 0; i < 1000; ++i)
        rng.next();

    const auto bytes = saveRng(rng);

    // Reference continuation from the save point.
    std::vector<std::uint64_t> want;
    for (int i = 0; i < 64; ++i)
        want.push_back(rng.next());

    // Restore into a generator with a completely different identity.
    hh::sim::Rng other(999, 123);
    loadRng(other, bytes);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(other.next(), want[i]) << "draw " << i;
}

TEST(SnapshotRng, CachedBoxMullerNormalSurvives)
{
    hh::sim::Rng rng(7, 1);
    // An odd number of normal() draws leaves one cached variate.
    rng.normal();

    const auto bytes = saveRng(rng);
    const double want_n = rng.normal();
    const std::uint64_t want_u = rng.next();

    hh::sim::Rng other(1, 2);
    loadRng(other, bytes);
    EXPECT_EQ(other.normal(), want_n);
    EXPECT_EQ(other.next(), want_u);
}

TEST(SnapshotRng, RestoreDoesNotPerturbOtherStreams)
{
    // Two independent streams of one experiment seed.
    hh::sim::Rng a(5, 1);
    hh::sim::Rng b(5, 2);
    for (int i = 0; i < 10; ++i)
        a.next();

    // b's future draws must be the same whether or not a is
    // saved/restored around them.
    hh::sim::Rng b_ref(5, 2);
    const auto bytes = saveRng(a);
    loadRng(a, bytes);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(b.next(), b_ref.next());

    // And distinct streams stay distinct after a restore.
    hh::sim::Rng c(5, 3);
    EXPECT_NE(a.next(), c.next());
}

TEST(SnapshotRq, OverflowPendingRoundTrip)
{
    // 2 chunks of 4 entries; give the subqueue one chunk so pushing
    // 7 requests leaves 3 waiting in the in-memory overflow subqueue.
    hh::core::RequestQueue rq(2, 4);
    hh::core::SubQueue q(rq);
    const int chunk = rq.allocChunk();
    ASSERT_GE(chunk, 0);
    ASSERT_TRUE(q.addChunk(static_cast<unsigned>(chunk)));
    for (std::uint64_t p = 1; p <= 7; ++p)
        q.enqueue(p);
    // Put one entry in each non-ready state too.
    ASSERT_TRUE(q.dequeue().has_value()); // payload 1 -> running
    ASSERT_TRUE(q.dequeue().has_value()); // payload 2 -> running
    q.markBlocked(2);
    ASSERT_EQ(q.overflowSize(), 3u);

    auto save = Archive::forSave();
    rq.serialize(save);
    q.serialize(save);
    ASSERT_TRUE(save.ok());

    hh::core::RequestQueue rq2(2, 4);
    hh::core::SubQueue q2(rq2);
    auto load = Archive::forLoad(save.take());
    rq2.serialize(load);
    q2.serialize(load);
    ASSERT_TRUE(load.ok());

    EXPECT_EQ(rq2.freeChunks(), rq.freeChunks());
    EXPECT_EQ(q2.rqMap(), q.rqMap());
    EXPECT_EQ(q2.readyEntries(), q.readyEntries());
    EXPECT_EQ(q2.runningEntries(), q.runningEntries());
    EXPECT_EQ(q2.blockedEntries(), q.blockedEntries());
    EXPECT_EQ(q2.overflowEntries(), q.overflowEntries());

    // Both queues must now evolve identically: completing the running
    // request frees a slot and drains the oldest overflow entry.
    q.complete(1);
    q2.complete(1);
    EXPECT_EQ(q2.overflowEntries(), q.overflowEntries());
    EXPECT_EQ(q2.readyEntries(), q.readyEntries());
    while (auto id = q.dequeue()) {
        auto id2 = q2.dequeue();
        ASSERT_TRUE(id2.has_value());
        EXPECT_EQ(*id2, *id);
        q.complete(*id);
        q2.complete(*id2);
    }
    EXPECT_FALSE(q2.dequeue().has_value());
    // Drain the remaining bookkeeping so teardown doesn't count the
    // test's synthetic payloads as leaks.
    q.markReady(2);
    q2.markReady(2);
    while (auto id = q.dequeue()) {
        q.complete(*id);
        auto id2 = q2.dequeue();
        ASSERT_TRUE(id2.has_value());
        q2.complete(*id2);
    }
}

namespace {

hh::cache::HierarchyConfig
partitionedConfig()
{
    hh::cache::HierarchyConfig cfg;
    cfg.l1d = hh::cache::Geometry{8, 4, 5};
    cfg.l1i = hh::cache::Geometry{8, 4, 5};
    cfg.l2 = hh::cache::Geometry{16, 4, 13};
    cfg.l1tlb = hh::cache::Geometry{4, 4, 2};
    cfg.l2tlb = hh::cache::Geometry{8, 4, 12};
    cfg.partitioning = true;
    return cfg;
}

hh::cache::MemAccess
dataAccess(hh::cache::Addr page, std::uint32_t line = 0)
{
    hh::cache::MemAccess a;
    a.page = page;
    a.line = line;
    a.isInstr = false;
    a.shared = true;
    return a;
}

} // namespace

TEST(SnapshotHierarchy, MidFlushHiddenWaysRoundTrip)
{
    using hh::sim::Cycles;
    auto cfg = partitionedConfig();
    hh::cache::CoreHierarchy h(cfg, nullptr, nullptr);

    // Warm a working set, then flush the harvest region with the
    // hiding window still open at save time.
    for (hh::cache::Addr p = 1; p <= 16; ++p)
        h.access(100, dataAccess(p, static_cast<std::uint32_t>(p)));
    const Cycles flush_at = 2000;
    const Cycles bound = 100000;
    h.flushHarvestRegion(flush_at, bound);

    auto save = Archive::forSave();
    h.serialize(save);
    ASSERT_TRUE(save.ok());

    hh::cache::CoreHierarchy h2(cfg, nullptr, nullptr);
    auto load = Archive::forLoad(save.take());
    h2.serialize(load);
    ASSERT_TRUE(load.ok());

    // Identical access streams both inside the hiding window and
    // after it expires must cost identical latencies: the restored
    // hierarchy carries the same contents, replacement state and
    // harvest_visible_at_.
    Cycles t = flush_at + 10;
    for (hh::cache::Addr p = 1; p <= 24; ++p) {
        const auto a =
            dataAccess(p, static_cast<std::uint32_t>(7 * p));
        EXPECT_EQ(h2.access(t, a), h.access(t, a)) << "page " << p;
        t += 50;
    }
    t = flush_at + bound + 10; // window expired
    for (hh::cache::Addr p = 1; p <= 24; ++p) {
        const auto a =
            dataAccess(p, static_cast<std::uint32_t>(3 * p));
        EXPECT_EQ(h2.access(t, a), h.access(t, a)) << "page " << p;
        t += 50;
    }
    EXPECT_EQ(h2.accesses(), h.accesses());
}

TEST(SnapshotServer, RaceStateMidRunRoundTrip)
{
    // The PR-1 regression state: untracked lend completions (the
    // resurrected race) with fault injection stirring reclaims into
    // transitions, auditing on. A snapshot taken mid-run must capture
    // the in-flight lend/reclaim events and replay to the same
    // violations, fault schedule and results.
    hh::cluster::SystemConfig cfg = hh::cluster::makeSystem(
        hh::cluster::SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 30;
    cfg.accessSampling = 32;
    cfg.auditEnabled = true;
    cfg.auditPeriod = 64;
    cfg.auditStopOnViolation = true;
    cfg.faults.enabled = true;
    cfg.faults.resurrectLendRace = true;
    cfg.faults.meanPeriod = hh::sim::usToCycles(5);
    cfg.faults.startAt = hh::sim::usToCycles(10);
    cfg.faults.actionsPerTick = 6;

    const hh::sim::Cycles T = hh::sim::usToCycles(60);

    hh::cluster::ServerSim a(cfg, "BFS", 2);
    a.startRun();
    a.advanceRun(T);
    auto save = Archive::forSave();
    a.saveState(save);
    ASSERT_TRUE(save.ok()) << save.error();

    a.advanceRun(hh::cluster::ServerSim::horizon());
    const hh::cluster::ServerResults ra = a.finishRun();

    hh::cluster::ServerSim b(cfg, "BFS", 2);
    auto load = Archive::forLoad(save.take());
    b.loadState(load);
    ASSERT_TRUE(load.ok()) << load.error();
    b.advanceRun(hh::cluster::ServerSim::horizon());
    const hh::cluster::ServerResults rb = b.finishRun();

    EXPECT_EQ(rb.auditViolations, ra.auditViolations);
    EXPECT_EQ(rb.auditsRun, ra.auditsRun);
    EXPECT_EQ(rb.faultsInjected, ra.faultsInjected);
    EXPECT_EQ(rb.coreLoans, ra.coreLoans);
    EXPECT_EQ(rb.coreReclaims, ra.coreReclaims);
    EXPECT_EQ(rb.elapsedSec, ra.elapsedSec);
    ASSERT_EQ(rb.services.size(), ra.services.size());
    for (std::size_t i = 0; i < ra.services.size(); ++i) {
        EXPECT_EQ(rb.services[i].count, ra.services[i].count);
        EXPECT_EQ(rb.services[i].p99Ms, ra.services[i].p99Ms);
        EXPECT_EQ(rb.services[i].meanMs, ra.services[i].meanMs);
    }
    ASSERT_EQ(rb.auditReports.size(), ra.auditReports.size());
    for (std::size_t i = 0; i < ra.auditReports.size(); ++i) {
        EXPECT_EQ(rb.auditReports[i].time, ra.auditReports[i].time);
        EXPECT_EQ(rb.auditReports[i].message,
                  ra.auditReports[i].message);
    }
}

TEST(SnapshotServer, ObservabilityMismatchIsRejected)
{
    hh::cluster::SystemConfig cfg = hh::cluster::makeSystem(
        hh::cluster::SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 40;
    cfg.auditEnabled = true;

    hh::cluster::ServerSim a(cfg, "BFS", 3);
    a.startRun();
    a.advanceRun(hh::sim::msToCycles(0.5));
    auto save = Archive::forSave();
    a.saveState(save);
    ASSERT_TRUE(save.ok());

    // Restore into a server without the auditor: clear error, not
    // silent divergence.
    hh::cluster::SystemConfig plain = cfg;
    plain.auditEnabled = false;
    hh::cluster::ServerSim b(plain, "BFS", 3);
    auto load = Archive::forLoad(save.take());
    b.loadState(load);
    EXPECT_FALSE(load.ok());
    EXPECT_NE(load.error().find("observability"), std::string::npos)
        << load.error();
}

namespace {

/**
 * Build a queue with a mix of live and cancelled tagged events.
 * The schedule pattern lands events across wheel levels (and the
 * heap's sift paths): ties, near, mid and far deadlines.
 */
template <typename Queue>
void
populateQueue(Queue &q)
{
    using hh::snap::SnapTag;
    std::vector<hh::sim::EventId> ids;
    for (std::uint64_t i = 0; i < 40; ++i) {
        SnapTag tag;
        tag.kind = SnapTag::kCoreIdle;
        tag.a = i; // ordinal; checked by the rearm callbacks
        const hh::sim::Cycles when =
            (i % 4 == 0) ? 100
                         : (i % 4 == 1) ? 100 + i
                                        : (i % 4 == 2)
                                  ? 5000 + 17 * i
                                  : (hh::sim::Cycles{1} << 21) + i;
        ids.push_back(q.schedule(when, tag, [] {}));
    }
    // Tombstones: cancelled events must vanish from the snapshot
    // without perturbing the surviving (time, seq) order.
    for (std::size_t i = 0; i < ids.size(); i += 5)
        EXPECT_TRUE(q.cancel(ids[i]));
}

template <typename Queue>
std::vector<std::uint8_t>
saveQueue(Queue &q)
{
    auto ar = Archive::forSave();
    q.serialize(ar, nullptr);
    EXPECT_TRUE(ar.ok());
    return ar.take();
}

/** Restore @p bytes into @p q, rearming each event to log tag.a. */
template <typename Queue>
void
loadQueue(Queue &q, const std::vector<std::uint8_t> &bytes,
          std::vector<std::uint64_t> &log)
{
    auto ar = Archive::forLoad(bytes);
    q.serialize(ar, [&log](const hh::snap::SnapTag &tag) {
        const std::uint64_t ord = tag.a;
        return typename Queue::Callback(
            [&log, ord] { log.push_back(ord); });
    });
    ASSERT_TRUE(ar.ok());
}

template <typename Queue>
std::vector<std::pair<hh::sim::Cycles, std::uint64_t>>
drainQueue(Queue &q, std::vector<std::uint64_t> &log)
{
    std::vector<std::pair<hh::sim::Cycles, std::uint64_t>> out;
    while (!q.empty()) {
        hh::sim::Cycles when = 0;
        auto cb = q.pop(when);
        cb();
        out.emplace_back(when, log.back());
    }
    return out;
}

} // namespace

// The serialized event-queue encoding is a structure-independent
// contract: a checkpoint written by the binary heap restores on the
// timing wheel (and vice versa), re-serializes byte-identically,
// and pops the same (time, seq) stream.
TEST(SnapshotEventQueue, HeapCheckpointRestoresOnWheel)
{
    hh::sim::HeapEventQueue heap;
    populateQueue(heap);
    const auto bytes = saveQueue(heap);

    std::vector<std::uint64_t> log;
    hh::sim::EventQueue wheel;
    loadQueue(wheel, bytes, log);
    EXPECT_EQ(wheel.size(), heap.size());

    // Round-trip through the wheel is byte-identical.
    EXPECT_EQ(saveQueue(wheel), bytes);

    // And the restored wheel pops the heap's exact event stream.
    std::vector<std::uint64_t> heap_log;
    hh::sim::HeapEventQueue heap2;
    loadQueue(heap2, bytes, heap_log);
    EXPECT_EQ(drainQueue(wheel, log), drainQueue(heap2, heap_log));
}

TEST(SnapshotEventQueue, WheelCheckpointRestoresOnHeap)
{
    hh::sim::EventQueue wheel;
    populateQueue(wheel);
    const auto bytes = saveQueue(wheel);

    std::vector<std::uint64_t> log;
    hh::sim::HeapEventQueue heap;
    loadQueue(heap, bytes, log);
    EXPECT_EQ(heap.size(), wheel.size());

    EXPECT_EQ(saveQueue(heap), bytes);

    std::vector<std::uint64_t> wheel_log;
    hh::sim::EventQueue wheel2;
    loadQueue(wheel2, bytes, wheel_log);
    EXPECT_EQ(drainQueue(heap, log), drainQueue(wheel2, wheel_log));
}

// Both implementations must write identical bytes for identical
// schedule/cancel histories in the first place.
TEST(SnapshotEventQueue, IdenticalHistoryIdenticalBytes)
{
    hh::sim::EventQueue wheel;
    hh::sim::HeapEventQueue heap;
    populateQueue(wheel);
    populateQueue(heap);
    EXPECT_EQ(saveQueue(wheel), saveQueue(heap));
}
