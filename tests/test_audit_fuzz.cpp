/**
 * @file
 * Invariant-auditor + fault-injection fuzz tests (the PR-3 harness).
 *
 * Full-server runs with the deterministic fault injector perturbing
 * the scheduling/harvesting surface (lend/reclaim storms,
 * reclaim-during-flush, delayed completions, bursty arrivals,
 * chunk-exhaustion pressure) while the invariant auditor sweeps the
 * cross-component state every few hundred events. A correct
 * simulator survives every seed with zero violations; the
 * deliberately resurrected lend/reclaim race from the seed tree is
 * the positive control proving the harness actually catches
 * corruption at the offending sim-time.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/auditor.h"
#include "check/fault_inject.h"
#include "cluster/experiment.h"
#include "core/rq.h"
#include "sim/rng.h"
#include "sim/simulator.h"

using namespace hh::cluster;

namespace {

/** Reduced-scale config with auditing + fault injection armed. */
SystemConfig
auditConfig(SystemKind kind, std::uint64_t seed)
{
    SystemConfig cfg = makeSystem(kind);
    cfg.requestsPerVm = 30;
    cfg.accessSampling = 32;
    cfg.seed = seed;
    cfg.auditEnabled = true;
    cfg.auditPeriod = 512;
    cfg.faults.enabled = true;
    // Perturb aggressively at this scale.
    cfg.faults.meanPeriod = hh::sim::usToCycles(20);
    cfg.faults.startAt = hh::sim::usToCycles(10);
    cfg.faults.actionsPerTick = 3;
    return cfg;
}

/** Fail the test with every stored violation report. */
void
expectNoViolations(const ServerResults &res, const char *what)
{
    EXPECT_EQ(res.auditViolations, 0u) << what;
    for (const auto &v : res.auditReports)
        ADD_FAILURE() << what << ": [" << v.component
                      << "] t=" << v.time << ": " << v.message;
}

} // namespace

// ------------------------------------------------------- fuzz sweeps

class AuditFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(AuditFuzz, HardHarvestBlockSurvivesPerturbation)
{
    const auto cfg =
        auditConfig(SystemKind::HardHarvestBlock, GetParam());
    const auto res = runServer(cfg, "BFS", GetParam());
    EXPECT_GT(res.auditsRun, 0u);
    EXPECT_GT(res.faultsInjected, 0u);
    expectNoViolations(res, "HardHarvestBlock");
    // The perturbed run still completes every request.
    for (const auto &s : res.services)
        EXPECT_GT(s.count, 0u) << s.name;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Every evaluated system (hardware and software paths) holds its
// invariants under perturbation; one seed each keeps the suite fast.
TEST(AuditFuzzSystems, AllFiveSystemsSurviveOneSeed)
{
    hh::core::SubQueue::resetTeardownPayloadLeaks();
    for (const auto kind :
         {SystemKind::NoHarvest, SystemKind::HarvestTerm,
          SystemKind::HarvestBlock, SystemKind::HardHarvestTerm,
          SystemKind::HardHarvestBlock}) {
        const auto cfg = auditConfig(kind, 7);
        const auto res = runServer(cfg, "BFS", 7);
        EXPECT_GT(res.auditsRun, 0u) << systemName(kind);
        expectNoViolations(res, systemName(kind));
    }
    EXPECT_EQ(hh::core::SubQueue::teardownPayloadLeaks(), 0u);
}

// -------------------------------------------------- determinism

// The fault schedule is part of the deterministic state: a fuzzed
// cluster serializes bit-identically for any worker count, so a
// violation found in CI reproduces from its seed alone.
TEST(AuditFuzzDeterminism, BitIdenticalAcross148Workers)
{
    auto cfg = auditConfig(SystemKind::HardHarvestBlock, 5);
    cfg.requestsPerVm = 20;
    const auto a = runCluster(cfg, 4, 5, 1).serialized();
    const auto b = runCluster(cfg, 4, 5, 4).serialized();
    const auto c = runCluster(cfg, 4, 5, 8).serialized();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    // The audit section is present and clean.
    EXPECT_NE(a.find("\naudit "), std::string::npos);
    EXPECT_EQ(a.find("violation"), std::string::npos);
}

// Same seed -> same perturbation schedule, twice in a row.
TEST(AuditFuzzDeterminism, InjectorScheduleReplays)
{
    const auto cfg = auditConfig(SystemKind::HardHarvestBlock, 9);
    const auto r1 = runServer(cfg, "CC", 9);
    const auto r2 = runServer(cfg, "CC", 9);
    EXPECT_EQ(r1.faultsInjected, r2.faultsInjected);
    EXPECT_EQ(r1.auditsRun, r2.auditsRun);
    EXPECT_GT(r1.faultsInjected, 0u);
}

// ------------------------------------------- overhead / gating

// With auditing disabled no Auditor exists, the simulator's hook is
// null, and the simulation is bit-identical to a run that never heard
// of auditing: checks are read-only observers, so enabling them must
// not perturb results either — the audited serialization is the
// baseline serialization plus the trailing audit section.
TEST(AuditOverhead, DisabledMeansAbsent)
{
    auto cfg = auditConfig(SystemKind::HardHarvestBlock, 3);
    cfg.auditEnabled = false;
    cfg.faults.enabled = false;
    ServerSim sim(cfg, "BFS", 3);
    EXPECT_EQ(sim.auditor(), nullptr);
    EXPECT_EQ(sim.faultInjector(), nullptr);
    const auto res = sim.run();
    EXPECT_EQ(res.auditsRun, 0u);
    EXPECT_EQ(res.faultsInjected, 0u);
}

TEST(AuditOverhead, AuditingDoesNotPerturbResults)
{
    auto off = auditConfig(SystemKind::HardHarvestBlock, 11);
    off.requestsPerVm = 20;
    off.auditEnabled = false;
    off.faults.enabled = false;
    auto on = off;
    on.auditEnabled = true;

    const auto base = runCluster(off, 2, 11, 1).serialized();
    const auto audited = runCluster(on, 2, 11, 1).serialized();
    ASSERT_GE(audited.size(), base.size());
    EXPECT_EQ(audited.substr(0, base.size()), base);
    EXPECT_NE(audited.find("\naudit "), std::string::npos);
}

// ------------------------------------------------ violation path

// An injected always-failing invariant is reported with its
// component tag and the simulated time of the sweep, and
// auditStopOnViolation aborts the run at that point.
TEST(AuditViolations, InjectedViolationIsReportedWithContext)
{
    auto cfg = auditConfig(SystemKind::HardHarvestBlock, 3);
    cfg.faults.enabled = false;
    cfg.auditPeriod = 128;
    cfg.auditStopOnViolation = true;
    ServerSim sim(cfg, "BFS", 3);
    ASSERT_NE(sim.auditor(), nullptr);
    sim.auditor()->addInvariant(
        "selftest", []() -> std::optional<std::string> {
            return "deliberately failing invariant";
        });
    const auto res = sim.run();
    ASSERT_GT(res.auditViolations, 0u);
    ASSERT_FALSE(res.auditReports.empty());
    const auto &v = res.auditReports.front();
    EXPECT_EQ(v.component, "selftest");
    EXPECT_GT(v.time, 0u);
    EXPECT_NE(v.message.find("deliberately"), std::string::npos);
    // Stop-on-violation: aborted after the first offending sweep
    // instead of running the full workload.
    EXPECT_LE(res.auditsRun, 2u);
}

// The resurrected seed bug (untracked lend-completion events): the
// auditor pinpoints the corruption at its sim-time instead of the
// run degenerating into a wall-clock hang toward the 600 s horizon.
TEST(AuditViolations, ResurrectedLendRaceIsCaught)
{
    auto cfg = auditConfig(SystemKind::HardHarvestBlock, 2);
    cfg.faults.resurrectLendRace = true;
    cfg.faults.meanPeriod = hh::sim::usToCycles(5);
    cfg.faults.actionsPerTick = 6;
    cfg.auditPeriod = 64;
    cfg.auditStopOnViolation = true;
    const auto res = runServer(cfg, "BFS", 2);
    ASSERT_GT(res.auditViolations, 0u);
    ASSERT_FALSE(res.auditReports.empty());
    const auto &v = res.auditReports.front();
    // The corruption surfaces as core/request-level inconsistency.
    EXPECT_TRUE(v.component == "core" || v.component == "request" ||
                v.component == "hv")
        << v.component << ": " << v.message;
    EXPECT_GT(v.time, 0u);
}

// ------------------------------------------------ unit-level checks

TEST(Auditor, CapsStoredReportsButCountsAll)
{
    hh::check::Auditor aud;
    aud.addInvariant("unit", []() -> std::optional<std::string> {
        return "always broken";
    });
    const std::size_t sweeps =
        hh::check::Auditor::kMaxStoredViolations + 10;
    for (std::size_t i = 0; i < sweeps; ++i)
        EXPECT_EQ(aud.audit(i), 1u);
    EXPECT_EQ(aud.violationCount(), sweeps);
    EXPECT_EQ(aud.violations().size(),
              hh::check::Auditor::kMaxStoredViolations);
    EXPECT_EQ(aud.auditsRun(), sweeps);
    EXPECT_EQ(aud.invariantCount(), 1u);
    // Reports carry the sweep time they were observed at.
    EXPECT_EQ(aud.violations().front().time, 0u);
    EXPECT_EQ(aud.violations().back().time,
              hh::check::Auditor::kMaxStoredViolations - 1);
}

TEST(Auditor, HoldingInvariantsReportNothing)
{
    hh::check::Auditor aud;
    aud.addInvariant("ok", []() -> std::optional<std::string> {
        return std::nullopt;
    });
    EXPECT_EQ(aud.audit(42), 0u);
    EXPECT_EQ(aud.violationCount(), 0u);
    EXPECT_TRUE(aud.violations().empty());
}

TEST(FaultInjector, FiresActionsOnSeededSchedule)
{
    hh::sim::Simulator sim;
    hh::check::FaultConfig cfg;
    cfg.enabled = true;
    cfg.meanPeriod = 1000;
    cfg.startAt = 10;
    cfg.actionsPerTick = 2;
    hh::check::FaultInjector inj(sim, 123, cfg);
    std::uint64_t hits_a = 0;
    std::uint64_t hits_b = 0;
    inj.addAction("a", [&](hh::sim::Rng &) { ++hits_a; });
    inj.addAction("b", [&](hh::sim::Rng &) { ++hits_b; });
    inj.start();
    sim.run(100000);
    inj.stop();
    EXPECT_GT(inj.ticks(), 10u);
    EXPECT_EQ(inj.actionsFired(), hits_a + hits_b);
    EXPECT_EQ(inj.actionCount("a"), hits_a);
    EXPECT_EQ(inj.actionCount("b"), hits_b);
    EXPECT_EQ(inj.actionCount("nope"), 0u);
}

TEST(FaultInjector, MaxActionsBoundsTheTickChain)
{
    hh::sim::Simulator sim;
    hh::check::FaultConfig cfg;
    cfg.enabled = true;
    cfg.meanPeriod = 100;
    cfg.startAt = 1;
    cfg.actionsPerTick = 5;
    cfg.maxActions = 20;
    hh::check::FaultInjector inj(sim, 1, cfg);
    inj.addAction("noop", [](hh::sim::Rng &) {});
    inj.start();
    sim.run(10'000'000);
    EXPECT_LE(inj.actionsFired(), 20u);
    EXPECT_TRUE(sim.idle()); // the chain stopped by itself
}
