/**
 * @file
 * Tests that the synthetic Alibaba trace reproduces the published
 * utilization anchors (§1, §3, Fig 2, Fig 3).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/alibaba.h"

using hh::workload::AlibabaTrace;

TEST(Alibaba, MedianAverageUtilizationAnchor)
{
    AlibabaTrace t(42);
    auto v = t.instances(20001);
    std::vector<double> avg;
    for (const auto &u : v)
        avg.push_back(u.avgUtil);
    std::sort(avg.begin(), avg.end());
    // Paper: 50% of instances below 16.1% average utilization.
    EXPECT_NEAR(avg[avg.size() / 2], 0.161, 0.02);
}

TEST(Alibaba, P90MaxUtilizationAnchor)
{
    AlibabaTrace t(42);
    auto v = t.instances(20000);
    std::vector<double> mx;
    for (const auto &u : v)
        mx.push_back(u.maxUtil);
    std::sort(mx.begin(), mx.end());
    // Paper: 90% of instances below 40.7% maximum utilization.
    const double p90 = mx[static_cast<std::size_t>(0.9 * mx.size())];
    EXPECT_GT(p90, 0.30);
    EXPECT_LT(p90, 0.50);
}

TEST(Alibaba, InstanceInvariants)
{
    AlibabaTrace t(7);
    for (const auto &u : t.instances(2000)) {
        EXPECT_GT(u.avgUtil, 0.0);
        EXPECT_LE(u.avgUtil, 1.0);
        EXPECT_GE(u.maxUtil, u.avgUtil);
        EXPECT_LE(u.maxUtil, 1.0);
        EXPECT_LE(u.minUtil, u.avgUtil);
        EXPECT_GE(u.minUtil, 0.0);
    }
}

TEST(Alibaba, SeriesWithinBoundsAndBursty)
{
    AlibabaTrace t(3);
    const auto s = t.utilizationSeries(500.0, 5.0);
    ASSERT_EQ(s.size(), 100u);
    double lo = 1.0;
    double hi = 0.0;
    for (double v : s) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    // Fig 3 shape: long low-utilization stretches with spikes.
    EXPECT_GT(hi, 2.0 * lo);
}

TEST(Alibaba, Deterministic)
{
    AlibabaTrace a(5);
    AlibabaTrace b(5);
    const auto va = a.instances(100);
    const auto vb = b.instances(100);
    for (std::size_t i = 0; i < va.size(); ++i)
        EXPECT_DOUBLE_EQ(va[i].avgUtil, vb[i].avgUtil);
}
