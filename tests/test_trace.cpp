/**
 * @file
 * Tests for the ring-buffered tracer, its span-lifecycle accounting,
 * the Chrome trace_event exporter, and the end-to-end server
 * integration (every request span closed, every lend/reclaim
 * transition balanced — including lends cancelled by a concurrent
 * reclaim, the PR-1 race shape).
 */

#include <gtest/gtest.h>

#include "cluster/experiment.h"
#include "trace/chrome_trace.h"
#include "trace/trace.h"

using namespace hh::trace;

TEST(Tracer, RecordsInOrder)
{
    Tracer tr(8);
    tr.record(EventType::ExecSegment, 10, 5, 3, 42);
    tr.instant(EventType::Lend, 20, 1, 7);
    ASSERT_EQ(tr.size(), 2u);
    const auto evs = tr.events();
    EXPECT_EQ(evs[0].ts, 10u);
    EXPECT_EQ(evs[0].dur, 5u);
    EXPECT_EQ(evs[0].track, 3u);
    EXPECT_EQ(evs[0].id, 42u);
    EXPECT_EQ(evs[0].type, EventType::ExecSegment);
    EXPECT_EQ(evs[1].ts, 20u);
    EXPECT_EQ(evs[1].dur, 0u);
}

TEST(Tracer, RingWrapsAroundOverwritingOldest)
{
    Tracer tr(4);
    for (std::uint64_t i = 0; i < 6; ++i)
        tr.record(EventType::Dispatch, 100 + i, 0, 0, i);
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.capacity(), 4u);
    EXPECT_EQ(tr.dropped(), 2u);
    const auto evs = tr.events();
    ASSERT_EQ(evs.size(), 4u);
    // Oldest two (ids 0, 1) were overwritten; order is preserved.
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(evs[i].id, i + 2);
        EXPECT_EQ(evs[i].ts, 102 + i);
    }
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    Tracer tr(4);
    tr.setEnabled(false);
    tr.record(EventType::Dispatch, 1, 0, 0, 1);
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, SpanAccountingBalances)
{
    Tracer tr(4);
    tr.openSpan(1);
    tr.openSpan(2);
    EXPECT_EQ(tr.openSpans(), 2u);
    tr.closeSpan(1);
    EXPECT_EQ(tr.openSpans(), 1u);
    tr.closeSpan(2);
    EXPECT_EQ(tr.openSpans(), 0u);
    EXPECT_EQ(tr.unbalancedCloses(), 0u);
}

TEST(Tracer, UnmatchedCloseCountsAsUnbalanced)
{
    Tracer tr(4);
    tr.closeSpan(99);
    EXPECT_EQ(tr.openSpans(), 0u);
    EXPECT_EQ(tr.unbalancedCloses(), 1u);
}

TEST(Tracer, ClearResetsEverything)
{
    Tracer tr(2);
    tr.record(EventType::Dispatch, 1, 0, 0, 1);
    tr.record(EventType::Dispatch, 2, 0, 0, 2);
    tr.record(EventType::Dispatch, 3, 0, 0, 3);
    tr.openSpan(1);
    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.dropped(), 0u);
    EXPECT_EQ(tr.openSpans(), 0u);
}

namespace {

/** Structural JSON sanity: balanced braces/brackets outside strings. */
bool
balancedJson(const std::string &s)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

} // namespace

TEST(ChromeTrace, SchemaHasMetadataSpansAndInstants)
{
    ServerTrace t;
    t.pid = 0;
    t.events.push_back(
        Event{300, 150, 5, kRequestTrackBase + 2,
              EventType::RequestSpan});
    t.events.push_back(Event{450, 0, 3, 7, EventType::Lend});

    const std::string js = chromeTraceJson({t});
    EXPECT_TRUE(balancedJson(js));
    EXPECT_NE(js.find("\"traceEvents\":["), std::string::npos);
    // Process + thread naming metadata.
    EXPECT_NE(js.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(js.find("\"name\":\"server0\""), std::string::npos);
    EXPECT_NE(js.find("\"name\":\"vm2 requests\""),
              std::string::npos);
    EXPECT_NE(js.find("\"name\":\"core 7\""), std::string::npos);
    // One complete span, one instant.
    EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(js.find("\"dur\":"), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"i\""), std::string::npos);
    // Timestamps are microseconds (300 cycles @3GHz = 0.1 us).
    EXPECT_NE(js.find("\"ts\":0.100"), std::string::npos);
}

TEST(ChromeTrace, EventsSortedByTimestampAcrossServers)
{
    ServerTrace a;
    a.pid = 0;
    a.events.push_back(Event{600, 0, 1, 0, EventType::Lend});
    ServerTrace b;
    b.pid = 1;
    b.events.push_back(Event{300, 0, 2, 0, EventType::Reclaim});

    const std::string js = chromeTraceJson({a, b});
    const auto lend = js.find("\"name\":\"lend\"");
    const auto reclaim = js.find("\"name\":\"reclaim\"");
    ASSERT_NE(lend, std::string::npos);
    ASSERT_NE(reclaim, std::string::npos);
    EXPECT_LT(reclaim, lend) << "earlier event must come first";
}

namespace {

hh::cluster::SystemConfig
tracedConfig()
{
    using namespace hh::cluster;
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 40;
    cfg.accessSampling = 32;
    cfg.seed = 7;
    cfg.traceEnabled = true;
    return cfg;
}

} // namespace

TEST(ServerTracing, NoOrphanSpansEndToEnd)
{
    using namespace hh::cluster;
    const auto res = runServer(tracedConfig(), "BFS", 7);

    EXPECT_FALSE(res.traceEvents.empty());
    EXPECT_EQ(res.traceOpenSpans, 0u)
        << "orphaned request or transition spans";
    EXPECT_EQ(res.traceUnbalanced, 0u) << "double-closed spans";

    std::uint64_t requests = 0;
    std::uint64_t lends = 0;
    std::uint64_t reclaims = 0;
    for (const auto &e : res.traceEvents) {
        switch (e.type) {
        case EventType::RequestSpan:
            ++requests;
            EXPECT_GE(e.track, kRequestTrackBase);
            break;
        case EventType::Lend:
            ++lends;
            EXPECT_LT(e.track, kRequestTrackBase);
            break;
        case EventType::Reclaim:
            ++reclaims;
            break;
        default:
            break;
        }
    }
    // The harvest-on-block system lends and reclaims cores; every
    // completed request has a span.
    EXPECT_GT(requests, 0u);
    EXPECT_GT(lends, 0u);
    EXPECT_GT(reclaims, 0u);
    EXPECT_EQ(res.coreLoans, lends);
    EXPECT_EQ(res.coreReclaims, reclaims);
}

TEST(ServerTracing, LendCancellationKeepsAccountingBalanced)
{
    // The PR-1 race shape: a reclaim interrupt arrives while the
    // lend transition is still paying its reassignment cost. The
    // tracer must close the lend span via LendCancelled and still
    // end the run with zero open spans.
    using namespace hh::cluster;
    SystemConfig cfg = tracedConfig();
    cfg.hwSched = true;
    cfg.partitioning = true;
    cfg.loadScale = 2.0; // Bursty arrivals: reclaims hit in-flight lends.
    const auto res = runServer(cfg, "PRank", 13);

    EXPECT_EQ(res.traceOpenSpans, 0u);
    EXPECT_EQ(res.traceUnbalanced, 0u);
    std::uint64_t transitions = 0;
    for (const auto &e : res.traceEvents) {
        if (e.type == EventType::LendTransition ||
            e.type == EventType::ReclaimTransition)
            ++transitions;
    }
    EXPECT_GT(transitions, 0u);
}

TEST(ServerTracing, DisabledTracingProducesNoEvents)
{
    using namespace hh::cluster;
    SystemConfig cfg = tracedConfig();
    cfg.traceEnabled = false;
    const auto res = runServer(cfg, "BFS", 7);
    EXPECT_TRUE(res.traceEvents.empty());
    EXPECT_EQ(res.traceDropped, 0u);
}

TEST(ServerTracing, TraceJsonIsStructurallyValid)
{
    using namespace hh::cluster;
    SystemConfig cfg = tracedConfig();
    cfg.metricsEnabled = true;
    const ClusterResults res = runCluster(cfg, 2, 7, 1);
    ASSERT_EQ(res.traces.size(), 2u);
    const std::string js = res.traceJson();
    EXPECT_TRUE(balancedJson(js));
    EXPECT_NE(js.find("\"name\":\"server1\""), std::string::npos);
    // Metrics were collected for both servers too.
    ASSERT_EQ(res.serverMetrics.size(), 2u);
    EXPECT_FALSE(res.serverMetrics[0].empty());
    ASSERT_EQ(res.metricSeries.size(), 2u);
    EXPECT_EQ(res.metricSeries[0].label, "server0");
    EXPECT_FALSE(res.metricSeries[0].rows.empty());
}
