/**
 * @file
 * Unit tests for the five evaluated system configurations (§5).
 */

#include <gtest/gtest.h>

#include "cluster/system_config.h"

using namespace hh::cluster;

TEST(SystemConfig, Names)
{
    EXPECT_STREQ(systemName(SystemKind::NoHarvest), "NoHarvest");
    EXPECT_STREQ(systemName(SystemKind::HarvestTerm), "Harvest-Term");
    EXPECT_STREQ(systemName(SystemKind::HarvestBlock),
                 "Harvest-Block");
    EXPECT_STREQ(systemName(SystemKind::HardHarvestTerm),
                 "HardHarvest-Term");
    EXPECT_STREQ(systemName(SystemKind::HardHarvestBlock),
                 "HardHarvest-Block");
}

TEST(SystemConfig, NoHarvestDisablesEverything)
{
    const auto cfg = makeSystem(SystemKind::NoHarvest);
    EXPECT_FALSE(cfg.harvesting);
    EXPECT_FALSE(cfg.hwSched);
    EXPECT_FALSE(cfg.hwQueue);
    EXPECT_FALSE(cfg.hwCtxtSwitch);
    EXPECT_FALSE(cfg.partitioning);
    EXPECT_EQ(cfg.repl, hh::cache::ReplKind::LRU);
}

TEST(SystemConfig, SoftwareHarvestingUsesOptimizedImpl)
{
    for (const auto kind :
         {SystemKind::HarvestTerm, SystemKind::HarvestBlock}) {
        const auto cfg = makeSystem(kind);
        EXPECT_TRUE(cfg.harvesting);
        EXPECT_FALSE(cfg.hwSched);
        EXPECT_TRUE(cfg.swFlushOnReassign);
        EXPECT_EQ(cfg.swImpl, hh::vm::ReassignImpl::Optimized);
        EXPECT_EQ(cfg.repl, hh::cache::ReplKind::LRU);
    }
}

TEST(SystemConfig, TermVsBlockDiffersOnlyInAggressiveness)
{
    const auto term = makeSystem(SystemKind::HarvestTerm);
    const auto block = makeSystem(SystemKind::HarvestBlock);
    EXPECT_FALSE(term.harvestOnBlock);
    EXPECT_TRUE(block.harvestOnBlock);
}

TEST(SystemConfig, HardHarvestEnablesAllHardware)
{
    for (const auto kind : {SystemKind::HardHarvestTerm,
                            SystemKind::HardHarvestBlock}) {
        const auto cfg = makeSystem(kind);
        EXPECT_TRUE(cfg.harvesting);
        EXPECT_TRUE(cfg.hwSched);
        EXPECT_TRUE(cfg.hwQueue);
        EXPECT_TRUE(cfg.hwCtxtSwitch);
        EXPECT_TRUE(cfg.partitioning);
        EXPECT_TRUE(cfg.efficientFlush);
        EXPECT_EQ(cfg.repl, hh::cache::ReplKind::HardHarvest);
    }
}

TEST(SystemConfig, Table1Defaults)
{
    const auto cfg = makeSystem(SystemKind::HardHarvestBlock);
    EXPECT_EQ(cfg.cores, 36u);
    EXPECT_EQ(cfg.primaryVms, 8u);
    EXPECT_EQ(cfg.coresPerPrimary, 4u);
    EXPECT_DOUBLE_EQ(cfg.candidateFraction, 0.75);
    EXPECT_DOUBLE_EQ(cfg.harvestWayFraction, 0.5);
    EXPECT_DOUBLE_EQ(cfg.llcMbPerCore, 2.0);
}
