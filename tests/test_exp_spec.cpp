/**
 * @file
 * ExperimentSpec contract tests: the key=value text format parses
 * with line-numbered diagnostics, grids expand in the documented
 * order, and applySpecKey() covers every field type.
 */

#include <gtest/gtest.h>

#include <string>

#include "cluster/system_config.h"
#include "exp/spec.h"

using hh::cluster::SystemConfig;
using hh::cluster::SystemKind;
using hh::exp::applySpecKey;
using hh::exp::ExperimentSpec;
using hh::exp::parseSpec;
using hh::exp::systemKindByName;

TEST(ExpSpec, ParsesAndExpandsGrid)
{
    const std::string text =
        "# fig19-style candidate sweep\n"
        "name = candidate-sweep\n"
        "systems = HardHarvestBlock NoHarvest\n"
        "apps = BFS PRank\n"
        "seeds = 1 2\n"
        "requestsPerVm = 40\n"
        "sweep.candidateFraction = 0.5 1.0\n";
    ExperimentSpec spec;
    std::string err;
    ASSERT_TRUE(parseSpec(text, &spec, &err)) << err;
    EXPECT_EQ(spec.name, "candidate-sweep");
    ASSERT_EQ(spec.systems.size(), 2u);
    ASSERT_EQ(spec.apps.size(), 2u);
    ASSERT_EQ(spec.seeds.size(), 2u);
    ASSERT_EQ(spec.overrides.size(), 1u);
    ASSERT_EQ(spec.sweeps.size(), 1u);
    EXPECT_EQ(spec.sweeps[0].key, "candidateFraction");

    const auto pts = spec.points();
    ASSERT_EQ(pts.size(), 2u * 2u * 2u * 2u);

    // Systems-major, then sweep combos, then apps, then seeds.
    EXPECT_EQ(pts[0].label,
              "HardHarvestBlock/BFS/seed1/candidateFraction=0.5");
    EXPECT_EQ(pts[1].label,
              "HardHarvestBlock/BFS/seed2/candidateFraction=0.5");
    EXPECT_EQ(pts[2].label,
              "HardHarvestBlock/PRank/seed1/candidateFraction=0.5");
    EXPECT_EQ(pts[4].label,
              "HardHarvestBlock/BFS/seed1/candidateFraction=1.0");
    EXPECT_EQ(pts.back().label,
              "NoHarvest/PRank/seed2/candidateFraction=1.0");

    // Overrides and sweep values land on every expanded config.
    for (const auto &p : pts)
        EXPECT_EQ(p.cfg.requestsPerVm, 40u);
    EXPECT_DOUBLE_EQ(pts[0].cfg.candidateFraction, 0.5);
    EXPECT_DOUBLE_EQ(pts[4].cfg.candidateFraction, 1.0);
    EXPECT_EQ(pts[0].seed, 1u);
    EXPECT_EQ(pts[1].seed, 2u);
    EXPECT_EQ(pts[2].batchApp, "PRank");
}

TEST(ExpSpec, EmptySpecDefaultsToOnePoint)
{
    const ExperimentSpec spec;
    const auto pts = spec.points();
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].label, "HardHarvestBlock/BFS/seed1");
    EXPECT_EQ(pts[0].batchApp, "BFS");
    EXPECT_EQ(pts[0].seed, 1u);
}

TEST(ExpSpec, ErrorsCarryLineNumbers)
{
    ExperimentSpec spec;
    std::string err;

    EXPECT_FALSE(parseSpec("requestsPerVm = 40\nbogusKey = 3\n",
                           &spec, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("bogusKey"), std::string::npos) << err;

    EXPECT_FALSE(parseSpec("requestsPerVm = abc\n", &spec, &err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;

    EXPECT_FALSE(parseSpec("systems = NotASystem\n", &spec, &err));
    EXPECT_NE(err.find("unknown system"), std::string::npos) << err;

    EXPECT_FALSE(parseSpec("just some words\n", &spec, &err));
    EXPECT_NE(err.find("expected key = value"), std::string::npos)
        << err;

    EXPECT_FALSE(parseSpec("seeds = 1 two\n", &spec, &err));
    EXPECT_NE(err.find("bad seed"), std::string::npos) << err;

    // Sweep values are validated at parse time too.
    EXPECT_FALSE(
        parseSpec("sweep.candidateFraction = 0.5 oops\n", &spec, &err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;

    // Scalar keys take exactly one value.
    EXPECT_FALSE(parseSpec("requestsPerVm = 40 80\n", &spec, &err));
    EXPECT_NE(err.find("one value"), std::string::npos) << err;
}

TEST(ExpSpec, CommentsAndBlankLinesIgnored)
{
    ExperimentSpec spec;
    std::string err;
    ASSERT_TRUE(parseSpec("\n# only a comment\n\nname = x # tail\n",
                          &spec, &err))
        << err;
    EXPECT_EQ(spec.name, "x");
}

TEST(ExpSpec, ApplySpecKeyCoversFieldTypes)
{
    SystemConfig cfg;
    std::string err;

    ASSERT_TRUE(applySpecKey(cfg, "requestsPerVm", "123", &err)) << err;
    EXPECT_EQ(cfg.requestsPerVm, 123u);

    ASSERT_TRUE(applySpecKey(cfg, "warmupFraction", "0.25", &err))
        << err;
    EXPECT_DOUBLE_EQ(cfg.warmupFraction, 0.25);

    ASSERT_TRUE(applySpecKey(cfg, "harvesting", "false", &err)) << err;
    EXPECT_FALSE(cfg.harvesting);
    ASSERT_TRUE(applySpecKey(cfg, "harvesting", "1", &err)) << err;
    EXPECT_TRUE(cfg.harvesting);

    ASSERT_TRUE(applySpecKey(cfg, "repl", "CDP", &err)) << err;
    EXPECT_EQ(cfg.repl, hh::cache::ReplKind::CDP);

    EXPECT_FALSE(applySpecKey(cfg, "repl", "FIFO", &err));
    EXPECT_NE(err.find("unknown replacement policy"),
              std::string::npos)
        << err;

    EXPECT_FALSE(applySpecKey(cfg, "noSuchField", "1", &err));
    EXPECT_NE(err.find("unknown config key"), std::string::npos) << err;

    EXPECT_FALSE(applySpecKey(cfg, "requestsPerVm", "12x", &err));
    EXPECT_NE(err.find("bad unsigned"), std::string::npos) << err;
}

TEST(ExpSpec, SystemKindNamesResolveBothForms)
{
    SystemKind k;
    ASSERT_TRUE(systemKindByName("Harvest-Term", &k));
    EXPECT_EQ(k, SystemKind::HarvestTerm);
    ASSERT_TRUE(systemKindByName("HarvestTerm", &k));
    EXPECT_EQ(k, SystemKind::HarvestTerm);
    ASSERT_TRUE(systemKindByName("NoHarvest", &k));
    EXPECT_EQ(k, SystemKind::NoHarvest);
    ASSERT_TRUE(systemKindByName("HardHarvest-Block", &k));
    EXPECT_EQ(k, SystemKind::HardHarvestBlock);
    EXPECT_FALSE(systemKindByName("hardharvestblock", &k));
    EXPECT_FALSE(systemKindByName("", &k));
}
