/**
 * @file
 * Unit tests for counters, accumulators, histograms and the
 * percentile recorder.
 */

#include <gtest/gtest.h>

#include "stats/counter.h"
#include "stats/histogram.h"
#include "stats/percentile.h"

using hh::stats::Accumulator;
using hh::stats::Counter;
using hh::stats::Histogram;
using hh::stats::LatencyRecorder;
using hh::stats::LogHistogram;

TEST(Counter, IncrementAndReset)
{
    Counter c("x");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.name(), "x");
}

TEST(Accumulator, Moments)
{
    Accumulator a;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        a.add(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(a.variance(), 1.25);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, NegativeValues)
{
    Accumulator a;
    a.add(-5.0);
    a.add(5.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
}

TEST(Histogram, BucketsAndFractions)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.totalCount(), 10u);
    for (std::size_t b = 0; b < 10; ++b) {
        EXPECT_EQ(h.bucketCount(b), 1u);
        EXPECT_DOUBLE_EQ(h.bucketFraction(b), 0.1);
    }
}

TEST(Histogram, OutOfRangeClamped)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
}

TEST(Histogram, BucketLowEdges)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(4), 18.0);
}

TEST(Histogram, InvalidConfigPanics)
{
    EXPECT_THROW(Histogram(0.0, 10.0, 0), std::logic_error);
    EXPECT_THROW(Histogram(10.0, 10.0, 5), std::logic_error);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0, 1, 2);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.totalCount(), 0u);
}

TEST(LogHistogram, PowerOfTwoBuckets)
{
    LogHistogram h(10);
    h.add(1.0);   // bucket 0
    h.add(2.0);   // bucket 1
    h.add(3.9);   // bucket 1
    h.add(4.0);   // bucket 2
    h.add(1000.0); // bucket 9 (log2=9.96 -> 9 via clamp)
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.totalCount(), 5u);
}

TEST(Histogram, SingleSamplePercentiles)
{
    Histogram h(0.0, 10.0, 10);
    h.add(3.5); // bucket 3, lower edge 3.0
    // With one sample every percentile selects that sample's bucket.
    EXPECT_DOUBLE_EQ(h.percentile(0), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 3.0);
}

TEST(Histogram, PercentileEmptyIsZero)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    LogHistogram lh(8);
    EXPECT_DOUBLE_EQ(lh.percentile(99), 0.0);
}

TEST(Histogram, P0AndP100SelectExtremeBuckets)
{
    Histogram h(0.0, 10.0, 10);
    h.add(1.5); // bucket 1
    h.add(5.5); // bucket 5
    h.add(8.5); // bucket 8
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);   // first non-empty
    EXPECT_DOUBLE_EQ(h.percentile(100), 8.0); // last non-empty
    // Out-of-range p clamps rather than reading past the buckets.
    EXPECT_DOUBLE_EQ(h.percentile(-5), h.percentile(0));
    EXPECT_DOUBLE_EQ(h.percentile(250), h.percentile(100));
}

TEST(Histogram, MergeIsDeterministicAndOrderFree)
{
    Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
    Histogram a2(0.0, 10.0, 10), b2(0.0, 10.0, 10);
    for (double v : {0.5, 2.5, 2.7, 9.9}) {
        a.add(v);
        a2.add(v);
    }
    for (double v : {2.1, 5.5}) {
        b.add(v);
        b2.add(v);
    }
    a.merge(b);  // a += b
    b2.merge(a2); // b += a
    ASSERT_EQ(a.totalCount(), 6u);
    EXPECT_EQ(a.counts(), b2.counts());
    EXPECT_EQ(a.bucketCount(2), 3u);
    EXPECT_DOUBLE_EQ(a.percentile(50), 2.0);
}

TEST(Histogram, MergeGeometryMismatchPanics)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 5);
    Histogram c(0.0, 20.0, 10);
    EXPECT_THROW(a.merge(b), std::logic_error);
    EXPECT_THROW(a.merge(c), std::logic_error);
    LogHistogram la(8), lb(16);
    EXPECT_THROW(la.merge(lb), std::logic_error);
}

TEST(LogHistogram, SingleSampleAndExtremePercentiles)
{
    LogHistogram h(16);
    h.add(100.0); // bucket 6: [64, 128)
    EXPECT_DOUBLE_EQ(h.percentile(0), 64.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 64.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 64.0);
    h.add(1.0); // bucket 0: [0, 2)
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 64.0);
}

TEST(LogHistogram, FreePercentileMatchesMemberOnMergedCounts)
{
    LogHistogram a(12), b(12);
    for (double v : {1.0, 3.0, 70.0, 500.0})
        a.add(v);
    for (double v : {3.5, 900.0})
        b.add(v);
    a.merge(b);
    // The free function over the raw counts is how the TelemetryHub
    // computes fleet percentiles from merged bucket deltas.
    for (double p : {0.0, 25.0, 50.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(hh::stats::logBucketPercentile(a.counts(), p),
                         a.percentile(p));
    }
}

TEST(LatencyRecorder, ExactPercentilesSmallSet)
{
    LatencyRecorder r;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        r.record(v);
    EXPECT_DOUBLE_EQ(r.p50(), 3.0);
    EXPECT_DOUBLE_EQ(r.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(r.percentile(100), 5.0);
    EXPECT_DOUBLE_EQ(r.max(), 5.0);
    EXPECT_DOUBLE_EQ(r.mean(), 3.0);
}

TEST(LatencyRecorder, InterpolatesBetweenRanks)
{
    LatencyRecorder r;
    r.record(0.0);
    r.record(10.0);
    EXPECT_DOUBLE_EQ(r.p50(), 5.0);
    EXPECT_DOUBLE_EQ(r.percentile(25), 2.5);
}

TEST(LatencyRecorder, EmptyReturnsZero)
{
    LatencyRecorder r;
    EXPECT_EQ(r.p99(), 0.0);
    EXPECT_EQ(r.mean(), 0.0);
    EXPECT_EQ(r.count(), 0u);
}

TEST(LatencyRecorder, SingleSample)
{
    LatencyRecorder r;
    r.record(7.0);
    EXPECT_DOUBLE_EQ(r.p50(), 7.0);
    EXPECT_DOUBLE_EQ(r.p99(), 7.0);
}

TEST(LatencyRecorder, UnsortedInputHandled)
{
    LatencyRecorder r;
    for (double v : {9.0, 1.0, 5.0, 3.0, 7.0})
        r.record(v);
    EXPECT_DOUBLE_EQ(r.p50(), 5.0);
    // Recording after a query re-sorts correctly.
    r.record(0.0);
    EXPECT_DOUBLE_EQ(r.percentile(0), 0.0);
}

TEST(LatencyRecorder, OutOfRangePanics)
{
    LatencyRecorder r;
    r.record(1.0);
    EXPECT_THROW(r.percentile(-1), std::logic_error);
    EXPECT_THROW(r.percentile(101), std::logic_error);
}

TEST(LatencyRecorder, ResetDropsSamples)
{
    LatencyRecorder r;
    r.record(1.0);
    r.reset();
    EXPECT_EQ(r.count(), 0u);
    EXPECT_EQ(r.p99(), 0.0);
}

TEST(EmpiricalCdf, FractionsAtQueryPoints)
{
    const std::vector<double> samples{1, 2, 3, 4, 5};
    const auto cdf =
        hh::stats::empiricalCdf(samples, {0.5, 2.0, 4.5, 10.0});
    ASSERT_EQ(cdf.size(), 4u);
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.4);
    EXPECT_DOUBLE_EQ(cdf[2], 0.8);
    EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

/** Property: percentiles are monotone in p. */
class PercentileMonotone : public ::testing::TestWithParam<int>
{};

TEST_P(PercentileMonotone, NonDecreasing)
{
    LatencyRecorder r;
    // Pseudo-random-ish but deterministic samples.
    std::uint64_t x = static_cast<std::uint64_t>(GetParam()) + 1;
    for (int i = 0; i < 500; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        r.record(static_cast<double>(x % 10000) / 100.0);
    }
    double prev = r.percentile(0);
    for (int p = 1; p <= 100; ++p) {
        const double v = r.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Range(0, 8));
