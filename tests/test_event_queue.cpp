/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

using hh::sim::Cycles;
using hh::sim::EventQueue;

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    Cycles t = 0;
    while (!q.empty())
        q.pop(t)();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(t, 30u);
}

TEST(EventQueue, FifoTieBreakAtSameTime)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    Cycles t = 0;
    while (!q.empty())
        q.pop(t)();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.schedule(50, [] {});
    EXPECT_EQ(q.nextTime(), 50u);
}

TEST(EventQueue, CancelRemovesEvent)
{
    EventQueue q;
    bool ran = false;
    const auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue q;
    const auto id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails)
{
    EventQueue q;
    const auto id = q.schedule(10, [] {});
    Cycles t = 0;
    q.pop(t);
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleEventSkipsIt)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] { order.push_back(1); });
    const auto id = q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.cancel(id);
    Cycles t = 0;
    while (!q.empty())
        q.pop(t)();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    const auto a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    Cycles t = 0;
    q.pop(t);
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelledHead)
{
    EventQueue q;
    const auto id = q.schedule(5, [] {});
    q.schedule(9, [] {});
    q.cancel(id);
    EXPECT_EQ(q.nextTime(), 9u);
}

TEST(EventQueue, PopOnEmptyPanics)
{
    EventQueue q;
    Cycles t = 0;
    EXPECT_THROW(q.pop(t), std::logic_error);
}

TEST(EventQueue, NextTimeOnEmptyPanics)
{
    EventQueue q;
    EXPECT_THROW(q.nextTime(), std::logic_error);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    // Insert in reverse; verify monotone pop times.
    for (int i = 1000; i > 0; --i)
        q.schedule(static_cast<Cycles>(i), [] {});
    Cycles prev = 0;
    while (!q.empty()) {
        Cycles t = 0;
        q.pop(t);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(EventQueue, StaleIdAfterSlotReuseFails)
{
    EventQueue q;
    // Pop an event, then schedule a new one: the slab slot is
    // reused, but the stale id's generation no longer matches.
    const auto stale = q.schedule(1, [] {});
    Cycles t = 0;
    q.pop(t);
    bool ran = false;
    q.schedule(2, [&] { ran = true; });
    EXPECT_FALSE(q.cancel(stale));
    EXPECT_EQ(q.size(), 1u);
    q.pop(t)();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, InvalidAndGarbageIdsRejected)
{
    EventQueue q;
    q.schedule(1, [] {});
    EXPECT_FALSE(q.cancel(hh::sim::kInvalidEventId));
    // Slot index far beyond the slab.
    EXPECT_FALSE(q.cancel((std::uint64_t{1} << 32) | 0x7fffffffu));
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, FifoOrderSurvivesCancelChurn)
{
    // Interleave cancellations with same-timestamp schedules and
    // verify the survivors still pop in insertion order.
    EventQueue q;
    std::vector<int> order;
    std::vector<hh::sim::EventId> ids;
    for (int i = 0; i < 100; ++i)
        ids.push_back(q.schedule(7, [&order, i] {
            order.push_back(i);
        }));
    for (int i = 0; i < 100; i += 3)
        q.cancel(ids[static_cast<std::size_t>(i)]);
    Cycles t = 0;
    while (!q.empty())
        q.pop(t)();
    std::vector<int> expect;
    for (int i = 0; i < 100; ++i) {
        if (i % 3 != 0)
            expect.push_back(i);
    }
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, MillionCancelsStayBounded)
{
    // Regression for the seed implementation's leak: cancelled ids
    // accumulated in an unordered_set for the whole run. The slab
    // design reuses slots and compacts the heap, so a
    // schedule-then-cancel storm must not grow either structure.
    EventQueue q;
    // A long-lived event keeps the queue non-empty throughout.
    q.schedule(std::uint64_t{1} << 40, [] {});
    constexpr int kChurn = 1'000'000;
    constexpr int kWindow = 32;
    std::vector<hh::sim::EventId> window;
    for (int i = 0; i < kChurn; ++i) {
        window.push_back(
            q.schedule(static_cast<Cycles>(i + 1), [] {}));
        if (window.size() == kWindow) {
            for (const auto id : window)
                EXPECT_TRUE(q.cancel(id));
            window.clear();
        }
    }
    for (const auto id : window)
        EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
    // Slab high-water mark: the long-lived event plus one churn
    // window. Heap: compaction caps it near the live count.
    EXPECT_LE(q.slabSlots(), kWindow + 1u);
    EXPECT_LE(q.heapEntries(), 256u);
    Cycles t = 0;
    q.pop(t);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.heapEntries(), 0u);
}

TEST(EventQueue, CancelInterleavedWithPopsStaysBounded)
{
    // Mixed run/cancel traffic (the simulator's real pattern) must
    // also keep the heap bounded while preserving pop order.
    EventQueue q;
    std::uint64_t executed = 0;
    Cycles t = 0;
    std::vector<hh::sim::EventId> pending;
    for (int round = 0; round < 200'000; ++round) {
        pending.push_back(q.schedule(
            static_cast<Cycles>(round + 1),
            [&executed] { ++executed; }));
        if (round % 2 == 0 && pending.size() > 4) {
            q.cancel(pending[pending.size() - 3]);
            pending.erase(pending.end() - 3);
        }
        if (round % 4 == 3)
            q.pop(t)();
    }
    EXPECT_GT(executed, 0u);
    EXPECT_LE(q.heapEntries(), 2 * q.size() + 128);
}
