/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

using hh::sim::Cycles;
using hh::sim::EventQueue;

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    Cycles t = 0;
    while (!q.empty())
        q.pop(t)();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(t, 30u);
}

TEST(EventQueue, FifoTieBreakAtSameTime)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    Cycles t = 0;
    while (!q.empty())
        q.pop(t)();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.schedule(50, [] {});
    EXPECT_EQ(q.nextTime(), 50u);
}

TEST(EventQueue, CancelRemovesEvent)
{
    EventQueue q;
    bool ran = false;
    const auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue q;
    const auto id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails)
{
    EventQueue q;
    const auto id = q.schedule(10, [] {});
    Cycles t = 0;
    q.pop(t);
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleEventSkipsIt)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] { order.push_back(1); });
    const auto id = q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.cancel(id);
    Cycles t = 0;
    while (!q.empty())
        q.pop(t)();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    const auto a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    Cycles t = 0;
    q.pop(t);
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelledHead)
{
    EventQueue q;
    const auto id = q.schedule(5, [] {});
    q.schedule(9, [] {});
    q.cancel(id);
    EXPECT_EQ(q.nextTime(), 9u);
}

TEST(EventQueue, PopOnEmptyPanics)
{
    EventQueue q;
    Cycles t = 0;
    EXPECT_THROW(q.pop(t), std::logic_error);
}

TEST(EventQueue, NextTimeOnEmptyPanics)
{
    EventQueue q;
    EXPECT_THROW(q.nextTime(), std::logic_error);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    // Insert in reverse; verify monotone pop times.
    for (int i = 1000; i > 0; --i)
        q.schedule(static_cast<Cycles>(i), [] {});
    Cycles prev = 0;
    while (!q.empty()) {
        Cycles t = 0;
        q.pop(t);
        EXPECT_GE(t, prev);
        prev = t;
    }
}
