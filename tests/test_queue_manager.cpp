/**
 * @file
 * Unit tests for the hardware Queue Managers (§4.1.2-4.1.5).
 */

#include <gtest/gtest.h>

#include "core/queue_manager.h"

using hh::core::QueueManager;
using hh::core::RequestQueue;

TEST(QueueManager, Identity)
{
    RequestQueue rq(4, 8);
    QueueManager qm(3, 7, true, rq);
    EXPECT_EQ(qm.id(), 3u);
    EXPECT_EQ(qm.vm(), 7u);
    EXPECT_TRUE(qm.isPrimary());
}

TEST(QueueManager, CoreBinding)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    qm.bindCore(2);
    qm.bindCore(5);
    EXPECT_TRUE(qm.isBound(2));
    EXPECT_TRUE(qm.isBound(5));
    EXPECT_FALSE(qm.isBound(3));
    EXPECT_EQ(qm.boundCores().size(), 2u);
    qm.unbindCore(2);
    EXPECT_FALSE(qm.isBound(2));
}

TEST(QueueManager, DoubleBindPanics)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    qm.bindCore(1);
    EXPECT_THROW(qm.bindCore(1), std::logic_error);
}

TEST(QueueManager, UnbindUnknownPanics)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    EXPECT_THROW(qm.unbindCore(1), std::logic_error);
}

TEST(QueueManager, LoanLifecycle)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    qm.bindCore(1);
    qm.bindCore(2);
    EXPECT_FALSE(qm.hasLoanedCore());
    qm.noteLoan(2);
    EXPECT_TRUE(qm.hasLoanedCore());
    EXPECT_TRUE(qm.isOnLoan(2));
    EXPECT_FALSE(qm.isOnLoan(1));
    EXPECT_EQ(qm.loanedCount(), 1u);
    qm.noteReturn(2);
    EXPECT_FALSE(qm.hasLoanedCore());
}

TEST(QueueManager, ReclaimPicksLowestLoanedCore)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    for (unsigned c : {4u, 7u, 9u})
        qm.bindCore(c);
    EXPECT_EQ(qm.loanedCoreToReclaim(), -1);
    qm.noteLoan(9);
    qm.noteLoan(4);
    EXPECT_EQ(qm.loanedCoreToReclaim(), 4);
}

TEST(QueueManager, HarvestVmCannotLend)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 8, false, rq);
    qm.bindCore(1);
    EXPECT_THROW(qm.noteLoan(1), std::logic_error);
}

TEST(QueueManager, LoanRequiresBoundCore)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    EXPECT_THROW(qm.noteLoan(3), std::logic_error);
}

TEST(QueueManager, DoubleLoanPanics)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    qm.bindCore(1);
    qm.noteLoan(1);
    EXPECT_THROW(qm.noteLoan(1), std::logic_error);
}

TEST(QueueManager, ReturnWithoutLoanPanics)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    qm.bindCore(1);
    EXPECT_THROW(qm.noteReturn(1), std::logic_error);
}

TEST(QueueManager, UnbindClearsLoan)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    qm.bindCore(1);
    qm.noteLoan(1);
    qm.unbindCore(1);
    EXPECT_FALSE(qm.hasLoanedCore());
}

TEST(QueueManager, OwnsQueueAndRegisters)
{
    RequestQueue rq(4, 8);
    QueueManager qm(0, 0, true, rq);
    qm.vmState().write(hh::core::VmStateRegisterSet::Cr3, 0x1234);
    EXPECT_EQ(qm.vmState().read(hh::core::VmStateRegisterSet::Cr3),
              0x1234u);
    qm.harvestMask().setFraction(0.5);
    EXPECT_NE(qm.harvestMask().mask(hh::core::MaskedStruct::L1D), 0u);
}
