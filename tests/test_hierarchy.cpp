/**
 * @file
 * Unit tests for the per-core cache/TLB hierarchy: latency
 * composition, partitioning semantics, selective flush and the
 * side-channel hiding window.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.h"
#include "mem/dram.h"

using namespace hh::cache;
using hh::sim::Cycles;

namespace {

HierarchyConfig
smallConfig()
{
    HierarchyConfig cfg;
    // Small structures so tests exercise misses cheaply.
    cfg.l1d = Geometry{8, 4, 5};
    cfg.l1i = Geometry{8, 4, 5};
    cfg.l2 = Geometry{16, 4, 13};
    cfg.l1tlb = Geometry{4, 4, 2};
    cfg.l2tlb = Geometry{8, 4, 12};
    return cfg;
}

MemAccess
dataAccess(Addr page, std::uint32_t line = 0, bool shared = true)
{
    MemAccess a;
    a.page = page;
    a.line = line;
    a.isInstr = false;
    a.shared = shared;
    return a;
}

} // namespace

TEST(Hierarchy, WarmHitLatencyIsTlbPlusL1)
{
    auto cfg = smallConfig();
    CoreHierarchy h(cfg, nullptr, nullptr);
    h.access(0, dataAccess(1));              // warm everything
    const Cycles lat = h.access(0, dataAccess(1));
    EXPECT_EQ(lat, cfg.l1tlb.latency + cfg.l1d.latency);
}

TEST(Hierarchy, ColdMissWalksWholeChain)
{
    auto cfg = smallConfig();
    CoreHierarchy h(cfg, nullptr, nullptr);
    const Cycles lat = h.access(0, dataAccess(1));
    // TLB chain + walk + L1 + L2 + flat DRAM (no L3 attached).
    const Cycles expected = cfg.l1tlb.latency + cfg.l2tlb.latency +
                            cfg.pageWalk + cfg.l1d.latency +
                            cfg.l2.latency + 200;
    EXPECT_EQ(lat, expected);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    auto cfg = smallConfig();
    CoreHierarchy h(cfg, nullptr, nullptr);
    // Fill L1 set 0 beyond capacity; L2 is bigger and retains.
    for (Addr p = 0; p < 8; ++p)
        h.access(0, dataAccess(1, static_cast<std::uint32_t>(p * 8)));
    // (different lines of one page stress different sets; instead
    // force aliasing by reusing line 0 of pages mapping to set 0)
    SUCCEED();
}

TEST(Hierarchy, InstructionAccessesUseL1I)
{
    auto cfg = smallConfig();
    CoreHierarchy h(cfg, nullptr, nullptr);
    MemAccess a = dataAccess(1);
    a.isInstr = true;
    h.access(0, a);
    EXPECT_EQ(h.l1i().misses(), 1u);
    EXPECT_EQ(h.l1d().misses(), 0u);
}

TEST(Hierarchy, InstructionAlwaysShared)
{
    auto cfg = smallConfig();
    CoreHierarchy h(cfg, nullptr, nullptr);
    MemAccess a = dataAccess(1, 0, /*shared=*/false);
    a.isInstr = true;
    h.access(0, a);
    EXPECT_TRUE(h.l1i().wayState(
                     0, 0).valid); // filled
    EXPECT_TRUE(h.l1i().wayState(0, 0).shared);
}

TEST(Hierarchy, L3PartitionCatchesL2Misses)
{
    auto cfg = smallConfig();
    SetAssocArray l3(Geometry{64, 8, 36}, makePolicy(ReplKind::LRU));
    CoreHierarchy h(cfg, &l3, nullptr);
    h.access(0, dataAccess(1));
    EXPECT_EQ(l3.misses(), 1u);
    // A second core-side miss (after flushing private levels) hits L3.
    h.flushAll();
    const Cycles lat = h.access(0, dataAccess(1));
    EXPECT_EQ(l3.hits(), 1u);
    const Cycles expected = cfg.l1tlb.latency + cfg.l2tlb.latency +
                            cfg.pageWalk + cfg.l1d.latency +
                            cfg.l2.latency + 36;
    EXPECT_EQ(lat, expected);
}

TEST(Hierarchy, DramModelUsedWhenAttached)
{
    auto cfg = smallConfig();
    hh::mem::DramConfig dcfg;
    dcfg.baseLatency = 500;
    hh::mem::Dram dram(dcfg);
    CoreHierarchy h(cfg, nullptr, &dram);
    h.access(0, dataAccess(1));
    EXPECT_EQ(dram.accesses(), 1u);
}

TEST(Hierarchy, FlushAllForcesColdRestart)
{
    auto cfg = smallConfig();
    CoreHierarchy h(cfg, nullptr, nullptr);
    h.access(0, dataAccess(1));
    const Cycles warm = h.access(0, dataAccess(1));
    h.flushAll();
    const Cycles cold = h.access(0, dataAccess(1));
    EXPECT_GT(cold, warm);
}

TEST(Hierarchy, PartitioningRestrictsHarvestFills)
{
    auto cfg = smallConfig();
    cfg.partitioning = true;
    cfg.harvestWayFraction = 0.5;
    CoreHierarchy h(cfg, nullptr, nullptr);
    h.setHarvestMode(true);
    // Many distinct pages in harvest mode: fills must stay within
    // the harvest ways (half the array).
    for (Addr p = 1; p <= 64; ++p)
        h.access(0, dataAccess(p, static_cast<std::uint32_t>(p)));
    const auto &l1d = h.l1d();
    const WayMask harvest = l1d.harvestWays();
    for (std::uint32_t s = 0; s < l1d.geometry().sets; ++s) {
        for (unsigned w = 0; w < l1d.geometry().ways; ++w) {
            if (!(harvest & (WayMask{1} << w)))
                EXPECT_FALSE(l1d.wayState(s, w).valid);
        }
    }
}

TEST(Hierarchy, HarvestRegionFlushPreservesNonHarvest)
{
    auto cfg = smallConfig();
    cfg.partitioning = true;
    CoreHierarchy h(cfg, nullptr, nullptr);
    // Warm as Primary (fills anywhere), then flush harvest region.
    for (Addr p = 1; p <= 8; ++p)
        h.access(0, dataAccess(p));
    const auto valid_before = h.l1d().validCount();
    h.flushHarvestRegion(0, 100);
    const auto valid_after = h.l1d().validCount();
    EXPECT_LT(valid_after, valid_before + 1); // some flushed ...
    EXPECT_GT(valid_after, 0u);               // ... but not all
}

TEST(Hierarchy, HarvestWaysHiddenUntilBound)
{
    auto cfg = smallConfig();
    cfg.partitioning = true;
    CoreHierarchy h(cfg, nullptr, nullptr);
    h.flushHarvestRegion(1000, 500);
    // Before the bound, Primary fills only non-harvest ways.
    for (Addr p = 1; p <= 64; ++p)
        h.access(1200, dataAccess(p, static_cast<std::uint32_t>(p)));
    const auto &l1d = h.l1d();
    for (std::uint32_t s = 0; s < l1d.geometry().sets; ++s) {
        for (unsigned w = 0; w < l1d.geometry().ways; ++w) {
            if (l1d.harvestWays() & (WayMask{1} << w))
                EXPECT_FALSE(l1d.wayState(s, w).valid);
        }
    }
    // After the bound, the whole structure is usable again.
    for (Addr p = 100; p <= 163; ++p)
        h.access(1600, dataAccess(p, static_cast<std::uint32_t>(p)));
    EXPECT_EQ(l1d.validCount(), static_cast<std::uint64_t>(
                                    l1d.geometry().sets) *
                                    l1d.geometry().ways);
}

TEST(Hierarchy, NoPartitioningFlushHarvestFallsBackToFull)
{
    auto cfg = smallConfig();
    cfg.partitioning = false;
    CoreHierarchy h(cfg, nullptr, nullptr);
    h.access(0, dataAccess(1));
    h.flushHarvestRegion(0, 100);
    EXPECT_EQ(h.l1d().validCount(), 0u);
}

TEST(Hierarchy, InfiniteModeOnlyCompulsoryMisses)
{
    auto cfg = smallConfig();
    cfg.infinite = true;
    CoreHierarchy h(cfg, nullptr, nullptr);
    const Cycles first = h.access(0, dataAccess(1));
    const Cycles second = h.access(0, dataAccess(1));
    EXPECT_GT(first, second);
    // Every subsequent access to the same line is a pure hit.
    EXPECT_EQ(second, h.access(0, dataAccess(1)));
    // A different line of a known page misses the line but not TLB.
    const Cycles new_line = h.access(0, dataAccess(1, 5));
    EXPECT_GT(new_line, second);
    EXPECT_LT(new_line, first);
}

TEST(Hierarchy, WaysFractionScalesStructures)
{
    auto cfg = smallConfig();
    cfg.waysFraction = 0.5;
    CoreHierarchy h(cfg, nullptr, nullptr);
    EXPECT_EQ(h.l1d().geometry().ways, 2u);
    EXPECT_EQ(h.l2().geometry().ways, 2u);
}

TEST(Hierarchy, InvalidWaysFractionFatal)
{
    auto cfg = smallConfig();
    cfg.waysFraction = 0.0;
    EXPECT_THROW(CoreHierarchy(cfg, nullptr, nullptr),
                 std::runtime_error);
}

TEST(Hierarchy, AccessCountTracked)
{
    auto cfg = smallConfig();
    CoreHierarchy h(cfg, nullptr, nullptr);
    for (int i = 0; i < 5; ++i)
        h.access(0, dataAccess(1));
    EXPECT_EQ(h.accesses(), 5u);
    h.resetStats();
    EXPECT_EQ(h.accesses(), 0u);
    EXPECT_EQ(h.l1d().hits(), 0u);
}

TEST(Hierarchy, SeparateVmsNeverAlias)
{
    auto cfg = smallConfig();
    CoreHierarchy h(cfg, nullptr, nullptr);
    // Pages with distinct ids (as AddressSpace guarantees) miss
    // independently.
    h.access(0, dataAccess(0x1000001));
    const Cycles other_vm = h.access(0, dataAccess(0x2000001));
    const Cycles same = h.access(0, dataAccess(0x1000001));
    EXPECT_GT(other_vm, same);
}
