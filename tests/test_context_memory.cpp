/**
 * @file
 * Unit tests for the Request Context Memory cost model.
 */

#include <gtest/gtest.h>

#include "core/context_memory.h"

using hh::core::RequestContextMemory;
using hh::noc::Mesh2D;

TEST(ContextMemory, CostsAreTensOfNanoseconds)
{
    Mesh2D mesh(6, 6, 5);
    RequestContextMemory m(mesh);
    // §4.1.1: with hardware context switching, a re-assignment
    // takes a few 10s of ns.
    for (unsigned c = 0; c < 36; ++c) {
        const auto cost = m.saveCost(c) + m.restoreCost(c);
        EXPECT_GT(cost, 0u);
        EXPECT_LT(hh::sim::cyclesToNs(cost), 100.0);
    }
}

TEST(ContextMemory, FartherCoresPayMore)
{
    Mesh2D mesh(6, 6, 5);
    RequestContextMemory m(mesh);
    // Node 14 is adjacent to the centre (21); node 0 is the corner.
    EXPECT_GT(m.saveCost(0), m.saveCost(14));
}

TEST(ContextMemory, SaveEqualsRestore)
{
    Mesh2D mesh(6, 6, 5);
    RequestContextMemory m(mesh);
    EXPECT_EQ(m.saveCost(3), m.restoreCost(3));
}

TEST(ContextMemory, OccupancyTracking)
{
    Mesh2D mesh(4, 4);
    RequestContextMemory m(mesh);
    m.store(1);
    m.store(2);
    EXPECT_TRUE(m.contains(1));
    EXPECT_EQ(m.occupancy(), 2u);
    m.release(1);
    EXPECT_FALSE(m.contains(1));
    EXPECT_EQ(m.occupancy(), 1u);
    EXPECT_EQ(m.peakOccupancy(), 2u);
}

TEST(ContextMemory, ReleaseUnknownPanics)
{
    Mesh2D mesh(4, 4);
    RequestContextMemory m(mesh);
    EXPECT_THROW(m.release(42), std::logic_error);
}

TEST(ContextMemory, BandwidthValidation)
{
    Mesh2D mesh(4, 4);
    EXPECT_THROW(RequestContextMemory(mesh, 1024, 0.0),
                 std::runtime_error);
}

TEST(ContextMemory, LargerContextCostsMore)
{
    Mesh2D mesh(6, 6);
    RequestContextMemory small(mesh, 256);
    RequestContextMemory large(mesh, 4096);
    EXPECT_GT(large.saveCost(0), small.saveCost(0));
}
