/**
 * @file
 * Unit tests for the VM State Register Sets.
 */

#include <gtest/gtest.h>

#include "core/vm_state.h"

using hh::core::VmStateRegisterSet;

TEST(VmState, ReadWriteNamedRegisters)
{
    VmStateRegisterSet s;
    s.write(VmStateRegisterSet::VmcsPtr, 0xABCD);
    s.write(VmStateRegisterSet::Cr3, 0x1000);
    EXPECT_EQ(s.read(VmStateRegisterSet::VmcsPtr), 0xABCDu);
    EXPECT_EQ(s.read(VmStateRegisterSet::Cr3), 0x1000u);
    EXPECT_EQ(s.read(VmStateRegisterSet::Gdtr), 0u);
}

TEST(VmState, AllSixteenRegistersUsable)
{
    VmStateRegisterSet s;
    for (unsigned i = 0; i < VmStateRegisterSet::kNumRegs; ++i)
        s.write(i, i * 11);
    for (unsigned i = 0; i < VmStateRegisterSet::kNumRegs; ++i)
        EXPECT_EQ(s.read(i), i * 11);
}

TEST(VmState, OutOfRangePanics)
{
    VmStateRegisterSet s;
    EXPECT_THROW(s.read(16), std::logic_error);
    EXPECT_THROW(s.write(16, 1), std::logic_error);
}

TEST(VmState, ImageRoundTrip)
{
    VmStateRegisterSet a;
    for (unsigned i = 0; i < VmStateRegisterSet::kNumRegs; ++i)
        a.write(i, 100 + i);
    VmStateRegisterSet b;
    b.load(a.image());
    for (unsigned i = 0; i < VmStateRegisterSet::kNumRegs; ++i)
        EXPECT_EQ(b.read(i), 100 + i);
}

TEST(VmState, StorageMatchesPaper)
{
    // §6.8: 16 VM State registers of 8 B each.
    EXPECT_EQ(VmStateRegisterSet::storageBytes(), 128u);
}
