/**
 * @file
 * Unit tests for the open-loop load generator.
 */

#include <gtest/gtest.h>

#include "workload/loadgen.h"

using hh::sim::Cycles;
using hh::workload::BurstConfig;
using hh::workload::LoadGenerator;

TEST(LoadGen, ArrivalsMonotone)
{
    BurstConfig burst;
    LoadGenerator g(1000, burst, 42, 0);
    Cycles prev = 0;
    for (int i = 0; i < 1000; ++i) {
        const Cycles t = g.next();
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(LoadGen, MeanRateWithoutBursts)
{
    BurstConfig burst;
    burst.enabled = false;
    LoadGenerator g(1000, burst, 42, 0);
    Cycles last = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        last = g.next();
    const double seconds = hh::sim::cyclesToSec(last);
    EXPECT_NEAR(n / seconds, 1000.0, 30.0);
}

TEST(LoadGen, BurstsRaiseAverageRate)
{
    BurstConfig off;
    off.enabled = false;
    BurstConfig on;
    on.enabled = true;
    LoadGenerator base(500, off, 7, 0);
    LoadGenerator bursty(500, on, 7, 0);
    Cycles base_last = 0;
    Cycles bursty_last = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        base_last = base.next();
        bursty_last = bursty.next();
    }
    EXPECT_LT(bursty_last, base_last);
}

TEST(LoadGen, OpenLoopDeterminism)
{
    BurstConfig burst;
    LoadGenerator a(750, burst, 9, 3);
    LoadGenerator b(750, burst, 9, 3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(LoadGen, DifferentStreamsDiffer)
{
    BurstConfig burst;
    LoadGenerator a(750, burst, 9, 1);
    LoadGenerator b(750, burst, 9, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(LoadGen, ZeroRateFatal)
{
    BurstConfig burst;
    EXPECT_THROW(LoadGenerator(0, burst, 1, 0), std::runtime_error);
}
