/**
 * @file
 * Tests for the hierarchical metric registry and the periodic
 * EventQueue-driven sampler.
 */

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "stats/counter.h"
#include "stats/percentile.h"
#include "stats/registry.h"
#include "stats/sampler.h"
#include "stats/utilization.h"

using namespace hh::stats;

TEST(MetricRegistry, GaugeSnapshotAndValue)
{
    MetricRegistry reg;
    double v = 1.5;
    reg.registerGauge("a.b", [&v] { return v; });
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.contains("a.b"));
    EXPECT_DOUBLE_EQ(reg.value("a.b"), 1.5);
    v = 2.5;
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "a.b");
    EXPECT_DOUBLE_EQ(snap[0].value, 2.5);
}

TEST(MetricRegistry, NamesAreSortedLexicographically)
{
    MetricRegistry reg;
    reg.registerGauge("z", [] { return 0.0; });
    reg.registerGauge("a", [] { return 0.0; });
    reg.registerGauge("m.n", [] { return 0.0; });
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "m.n");
    EXPECT_EQ(names[2], "z");
}

TEST(MetricRegistry, DuplicateRegistrationPanics)
{
    MetricRegistry reg;
    reg.registerGauge("dup", [] { return 0.0; });
    EXPECT_THROW(reg.registerGauge("dup", [] { return 1.0; }),
                 std::logic_error);
}

TEST(MetricRegistry, EmptyNamePanics)
{
    MetricRegistry reg;
    EXPECT_THROW(reg.registerGauge("", [] { return 0.0; }),
                 std::logic_error);
}

TEST(MetricRegistry, UnknownValuePanics)
{
    const MetricRegistry reg;
    EXPECT_THROW(reg.value("nope"), std::logic_error);
}

TEST(MetricRegistry, CounterObjectAndRawCounter)
{
    MetricRegistry reg;
    Counter c{"c"};
    std::uint64_t raw = 7;
    reg.registerCounter("obj", c);
    reg.registerCounter("raw", raw);
    c.inc(3);
    EXPECT_DOUBLE_EQ(reg.value("obj"), 3.0);
    EXPECT_DOUBLE_EQ(reg.value("raw"), 7.0);
    raw = 9;
    EXPECT_DOUBLE_EQ(reg.value("raw"), 9.0);
}

TEST(MetricRegistry, CompositeObjectsExpandToScalars)
{
    MetricRegistry reg;
    Accumulator acc;
    acc.add(1.0);
    acc.add(3.0);
    reg.registerAccumulator("acc", acc);
    EXPECT_DOUBLE_EQ(reg.value("acc.count"), 2.0);
    EXPECT_DOUBLE_EQ(reg.value("acc.mean"), 2.0);
    EXPECT_DOUBLE_EQ(reg.value("acc.min"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("acc.max"), 3.0);

    LatencyRecorder lat("lat");
    lat.record(4.0);
    reg.registerLatency("lat", lat);
    EXPECT_DOUBLE_EQ(reg.value("lat.count"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("lat.mean"), 4.0);
}

TEST(MetricRegistry, UtilizationGaugeAndCycles)
{
    MetricRegistry reg;
    UtilizationTracker u;
    hh::sim::Cycles now = 0;
    reg.registerUtilization("core", u, [&now] { return now; });
    u.setBusy(0, true);
    now = 100;
    u.setBusy(100, false);
    now = 200;
    EXPECT_DOUBLE_EQ(reg.value("core.util"), 0.5);
    EXPECT_DOUBLE_EQ(reg.value("core.cycles"), 100.0);
}

TEST(MetricRegistry, ResetInvokesHooks)
{
    MetricRegistry reg;
    double v = 5.0;
    reg.registerGauge(
        "g", [&v] { return v; }, [&v] { v = 0.0; });
    reg.reset();
    EXPECT_DOUBLE_EQ(reg.value("g"), 0.0);
}

TEST(MetricRegistry, JsonIsPrefixedAndSorted)
{
    MetricRegistry reg;
    reg.registerGauge("b", [] { return 2.0; });
    reg.registerGauge("a", [] { return 1.0; });
    const std::string js = reg.json("server0");
    EXPECT_EQ(js.front(), '{');
    EXPECT_EQ(js.rfind("}\n"), js.size() - 2);
    const auto a_pos = js.find("\"server0.a\"");
    const auto b_pos = js.find("\"server0.b\"");
    ASSERT_NE(a_pos, std::string::npos);
    ASSERT_NE(b_pos, std::string::npos);
    EXPECT_LT(a_pos, b_pos);
}

TEST(MetricSampler, SamplesAtFixedCadence)
{
    hh::sim::Simulator sim;
    MetricRegistry reg;
    reg.registerGauge("t", [&sim] { return double(sim.now()); });

    MetricSampler sampler(sim, reg, 100);
    sampler.start();
    // Keep the queue busy well past several sampling periods.
    sim.schedule(450, [] {});
    sim.run(450);
    sampler.stop();

    const auto series = sampler.rows();
    // Rows at 0 (start), 100, 200, 300, 400, 450 (stop).
    ASSERT_EQ(series.size(), 6u);
    EXPECT_EQ(series[0].t, 0u);
    EXPECT_EQ(series[1].t, 100u);
    EXPECT_EQ(series[4].t, 400u);
    EXPECT_EQ(series[5].t, 450u);
    ASSERT_EQ(series[2].values.size(), 1u);
    EXPECT_DOUBLE_EQ(series[2].values[0], 200.0);
}

TEST(MetricSampler, StopCancelsPendingTick)
{
    hh::sim::Simulator sim;
    MetricRegistry reg;
    reg.registerGauge("x", [] { return 0.0; });
    MetricSampler sampler(sim, reg, 50);
    sampler.start();
    sampler.stop();
    // Without the cancel the self-rescheduling tick would keep the
    // queue alive forever.
    EXPECT_TRUE(sim.idle());
    sampler.stop(); // Idempotent.
}

TEST(MetricSampler, EmptyRegistryStillMarksCadence)
{
    hh::sim::Simulator sim;
    const MetricRegistry reg; // nothing registered
    MetricSampler sampler(sim, reg, 100);
    sampler.start();
    sim.schedule(250, [] {});
    sim.run(250);
    sampler.stop();
    auto series = sampler.takeSeries();
    series.label = "s0";
    // Rows at 0, 100, 200 and the 250 partial; each with no values.
    ASSERT_EQ(series.rows.size(), 4u);
    for (const auto &row : series.rows)
        EXPECT_TRUE(row.values.empty());
    const std::string csv = metricsCsv({series});
    EXPECT_EQ(csv.rfind("server,t_ms\n", 0), 0u);
}

TEST(MetricSampler, PartialFinalIntervalGetsOneRow)
{
    hh::sim::Simulator sim;
    MetricRegistry reg;
    reg.registerGauge("x", [] { return 1.0; });
    MetricSampler sampler(sim, reg, 100);
    sampler.start();
    // Run length 130 is not a multiple of the cadence: the stop()
    // must record the final partial interval exactly once.
    sim.schedule(130, [] {});
    sim.run(130);
    sampler.stop();
    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].t, 0u);
    EXPECT_EQ(rows[1].t, 100u);
    EXPECT_EQ(rows[2].t, 130u);
}

TEST(MetricSampler, StopAtTickTimeDoesNotDuplicateRow)
{
    hh::sim::Simulator sim;
    MetricRegistry reg;
    reg.registerGauge("x", [] { return 1.0; });
    MetricSampler sampler(sim, reg, 100);
    sampler.start();
    // The run ends exactly on a tick: the tick samples t=200, so the
    // stop() must not append a duplicate row at the same time.
    sim.run(200);
    ASSERT_EQ(sim.now(), 200u);
    sampler.stop();
    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].t, 0u);
    EXPECT_EQ(rows[1].t, 100u);
    EXPECT_EQ(rows[2].t, 200u);
}

TEST(MetricSampler, StartAfterResumeSamplesFromCurrentTime)
{
    hh::sim::Simulator sim;
    MetricRegistry reg;
    reg.registerGauge("t", [&sim] { return double(sim.now()); });
    // A checkpoint-resumed server starts its sampler with the clock
    // already advanced; rows must begin at now(), not at 0.
    sim.schedule(500, [] {});
    sim.run(500);
    MetricSampler sampler(sim, reg, 100);
    sampler.start();
    sim.schedule(250, [] {});
    sim.run(750);
    sampler.stop();
    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].t, 500u);
    EXPECT_EQ(rows[1].t, 600u);
    EXPECT_EQ(rows[2].t, 700u);
    EXPECT_EQ(rows[3].t, 750u);
    EXPECT_DOUBLE_EQ(rows[1].values[0], 600.0);
}

TEST(MetricSampler, LateRegistrationDoesNotShiftRows)
{
    hh::sim::Simulator sim;
    MetricRegistry reg;
    reg.registerGauge("b", [] { return 2.0; });
    MetricSampler sampler(sim, reg, 100);
    sampler.start();
    // A metric registered after start() must not widen later rows —
    // the columns were frozen with the header at start time.
    reg.registerGauge("a", [] { return 1.0; });
    sim.schedule(150, [] {});
    sim.run(150);
    sampler.stop();
    auto series = sampler.takeSeries();
    ASSERT_EQ(series.columns.size(), 1u);
    EXPECT_EQ(series.columns[0], "b");
    for (const auto &row : series.rows) {
        ASSERT_EQ(row.values.size(), 1u);
        EXPECT_DOUBLE_EQ(row.values[0], 2.0);
    }
}

TEST(MetricSampler, CsvHasHeaderAndSharedColumns)
{
    hh::sim::Simulator sim;
    MetricRegistry reg;
    reg.registerGauge("m.one", [] { return 1.0; });
    reg.registerGauge("m.two", [] { return 2.0; });
    MetricSampler sampler(sim, reg, 100);
    sampler.start();
    sampler.stop();
    auto series = sampler.takeSeries();
    series.label = "server0";

    const std::string csv = metricsCsv({series});
    EXPECT_EQ(csv.rfind("server,t_ms,m.one,m.two\n", 0), 0u);
    EXPECT_NE(csv.find("server0,"), std::string::npos);
}
