/**
 * @file
 * Cluster-level checkpoint contract tests: byte-identity of
 * `run(0 -> end)` vs `run(0 -> T) -> save -> load -> run(T -> end)`
 * for several T and worker counts, rejection of mismatched format
 * versions and SystemConfigs, periodic checkpointing, the
 * pre-violation dump, and the violation-window bisection helper.
 */

#include <gtest/gtest.h>

#include <string>

#include "cluster/checkpoint.h"
#include "cluster/experiment.h"
#include "snapshot/archive.h"
#include "snapshot/file.h"

using namespace hh::cluster;

namespace {

/**
 * Reduced-scale cluster with every observability surface on, so
 * serialized() covers metrics, traces and the audit section and the
 * byte-identity assertion is as strict as the subsystem gets.
 */
SystemConfig
fullObservabilityConfig()
{
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 40;
    cfg.accessSampling = 16;
    cfg.traceEnabled = true;
    cfg.traceCapacity = 1u << 14;
    cfg.metricsEnabled = true;
    cfg.metricsPeriod = hh::sim::msToCycles(1.0);
    cfg.auditEnabled = true;
    cfg.auditPeriod = 4096;
    return cfg;
}

/** The known-violating PR-1 race configuration (see test_audit_fuzz). */
SystemConfig
violatingConfig()
{
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 30;
    cfg.accessSampling = 32;
    cfg.auditEnabled = true;
    cfg.auditPeriod = 64;
    cfg.auditStopOnViolation = true;
    cfg.faults.enabled = true;
    cfg.faults.resurrectLendRace = true;
    cfg.faults.meanPeriod = hh::sim::usToCycles(5);
    cfg.faults.startAt = hh::sim::usToCycles(10);
    cfg.faults.actionsPerTick = 6;
    return cfg;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

} // namespace

TEST(CheckpointDeterminism, ByteIdentityAcrossTimesAndWorkers)
{
    const SystemConfig cfg = fullObservabilityConfig();
    const unsigned servers = 4;
    const std::uint64_t seed = 9;

    const ClusterResults full = runCluster(cfg, servers, seed, 4);
    const std::string want = full.serialized();
    const std::string want_trace = full.traceJson();
    ASSERT_FALSE(want.empty());

    const hh::sim::Cycles times[] = {
        hh::sim::msToCycles(1.0),
        hh::sim::msToCycles(3.0),
        hh::sim::msToCycles(8.0),
    };
    for (const hh::sim::Cycles T : times) {
        const std::string path =
            tmpPath("hh_ckpt_" + std::to_string(T) + ".hhcp");
        std::string err;
        ASSERT_TRUE(checkpointClusterAt(cfg, servers, seed, 4, T,
                                        path, &err))
            << err;
        for (const unsigned workers : {1u, 4u, 8u}) {
            const auto resumed =
                resumeCluster(path, cfg, workers, &err);
            ASSERT_TRUE(resumed.has_value())
                << "T=" << T << " workers=" << workers << ": " << err;
            EXPECT_EQ(resumed->serialized(), want)
                << "T=" << T << " workers=" << workers;
            EXPECT_EQ(resumed->traceJson(), want_trace)
                << "T=" << T << " workers=" << workers;
        }
    }
}

TEST(CheckpointDeterminism, FormatVersionMismatchIsRejected)
{
    const SystemConfig cfg = fullObservabilityConfig();
    hh::snap::CheckpointFile f;
    f.version = hh::snap::kFormatVersion + 1;
    f.configFingerprint = configFingerprint(cfg);
    f.servers = 1;
    f.seed = 1;
    f.batchApps = "BFS";
    f.blobs.emplace_back();
    const std::string path = tmpPath("hh_ckpt_future_version.hhcp");
    std::string err;
    ASSERT_TRUE(hh::snap::writeCheckpointFile(path, f, &err)) << err;

    const auto resumed = resumeCluster(path, cfg, 1, &err);
    EXPECT_FALSE(resumed.has_value());
    EXPECT_NE(err.find("format version"), std::string::npos) << err;
}

TEST(CheckpointDeterminism, ConfigMismatchIsRejected)
{
    SystemConfig cfg = fullObservabilityConfig();
    cfg.requestsPerVm = 10; // keep this one tiny
    const std::string path = tmpPath("hh_ckpt_config_mismatch.hhcp");
    std::string err;
    ASSERT_TRUE(checkpointClusterAt(cfg, 1, 3, 1,
                                    hh::sim::usToCycles(200), path,
                                    &err))
        << err;

    SystemConfig other = cfg;
    other.requestsPerVm = 11;
    const auto resumed = resumeCluster(path, other, 1, &err);
    EXPECT_FALSE(resumed.has_value());
    EXPECT_NE(err.find("SystemConfig"), std::string::npos) << err;

    // The unmodified config still resumes.
    const auto ok = resumeCluster(path, cfg, 1, &err);
    EXPECT_TRUE(ok.has_value()) << err;
}

TEST(CheckpointDeterminism, PeriodicCheckpointingMatchesPlainRun)
{
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 30;
    cfg.accessSampling = 32;
    const unsigned servers = 2;
    const std::uint64_t seed = 5;
    const std::string path = tmpPath("hh_ckpt_periodic.hhcp");

    const CheckpointedRun run = runClusterCheckpointed(
        cfg, servers, seed, 2, hh::sim::msToCycles(2.0), path);
    EXPECT_GE(run.checkpointsWritten, 1u);
    EXPECT_FALSE(run.preViolationDumped);

    const ClusterResults plain = runCluster(cfg, servers, seed, 2);
    EXPECT_EQ(run.results.serialized(), plain.serialized());

    // The file holds the final epoch; resuming it replays the (empty)
    // tail and must land on the same results.
    std::string err;
    const auto resumed = resumeCluster(path, cfg, 2, &err);
    ASSERT_TRUE(resumed.has_value()) << err;
    EXPECT_EQ(resumed->serialized(), plain.serialized());
}

TEST(CheckpointDeterminism, PreViolationDumpIsResumable)
{
    const SystemConfig cfg = violatingConfig();
    const std::string path = tmpPath("hh_ckpt_violation.hhcp");

    const CheckpointedRun run = runClusterCheckpointed(
        cfg, 1, 2, 1, hh::sim::usToCycles(20), path);
    ASSERT_GT(run.results.auditViolations, 0u);
    ASSERT_TRUE(run.preViolationDumped);
    ASSERT_FALSE(run.preViolationPath.empty());

    // Resuming the last violation-free epoch must walk straight back
    // into the same violation: same reports, same totals.
    std::string err;
    const auto resumed =
        resumeCluster(run.preViolationPath, cfg, 1, &err);
    ASSERT_TRUE(resumed.has_value()) << err;
    EXPECT_EQ(resumed->auditViolations,
              run.results.auditViolations);
    ASSERT_FALSE(resumed->auditReports.empty());
    ASSERT_FALSE(run.results.auditReports.empty());
    EXPECT_EQ(resumed->auditReports.front().second.time,
              run.results.auditReports.front().second.time);
    EXPECT_EQ(resumed->auditReports.front().second.message,
              run.results.auditReports.front().second.message);
}

TEST(CheckpointDeterminism, ViolationWindowBisection)
{
    const SystemConfig cfg = violatingConfig();
    const hh::sim::Cycles resolution = hh::sim::usToCycles(10);
    const ViolationWindow w =
        narrowViolationWindow(cfg, "BFS", 2, resolution);
    ASSERT_TRUE(w.found);
    EXPECT_GT(w.hi, w.lo);
    EXPECT_LE(w.hi - w.lo, resolution);
    EXPECT_FALSE(w.component.empty());
    EXPECT_FALSE(w.loState.empty());
    EXPECT_GT(w.probes, 1u);

    // The narrowed window really brackets the violation: resuming the
    // lo snapshot and advancing to hi reproduces it...
    {
        ServerSim sim(cfg, "BFS", 2);
        auto ar = hh::snap::Archive::forLoad(w.loState);
        sim.loadState(ar);
        ASSERT_TRUE(ar.ok()) << ar.error();
        EXPECT_LE(sim.now(), w.lo);
        sim.advanceRun(w.hi);
        ASSERT_NE(sim.auditor(), nullptr);
        EXPECT_GT(sim.auditor()->violationCount(), 0u);
        EXPECT_EQ(sim.auditor()->violations().front().time, w.hi);
    }
    // ...while the state at lo itself is violation-free.
    {
        ServerSim sim(cfg, "BFS", 2);
        auto ar = hh::snap::Archive::forLoad(w.loState);
        sim.loadState(ar);
        ASSERT_TRUE(ar.ok()) << ar.error();
        ASSERT_NE(sim.auditor(), nullptr);
        EXPECT_EQ(sim.auditor()->violationCount(), 0u);
    }
}
