/**
 * @file
 * Tests for logging helpers and miscellaneous server shapes.
 */

#include <gtest/gtest.h>

#include <thread>

#include "cluster/experiment.h"
#include "sim/log.h"

TEST(Log, PanicThrowsLogicError)
{
    EXPECT_THROW(hh::sim::panic("boom ", 42), std::logic_error);
    EXPECT_TRUE(hh::sim::errorReported());
}

TEST(Log, FatalThrowsRuntimeError)
{
    EXPECT_THROW(hh::sim::fatal("bad config: ", "x"),
                 std::runtime_error);
}

TEST(Log, WarnAndInformDoNotThrow)
{
    hh::sim::warn("a warning with value ", 1.5);
    hh::sim::inform("status: ", "ok");
}

TEST(Log, MessageConcatenation)
{
    try {
        hh::sim::panic("a=", 1, " b=", 2.5, " c=", "str");
        FAIL();
    } catch (const std::logic_error &e) {
        EXPECT_NE(std::string(e.what()).find("a=1 b=2.5 c=str"),
                  std::string::npos);
    }
}

TEST(Log, TagDefaultsToEmpty)
{
    EXPECT_EQ(hh::sim::logTag(), "");
}

TEST(Log, SetAndClearTag)
{
    hh::sim::setLogTag("server3");
    EXPECT_EQ(hh::sim::logTag(), "server3");
    hh::sim::setLogTag("");
    EXPECT_EQ(hh::sim::logTag(), "");
}

TEST(Log, TagScopeRestoresPreviousTag)
{
    hh::sim::setLogTag("outer");
    {
        const hh::sim::LogTagScope scope("inner");
        EXPECT_EQ(hh::sim::logTag(), "inner");
        {
            const hh::sim::LogTagScope nested("nested");
            EXPECT_EQ(hh::sim::logTag(), "nested");
        }
        EXPECT_EQ(hh::sim::logTag(), "inner");
    }
    EXPECT_EQ(hh::sim::logTag(), "outer");
    hh::sim::setLogTag("");
}

TEST(Log, TagIsPerThread)
{
    hh::sim::setLogTag("main-thread");
    std::string seen = "unset";
    std::thread worker([&seen] { seen = hh::sim::logTag(); });
    worker.join();
    EXPECT_EQ(seen, "") << "worker must not inherit the main tag";
    hh::sim::setLogTag("");
}

TEST(Log, TaggedWarningDoesNotThrow)
{
    const hh::sim::LogTagScope scope("tagtest");
    hh::sim::warn("tagged warning, value ", 3);
}

TEST(ServerShapes, SmallServerRuns)
{
    using namespace hh::cluster;
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.cores = 12;
    cfg.primaryVms = 2;
    cfg.coresPerPrimary = 4;
    cfg.requestsPerVm = 40;
    cfg.accessSampling = 32;
    const auto res = runServer(cfg, "DC", 3);
    ASSERT_EQ(res.services.size(), 2u);
    for (const auto &s : res.services)
        EXPECT_EQ(s.count, 36u);
    EXPECT_LE(res.avgBusyCores, 12.0);
}

TEST(ServerShapes, LoadScaleIncreasesPressure)
{
    using namespace hh::cluster;
    SystemConfig cfg = makeSystem(SystemKind::NoHarvest);
    cfg.requestsPerVm = 60;
    cfg.accessSampling = 32;
    const auto base = runServer(cfg, "BFS", 5);
    cfg.loadScale = 4.0;
    const auto loaded = runServer(cfg, "BFS", 5);
    // Same request count at 4x the rate finishes much faster.
    EXPECT_LT(loaded.elapsedSec, base.elapsedSec);
    EXPECT_GE(loaded.avgBusyCores, base.avgBusyCores);
}

TEST(ServerShapes, DifferentBatchAppsDifferentThroughput)
{
    using namespace hh::cluster;
    SystemConfig cfg = makeSystem(SystemKind::NoHarvest);
    cfg.requestsPerVm = 40;
    cfg.accessSampling = 32;
    const auto fast = runServer(cfg, "DC", 9);
    const auto slow = runServer(cfg, "RndFTrain", 9);
    // DC tasks are shorter and more cache-friendly than RndFTrain.
    EXPECT_GT(fast.batchThroughput, slow.batchThroughput);
}
