/**
 * @file
 * Tests for the Belady offline-optimal policy and its oracle,
 * including the property that Belady dominates every online policy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/repl_belady.h"
#include "cache/repl_hardharvest.h"
#include "cache/repl_lru.h"
#include "cache/repl_rrip.h"
#include "cache/set_assoc.h"
#include "sim/rng.h"

using namespace hh::cache;

TEST(NextUseOracle, PositionsAndNever)
{
    const std::vector<Addr> trace{5, 7, 5, 9, 7};
    NextUseOracle o(trace);
    EXPECT_EQ(o.nextUse(5, 0), 2u);
    EXPECT_EQ(o.nextUse(5, 2), NextUseOracle::kNever);
    EXPECT_EQ(o.nextUse(7, 0), 1u);
    EXPECT_EQ(o.nextUse(7, 1), 4u);
    EXPECT_EQ(o.nextUse(9, 0), 3u);
    EXPECT_EQ(o.nextUse(42, 0), NextUseOracle::kNever);
}

TEST(NextUseOracle, FirstUseFromMinusInfinity)
{
    const std::vector<Addr> trace{3};
    NextUseOracle o(trace);
    // nextUse strictly after position 0 does not exist.
    EXPECT_EQ(o.nextUse(3, 0), NextUseOracle::kNever);
}

namespace {

/** Replay a trace through a single-set array and report hits. */
std::uint64_t
replayHits(const std::vector<Addr> &trace, unsigned ways,
           std::unique_ptr<ReplacementPolicy> policy)
{
    SetAssocArray arr(Geometry{1, ways, 1}, std::move(policy));
    std::uint64_t hits = 0;
    for (const Addr k : trace)
        hits += arr.access(k, true).hit ? 1 : 0;
    return hits;
}

} // namespace

TEST(Belady, ClassicExampleBeatsLru)
{
    // Textbook sequence where LRU struggles on a 3-way cache.
    const std::vector<Addr> trace{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
    NextUseOracle oracle(trace);
    const auto belady =
        replayHits(trace, 3, std::make_unique<BeladyPolicy>(oracle));
    const auto lru =
        replayHits(trace, 3, std::make_unique<LruPolicy>());
    EXPECT_GT(belady, lru);
    // Belady on this sequence achieves 5 hits (7 faults on 12 refs).
    EXPECT_EQ(belady, 5u);
}

TEST(Belady, PositionAdvancesOncePerAccess)
{
    const std::vector<Addr> trace{1, 2, 1, 2};
    NextUseOracle oracle(trace);
    auto policy = std::make_unique<BeladyPolicy>(oracle);
    BeladyPolicy *raw = policy.get();
    SetAssocArray arr(Geometry{1, 2, 1}, std::move(policy));
    for (const Addr k : trace)
        arr.access(k, true);
    EXPECT_EQ(raw->position(), trace.size());
}

/** Property: Belady's hit count dominates every online policy. */
class BeladyOptimal : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BeladyOptimal, DominatesOnlinePolicies)
{
    hh::sim::Rng rng(GetParam(), 1234);
    // Skewed random trace over 64 keys mapping into 4 sets.
    std::vector<Addr> trace;
    hh::sim::ZipfSampler zipf(64, 0.8);
    for (int i = 0; i < 4000; ++i)
        trace.push_back(zipf.sample(rng));

    auto replay = [&](std::unique_ptr<ReplacementPolicy> p) {
        SetAssocArray arr(Geometry{4, 4, 1}, std::move(p));
        std::uint64_t hits = 0;
        for (const Addr k : trace)
            hits += arr.access(k, true).hit ? 1 : 0;
        return hits;
    };

    NextUseOracle oracle(trace);
    const auto belady = replay(std::make_unique<BeladyPolicy>(oracle));
    EXPECT_GE(belady, replay(std::make_unique<LruPolicy>()));
    EXPECT_GE(belady, replay(std::make_unique<RripPolicy>()));
    EXPECT_GE(belady, replay(std::make_unique<HardHarvestPolicy>()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyOptimal,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
