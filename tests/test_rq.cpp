/**
 * @file
 * Unit tests for the chunked hardware Request Queue and per-VM
 * subqueues (§4.1.2), including overflow and chunk donation.
 */

#include <gtest/gtest.h>

#include "core/rq.h"

using hh::core::RequestQueue;
using hh::core::SubQueue;

TEST(RequestQueue, DefaultGeometryMatchesPaper)
{
    RequestQueue rq;
    EXPECT_EQ(rq.numChunks(), 32u);
    EXPECT_EQ(rq.entriesPerChunk(), 64u);
    EXPECT_EQ(rq.totalEntries(), 2048u);
    // §6.8: 2K entries of 66 bits.
    EXPECT_EQ(rq.storageBits(), 2048u * 66u);
}

TEST(RequestQueue, AllocateAllThenExhaust)
{
    RequestQueue rq(4, 8);
    std::vector<int> got;
    for (int i = 0; i < 4; ++i) {
        const int c = rq.allocChunk();
        ASSERT_GE(c, 0);
        got.push_back(c);
    }
    EXPECT_EQ(rq.allocChunk(), -1);
    EXPECT_EQ(rq.freeChunks(), 0u);
    rq.freeChunk(static_cast<unsigned>(got[0]));
    EXPECT_EQ(rq.freeChunks(), 1u);
}

TEST(RequestQueue, DoubleFreePanics)
{
    RequestQueue rq(2, 8);
    const int c = rq.allocChunk();
    rq.freeChunk(static_cast<unsigned>(c));
    EXPECT_THROW(rq.freeChunk(static_cast<unsigned>(c)),
                 std::logic_error);
}

TEST(RequestQueue, BadChunkPanics)
{
    RequestQueue rq(2, 8);
    EXPECT_THROW(rq.freeChunk(7), std::logic_error);
}

namespace {

/** Give a subqueue n chunks from the RQ. */
void
grow(SubQueue &q, RequestQueue &rq, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        const int c = rq.allocChunk();
        ASSERT_GE(c, 0);
        ASSERT_TRUE(q.addChunk(static_cast<unsigned>(c)));
    }
}

} // namespace

TEST(SubQueue, FifoOrder)
{
    RequestQueue rq(4, 8);
    SubQueue q(rq);
    grow(q, rq, 1);
    q.enqueue(10);
    q.enqueue(20);
    q.enqueue(30);
    EXPECT_EQ(q.dequeue().value(), 10u);
    EXPECT_EQ(q.dequeue().value(), 20u);
    EXPECT_EQ(q.dequeue().value(), 30u);
    EXPECT_FALSE(q.dequeue().has_value());
}

TEST(SubQueue, CapacityFromChunks)
{
    RequestQueue rq(4, 8);
    SubQueue q(rq);
    EXPECT_EQ(q.capacity(), 0u);
    grow(q, rq, 2);
    EXPECT_EQ(q.capacity(), 16u);
}

TEST(SubQueue, OverflowWhenFull)
{
    RequestQueue rq(4, 4);
    SubQueue q(rq);
    grow(q, rq, 1); // capacity 4
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(q.enqueue(i));
    EXPECT_FALSE(q.enqueue(99)); // spills to overflow
    EXPECT_EQ(q.overflowSize(), 1u);
    EXPECT_EQ(q.occupancy(), 4u);
}

TEST(SubQueue, OverflowDrainsFifoOnCompletion)
{
    RequestQueue rq(4, 2);
    SubQueue q(rq);
    grow(q, rq, 1); // capacity 2
    q.enqueue(1);
    q.enqueue(2);
    q.enqueue(3); // overflow
    const auto a = q.dequeue();
    ASSERT_TRUE(a.has_value());
    // Dequeue freed no entry (1 is running); 3 drains when 1 ends.
    q.complete(*a);
    EXPECT_EQ(q.overflowSize(), 0u);
    EXPECT_EQ(q.dequeue().value(), 2u);
    EXPECT_EQ(q.dequeue().value(), 3u);
}

TEST(SubQueue, FifoPreservedThroughOverflow)
{
    RequestQueue rq(4, 2);
    SubQueue q(rq);
    grow(q, rq, 1);
    q.enqueue(1);
    q.enqueue(2);
    q.enqueue(3);
    // Even though an entry frees up, 4 must queue behind 3.
    const auto a = q.dequeue();
    q.complete(*a);
    q.enqueue(4);
    EXPECT_EQ(q.dequeue().value(), 2u);
    EXPECT_EQ(q.dequeue().value(), 3u);
}

TEST(SubQueue, BlockedLifecycle)
{
    RequestQueue rq(4, 8);
    SubQueue q(rq);
    grow(q, rq, 1);
    q.enqueue(5);
    const auto r = q.dequeue();
    ASSERT_TRUE(r.has_value());
    q.markBlocked(*r);
    EXPECT_FALSE(q.hasReady());
    EXPECT_EQ(q.occupancy(), 1u); // entry stays while blocked
    q.markReady(*r);
    EXPECT_TRUE(q.hasReady());
    // Unblocked requests resume at the head (oldest first).
    q.enqueue(6);
    EXPECT_EQ(q.dequeue().value(), 5u);
}

TEST(SubQueue, PreemptReturnsToHead)
{
    RequestQueue rq(4, 8);
    SubQueue q(rq);
    grow(q, rq, 1);
    q.enqueue(1);
    q.enqueue(2);
    const auto r = q.dequeue();
    q.preempt(*r); // Fig 10: ID5 becomes ready again
    EXPECT_EQ(q.dequeue().value(), 1u);
}

TEST(SubQueue, LifecyclePanicsOnBadStates)
{
    RequestQueue rq(4, 8);
    SubQueue q(rq);
    grow(q, rq, 1);
    q.enqueue(1);
    EXPECT_THROW(q.markBlocked(1), std::logic_error); // not running
    EXPECT_THROW(q.complete(1), std::logic_error);
    EXPECT_THROW(q.markReady(1), std::logic_error);
    const auto r = q.dequeue();
    EXPECT_THROW(q.markReady(*r), std::logic_error); // not blocked
}

TEST(SubQueue, ShedTailChunkSpillsYoungest)
{
    RequestQueue rq(4, 2);
    SubQueue q(rq);
    grow(q, rq, 2); // capacity 4
    for (std::uint64_t i = 1; i <= 4; ++i)
        q.enqueue(i);
    const int shed = q.shedTailChunk();
    EXPECT_GE(shed, 0);
    EXPECT_EQ(q.capacity(), 2u);
    EXPECT_EQ(q.occupancy(), 2u);
    EXPECT_EQ(q.overflowSize(), 2u);
    // FIFO preserved: 1 and 2 still in hardware.
    EXPECT_EQ(q.dequeue().value(), 1u);
}

TEST(SubQueue, ShedFromEmptyMapFails)
{
    RequestQueue rq(2, 2);
    SubQueue q(rq);
    EXPECT_EQ(q.shedTailChunk(), -1);
}

TEST(SubQueue, RqMapCapped32)
{
    RequestQueue rq(40, 1);
    SubQueue q(rq);
    for (unsigned i = 0; i < 32; ++i) {
        const int c = rq.allocChunk();
        ASSERT_TRUE(q.addChunk(static_cast<unsigned>(c)));
    }
    const int extra = rq.allocChunk();
    ASSERT_GE(extra, 0);
    EXPECT_FALSE(q.addChunk(static_cast<unsigned>(extra)));
    rq.freeChunk(static_cast<unsigned>(extra));
}

TEST(SubQueue, DestructorReturnsChunks)
{
    RequestQueue rq(4, 8);
    {
        SubQueue q(rq);
        grow(q, rq, 3);
        EXPECT_EQ(rq.freeChunks(), 1u);
    }
    EXPECT_EQ(rq.freeChunks(), 4u);
}

TEST(SubQueue, RqMapStorageMatchesPaper)
{
    // §6.8: 24 B RQ-Map = 32 entries x (5-bit id + valid).
    EXPECT_EQ(SubQueue::kRqMapBits, 192u);
    EXPECT_EQ(SubQueue::kRqMapBits / 8, 24u);
}

// ------------------------------------------------- enqueue contract

// SubQueue::enqueue never rejects: a `false` return means the payload
// was deferred to the in-memory overflow subqueue and will drain back
// into hardware on its own. A caller that misreads `false` as
// "rejected, retry later" would duplicate the request — this pins the
// exactly-once semantics down.
TEST(SubQueue, OverflowedEnqueueIsDeferredExactlyOnce)
{
    RequestQueue rq(2, 2);
    SubQueue q(rq);
    grow(q, rq, 1); // capacity 2

    EXPECT_TRUE(q.enqueue(1));
    EXPECT_TRUE(q.enqueue(2));
    // Third enqueue: deferred, not rejected.
    EXPECT_FALSE(q.enqueue(3));
    EXPECT_EQ(q.occupancy(), 2u);
    EXPECT_EQ(q.overflowSize(), 1u);
    // Every payload is accounted for exactly once.
    EXPECT_EQ(q.occupancy() + q.overflowSize(), 3u);

    // Drain: completing the running request frees a slot and pulls
    // payload 3 back into hardware in FIFO order, exactly once.
    auto got = q.dequeue();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 1u);
    q.complete(1);
    EXPECT_EQ(q.overflowSize(), 0u);
    EXPECT_EQ(q.occupancy(), 2u);
    got = q.dequeue();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 2u);
    q.complete(2);
    got = q.dequeue();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 3u);
    q.complete(3);
    // Nothing left anywhere: payload 3 entered hardware exactly once.
    EXPECT_FALSE(q.dequeue().has_value());
    EXPECT_EQ(q.occupancy(), 0u);
    EXPECT_EQ(q.overflowSize(), 0u);
    EXPECT_EQ(q.enqueues().value(), 3u);
    EXPECT_EQ(q.overflows().value(), 1u);
}

// FIFO fairness across the overflow boundary: once anything has
// overflowed, later arrivals queue behind it even if hardware slots
// free up in between.
TEST(SubQueue, ArrivalsQueueBehindOverflow)
{
    RequestQueue rq(2, 2);
    SubQueue q(rq);
    grow(q, rq, 1); // capacity 2

    EXPECT_TRUE(q.enqueue(1));
    EXPECT_TRUE(q.enqueue(2));
    EXPECT_FALSE(q.enqueue(3)); // overflow
    EXPECT_FALSE(q.enqueue(4)); // must queue behind 3
    auto got = q.dequeue();
    ASSERT_TRUE(got.has_value());
    q.complete(*got); // frees one slot: 3 drains, 4 stays behind
    EXPECT_EQ(q.overflowSize(), 1u);
    got = q.dequeue();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 2u);
    q.complete(2); // frees another slot: now 4 drains
    EXPECT_EQ(q.overflowSize(), 0u);
    got = q.dequeue();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 3u);
    got = q.dequeue();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 4u);
}

// ---------------------------------------------- teardown leak audit

// A subqueue destroyed while it still holds request payloads is a
// request leak; the destructor must surface it (warn + counter)
// instead of silently freeing the chunks.
TEST(SubQueue, DestructorCountsLeakedPayloads)
{
    SubQueue::resetTeardownPayloadLeaks();
    RequestQueue rq(2, 4);
    {
        SubQueue q(rq);
        grow(q, rq, 1);
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        auto got = q.dequeue();
        ASSERT_TRUE(got.has_value());
        q.markBlocked(*got);
        // Destroyed holding 2 ready + 1 blocked payloads.
    }
    EXPECT_EQ(SubQueue::teardownPayloadLeaks(), 3u);
    SubQueue::resetTeardownPayloadLeaks();
    EXPECT_EQ(SubQueue::teardownPayloadLeaks(), 0u);
}

TEST(SubQueue, CleanDestructionLeaksNothing)
{
    SubQueue::resetTeardownPayloadLeaks();
    RequestQueue rq(2, 4);
    {
        SubQueue q(rq);
        grow(q, rq, 1);
        q.enqueue(7);
        auto got = q.dequeue();
        ASSERT_TRUE(got.has_value());
        q.complete(*got);
    }
    EXPECT_EQ(SubQueue::teardownPayloadLeaks(), 0u);
}

TEST(SubQueue, DestructorCountsOverflowLeaks)
{
    SubQueue::resetTeardownPayloadLeaks();
    RequestQueue rq(2, 1);
    {
        SubQueue q(rq);
        grow(q, rq, 1); // capacity 1
        q.enqueue(1);
        q.enqueue(2); // overflows
    }
    EXPECT_EQ(SubQueue::teardownPayloadLeaks(), 2u);
    SubQueue::resetTeardownPayloadLeaks();
}
