/**
 * @file
 * Unit tests for the replacement policies, with special focus on
 * the HardHarvest policy's Algorithm 1 semantics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/repl_cdp.h"
#include "cache/repl_hardharvest.h"
#include "cache/repl_lru.h"
#include "cache/repl_rrip.h"
#include "cache/replacement.h"
#include "cache/set_assoc.h"
#include "sim/rng.h"

using namespace hh::cache;

namespace {

/** Build a 4-way set context for direct policy testing. */
struct SetFixture
{
    std::vector<WayState> ways;
    SetContext ctx;

    explicit SetFixture(unsigned n = 4)
        : ways(n)
    {
        ctx.harvestMask = 0b0011; // ways 0-1 are the harvest region
        ctx.allowedMask = (WayMask{1} << n) - 1;
        ctx.candidateMask = ctx.allowedMask;
        refresh();
    }

    void
    refresh()
    {
        ctx.ways = std::span<const WayState>(ways.data(), ways.size());
    }

    void
    fillAll(bool shared, std::uint64_t base_tick = 1)
    {
        for (std::size_t i = 0; i < ways.size(); ++i) {
            ways[i].valid = true;
            ways[i].shared = shared;
            ways[i].tag = 100 + i;
            ways[i].lastUse = base_tick + i;
        }
        refresh();
    }
};

} // namespace

// ---------------------------------------------------------------- LRU

TEST(Lru, PrefersInvalidSlots)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[2].valid = false;
    f.refresh();
    LruPolicy p;
    EXPECT_EQ(p.victim(f.ctx, true), 2u);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[3].lastUse = 0; // oldest
    f.refresh();
    LruPolicy p;
    EXPECT_EQ(p.victim(f.ctx, true), 3u);
}

TEST(Lru, RespectsAllowedMask)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[0].lastUse = 0; // globally LRU but not allowed
    f.ctx.allowedMask = 0b1100;
    f.refresh();
    LruPolicy p;
    const unsigned v = p.victim(f.ctx, true);
    EXPECT_TRUE(v == 2 || v == 3);
}

// --------------------------------------------------------------- RRIP

TEST(Rrip, InsertsAtLongInterval)
{
    RripPolicy p;
    WayState w;
    p.fill(w, 1);
    EXPECT_EQ(w.rrpv, 2);
}

TEST(Rrip, PromotesOnHit)
{
    RripPolicy p;
    WayState w;
    p.fill(w, 1);
    p.touch(w, 2);
    EXPECT_EQ(w.rrpv, 0);
}

TEST(Rrip, VictimHasMaxRrpv)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[0].rrpv = 1;
    f.ways[1].rrpv = 3;
    f.ways[2].rrpv = 2;
    f.ways[3].rrpv = 0;
    f.refresh();
    RripPolicy p;
    EXPECT_EQ(p.victim(f.ctx, true), 1u);
}

TEST(Rrip, TieBrokenByLru)
{
    SetFixture f;
    f.fillAll(true);
    for (auto &w : f.ways)
        w.rrpv = 2;
    f.ways[2].lastUse = 0;
    f.refresh();
    RripPolicy p;
    EXPECT_EQ(p.victim(f.ctx, true), 2u);
}

// -------------------------------------------- HardHarvest Algorithm 1

TEST(HardHarvest, SharedEntryPrefersInvalidNonHarvestSlot)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[1].valid = false; // harvest region
    f.ways[3].valid = false; // non-harvest region
    f.refresh();
    HardHarvestPolicy p;
    EXPECT_EQ(p.victim(f.ctx, /*incoming_shared=*/true), 3u);
}

TEST(HardHarvest, PrivateEntryPrefersInvalidHarvestSlot)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[1].valid = false;
    f.ways[3].valid = false;
    f.refresh();
    HardHarvestPolicy p;
    EXPECT_EQ(p.victim(f.ctx, /*incoming_shared=*/false), 1u);
}

TEST(HardHarvest, AnyInvalidSlotWhenPreferredRegionFull)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[0].valid = false; // only a harvest slot is empty
    f.refresh();
    HardHarvestPolicy p;
    // Shared entry would prefer non-harvest, but takes the empty slot.
    EXPECT_EQ(p.victim(f.ctx, true), 0u);
}

TEST(HardHarvest, SharedEvictsPrivateInNonHarvestFirst)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[1].shared = false; // private in harvest region
    f.ways[2].shared = false; // private in non-harvest region
    f.refresh();
    HardHarvestPolicy p;
    EXPECT_EQ(p.victim(f.ctx, true), 2u);
}

TEST(HardHarvest, SharedFallsBackToPrivateInHarvest)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[0].shared = false; // only private entry, harvest region
    f.refresh();
    HardHarvestPolicy p;
    EXPECT_EQ(p.victim(f.ctx, true), 0u);
}

TEST(HardHarvest, PrivateEvictsPrivateInHarvestFirst)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[1].shared = false; // private in harvest region
    f.ways[2].shared = false; // private in non-harvest region
    f.refresh();
    HardHarvestPolicy p;
    EXPECT_EQ(p.victim(f.ctx, false), 1u);
}

TEST(HardHarvest, PrivateFallsBackToPrivateInNonHarvest)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[3].shared = false;
    f.refresh();
    HardHarvestPolicy p;
    EXPECT_EQ(p.victim(f.ctx, false), 3u);
}

TEST(HardHarvest, AllSharedFallsBackToLru)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[2].lastUse = 0;
    f.refresh();
    HardHarvestPolicy p;
    EXPECT_EQ(p.victim(f.ctx, true), 2u);
    EXPECT_EQ(p.victim(f.ctx, false), 2u);
}

TEST(HardHarvest, CandidateMaskRestrictsEviction)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[0].shared = false; // private, harvest, but NOT a candidate
    f.ways[3].lastUse = 0;    // LRU among candidates
    f.ctx.candidateMask = 0b1110;
    f.refresh();
    HardHarvestPolicy p;
    // Incoming private would take way 0, but it is protected;
    // no other private entries, so LRU among candidates: way 3.
    EXPECT_EQ(p.victim(f.ctx, false), 3u);
}

TEST(HardHarvest, InvalidSlotsIgnoreCandidateRestriction)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[0].valid = false;
    f.ctx.candidateMask = 0b1110; // way 0 not a candidate
    f.refresh();
    HardHarvestPolicy p;
    EXPECT_EQ(p.victim(f.ctx, false), 0u);
}

TEST(HardHarvest, TieWithinClassBrokenByLru)
{
    SetFixture f;
    f.fillAll(true);
    f.ways[2].shared = false;
    f.ways[3].shared = false;
    f.ways[3].lastUse = 0;
    f.refresh();
    HardHarvestPolicy p;
    EXPECT_EQ(p.victim(f.ctx, true), 3u);
}

// ------------------------------------------------------ priority mux
// §4.2.4: the two priority multiplexers, exhaustively on a 2-way set
// (way 0 harvest, way 1 non-harvest).

TEST(HardHarvest, PriorityMuxSharedIncoming)
{
    SetFixture f(2);
    f.ctx.harvestMask = 0b01;
    f.ctx.allowedMask = 0b11;
    f.ctx.candidateMask = 0b11;
    HardHarvestPolicy p;

    // Invalid & NotHarvest beats Invalid & Harvest.
    f.ways[0] = WayState{};
    f.ways[1] = WayState{};
    f.refresh();
    EXPECT_EQ(p.victim(f.ctx, true), 1u);

    // NotHarvest & private beats Harvest & private.
    f.fillAll(false);
    EXPECT_EQ(p.victim(f.ctx, true), 1u);
}

TEST(HardHarvest, PriorityMuxPrivateIncoming)
{
    SetFixture f(2);
    f.ctx.harvestMask = 0b01;
    f.ctx.allowedMask = 0b11;
    f.ctx.candidateMask = 0b11;
    HardHarvestPolicy p;

    // Invalid & Harvest preferred.
    f.ways[0] = WayState{};
    f.ways[1] = WayState{};
    f.refresh();
    EXPECT_EQ(p.victim(f.ctx, false), 0u);

    // Harvest & private beats NotHarvest & private.
    f.fillAll(false);
    EXPECT_EQ(p.victim(f.ctx, false), 0u);
}

// ----------------------------------------------------------- factory

TEST(Factory, MakesEachKind)
{
    EXPECT_STREQ(makePolicy(ReplKind::LRU)->name(), "LRU");
    EXPECT_STREQ(makePolicy(ReplKind::RRIP)->name(), "RRIP");
    EXPECT_STREQ(makePolicy(ReplKind::HardHarvest)->name(),
                 "HardHarvest");
}

TEST(Factory, BeladyRequiresOracle)
{
    EXPECT_THROW(makePolicy(ReplKind::Belady), std::runtime_error);
}

TEST(Factory, KindNames)
{
    EXPECT_STREQ(replKindName(ReplKind::LRU), "LRU");
    EXPECT_STREQ(replKindName(ReplKind::Belady), "Belady");
}

// --------------------------------------------- behavioural property
// The HardHarvest policy should preserve shared (cross-invocation)
// state better than LRU when private streaming data washes through.

class SharedRetention : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SharedRetention, HardHarvestBeatsLruOnSharedReuse)
{
    const std::uint64_t seed = GetParam();

    auto run = [&](ReplKind kind) {
        SetAssocArray arr(Geometry{16, 8, 1}, makePolicy(kind));
        arr.setHarvestWayCount(4);
        if (kind == ReplKind::HardHarvest)
            arr.setCandidateFraction(0.75);
        hh::sim::Rng rng(seed, 99);
        // Shared working set that fits; private stream that doesn't.
        std::uint64_t shared_hits = 0;
        std::uint64_t shared_refs = 0;
        std::uint64_t next_private = 1'000'000;
        for (int i = 0; i < 30000; ++i) {
            if (rng.bernoulli(0.5)) {
                ++shared_refs;
                shared_hits +=
                    arr.access(rng.uniformInt(std::uint64_t{48}), true)
                            .hit
                        ? 1
                        : 0;
            } else {
                arr.access(next_private++, false);
            }
        }
        return static_cast<double>(shared_hits) /
               static_cast<double>(shared_refs);
    };

    EXPECT_GT(run(ReplKind::HardHarvest), run(ReplKind::LRU));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedRetention,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ----------------------------------- degenerate / out-of-range masks

namespace {

/** One degenerate-mask scenario for the victim() table test. */
struct MaskCase
{
    const char *name;
    WayMask allowed;   //!< May include bits beyond the 4-way set.
    WayMask candidate; //!< May be disjoint from allowed.
    bool incomingShared;
};

/**
 * Scenarios that historically defeated the class-5 / safety-net
 * fallbacks: phantom mask bits beyond the set's geometry survived
 * into the victims mask, lruAmong() ignored them, and victim()
 * panicked with "empty allowed mask" despite valid in-range ways.
 */
const MaskCase kMaskCases[] = {
    // Out-of-range allowed bits alongside valid ones.
    {"allowed_with_phantom_bits", 0b1111 | (WayMask{0xF0} << 4),
     0b1111, true},
    // Candidates entirely out of range (and allowed covering them):
    // class 5 would otherwise select a phantom-only victims mask and
    // panic; the safety net must fall back to in-range allowed LRU.
    {"candidates_all_phantom", 0b1111 | (WayMask{0xF} << 8),
     WayMask{0xF} << 8, true},
    // Candidates disjoint from allowed (degenerate candidate mask).
    {"candidates_outside_allowed", 0b0011, 0b1100, false},
    // Partial overlap: only the overlap may be evicted from.
    {"partial_overlap", 0b0111, 0b1110 | (WayMask{1} << 9), true},
    // Harvest region itself carries phantom bits.
    {"harvest_mask_phantom", 0b1111 | (WayMask{1} << 17), 0b1111,
     false},
};

} // namespace

class DegenerateMasks : public ::testing::TestWithParam<MaskCase>
{};

TEST_P(DegenerateMasks, HardHarvestVictimStaysInRange)
{
    const MaskCase &c = GetParam();
    SetFixture f;
    f.fillAll(true); // all-shared: forces class 5 / safety net
    f.ctx.allowedMask = c.allowed;
    f.ctx.candidateMask = c.candidate;
    if (std::string(c.name) == "harvest_mask_phantom")
        f.ctx.harvestMask = 0b0011 | (WayMask{1} << 17);
    HardHarvestPolicy p;
    const unsigned v = p.victim(f.ctx, c.incomingShared);
    EXPECT_LT(v, f.ways.size()) << c.name;
    // The pick also respects the in-range part of allowed.
    EXPECT_TRUE((c.allowed >> v) & 1) << c.name;
}

TEST_P(DegenerateMasks, CdpVictimStaysInRange)
{
    const MaskCase &c = GetParam();
    SetFixture f;
    f.fillAll(true);
    f.ctx.allowedMask = c.allowed;
    f.ctx.candidateMask = c.candidate;
    CdpPolicy p;
    const unsigned v = p.victim(f.ctx, c.incomingShared);
    EXPECT_LT(v, f.ways.size()) << c.name;
    EXPECT_TRUE((c.allowed >> v) & 1) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Table, DegenerateMasks,
                         ::testing::ValuesIn(kMaskCases));

// All-private candidates with a phantom-only first region must fall
// through the class ladder without picking a phantom way.
TEST(DegenerateMasks, PrivateEntriesWithPhantomRegion)
{
    SetFixture f;
    f.fillAll(false); // all-private
    f.ctx.allowedMask = 0b1111 | (WayMask{0x3} << 6);
    f.ctx.candidateMask = WayMask{0x3} << 6; // candidates all phantom
    HardHarvestPolicy p;
    const unsigned v = p.victim(f.ctx, false);
    EXPECT_LT(v, f.ways.size());
}
