/**
 * @file
 * Unit tests for the mesh and control-tree network models.
 */

#include <gtest/gtest.h>

#include "noc/control_tree.h"
#include "noc/mesh.h"

using hh::noc::ControlTree;
using hh::noc::Mesh2D;

TEST(Mesh, HopCountsManhattan)
{
    Mesh2D m(6, 6, 5);
    EXPECT_EQ(m.hops(0, 0), 0u);
    EXPECT_EQ(m.hops(0, 5), 5u);   // same row
    EXPECT_EQ(m.hops(0, 30), 5u);  // same column
    EXPECT_EQ(m.hops(0, 35), 10u); // opposite corner
}

TEST(Mesh, HopsSymmetric)
{
    Mesh2D m(6, 6);
    for (unsigned a = 0; a < 36; a += 5) {
        for (unsigned b = 0; b < 36; b += 7)
            EXPECT_EQ(m.hops(a, b), m.hops(b, a));
    }
}

TEST(Mesh, LatencyScalesWithHopCost)
{
    Mesh2D m(4, 4, 7);
    EXPECT_EQ(m.latency(0, 3), 21u);
}

TEST(Mesh, CenterLatencyBounded)
{
    Mesh2D m(6, 6, 5);
    for (unsigned n = 0; n < m.nodes(); ++n)
        EXPECT_LE(m.latencyToCenter(n), 6u * 5u);
}

TEST(Mesh, OutOfRangePanics)
{
    Mesh2D m(2, 2);
    EXPECT_THROW(m.hops(0, 4), std::logic_error);
}

TEST(Mesh, DegenerateDimensionsFatal)
{
    EXPECT_THROW(Mesh2D(0, 4), std::runtime_error);
}

TEST(ControlTree, DepthGrowsLogarithmically)
{
    EXPECT_EQ(ControlTree(4, 4).depth(), 1u);
    EXPECT_EQ(ControlTree(16, 4).depth(), 2u);
    EXPECT_EQ(ControlTree(17, 4).depth(), 3u);
    EXPECT_EQ(ControlTree(36, 4).depth(), 3u);
    EXPECT_EQ(ControlTree(64, 4).depth(), 3u);
}

TEST(ControlTree, LatencyMath)
{
    ControlTree t(36, 4, 2);
    EXPECT_EQ(t.coreToController(), 6u);
    EXPECT_EQ(t.roundTrip(), 12u);
}

TEST(ControlTree, BinaryFanout)
{
    ControlTree t(36, 2, 1);
    EXPECT_EQ(t.depth(), 6u); // 2^6 = 64 >= 36
}

TEST(ControlTree, InvalidConfigFatal)
{
    EXPECT_THROW(ControlTree(0, 4), std::runtime_error);
    EXPECT_THROW(ControlTree(8, 1), std::runtime_error);
}

TEST(ControlTree, MuchCheaperThanSoftwarePolling)
{
    // The whole point of the control tree (§4.1.8): a queue
    // operation is tens of cycles, not tens of microseconds.
    ControlTree t(36, 4, 2);
    EXPECT_LT(t.roundTrip(), hh::sim::usToCycles(0.1));
}
