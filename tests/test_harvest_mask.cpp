/**
 * @file
 * Unit and property tests for the 5-byte HarvestMask register.
 */

#include <gtest/gtest.h>

#include "core/harvest_mask.h"
#include "sim/rng.h"

using hh::core::HarvestMask;
using hh::core::kNumMaskedStructs;
using hh::core::MaskedStruct;

TEST(HarvestMask, DefaultWayCountsMatchTable1)
{
    HarvestMask m;
    EXPECT_EQ(m.wayCount(MaskedStruct::L1D), 12u);
    EXPECT_EQ(m.wayCount(MaskedStruct::L1I), 8u);
    EXPECT_EQ(m.wayCount(MaskedStruct::L2), 8u);
    EXPECT_EQ(m.wayCount(MaskedStruct::L1Tlb), 4u);
    EXPECT_EQ(m.wayCount(MaskedStruct::L2Tlb), 8u);
}

TEST(HarvestMask, FiveBytesExactly)
{
    // 12+8+8+4+8 = 40 bits = 5 B (§6.8).
    EXPECT_EQ(HarvestMask::storageBytes(), 5u);
}

TEST(HarvestMask, SetMaskClampsToWayCount)
{
    HarvestMask m;
    m.setMask(MaskedStruct::L1Tlb, 0xFFFF);
    EXPECT_EQ(m.mask(MaskedStruct::L1Tlb), 0xFu);
}

TEST(HarvestMask, HalfFractionMatchesTable1)
{
    HarvestMask m;
    m.setFraction(0.5); // Table 1: harvest region = 50% of ways
    EXPECT_EQ(m.mask(MaskedStruct::L1D), 0x3Fu);  // 6 of 12
    EXPECT_EQ(m.mask(MaskedStruct::L1I), 0xFu);   // 4 of 8
    EXPECT_EQ(m.mask(MaskedStruct::L2), 0xFu);    // 4 of 8
    EXPECT_EQ(m.mask(MaskedStruct::L1Tlb), 0x3u); // 2 of 4
    EXPECT_EQ(m.mask(MaskedStruct::L2Tlb), 0xFu); // 4 of 8
}

TEST(HarvestMask, FractionKeepsBothRegionsNonEmpty)
{
    HarvestMask m;
    m.setFraction(0.001);
    for (unsigned i = 0; i < kNumMaskedStructs; ++i) {
        const auto s = static_cast<MaskedStruct>(i);
        EXPECT_NE(m.mask(s), 0u); // at least one harvest way
    }
    m.setFraction(0.999);
    for (unsigned i = 0; i < kNumMaskedStructs; ++i) {
        const auto s = static_cast<MaskedStruct>(i);
        const hh::cache::WayMask full =
            (hh::cache::WayMask{1} << m.wayCount(s)) - 1;
        EXPECT_NE(m.mask(s), full); // at least one non-harvest way
    }
}

TEST(HarvestMask, PackUnpackKnownPattern)
{
    HarvestMask m;
    m.setMask(MaskedStruct::L1D, 0b0000'0011'1111);
    m.setMask(MaskedStruct::L1I, 0b0000'1111);
    m.setMask(MaskedStruct::L2, 0b0000'1111);
    m.setMask(MaskedStruct::L1Tlb, 0b0011);
    m.setMask(MaskedStruct::L2Tlb, 0b0000'1111);
    const auto bytes = m.pack();
    HarvestMask n;
    n.unpack(bytes);
    for (unsigned i = 0; i < kNumMaskedStructs; ++i) {
        const auto s = static_cast<MaskedStruct>(i);
        EXPECT_EQ(n.mask(s), m.mask(s));
    }
}

TEST(HarvestMask, InvalidWayCountsFatal)
{
    HarvestMask::StructureWays w;
    w.ways = {0, 8, 8, 4, 8};
    EXPECT_THROW(HarvestMask{w}, std::runtime_error);
    w.ways = {17, 8, 8, 4, 8};
    EXPECT_THROW(HarvestMask{w}, std::runtime_error);
    w.ways = {16, 16, 16, 16, 16}; // 80 bits > 40
    EXPECT_THROW(HarvestMask{w}, std::runtime_error);
}

/** Property: pack/unpack round-trips arbitrary masks. */
class MaskRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MaskRoundTrip, Exact)
{
    hh::sim::Rng rng(GetParam(), 5);
    HarvestMask m;
    for (unsigned i = 0; i < kNumMaskedStructs; ++i) {
        m.setMask(static_cast<MaskedStruct>(i),
                  rng.next() & 0xFFFF);
    }
    HarvestMask n;
    n.unpack(m.pack());
    for (unsigned i = 0; i < kNumMaskedStructs; ++i) {
        const auto s = static_cast<MaskedStruct>(i);
        EXPECT_EQ(n.mask(s), m.mask(s));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 16));
