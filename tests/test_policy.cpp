/**
 * @file
 * Harvest-policy subsystem tests (PR 8): the StaticPolicy A/B
 * differential against the legacy inlined knob reads, per-policy unit
 * behavior (hysteresis bands, critical-aware clustering, bandit
 * seeded determinism), the conformance contract (byte-identical
 * results and telemetry JSONL across worker counts and checkpoint
 * save/load/resume for every policy), spec-level validation of the
 * policy keys and degenerate harvest-way fractions, and the
 * ObservationView epoch-boundary edges the policy tick relies on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/checkpoint.h"
#include "cluster/experiment.h"
#include "cluster/telemetry_hub.h"
#include "exp/spec.h"
#include "policy/policies.h"
#include "snapshot/archive.h"
#include "stats/observation_view.h"

using namespace hh::cluster;
using namespace hh::policy;
using hh::stats::ObservationRow;
using hh::stats::ObservationView;
using hh::stats::ServerCounters;
using hh::stats::VmFeatures;

namespace {

/** Reduced-scale cluster config running the given harvest policy. */
SystemConfig
policyConfig(const std::string &policy)
{
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 40;
    cfg.accessSampling = 32;
    cfg.policy = policy;
    cfg.telemetryEnabled = true;
    return cfg;
}

/** Build the hub over a run's per-server payloads. */
TelemetryHub
hubFor(const SystemConfig &cfg, ClusterResults res)
{
    TelemetryHub hub(cfg);
    for (auto &t : res.serverTelemetry)
        hub.addServer(std::move(t));
    return hub;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** A PolicyConfig for direct policy-object unit tests. */
PolicyConfig
unitConfig(const std::string &kind, std::uint32_t vmCount,
           std::uint32_t harvestVm)
{
    PolicyConfig pc;
    pc.kind = kind;
    pc.vmCount = vmCount;
    pc.harvestVm = harvestVm;
    return pc;
}

/** One observation row with the given per-VM feature values. */
ObservationRow
rowWith(const std::vector<VmFeatures> &vms, std::uint64_t epoch = 1)
{
    ObservationRow row;
    row.epoch = epoch;
    row.t = epoch * 1000;
    row.vms = vms;
    return row;
}

VmFeatures
vmUtil(std::uint32_t vm, double util)
{
    VmFeatures f;
    f.vm = vm;
    f.coreUtil = util;
    return f;
}

VmFeatures
vmMpki(std::uint32_t vm, double mpki, double occupancy)
{
    VmFeatures f;
    f.vm = vm;
    f.mpki = mpki;
    f.cacheOccupancy = occupancy;
    return f;
}

} // namespace

// ----------------------------------------------------------- factory

TEST(PolicyFactory, KnownNamesConstructLegacyIsNull)
{
    for (const std::string &name : harvestPolicyNames()) {
        EXPECT_TRUE(knownHarvestPolicy(name)) << name;
        std::string err;
        auto p = makeHarvestPolicy(unitConfig(name, 9, 8), &err);
        EXPECT_TRUE(err.empty()) << err;
        if (name == "legacy") {
            EXPECT_EQ(p, nullptr);
        } else {
            ASSERT_NE(p, nullptr) << name;
            EXPECT_EQ(p->name(), name);
        }
    }
    EXPECT_FALSE(knownHarvestPolicy("nonsense"));
    std::string err;
    EXPECT_EQ(makeHarvestPolicy(unitConfig("nonsense", 9, 8), &err),
              nullptr);
    EXPECT_NE(err.find("unknown harvest policy"), std::string::npos)
        << err;
}

TEST(PolicyFactory, StaticDecisionFreezesTheConfiguredKnobs)
{
    PolicyConfig pc = unitConfig("static", 3, 2);
    pc.harvestOnBlock = true;
    pc.adaptiveHarvest = true;
    pc.hwEmergencyBuffer = 2;
    pc.harvestWayFraction = 0.4;
    auto p = makeHarvestPolicy(pc);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(p->wantsEpochTick());
    const VmDecision &d = p->decision(0);
    EXPECT_TRUE(d.lendAllowed);
    EXPECT_EQ(d.blockMode, BlockHarvestMode::AdaptiveEwma);
    EXPECT_EQ(d.emergencyBuffer, 2u);
    EXPECT_DOUBLE_EQ(d.harvestWayFraction, 0.4);
    // Out-of-range ids (ghost VMs) fall back to the static decision.
    EXPECT_EQ(p->decision(1000).blockMode,
              BlockHarvestMode::AdaptiveEwma);

    pc.harvestOnBlock = false;
    auto never = makeHarvestPolicy(pc);
    EXPECT_EQ(never->decision(0).blockMode, BlockHarvestMode::Never);
}

// -------------------------------------------------------- hysteresis

TEST(HysteresisPolicyTest, ThresholdsAndStickyBand)
{
    PolicyConfig pc = unitConfig("hysteresis", 3, 2);
    pc.lendUtil = 0.35;
    pc.holdUtil = 0.75;
    pc.harvestWayFraction = 0.5;
    pc.ewmaAlpha = 0.5;
    HysteresisPolicy p(pc);

    // First row seeds the EWMA directly: idle VM 0, busy VM 1.
    p.observe(rowWith({vmUtil(0, 0.1), vmUtil(1, 0.95)}));
    EXPECT_DOUBLE_EQ(p.ewmaUtil(0), 0.1);
    EXPECT_TRUE(p.decision(0).lendAllowed);
    EXPECT_EQ(p.decision(0).emergencyBuffer, 0u);
    EXPECT_DOUBLE_EQ(p.decision(0).harvestWayFraction, 0.75);
    EXPECT_GE(p.decision(1).emergencyBuffer, 1u);
    EXPECT_DOUBLE_EQ(p.decision(1).harvestWayFraction, 0.25);

    // Mid-band utilization: both decisions stick (hysteresis).
    p.observe(rowWith({vmUtil(0, 0.5), vmUtil(1, 0.5)}, 2));
    EXPECT_EQ(p.decision(0).emergencyBuffer, 0u);
    EXPECT_DOUBLE_EQ(p.decision(0).harvestWayFraction, 0.75);
    EXPECT_GE(p.decision(1).emergencyBuffer, 1u);
    EXPECT_DOUBLE_EQ(p.decision(1).harvestWayFraction, 0.25);

    // Sustained reversal flips both once the EWMA crosses.
    for (std::uint64_t e = 3; e < 10; ++e)
        p.observe(rowWith({vmUtil(0, 1.0), vmUtil(1, 0.0)}, e));
    EXPECT_GE(p.decision(0).emergencyBuffer, 1u);
    EXPECT_EQ(p.decision(1).emergencyBuffer, 0u);
}

TEST(HysteresisPolicyTest, DefaultHoldUtilDisarmsTheGuard)
{
    // Bound-core utilization saturates near 1 under the paper's load,
    // so the default holdUtil=1.0 never arms the guard (the EWMA is
    // capped at 1.0 and the comparison is strict).
    PolicyConfig pc = unitConfig("hysteresis", 2, 1);
    HysteresisPolicy p(pc);
    for (std::uint64_t e = 1; e < 20; ++e)
        p.observe(rowWith({vmUtil(0, 1.0)}, e));
    EXPECT_EQ(p.decision(0).emergencyBuffer,
              pc.hwEmergencyBuffer);
}

// ---------------------------------------------------- critical-aware

TEST(CriticalAwarePolicyTest, ClustersRankAndWayDistribution)
{
    PolicyConfig pc = unitConfig("critical", 4, 3);
    pc.clusters = 2;
    pc.harvestWayFraction = 0.5;
    CriticalAwarePolicy p(pc);

    // VM 0 thrashes (high MPKI), VMs 1-2 are cache-friendly.
    for (std::uint64_t e = 1; e < 4; ++e) {
        p.observe(rowWith({vmMpki(0, 50.0, 0.9), vmMpki(1, 1.0, 0.2),
                           vmMpki(2, 2.0, 0.3)},
                          e));
    }
    EXPECT_EQ(p.clusterOf(0), 0u); // most critical rank
    EXPECT_EQ(p.clusterOf(1), 1u);
    EXPECT_EQ(p.clusterOf(2), 1u);
    // The critical cluster holds a burst guard and donates the
    // narrowest harvest region; the friendly cluster donates widest.
    EXPECT_GE(p.decision(0).emergencyBuffer, 1u);
    EXPECT_EQ(p.decision(1).emergencyBuffer, pc.hwEmergencyBuffer);
    EXPECT_LT(p.decision(0).harvestWayFraction,
              p.decision(1).harvestWayFraction);
}

// ------------------------------------------------------------ bandit

TEST(BanditPolicyTest, SameSeedSameArmSequence)
{
    PolicyConfig pc = unitConfig("bandit", 3, 2);
    pc.epsilon = 1.0; // pure exploration: the sequence is the stream
    const auto run = [&pc](std::uint64_t seed) {
        pc.seed = seed;
        BanditPolicy p(pc);
        for (std::uint64_t e = 1; e <= 64; ++e) {
            ObservationRow row = rowWith({}, e);
            row.harvestedCyclesDelta = 3'000'000 * e;
            row.batchLoanedDelta = 10 * e;
            p.observe(row);
        }
        return p.armHistory();
    };
    const auto a = run(42);
    EXPECT_EQ(a, run(42));
    EXPECT_NE(a, run(43));
    ASSERT_EQ(a.size(), 64u);
    // Pure exploration over 64 epochs visits more than one arm.
    bool varied = false;
    for (const auto arm : a)
        varied = varied || arm != a[0];
    EXPECT_TRUE(varied);
}

TEST(BanditPolicyTest, DefaultArmReproducesTheConfiguredKnobs)
{
    PolicyConfig pc = unitConfig("bandit", 3, 2);
    pc.epsilon = 0.0; // greedy: stays on the initial "default" arm
    pc.hwEmergencyBuffer = 3;
    pc.harvestWayFraction = 0.9; // outside the delta-arm clamp range
    pc.adaptiveHarvest = true;
    BanditPolicy p(pc);
    const VmDecision &d = p.decision(0);
    EXPECT_TRUE(d.lendAllowed);
    EXPECT_EQ(d.blockMode, BlockHarvestMode::AdaptiveEwma);
    EXPECT_EQ(d.emergencyBuffer, 3u);
    EXPECT_DOUBLE_EQ(d.harvestWayFraction, 0.9);
}

// ------------------------------------------- legacy/static differential

TEST(PolicyDifferential, StaticIsBitIdenticalToLegacyInlinedPath)
{
    // The tentpole regression guard: extracting the knob reads into
    // StaticPolicy must not change a single byte of any run,
    // including the adaptive-EWMA block mode and a nonzero emergency
    // buffer, which exercise every read the extraction moved.
    SystemConfig base = makeSystem(SystemKind::HardHarvestBlock);
    base.requestsPerVm = 40;
    base.accessSampling = 16;

    SystemConfig adaptive = base;
    adaptive.adaptiveHarvest = true;
    SystemConfig buffered = base;
    buffered.hwEmergencyBuffer = 2;

    const struct
    {
        const char *label;
        const SystemConfig &cfg;
    } cases[] = {{"base", base},
                 {"adaptiveHarvest", adaptive},
                 {"emergencyBuffer", buffered}};
    for (const auto &c : cases) {
        SCOPED_TRACE(c.label);
        SystemConfig legacy = c.cfg;
        legacy.policy = "legacy";
        SystemConfig extracted = c.cfg;
        extracted.policy = "static";
        const ClusterResults l = runCluster(legacy, 2, 5, 2);
        const ClusterResults s = runCluster(extracted, 2, 5, 2);
        EXPECT_EQ(l.serialized(), s.serialized());
    }
}

// ----------------------------------------------- conformance contract

class PolicyConformance
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PolicyConformance, WorkerCountsAndResumeAreByteIdentical)
{
    const SystemConfig cfg = policyConfig(GetParam());
    const unsigned servers = 2;
    const std::uint64_t seed = 5;

    const ClusterResults ref = runCluster(cfg, servers, seed, 1);
    const std::string want = ref.serialized();
    const std::string want_jsonl = hubFor(cfg, ref).jsonl();
    for (const unsigned workers : {4u, 8u}) {
        ClusterResults res = runCluster(cfg, servers, seed, workers);
        EXPECT_EQ(res.serialized(), want) << "workers=" << workers;
        EXPECT_EQ(hubFor(cfg, std::move(res)).jsonl(), want_jsonl)
            << "workers=" << workers;
    }

    // Save mid-run (past several policy epochs), load, resume: the
    // policy state rides snapshot section 0x16, so the resumed run
    // must reproduce the uninterrupted one byte-for-byte.
    const std::string path =
        tmpPath(std::string("hh_policy_") + GetParam() + ".hhcp");
    std::string err;
    ASSERT_TRUE(checkpointClusterAt(cfg, servers, seed, 2,
                                    hh::sim::msToCycles(2.0), path,
                                    &err))
        << err;
    auto resumed = resumeCluster(path, cfg, 4, &err);
    ASSERT_TRUE(resumed.has_value()) << err;
    EXPECT_EQ(resumed->serialized(), want);
    EXPECT_EQ(hubFor(cfg, *std::move(resumed)).jsonl(), want_jsonl);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyConformance,
                         ::testing::Values("static", "hysteresis",
                                           "critical", "bandit"));

TEST(PolicyCheckpoint, MismatchedPolicyRejectsCheckpoint)
{
    // The config fingerprint covers the policy selector and its
    // parameters, so resuming under a different policy is refused up
    // front instead of desynchronizing section 0x16 mid-load.
    const SystemConfig cfg = policyConfig("hysteresis");
    const std::string path = tmpPath("hh_policy_mismatch.hhcp");
    std::string err;
    ASSERT_TRUE(checkpointClusterAt(cfg, 2, 5, 2,
                                    hh::sim::msToCycles(2.0), path,
                                    &err))
        << err;
    SystemConfig other = cfg;
    other.policy = "static";
    EXPECT_FALSE(resumeCluster(path, other, 2, &err).has_value());
    EXPECT_NE(err.find("different SystemConfig"), std::string::npos)
        << err;
    SystemConfig tuned = cfg;
    tuned.policyLendUtil = 0.5;
    EXPECT_FALSE(resumeCluster(path, tuned, 2, &err).has_value());
    EXPECT_NE(err.find("different SystemConfig"), std::string::npos)
        << err;
}

// ------------------------------------------------- spec validation

TEST(PolicySpec, PolicyKeysParseIntoTheConfig)
{
    hh::exp::ExperimentSpec spec;
    std::string err;
    ASSERT_TRUE(hh::exp::parseSpec("name = p\n"
                                   "policy = hysteresis\n"
                                   "policyPeriodMs = 0.5\n"
                                   "policyLendUtil = 0.2\n"
                                   "policyHoldUtil = 0.8\n"
                                   "policyEwmaAlpha = 0.4\n"
                                   "policyClusters = 3\n"
                                   "policyEpsilon = 0.2\n"
                                   "policyP99TargetMs = 5\n"
                                   "policyP99Penalty = 2\n",
                                   &spec, &err))
        << err;
    const auto pts = spec.points();
    ASSERT_FALSE(pts.empty());
    const SystemConfig &cfg = pts[0].cfg;
    EXPECT_EQ(cfg.policy, "hysteresis");
    EXPECT_EQ(cfg.policyPeriod, hh::sim::msToCycles(0.5));
    EXPECT_DOUBLE_EQ(cfg.policyLendUtil, 0.2);
    EXPECT_DOUBLE_EQ(cfg.policyHoldUtil, 0.8);
    EXPECT_DOUBLE_EQ(cfg.policyEwmaAlpha, 0.4);
    EXPECT_EQ(cfg.policyClusters, 3u);
    EXPECT_DOUBLE_EQ(cfg.policyEpsilon, 0.2);
}

TEST(PolicySpec, BadPolicyValuesFailWithLineNumbers)
{
    hh::exp::ExperimentSpec spec;
    std::string err;
    EXPECT_FALSE(
        hh::exp::parseSpec("name = p\npolicy = nonsense\n", &spec,
                           &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("unknown harvest policy"), std::string::npos)
        << err;

    EXPECT_FALSE(hh::exp::parseSpec("policyEpsilon = 1.5\n", &spec,
                                    &err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
    EXPECT_FALSE(hh::exp::parseSpec("policyHoldUtil = -0.1\n", &spec,
                                    &err));
    EXPECT_NE(err.find("[0, 1]"), std::string::npos) << err;
    EXPECT_FALSE(hh::exp::parseSpec("policyPeriodMs = 0\n", &spec,
                                    &err));
}

TEST(PolicySpec, DegenerateHarvestFractionsAreRejected)
{
    hh::exp::ExperimentSpec spec;
    std::string err;
    // 0.05 rounds to zero harvest ways in every masked structure.
    EXPECT_FALSE(hh::exp::parseSpec(
        "name = p\nharvestWayFraction = 0.05\n", &spec, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("0-way"), std::string::npos) << err;

    // 0.99 rounds to all 12 L1D ways: no private region left.
    EXPECT_FALSE(hh::exp::parseSpec("harvestWayFraction = 0.99\n",
                                    &spec, &err));
    EXPECT_NE(err.find("all-way"), std::string::npos) << err;

    // 0.75 is fine at full way scaling but degenerates in the 2-way
    // scaled L1TLB once waysFraction halves the structures.
    EXPECT_TRUE(hh::exp::parseSpec("harvestWayFraction = 0.75\n",
                                   &spec, &err))
        << err;
    EXPECT_FALSE(hh::exp::parseSpec(
        "harvestWayFraction = 0.75\nwaysFraction = 0.5\n", &spec,
        &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("at this waysFraction"), std::string::npos)
        << err;

    // Sweep axes are validated point by point too.
    EXPECT_FALSE(hh::exp::parseSpec(
        "sweep.harvestWayFraction = 0.25 0.05\n", &spec, &err));
}

// ------------------------------------ ObservationView epoch edges

TEST(ObservationViewEdges, RecordAtTimeZeroBecomesTheBaseline)
{
    // A first record at t=0 (policy/telemetry start colliding with a
    // zero-length first epoch, e.g. stop-at-start or resume taken
    // exactly at a tick) must not emit a bogus zero-length row; it
    // becomes the explicit baseline instead.
    ObservationView view;
    ServerCounters cum;
    cum.t = 0;
    cum.vms.resize(1);
    cum.vms[0].busyCycles = 300;
    cum.vms[0].coresBound = 1;
    cum.batchLoaned = 4;
    view.record(cum);
    EXPECT_TRUE(view.rows().empty());
    EXPECT_EQ(view.epochs(), 0u);

    // The next tick diffs against that baseline, not against zero.
    cum.t = 1000;
    cum.vms[0].busyCycles = 800;
    cum.batchLoaned = 7;
    view.record(cum);
    ASSERT_EQ(view.rows().size(), 1u);
    EXPECT_DOUBLE_EQ(view.rows()[0].vms[0].coreUtil, 0.5);
    EXPECT_EQ(view.rows()[0].batchLoanedDelta, 3u);
}

TEST(ObservationViewEdges, DrainTailCollidingWithTickDeduplicates)
{
    ObservationView view;
    ServerCounters cum;
    cum.t = 1000;
    cum.vms.resize(1);
    cum.vms[0].busyCycles = 500;
    cum.vms[0].coresBound = 1;
    view.record(cum);
    view.record(cum); // final-row call landing exactly on the tick
    ASSERT_EQ(view.rows().size(), 1u);
    EXPECT_EQ(view.epochs(), 1u);

    // A later record still diffs against the (unchanged) baseline.
    cum.t = 2000;
    cum.vms[0].busyCycles = 700;
    view.record(cum);
    ASSERT_EQ(view.rows().size(), 2u);
    EXPECT_DOUBLE_EQ(view.rows()[1].vms[0].coreUtil, 0.2);
}

TEST(ObservationViewEdges, BaselineRoundTripsThroughSnapshot)
{
    // Resume-before-first-tick: a view whose only state is the t=0
    // baseline must survive a save/load and then produce the same
    // first row as the uninterrupted view.
    ObservationView view;
    ServerCounters cum;
    cum.t = 0;
    cum.vms.resize(1);
    cum.vms[0].busyCycles = 100;
    cum.vms[0].coresBound = 1;
    view.record(cum);

    auto save = hh::snap::Archive::forSave();
    view.serialize(save);
    const auto blob = save.take();
    ObservationView loaded;
    auto load = hh::snap::Archive::forLoad(blob);
    loaded.serialize(load);
    ASSERT_TRUE(load.ok()) << load.error();

    cum.t = 500;
    cum.vms[0].busyCycles = 400;
    view.record(cum);
    loaded.record(cum);
    ASSERT_EQ(view.rows().size(), 1u);
    ASSERT_EQ(loaded.rows().size(), 1u);
    EXPECT_DOUBLE_EQ(loaded.rows()[0].vms[0].coreUtil,
                     view.rows()[0].vms[0].coreUtil);
}
