/**
 * @file
 * Unit tests for the windowed-utilization DRAM model.
 */

#include <gtest/gtest.h>

#include "mem/dram.h"

using hh::mem::Dram;
using hh::mem::DramConfig;
using hh::sim::Cycles;

TEST(Dram, IdleAccessPaysBaseLatency)
{
    Dram d;
    EXPECT_EQ(d.access(0, 0), d.config().baseLatency);
}

TEST(Dram, UtilizationRisesWithTraffic)
{
    DramConfig cfg;
    cfg.window = 1000;
    cfg.controllers = 1;
    cfg.servicePerAccess = 10;
    Dram d(cfg);
    EXPECT_DOUBLE_EQ(d.utilization(0), 0.0);
    for (int i = 0; i < 50; ++i)
        d.access(100, 0);
    EXPECT_GT(d.utilization(100), 0.2);
}

TEST(Dram, QueueDelayGrowsWithUtilization)
{
    DramConfig cfg;
    cfg.window = 1000;
    cfg.controllers = 1;
    cfg.servicePerAccess = 10;
    Dram d(cfg);
    const Cycles idle = d.access(0, 0);
    for (int i = 0; i < 100; ++i)
        d.access(10, 0);
    const Cycles loaded = d.access(20, 0);
    EXPECT_GT(loaded, idle);
}

TEST(Dram, UtilizationCapped)
{
    DramConfig cfg;
    cfg.window = 100;
    cfg.controllers = 1;
    cfg.servicePerAccess = 10;
    Dram d(cfg);
    for (int i = 0; i < 10000; ++i)
        d.access(50, 0);
    EXPECT_LE(d.utilization(50), cfg.maxRho);
    // Latency stays finite even at saturation.
    EXPECT_LT(d.access(50, 0), cfg.baseLatency + 200);
}

TEST(Dram, TrafficAgesOut)
{
    DramConfig cfg;
    cfg.window = 1000;
    cfg.controllers = 1;
    cfg.servicePerAccess = 10;
    Dram d(cfg);
    for (int i = 0; i < 100; ++i)
        d.access(0, 0);
    EXPECT_GT(d.utilization(500), 0.0);
    // Many windows later the burst no longer counts.
    EXPECT_DOUBLE_EQ(d.utilization(100'000), 0.0);
    EXPECT_EQ(d.access(100'000, 0), cfg.baseLatency);
}

TEST(Dram, MoreControllersLowerUtilization)
{
    DramConfig one;
    one.window = 1000;
    one.controllers = 1;
    DramConfig four = one;
    four.controllers = 4;
    Dram d1(one);
    Dram d4(four);
    for (int i = 0; i < 100; ++i) {
        d1.access(10, 0);
        d4.access(10, 0);
    }
    EXPECT_GT(d1.utilization(10), d4.utilization(10));
}

TEST(Dram, WeightScalesAccounting)
{
    DramConfig cfg;
    cfg.window = 1000;
    cfg.controllers = 1;
    Dram plain(cfg);
    Dram weighted(cfg);
    for (int i = 0; i < 10; ++i) {
        plain.access(10, 0, 1);
        weighted.access(10, 0, 8);
    }
    EXPECT_GT(weighted.utilization(10), plain.utilization(10));
}

TEST(Dram, StatsTrackAccessesAndDelay)
{
    Dram d;
    d.access(0, 0);
    d.access(0, 1);
    EXPECT_EQ(d.accesses(), 2u);
    EXPECT_GE(d.avgQueueDelay(), 0.0);
    d.resetStats();
    EXPECT_EQ(d.accesses(), 0u);
}

TEST(Dram, InvalidConfigFatal)
{
    DramConfig cfg;
    cfg.controllers = 0;
    EXPECT_THROW(Dram{cfg}, std::runtime_error);
    DramConfig cfg2;
    cfg2.window = 0;
    EXPECT_THROW(Dram{cfg2}, std::runtime_error);
}
