/**
 * @file
 * ResultLedger durability tests: header creation, append/lookup,
 * duplicate rejection, reopen recovery, and the crash path — a JSONL
 * file truncated mid-record recovers every complete row, drops the
 * partial tail, and after re-appending the missing rows is
 * byte-identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "exp/ledger.h"

using hh::exp::JobKey;
using hh::exp::jsonEscape;
using hh::exp::ledgerChecksum;
using hh::exp::parseJsonLine;
using hh::exp::ResultLedger;

namespace {

std::string
tmpPath(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

ResultLedger::Meta
testMeta()
{
    ResultLedger::Meta m;
    m.command = "repro_all --scale quick \"quoted\"";
    m.hardwareThreads = 8;
    m.poolWorkers = 6;
    m.singleCoreHost = false;
    return m;
}

JobKey
rowKey(unsigned i)
{
    JobKey k;
    k.kind = "server";
    k.fingerprint = "fp-" + std::to_string(i);
    k.app = "BFS";
    k.seed = i;
    return k;
}

std::string
rowPayload(unsigned i)
{
    return "payload line one\nline two for row " + std::to_string(i);
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(ExpLedger, CreateWritesParsableHeader)
{
    const std::string path = tmpPath("hh_ledger_header.jsonl");
    std::string err;
    const auto ledger = ResultLedger::open(path, testMeta(), &err);
    ASSERT_NE(ledger, nullptr) << err;
    EXPECT_EQ(ledger->rows(), 0u);
    EXPECT_EQ(ledger->recoveredRows(), 0u);
    EXPECT_EQ(ledger->droppedRows(), 0u);

    const std::string contents = readAll(path);
    const auto nl = contents.find('\n');
    ASSERT_NE(nl, std::string::npos);
    std::map<std::string, std::string> obj;
    ASSERT_TRUE(parseJsonLine(contents.substr(0, nl), &obj));
    EXPECT_EQ(obj["magic"], "HHRL");
    EXPECT_EQ(obj["version"], "1");
    EXPECT_EQ(obj["command"], testMeta().command);
    EXPECT_EQ(obj["hardware_threads"], "8");
    EXPECT_EQ(obj["pool_workers"], "6");
    EXPECT_EQ(obj["single_core_host"], "false");
}

TEST(ExpLedger, AppendLookupAndDuplicateRejection)
{
    const std::string path = tmpPath("hh_ledger_append.jsonl");
    std::string err;
    const auto ledger = ResultLedger::open(path, testMeta(), &err);
    ASSERT_NE(ledger, nullptr) << err;

    ASSERT_TRUE(ledger->append(rowKey(1), rowPayload(1), &err)) << err;
    EXPECT_EQ(ledger->rows(), 1u);

    std::string payload;
    ASSERT_TRUE(ledger->lookup(rowKey(1), &payload));
    EXPECT_EQ(payload, rowPayload(1));
    EXPECT_FALSE(ledger->lookup(rowKey(2), &payload));

    EXPECT_FALSE(ledger->append(rowKey(1), rowPayload(1), &err));
    EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
    EXPECT_EQ(ledger->rows(), 1u);

    // Every row re-stamps the host fields from the header meta.
    const std::string contents = readAll(path);
    const auto nl = contents.find('\n');
    std::map<std::string, std::string> obj;
    ASSERT_TRUE(parseJsonLine(
        contents.substr(nl + 1,
                        contents.find('\n', nl + 1) - nl - 1),
        &obj));
    EXPECT_EQ(obj["kind"], "server");
    EXPECT_EQ(obj["fp"], "fp-1");
    EXPECT_EQ(obj["seed"], "1");
    EXPECT_EQ(obj["hardware_threads"], "8");
    EXPECT_EQ(obj["pool_workers"], "6");
    EXPECT_EQ(obj["payload"], rowPayload(1));
}

TEST(ExpLedger, ReopenRecoversRowsAndOriginalMeta)
{
    const std::string path = tmpPath("hh_ledger_reopen.jsonl");
    std::string err;
    {
        const auto ledger = ResultLedger::open(path, testMeta(), &err);
        ASSERT_NE(ledger, nullptr) << err;
        for (unsigned i = 1; i <= 3; ++i)
            ASSERT_TRUE(ledger->append(rowKey(i), rowPayload(i), &err))
                << err;
    }

    // Reopen with *different* meta: the original header must win.
    ResultLedger::Meta other;
    other.command = "something else";
    other.hardwareThreads = 1;
    other.poolWorkers = 1;
    other.singleCoreHost = true;
    const auto reopened = ResultLedger::open(path, other, &err);
    ASSERT_NE(reopened, nullptr) << err;
    EXPECT_EQ(reopened->recoveredRows(), 3u);
    EXPECT_EQ(reopened->droppedRows(), 0u);
    EXPECT_EQ(reopened->rows(), 3u);
    EXPECT_EQ(reopened->meta().command, testMeta().command);
    EXPECT_EQ(reopened->meta().hardwareThreads, 8u);

    std::string payload;
    for (unsigned i = 1; i <= 3; ++i) {
        ASSERT_TRUE(reopened->lookup(rowKey(i), &payload));
        EXPECT_EQ(payload, rowPayload(i));
    }
}

TEST(ExpLedger, TruncatedTailRecoversAndResumesByteIdentical)
{
    const std::string path = tmpPath("hh_ledger_crash.jsonl");
    std::string err;
    {
        const auto ledger = ResultLedger::open(path, testMeta(), &err);
        ASSERT_NE(ledger, nullptr) << err;
        for (unsigned i = 1; i <= 5; ++i)
            ASSERT_TRUE(ledger->append(rowKey(i), rowPayload(i), &err))
                << err;
    }
    const std::string full = readAll(path);
    ASSERT_FALSE(full.empty());

    // Simulate a crash mid-append: chop the last row in half.
    const auto last_nl = full.rfind('\n', full.size() - 2);
    ASSERT_NE(last_nl, std::string::npos);
    const std::size_t cut =
        last_nl + 1 + (full.size() - last_nl - 1) / 2;
    writeAll(path, full.substr(0, cut));

    {
        const auto resumed = ResultLedger::open(path, testMeta(), &err);
        ASSERT_NE(resumed, nullptr) << err;
        EXPECT_EQ(resumed->recoveredRows(), 4u);
        EXPECT_EQ(resumed->droppedRows(), 1u);
        std::string payload;
        EXPECT_FALSE(resumed->lookup(rowKey(5), &payload));

        // Re-running only the missing job reproduces the exact file.
        ASSERT_TRUE(resumed->append(rowKey(5), rowPayload(5), &err))
            << err;
    }
    EXPECT_EQ(readAll(path), full);
}

TEST(ExpLedger, CorruptRowInvalidatesEverythingAfterIt)
{
    const std::string path = tmpPath("hh_ledger_corrupt.jsonl");
    std::string err;
    {
        const auto ledger = ResultLedger::open(path, testMeta(), &err);
        ASSERT_NE(ledger, nullptr) << err;
        for (unsigned i = 1; i <= 4; ++i)
            ASSERT_TRUE(ledger->append(rowKey(i), rowPayload(i), &err))
                << err;
    }
    std::string bytes = readAll(path);

    // Flip a payload byte inside row 2 (second line after the
    // header): the row still parses as JSON but fails its CRC, so
    // recovery must stop there — rows 3 and 4 are untrusted.
    const auto header_end = bytes.find('\n');
    const auto row1_end = bytes.find('\n', header_end + 1);
    const auto row2_pos = bytes.find("payload", row1_end);
    ASSERT_NE(row2_pos, std::string::npos);
    bytes[row2_pos] = 'q';
    writeAll(path, bytes);

    const auto resumed = ResultLedger::open(path, testMeta(), &err);
    ASSERT_NE(resumed, nullptr) << err;
    EXPECT_EQ(resumed->recoveredRows(), 1u);
    EXPECT_EQ(resumed->droppedRows(), 1u);
    std::string payload;
    EXPECT_TRUE(resumed->lookup(rowKey(1), &payload));
    EXPECT_FALSE(resumed->lookup(rowKey(2), &payload));
    EXPECT_FALSE(resumed->lookup(rowKey(3), &payload));
}

TEST(ExpLedger, BadHeaderIsRejected)
{
    const std::string path = tmpPath("hh_ledger_badheader.jsonl");
    writeAll(path, "this is not a ledger\n");
    std::string err;
    EXPECT_EQ(ResultLedger::open(path, testMeta(), &err), nullptr);
    EXPECT_NE(err.find("header"), std::string::npos) << err;

    writeAll(path, "{\"magic\":\"XXXX\",\"version\":1}\n");
    err.clear();
    EXPECT_EQ(ResultLedger::open(path, testMeta(), &err), nullptr);
    EXPECT_NE(err.find("header"), std::string::npos) << err;
}

TEST(ExpLedger, JsonEscapeRoundTripsThroughParser)
{
    const std::string nasty =
        "quote \" backslash \\ newline \n tab \t unit \x1f done";
    std::map<std::string, std::string> obj;
    ASSERT_TRUE(parseJsonLine(
        "{\"k\":\"" + jsonEscape(nasty) + "\",\"n\":42,\"b\":true}",
        &obj));
    EXPECT_EQ(obj["k"], nasty);
    EXPECT_EQ(obj["n"], "42");
    EXPECT_EQ(obj["b"], "true");

    EXPECT_FALSE(parseJsonLine("not json", &obj));
    EXPECT_FALSE(parseJsonLine("{\"k\":}", &obj));
    EXPECT_FALSE(parseJsonLine("{\"k\":1} trailing", &obj));
}

TEST(ExpLedger, ChecksumMatchesFnv1aVectors)
{
    EXPECT_EQ(ledgerChecksum(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(ledgerChecksum("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_NE(ledgerChecksum("payload-1"), ledgerChecksum("payload-2"));
}

TEST(ExpLedger, JobKeyCanonicalSeparatesFields)
{
    JobKey a = rowKey(1);
    JobKey b = rowKey(1);
    b.fingerprint = "fp-";
    b.app = "1BFS"; // naive concatenation would collide with a
    EXPECT_NE(a.canonical(), b.canonical());
    EXPECT_EQ(a.canonical(), rowKey(1).canonical());
}
