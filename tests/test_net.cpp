/**
 * @file
 * Unit tests for the inter-server fabric and the NIC (DDIO path).
 */

#include <gtest/gtest.h>

#include "cache/set_assoc.h"
#include "net/fabric.h"
#include "net/nic.h"
#include "sim/simulator.h"

using namespace hh::net;
using hh::sim::Cycles;
using hh::sim::Simulator;

TEST(Fabric, RoundTripIsTwiceOneWay)
{
    Fabric f;
    EXPECT_EQ(f.roundTrip(256), 2 * f.oneWay(256));
}

TEST(Fabric, BaseRoundTripNearOneMicrosecond)
{
    Fabric f;
    const double us = hh::sim::cyclesToUs(f.roundTrip(0));
    EXPECT_NEAR(us, 1.0, 0.05);
}

TEST(Fabric, SerializationGrowsWithSize)
{
    Fabric f;
    EXPECT_GT(f.oneWay(1 << 20), f.oneWay(64));
}

TEST(Fabric, CustomConfig)
{
    FabricConfig cfg;
    cfg.roundTrip = 6000; // 2 us
    cfg.bytesPerCycle = 1.0;
    Fabric f(cfg);
    EXPECT_EQ(f.oneWay(100), 3000u + 100u);
}

TEST(Nic, DeliversAfterProcessingLatency)
{
    Simulator sim;
    Nic nic(sim, 300);
    Cycles delivered = 0;
    nic.setHandler([&](const Packet &) { delivered = sim.now(); });
    sim.schedule(1000, [&] {
        Packet p;
        p.dstVm = 3;
        nic.receive(p);
    });
    sim.run();
    EXPECT_EQ(delivered, 1300u);
    EXPECT_EQ(nic.packetsReceived(), 1u);
}

TEST(Nic, StampsArrivalTime)
{
    Simulator sim;
    Nic nic(sim, 10);
    Cycles arrival = 0;
    nic.setHandler([&](const Packet &p) { arrival = p.arrival; });
    sim.schedule(500, [&] { nic.receive(Packet{}); });
    sim.run();
    EXPECT_EQ(arrival, 500u);
}

TEST(Nic, NoHandlerPanics)
{
    Simulator sim;
    Nic nic(sim);
    EXPECT_THROW(nic.receive(Packet{}), std::logic_error);
}

TEST(Nic, DdioDepositsPayloadLines)
{
    Simulator sim;
    Nic nic(sim, 10);
    nic.setHandler([](const Packet &) {});
    hh::cache::SetAssocArray llc(
        hh::cache::Geometry{64, 8, 36},
        hh::cache::makePolicy(hh::cache::ReplKind::LRU));
    nic.setLlcLookup(
        [&](std::uint32_t vm) -> hh::cache::SetAssocArray * {
            return vm == 1 ? &llc : nullptr;
        });

    Packet p;
    p.dstVm = 1;
    p.payloadBytes = 512; // 8 lines
    nic.receive(p);
    EXPECT_EQ(nic.linesDeposited(), 8u);
    EXPECT_EQ(llc.validCount(), 8u);

    // Packets for VMs without a partition do not deposit.
    Packet q;
    q.dstVm = 2;
    nic.receive(q);
    EXPECT_EQ(nic.linesDeposited(), 8u);
    sim.run();
}

TEST(Nic, PartialLineRoundsUp)
{
    Simulator sim;
    Nic nic(sim, 10);
    nic.setHandler([](const Packet &) {});
    hh::cache::SetAssocArray llc(
        hh::cache::Geometry{64, 8, 36},
        hh::cache::makePolicy(hh::cache::ReplKind::LRU));
    nic.setLlcLookup([&](std::uint32_t) { return &llc; });
    Packet p;
    p.payloadBytes = 65; // 2 lines
    nic.receive(p);
    EXPECT_EQ(nic.linesDeposited(), 2u);
    sim.run();
}
