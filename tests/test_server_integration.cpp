/**
 * @file
 * Integration tests: full-server simulations at reduced scale.
 *
 * These exercise the complete request path (loadgen -> NIC -> queues
 * -> cores -> caches -> completion), harvesting, reclamation and the
 * statistics pipeline across all five system configurations.
 */

#include <gtest/gtest.h>

#include "cluster/experiment.h"

using namespace hh::cluster;

namespace {

SystemConfig
tinyConfig(SystemKind kind)
{
    SystemConfig cfg = makeSystem(kind);
    cfg.requestsPerVm = 60;
    cfg.accessSampling = 32;
    cfg.seed = 11;
    return cfg;
}

} // namespace

TEST(ServerIntegration, AllRequestsCompleteEverySystem)
{
    for (const auto kind :
         {SystemKind::NoHarvest, SystemKind::HarvestTerm,
          SystemKind::HarvestBlock, SystemKind::HardHarvestTerm,
          SystemKind::HardHarvestBlock}) {
        const auto cfg = tinyConfig(kind);
        const auto res = runServer(cfg, "BFS", 11);
        ASSERT_EQ(res.services.size(), 8u) << systemName(kind);
        for (const auto &s : res.services) {
            // warmup skips 10%: 54 measured completions per VM.
            EXPECT_EQ(s.count, 54u)
                << systemName(kind) << " " << s.name;
            EXPECT_GT(s.p50Ms, 0.0);
            EXPECT_GE(s.p99Ms, s.p50Ms);
        }
        EXPECT_GT(res.elapsedSec, 0.0);
    }
}

TEST(ServerIntegration, NoHarvestNeverMovesCores)
{
    const auto res = runServer(tinyConfig(SystemKind::NoHarvest),
                               "BFS", 11);
    EXPECT_EQ(res.coreLoans, 0u);
    EXPECT_EQ(res.coreReclaims, 0u);
}

TEST(ServerIntegration, HarvestingSystemsMoveCores)
{
    for (const auto kind :
         {SystemKind::HarvestTerm, SystemKind::HardHarvestBlock}) {
        const auto res = runServer(tinyConfig(kind), "BFS", 11);
        EXPECT_GT(res.coreLoans, 0u) << systemName(kind);
        EXPECT_GT(res.coreReclaims, 0u) << systemName(kind);
    }
}

TEST(ServerIntegration, HarvestingRaisesUtilization)
{
    const auto no =
        runServer(tinyConfig(SystemKind::NoHarvest), "BFS", 11);
    const auto hh =
        runServer(tinyConfig(SystemKind::HardHarvestBlock), "BFS", 11);
    EXPECT_GT(hh.avgBusyCores, no.avgBusyCores * 2);
    EXPECT_LE(hh.avgBusyCores, 36.0);
}

TEST(ServerIntegration, HarvestingRaisesBatchThroughput)
{
    const auto no =
        runServer(tinyConfig(SystemKind::NoHarvest), "CC", 11);
    const auto hh =
        runServer(tinyConfig(SystemKind::HardHarvestBlock), "CC", 11);
    EXPECT_GT(hh.batchThroughput, no.batchThroughput * 1.5);
}

TEST(ServerIntegration, DeterministicForSameSeed)
{
    const auto a =
        runServer(tinyConfig(SystemKind::HardHarvestBlock), "BFS", 42);
    const auto b =
        runServer(tinyConfig(SystemKind::HardHarvestBlock), "BFS", 42);
    for (std::size_t i = 0; i < a.services.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.services[i].p50Ms, b.services[i].p50Ms);
        EXPECT_DOUBLE_EQ(a.services[i].p99Ms, b.services[i].p99Ms);
    }
    EXPECT_EQ(a.batchTasksCompleted, b.batchTasksCompleted);
    EXPECT_EQ(a.coreLoans, b.coreLoans);
}

TEST(ServerIntegration, SeedChangesResults)
{
    const auto a =
        runServer(tinyConfig(SystemKind::NoHarvest), "BFS", 1);
    const auto b =
        runServer(tinyConfig(SystemKind::NoHarvest), "BFS", 2);
    EXPECT_NE(a.services[0].p50Ms, b.services[0].p50Ms);
}

TEST(ServerIntegration, BreakdownComponentsPopulated)
{
    const auto res = runServer(
        tinyConfig(SystemKind::HarvestBlock), "BFS", 11);
    double reassign = 0;
    double flush = 0;
    double exec = 0;
    for (const auto &s : res.services) {
        reassign += s.reassignMs;
        flush += s.flushMs;
        exec += s.execMs;
    }
    EXPECT_GT(exec, 0.0);
    // Software harvesting charges hypervisor + flush overheads.
    EXPECT_GT(reassign, 0.0);
    EXPECT_GT(flush, 0.0);
}

TEST(ServerIntegration, HardHarvestReassignOverheadTiny)
{
    const auto sw = runServer(
        tinyConfig(SystemKind::HarvestBlock), "BFS", 11);
    const auto hw = runServer(
        tinyConfig(SystemKind::HardHarvestBlock), "BFS", 11);
    double sw_reassign = 0;
    double hw_reassign = 0;
    for (std::size_t i = 0; i < sw.services.size(); ++i) {
        sw_reassign += sw.services[i].reassignMs;
        hw_reassign += hw.services[i].reassignMs;
    }
    EXPECT_LT(hw_reassign, sw_reassign / 10.0);
}

TEST(ServerIntegration, L2HitRateSane)
{
    const auto res =
        runServer(tinyConfig(SystemKind::NoHarvest), "BFS", 11);
    EXPECT_GT(res.primaryL2HitRate, 0.0);
    EXPECT_LE(res.primaryL2HitRate, 1.0);
}

namespace {

/** Mean execution component across services (isolates cache cost
 *  from queueing/arrival noise). */
double
meanExecMs(const ServerResults &res)
{
    double e = 0;
    for (const auto &s : res.services)
        e += s.execMs;
    return e / static_cast<double>(res.services.size());
}

} // namespace

TEST(ServerIntegration, InfiniteCachesAreFaster)
{
    auto cfg = tinyConfig(SystemKind::NoHarvest);
    cfg.accessSampling = 4; // preserve locality for this assertion
    const auto base = runServer(cfg, "BFS", 11);
    cfg.infiniteCaches = true;
    const auto inf = runServer(cfg, "BFS", 11);
    EXPECT_LT(meanExecMs(inf), meanExecMs(base) * 1.02);
}

TEST(ServerIntegration, SmallerCachesAreSlower)
{
    auto cfg = tinyConfig(SystemKind::NoHarvest);
    cfg.accessSampling = 4;
    cfg.waysFraction = 0.25;
    const auto small = runServer(cfg, "BFS", 11);
    cfg.waysFraction = 1.0;
    const auto full = runServer(cfg, "BFS", 11);
    EXPECT_GE(meanExecMs(small), meanExecMs(full) * 0.99);
}

TEST(ClusterExperiment, AggregatesAcrossServers)
{
    auto cfg = tinyConfig(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 40;
    const auto res = runCluster(cfg, 2, 11);
    ASSERT_EQ(res.services.size(), 8u);
    ASSERT_EQ(res.batchThroughput.size(), 2u);
    EXPECT_EQ(res.batchThroughput[0].first, "BFS");
    EXPECT_EQ(res.batchThroughput[1].first, "CC");
    EXPECT_GT(res.avgBusyCores, 0.0);
    for (const auto &s : res.services)
        EXPECT_EQ(s.count, 2u * 36u); // 2 servers x 36 measured
}

TEST(ClusterExperiment, ServerCountValidated)
{
    const auto cfg = tinyConfig(SystemKind::NoHarvest);
    EXPECT_THROW(runCluster(cfg, 0, 1), std::runtime_error);
    EXPECT_THROW(runCluster(cfg, 99, 1), std::runtime_error);
}

namespace {

/**
 * Sum of the primary cores' hierarchy access counters. Batch cores
 * (index >= primaryVms * coresPerPrimary; never lent back under
 * NoHarvest) are excluded: the batch replays accesses for as long
 * as the run lasts, so its totals are time-driven rather than
 * plan-driven and carry no conservation property to test.
 */
std::uint64_t
totalRequestAccesses(const ServerResults &res, unsigned primaryCores)
{
    std::uint64_t total = 0;
    for (const auto &s : res.metricsFinal) {
        const std::string &n = s.name;
        if (n.rfind("core", 0) == 0 && n.size() > 9 &&
            n.compare(n.size() - 9, 9, ".accesses") == 0 &&
            n.find('.') == n.size() - 9) { // core<N>.accesses only
            const unsigned core = static_cast<unsigned>(
                std::stoul(n.substr(4, n.size() - 13)));
            if (core < primaryCores)
                total += static_cast<std::uint64_t>(s.value);
        }
    }
    return total;
}

} // namespace

// Sampled replay must converge to the unsampled access totals.
// Round-to-nearest with a per-request residual carry telescopes:
// replayed * sampling = planned - final_carry, so each request's
// de-sampled error is at most sampling/2 accesses. The two runs do
// not share plans (the workload RNG stream interleaves plan and
// access draws, so changing the sampling rate shifts it), but each
// request's planned total n * max(1, memAccesses / n) is pinned to
// within n - 1 <= 8 accesses of memAccesses for every io-call draw
// n <= 9, so cross-run plan divergence adds at most 8 per request.
// The truncating replay this replaced lost the full remainder
// (mean sampling/2, worst sampling-1) per *segment*, which blows
// this per-request budget for any multi-segment plan.
TEST(ServerIntegration, SampledReplayTotalsConverge)
{
    auto cfg = tinyConfig(SystemKind::NoHarvest);
    cfg.requestsPerVm = 30; // 8 VMs x 30 requests
    cfg.metricsEnabled = true;
    const double requests = 8.0 * 30.0;
    const unsigned primary_cores =
        cfg.primaryVms * cfg.coresPerPrimary;

    cfg.accessSampling = 1;
    const auto unsampled = runServer(cfg, "BFS", 11);
    const std::uint64_t exact =
        totalRequestAccesses(unsampled, primary_cores);
    ASSERT_GT(exact, 0u);

    const unsigned sampling = 64;
    cfg.accessSampling = sampling;
    const auto sampled = runServer(cfg, "BFS", 11);
    const std::uint64_t replayed =
        totalRequestAccesses(sampled, primary_cores);
    ASSERT_GT(replayed, 0u);

    const double desampled =
        static_cast<double>(replayed) * sampling;
    // Carry residue + plan divergence, with 25% slack. Kept below
    // the expected truncation loss (~sampling/2 per segment) so a
    // regression to floor() division trips the bound.
    const double bound = 1.25 * requests * (sampling / 2.0 + 8.0);
    EXPECT_NEAR(desampled, static_cast<double>(exact), bound)
        << "sampled replay totals diverged from unsampled run";
}
