/**
 * @file
 * Integration tests: full-server simulations at reduced scale.
 *
 * These exercise the complete request path (loadgen -> NIC -> queues
 * -> cores -> caches -> completion), harvesting, reclamation and the
 * statistics pipeline across all five system configurations.
 */

#include <gtest/gtest.h>

#include "cluster/experiment.h"

using namespace hh::cluster;

namespace {

SystemConfig
tinyConfig(SystemKind kind)
{
    SystemConfig cfg = makeSystem(kind);
    cfg.requestsPerVm = 60;
    cfg.accessSampling = 32;
    cfg.seed = 11;
    return cfg;
}

} // namespace

TEST(ServerIntegration, AllRequestsCompleteEverySystem)
{
    for (const auto kind :
         {SystemKind::NoHarvest, SystemKind::HarvestTerm,
          SystemKind::HarvestBlock, SystemKind::HardHarvestTerm,
          SystemKind::HardHarvestBlock}) {
        const auto cfg = tinyConfig(kind);
        const auto res = runServer(cfg, "BFS", 11);
        ASSERT_EQ(res.services.size(), 8u) << systemName(kind);
        for (const auto &s : res.services) {
            // warmup skips 10%: 54 measured completions per VM.
            EXPECT_EQ(s.count, 54u)
                << systemName(kind) << " " << s.name;
            EXPECT_GT(s.p50Ms, 0.0);
            EXPECT_GE(s.p99Ms, s.p50Ms);
        }
        EXPECT_GT(res.elapsedSec, 0.0);
    }
}

TEST(ServerIntegration, NoHarvestNeverMovesCores)
{
    const auto res = runServer(tinyConfig(SystemKind::NoHarvest),
                               "BFS", 11);
    EXPECT_EQ(res.coreLoans, 0u);
    EXPECT_EQ(res.coreReclaims, 0u);
}

TEST(ServerIntegration, HarvestingSystemsMoveCores)
{
    for (const auto kind :
         {SystemKind::HarvestTerm, SystemKind::HardHarvestBlock}) {
        const auto res = runServer(tinyConfig(kind), "BFS", 11);
        EXPECT_GT(res.coreLoans, 0u) << systemName(kind);
        EXPECT_GT(res.coreReclaims, 0u) << systemName(kind);
    }
}

TEST(ServerIntegration, HarvestingRaisesUtilization)
{
    const auto no =
        runServer(tinyConfig(SystemKind::NoHarvest), "BFS", 11);
    const auto hh =
        runServer(tinyConfig(SystemKind::HardHarvestBlock), "BFS", 11);
    EXPECT_GT(hh.avgBusyCores, no.avgBusyCores * 2);
    EXPECT_LE(hh.avgBusyCores, 36.0);
}

TEST(ServerIntegration, HarvestingRaisesBatchThroughput)
{
    const auto no =
        runServer(tinyConfig(SystemKind::NoHarvest), "CC", 11);
    const auto hh =
        runServer(tinyConfig(SystemKind::HardHarvestBlock), "CC", 11);
    EXPECT_GT(hh.batchThroughput, no.batchThroughput * 1.5);
}

TEST(ServerIntegration, DeterministicForSameSeed)
{
    const auto a =
        runServer(tinyConfig(SystemKind::HardHarvestBlock), "BFS", 42);
    const auto b =
        runServer(tinyConfig(SystemKind::HardHarvestBlock), "BFS", 42);
    for (std::size_t i = 0; i < a.services.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.services[i].p50Ms, b.services[i].p50Ms);
        EXPECT_DOUBLE_EQ(a.services[i].p99Ms, b.services[i].p99Ms);
    }
    EXPECT_EQ(a.batchTasksCompleted, b.batchTasksCompleted);
    EXPECT_EQ(a.coreLoans, b.coreLoans);
}

TEST(ServerIntegration, SeedChangesResults)
{
    const auto a =
        runServer(tinyConfig(SystemKind::NoHarvest), "BFS", 1);
    const auto b =
        runServer(tinyConfig(SystemKind::NoHarvest), "BFS", 2);
    EXPECT_NE(a.services[0].p50Ms, b.services[0].p50Ms);
}

TEST(ServerIntegration, BreakdownComponentsPopulated)
{
    const auto res = runServer(
        tinyConfig(SystemKind::HarvestBlock), "BFS", 11);
    double reassign = 0;
    double flush = 0;
    double exec = 0;
    for (const auto &s : res.services) {
        reassign += s.reassignMs;
        flush += s.flushMs;
        exec += s.execMs;
    }
    EXPECT_GT(exec, 0.0);
    // Software harvesting charges hypervisor + flush overheads.
    EXPECT_GT(reassign, 0.0);
    EXPECT_GT(flush, 0.0);
}

TEST(ServerIntegration, HardHarvestReassignOverheadTiny)
{
    const auto sw = runServer(
        tinyConfig(SystemKind::HarvestBlock), "BFS", 11);
    const auto hw = runServer(
        tinyConfig(SystemKind::HardHarvestBlock), "BFS", 11);
    double sw_reassign = 0;
    double hw_reassign = 0;
    for (std::size_t i = 0; i < sw.services.size(); ++i) {
        sw_reassign += sw.services[i].reassignMs;
        hw_reassign += hw.services[i].reassignMs;
    }
    EXPECT_LT(hw_reassign, sw_reassign / 10.0);
}

TEST(ServerIntegration, L2HitRateSane)
{
    const auto res =
        runServer(tinyConfig(SystemKind::NoHarvest), "BFS", 11);
    EXPECT_GT(res.primaryL2HitRate, 0.0);
    EXPECT_LE(res.primaryL2HitRate, 1.0);
}

namespace {

/** Mean execution component across services (isolates cache cost
 *  from queueing/arrival noise). */
double
meanExecMs(const ServerResults &res)
{
    double e = 0;
    for (const auto &s : res.services)
        e += s.execMs;
    return e / static_cast<double>(res.services.size());
}

} // namespace

TEST(ServerIntegration, InfiniteCachesAreFaster)
{
    auto cfg = tinyConfig(SystemKind::NoHarvest);
    cfg.accessSampling = 4; // preserve locality for this assertion
    const auto base = runServer(cfg, "BFS", 11);
    cfg.infiniteCaches = true;
    const auto inf = runServer(cfg, "BFS", 11);
    EXPECT_LT(meanExecMs(inf), meanExecMs(base) * 1.02);
}

TEST(ServerIntegration, SmallerCachesAreSlower)
{
    auto cfg = tinyConfig(SystemKind::NoHarvest);
    cfg.accessSampling = 4;
    cfg.waysFraction = 0.25;
    const auto small = runServer(cfg, "BFS", 11);
    cfg.waysFraction = 1.0;
    const auto full = runServer(cfg, "BFS", 11);
    EXPECT_GE(meanExecMs(small), meanExecMs(full) * 0.99);
}

TEST(ClusterExperiment, AggregatesAcrossServers)
{
    auto cfg = tinyConfig(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 40;
    const auto res = runCluster(cfg, 2, 11);
    ASSERT_EQ(res.services.size(), 8u);
    ASSERT_EQ(res.batchThroughput.size(), 2u);
    EXPECT_EQ(res.batchThroughput[0].first, "BFS");
    EXPECT_EQ(res.batchThroughput[1].first, "CC");
    EXPECT_GT(res.avgBusyCores, 0.0);
    for (const auto &s : res.services)
        EXPECT_EQ(s.count, 2u * 36u); // 2 servers x 36 measured
}

TEST(ClusterExperiment, ServerCountValidated)
{
    const auto cfg = tinyConfig(SystemKind::NoHarvest);
    EXPECT_THROW(runCluster(cfg, 0, 1), std::runtime_error);
    EXPECT_THROW(runCluster(cfg, 99, 1), std::runtime_error);
}
