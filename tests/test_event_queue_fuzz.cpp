/**
 * @file
 * Differential fuzz: the hierarchical timing wheel (`EventQueue`)
 * and the binary heap it replaced (`HeapEventQueue`) must produce
 * identical (time, seq) pop orders under randomized interleavings
 * of schedule / cancel / pop.
 *
 * Every operation is applied to both structures with the same
 * arguments; pops are compared pairwise on (when, ordinal), where
 * the ordinal is the schedule-time sequence number baked into each
 * callback. Equal ordinal streams at equal times imply equal
 * (time, seq) order, since both queues assign seq in schedule()
 * call order. Cancels target the same scheduled event in both and
 * must agree on whether it was still live.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/event_queue_heap.h"
#include "sim/rng.h"

using hh::sim::Cycles;
using hh::sim::EventQueue;
using hh::sim::HeapEventQueue;

namespace {

struct PopRec
{
    Cycles when;
    std::uint64_t ordinal;

    bool
    operator==(const PopRec &o) const
    {
        return when == o.when && ordinal == o.ordinal;
    }
};

/** Pop one event from @p q and record (when, ordinal) into @p log. */
template <typename Queue>
void
popInto(Queue &q, std::vector<PopRec> &log)
{
    Cycles when = 0;
    auto cb = q.pop(when);
    const std::size_t before = log.size();
    cb();
    ASSERT_EQ(log.size(), before + 1) << "callback did not fire";
    log.back().when = when;
}

/**
 * Drive both queues through @p ops random operations and verify the
 * pop streams match. The delay mix is shaped by @p nearWeight /
 * @p farWeight / @p cancelProb so distinct profiles stress the
 * wheel's level-0 fast path, the far heap + cascade path, and the
 * tombstone path respectively.
 */
void
fuzzRound(std::uint64_t seed, int ops, double nearWeight,
          double farWeight, double cancelProb)
{
    hh::sim::Rng rng(seed, 77);
    EventQueue wheel;
    HeapEventQueue heap;

    std::vector<PopRec> wheel_log, heap_log;
    // Per-ordinal ids; an ordinal is "live" until cancelled/popped.
    std::vector<hh::sim::EventId> wheel_ids, heap_ids;
    std::vector<std::uint64_t> cancellable;

    Cycles now = 0;
    std::uint64_t next_ordinal = 0;

    for (int i = 0; i < ops; ++i) {
        const double r = rng.uniform();
        if (r < cancelProb && !cancellable.empty()) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.uniformInt(cancellable.size()));
            const std::uint64_t ord = cancellable[pick];
            cancellable[pick] = cancellable.back();
            cancellable.pop_back();
            const bool cw = wheel.cancel(wheel_ids[ord]);
            const bool ch = heap.cancel(heap_ids[ord]);
            ASSERT_EQ(cw, ch) << "cancel liveness diverged, op " << i;
            continue;
        }
        if (r < cancelProb + 0.25 && !wheel.empty()) {
            ASSERT_FALSE(heap.empty());
            ASSERT_EQ(wheel.nextTime(), heap.nextTime());
            popInto(wheel, wheel_log);
            popInto(heap, heap_log);
            now = wheel_log.back().when;
            continue;
        }
        // Schedule. Delay mix: ties at `now` exercise FIFO order,
        // near hits level 0, far lands in higher levels / far heap.
        Cycles delay = 0;
        const double d = rng.uniform();
        if (d < 0.15)
            delay = 0;
        else if (d < 0.15 + nearWeight)
            delay = rng.uniformInt(std::uint64_t{256});
        else if (d < 0.15 + nearWeight + farWeight)
            delay = rng.uniformInt(std::uint64_t{1} << 22);
        else
            delay = rng.uniformInt(std::uint64_t{1} << 14);
        const Cycles when = now + delay;
        const std::uint64_t ord = next_ordinal++;
        wheel_ids.push_back(wheel.schedule(when, [&, ord] {
            wheel_log.push_back({0, ord});
        }));
        heap_ids.push_back(heap.schedule(when, [&, ord] {
            heap_log.push_back({0, ord});
        }));
        cancellable.push_back(ord);
    }

    // Drain everything that is left.
    while (!wheel.empty()) {
        ASSERT_FALSE(heap.empty());
        ASSERT_EQ(wheel.nextTime(), heap.nextTime());
        popInto(wheel, wheel_log);
        popInto(heap, heap_log);
    }
    EXPECT_TRUE(heap.empty());

    ASSERT_EQ(wheel_log.size(), heap_log.size());
    for (std::size_t i = 0; i < wheel_log.size(); ++i) {
        ASSERT_TRUE(wheel_log[i] == heap_log[i])
            << "pop " << i << " diverged: wheel=("
            << wheel_log[i].when << "," << wheel_log[i].ordinal
            << ") heap=(" << heap_log[i].when << ","
            << heap_log[i].ordinal << ")";
    }
    EXPECT_EQ(wheel.monotonicViolations(), 0u);
    EXPECT_EQ(heap.monotonicViolations(), 0u);
}

} // namespace

TEST(EventQueueFuzz, NearFutureHeavy)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        fuzzRound(seed, 4000, 0.70, 0.05, 0.10);
}

TEST(EventQueueFuzz, FarFutureHeavy)
{
    for (std::uint64_t seed = 11; seed <= 16; ++seed)
        fuzzRound(seed, 4000, 0.05, 0.70, 0.10);
}

TEST(EventQueueFuzz, CancelHeavy)
{
    for (std::uint64_t seed = 21; seed <= 26; ++seed)
        fuzzRound(seed, 4000, 0.30, 0.20, 0.45);
}

TEST(EventQueueFuzz, MixedLongRun)
{
    fuzzRound(99, 40000, 0.35, 0.25, 0.20);
}
