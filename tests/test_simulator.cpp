/**
 * @file
 * Unit tests for the simulation driver.
 */

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/time.h"

using hh::sim::Cycles;
using hh::sim::Simulator;

TEST(Simulator, ClockStartsAtZero)
{
    Simulator s;
    EXPECT_EQ(s.now(), 0u);
    EXPECT_TRUE(s.idle());
}

TEST(Simulator, ClockAdvancesToEventTime)
{
    Simulator s;
    s.schedule(100, [] {});
    s.run();
    EXPECT_EQ(s.now(), 100u);
}

TEST(Simulator, RelativeSchedulingFromInsideEvents)
{
    Simulator s;
    Cycles second = 0;
    s.schedule(10, [&] {
        s.schedule(5, [&] { second = s.now(); });
    });
    s.run();
    EXPECT_EQ(second, 15u);
}

TEST(Simulator, RunHonorsHorizon)
{
    Simulator s;
    int ran = 0;
    s.schedule(10, [&] { ++ran; });
    s.schedule(20, [&] { ++ran; });
    s.schedule(30, [&] { ++ran; });
    const auto n = s.run(20);
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(s.pendingEvents(), 1u);
}

TEST(Simulator, EventAtExactHorizonRuns)
{
    Simulator s;
    bool ran = false;
    s.schedule(50, [&] { ran = true; });
    s.run(50);
    EXPECT_TRUE(ran);
}

TEST(Simulator, StepExecutesOne)
{
    Simulator s;
    int ran = 0;
    s.schedule(1, [&] { ++ran; });
    s.schedule(2, [&] { ++ran; });
    EXPECT_TRUE(s.step());
    EXPECT_EQ(ran, 1);
    EXPECT_TRUE(s.step());
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(s.step());
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator s;
    bool ran = false;
    const auto id = s.schedule(5, [&] { ran = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(ran);
}

TEST(Simulator, ScheduleAtAbsoluteTime)
{
    Simulator s;
    Cycles when = 0;
    s.scheduleAt(123, [&] { when = s.now(); });
    s.run();
    EXPECT_EQ(when, 123u);
}

TEST(Simulator, ScheduleIntoPastPanics)
{
    Simulator s;
    s.schedule(100, [] {});
    s.run();
    EXPECT_THROW(s.scheduleAt(50, [] {}), std::logic_error);
}

TEST(Simulator, ExecutedEventsCounts)
{
    Simulator s;
    for (int i = 0; i < 7; ++i)
        s.schedule(static_cast<Cycles>(i), [] {});
    s.run();
    EXPECT_EQ(s.executedEvents(), 7u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime)
{
    Simulator s;
    s.schedule(10, [] {});
    s.run();
    Cycles when = ~Cycles{0};
    s.schedule(0, [&] { when = s.now(); });
    s.run();
    EXPECT_EQ(when, 10u);
}

TEST(Time, Conversions)
{
    using namespace hh::sim;
    EXPECT_EQ(usToCycles(1.0), 3000u);
    EXPECT_EQ(msToCycles(1.0), 3'000'000u);
    EXPECT_EQ(nsToCycles(100.0), 300u);
    EXPECT_DOUBLE_EQ(cyclesToUs(3000), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToMs(3'000'000), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToSec(kClockHz), 1.0);
    EXPECT_NEAR(cyclesToNs(3), 1.0, 1e-9);
}

TEST(Time, RoundTripStable)
{
    using namespace hh::sim;
    for (double us : {0.5, 1.0, 17.25, 1000.0}) {
        EXPECT_NEAR(cyclesToUs(usToCycles(us)), us, 1e-3);
    }
}
