/**
 * @file
 * Harvest telemetry plane tests (PR 7): ObservationView delta math
 * and epoch bookkeeping, the telemetry-off serialization prefix
 * property, TelemetryHub economics and JSONL row checksums, and the
 * byte-identity contract of the telemetry products across worker
 * counts and checkpoint save/load/resume.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cluster/checkpoint.h"
#include "cluster/experiment.h"
#include "cluster/telemetry_hub.h"
#include "snapshot/archive.h"
#include "stats/observation_view.h"

using namespace hh::cluster;
using hh::stats::ObservationView;
using hh::stats::ServerCounters;
using hh::stats::VmCounters;

namespace {

/** Reduced-scale telemetry-enabled cluster config. */
SystemConfig
telemetryConfig()
{
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    cfg.requestsPerVm = 40;
    cfg.accessSampling = 16;
    cfg.telemetryEnabled = true;
    cfg.telemetryPeriod = hh::sim::msToCycles(1.0);
    return cfg;
}

/** Build the hub over a run's per-server payloads. */
TelemetryHub
hubFor(const SystemConfig &cfg, ClusterResults res)
{
    TelemetryHub hub(cfg);
    for (auto &t : res.serverTelemetry)
        hub.addServer(std::move(t));
    return hub;
}

/** The ledger's FNV-1a, re-derived to validate hub row checksums. */
std::uint64_t
fnv64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

} // namespace

TEST(ObservationView, FirstEpochDiffsAgainstZero)
{
    ObservationView view;
    ServerCounters cum;
    cum.t = 1000;
    cum.vms.resize(1);
    VmCounters &vc = cum.vms[0];
    vc.busyCycles = 500;
    vc.coresBound = 1;
    vc.accesses = 2000;
    vc.misses = 4;
    vc.validLines = 50;
    vc.lineCapacity = 100;
    vc.rqReady = 3;
    vc.lentCycles = 100;
    vc.reclaims = 2;
    vc.reclaimCycles = 300;
    cum.batchLoaned = 5;
    cum.batchNative = 7;
    view.record(cum);

    ASSERT_EQ(view.rows().size(), 1u);
    const auto &row = view.rows()[0];
    EXPECT_EQ(row.epoch, 1u);
    EXPECT_EQ(row.t, 1000u);
    ASSERT_EQ(row.vms.size(), 1u);
    const auto &f = row.vms[0];
    EXPECT_DOUBLE_EQ(f.coreUtil, 0.5);        // 500 / (1000 * 1)
    EXPECT_DOUBLE_EQ(f.mpki, 2.0);            // 4 / 2000 * 1000
    EXPECT_DOUBLE_EQ(f.cacheOccupancy, 0.5);  // 50 / 100
    EXPECT_EQ(f.rqReady, 3u);
    EXPECT_EQ(f.lentCycles, 100u);
    EXPECT_EQ(f.reclaims, 2u);
    EXPECT_EQ(f.reclaimCycles, 300u);
    EXPECT_EQ(row.batchLoanedDelta, 5u);
    EXPECT_EQ(row.batchNativeDelta, 7u);
    EXPECT_EQ(row.harvestedCyclesDelta, 100u);
    EXPECT_EQ(row.reclaimsDelta, 2u);
}

TEST(ObservationView, SecondEpochUsesDeltas)
{
    ObservationView view;
    ServerCounters cum;
    cum.t = 1000;
    cum.vms.resize(1);
    cum.vms[0].busyCycles = 500;
    cum.vms[0].coresBound = 1;
    cum.vms[0].accesses = 2000;
    cum.vms[0].misses = 4;
    view.record(cum);

    cum.t = 3000; // epoch of 2000 cycles
    cum.vms[0].busyCycles = 1500;
    cum.vms[0].accesses = 2000; // no accesses this epoch
    cum.vms[0].misses = 4;
    cum.batchLoaned = 9;
    view.record(cum);

    ASSERT_EQ(view.rows().size(), 2u);
    const auto &row = view.rows()[1];
    EXPECT_EQ(row.epoch, 2u);
    EXPECT_DOUBLE_EQ(row.vms[0].coreUtil, 0.5); // 1000 / (2000 * 1)
    EXPECT_DOUBLE_EQ(row.vms[0].mpki, 0.0);     // no accesses: 0
    EXPECT_EQ(row.batchLoanedDelta, 9u);
}

TEST(ObservationView, SameTimeRecordIsIgnored)
{
    ObservationView view;
    ServerCounters cum;
    cum.t = 500;
    cum.vms.resize(1);
    view.record(cum);
    view.record(cum); // stop() colliding with the last tick
    EXPECT_EQ(view.rows().size(), 1u);
    EXPECT_EQ(view.epochs(), 1u);
}

TEST(ObservationView, SerializeRoundTripsRowsAndBaseline)
{
    ObservationView view;
    ServerCounters cum;
    cum.t = 1000;
    cum.vms.resize(2);
    cum.vms[0].busyCycles = 700;
    cum.vms[0].coresBound = 2;
    cum.vms[1].lentCycles = 40;
    cum.batchLoaned = 3;
    view.record(cum);

    auto save = hh::snap::Archive::forSave();
    view.serialize(save);
    const auto blob = save.take();

    ObservationView loaded;
    auto load = hh::snap::Archive::forLoad(blob);
    loaded.serialize(load);
    ASSERT_TRUE(load.ok()) << load.error();
    ASSERT_EQ(loaded.rows().size(), 1u);
    EXPECT_DOUBLE_EQ(loaded.rows()[0].vms[0].coreUtil,
                     view.rows()[0].vms[0].coreUtil);

    // The restored baseline must diff the next epoch identically.
    cum.t = 2000;
    cum.vms[0].busyCycles = 900;
    cum.batchLoaned = 8;
    view.record(cum);
    loaded.record(cum);
    ASSERT_EQ(loaded.rows().size(), 2u);
    EXPECT_EQ(loaded.rows()[1].batchLoanedDelta,
              view.rows()[1].batchLoanedDelta);
    EXPECT_DOUBLE_EQ(loaded.rows()[1].vms[0].coreUtil,
                     view.rows()[1].vms[0].coreUtil);
}

TEST(Telemetry, OffRunSerializationIsPrefixOfOnRun)
{
    SystemConfig off = telemetryConfig();
    off.telemetryEnabled = false;
    const SystemConfig on = telemetryConfig();
    const ClusterResults off_res = runCluster(off, 2, 5, 2);
    const ClusterResults on_res = runCluster(on, 2, 5, 2);
    const std::string off_s = off_res.serialized();
    const std::string on_s = on_res.serialized();
    // The telemetry plane observes without perturbing: the on-run's
    // serialization extends the off-run's byte-for-byte.
    ASSERT_FALSE(off_s.empty());
    EXPECT_NE(on_s, off_s);
    EXPECT_EQ(on_s.rfind(off_s, 0), 0u);
    EXPECT_NE(on_s.find("telemetry server0"), std::string::npos);
    EXPECT_EQ(off_s.find("telemetry"), std::string::npos);
}

TEST(Telemetry, HubProductsAreWorkerCountInvariant)
{
    const SystemConfig cfg = telemetryConfig();
    const TelemetryHub h1 = hubFor(cfg, runCluster(cfg, 2, 5, 1));
    const TelemetryHub h4 = hubFor(cfg, runCluster(cfg, 2, 5, 4));
    ASSERT_FALSE(h1.timeline().empty());
    EXPECT_EQ(h1.jsonl(), h4.jsonl());
    EXPECT_EQ(h1.counterTrackJson(), h4.counterTrackJson());
    EXPECT_EQ(h1.report(), h4.report());
}

TEST(Telemetry, CheckpointResumeReproducesTelemetryByteExact)
{
    const SystemConfig cfg = telemetryConfig();
    const unsigned servers = 2;
    const std::uint64_t seed = 5;
    const ClusterResults full = runCluster(cfg, servers, seed, 2);
    const std::string want = full.serialized();
    const std::string want_jsonl = hubFor(cfg, full).jsonl();

    const std::string path = tmpPath("hh_telemetry_ckpt.hhcp");
    std::string err;
    ASSERT_TRUE(checkpointClusterAt(cfg, servers, seed, 2,
                                    hh::sim::msToCycles(3.0), path,
                                    &err))
        << err;
    for (const unsigned workers : {1u, 4u}) {
        auto resumed = resumeCluster(path, cfg, workers, &err);
        ASSERT_TRUE(resumed.has_value()) << err;
        EXPECT_EQ(resumed->serialized(), want)
            << "workers=" << workers;
        EXPECT_EQ(hubFor(cfg, *std::move(resumed)).jsonl(),
                  want_jsonl)
            << "workers=" << workers;
    }
}

TEST(Telemetry, MismatchedTelemetryFlagRejectsCheckpoint)
{
    // The config fingerprint covers the telemetry knobs, so resuming
    // with a different telemetry setting is refused up front instead
    // of desynchronizing the archive mid-load.
    const SystemConfig cfg = telemetryConfig();
    const std::string path = tmpPath("hh_telemetry_flag.hhcp");
    std::string err;
    ASSERT_TRUE(checkpointClusterAt(cfg, 2, 5, 2,
                                    hh::sim::msToCycles(2.0), path,
                                    &err))
        << err;
    SystemConfig other = cfg;
    other.telemetryEnabled = false;
    const auto resumed = resumeCluster(path, other, 2, &err);
    EXPECT_FALSE(resumed.has_value());
    EXPECT_NE(err.find("different SystemConfig"), std::string::npos)
        << err;
}

TEST(Telemetry, HubEconomicsAreInternallyConsistent)
{
    const SystemConfig cfg = telemetryConfig();
    ClusterResults res = runCluster(cfg, 2, 5, 2);

    std::uint64_t batch_total = 0;
    for (const auto &t : res.serverTelemetry)
        batch_total += t.batchLoaned + t.batchNative;
    const TelemetryHub hub = hubFor(cfg, std::move(res));
    const TelemetrySummary s = hub.summary();
    EXPECT_EQ(s.servers, 2u);
    EXPECT_EQ(s.coresPerServer, cfg.cores);
    EXPECT_GT(s.horizonSec, 0.0);
    EXPECT_EQ(s.batchLoaned + s.batchNative, batch_total);
    // The harvesting systems lend cores, so a HardHarvestBlock run
    // must show harvested capacity, reclaims, and a sane tail order.
    EXPECT_GT(s.harvestedCoreSeconds, 0.0);
    EXPECT_GT(s.reclaims, 0u);
    EXPECT_GE(s.reclaimP99Us, s.reclaimP50Us);
    EXPECT_GT(s.latencyP99Ms, 0.0);

    // Timeline deltas sum to the run totals.
    std::uint64_t loaned = 0, reclaims = 0;
    for (const auto &f : hub.timeline()) {
        EXPECT_GE(f.harvestIntensity, 0.0);
        EXPECT_LE(f.harvestIntensity, 1.0);
        loaned += f.batchLoanedDelta;
        reclaims += f.reclaimsDelta;
    }
    EXPECT_EQ(loaned, s.batchLoaned);
    EXPECT_EQ(reclaims, s.reclaims);
}

TEST(Telemetry, JsonlRowsCarryValidChecksums)
{
    const SystemConfig cfg = telemetryConfig();
    const TelemetryHub hub = hubFor(cfg, runCluster(cfg, 2, 5, 2));
    const std::string jsonl = hub.jsonl();

    std::istringstream is(jsonl);
    std::string line;
    std::size_t rows = 0;
    bool saw_header = false, saw_epoch = false, saw_vm = false,
         saw_econ = false;
    while (std::getline(is, line)) {
        ++rows;
        const auto crc_pos = line.rfind(",\"crc\":");
        ASSERT_NE(crc_pos, std::string::npos) << line;
        ASSERT_EQ(line.back(), '}') << line;
        const std::uint64_t stored = std::stoull(
            line.substr(crc_pos + 7,
                        line.size() - crc_pos - 8));
        EXPECT_EQ(stored, fnv64(line.substr(0, crc_pos))) << line;
        saw_header |= line.find("\"kind\":\"header\"") == 1;
        saw_epoch |= line.find("\"kind\":\"epoch\"") == 1;
        saw_vm |= line.find("\"kind\":\"vm\"") == 1;
        saw_econ |= line.find("\"kind\":\"economics\"") == 1;
    }
    EXPECT_GT(rows, 3u);
    EXPECT_TRUE(saw_header);
    EXPECT_TRUE(saw_epoch);
    EXPECT_TRUE(saw_vm);
    EXPECT_TRUE(saw_econ);
    // No worker-count or host stamps: they would break the
    // any-worker-count byte-identity contract.
    EXPECT_EQ(jsonl.find("workers"), std::string::npos);
    EXPECT_EQ(jsonl.find("hardware_threads"), std::string::npos);
}
