/**
 * @file
 * Unit tests for the experiment-level thread pool and the
 * deterministic parallel sweep runner.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/parallel.h"
#include "sim/thread_pool.h"

using hh::cluster::resolveWorkers;
using hh::cluster::runParallel;
using hh::sim::ThreadPool;

TEST(ThreadPool, DefaultWorkersPositive)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

TEST(ThreadPool, RunsAllSubmittedJobs)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, WaitOnIdlePoolReturns)
{
    ThreadPool pool(2);
    pool.wait(); // nothing submitted; must not hang
}

TEST(ThreadPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 10; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++count;
            });
        }
    }
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, FirstExceptionPropagatesFromWait)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    pool.submit([] { throw std::runtime_error("job failed"); });
    for (int i = 0; i < 20; ++i)
        pool.submit([&completed] { ++completed; });
    try {
        pool.wait();
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job failed");
    }
    // Remaining jobs still ran.
    EXPECT_EQ(completed.load(), 20);
    // And a subsequent wait() does not rethrow.
    pool.wait();
}

TEST(ThreadPool, JobsActuallyRunConcurrently)
{
    // With >= 2 workers, two jobs that rendezvous with each other can
    // only finish if they run at the same time.
    if (ThreadPool::defaultWorkers() < 2)
        GTEST_SKIP() << "single-core host";
    ThreadPool pool(2);
    std::atomic<int> arrived{0};
    for (int i = 0; i < 2; ++i) {
        pool.submit([&arrived] {
            ++arrived;
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::seconds(10);
            while (arrived.load() < 2 &&
                   std::chrono::steady_clock::now() < deadline) {
                std::this_thread::yield();
            }
        });
    }
    pool.wait();
    EXPECT_EQ(arrived.load(), 2);
}

TEST(ParallelRunner, ResolveWorkersClampsToTasks)
{
    EXPECT_EQ(resolveWorkers(8, 3), 3u);
    EXPECT_EQ(resolveWorkers(2, 100), 2u);
    EXPECT_GE(resolveWorkers(0, 100), 1u);
    EXPECT_EQ(resolveWorkers(4, 0), 1u);
}

TEST(ParallelRunner, ResultsIndexedRegardlessOfWorkers)
{
    const auto square = [](std::size_t i) {
        return static_cast<std::uint64_t>(i) * i;
    };
    const auto seq = runParallel<std::uint64_t>(64, square, 1);
    for (const unsigned workers : {2u, 4u, 8u}) {
        const auto par =
            runParallel<std::uint64_t>(64, square, workers);
        EXPECT_EQ(par, seq) << workers << " workers";
    }
}

TEST(ParallelRunner, EachIndexRunsExactlyOnce)
{
    std::vector<std::atomic<int>> hits(100);
    runParallel<int>(
        100,
        [&hits](std::size_t i) {
            ++hits[i];
            return 0;
        },
        4);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, ZeroTasksReturnsEmpty)
{
    const auto r =
        runParallel<int>(0, [](std::size_t) { return 1; }, 4);
    EXPECT_TRUE(r.empty());
}

TEST(ParallelRunner, SequentialPathRunsInOrder)
{
    std::vector<std::size_t> order;
    runParallel<int>(
        5,
        [&order](std::size_t i) {
            order.push_back(i);
            return 0;
        },
        1);
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelRunner, ExceptionPropagates)
{
    EXPECT_THROW(runParallel<int>(
                     8,
                     [](std::size_t i) {
                         if (i == 3)
                             throw std::runtime_error("task 3");
                         return 0;
                     },
                     4),
                 std::runtime_error);
}

TEST(ParallelRunner, StringResults)
{
    const auto r = runParallel<std::string>(
        4, [](std::size_t i) { return std::to_string(i * 11); }, 2);
    EXPECT_EQ(r, (std::vector<std::string>{"0", "11", "22", "33"}));
}
