/**
 * @file
 * Randomized property tests ("fuzz against a reference model") for
 * the stateful HardHarvest structures.
 */

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "core/controller.h"
#include "core/rq.h"
#include "sim/rng.h"

using namespace hh::core;

/**
 * SubQueue vs a trivial reference model: a FIFO with capacity and an
 * unbounded overflow, plus running/blocked sets.
 */
class SubQueueFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SubQueueFuzz, MatchesReferenceModel)
{
    hh::sim::Rng rng(GetParam(), 77);
    RequestQueue rq(4, 4);
    SubQueue q(rq);
    for (int i = 0; i < 2; ++i) {
        const int c = rq.allocChunk();
        ASSERT_TRUE(q.addChunk(static_cast<unsigned>(c)));
    }

    // Reference model.
    std::deque<std::uint64_t> ready;
    std::deque<std::uint64_t> overflow;
    std::set<std::uint64_t> running;
    std::set<std::uint64_t> blocked;
    const auto capacity = [&] { return q.capacity(); };
    const auto occupancy = [&] {
        return ready.size() + running.size() + blocked.size();
    };
    const auto drain = [&] {
        while (!overflow.empty() && occupancy() < capacity()) {
            ready.push_back(overflow.front());
            overflow.pop_front();
        }
    };

    std::uint64_t next = 1;
    for (int step = 0; step < 5000; ++step) {
        switch (rng.uniformInt(std::uint64_t{5})) {
          case 0: { // enqueue
            const std::uint64_t id = next++;
            q.enqueue(id);
            if (!overflow.empty() || occupancy() >= capacity())
                overflow.push_back(id);
            else
                ready.push_back(id);
            break;
          }
          case 1: { // dequeue
            const auto got = q.dequeue();
            if (ready.empty()) {
                EXPECT_FALSE(got.has_value());
            } else {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(*got, ready.front());
                running.insert(ready.front());
                ready.pop_front();
                drain();
            }
            break;
          }
          case 2: { // block a running request
            if (running.empty())
                break;
            const std::uint64_t id = *running.begin();
            q.markBlocked(id);
            running.erase(id);
            blocked.insert(id);
            break;
          }
          case 3: { // unblock
            if (blocked.empty())
                break;
            const std::uint64_t id = *blocked.begin();
            q.markReady(id);
            blocked.erase(id);
            ready.push_front(id);
            break;
          }
          case 4: { // complete
            if (running.empty())
                break;
            const std::uint64_t id = *running.rbegin();
            q.complete(id);
            running.erase(id);
            drain();
            break;
          }
        }
        ASSERT_EQ(q.occupancy(), occupancy());
        ASSERT_EQ(q.overflowSize(), overflow.size());
        ASSERT_EQ(q.hasReady(), !ready.empty());
        ASSERT_EQ(q.readyCount(), ready.size());
        ASSERT_LE(q.occupancy(), q.capacity());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubQueueFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

/**
 * Controller churn: random VM arrivals/departures must conserve RQ
 * chunks and keep every VM's subqueue non-empty.
 */
class ControllerChurn : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ControllerChurn, ChunksConservedAcrossChurn)
{
    hh::sim::Rng rng(GetParam(), 88);
    HardHarvestController ctrl(ControllerConfig{}, 36);
    std::vector<std::uint32_t> live;
    std::uint32_t next_vm = 0;

    for (int step = 0; step < 300; ++step) {
        const bool add = live.size() < 2 ||
                         (live.size() < 14 && rng.bernoulli(0.5));
        if (add) {
            const auto weight =
                static_cast<unsigned>(rng.uniformInt(
                    std::int64_t{1}, std::int64_t{8}));
            ctrl.registerVm(next_vm, rng.bernoulli(0.8), weight);
            live.push_back(next_vm++);
        } else {
            const auto idx = rng.uniformInt(live.size());
            ctrl.removeVm(live[idx]);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        }

        // Invariants: every live VM has at least one chunk; total
        // allocated + free chunks equals the physical array.
        unsigned allocated = 0;
        for (const std::uint32_t vm : live) {
            const auto *qm = ctrl.qmFor(vm);
            ASSERT_NE(qm, nullptr);
            const auto chunks = qm->queue().rqMap().size();
            ASSERT_GE(chunks, 1u);
            allocated += static_cast<unsigned>(chunks);
        }
        ASSERT_EQ(allocated + ctrl.rq().freeChunks(),
                  ctrl.rq().numChunks());
        // No chunk may be owned twice.
        std::set<unsigned> owned;
        for (const std::uint32_t vm : live) {
            for (unsigned c : ctrl.qmFor(vm)->queue().rqMap())
                ASSERT_TRUE(owned.insert(c).second);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerChurn,
                         ::testing::Range<std::uint64_t>(1, 9));

/**
 * Requests survive chunk donation: enqueue under churn, then drain
 * everything and verify nothing was lost or duplicated.
 */
class ControllerDrain : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ControllerDrain, NoRequestLostAcrossDonation)
{
    hh::sim::Rng rng(GetParam(), 99);
    HardHarvestController ctrl(ControllerConfig{}, 36);
    ctrl.registerVm(0, true, 4);

    std::set<std::uint64_t> outstanding;
    std::uint64_t next = 1;
    for (int i = 0; i < 3000; ++i) {
        ctrl.enqueue(0, next);
        outstanding.insert(next);
        ++next;
    }
    // Churn other VMs to force repeated donation/spill/regrow.
    for (std::uint32_t vm = 1; vm <= 6; ++vm)
        ctrl.registerVm(vm, true, 4);
    for (std::uint32_t vm = 1; vm <= 6; ++vm)
        ctrl.removeVm(vm);

    // Drain: everything must come out exactly once, in FIFO order.
    std::uint64_t expected = 1;
    while (true) {
        const auto got = ctrl.dequeue(0);
        if (!got)
            break;
        ASSERT_EQ(*got, expected);
        ++expected;
        ASSERT_EQ(outstanding.erase(*got), 1u);
        ctrl.complete(0, *got);
    }
    EXPECT_TRUE(outstanding.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerDrain,
                         ::testing::Range<std::uint64_t>(1, 5));
