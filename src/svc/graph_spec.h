/**
 * @file
 * Declarative service-graph specifications.
 *
 * A `ServiceGraphSpec` describes a multi-tier RPC topology: each tier
 * reuses one of the microservice `ServiceSpec`s, fans out a fixed
 * number of child RPCs into the next tier (synchronously — the parent
 * blocks at its first I/O call site — or asynchronously at
 * completion), and is placed on a contiguous server range with a
 * fixed number of VMs per server. Tier 0 is the front tier: it is the
 * only one driven by open-loop arrivals, with per-VM rate scales
 * drawn from the Alibaba-like utilization distribution
 * (`src/workload/alibaba.*`) so the fleet is load-imbalanced the way
 * a real cluster is.
 *
 * Specs parse from text files with line-numbered validation in the
 * `src/exp/` style, and render back to a canonical text that rides
 * the checkpoint configFingerprint — resuming a graph checkpoint
 * under a different topology fails up front.
 */

#ifndef HH_SVC_GRAPH_SPEC_H
#define HH_SVC_GRAPH_SPEC_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/server.h"
#include "cluster/system_config.h"

namespace hh::svc {

/** One tier of the graph. */
struct TierSpec
{
    std::string service;     //!< ServiceSpec name (workload reuse).
    unsigned fanout = 0;     //!< Child RPCs per node into tier+1.
    bool sync = true;        //!< Parent blocks at its I/O call site.
    unsigned serverLo = 0;   //!< First server hosting this tier.
    unsigned serverHi = 0;   //!< Last server (inclusive).
    unsigned vmsPerServer = 1;
};

/** A full graph topology. */
struct ServiceGraphSpec
{
    std::string name = "graph";
    unsigned servers = 0;
    /**
     * One-way cross-server RPC latency in us. Intentionally a graph
     * parameter (default: a conservative 20 us datacenter RPC): it is
     * also the fleet coordinator's conservative-window lookahead, so
     * the number of synchronization windows per run scales with it.
     */
    double rpcLatencyUs = 20.0;
    /**
     * Bounded-queue admission cap: a VM already holding this many
     * live tree nodes sheds new roots/child calls (accounted, never
     * silent). Bounds per-server resident state at any fan-out.
     */
    unsigned maxLiveNodesPerVm = 4096;
    std::vector<TierSpec> tiers;

    unsigned depth() const
    {
        return static_cast<unsigned>(tiers.size());
    }

    /**
     * Deterministic canonical rendering; parses back to an identical
     * spec and feeds the checkpoint configFingerprint.
     */
    std::string canonicalText() const;
};

/**
 * Parse a spec from text (`graph.key = value` / `tierN.key = value`
 * lines, '#' comments). On failure returns false with @p error set to
 * a "line N: ..." message. The parsed spec is also validated
 * structurally (tiers contiguous from 0, leaf tier fanout 0, server
 * ranges in bounds, known service names).
 */
bool parseGraphSpec(const std::string &text, ServiceGraphSpec *out,
                    std::string *error);

/**
 * Structural validation against a server shape. @p primaryVms is the
 * per-server Primary slot count the placement may fill.
 */
bool validateGraphSpec(const ServiceGraphSpec &spec,
                       unsigned primaryVms, std::string *error);

/**
 * Canonical D-tier benchmark graph: @p servers split into @p depth
 * contiguous ranges (front range first), fan-out @p fanout between
 * consecutive tiers, sync calls, leaf tier fanout 0. Services cycle
 * through the DeathStarBench-like table front-to-back.
 */
ServiceGraphSpec makeLayeredGraphSpec(unsigned depth, unsigned fanout,
                                      unsigned servers);

/**
 * Where every tier VM lives: tierSlots[t] lists (server, vm) pairs in
 * ascending (server, vm) order. Shared read-only by every server's
 * RPC engine — child routing is `mix(salt, child) % slots`.
 */
struct GraphRouting
{
    std::vector<std::vector<std::pair<unsigned, unsigned>>> tierSlots;
};

/** A materialized placement: per-server plans plus shared routing. */
struct GraphPlacement
{
    std::vector<hh::cluster::GraphServerPlan> plans;
    std::shared_ptr<const GraphRouting> routing;
};

/**
 * Assign tier VMs to Primary slots server by server and draw the
 * front tier's Alibaba rate scales (in (server, vm) order from one
 * @p seed-derived stream, so the placement is deterministic).
 * Fatal on capacity violations — call validateGraphSpec first.
 */
GraphPlacement buildGraphPlacement(const ServiceGraphSpec &spec,
                                   const hh::cluster::SystemConfig &cfg,
                                   std::uint64_t seed);

} // namespace hh::svc

#endif // HH_SVC_GRAPH_SPEC_H
