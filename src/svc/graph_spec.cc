#include "svc/graph_spec.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <sstream>

#include "sim/log.h"
#include "workload/alibaba.h"
#include "workload/service.h"

namespace hh::svc {

namespace {

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
parseUnsigned(const std::string &v, unsigned *out)
{
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        return false;
    *out = static_cast<unsigned>(parsed);
    return true;
}

bool
parseDouble(const std::string &v, double *out)
{
    char *end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        return false;
    *out = parsed;
    return true;
}

/** "a..b" (inclusive) or a single "a". */
bool
parseRange(const std::string &v, unsigned *lo, unsigned *hi)
{
    const auto dots = v.find("..");
    if (dots == std::string::npos) {
        if (!parseUnsigned(v, lo))
            return false;
        *hi = *lo;
        return true;
    }
    return parseUnsigned(v.substr(0, dots), lo) &&
           parseUnsigned(v.substr(dots + 2), hi);
}

bool
knownService(const std::string &name)
{
    for (const auto &s : hh::workload::deathStarBenchServices()) {
        if (s.name == name)
            return true;
    }
    return false;
}

/**
 * Structure checks that need no server-shape context. The packet
 * header bit-packs srcServer into 16 bits, dstVm into 10 and tier
 * into 8 (src/net/packet.h), so those widths are spec limits too.
 */
bool
validateStructure(const ServiceGraphSpec &spec, std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    std::ostringstream os;
    if (spec.name.empty())
        return fail("graph.name must be non-empty");
    if (spec.servers == 0)
        return fail("graph.servers must be > 0");
    if (spec.servers > 65535)
        return fail("graph.servers exceeds the 16-bit packet field");
    if (!(spec.rpcLatencyUs > 0.0))
        return fail("graph.rpcLatencyUs must be > 0");
    if (spec.maxLiveNodesPerVm == 0)
        return fail("graph.maxLiveNodesPerVm must be >= 1");
    if (spec.tiers.empty())
        return fail("a graph needs at least one tier");
    if (spec.tiers.size() > 255)
        return fail("tier count exceeds the 8-bit packet field");
    for (std::size_t t = 0; t < spec.tiers.size(); ++t) {
        const TierSpec &tier = spec.tiers[t];
        os.str("");
        os << "tier" << t << ": ";
        if (tier.service.empty())
            return fail(os.str() + "service must be set");
        if (!knownService(tier.service))
            return fail(os.str() + "unknown service '" +
                        tier.service + "'");
        if (tier.serverLo > tier.serverHi)
            return fail(os.str() + "server range is inverted");
        if (tier.serverHi >= spec.servers) {
            os << "server range ends at " << tier.serverHi
               << " but the graph has " << spec.servers << " servers";
            return fail(os.str());
        }
        if (tier.vmsPerServer == 0)
            return fail(os.str() + "vms must be >= 1");
        const bool last = t + 1 == spec.tiers.size();
        if (last && tier.fanout != 0) {
            os << "the last tier must have fanout 0 (got "
               << tier.fanout << ")";
            return fail(os.str());
        }
        if (!last && tier.fanout == 0)
            return fail(os.str() +
                        "only the last tier may have fanout 0");
    }
    return true;
}

} // namespace

std::string
ServiceGraphSpec::canonicalText() const
{
    std::ostringstream os;
    os << "graph.name = " << name << "\n";
    os << "graph.servers = " << servers << "\n";
    os << std::setprecision(17);
    os << "graph.rpcLatencyUs = " << rpcLatencyUs << "\n";
    os << "graph.maxLiveNodesPerVm = " << maxLiveNodesPerVm << "\n";
    for (std::size_t t = 0; t < tiers.size(); ++t) {
        const TierSpec &tier = tiers[t];
        os << "tier" << t << ".service = " << tier.service << "\n";
        os << "tier" << t << ".fanout = " << tier.fanout << "\n";
        os << "tier" << t << ".mode = "
           << (tier.sync ? "sync" : "async") << "\n";
        os << "tier" << t << ".servers = " << tier.serverLo << ".."
           << tier.serverHi << "\n";
        os << "tier" << t << ".vms = " << tier.vmsPerServer << "\n";
    }
    return os.str();
}

bool
parseGraphSpec(const std::string &text, ServiceGraphSpec *out,
               std::string *error)
{
    ServiceGraphSpec spec;
    spec.name.clear();
    std::map<unsigned, TierSpec> tiers;

    std::istringstream is(text);
    std::string raw;
    unsigned lineno = 0;
    const auto fail = [&](const std::string &msg) {
        if (error) {
            std::ostringstream os;
            os << "line " << lineno << ": " << msg;
            *error = os.str();
        }
        return false;
    };

    while (std::getline(is, raw)) {
        ++lineno;
        const auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        const std::string line = trim(raw);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            return fail("expected 'key = value'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty())
            return fail("expected 'key = value'");

        if (key == "graph.name") {
            spec.name = value;
        } else if (key == "graph.servers") {
            if (!parseUnsigned(value, &spec.servers))
                return fail("invalid unsigned '" + value + "'");
        } else if (key == "graph.rpcLatencyUs") {
            if (!parseDouble(value, &spec.rpcLatencyUs))
                return fail("invalid number '" + value + "'");
        } else if (key == "graph.maxLiveNodesPerVm") {
            if (!parseUnsigned(value, &spec.maxLiveNodesPerVm))
                return fail("invalid unsigned '" + value + "'");
        } else if (key.rfind("tier", 0) == 0) {
            const auto dot = key.find('.');
            if (dot == std::string::npos)
                return fail("expected tierN.<key>");
            unsigned idx = 0;
            if (!parseUnsigned(key.substr(4, dot - 4), &idx))
                return fail("invalid tier index in '" + key + "'");
            TierSpec &tier = tiers[idx];
            const std::string sub = key.substr(dot + 1);
            if (sub == "service") {
                tier.service = value;
            } else if (sub == "fanout") {
                if (!parseUnsigned(value, &tier.fanout))
                    return fail("invalid unsigned '" + value + "'");
            } else if (sub == "mode") {
                if (value == "sync")
                    tier.sync = true;
                else if (value == "async")
                    tier.sync = false;
                else
                    return fail("mode must be sync or async, got '" +
                                value + "'");
            } else if (sub == "servers") {
                if (!parseRange(value, &tier.serverLo,
                                &tier.serverHi))
                    return fail("invalid server range '" + value +
                                "' (want a..b)");
            } else if (sub == "vms") {
                if (!parseUnsigned(value, &tier.vmsPerServer))
                    return fail("invalid unsigned '" + value + "'");
            } else {
                return fail("unknown tier key '" + sub + "'");
            }
        } else {
            return fail("unknown key '" + key + "'");
        }
    }

    // Assemble the tier vector; indices must be contiguous from 0.
    lineno = 0; // structural errors below are not line-specific
    for (const auto &[idx, tier] : tiers) {
        if (idx != spec.tiers.size()) {
            if (error) {
                std::ostringstream os;
                os << "tier indices must be contiguous from 0 "
                      "(missing tier"
                   << spec.tiers.size() << ")";
                *error = os.str();
            }
            return false;
        }
        spec.tiers.push_back(tier);
    }
    if (spec.name.empty())
        spec.name = "graph";
    if (!validateStructure(spec, error))
        return false;
    *out = std::move(spec);
    return true;
}

bool
validateGraphSpec(const ServiceGraphSpec &spec, unsigned primaryVms,
                  std::string *error)
{
    if (!validateStructure(spec, error))
        return false;
    if (primaryVms > 1024) {
        if (error)
            *error = "primaryVms exceeds the 10-bit packet vm field";
        return false;
    }
    // Per-server capacity: the tiers hosted on a server must fit in
    // its Primary slots together.
    std::vector<unsigned> used(spec.servers, 0);
    for (std::size_t t = 0; t < spec.tiers.size(); ++t) {
        const TierSpec &tier = spec.tiers[t];
        for (unsigned s = tier.serverLo; s <= tier.serverHi; ++s)
            used[s] += tier.vmsPerServer;
    }
    for (unsigned s = 0; s < spec.servers; ++s) {
        if (used[s] > primaryVms) {
            if (error) {
                std::ostringstream os;
                os << "server " << s << " would host " << used[s]
                   << " tier VMs but has only " << primaryVms
                   << " Primary slots";
                *error = os.str();
            }
            return false;
        }
    }
    return true;
}

ServiceGraphSpec
makeLayeredGraphSpec(unsigned depth, unsigned fanout, unsigned servers)
{
    if (depth == 0 || servers < depth)
        hh::sim::fatal("makeLayeredGraphSpec: need depth >= 1 and ",
                       "servers >= depth (got depth=", depth,
                       " servers=", servers, ")");
    const auto services = hh::workload::deathStarBenchServices();
    ServiceGraphSpec spec;
    std::ostringstream os;
    os << "layered-d" << depth << "-f" << fanout;
    spec.name = os.str();
    spec.servers = servers;
    // Even contiguous partition: the first (servers % depth) ranges
    // get one extra server.
    unsigned next = 0;
    for (unsigned t = 0; t < depth; ++t) {
        const unsigned size =
            servers / depth + (t < servers % depth ? 1 : 0);
        TierSpec tier;
        tier.service = services[t % services.size()].name;
        tier.fanout = t + 1 < depth ? fanout : 0;
        tier.sync = true;
        tier.serverLo = next;
        tier.serverHi = next + size - 1;
        tier.vmsPerServer = 8;
        next += size;
        spec.tiers.push_back(tier);
    }
    return spec;
}

GraphPlacement
buildGraphPlacement(const ServiceGraphSpec &spec,
                    const hh::cluster::SystemConfig &cfg,
                    std::uint64_t seed)
{
    std::string err;
    if (!validateGraphSpec(spec, cfg.primaryVms, &err))
        hh::sim::fatal("buildGraphPlacement: invalid spec: ", err);

    GraphPlacement out;
    out.plans.resize(spec.servers);
    auto routing = std::make_shared<GraphRouting>();
    routing->tierSlots.resize(spec.tiers.size());

    std::vector<unsigned> nextFree(spec.servers, 0);
    for (auto &plan : out.plans) {
        plan.enabled = true;
        plan.vms.resize(cfg.primaryVms);
    }
    for (std::size_t t = 0; t < spec.tiers.size(); ++t) {
        const TierSpec &tier = spec.tiers[t];
        for (unsigned s = tier.serverLo; s <= tier.serverHi; ++s) {
            for (unsigned i = 0; i < tier.vmsPerServer; ++i) {
                const unsigned vm = nextFree[s]++;
                hh::cluster::GraphVmPlan &gp = out.plans[s].vms[vm];
                gp.used = true;
                gp.front = t == 0;
                gp.tier = static_cast<std::uint32_t>(t);
                gp.service = tier.service;
                routing->tierSlots[t].emplace_back(s, vm);
            }
        }
    }

    // Front-tier load imbalance: per-VM rate scales drawn from one
    // Alibaba-like stream in (server, vm) slot order, so the draw
    // sequence is independent of worker count and of which server
    // constructs first.
    hh::workload::AlibabaTrace trace(seed);
    for (const auto &[s, vm] : routing->tierSlots[0]) {
        const double util = trace.drawAvgUtil();
        const double scale =
            util / hh::workload::kAlibabaMedianAvgUtil;
        out.plans[s].vms[vm].rateScale =
            std::clamp(scale, 0.25, 3.0);
    }

    out.routing = std::move(routing);
    return out;
}

} // namespace hh::svc
