#include "svc/fleet.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "cluster/checkpoint.h"
#include "cluster/parallel.h"
#include "sim/log.h"
#include "sim/time.h"
#include "snapshot/archive.h"
#include "snapshot/file.h"
#include "stats/histogram.h"
#include "workload/batch.h"

namespace hh::svc {

using hh::sim::Cycles;

std::string
FleetResults::serialized() const
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "graph " << graph << " servers=" << servers
       << " depth=" << depth << "\n";
    os << "roots done=" << rootsDone << " shed=" << rootsShed << "\n";
    for (std::size_t t = 0; t < tiers.size(); ++t) {
        const TierResult &tr = tiers[t];
        os << "tier" << t << " service=" << tr.service
           << " nodes=" << tr.nodes << " sheds=" << tr.sheds
           << " p50us=" << tr.p50Us << " p99us=" << tr.p99Us << "\n";
    }
    os << "e2e count=" << e2eCount << " p50us=" << e2eP50Us
       << " p99us=" << e2eP99Us << "\n";
    os << "fleet p99us=" << fleetP99Us << "\n";
    os << "batch tasks=" << batchTasks
       << " throughput=" << batchThroughput << "\n";
    os << "econ harvested=" << harvestedCycles
       << " loans=" << coreLoans << " reclaims=" << coreReclaims
       << " utilization=" << avgUtilization << "\n";
    os << "wire=" << wireMessages << " elapsed=" << elapsedSec
       << "\n";
    os << "audit runs=" << auditsRun
       << " violations=" << auditViolations << "\n";
    return os.str();
}

FleetSim::FleetSim(const ServiceGraphSpec &spec,
                   const hh::cluster::SystemConfig &cfg,
                   std::uint64_t seed)
    : spec_(spec), cfg_(cfg), seed_(seed ? seed : cfg.seed)
{
    // The canonical spec text rides the config so the checkpoint
    // fingerprint rejects resuming under a different topology.
    cfg_.graphSpec = spec_.canonicalText();
    rpc_latency_ = hh::sim::usToCycles(spec_.rpcLatencyUs);
    if (rpc_latency_ == 0)
        hh::sim::fatal("FleetSim: rpcLatencyUs rounds to 0 cycles");

    const GraphPlacement placement =
        buildGraphPlacement(spec_, cfg_, seed_);
    const auto batch = hh::workload::batchApplications();
    sims_.reserve(spec_.servers);
    engines_.reserve(spec_.servers);
    for (unsigned s = 0; s < spec_.servers; ++s) {
        batch_apps_.push_back(batch[s % batch.size()].name);
        sims_.push_back(std::make_unique<hh::cluster::ServerSim>(
            cfg_, batch_apps_.back(), placement.plans[s],
            seed_ + s));
        engines_.push_back(std::make_unique<RpcEngine>(
            spec_, placement.routing, s, *sims_[s], cfg_));
        sims_[s]->setGraphHooks(engines_[s].get());
    }
}

FleetSim::~FleetSim() = default;

void
FleetSim::start()
{
    for (auto &sim : sims_)
        sim->startRun();
}

bool
FleetSim::drained() const
{
    for (const auto &eng : engines_) {
        if (!eng->rootsFinished())
            return false;
    }
    return totalLiveNodes() == 0;
}

std::uint64_t
FleetSim::totalLiveNodes() const
{
    std::uint64_t live = 0;
    for (const auto &eng : engines_)
        live += eng->liveNodes();
    return live;
}

void
FleetSim::advanceWindows(unsigned workers, Cycles until)
{
    constexpr Cycles kNoEvent = std::numeric_limits<Cycles>::max();
    while (!drained() && (until == 0 || barrier_ < until)) {
        Cycles m = kNoEvent;
        for (const auto &sim : sims_) {
            if (!sim->simIdle())
                m = std::min(m, sim->nextEventTime());
        }
        if (m == kNoEvent) {
            // Unreachable while any tree lives: a live node implies a
            // pending event (its own segments, a child's, or an
            // in-flight wire arrival) somewhere in the fleet.
            hh::sim::panic("FleetSim: trees not drained but no "
                           "pending events anywhere");
        }
        // Conservative window: nothing sent at or after m can arrive
        // before B, so every server may run strictly below B without
        // seeing the others' messages.
        const Cycles B = m + rpc_latency_;
        hh::cluster::runParallel<int>(
            sims_.size(),
            [&](std::size_t s) {
                if (!sims_[s]->simIdle() &&
                    sims_[s]->nextEventTime() < B)
                    sims_[s]->advanceRun(B - 1);
                return 0;
            },
            workers);
        // Exchange, sequential in server order (determinism): every
        // arrival lands at sendTime + L >= B, i.e. in the future of
        // all servers.
        for (auto &eng : engines_) {
            for (const OutMsg &msg : eng->takeOutbox()) {
                const Cycles when = msg.sendTime + rpc_latency_;
                hh::net::Packet pkt = msg.pkt;
                pkt.arrival = when;
                sims_[msg.dstServer]->graphScheduleWireArrival(pkt,
                                                               when);
            }
        }
        barrier_ = B;
        ++windows_;
    }
}

FleetResults
FleetSim::finish(unsigned workers)
{
    if (!drained())
        hh::sim::panic("FleetSim::finish before the fleet drained");
    // The fleet, not any single server, declares the end time: a
    // transiently idle back tier was never "done", and all servers
    // must agree for merged statistics to be meaningful.
    for (auto &sim : sims_)
        sim->setGraphDone(barrier_);
    const auto results =
        hh::cluster::runParallel<hh::cluster::ServerResults>(
            sims_.size(),
            [&](std::size_t s) {
                sims_[s]->advanceRun(
                    hh::cluster::ServerSim::horizon());
                return sims_[s]->finishRun();
            },
            workers);

    FleetResults r;
    r.graph = spec_.name;
    r.servers = spec_.servers;
    r.depth = spec_.depth();
    r.windows = windows_;

    // Engine-side aggregation: tree/tier statistics.
    std::vector<hh::stats::LogHistogram> tierHist(
        spec_.depth(), hh::stats::LogHistogram());
    hh::stats::LogHistogram e2e;
    r.tiers.resize(spec_.depth());
    for (unsigned t = 0; t < spec_.depth(); ++t)
        r.tiers[t].service = spec_.tiers[t].service;
    for (const auto &eng : engines_) {
        r.rootsDone += eng->rootsDone();
        r.rootsShed += eng->rootsShed();
        r.wireMessages += eng->wireSent();
        for (unsigned t = 0; t < spec_.depth(); ++t) {
            r.tiers[t].nodes += eng->tierNodes()[t];
            r.tiers[t].sheds += eng->tierSheds()[t];
            tierHist[t].merge(eng->tierHists()[t]);
        }
        e2e.merge(eng->e2eHist());
        r.maxPeakLiveNodes = std::max<std::uint64_t>(
            r.maxPeakLiveNodes, eng->peakLiveNodes());
        r.maxFootprintBytes =
            std::max(r.maxFootprintBytes, eng->footprintBytes());
    }
    for (unsigned t = 0; t < spec_.depth(); ++t) {
        r.tiers[t].p50Us = tierHist[t].percentile(50.0);
        r.tiers[t].p99Us = tierHist[t].percentile(99.0);
    }
    r.e2eCount = e2e.totalCount();
    r.e2eP50Us = e2e.percentile(50.0);
    r.e2eP99Us = e2e.percentile(99.0);

    // Server-side aggregation: harvesting economics plus the fleet
    // P99 over the merged telemetry latency buckets (in graph mode
    // these carry the end-to-end tree latencies).
    std::vector<std::uint64_t> latencyBuckets;
    for (const auto &res : results) {
        r.batchTasks += res.batchTasksCompleted;
        r.batchThroughput += res.batchThroughput;
        r.coreLoans += res.coreLoans;
        r.coreReclaims += res.coreReclaims;
        r.harvestedCycles += res.telemetry.harvestedCycles;
        r.avgUtilization += res.utilization;
        r.auditsRun += res.auditsRun;
        r.auditViolations += res.auditViolations;
        r.elapsedSec = std::max(r.elapsedSec, res.elapsedSec);
        const auto &hist = res.telemetry.latencyHist;
        if (latencyBuckets.empty())
            latencyBuckets.assign(hist.size(), 0);
        for (std::size_t i = 0; i < hist.size(); ++i)
            latencyBuckets[i] += hist[i];
    }
    if (!results.empty())
        r.avgUtilization /= static_cast<double>(results.size());
    r.fleetP99Us =
        hh::stats::logBucketPercentile(latencyBuckets, 99.0);
    return r;
}

bool
FleetSim::save(const std::string &path, std::string *error) const
{
    hh::snap::CheckpointFile f;
    f.configFingerprint = hh::cluster::configFingerprint(cfg_);
    f.servers = sims_.size();
    f.seed = seed_;
    f.savedAtCycles = barrier_;
    std::ostringstream apps;
    for (std::size_t s = 0; s < batch_apps_.size(); ++s)
        apps << (s ? "," : "") << batch_apps_[s];
    f.batchApps = apps.str();
    for (const auto &sim : sims_) {
        auto ar = hh::snap::Archive::forSave();
        sim->saveState(ar);
        if (!ar.ok()) {
            if (error)
                *error = "fleet save failed: " + ar.error();
            return false;
        }
        f.blobs.push_back(ar.take());
    }
    return hh::snap::writeCheckpointFile(path, f, error);
}

bool
FleetSim::resume(const std::string &path, std::string *error)
{
    hh::snap::CheckpointFile f;
    if (!hh::snap::readCheckpointFile(path, f, error))
        return false;
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (f.configFingerprint != hh::cluster::configFingerprint(cfg_))
        return fail("checkpoint was taken under a different "
                    "configuration or graph topology");
    if (f.servers != sims_.size())
        return fail("checkpoint holds " + std::to_string(f.servers) +
                    " servers, fleet has " +
                    std::to_string(sims_.size()));
    if (f.seed != seed_)
        return fail("checkpoint seed mismatch");
    for (std::size_t s = 0; s < sims_.size(); ++s) {
        auto ar = hh::snap::Archive::forLoad(std::move(f.blobs[s]));
        sims_[s]->loadState(ar);
        if (!ar.ok())
            return fail("server " + std::to_string(s) +
                        " blob failed to load: " + ar.error());
    }
    barrier_ = f.savedAtCycles;
    return true;
}

FleetResults
runFleet(const ServiceGraphSpec &spec,
         const hh::cluster::SystemConfig &cfg, std::uint64_t seed,
         unsigned workers)
{
    FleetSim fleet(spec, cfg, seed);
    fleet.start();
    fleet.advanceWindows(workers);
    return fleet.finish(workers);
}

bool
checkpointFleetAt(const ServiceGraphSpec &spec,
                  const hh::cluster::SystemConfig &cfg,
                  std::uint64_t seed, unsigned workers,
                  hh::sim::Cycles at, const std::string &path,
                  std::string *error)
{
    FleetSim fleet(spec, cfg, seed);
    fleet.start();
    fleet.advanceWindows(workers, at);
    return fleet.save(path, error);
}

std::optional<FleetResults>
resumeFleet(const std::string &path, const ServiceGraphSpec &spec,
            const hh::cluster::SystemConfig &cfg, std::uint64_t seed,
            unsigned workers, std::string *error)
{
    FleetSim fleet(spec, cfg, seed);
    if (!fleet.resume(path, error))
        return std::nullopt;
    fleet.advanceWindows(workers);
    return fleet.finish(workers);
}

} // namespace hh::svc
