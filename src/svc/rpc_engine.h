/**
 * @file
 * Per-server RPC-tree engine for service-graph workloads.
 *
 * Each server in a graph fleet owns one `RpcEngine`, installed into
 * its `ServerSim` as the `GraphHooks` implementation. The engine
 * tracks every live RPC-tree node resident on the server in a
 * compacting arena: a root node per front-tier arrival, plus a child
 * node per inbound `GraphCall`. When a node's service invocation hits
 * its first I/O call site (sync tiers), the engine fans out child
 * RPCs into the next tier — same-server children loop back through
 * the NIC, cross-server children are queued in an outbox the fleet
 * coordinator exchanges at its conservative-window barriers — and the
 * request stays blocked until every child reports `GraphDone`. A node
 * finishes when its own segments have run *and* its subtree has
 * drained; finishing the root records the end-to-end tree latency.
 *
 * Determinism: child routing is a pure hash of the parent's salt and
 * the child index over the shared `GraphRouting` table — no RNG, no
 * dependence on arrival interleaving — so results are bit-identical
 * across fleet worker counts and across checkpoint-resume.
 *
 * Bounded footprint: a VM holding `maxLiveNodesPerVm` live nodes
 * sheds new work (roots at admission, child calls on arrival, both
 * accounted in shed counters and answered with an immediate
 * `GraphDone` so the parent tree still drains). The arena compacts on
 * erase, so resident state tracks the live tree population, not the
 * run's history.
 */

#ifndef HH_SVC_RPC_ENGINE_H
#define HH_SVC_RPC_ENGINE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/server.h"
#include "net/packet.h"
#include "sim/time.h"
#include "stats/histogram.h"
#include "svc/graph_spec.h"

namespace hh::svc {

/** A live node of some request's RPC tree, resident on this server. */
struct RpcNode
{
    static constexpr std::uint32_t kNoParent = ~0u;

    std::uint64_t id = 0;      //!< Engine-local stable node id.
    std::uint32_t vm = 0;      //!< Hosting VM slot.
    std::uint32_t tier = 0;
    std::uint64_t salt = 0;    //!< Deterministic child-routing salt.

    /** Reply-to triple; parentServer == kNoParent marks a root. */
    std::uint32_t parentServer = kNoParent;
    std::uint32_t parentVm = 0;
    std::uint64_t parentNode = 0;

    /** Live request id while the invocation runs; 0 afterwards. */
    std::uint64_t reqId = 0;

    hh::sim::Cycles arrival = 0;   //!< Tree-node start time.
    hh::sim::Cycles blockedAt = 0; //!< When it parked at its call site.

    std::uint32_t childrenOutstanding = 0;
    bool localDone = false; //!< Own segments have all run.
    bool fannedOut = false; //!< Children were issued (at most once).
    bool waiting = false;   //!< Parked at its call site on children.

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(id);
        ar.io(vm);
        ar.io(tier);
        ar.io(salt);
        ar.io(parentServer);
        ar.io(parentVm);
        ar.io(parentNode);
        ar.io(reqId);
        ar.io(arrival);
        ar.io(blockedAt);
        ar.io(childrenOutstanding);
        ar.io(localDone);
        ar.io(fannedOut);
        ar.io(waiting);
    }
};

/**
 * Compacting id-addressed arena of live RPC-tree nodes.
 *
 * Dense storage (erase swaps the last element in) keeps the resident
 * footprint proportional to the live population; the side map resolves
 * stable ids to slots. References returned by find()/create() are
 * invalidated by any create/erase — re-resolve across mutations.
 */
class NodeArena
{
  public:
    RpcNode &create(std::uint64_t id);
    RpcNode *find(std::uint64_t id);
    void erase(std::uint64_t id);

    std::size_t size() const { return nodes_.size(); }
    std::size_t peak() const { return peak_; }
    const std::vector<RpcNode> &nodes() const { return nodes_; }

    std::uint64_t footprintBytes() const;

    /** Canonical (id-sorted) save; restore rebuilds the slot map. */
    void serialize(hh::snap::Archive &ar);

  private:
    std::vector<RpcNode> nodes_;
    std::unordered_map<std::uint64_t, std::size_t> slot_;
    std::size_t peak_ = 0;
};

/**
 * A cross-server message awaiting the fleet coordinator's exchange.
 * `Packet` does not carry the destination server — routing is the
 * coordinator's job — so the outbox entry does.
 */
struct OutMsg
{
    unsigned dstServer = 0;
    hh::net::Packet pkt;
    hh::sim::Cycles sendTime = 0;
};

/**
 * The per-server engine. Implements the `GraphHooks` seam; owned by
 * `FleetSim`, which installs it with `ServerSim::setGraphHooks`.
 */
class RpcEngine : public hh::cluster::GraphHooks
{
  public:
    /**
     * @param spec        The (validated) graph topology.
     * @param routing     Shared tier→(server, vm) slot table.
     * @param serverIndex This server's fleet index.
     * @param server      The hosting server simulation.
     * @param cfg         Its system configuration (budgets, warmup).
     */
    RpcEngine(const ServiceGraphSpec &spec,
              std::shared_ptr<const GraphRouting> routing,
              unsigned serverIndex, hh::cluster::ServerSim &server,
              const hh::cluster::SystemConfig &cfg);

    /** @name GraphHooks (called by ServerSim) @{ */
    bool admitRoot(std::uint32_t vm) override;
    void onRootArrival(std::uint32_t vm, std::uint64_t reqId) override;
    bool onCallSite(std::uint64_t reqId) override;
    void onComplete(std::uint64_t reqId) override;
    void onGraphPacket(const hh::net::Packet &pkt) override;
    void serialize(hh::snap::Archive &ar) override;
    std::optional<std::string> auditInvariant() override;
    std::uint64_t footprintBytes() const override;
    /** @} */

    /** @name Fleet coordinator interface @{ */

    /** Drain the cross-server outbox (exchanged at barriers). */
    std::vector<OutMsg> takeOutbox();

    /** Every front-tier root on this server arrived and resolved. */
    bool rootsFinished() const
    {
        return roots_done_ + roots_shed_ >= roots_expected_;
    }

    std::size_t liveNodes() const { return arena_.size(); }
    std::size_t peakLiveNodes() const { return arena_.peak(); }
    /** @} */

    /** @name Statistics @{ */
    std::uint64_t rootsDone() const { return roots_done_; }
    std::uint64_t rootsShed() const { return roots_shed_; }
    std::uint64_t wireSent() const { return wire_sent_; }
    const std::vector<std::uint64_t> &tierSheds() const
    {
        return tier_sheds_;
    }
    const std::vector<std::uint64_t> &tierNodes() const
    {
        return tier_nodes_;
    }
    const std::vector<hh::stats::LogHistogram> &tierHists() const
    {
        return tier_hist_us_;
    }
    const hh::stats::LogHistogram &e2eHist() const
    {
        return e2e_hist_us_;
    }
    /** @} */

  private:
    /** Issue all child RPCs of @p id into the next tier. */
    void fanOut(std::uint64_t id);

    /** Finish @p id if locally done with a drained subtree. */
    void maybeFinishNode(std::uint64_t id);

    /** Route a packet: same-server loops back, else to the outbox. */
    void send(unsigned dstServer, const hh::net::Packet &pkt);

    /** Immediate GraphDone for a shed child (tree still drains). */
    void ackShed(const hh::net::Packet &call);

    const ServiceGraphSpec spec_;
    std::shared_ptr<const GraphRouting> routing_;
    const unsigned self_;
    hh::cluster::ServerSim &server_;

    NodeArena arena_;
    std::uint64_t next_node_id_ = 1;
    std::unordered_map<std::uint64_t, std::uint64_t> req_to_node_;

    std::vector<std::uint32_t> vm_live_;      //!< Live nodes per VM.
    std::vector<std::uint64_t> vm_roots_done_; //!< Warmup gating.

    std::uint64_t roots_expected_ = 0;
    std::uint64_t roots_done_ = 0;
    std::uint64_t roots_shed_ = 0;
    unsigned warmup_skip_ = 0;

    std::vector<std::uint64_t> tier_sheds_; //!< Shed work per tier.
    std::vector<std::uint64_t> tier_nodes_; //!< Finished nodes per tier.
    std::vector<hh::stats::LogHistogram> tier_hist_us_;
    hh::stats::LogHistogram e2e_hist_us_;

    std::uint64_t wire_sent_ = 0; //!< Cross-server messages issued.
    std::vector<OutMsg> outbox_;
};

} // namespace hh::svc

#endif // HH_SVC_RPC_ENGINE_H
