/**
 * @file
 * Fleet coordinator: N communicating servers under one service graph.
 *
 * Unlike the classic cluster (8 *independent* servers), a graph fleet
 * exchanges RPC packets across servers, so the per-server
 * discrete-event simulations must agree on time. The coordinator uses
 * conservative windows: with a one-way cross-server RPC latency of L
 * cycles, a message sent at time t cannot affect any server before
 * t + L, so every server may safely advance to B = (earliest pending
 * event anywhere) + L without seeing messages from the others. At the
 * barrier the coordinator drains every engine's outbox and schedules
 * the arrivals (all at times >= B) into the destination simulations,
 * then opens the next window. Within a window servers run in parallel
 * (`runParallel`); the exchange is sequential in server order, so the
 * whole run is bit-identical for any worker count.
 *
 * Checkpoints are taken only at barriers: outboxes are empty by
 * construction and every cross-server message still in flight is a
 * `kGraphWireArrive` event already resident in its *destination*
 * server's queue — the per-server snapshot machinery captures it like
 * any other event. Resuming reconstructs the fleet, restores the
 * blobs, and recomputes the identical barrier sequence from the
 * restored queues.
 */

#ifndef HH_SVC_FLEET_H
#define HH_SVC_FLEET_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/server.h"
#include "cluster/system_config.h"
#include "svc/graph_spec.h"
#include "svc/rpc_engine.h"

namespace hh::svc {

/** Per-tier aggregate of one fleet run. */
struct TierResult
{
    std::string service;
    std::uint64_t nodes = 0; //!< Tree nodes finished in this tier.
    std::uint64_t sheds = 0; //!< Work shed by saturated tier VMs.
    double p50Us = 0;        //!< Node latency (arrival -> drained).
    double p99Us = 0;
};

/** Aggregated results of one fleet run. */
struct FleetResults
{
    std::string graph;
    unsigned servers = 0;
    unsigned depth = 0;

    std::uint64_t rootsDone = 0;
    std::uint64_t rootsShed = 0;
    std::vector<TierResult> tiers;

    /** End-to-end (tree-root, post-warmup) latency. */
    std::uint64_t e2eCount = 0;
    double e2eP50Us = 0;
    double e2eP99Us = 0;

    /**
     * Fleet P99 over the servers' merged post-warmup request-latency
     * buckets (the same `ServerTelemetry::latencyHist` plane the
     * TelemetryHub aggregates) — in graph mode these taps carry the
     * end-to-end tree latencies recorded at the front tier.
     */
    double fleetP99Us = 0;

    /** @name Harvesting economics (summed across servers) @{ */
    std::uint64_t batchTasks = 0;
    double batchThroughput = 0; //!< tasks/s, summed.
    std::uint64_t harvestedCycles = 0;
    std::uint64_t coreLoans = 0;
    std::uint64_t coreReclaims = 0;
    double avgUtilization = 0; //!< Mean across servers.
    /** @} */

    double elapsedSec = 0;       //!< Simulated seconds (max server).
    std::uint64_t wireMessages = 0; //!< Cross-server packets sent.

    /** @name Auditing (non-zero only when auditing is enabled) @{ */
    std::uint64_t auditsRun = 0;       //!< Summed across servers.
    std::uint64_t auditViolations = 0; //!< Summed (bug if != 0).
    /** @} */

    /** @name Run-shape diagnostics (excluded from serialized()) @{ */
    /** Synchronization windows executed — a *whole-run* count, so a
     *  resumed run (which replays only the tail) legitimately differs. */
    std::uint64_t windows = 0;
    std::uint64_t maxPeakLiveNodes = 0;  //!< Max over servers.
    std::uint64_t maxFootprintBytes = 0; //!< Max engine footprint.
    /** @} */

    /**
     * Canonical byte-exact serialization (hexfloat) of every
     * deterministic field; two runs are bit-identical iff equal.
     */
    std::string serialized() const;
};

/**
 * One fleet simulation. Construction builds the servers (graph-mode
 * plans from `buildGraphPlacement`) and installs one `RpcEngine`
 * each; `cfg.graphSpec` is overwritten with the spec's canonical text
 * so the checkpoint configFingerprint covers the topology.
 */
class FleetSim
{
  public:
    FleetSim(const ServiceGraphSpec &spec,
             const hh::cluster::SystemConfig &cfg, std::uint64_t seed);
    ~FleetSim();

    FleetSim(const FleetSim &) = delete;
    FleetSim &operator=(const FleetSim &) = delete;

    /** Seed initial events on every server. Not after resume(). */
    void start();

    /**
     * Run synchronization windows until every tree has drained or the
     * barrier reaches @p until (0 = no bound).
     *
     * @param workers Window-phase thread-pool workers (0 = auto).
     */
    void advanceWindows(unsigned workers, hh::sim::Cycles until = 0);

    /** Every root resolved and no tree node is live anywhere. */
    bool drained() const;

    /** The last conservative-window barrier reached. */
    hh::sim::Cycles barrier() const { return barrier_; }

    /** Live tree nodes across all servers (mid-run state probes). */
    std::uint64_t totalLiveNodes() const;

    /** Declare the end time, drain tails, and aggregate results. */
    FleetResults finish(unsigned workers);

    /** Save every server to @p path (only legal at a barrier). */
    bool save(const std::string &path, std::string *error) const;

    /**
     * Restore a fleet saved by save(): validates the fingerprint
     * (including the graph topology) and reloads every server blob.
     * Call instead of start(); then advanceWindows() + finish() as
     * usual.
     */
    bool resume(const std::string &path, std::string *error);

    /** The per-server engines, in server order (tests). */
    const std::vector<std::unique_ptr<RpcEngine>> &engines() const
    {
        return engines_;
    }

  private:
    ServiceGraphSpec spec_;
    hh::cluster::SystemConfig cfg_;
    std::uint64_t seed_;
    hh::sim::Cycles rpc_latency_ = 0;

    std::vector<std::unique_ptr<hh::cluster::ServerSim>> sims_;
    std::vector<std::unique_ptr<RpcEngine>> engines_;
    std::vector<std::string> batch_apps_;

    hh::sim::Cycles barrier_ = 0;
    std::uint64_t windows_ = 0;
};

/** Convenience: construct, start, drain, finish. */
FleetResults runFleet(const ServiceGraphSpec &spec,
                      const hh::cluster::SystemConfig &cfg,
                      std::uint64_t seed, unsigned workers);

/**
 * Run a fresh fleet to the first barrier at or after @p at (or until
 * drained, whichever comes first) and checkpoint it to @p path.
 */
bool checkpointFleetAt(const ServiceGraphSpec &spec,
                       const hh::cluster::SystemConfig &cfg,
                       std::uint64_t seed, unsigned workers,
                       hh::sim::Cycles at, const std::string &path,
                       std::string *error = nullptr);

/** Resume a checkpointFleetAt() file and run to completion. */
std::optional<FleetResults>
resumeFleet(const std::string &path, const ServiceGraphSpec &spec,
            const hh::cluster::SystemConfig &cfg, std::uint64_t seed,
            unsigned workers, std::string *error = nullptr);

} // namespace hh::svc

#endif // HH_SVC_FLEET_H
