#include "svc/rpc_engine.h"

#include <algorithm>

#include "sim/log.h"
#include "snapshot/archive.h"

namespace hh::svc {

using hh::sim::Cycles;

namespace {

/** SplitMix64-style mixer: deterministic, interleaving-independent. */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9E3779B97F4A7C15ULL * (b + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

RpcNode &
NodeArena::create(std::uint64_t id)
{
    if (slot_.count(id))
        hh::sim::panic("NodeArena: duplicate node id ", id);
    slot_[id] = nodes_.size();
    nodes_.emplace_back();
    nodes_.back().id = id;
    peak_ = std::max(peak_, nodes_.size());
    return nodes_.back();
}

RpcNode *
NodeArena::find(std::uint64_t id)
{
    const auto it = slot_.find(id);
    return it == slot_.end() ? nullptr : &nodes_[it->second];
}

void
NodeArena::erase(std::uint64_t id)
{
    const auto it = slot_.find(id);
    if (it == slot_.end())
        hh::sim::panic("NodeArena: erase of unknown node ", id);
    const std::size_t s = it->second;
    slot_.erase(it);
    if (s + 1 != nodes_.size()) {
        nodes_[s] = nodes_.back();
        slot_[nodes_[s].id] = s;
    }
    nodes_.pop_back();
}

std::uint64_t
NodeArena::footprintBytes() const
{
    // Dense storage plus a conservative per-entry estimate for the
    // slot map (bucket pointer + node with key, value and hash).
    return nodes_.capacity() * sizeof(RpcNode) +
           slot_.bucket_count() * sizeof(void *) +
           slot_.size() * (sizeof(std::uint64_t) * 2 +
                           sizeof(void *) * 2);
}

void
NodeArena::serialize(hh::snap::Archive &ar)
{
    // Canonical order: the dense vector's layout depends on the
    // erase history, so save sorted by id and rebuild on load.
    if (ar.saving()) {
        std::vector<RpcNode> sorted = nodes_;
        std::sort(sorted.begin(), sorted.end(),
                  [](const RpcNode &a, const RpcNode &b) {
                      return a.id < b.id;
                  });
        ar.io(sorted);
    } else {
        nodes_.clear();
        slot_.clear();
        ar.io(nodes_);
        for (std::size_t s = 0; s < nodes_.size(); ++s)
            slot_[nodes_[s].id] = s;
    }
    std::uint64_t peak = peak_;
    ar.io(peak);
    peak_ = static_cast<std::size_t>(peak);
}

RpcEngine::RpcEngine(const ServiceGraphSpec &spec,
                     std::shared_ptr<const GraphRouting> routing,
                     unsigned serverIndex,
                     hh::cluster::ServerSim &server,
                     const hh::cluster::SystemConfig &cfg)
    : spec_(spec), routing_(std::move(routing)), self_(serverIndex),
      server_(server)
{
    const auto &plan = server_.graphPlan();
    if (!plan.enabled)
        hh::sim::panic("RpcEngine: server ", self_,
                       " has no graph plan");
    vm_live_.assign(plan.vms.size(), 0);
    vm_roots_done_.assign(plan.vms.size(), 0);
    unsigned fronts = 0;
    for (const auto &gp : plan.vms)
        fronts += gp.used && gp.front ? 1 : 0;
    roots_expected_ =
        static_cast<std::uint64_t>(fronts) * cfg.requestsPerVm;
    warmup_skip_ = static_cast<unsigned>(
        cfg.warmupFraction * static_cast<double>(cfg.requestsPerVm));

    tier_sheds_.assign(spec_.depth(), 0);
    tier_nodes_.assign(spec_.depth(), 0);
    tier_hist_us_.assign(spec_.depth(), hh::stats::LogHistogram());
}

bool
RpcEngine::admitRoot(std::uint32_t vm)
{
    if (vm_live_[vm] >= spec_.maxLiveNodesPerVm) {
        // Accounted shed: the arrival budget is spent either way, so
        // rootsFinished() still converges.
        ++roots_shed_;
        ++tier_sheds_[0];
        return false;
    }
    return true;
}

void
RpcEngine::onRootArrival(std::uint32_t vm, std::uint64_t reqId)
{
    const std::uint64_t id = next_node_id_++;
    RpcNode &n = arena_.create(id);
    n.vm = vm;
    n.tier = 0;
    // Root salt: a pure function of (server, node id) — no RNG, so
    // the whole tree's routing is fixed at the root's creation.
    n.salt = mix(mix(0x5EAF00D5EAF00D5EULL, self_), id);
    n.parentServer = RpcNode::kNoParent;
    n.reqId = reqId;
    n.arrival = server_.now();
    ++vm_live_[vm];
    req_to_node_[reqId] = id;
}

bool
RpcEngine::onCallSite(std::uint64_t reqId)
{
    const auto it = req_to_node_.find(reqId);
    if (it == req_to_node_.end())
        hh::sim::panic("RpcEngine: call site of unknown request ",
                       reqId);
    RpcNode *n = arena_.find(it->second);
    if (!n)
        hh::sim::panic("RpcEngine: request ", reqId,
                       " maps to dead node");
    const TierSpec &tier = spec_.tiers[n->tier];
    if (!tier.sync || tier.fanout == 0 || n->fannedOut)
        return false; // let the synthetic backend model this call
    n->waiting = true;
    n->blockedAt = server_.now();
    fanOut(n->id);
    return true;
}

void
RpcEngine::onComplete(std::uint64_t reqId)
{
    const auto it = req_to_node_.find(reqId);
    if (it == req_to_node_.end())
        hh::sim::panic("RpcEngine: completion of unknown request ",
                       reqId);
    const std::uint64_t id = it->second;
    req_to_node_.erase(it);
    RpcNode *n = arena_.find(id);
    if (!n)
        hh::sim::panic("RpcEngine: request ", reqId,
                       " completed on dead node");
    n->localDone = true;
    n->reqId = 0;
    // Async tiers (and sync invocations whose plan happened to have
    // no I/O call site) fan out at completion instead.
    if (!n->fannedOut && spec_.tiers[n->tier].fanout > 0)
        fanOut(id);
    maybeFinishNode(id);
}

void
RpcEngine::onGraphPacket(const hh::net::Packet &pkt)
{
    using hh::net::PacketKind;
    if (pkt.kind == PacketKind::GraphCall) {
        const std::uint32_t vm = pkt.dstVm;
        if (vm >= vm_live_.size())
            hh::sim::panic("RpcEngine: GraphCall to bad vm ", vm);
        if (vm_live_[vm] >= spec_.maxLiveNodesPerVm) {
            // Bounded queue: shed the child but keep the tree
            // correct — the parent gets its GraphDone immediately.
            ++tier_sheds_[pkt.tier];
            ackShed(pkt);
            return;
        }
        const std::uint64_t reqId = server_.graphInjectRequest(vm);
        const std::uint64_t id = next_node_id_++;
        RpcNode &n = arena_.create(id);
        n.vm = vm;
        n.tier = pkt.tier;
        n.salt = pkt.salt;
        n.parentServer = pkt.srcServer;
        n.parentVm = pkt.srcVm;
        n.parentNode = pkt.nodeRef;
        n.reqId = reqId;
        n.arrival = server_.now();
        ++vm_live_[vm];
        req_to_node_[reqId] = id;
        return;
    }
    if (pkt.kind == PacketKind::GraphDone) {
        RpcNode *n = arena_.find(pkt.nodeRef);
        if (!n)
            hh::sim::panic("RpcEngine: GraphDone for unknown node ",
                           pkt.nodeRef);
        if (n->childrenOutstanding == 0)
            hh::sim::panic("RpcEngine: GraphDone underflow on node ",
                           pkt.nodeRef);
        --n->childrenOutstanding;
        if (n->childrenOutstanding > 0)
            return;
        if (n->waiting) {
            // Subtree drained: resume the parked invocation with the
            // real wait attributed as its I/O time.
            n->waiting = false;
            server_.graphUnblock(n->vm, n->reqId, n->blockedAt);
        } else {
            maybeFinishNode(n->id);
        }
        return;
    }
    hh::sim::panic("RpcEngine: unexpected packet kind");
}

void
RpcEngine::fanOut(std::uint64_t id)
{
    RpcNode *n = arena_.find(id);
    const std::uint32_t t = n->tier;
    const unsigned fanout = spec_.tiers[t].fanout;
    const auto &slots = routing_->tierSlots[t + 1];
    n->childrenOutstanding = fanout;
    n->fannedOut = true;
    // Copy the routing inputs out of the arena: send() may loop back
    // through the NIC, and arena references must not be assumed
    // stable across anything that can re-enter the engine.
    const std::uint64_t salt = n->salt;
    const std::uint32_t vm = n->vm;
    const Cycles now = server_.now();
    for (unsigned j = 0; j < fanout; ++j) {
        const auto [dstServer, dstVm] =
            slots[mix(salt, j) % slots.size()];
        hh::net::Packet pkt;
        pkt.kind = hh::net::PacketKind::GraphCall;
        pkt.dstVm = dstVm;
        pkt.srcServer = self_;
        pkt.srcVm = vm;
        pkt.nodeRef = id;
        pkt.salt = mix(salt ^ 0xC2B2AE3D27D4EB4FULL, j);
        pkt.tier = t + 1;
        pkt.arrival = now;
        send(dstServer, pkt);
    }
}

void
RpcEngine::maybeFinishNode(std::uint64_t id)
{
    RpcNode *n = arena_.find(id);
    if (!n)
        hh::sim::panic("RpcEngine: finish of unknown node ", id);
    if (!n->localDone || n->waiting || n->childrenOutstanding > 0)
        return;

    const std::uint32_t vm = n->vm;
    const std::uint32_t tier = n->tier;
    const bool root = n->parentServer == RpcNode::kNoParent;
    const double us =
        hh::sim::cyclesToUs(server_.now() - n->arrival);
    tier_hist_us_[tier].add(us);
    ++tier_nodes_[tier];

    if (root) {
        ++roots_done_;
        ++vm_roots_done_[vm];
        // Same warmup gate as the classic per-request stats: early
        // roots complete but do not pollute the latency record.
        if (vm_roots_done_[vm] > warmup_skip_) {
            e2e_hist_us_.add(us);
            server_.graphRecordE2e(us);
        }
    } else {
        hh::net::Packet pkt;
        pkt.kind = hh::net::PacketKind::GraphDone;
        pkt.dstVm = n->parentVm;
        pkt.srcServer = self_;
        pkt.srcVm = vm;
        pkt.nodeRef = n->parentNode;
        pkt.salt = n->salt;
        pkt.tier = tier;
        pkt.arrival = server_.now();
        send(n->parentServer, pkt);
    }
    --vm_live_[vm];
    arena_.erase(id);
}

void
RpcEngine::send(unsigned dstServer, const hh::net::Packet &pkt)
{
    if (dstServer == self_) {
        server_.graphLoopback(pkt);
        return;
    }
    ++wire_sent_;
    outbox_.push_back(OutMsg{dstServer, pkt, server_.now()});
}

void
RpcEngine::ackShed(const hh::net::Packet &call)
{
    hh::net::Packet done;
    done.kind = hh::net::PacketKind::GraphDone;
    done.dstVm = call.srcVm;
    done.srcServer = self_;
    done.srcVm = call.dstVm;
    done.nodeRef = call.nodeRef;
    done.salt = call.salt;
    done.tier = call.tier;
    done.arrival = server_.now();
    send(call.srcServer, done);
}

std::vector<OutMsg>
RpcEngine::takeOutbox()
{
    std::vector<OutMsg> out;
    out.swap(outbox_);
    return out;
}

void
RpcEngine::serialize(hh::snap::Archive &ar)
{
    arena_.serialize(ar);
    ar.io(next_node_id_);
    ar.io(req_to_node_);
    ar.io(vm_live_);
    ar.io(vm_roots_done_);
    ar.io(roots_expected_);
    ar.io(roots_done_);
    ar.io(roots_shed_);
    ar.io(tier_sheds_);
    ar.io(tier_nodes_);
    for (auto &h : tier_hist_us_)
        h.serialize(ar);
    e2e_hist_us_.serialize(ar);
    ar.io(wire_sent_);
    // Checkpoints happen only at fleet barriers, where every outbox
    // has been exchanged; a non-empty one here is a coordinator bug.
    std::uint64_t pending = outbox_.size();
    ar.io(pending);
    if (pending != 0)
        ar.fail("RpcEngine: outbox not empty at snapshot");
}

std::optional<std::string>
RpcEngine::auditInvariant()
{
    std::vector<std::uint32_t> live(vm_live_.size(), 0);
    for (const RpcNode &n : arena_.nodes()) {
        if (n.vm >= live.size())
            return "svc: node " + std::to_string(n.id) +
                   " on out-of-range vm";
        ++live[n.vm];
        if (n.childrenOutstanding >
            spec_.tiers[n.tier].fanout)
            return "svc: node " + std::to_string(n.id) +
                   " has more outstanding children than its fanout";
        if (n.waiting) {
            if (n.reqId == 0 || !server_.requestBlocked(n.reqId))
                return "svc: node " + std::to_string(n.id) +
                       " waits on children but its request is not "
                       "blocked";
        }
    }
    for (std::size_t vm = 0; vm < live.size(); ++vm) {
        if (live[vm] != vm_live_[vm])
            return "svc: vm " + std::to_string(vm) + " live-count " +
                   std::to_string(vm_live_[vm]) +
                   " != arena population " + std::to_string(live[vm]);
    }
    for (const auto &[reqId, id] : req_to_node_) {
        RpcNode *n = arena_.find(id);
        if (!n || n->reqId != reqId)
            return "svc: request " + std::to_string(reqId) +
                   " maps to a dead or mismatched node";
    }
    return std::nullopt;
}

std::uint64_t
RpcEngine::footprintBytes() const
{
    std::uint64_t bytes = arena_.footprintBytes();
    bytes += req_to_node_.size() *
             (sizeof(std::uint64_t) * 2 + sizeof(void *) * 2);
    bytes += vm_live_.capacity() * sizeof(std::uint32_t);
    bytes += vm_roots_done_.capacity() * sizeof(std::uint64_t);
    bytes += (tier_sheds_.capacity() + tier_nodes_.capacity()) *
             sizeof(std::uint64_t);
    for (const auto &h : tier_hist_us_)
        bytes += h.numBuckets() * sizeof(std::uint64_t);
    bytes += e2e_hist_us_.numBuckets() * sizeof(std::uint64_t);
    bytes += outbox_.capacity() * sizeof(OutMsg);
    return bytes;
}

} // namespace hh::svc
