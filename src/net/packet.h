/**
 * @file
 * Network request packets as seen by the NIC.
 *
 * A microservice request arrives as a packet naming the destination
 * VM (every VM has its own network address) plus the function to
 * invoke and its input payload; the NIC deposits the payload into the
 * LLC via DDIO and hands a descriptor to the scheduler (§4.1.3).
 */

#ifndef HH_NET_PACKET_H
#define HH_NET_PACKET_H

#include <cstdint>

#include "sim/time.h"
#include "snapshot/tag.h"

namespace hh::net {

/** What a packet means to the scheduling layer. */
enum class PacketKind
{
    NewRequest,  //!< A fresh microservice invocation.
    IoResponse,  //!< Backend response unblocking an earlier request.
};

/**
 * One inbound packet.
 */
struct Packet
{
    PacketKind kind = PacketKind::NewRequest;
    std::uint32_t dstVm = 0;        //!< Destination VM id.
    std::uint64_t requestId = 0;    //!< Request (or blocked-request) id.
    std::uint32_t payloadBytes = 512; //!< Message payload size.
    hh::sim::Cycles arrival = 0;    //!< Wire arrival time at the NIC.

    /** Snap-tag for an in-flight NIC delivery of this packet. */
    hh::snap::SnapTag
    deliveryTag() const
    {
        return hh::snap::tag(hh::snap::SnapTag::kNicDeliver,
                             static_cast<std::uint64_t>(kind), dstVm,
                             requestId, payloadBytes, arrival);
    }

    /** Rebuild the packet a kNicDeliver tag describes. */
    static Packet
    fromDeliveryTag(const hh::snap::SnapTag &t)
    {
        Packet pkt;
        pkt.kind = static_cast<PacketKind>(t.a);
        pkt.dstVm = static_cast<std::uint32_t>(t.b);
        pkt.requestId = t.c;
        pkt.payloadBytes = static_cast<std::uint32_t>(t.d);
        pkt.arrival = t.e;
        return pkt;
    }
};

} // namespace hh::net

#endif // HH_NET_PACKET_H
