/**
 * @file
 * Network request packets as seen by the NIC.
 *
 * A microservice request arrives as a packet naming the destination
 * VM (every VM has its own network address) plus the function to
 * invoke and its input payload; the NIC deposits the payload into the
 * LLC via DDIO and hands a descriptor to the scheduler (§4.1.3).
 *
 * Service-graph workloads (src/svc/) add two multi-hop kinds on top
 * of the single-hop request/response pair: `GraphCall` carries a
 * child RPC of an in-flight request tree to another server's tier VM,
 * and `GraphDone` reports a drained subtree back to the parent node.
 * Both carry a reply-to triple (srcServer, srcVm, nodeRef) plus the
 * deterministic routing salt of the subtree, so a packet caught
 * in flight by a checkpoint can be re-armed without any engine-side
 * lookup — the tag *is* the packet.
 */

#ifndef HH_NET_PACKET_H
#define HH_NET_PACKET_H

#include <cstdint>

#include "sim/time.h"
#include "snapshot/tag.h"

namespace hh::net {

/** What a packet means to the scheduling layer. */
enum class PacketKind
{
    NewRequest,  //!< A fresh microservice invocation.
    IoResponse,  //!< Backend response unblocking an earlier request.
    GraphCall,   //!< Child RPC of a service-graph request tree.
    GraphDone,   //!< Subtree-drained notification to the parent node.
};

/**
 * One inbound packet.
 */
struct Packet
{
    PacketKind kind = PacketKind::NewRequest;
    std::uint32_t dstVm = 0;        //!< Destination VM id.
    std::uint64_t requestId = 0;    //!< Request (or blocked-request) id.
    std::uint32_t payloadBytes = 512; //!< Message payload size.
    hh::sim::Cycles arrival = 0;    //!< Wire arrival time at the NIC.

    /** @name Multi-hop RPC fields (GraphCall / GraphDone only) @{ */
    std::uint32_t srcServer = 0; //!< Originating server index.
    std::uint32_t srcVm = 0;     //!< Originating VM on that server.
    std::uint64_t nodeRef = 0;   //!< Parent RPC-tree node id.
    std::uint64_t salt = 0;      //!< Deterministic child-routing salt.
    std::uint32_t tier = 0;      //!< Destination (GraphCall) / source tier.
    /** @} */

    /**
     * Pack the scalar header fields into one tag word. Bit budget:
     * kind:4 | dstVm:10 | srcVm:10 | tier:8 | srcServer:16 |
     * payloadBytes:16 — caps the fleet at 65536 servers, 1024 VMs per
     * server and 64 KiB payloads, all far beyond the model's shapes.
     */
    std::uint64_t
    packHeader() const
    {
        return (static_cast<std::uint64_t>(kind) & 0xF) |
               (static_cast<std::uint64_t>(dstVm & 0x3FF) << 4) |
               (static_cast<std::uint64_t>(srcVm & 0x3FF) << 14) |
               (static_cast<std::uint64_t>(tier & 0xFF) << 24) |
               (static_cast<std::uint64_t>(srcServer & 0xFFFF) << 32) |
               (static_cast<std::uint64_t>(payloadBytes & 0xFFFF)
                << 48);
    }

    /** Rebuild every header field packHeader() covered. */
    void
    unpackHeader(std::uint64_t h)
    {
        kind = static_cast<PacketKind>(h & 0xF);
        dstVm = static_cast<std::uint32_t>((h >> 4) & 0x3FF);
        srcVm = static_cast<std::uint32_t>((h >> 14) & 0x3FF);
        tier = static_cast<std::uint32_t>((h >> 24) & 0xFF);
        srcServer = static_cast<std::uint32_t>((h >> 32) & 0xFFFF);
        payloadBytes = static_cast<std::uint32_t>((h >> 48) & 0xFFFF);
    }

    /** Snap-tag for an in-flight NIC delivery of this packet. */
    hh::snap::SnapTag
    deliveryTag() const
    {
        return hh::snap::tag(hh::snap::SnapTag::kNicDeliver,
                             packHeader(), requestId, nodeRef, salt,
                             arrival);
    }

    /**
     * Snap-tag for a cross-server wire arrival still in flight at a
     * fleet barrier (the receiving NIC has not seen it yet — re-arm
     * replays `Nic::receive`, not just the deferred handler call).
     */
    hh::snap::SnapTag
    wireTag() const
    {
        return hh::snap::tag(hh::snap::SnapTag::kGraphWireArrive,
                             packHeader(), requestId, nodeRef, salt,
                             arrival);
    }

    /** Rebuild the packet a kNicDeliver/kGraphWireArrive tag holds. */
    static Packet
    fromDeliveryTag(const hh::snap::SnapTag &t)
    {
        Packet pkt;
        pkt.unpackHeader(t.a);
        pkt.requestId = t.b;
        pkt.nodeRef = t.c;
        pkt.salt = t.d;
        pkt.arrival = t.e;
        return pkt;
    }
};

} // namespace hh::net

#endif // HH_NET_PACKET_H
