/**
 * @file
 * Inter-server network fabric (Table 1: 1 us round trip, 200 GB/s).
 *
 * Microservices on a server only talk to backends (Memcached, Redis,
 * MongoDB) on dedicated servers; the fabric supplies the wire latency
 * for those synchronous RPCs.
 */

#ifndef HH_NET_FABRIC_H
#define HH_NET_FABRIC_H

#include <cstdint>

#include "sim/time.h"

namespace hh::net {

/** Fabric parameters. */
struct FabricConfig
{
    /** Round-trip latency between servers. */
    hh::sim::Cycles roundTrip = hh::sim::usToCycles(1.0);
    /** Link bandwidth in bytes per cycle (200 GB/s at 3 GHz = 66.7). */
    double bytesPerCycle = 66.7;
};

/**
 * Latency model for cross-server messages.
 */
class Fabric
{
  public:
    explicit Fabric(const FabricConfig &cfg = FabricConfig{})
        : cfg_(cfg)
    {}

    /** One-way latency for a message of @p bytes. */
    hh::sim::Cycles oneWay(std::uint32_t bytes) const;

    /** Round-trip latency for a request/response of @p bytes each. */
    hh::sim::Cycles roundTrip(std::uint32_t bytes) const;

    const FabricConfig &config() const { return cfg_; }

  private:
    FabricConfig cfg_;
};

} // namespace hh::net

#endif // HH_NET_FABRIC_H
