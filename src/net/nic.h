/**
 * @file
 * Server NIC model with DDIO payload deposit.
 *
 * On packet arrival the NIC (1) deposits the message payload into the
 * destination VM's LLC partition via DDIO and (2) looks up which
 * scheduler (software queue or HardHarvest Queue Manager) serves the
 * destination VM and hands it a descriptor (§4.1.3 path events 1-3).
 * Both steps cost a fixed NIC processing latency.
 */

#ifndef HH_NET_NIC_H
#define HH_NET_NIC_H

#include <cstdint>
#include <functional>
#include <string>

#include "cache/set_assoc.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace hh::net {

/**
 * The per-server NIC.
 */
class Nic
{
  public:
    /** Scheduler-side delivery callback. */
    using Handler = std::function<void(const Packet &)>;
    /** Lookup from VM id to that VM's LLC partition (may be null). */
    using LlcLookup = std::function<hh::cache::SetAssocArray *(
        std::uint32_t vm)>;

    /**
     * @param sim        Simulation driver.
     * @param processing Per-packet NIC processing latency.
     */
    Nic(hh::sim::Simulator &sim,
        hh::sim::Cycles processing = hh::sim::nsToCycles(100));

    /** Register the scheduler delivery callback. */
    void setHandler(Handler handler) { handler_ = std::move(handler); }

    /** Register the DDIO LLC-partition lookup. */
    void setLlcLookup(LlcLookup lookup) { llc_ = std::move(lookup); }

    /**
     * Accept a packet off the wire at the current simulated time.
     * The handler runs after the NIC processing latency.
     */
    void receive(Packet pkt);

    /** Packets accepted so far. */
    std::uint64_t packetsReceived() const { return packets_; }

    /** Payload lines DDIO-deposited so far. */
    std::uint64_t linesDeposited() const { return lines_deposited_; }

    /** Register "<prefix>.packets" and "<prefix>.lines_deposited". */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix);

    /**
     * Re-arm hook: the delivery callback of a restored kNicDeliver
     * event. The DDIO deposit already happened before the snapshot
     * (receive() performs it synchronously), so only the deferred
     * handler invocation is rebuilt.
     */
    hh::sim::Simulator::Callback
    rearmDelivery(const Packet &pkt)
    {
        return [this, pkt] { handler_(pkt); };
    }

    /** Save/restore the NIC counters. */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(packets_);
        ar.io(lines_deposited_);
    }

  private:
    void depositPayload(const Packet &pkt);

    hh::sim::Simulator &sim_;
    hh::sim::Cycles processing_;
    Handler handler_;
    LlcLookup llc_;
    std::uint64_t packets_ = 0;
    std::uint64_t lines_deposited_ = 0;
};

} // namespace hh::net

#endif // HH_NET_NIC_H
