#include "net/fabric.h"

#include <cmath>

namespace hh::net {

hh::sim::Cycles
Fabric::oneWay(std::uint32_t bytes) const
{
    const auto serialization = static_cast<hh::sim::Cycles>(
        std::ceil(static_cast<double>(bytes) / cfg_.bytesPerCycle));
    return cfg_.roundTrip / 2 + serialization;
}

hh::sim::Cycles
Fabric::roundTrip(std::uint32_t bytes) const
{
    return 2 * oneWay(bytes);
}

} // namespace hh::net
