#include "net/nic.h"

#include "cache/hierarchy.h"
#include "sim/log.h"
#include "stats/registry.h"

namespace hh::net {

Nic::Nic(hh::sim::Simulator &sim, hh::sim::Cycles processing)
    : sim_(sim), processing_(processing)
{
}

void
Nic::depositPayload(const Packet &pkt)
{
    if (!llc_)
        return;
    hh::cache::SetAssocArray *part = llc_(pkt.dstVm);
    if (!part)
        return;
    // DDIO writes the payload lines into the VM's LLC partition. We
    // key payload lines off the request id so the core's subsequent
    // reads of the message hit in the LLC.
    const std::uint32_t lines =
        (pkt.payloadBytes + hh::cache::kLineBytes - 1) /
        hh::cache::kLineBytes;
    // Payload lines live in a dedicated key region per request.
    const hh::cache::Addr base =
        (hh::cache::Addr{0xDD10} << 48) | (pkt.requestId << 8);
    for (std::uint32_t i = 0; i < lines; ++i) {
        part->access(base + i, /*shared=*/false);
        ++lines_deposited_;
    }
}

void
Nic::receive(Packet pkt)
{
    ++packets_;
    pkt.arrival = sim_.now();
    depositPayload(pkt);
    if (!handler_)
        hh::sim::panic("Nic: no handler registered");
    sim_.schedule(processing_, pkt.deliveryTag(),
                  [this, pkt] { handler_(pkt); });
}

void
Nic::registerMetrics(hh::stats::MetricRegistry &reg,
                     const std::string &prefix)
{
    reg.registerCounter(prefix + ".packets", packets_);
    reg.registerCounter(prefix + ".lines_deposited", lines_deposited_);
}

} // namespace hh::net
