#include "stats/observation_view.h"

#include <algorithm>

namespace hh::stats {

namespace {

/** counts[i] - prev[i] with an implicit all-zero previous vector. */
std::vector<std::uint64_t>
bucketDelta(const std::vector<std::uint64_t> &cum,
            const std::vector<std::uint64_t> &prev)
{
    std::vector<std::uint64_t> d(cum.size(), 0);
    for (std::size_t i = 0; i < cum.size(); ++i)
        d[i] = cum[i] - (i < prev.size() ? prev[i] : 0);
    return d;
}

} // namespace

void
VmCounters::serialize(hh::snap::Archive &ar)
{
    ar.io(busyCycles);
    ar.io(accesses);
    ar.io(misses);
    ar.io(validLines);
    ar.io(lineCapacity);
    ar.io(rqReady);
    ar.io(rqOccupancy);
    ar.io(rqOverflow);
    ar.io(coresBound);
    ar.io(coresLent);
    ar.io(pendingReclaims);
    ar.io(lentCycles);
    ar.io(reclaims);
    ar.io(reclaimCycles);
    ar.io(leasedWays);
    ar.io(leasedOccupancy);
}

void
ServerCounters::serialize(hh::snap::Archive &ar)
{
    ar.io(t);
    ar.io(vms);
    ar.io(batchLoaned);
    ar.io(batchNative);
    ar.io(reclaimHist);
    ar.io(latencyHist);
    ar.io(leaseGrants);
    ar.io(leaseRecalls);
    ar.io(leaseExpiries);
    ar.io(leaseFlushedLines);
    ar.io(leaseWayCycles);
}

void
VmFeatures::serialize(hh::snap::Archive &ar)
{
    ar.io(vm);
    ar.io(coreUtil);
    ar.io(mpki);
    ar.io(cacheOccupancy);
    ar.io(rqReady);
    ar.io(rqOccupancy);
    ar.io(rqOverflow);
    ar.io(coresBound);
    ar.io(coresLent);
    ar.io(pendingReclaims);
    ar.io(lentCycles);
    ar.io(reclaims);
    ar.io(reclaimCycles);
    ar.io(leasedWays);
    ar.io(leaseOccupancyDelta);
}

void
ObservationRow::serialize(hh::snap::Archive &ar)
{
    ar.io(epoch);
    ar.io(t);
    ar.io(vms);
    ar.io(batchLoanedDelta);
    ar.io(batchNativeDelta);
    ar.io(harvestedCyclesDelta);
    ar.io(reclaimsDelta);
    ar.io(reclaimHistDelta);
    ar.io(latencyHistDelta);
    ar.io(leaseGrantsDelta);
    ar.io(leaseRecallsDelta);
    ar.io(leaseExpiriesDelta);
    ar.io(leaseFlushedDelta);
    ar.io(leaseWayCyclesDelta);
}

void
ObservationView::record(const ServerCounters &cum)
{
    const std::uint64_t prevT = havePrev_ ? prev_.t : 0;
    // Zero-length-epoch guard. With a previous snapshot this is the
    // final-row call landing exactly on a tick. Without one it is a
    // record at t=0 — against the implicit all-zero baseline that
    // would be a bogus zero-length all-zero row, so instead the
    // snapshot becomes the explicit baseline (a stopped-before-first-
    // tick run then emits no rows, matching its zero epochs).
    if (cum.t == prevT) {
        prev_ = cum;
        havePrev_ = true;
        return;
    }
    const std::uint64_t epochCycles = cum.t - prevT;

    ObservationRow row;
    row.epoch = ++epoch_;
    row.t = cum.t;
    row.vms.reserve(cum.vms.size());
    for (std::size_t v = 0; v < cum.vms.size(); ++v) {
        const VmCounters &c = cum.vms[v];
        static const VmCounters kZero;
        const VmCounters &p =
            (havePrev_ && v < prev_.vms.size()) ? prev_.vms[v] : kZero;

        VmFeatures f;
        f.vm = static_cast<std::uint32_t>(v);
        const std::uint64_t busyDelta = c.busyCycles - p.busyCycles;
        if (c.coresBound > 0 && epochCycles > 0) {
            f.coreUtil = static_cast<double>(busyDelta) /
                         (static_cast<double>(epochCycles) *
                          static_cast<double>(c.coresBound));
            f.coreUtil = std::min(f.coreUtil, 1.0);
        }
        const std::uint64_t accDelta = c.accesses - p.accesses;
        const std::uint64_t missDelta = c.misses - p.misses;
        if (accDelta > 0)
            f.mpki = 1000.0 * static_cast<double>(missDelta) /
                     static_cast<double>(accDelta);
        if (c.lineCapacity > 0)
            f.cacheOccupancy = static_cast<double>(c.validLines) /
                               static_cast<double>(c.lineCapacity);
        f.rqReady = c.rqReady;
        f.rqOccupancy = c.rqOccupancy;
        f.rqOverflow = c.rqOverflow;
        f.coresBound = c.coresBound;
        f.coresLent = c.coresLent;
        f.pendingReclaims = c.pendingReclaims;
        f.lentCycles = c.lentCycles - p.lentCycles;
        f.reclaims = c.reclaims - p.reclaims;
        f.reclaimCycles = c.reclaimCycles - p.reclaimCycles;
        f.leasedWays = c.leasedWays;
        f.leaseOccupancyDelta =
            static_cast<std::int64_t>(c.leasedOccupancy) -
            static_cast<std::int64_t>(p.leasedOccupancy);
        row.harvestedCyclesDelta += f.lentCycles;
        row.reclaimsDelta += f.reclaims;
        row.vms.push_back(f);
    }
    row.batchLoanedDelta =
        cum.batchLoaned - (havePrev_ ? prev_.batchLoaned : 0);
    row.batchNativeDelta =
        cum.batchNative - (havePrev_ ? prev_.batchNative : 0);
    row.reclaimHistDelta = bucketDelta(
        cum.reclaimHist,
        havePrev_ ? prev_.reclaimHist : std::vector<std::uint64_t>{});
    row.latencyHistDelta = bucketDelta(
        cum.latencyHist,
        havePrev_ ? prev_.latencyHist : std::vector<std::uint64_t>{});
    row.leaseGrantsDelta =
        cum.leaseGrants - (havePrev_ ? prev_.leaseGrants : 0);
    row.leaseRecallsDelta =
        cum.leaseRecalls - (havePrev_ ? prev_.leaseRecalls : 0);
    row.leaseExpiriesDelta =
        cum.leaseExpiries - (havePrev_ ? prev_.leaseExpiries : 0);
    row.leaseFlushedDelta =
        cum.leaseFlushedLines -
        (havePrev_ ? prev_.leaseFlushedLines : 0);
    row.leaseWayCyclesDelta =
        cum.leaseWayCycles - (havePrev_ ? prev_.leaseWayCycles : 0);
    rows_.push_back(std::move(row));

    prev_ = cum;
    havePrev_ = true;
}

std::vector<ObservationRow>
ObservationView::takeRows()
{
    std::vector<ObservationRow> out = std::move(rows_);
    rows_.clear();
    return out;
}

void
ObservationView::serialize(hh::snap::Archive &ar)
{
    ar.io(havePrev_);
    ar.io(prev_);
    ar.io(epoch_);
    ar.io(rows_);
}

} // namespace hh::stats
