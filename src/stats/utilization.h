/**
 * @file
 * Time-weighted utilization tracking.
 *
 * Core utilization in the paper (Fig 2, Fig 3, Section 6.7) is the
 * fraction of wall-clock time a core spends executing work. The
 * tracker integrates busy time over simulated time, and can emit a
 * windowed time series like the 30-second-granularity Alibaba traces.
 */

#ifndef HH_STATS_UTILIZATION_H
#define HH_STATS_UTILIZATION_H

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "snapshot/archive.h"

namespace hh::stats {

/**
 * Integrates the busy time of one resource (e.g. a core).
 */
class UtilizationTracker
{
  public:
    /**
     * Mark the resource busy/idle at simulated time @p now.
     * Repeated calls with the same state are harmless.
     */
    void setBusy(hh::sim::Cycles now, bool busy);

    /**
     * Utilization over [start, now]: busyCycles / elapsed.
     *
     * @param now Current simulated time (>= last transition).
     */
    double utilization(hh::sim::Cycles now) const;

    /** Total busy cycles accumulated up to @p now. */
    hh::sim::Cycles busyCycles(hh::sim::Cycles now) const;

    /** Discard history and restart the measurement at @p now. */
    void reset(hh::sim::Cycles now);

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(start_);
        ar.io(accumulated_);
        ar.io(last_change_);
        ar.io(busy_);
    }

  private:
    hh::sim::Cycles start_ = 0;
    hh::sim::Cycles accumulated_ = 0;
    hh::sim::Cycles last_change_ = 0;
    bool busy_ = false;
};

/**
 * Windowed utilization series: average utilization per fixed window,
 * mirroring the 30 s granularity of the Alibaba traces.
 */
class UtilizationSeries
{
  public:
    /** @param window Window length in cycles (> 0). */
    explicit UtilizationSeries(hh::sim::Cycles window);

    /**
     * Add @p busy cycles of work ending at time @p now. The busy
     * interval is attributed to the window containing @p now.
     */
    void addBusy(hh::sim::Cycles now, hh::sim::Cycles busy);

    /**
     * Finalize and return per-window utilizations in [0, 1] covering
     * [0, end).
     */
    std::vector<double> series(hh::sim::Cycles end) const;

  private:
    hh::sim::Cycles window_;
    std::vector<hh::sim::Cycles> busy_per_window_;
};

} // namespace hh::stats

#endif // HH_STATS_UTILIZATION_H
