#include "stats/sampler.h"

#include <cstdio>
#include <sstream>

#include "sim/log.h"
#include "snapshot/tag.h"

namespace hh::stats {

MetricSampler::MetricSampler(hh::sim::Simulator &sim,
                             const MetricRegistry &reg,
                             hh::sim::Cycles period)
    : sim_(sim), reg_(reg), period_(period)
{
    if (period_ == 0)
        hh::sim::panic("MetricSampler: period must be > 0");
}

void
MetricSampler::sampleRow()
{
    SampleRow row;
    row.t = sim_.now();
    // Read exactly the columns frozen at start(): metrics registered
    // after the sampler started would otherwise shift every later
    // row's values against the header.
    row.values.reserve(columns_.size());
    for (const auto &name : columns_)
        row.values.push_back(reg_.value(name));
    rows_.push_back(std::move(row));
}

void
MetricSampler::start()
{
    if (running_)
        return;
    running_ = true;
    columns_ = reg_.names();
    sampleRow();
    pending_ = sim_.schedule(period_,
                             hh::snap::tag(hh::snap::SnapTag::kSamplerTick),
                             [this] { tick(); });
}

void
MetricSampler::tick()
{
    pending_ = hh::sim::kInvalidEventId;
    if (!running_)
        return;
    sampleRow();
    pending_ = sim_.schedule(period_,
                             hh::snap::tag(hh::snap::SnapTag::kSamplerTick),
                             [this] { tick(); });
}

void
MetricSampler::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (pending_ != hh::sim::kInvalidEventId) {
        sim_.cancel(pending_);
        pending_ = hh::sim::kInvalidEventId;
    }
    // Final partial-interval row — unless a periodic tick already
    // sampled this exact time, which would duplicate the row.
    if (rows_.empty() || rows_.back().t != sim_.now())
        sampleRow();
}

SampledSeries
MetricSampler::takeSeries()
{
    SampledSeries s;
    s.columns = std::move(columns_);
    s.rows = std::move(rows_);
    columns_.clear();
    rows_.clear();
    return s;
}

std::string
metricsCsv(const std::vector<SampledSeries> &series)
{
    std::ostringstream os;
    os << "server,t_ms";
    if (!series.empty()) {
        for (const auto &c : series.front().columns)
            os << ',' << c;
    }
    os << '\n';
    char buf[64];
    for (const auto &s : series) {
        for (const auto &row : s.rows) {
            std::snprintf(buf, sizeof buf, "%.6f",
                          hh::sim::cyclesToMs(row.t));
            os << s.label << ',' << buf;
            for (const double v : row.values) {
                std::snprintf(buf, sizeof buf, "%.9g", v);
                os << ',' << buf;
            }
            os << '\n';
        }
    }
    return os.str();
}

bool
writeMetricsCsv(const std::string &path,
                const std::vector<SampledSeries> &series)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string body = metricsCsv(series);
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    return ok;
}

} // namespace hh::stats
