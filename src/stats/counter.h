/**
 * @file
 * Simple named counters and gauges for simulation statistics.
 */

#ifndef HH_STATS_COUNTER_H
#define HH_STATS_COUNTER_H

#include <cstdint>
#include <string>

#include "snapshot/archive.h"

namespace hh::stats {

/**
 * Monotonically increasing event counter.
 */
class Counter
{
  public:
    explicit Counter(std::string name = "") : name_(std::move(name)) {}

    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (e.g. after a warmup phase). */
    void reset() { value_ = 0; }

    const std::string &name() const { return name_; }

    /** Save/restore the count (the name is construction-time). */
    void serialize(hh::snap::Archive &ar) { ar.io(value_); }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/**
 * Running mean/min/max accumulator for a stream of samples.
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void
    add(double v)
    {
        ++n_;
        sum_ += v;
        sum_sq_ += v * v;
        if (n_ == 1 || v < min_)
            min_ = v;
        if (n_ == 1 || v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0; }
    double min() const { return n_ ? min_ : 0; }
    double max() const { return n_ ? max_ : 0; }

    /** Population variance of the samples seen so far. */
    double
    variance() const
    {
        if (n_ == 0)
            return 0;
        const double m = mean();
        return sum_sq_ / static_cast<double>(n_) - m * m;
    }

    void
    reset()
    {
        n_ = 0;
        sum_ = sum_sq_ = 0;
        min_ = max_ = 0;
    }

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(n_);
        ar.io(sum_);
        ar.io(sum_sq_);
        ar.io(min_);
        ar.io(max_);
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0;
    double sum_sq_ = 0;
    double min_ = 0;
    double max_ = 0;
};

} // namespace hh::stats

#endif // HH_STATS_COUNTER_H
