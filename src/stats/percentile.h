/**
 * @file
 * Exact-percentile latency recorder.
 *
 * The paper reports P50 (median) and P99 tail latency over 100 K
 * invocations; at these sample counts storing every sample and sorting
 * on demand is both exact and cheap, so that is what we do.
 */

#ifndef HH_STATS_PERCENTILE_H
#define HH_STATS_PERCENTILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/archive.h"

namespace hh::stats {

/**
 * Stores raw latency samples and answers exact percentile queries.
 */
class LatencyRecorder
{
  public:
    explicit LatencyRecorder(std::string name = "")
        : name_(std::move(name))
    {}

    /** Record one latency sample (any unit; callers pick one). */
    void record(double v);

    /** Number of recorded samples. */
    std::size_t count() const { return samples_.size(); }

    /** Arithmetic mean of all samples; 0 when empty. */
    double mean() const;

    /**
     * Exact percentile by nearest-rank interpolation.
     *
     * @param p Percentile in [0, 100].
     * @return 0 when no samples were recorded.
     */
    double percentile(double p) const;

    /** Convenience accessors. */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }
    double max() const;

    /** Drop all samples (e.g. after warmup). */
    void reset();

    const std::string &name() const { return name_; }

    /** Read-only access to the raw samples (tests, CDF dumps). */
    const std::vector<double> &samples() const { return samples_; }

    /** Save/restore the sample buffer verbatim (incl. sort state). */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(samples_);
        ar.io(sorted_);
    }

  private:
    /** Sort the sample buffer if new samples arrived since last sort. */
    void ensureSorted() const;

    std::string name_;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Compute the empirical CDF of a sample set at given x positions.
 *
 * @param samples Any sample collection (will be copied and sorted).
 * @param xs      Query positions.
 * @return        For each x, the fraction of samples <= x.
 */
std::vector<double> empiricalCdf(std::vector<double> samples,
                                 const std::vector<double> &xs);

/**
 * Summary of one metric replicated across independent seeds.
 *
 * The half-width is the normal-approximation 95% confidence interval
 * of the mean (1.96 * sd / sqrt(n)); with the handful of seeds
 * multi-seed experiments use it is indicative, not exact, and is 0
 * for n < 2.
 */
struct ReplicationStats
{
    std::size_t n = 0;
    double mean = 0;
    double sd = 0;   //!< Sample standard deviation (n-1).
    double ci95 = 0; //!< Half-width of the 95% CI of the mean.
};

/** Mean / sd / CI of one metric's per-seed values. */
ReplicationStats replicationStats(const std::vector<double> &values);

} // namespace hh::stats

#endif // HH_STATS_PERCENTILE_H
