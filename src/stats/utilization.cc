#include "stats/utilization.h"

#include <algorithm>

#include "sim/log.h"

namespace hh::stats {

using hh::sim::Cycles;

void
UtilizationTracker::setBusy(Cycles now, bool busy)
{
    if (now < last_change_)
        hh::sim::panic("UtilizationTracker: time went backwards");
    if (busy_ == busy)
        return;
    if (busy_)
        accumulated_ += now - last_change_;
    busy_ = busy;
    last_change_ = now;
}

Cycles
UtilizationTracker::busyCycles(Cycles now) const
{
    Cycles total = accumulated_;
    if (busy_ && now > last_change_)
        total += now - last_change_;
    return total;
}

double
UtilizationTracker::utilization(Cycles now) const
{
    if (now <= start_)
        return 0.0;
    return static_cast<double>(busyCycles(now)) /
           static_cast<double>(now - start_);
}

void
UtilizationTracker::reset(Cycles now)
{
    start_ = now;
    accumulated_ = 0;
    last_change_ = now;
}

UtilizationSeries::UtilizationSeries(Cycles window) : window_(window)
{
    if (window == 0)
        hh::sim::panic("UtilizationSeries: window must be > 0");
}

void
UtilizationSeries::addBusy(Cycles now, Cycles busy)
{
    const std::size_t idx = static_cast<std::size_t>(now / window_);
    if (idx >= busy_per_window_.size())
        busy_per_window_.resize(idx + 1, 0);
    busy_per_window_[idx] += busy;
}

std::vector<double>
UtilizationSeries::series(Cycles end) const
{
    const std::size_t n =
        static_cast<std::size_t>((end + window_ - 1) / window_);
    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < n && i < busy_per_window_.size(); ++i) {
        out[i] = std::min(1.0, static_cast<double>(busy_per_window_[i]) /
                                   static_cast<double>(window_));
    }
    return out;
}

} // namespace hh::stats
