#include "stats/registry.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/log.h"

namespace hh::stats {

void
MetricRegistry::add(const std::string &name, Getter get, Resetter reset)
{
    if (name.empty())
        hh::sim::panic("MetricRegistry: empty metric name");
    if (!metrics_.emplace(name, Entry{std::move(get), std::move(reset)})
             .second) {
        hh::sim::panic("MetricRegistry: duplicate metric '", name, "'");
    }
}

void
MetricRegistry::registerGauge(const std::string &name, Getter get,
                              Resetter reset)
{
    add(name, std::move(get), std::move(reset));
}

void
MetricRegistry::registerCounter(const std::string &name, Counter &c)
{
    add(name,
        [&c] { return static_cast<double>(c.value()); },
        [&c] { c.reset(); });
}

void
MetricRegistry::registerCounter(const std::string &name,
                                const std::uint64_t &v)
{
    add(name, [&v] { return static_cast<double>(v); }, nullptr);
}

void
MetricRegistry::registerAccumulator(const std::string &name,
                                    Accumulator &a)
{
    add(name + ".count",
        [&a] { return static_cast<double>(a.count()); },
        [&a] { a.reset(); });
    add(name + ".mean", [&a] { return a.mean(); }, nullptr);
    add(name + ".min", [&a] { return a.min(); }, nullptr);
    add(name + ".max", [&a] { return a.max(); }, nullptr);
}

void
MetricRegistry::registerHistogram(const std::string &name, Histogram &h)
{
    add(name + ".count",
        [&h] { return static_cast<double>(h.totalCount()); },
        [&h] { h.reset(); });
}

void
MetricRegistry::registerLatency(const std::string &name,
                                LatencyRecorder &r)
{
    add(name + ".count",
        [&r] { return static_cast<double>(r.count()); },
        [&r] { r.reset(); });
    add(name + ".mean", [&r] { return r.mean(); }, nullptr);
}

void
MetricRegistry::registerUtilization(const std::string &name,
                                    UtilizationTracker &u, NowFn now)
{
    add(name + ".util",
        [&u, now] { return u.utilization(now()); }, nullptr);
    add(name + ".cycles",
        [&u, now] {
            return static_cast<double>(u.busyCycles(now()));
        },
        nullptr);
}

std::vector<MetricRegistry::Sample>
MetricRegistry::snapshot() const
{
    std::vector<Sample> out;
    out.reserve(metrics_.size());
    for (const auto &[name, e] : metrics_)
        out.push_back(Sample{name, e.get()});
    return out;
}

double
MetricRegistry::value(const std::string &name) const
{
    const auto it = metrics_.find(name);
    if (it == metrics_.end())
        hh::sim::panic("MetricRegistry: unknown metric '", name, "'");
    return it->second.get();
}

std::vector<std::string>
MetricRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(metrics_.size());
    for (const auto &[name, e] : metrics_)
        out.push_back(name);
    return out;
}

void
MetricRegistry::reset()
{
    for (auto &[name, e] : metrics_) {
        if (e.reset)
            e.reset();
    }
}

std::string
MetricRegistry::json(const std::string &prefix) const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    char buf[64];
    for (const auto &[name, e] : metrics_) {
        if (!first)
            os << ",";
        first = false;
        const double v = e.get();
        // JSON has no inf/nan literals.
        std::snprintf(buf, sizeof buf, "%.17g",
                      std::isfinite(v) ? v : 0.0);
        os << "\n  \"";
        if (!prefix.empty())
            os << prefix << '.';
        os << name << "\": " << buf;
    }
    os << "\n}\n";
    return os.str();
}

} // namespace hh::stats
