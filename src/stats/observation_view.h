/**
 * @file
 * Per-epoch, per-VM observation rows for the harvest telemetry plane.
 *
 * The existing MetricRegistry exposes flat *cumulative* counters; a
 * harvest policy (and the fleet-level TelemetryHub) instead wants a
 * structured per-epoch view: "over the last epoch, VM 3 ran its cores
 * at 82% utilization with 4.1 misses per kilo-access while 2 of its
 * cores were on loan". The ObservationView materializes exactly that,
 * once per telemetry epoch, from cumulative counter snapshots the
 * owning server feeds it — it performs the cumulative→delta
 * conversion itself so every tap stays a plain monotonic counter.
 *
 * The view is read-only with respect to simulation state, allocates
 * only on its own rows, and serializes under the snapshot archive so
 * checkpointed runs resume with byte-identical telemetry.
 *
 * `VmFeatures` is deliberately the input signature the ROADMAP's
 * pluggable harvest-policy interface will consume (see
 * docs/OBSERVABILITY.md, "Telemetry plane").
 */

#ifndef HH_STATS_OBSERVATION_VIEW_H
#define HH_STATS_OBSERVATION_VIEW_H

#include <cstdint>
#include <vector>

#include "snapshot/archive.h"

namespace hh::stats {

/**
 * Cumulative per-VM counters sampled by the owner at one instant.
 * "Cumulative" fields are monotonic since t=0; "instantaneous" fields
 * are point-in-time readings passed through to the feature row.
 */
struct VmCounters
{
    std::uint64_t busyCycles = 0;     //!< cumulative, over bound cores
    std::uint64_t accesses = 0;       //!< cumulative, private hierarchy
    std::uint64_t misses = 0;         //!< cumulative, last private level
    std::uint64_t validLines = 0;     //!< instantaneous, private arrays
    std::uint64_t lineCapacity = 0;   //!< instantaneous
    std::uint64_t rqReady = 0;        //!< instantaneous
    std::uint64_t rqOccupancy = 0;    //!< instantaneous
    std::uint64_t rqOverflow = 0;     //!< instantaneous
    std::uint32_t coresBound = 0;     //!< instantaneous
    std::uint32_t coresLent = 0;      //!< instantaneous
    std::uint64_t pendingReclaims = 0; //!< instantaneous
    std::uint64_t lentCycles = 0;     //!< cumulative core-cycles on loan
    std::uint64_t reclaims = 0;       //!< cumulative reclaim count
    std::uint64_t reclaimCycles = 0;  //!< cumulative reclaim latency sum
    /** Instantaneous: L3 ways this VM currently leases out. */
    std::uint32_t leasedWays = 0;
    /** Instantaneous: valid lines resident in those leased ways. */
    std::uint64_t leasedOccupancy = 0;

    void serialize(hh::snap::Archive &ar);
};

/** Cumulative server-wide counters sampled at one instant. */
struct ServerCounters
{
    std::uint64_t t = 0; //!< sample time (cycles)
    std::vector<VmCounters> vms;
    std::uint64_t batchLoaned = 0; //!< cumulative, on loaned cores
    std::uint64_t batchNative = 0; //!< cumulative, on native harvest cores
    /** Cumulative reclaim-latency log-histogram bucket counts. */
    std::vector<std::uint64_t> reclaimHist;
    /** Cumulative request-latency (us) log-histogram bucket counts. */
    std::vector<std::uint64_t> latencyHist;
    /** @name Cache-lease taps (cumulative; src/lease/) @{ */
    std::uint64_t leaseGrants = 0;
    std::uint64_t leaseRecalls = 0;
    std::uint64_t leaseExpiries = 0;
    std::uint64_t leaseFlushedLines = 0;
    std::uint64_t leaseWayCycles = 0;
    /** @} */

    void serialize(hh::snap::Archive &ar);
};

/**
 * One per-VM feature row of one epoch — the harvest-policy input
 * signature. Rates are epoch deltas; states are end-of-epoch values.
 */
struct VmFeatures
{
    std::uint32_t vm = 0;
    /** Mean utilization of bound cores over the epoch, in [0, 1]. */
    double coreUtil = 0;
    /**
     * Misses per kilo-access over the epoch (the repo's MPKI proxy:
     * the model replays memory accesses, not instructions).
     */
    double mpki = 0;
    /** Valid-line fraction of the private cache arrays, in [0, 1]. */
    double cacheOccupancy = 0;
    std::uint64_t rqReady = 0;
    std::uint64_t rqOccupancy = 0;
    std::uint64_t rqOverflow = 0;
    std::uint32_t coresBound = 0;
    std::uint32_t coresLent = 0;
    std::uint64_t pendingReclaims = 0;
    /** Core-cycles this VM's cores spent on loan during the epoch. */
    std::uint64_t lentCycles = 0;
    /** Reclaims initiated during the epoch. */
    std::uint64_t reclaims = 0;
    /** Sum of those reclaims' latencies (cycles). */
    std::uint64_t reclaimCycles = 0;
    /** End-of-epoch L3 ways this VM leases out (cache harvest). */
    std::uint32_t leasedWays = 0;
    /** Borrower-line change in the leased ways over the epoch. */
    std::int64_t leaseOccupancyDelta = 0;

    void serialize(hh::snap::Archive &ar);
};

/** One materialized epoch: per-VM features + server-wide deltas. */
struct ObservationRow
{
    std::uint64_t epoch = 0; //!< 1-based epoch index
    std::uint64_t t = 0;     //!< materialization time (cycles)
    std::vector<VmFeatures> vms;
    std::uint64_t batchLoanedDelta = 0;
    std::uint64_t batchNativeDelta = 0;
    /** Core-cycles on loan across all VMs during the epoch. */
    std::uint64_t harvestedCyclesDelta = 0;
    std::uint64_t reclaimsDelta = 0;
    /** Per-epoch reclaim-latency log-histogram bucket deltas. */
    std::vector<std::uint64_t> reclaimHistDelta;
    /** Per-epoch request-latency (us) log-histogram bucket deltas. */
    std::vector<std::uint64_t> latencyHistDelta;
    /** @name Cache-lease epoch deltas (src/lease/) @{ */
    std::uint64_t leaseGrantsDelta = 0;
    std::uint64_t leaseRecallsDelta = 0;
    std::uint64_t leaseExpiriesDelta = 0;
    std::uint64_t leaseFlushedDelta = 0;
    /** Leased-way-cycles lent out during the epoch. */
    std::uint64_t leaseWayCyclesDelta = 0;
    /** @} */

    void serialize(hh::snap::Archive &ar);
};

/**
 * Materializes ObservationRows from cumulative counter snapshots.
 * The first record() call diffs against an implicit all-zero snapshot
 * at t=0, so the first epoch covers [0, t).
 */
class ObservationView
{
  public:
    /**
     * Materialize one epoch row from cumulative counters at
     * @p cum.t. A call with cum.t equal to the previous record time
     * is ignored (guards the stop-at-tick-time duplicate).
     */
    void record(const ServerCounters &cum);

    const std::vector<ObservationRow> &rows() const { return rows_; }
    std::vector<ObservationRow> takeRows();
    std::uint64_t epochs() const { return epoch_; }

    /**
     * Save/restore rows plus the previous cumulative snapshot, so a
     * resumed run's next epoch diffs against the same baseline and
     * telemetry stays byte-identical under the checkpoint contract.
     */
    void serialize(hh::snap::Archive &ar);

  private:
    bool havePrev_ = false;
    ServerCounters prev_;
    std::uint64_t epoch_ = 0;
    std::vector<ObservationRow> rows_;
};

} // namespace hh::stats

#endif // HH_STATS_OBSERVATION_VIEW_H
