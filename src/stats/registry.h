/**
 * @file
 * Hierarchical metric registry (PR 2 observability layer).
 *
 * Components register their existing Counter / Histogram /
 * Utilization objects under dotted names ("core12.l2.miss",
 * "vm3.qm.ready") at construction; the server layer prefixes a
 * server id when exporting ("server0.core12.l2.miss"). The registry
 * is per-ServerSim — never global — so parallel cluster runs share
 * nothing and stay bit-identical at any worker count.
 *
 * Names must be unique and non-empty; violating either is a
 * registration-time panic() (a silent collision would corrupt every
 * exported time series).
 */

#ifndef HH_STATS_REGISTRY_H
#define HH_STATS_REGISTRY_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"
#include "stats/counter.h"
#include "stats/histogram.h"
#include "stats/percentile.h"
#include "stats/utilization.h"

namespace hh::stats {

/**
 * Registry of named scalar metrics. Composite objects (accumulators,
 * histograms, latency recorders) expand into several derived scalars
 * with suffixed names so one snapshot/export path covers everything.
 */
class MetricRegistry
{
  public:
    /** Reads the current value of one scalar metric. */
    using Getter = std::function<double()>;
    /** Optional reset hook (e.g. after a warmup phase). */
    using Resetter = std::function<void()>;
    /** Time source for time-integrated metrics (utilization). */
    using NowFn = std::function<hh::sim::Cycles()>;

    /** One sampled (name, value) pair. */
    struct Sample
    {
        std::string name;
        double value = 0;
    };

    /**
     * Register an arbitrary gauge.
     *
     * @param name  Unique dotted metric name (panics on empty or
     *              duplicate).
     * @param get   Value callback; must outlive the registry user.
     * @param reset Optional reset hook.
     */
    void registerGauge(const std::string &name, Getter get,
                       Resetter reset = nullptr);

    /** Register a monotonic counter object. */
    void registerCounter(const std::string &name, Counter &c);

    /** Register a raw integral counter (hits/misses members etc.). */
    void registerCounter(const std::string &name,
                         const std::uint64_t &v);

    /** Expands to name.count / .mean / .min / .max. */
    void registerAccumulator(const std::string &name, Accumulator &a);

    /** Expands to name.count (buckets stay with the owner). */
    void registerHistogram(const std::string &name, Histogram &h);

    /** Expands to name.count / .mean. */
    void registerLatency(const std::string &name, LatencyRecorder &r);

    /**
     * Register a busy-time integrator as a utilization gauge plus a
     * busy-cycle counter (name.util, name.cycles).
     *
     * @param now Current-simulated-time source the integrals are
     *            evaluated at.
     */
    void registerUtilization(const std::string &name,
                             UtilizationTracker &u, NowFn now);

    /** Number of registered scalar metrics. */
    std::size_t size() const { return metrics_.size(); }

    bool contains(const std::string &name) const
    {
        return metrics_.count(name) != 0;
    }

    /** Current value of every metric, in name order. */
    std::vector<Sample> snapshot() const;

    /** Value of one metric; panics if unknown. */
    double value(const std::string &name) const;

    /** Metric names in registration (= lexicographic) order. */
    std::vector<std::string> names() const;

    /** Invoke every registered reset hook (e.g. after warmup). */
    void reset();

    /**
     * Flat JSON object of every metric, sorted by name; an optional
     * @p prefix (e.g. "server0") is prepended to each key.
     */
    std::string json(const std::string &prefix = "") const;

  private:
    struct Entry
    {
        Getter get;
        Resetter reset;
    };

    void add(const std::string &name, Getter get, Resetter reset);

    std::map<std::string, Entry> metrics_;
};

} // namespace hh::stats

#endif // HH_STATS_REGISTRY_H
