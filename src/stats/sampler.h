/**
 * @file
 * Periodic time-series sampler over a MetricRegistry.
 *
 * Driven off the simulation's EventQueue: every @p period simulated
 * cycles the sampler snapshots all registered metrics into one row.
 * The sampler is read-only with respect to simulation state, so
 * enabling it cannot perturb results; the owner must stop() it once
 * the run's work is done or its self-rescheduling tick would keep
 * the event queue alive to the horizon.
 */

#ifndef HH_STATS_SAMPLER_H
#define HH_STATS_SAMPLER_H

#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "snapshot/archive.h"
#include "stats/registry.h"

namespace hh::stats {

/** One sampled row: simulated time plus the value of every column. */
struct SampleRow
{
    hh::sim::Cycles t = 0;
    std::vector<double> values;

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(t);
        ar.io(values);
    }
};

/**
 * A labelled sampled time series (one per server in cluster runs).
 */
struct SampledSeries
{
    std::string label;                //!< e.g. "server0".
    std::vector<std::string> columns; //!< Metric names.
    std::vector<SampleRow> rows;
};

/**
 * Samples a registry at a fixed simulated-time cadence.
 */
class MetricSampler
{
  public:
    /**
     * @param sim    Simulation driver supplying time and scheduling.
     * @param reg    Registry to sample (must outlive the sampler).
     * @param period Sampling period in cycles (> 0).
     */
    MetricSampler(hh::sim::Simulator &sim, const MetricRegistry &reg,
                  hh::sim::Cycles period);

    /**
     * Record an initial row at the current time and start the
     * periodic tick. Columns are frozen at this point.
     */
    void start();

    /**
     * Record a final row and cancel the pending tick. Safe to call
     * more than once.
     */
    void stop();

    bool running() const { return running_; }

    const std::vector<std::string> &columns() const { return columns_; }
    const std::vector<SampleRow> &rows() const { return rows_; }

    /** Move the collected series out (label filled by the caller). */
    SampledSeries takeSeries();

    /**
     * Re-arm hook: the callback of a restored kSamplerTick event.
     * Called by the owner's event re-arm dispatcher only.
     */
    hh::sim::Simulator::Callback
    rearmTick()
    {
        return [this] { tick(); };
    }

    /**
     * Save/restore the collected rows and the running/pending state.
     * The restoring owner must construct the sampler (same registry,
     * same period) *without* calling start(); the pending tick event
     * itself is restored by the event queue via rearmTick().
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(running_);
        ar.io(pending_);
        ar.io(columns_);
        ar.io(rows_);
    }

  private:
    void sampleRow();
    void tick();

    hh::sim::Simulator &sim_;
    const MetricRegistry &reg_;
    hh::sim::Cycles period_;
    bool running_ = false;
    hh::sim::EventId pending_ = hh::sim::kInvalidEventId;
    std::vector<std::string> columns_;
    std::vector<SampleRow> rows_;
};

/**
 * Render sampled series as CSV: header "server,t_ms,<columns...>",
 * then one row per sample of each series. Columns are taken from the
 * first series; all series of one export must share them.
 */
std::string metricsCsv(const std::vector<SampledSeries> &series);

/** Write metricsCsv() to @p path; false on I/O failure. */
bool writeMetricsCsv(const std::string &path,
                     const std::vector<SampledSeries> &series);

} // namespace hh::stats

#endif // HH_STATS_SAMPLER_H
