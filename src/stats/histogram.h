/**
 * @file
 * Fixed-width and logarithmic histograms for simulation statistics.
 */

#ifndef HH_STATS_HISTOGRAM_H
#define HH_STATS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/archive.h"

namespace hh::stats {

/**
 * Fixed-width histogram over [lo, hi); out-of-range samples are
 * clamped into the first/last bucket.
 */
class Histogram
{
  public:
    /**
     * @param lo      Lower bound of the histogram range.
     * @param hi      Upper bound (exclusive); must be > lo.
     * @param buckets Number of equal-width buckets; must be > 0.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Add one sample. */
    void add(double v);

    /** Count in bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const;

    /** Inclusive lower edge of bucket @p i. */
    double bucketLow(std::size_t i) const;

    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t totalCount() const { return total_; }

    /** Fraction of samples in bucket @p i; 0 when empty. */
    double bucketFraction(std::size_t i) const;

    /** All bucket counts (fleet aggregation reads these as deltas). */
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /**
     * Bucket-wise sum of @p other into this histogram. Both must share
     * the exact geometry (lo, hi, bucket count); panics otherwise. The
     * merge is a pure integer add, so merging server histograms into a
     * fleet histogram is deterministic in any association order.
     */
    void merge(const Histogram &other);

    /**
     * Nearest-rank percentile estimate, @p p in [0, 100]: the lower
     * edge of the bucket holding the sample of rank
     * max(1, ceil(p/100 * total)). p=0 selects the first non-empty
     * bucket, p=100 the last. Returns 0 when the histogram is empty.
     */
    double percentile(double p) const;

    void reset();

    /** Geometry is fixed at construction; a mismatch fails the load. */
    void serialize(hh::snap::Archive &ar);

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Power-of-two logarithmic histogram for latency-like values that
 * span several orders of magnitude.
 */
class LogHistogram
{
  public:
    /**
     * @param buckets Number of buckets; bucket i covers
     *                [2^i, 2^(i+1)) with bucket 0 catching [0, 2).
     */
    explicit LogHistogram(std::size_t buckets = 48);

    void add(double v);

    std::uint64_t bucketCount(std::size_t i) const;
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t totalCount() const { return total_; }

    /** Inclusive lower edge of bucket @p i: 0, 2, 4, 8, ..., 2^i. */
    static double bucketLow(std::size_t i);

    /** All bucket counts (fleet aggregation reads these as deltas). */
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /** Bucket-wise sum; bucket counts must match (panics otherwise). */
    void merge(const LogHistogram &other);

    /**
     * Nearest-rank percentile estimate over the log buckets (see
     * Histogram::percentile); returns the selected bucket's lower
     * edge, 0 when empty.
     */
    double percentile(double p) const;

    void reset();

    void serialize(hh::snap::Archive &ar);

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Nearest-rank percentile over an external bucket-count vector laid
 * out in LogHistogram geometry — used on merged fleet bucket deltas
 * without materializing a LogHistogram. Returns the selected bucket's
 * lower edge, 0 when the counts sum to zero.
 */
double logBucketPercentile(const std::vector<std::uint64_t> &counts,
                           double p);

} // namespace hh::stats

#endif // HH_STATS_HISTOGRAM_H
