/**
 * @file
 * Fixed-width and logarithmic histograms for simulation statistics.
 */

#ifndef HH_STATS_HISTOGRAM_H
#define HH_STATS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace hh::stats {

/**
 * Fixed-width histogram over [lo, hi); out-of-range samples are
 * clamped into the first/last bucket.
 */
class Histogram
{
  public:
    /**
     * @param lo      Lower bound of the histogram range.
     * @param hi      Upper bound (exclusive); must be > lo.
     * @param buckets Number of equal-width buckets; must be > 0.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Add one sample. */
    void add(double v);

    /** Count in bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const;

    /** Inclusive lower edge of bucket @p i. */
    double bucketLow(std::size_t i) const;

    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t totalCount() const { return total_; }

    /** Fraction of samples in bucket @p i; 0 when empty. */
    double bucketFraction(std::size_t i) const;

    void reset();

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Power-of-two logarithmic histogram for latency-like values that
 * span several orders of magnitude.
 */
class LogHistogram
{
  public:
    /**
     * @param buckets Number of buckets; bucket i covers
     *                [2^i, 2^(i+1)) with bucket 0 catching [0, 2).
     */
    explicit LogHistogram(std::size_t buckets = 48);

    void add(double v);

    std::uint64_t bucketCount(std::size_t i) const;
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t totalCount() const { return total_; }

    void reset();

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace hh::stats

#endif // HH_STATS_HISTOGRAM_H
