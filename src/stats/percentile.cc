#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace hh::stats {

void
LatencyRecorder::record(double v)
{
    samples_.push_back(v);
    sorted_ = false;
}

double
LatencyRecorder::mean() const
{
    if (samples_.empty())
        return 0;
    double s = 0;
    for (double v : samples_)
        s += v;
    return s / static_cast<double>(samples_.size());
}

void
LatencyRecorder::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
LatencyRecorder::percentile(double p) const
{
    if (p < 0 || p > 100)
        hh::sim::panic("LatencyRecorder::percentile: p out of range: ", p);
    if (samples_.empty())
        return 0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_[0];
    // Linear interpolation between closest ranks.
    const double rank =
        p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

double
LatencyRecorder::max() const
{
    if (samples_.empty())
        return 0;
    ensureSorted();
    return samples_.back();
}

void
LatencyRecorder::reset()
{
    samples_.clear();
    sorted_ = true;
}

std::vector<double>
empiricalCdf(std::vector<double> samples, const std::vector<double> &xs)
{
    std::sort(samples.begin(), samples.end());
    std::vector<double> out;
    out.reserve(xs.size());
    for (double x : xs) {
        const auto it =
            std::upper_bound(samples.begin(), samples.end(), x);
        out.push_back(samples.empty()
                          ? 0.0
                          : static_cast<double>(it - samples.begin()) /
                                static_cast<double>(samples.size()));
    }
    return out;
}

ReplicationStats
replicationStats(const std::vector<double> &values)
{
    ReplicationStats r;
    r.n = values.size();
    if (r.n == 0)
        return r;
    double sum = 0;
    for (double v : values)
        sum += v;
    r.mean = sum / static_cast<double>(r.n);
    if (r.n < 2)
        return r;
    double sq = 0;
    for (double v : values)
        sq += (v - r.mean) * (v - r.mean);
    r.sd = std::sqrt(sq / static_cast<double>(r.n - 1));
    r.ci95 = 1.96 * r.sd / std::sqrt(static_cast<double>(r.n));
    return r;
}

} // namespace hh::stats
