#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace hh::stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    if (buckets == 0)
        hh::sim::panic("Histogram: buckets must be > 0");
    if (hi <= lo)
        hh::sim::panic("Histogram: hi must exceed lo");
}

void
Histogram::add(double v)
{
    auto idx = static_cast<std::ptrdiff_t>((v - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    if (i >= counts_.size())
        hh::sim::panic("Histogram::bucketCount: index out of range");
    return counts_[i];
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::bucketFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0;
    return static_cast<double>(bucketCount(i)) /
           static_cast<double>(total_);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
        other.hi_ != hi_)
        hh::sim::panic("Histogram::merge: geometry mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

namespace {

/**
 * Shared nearest-rank walk: index of the bucket holding the sample of
 * rank max(1, ceil(p/100 * total)); counts must sum to total > 0.
 */
std::size_t
percentileBucket(const std::vector<std::uint64_t> &counts,
                 std::uint64_t total, double p)
{
    p = std::clamp(p, 0.0, 100.0);
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= rank)
            return i;
    }
    return counts.size() - 1;
}

} // namespace

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0;
    return bucketLow(percentileBucket(counts_, total_, p));
}

void
Histogram::serialize(hh::snap::Archive &ar)
{
    std::uint64_t n = counts_.size();
    ar.io(n);
    if (ar.loading() && n != counts_.size()) {
        ar.fail("Histogram: bucket-count mismatch on load");
        return;
    }
    for (auto &c : counts_)
        ar.io(c);
    ar.io(total_);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

LogHistogram::LogHistogram(std::size_t buckets) : counts_(buckets, 0)
{
    if (buckets == 0)
        hh::sim::panic("LogHistogram: buckets must be > 0");
}

void
LogHistogram::add(double v)
{
    std::size_t idx = 0;
    if (v >= 2.0)
        idx = static_cast<std::size_t>(std::floor(std::log2(v)));
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
    ++total_;
}

std::uint64_t
LogHistogram::bucketCount(std::size_t i) const
{
    if (i >= counts_.size())
        hh::sim::panic("LogHistogram::bucketCount: index out of range");
    return counts_[i];
}

double
LogHistogram::bucketLow(std::size_t i)
{
    if (i == 0)
        return 0;
    return std::ldexp(1.0, static_cast<int>(i));
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.counts_.size() != counts_.size())
        hh::sim::panic("LogHistogram::merge: geometry mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

double
LogHistogram::percentile(double p) const
{
    if (total_ == 0)
        return 0;
    return bucketLow(percentileBucket(counts_, total_, p));
}

void
LogHistogram::serialize(hh::snap::Archive &ar)
{
    std::uint64_t n = counts_.size();
    ar.io(n);
    if (ar.loading() && n != counts_.size()) {
        ar.fail("LogHistogram: bucket-count mismatch on load");
        return;
    }
    for (auto &c : counts_)
        ar.io(c);
    ar.io(total_);
}

void
LogHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

double
logBucketPercentile(const std::vector<std::uint64_t> &counts, double p)
{
    std::uint64_t total = 0;
    for (const auto c : counts)
        total += c;
    if (total == 0)
        return 0;
    return LogHistogram::bucketLow(percentileBucket(counts, total, p));
}

} // namespace hh::stats
