#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace hh::stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    if (buckets == 0)
        hh::sim::panic("Histogram: buckets must be > 0");
    if (hi <= lo)
        hh::sim::panic("Histogram: hi must exceed lo");
}

void
Histogram::add(double v)
{
    auto idx = static_cast<std::ptrdiff_t>((v - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    if (i >= counts_.size())
        hh::sim::panic("Histogram::bucketCount: index out of range");
    return counts_[i];
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::bucketFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0;
    return static_cast<double>(bucketCount(i)) /
           static_cast<double>(total_);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

LogHistogram::LogHistogram(std::size_t buckets) : counts_(buckets, 0)
{
    if (buckets == 0)
        hh::sim::panic("LogHistogram: buckets must be > 0");
}

void
LogHistogram::add(double v)
{
    std::size_t idx = 0;
    if (v >= 2.0)
        idx = static_cast<std::size_t>(std::floor(std::log2(v)));
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
    ++total_;
}

std::uint64_t
LogHistogram::bucketCount(std::size_t i) const
{
    if (i >= counts_.size())
        hh::sim::panic("LogHistogram::bucketCount: index out of range");
    return counts_[i];
}

void
LogHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

} // namespace hh::stats
