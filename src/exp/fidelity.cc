#include "exp/fidelity.h"

#include <cstdio>

#include "sim/log.h"

namespace hh::exp {

namespace {

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

} // namespace

double
MeasurementSet::get(const std::string &name) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        hh::sim::fatal("MeasurementSet: no measurement \"", name,
                       "\"");
    return it->second;
}

std::vector<FidelityOutcome>
evaluateFidelity(const std::vector<FidelityCheck> &checks,
                 const MeasurementSet &m, GateLevel level)
{
    std::vector<FidelityOutcome> out;
    for (const FidelityCheck &c : checks) {
        FidelityOutcome o;
        o.id = c.id;
        o.paperRow = c.paperRow;

        const bool needs_full =
            c.fullOnly || c.kind == FidelityCheck::Kind::Band;
        if (needs_full && level != GateLevel::Full) {
            o.status = FidelityOutcome::Status::Skipped;
            o.detail = "full-scale check (gate level: direction)";
            out.push_back(std::move(o));
            continue;
        }

        std::string missing;
        for (const std::string &t : c.terms) {
            if (!m.has(t)) {
                missing = t;
                break;
            }
        }
        if (!missing.empty()) {
            o.status = FidelityOutcome::Status::Skipped;
            o.detail = "measurement \"" + missing + "\" not produced "
                       "by this invocation";
            out.push_back(std::move(o));
            continue;
        }

        switch (c.kind) {
        case FidelityCheck::Kind::Less:
        case FidelityCheck::Kind::Greater: {
            const double a = m.get(c.terms.at(0));
            const double b = c.terms.size() > 1 ? m.get(c.terms[1])
                                                : c.constant;
            const bool less = c.kind == FidelityCheck::Kind::Less;
            const bool ok = less ? a < b : a > b;
            o.status = ok ? FidelityOutcome::Status::Pass
                          : FidelityOutcome::Status::Fail;
            o.detail = c.terms.at(0) + "=" + num(a) +
                       (less ? " < " : " > ") +
                       (c.terms.size() > 1 ? c.terms[1] + "=" : "") +
                       num(b);
            break;
        }
        case FidelityCheck::Kind::Ordering: {
            bool ok = true;
            std::string chain;
            for (std::size_t i = 0; i < c.terms.size(); ++i) {
                const double v = m.get(c.terms[i]);
                if (i > 0) {
                    chain += " <= ";
                    if (m.get(c.terms[i - 1]) > v)
                        ok = false;
                }
                chain += c.terms[i] + "=" + num(v);
            }
            o.status = ok ? FidelityOutcome::Status::Pass
                          : FidelityOutcome::Status::Fail;
            o.detail = chain;
            break;
        }
        case FidelityCheck::Kind::Band: {
            const double v = m.get(c.terms.at(0));
            const bool ok = c.lo <= v && v <= c.hi;
            o.status = ok ? FidelityOutcome::Status::Pass
                          : FidelityOutcome::Status::Fail;
            o.detail = c.terms.at(0) + "=" + num(v) + " in [" +
                       num(c.lo) + ", " + num(c.hi) + "]";
            break;
        }
        }
        out.push_back(std::move(o));
    }
    return out;
}

bool
fidelityPassed(const std::vector<FidelityOutcome> &outcomes)
{
    for (const auto &o : outcomes) {
        if (o.status == FidelityOutcome::Status::Fail)
            return false;
    }
    return true;
}

std::vector<FidelityCheck>
paperFidelityCatalogue()
{
    using K = FidelityCheck::Kind;
    std::vector<FidelityCheck> c;
    const auto add = [&](FidelityCheck chk) {
        c.push_back(std::move(chk));
    };

    // ---- Headline table (EXPERIMENTS.md "Headline results") ----

    // "Fig 11 Harvest-Term P99 vs NoHarvest | 3.4x | 3.53x | ✔"
    add({"fig11.ht_above_noharvest",
         "Fig 11 Harvest-Term P99 vs NoHarvest (3.4x)", K::Greater,
         {"fig11.ht_over_noh"}, 1.0, 0, 0, false});
    add({"fig11.ht_factor_band",
         "Fig 11 Harvest-Term P99 vs NoHarvest (3.4x)", K::Band,
         {"fig11.ht_over_noh"}, 0, 2.0, 6.0, false});

    // "Fig 11 Harvest-Block ... ✔ (Block > Term preserved)"
    add({"fig11.hb_above_noharvest",
         "Fig 11 Harvest-Block P99 vs NoHarvest (4.1x)", K::Greater,
         {"fig11.hb_over_noh"}, 1.0, 0, 0, false});
    add({"fig11.hb_factor_band",
         "Fig 11 Harvest-Block P99 vs NoHarvest (4.1x)", K::Band,
         {"fig11.hb_over_noh"}, 0, 2.0, 6.0, false});
    add({"fig11.block_above_term",
         "Fig 11 Block > Term split preserved", K::Greater,
         {"fig11.hb_over_noh", "fig11.ht_over_noh"}, 0, 0, 0,
         /*fullOnly=*/true});

    // "Fig 11 HardHarvest-Term vs NoHarvest | 0.70x | ✔ below"
    add({"fig11.hht_below_noharvest",
         "Fig 11 HardHarvest-Term vs NoHarvest (0.70x)", K::Less,
         {"fig11.hht_over_noh"}, 1.0, 0, 0, false});
    add({"fig11.hht_factor_band",
         "Fig 11 HardHarvest-Term vs NoHarvest (0.70x)", K::Band,
         {"fig11.hht_over_noh"}, 0, 0.4, 0.98, false});

    // "Fig 11 HardHarvest-Block vs NoHarvest | 0.72x | ✔ below"
    add({"fig11.hhb_below_noharvest",
         "Fig 11 HardHarvest-Block vs NoHarvest (0.72x)", K::Less,
         {"fig11.hhb_over_noh"}, 1.0, 0, 0, false});
    add({"fig11.hhb_factor_band",
         "Fig 11 HardHarvest-Block vs NoHarvest (0.72x)", K::Band,
         {"fig11.hhb_over_noh"}, 0, 0.4, 0.98, false});

    // "Fig 11 HardHarvest-Block vs Harvest-Term | -83.3% | ✔"
    add({"fig11.hhb_reduces_ht_tail",
         "Fig 11 HardHarvest-Block vs Harvest-Term (-83.3%)",
         K::Greater, {"fig11.hhb_reduction_vs_ht"}, 0.0, 0, 0, false});
    add({"fig11.hhb_reduction_band",
         "Fig 11 HardHarvest-Block vs Harvest-Term (-83.3%)", K::Band,
         {"fig11.hhb_reduction_vs_ht"}, 0, 0.5, 0.95, false});

    // "Fig 16 HardHarvest-Block median vs NoHarvest | ✔ negative"
    // (fig16 is not run by repro_all; skips until measured.)
    add({"fig16.hhb_median_below_noharvest",
         "Fig 16 HardHarvest-Block median vs NoHarvest (-26.1%)",
         K::Less, {"fig16.hhb_median_delta"}, 0.0, 0, 0, false});

    // "Fig 17 ... ordering ✔": HardHarvest > software > baseline.
    add({"fig17.ht_above_baseline",
         "Fig 17 software harvesting gains throughput (1.7x)",
         K::Greater, {"fig17.ht_norm"}, 1.0, 0, 0, false});
    add({"fig17.hhb_above_baseline",
         "Fig 17 HardHarvest-Block gains throughput (3.1x)",
         K::Greater, {"fig17.hhb_norm"}, 1.0, 0, 0, false});
    add({"fig17.hardware_above_software",
         "Fig 17 ordering: HardHarvest-Block > Harvest-Term",
         K::Greater, {"fig17.hhb_norm", "fig17.ht_norm"}, 0, 0, 0,
         false});

    // "§6.7 busy cores | ✔ monotone split sw < hw"
    add({"sec67.harvesting_raises_utilization",
         "§6.7 busy cores: NoHarvest lowest", K::Less,
         {"sec67.noh_busy", "sec67.ht_busy"}, 0, 0, 0, false});
    add({"sec67.hardware_above_software",
         "§6.7 busy cores: software < hardware harvesting", K::Less,
         {"sec67.sw_max_busy", "sec67.hw_min_busy"}, 0, 0, 0, false});

    // ---- Mechanism table (Figs 12-15, 18, 19, §6.3, §6.8) ----

    // "Fig 12 | ✔ +Part largest step, endpoint ~79%" (not run yet).
    add({"fig12.endpoint_reduction",
         "Fig 12 cumulative reduction endpoint (85.6%)", K::Greater,
         {"fig12.endpoint_reduction"}, 0.5, 0, 0, false});
    add({"fig12.part_step_largest",
         "Fig 12 +Part is the largest step", K::Greater,
         {"fig12.part_step_minus_max_other"}, 0.0, 0, 0, false});

    // "Fig 14 L2 hit rates | ✔ ordering"
    add({"fig14.policy_ordering",
         "Fig 14 L2 hit rate ordering LRU <= RRIP <= HH <= Belady",
         K::Ordering,
         {"fig14.lru", "fig14.rrip", "fig14.hh", "fig14.belady"}, 0, 0,
         0, false});

    // "Fig 14 HH policy vs LRU | +11.3% | +8.8% | ✔"
    add({"fig14.hh_above_lru", "Fig 14 HardHarvest vs LRU (+11.3%)",
         K::Greater, {"fig14.hh_minus_lru"}, 0.0, 0, 0, false});
    add({"fig14.hh_vs_lru_band", "Fig 14 HardHarvest vs LRU (+11.3%)",
         K::Band, {"fig14.hh_minus_lru"}, 0, 0.02, 0.20, false});

    // "Fig 14 HH policy vs RRIP | +8.2% | +5.4% | ✔"
    add({"fig14.hh_above_rrip", "Fig 14 HardHarvest vs RRIP (+8.2%)",
         K::Greater, {"fig14.hh_minus_rrip"}, 0.0, 0, 0, false});
    add({"fig14.hh_vs_rrip_band", "Fig 14 HardHarvest vs RRIP (+8.2%)",
         K::Band, {"fig14.hh_minus_rrip"}, 0, 0.01, 0.15, false});

    // "Fig 15 | ✔ monotone, close" (not run yet).
    add({"fig15.endpoint_reduction",
         "Fig 15 cumulative reductions without harvesting (33.6%)",
         K::Band, {"fig15.endpoint_reduction"}, 0, 0.1, 0.5, false});

    // "Fig 18 LLC size sensitivity | ✔" (not run yet).
    add({"fig18.llc_sensitivity_small",
         "Fig 18 LLC size sensitivity: small changes", K::Band,
         {"fig18.max_abs_delta"}, 0, 0.0, 0.25, false});

    // "Fig 19 eviction candidates, 75% best | ✔" (not run yet).
    add({"fig19.best_fraction",
         "Fig 19 U-shape around 75% candidate fraction", K::Band,
         {"fig19.best_candidate_fraction"}, 0, 0.5, 0.9, false});

    // "§6.3 CDP vs HardHarvest replacement | ✔ positive" (not run).
    add({"sec63.cdp_worse",
         "§6.3 CDP replacement raises tail vs HardHarvest (+8%)",
         K::Greater, {"sec63.cdp_tail_delta"}, 0.0, 0, 0, false});

    // "§6.8 storage / area / power | ✔ exact arithmetic" (not run).
    add({"sec68.controller_storage",
         "§6.8 controller storage (18.9 KB)", K::Band,
         {"sec68.controller_kb"}, 0, 18.0, 20.0, false});
    add({"sec68.shared_bits", "§6.8 Shared bits (67.8 KB)", K::Band,
         {"sec68.shared_kb"}, 0, 60.0, 75.0, false});
    add({"sec68.area_overhead", "§6.8 area overhead (0.19%)", K::Band,
         {"sec68.area_pct"}, 0, 0.1, 0.3, false});

    return c;
}

} // namespace hh::exp
