/**
 * @file
 * Machine-checked shape fidelity.
 *
 * EXPERIMENTS.md records the paper-vs-measured verdict tables as
 * prose; this module encodes every ✔ row as an executable assertion
 * over named measurements, so `bench/repro_all` (and CI) fail loudly
 * when a change breaks the reproduction's *shape* — who wins, in what
 * order, by roughly what factor — instead of silently drifting.
 *
 * Check kinds mirror how the verdicts are phrased:
 *  - Less / Greater: a direction claim ("HardHarvest-Block lands
 *    below NoHarvest"), against another measurement or a constant.
 *  - Ordering: a non-decreasing chain ("LRU <= RRIP <= HardHarvest <=
 *    Belady").
 *  - Band: a factor bracket ("Harvest-Term P99 is ~3-4x NoHarvest").
 *
 * Directions and orderings are scale-robust and run at every scale
 * (CI's `repro-smoke` quick runs included); bands assume the
 * committed full scale and only run under `--gate full` (nightly).
 * A check whose measurements are absent evaluates to Skipped, never
 * Fail — the catalogue names rows from figures a given invocation did
 * not run.
 */

#ifndef HH_EXP_FIDELITY_H
#define HH_EXP_FIDELITY_H

#include <map>
#include <string>
#include <vector>

namespace hh::exp {

/** Named scalar measurements filled by the figure harnesses. */
class MeasurementSet
{
  public:
    void set(const std::string &name, double value)
    {
        values_[name] = value;
    }

    bool has(const std::string &name) const
    {
        return values_.count(name) != 0;
    }

    /** Value of @p name; fatal when absent (callers check has()). */
    double get(const std::string &name) const;

    const std::map<std::string, double> &all() const
    {
        return values_;
    }

  private:
    std::map<std::string, double> values_;
};

struct FidelityCheck
{
    enum class Kind
    {
        Less,     //!< terms[0] < terms[1] (or < constant).
        Greater,  //!< terms[0] > terms[1] (or > constant).
        Ordering, //!< terms non-decreasing left to right.
        Band,     //!< lo <= terms[0] <= hi (full scale only).
    };

    std::string id;       //!< e.g. "fig11.hhb_below_noharvest".
    std::string paperRow; //!< The EXPERIMENTS.md row this encodes.
    Kind kind = Kind::Less;
    std::vector<std::string> terms; //!< Measurement names.
    /** Comparison constant for 1-term Less/Greater. */
    double constant = 0;
    /** Band bounds (Kind::Band). */
    double lo = 0;
    double hi = 0;
    /**
     * Skip below GateLevel::Full even for direction kinds — for
     * claims that hold at the committed scale but are noise-sensitive
     * at quick scale (e.g. the Fig 11 Block > Term split). Band
     * checks are implicitly full-only.
     */
    bool fullOnly = false;
};

/** Outcome of one evaluated check. */
struct FidelityOutcome
{
    enum class Status
    {
        Pass,
        Fail,
        Skipped, //!< Measurement absent, or band check at quick scale.
    };

    std::string id;
    std::string paperRow;
    Status status = Status::Skipped;
    std::string detail; //!< Human-readable values / reason.
};

/** Gate strictness. */
enum class GateLevel
{
    Direction, //!< Directions and orderings only (quick scale).
    Full,      //!< Bands too (committed full scale).
};

/**
 * Evaluate @p checks against @p m. Band checks are Skipped below
 * GateLevel::Full; any check referencing an absent measurement is
 * Skipped with the missing name in the detail.
 */
std::vector<FidelityOutcome>
evaluateFidelity(const std::vector<FidelityCheck> &checks,
                 const MeasurementSet &m, GateLevel level);

/** True when no outcome failed. */
bool fidelityPassed(const std::vector<FidelityOutcome> &outcomes);

/**
 * The EXPERIMENTS.md catalogue: every ✔ row of the headline and
 * mechanism verdict tables as a check. Rows from figures repro_all
 * does not run (fig12/15/16/18/19, §6.3, §6.8) are still present —
 * they skip until a harness fills their measurements.
 */
std::vector<FidelityCheck> paperFidelityCatalogue();

} // namespace hh::exp

#endif // HH_EXP_FIDELITY_H
