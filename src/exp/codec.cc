#include "exp/codec.h"

#include <cstdlib>
#include <sstream>

namespace hh::exp {

namespace {

/** Read one whitespace-delimited token; false at end of input. */
bool
nextToken(std::istringstream &is, std::string *tok)
{
    return static_cast<bool>(is >> *tok);
}

/**
 * Parse a double written by the encoder. operator>> cannot be used
 * here: libstdc++ num_get does not accept hexfloat input, strtod
 * does.
 */
bool
readDouble(std::istringstream &is, double *out)
{
    std::string tok;
    if (!nextToken(is, &tok))
        return false;
    char *end = nullptr;
    *out = std::strtod(tok.c_str(), &end);
    return end != tok.c_str() && *end == '\0';
}

bool
readU64(std::istringstream &is, std::uint64_t *out)
{
    std::string tok;
    if (!nextToken(is, &tok))
        return false;
    char *end = nullptr;
    *out = std::strtoull(tok.c_str(), &end, 10);
    return end != tok.c_str() && *end == '\0';
}

} // namespace

std::string
encodeServerResults(const hh::cluster::ServerResults &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "services " << r.services.size() << '\n';
    for (const auto &s : r.services) {
        os << s.name << ' ' << s.count << ' ' << s.meanMs << ' '
           << s.p50Ms << ' ' << s.p99Ms << ' ' << s.queueMs << ' '
           << s.reassignMs << ' ' << s.flushMs << ' ' << s.execMs
           << ' ' << s.ioMs << '\n';
    }
    os << "scalars " << r.elapsedSec << ' ' << r.batchTasksCompleted
       << ' ' << r.batchThroughput << ' ' << r.avgBusyCores << ' '
       << r.utilization << ' ' << r.coreLoans << ' ' << r.coreReclaims
       << ' ' << r.primaryL2HitRate << '\n';
    return os.str();
}

bool
decodeServerResults(const std::string &text,
                    hh::cluster::ServerResults *out, std::string *error)
{
    const auto fail = [&](const char *what) {
        if (error)
            *error = std::string("ServerResults decode: ") + what;
        return false;
    };

    hh::cluster::ServerResults r;
    std::istringstream is(text);
    std::string tok;
    if (!nextToken(is, &tok) || tok != "services")
        return fail("missing services header");
    std::uint64_t n = 0;
    if (!readU64(is, &n))
        return fail("bad service count");
    for (std::uint64_t i = 0; i < n; ++i) {
        hh::cluster::ServiceResult s;
        if (!nextToken(is, &s.name))
            return fail("truncated service row");
        if (!readU64(is, &s.count) || !readDouble(is, &s.meanMs) ||
            !readDouble(is, &s.p50Ms) || !readDouble(is, &s.p99Ms) ||
            !readDouble(is, &s.queueMs) ||
            !readDouble(is, &s.reassignMs) ||
            !readDouble(is, &s.flushMs) ||
            !readDouble(is, &s.execMs) || !readDouble(is, &s.ioMs))
            return fail("bad service row");
        r.services.push_back(std::move(s));
    }
    if (!nextToken(is, &tok) || tok != "scalars")
        return fail("missing scalars header");
    if (!readDouble(is, &r.elapsedSec) ||
        !readU64(is, &r.batchTasksCompleted) ||
        !readDouble(is, &r.batchThroughput) ||
        !readDouble(is, &r.avgBusyCores) ||
        !readDouble(is, &r.utilization) ||
        !readU64(is, &r.coreLoans) || !readU64(is, &r.coreReclaims) ||
        !readDouble(is, &r.primaryL2HitRate))
        return fail("bad scalars row");
    if (nextToken(is, &tok))
        return fail("trailing data");
    *out = std::move(r);
    return true;
}

} // namespace hh::exp
