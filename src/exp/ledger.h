/**
 * @file
 * Crash-resumable result ledger: an append-only JSONL store of
 * experiment results keyed by (kind, config fingerprint, batch app,
 * seed).
 *
 * The ledger doubles as a cross-run memoization cache: before
 * simulating a job, the JobScheduler looks its key up here and reuses
 * the stored payload (an exact text round-trip of the results — see
 * exp/codec.h), so `bench/repro_all` only re-simulates what changed.
 * Fingerprints cover every SystemConfig field (the same `HHCP`
 * discipline as src/snapshot/ checkpoints), so any config change
 * misses the cache instead of reusing stale results.
 *
 * Durability model: one JSON object per line, CRC-protected,
 * fflush()ed after every append. A run killed mid-append leaves at
 * most one partial trailing line; open() recovers every complete row,
 * truncates the partial tail, and the scheduler re-runs only the
 * missing jobs — producing a file byte-identical to an uninterrupted
 * run (rows append in deterministic job order).
 *
 * The header line records the exact command that created the ledger
 * plus the host's parallelism (hardware threads, pool workers, the
 * single-core flag from BENCH_sim_speed.json's host section), and
 * every row re-stamps the host fields, so multi-seed results from a
 * single-core CI container are never silently compared against
 * multi-core runs.
 */

#ifndef HH_EXP_LEDGER_H
#define HH_EXP_LEDGER_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

namespace hh::exp {

/** Identity of one experiment job. */
struct JobKey
{
    /** Job family: "server" for ServerSim runs, else a custom kind. */
    std::string kind;
    /** configFingerprint() for server jobs; a custom key otherwise. */
    std::string fingerprint;
    /** Batch application (server jobs). */
    std::string app;
    std::uint64_t seed = 0;

    /** Single-string form used for map keys and row checksums. */
    std::string canonical() const;

    bool
    operator==(const JobKey &o) const
    {
        return kind == o.kind && fingerprint == o.fingerprint &&
               app == o.app && seed == o.seed;
    }
};

class ResultLedger
{
  public:
    /** Header metadata, written once when the file is created. */
    struct Meta
    {
        /** Exact command line of the creating run. */
        std::string command;
        unsigned hardwareThreads = 0;
        unsigned poolWorkers = 0;
        bool singleCoreHost = false;
    };

    /**
     * Open (creating if absent) the ledger at @p path.
     *
     * Existing complete rows are loaded into the in-memory index; a
     * partial trailing line (crash mid-append) is counted and
     * truncated away so subsequent appends produce a well-formed
     * file. An existing file keeps its original header; @p meta is
     * only written when the file is created.
     *
     * @return nullptr (and sets @p error) when the file exists but
     *         has a bad header, or on I/O failure.
     */
    static std::unique_ptr<ResultLedger>
    open(const std::string &path, const Meta &meta, std::string *error);

    ~ResultLedger();

    ResultLedger(const ResultLedger &) = delete;
    ResultLedger &operator=(const ResultLedger &) = delete;

    /** Look up a memoized payload; false on a miss. */
    bool lookup(const JobKey &key, std::string *payload) const;

    /**
     * Append one row and flush it to disk. Duplicate keys are
     * rejected (the scheduler deduplicates before running).
     *
     * @return false (and sets @p error) on I/O failure or duplicate.
     */
    bool append(const JobKey &key, const std::string &payload,
                std::string *error);

    /** Rows currently indexed (loaded + appended). */
    std::size_t rows() const { return index_.size(); }

    /** Complete rows recovered from an existing file by open(). */
    std::size_t recoveredRows() const { return recovered_; }

    /** Corrupt/partial trailing rows dropped by open(). */
    std::size_t droppedRows() const { return dropped_; }

    /** Header metadata (the creating run's, for existing files). */
    const Meta &meta() const { return meta_; }

    const std::string &path() const { return path_; }

  private:
    ResultLedger() = default;

    std::string path_;
    Meta meta_;
    std::FILE *file_ = nullptr;
    std::map<std::string, std::string> index_; //!< canonical -> payload
    std::size_t recovered_ = 0;
    std::size_t dropped_ = 0;
};

/** @name JSONL helpers (exposed for tests) @{ */
/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);
/**
 * Parse one flat JSON object line into key -> value. String values
 * are unescaped; numbers and booleans are returned as their raw
 * token text. Only the subset the ledger emits is supported.
 */
bool parseJsonLine(const std::string &line,
                   std::map<std::string, std::string> *out);
/** FNV-1a 64-bit checksum used to validate rows. */
std::uint64_t ledgerChecksum(const std::string &s);
/** @} */

} // namespace hh::exp

#endif // HH_EXP_LEDGER_H
