#include "exp/ledger.h"

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <vector>

namespace hh::exp {

namespace {

constexpr const char *kMagic = "HHRL";
constexpr unsigned kVersion = 1;

/** Separator that cannot appear inside fingerprints or app names. */
constexpr char kUnit = '\x1f';

std::string
headerLine(const ResultLedger::Meta &m)
{
    std::ostringstream os;
    os << "{\"magic\":\"" << kMagic << "\",\"version\":" << kVersion
       << ",\"command\":\"" << jsonEscape(m.command) << "\""
       << ",\"hardware_threads\":" << m.hardwareThreads
       << ",\"pool_workers\":" << m.poolWorkers
       << ",\"single_core_host\":"
       << (m.singleCoreHost ? "true" : "false") << "}\n";
    return os.str();
}

std::string
rowLine(const JobKey &key, const std::string &payload,
        const ResultLedger::Meta &m)
{
    std::ostringstream os;
    os << "{\"kind\":\"" << jsonEscape(key.kind) << "\""
       << ",\"fp\":\"" << jsonEscape(key.fingerprint) << "\""
       << ",\"app\":\"" << jsonEscape(key.app) << "\""
       << ",\"seed\":" << key.seed
       << ",\"hardware_threads\":" << m.hardwareThreads
       << ",\"pool_workers\":" << m.poolWorkers
       << ",\"single_core_host\":"
       << (m.singleCoreHost ? "true" : "false")
       << ",\"payload\":\"" << jsonEscape(payload) << "\""
       << ",\"crc\":" << ledgerChecksum(key.canonical() + payload)
       << "}\n";
    return os.str();
}

bool
parseBoolToken(const std::string &tok, bool *out)
{
    if (tok == "true") {
        *out = true;
        return true;
    }
    if (tok == "false") {
        *out = false;
        return true;
    }
    return false;
}

bool
parseUnsignedToken(const std::string &tok, std::uint64_t *out)
{
    char *end = nullptr;
    *out = std::strtoull(tok.c_str(), &end, 10);
    return end != tok.c_str() && *end == '\0';
}

} // namespace

std::string
JobKey::canonical() const
{
    std::string s;
    s += kind;
    s += kUnit;
    s += fingerprint;
    s += kUnit;
    s += app;
    s += kUnit;
    s += std::to_string(seed);
    return s;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
parseJsonLine(const std::string &line,
              std::map<std::string, std::string> *out)
{
    out->clear();
    std::size_t i = 0;
    const auto skipWs = [&] {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
    };
    const auto parseString = [&](std::string *s) {
        if (i >= line.size() || line[i] != '"')
            return false;
        ++i;
        s->clear();
        while (i < line.size() && line[i] != '"') {
            char c = line[i++];
            if (c == '\\') {
                if (i >= line.size())
                    return false;
                const char esc = line[i++];
                switch (esc) {
                case '"': *s += '"'; break;
                case '\\': *s += '\\'; break;
                case 'n': *s += '\n'; break;
                case 'r': *s += '\r'; break;
                case 't': *s += '\t'; break;
                case 'u': {
                    if (i + 4 > line.size())
                        return false;
                    const std::string hex = line.substr(i, 4);
                    char *end = nullptr;
                    const long v = std::strtol(hex.c_str(), &end, 16);
                    if (end != hex.c_str() + 4 || v < 0 || v > 0xFF)
                        return false; // ledger only emits \u00XX
                    *s += static_cast<char>(v);
                    i += 4;
                    break;
                }
                default: return false;
                }
            } else {
                *s += c;
            }
        }
        if (i >= line.size())
            return false;
        ++i; // closing quote
        return true;
    };

    skipWs();
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    skipWs();
    if (i < line.size() && line[i] == '}')
        return true;
    for (;;) {
        skipWs();
        std::string key;
        if (!parseString(&key))
            return false;
        skipWs();
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        skipWs();
        std::string value;
        if (i < line.size() && line[i] == '"') {
            if (!parseString(&value))
                return false;
        } else {
            // Bare token: number / true / false.
            const std::size_t start = i;
            while (i < line.size() && line[i] != ',' &&
                   line[i] != '}' && line[i] != ' ')
                ++i;
            value = line.substr(start, i - start);
            if (value.empty())
                return false;
        }
        (*out)[key] = std::move(value);
        skipWs();
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        break;
    }
    skipWs();
    if (i >= line.size() || line[i] != '}')
        return false;
    ++i;
    skipWs();
    return i == line.size();
}

std::uint64_t
ledgerChecksum(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::unique_ptr<ResultLedger>
ResultLedger::open(const std::string &path, const Meta &meta,
                   std::string *error)
{
    auto ledger = std::unique_ptr<ResultLedger>(new ResultLedger);
    ledger->path_ = path;
    ledger->meta_ = meta;

    std::string contents;
    bool exists = false;
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        exists = true;
        char buf[1 << 16];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            contents.append(buf, n);
        std::fclose(f);
    }

    std::size_t good_bytes = 0;
    if (exists && !contents.empty()) {
        // Recover: header first, then rows; stop at the first line
        // that is incomplete (no trailing newline) or fails its CRC —
        // everything after a corrupt row is untrusted.
        std::size_t pos = 0;
        bool have_header = false;
        while (pos < contents.size()) {
            const std::size_t nl = contents.find('\n', pos);
            if (nl == std::string::npos)
                break; // partial trailing line: crash mid-append
            const std::string line = contents.substr(pos, nl - pos);
            std::map<std::string, std::string> obj;
            if (!parseJsonLine(line, &obj))
                break;
            if (!have_header) {
                std::uint64_t version = 0;
                if (obj.count("magic") == 0 || obj["magic"] != kMagic ||
                    !parseUnsignedToken(obj["version"], &version) ||
                    version != kVersion) {
                    if (error)
                        *error = "ledger \"" + path +
                                 "\" has a bad header (magic/version)";
                    return nullptr;
                }
                Meta m;
                m.command = obj["command"];
                std::uint64_t v = 0;
                if (parseUnsignedToken(obj["hardware_threads"], &v))
                    m.hardwareThreads = static_cast<unsigned>(v);
                if (parseUnsignedToken(obj["pool_workers"], &v))
                    m.poolWorkers = static_cast<unsigned>(v);
                parseBoolToken(obj["single_core_host"],
                               &m.singleCoreHost);
                ledger->meta_ = m;
                have_header = true;
            } else {
                JobKey key;
                key.kind = obj["kind"];
                key.fingerprint = obj["fp"];
                key.app = obj["app"];
                std::uint64_t seed = 0;
                std::uint64_t crc = 0;
                if (!parseUnsignedToken(obj["seed"], &seed) ||
                    !parseUnsignedToken(obj["crc"], &crc) ||
                    obj.count("payload") == 0)
                    break;
                key.seed = seed;
                const std::string &payload = obj["payload"];
                if (ledgerChecksum(key.canonical() + payload) != crc)
                    break;
                ledger->index_[key.canonical()] = payload;
                ++ledger->recovered_;
            }
            pos = nl + 1;
            good_bytes = pos;
        }
        if (!have_header) {
            if (error)
                *error = "ledger \"" + path +
                         "\" exists but has no valid header";
            return nullptr;
        }
        if (good_bytes < contents.size()) {
            ledger->dropped_ = 1;
            std::error_code ec;
            std::filesystem::resize_file(path, good_bytes, ec);
            if (ec) {
                if (error)
                    *error = "cannot truncate partial tail of \"" +
                             path + "\": " + ec.message();
                return nullptr;
            }
        }
    }

    ledger->file_ = std::fopen(path.c_str(), "ab");
    if (!ledger->file_) {
        if (error)
            *error = "cannot open ledger \"" + path +
                     "\" for append";
        return nullptr;
    }
    if (!exists || contents.empty()) {
        const std::string header = headerLine(meta);
        if (std::fwrite(header.data(), 1, header.size(),
                        ledger->file_) != header.size()) {
            if (error)
                *error = "cannot write ledger header to \"" + path +
                         "\"";
            return nullptr;
        }
        std::fflush(ledger->file_);
    }
    return ledger;
}

ResultLedger::~ResultLedger()
{
    if (file_)
        std::fclose(file_);
}

bool
ResultLedger::lookup(const JobKey &key, std::string *payload) const
{
    const auto it = index_.find(key.canonical());
    if (it == index_.end())
        return false;
    if (payload)
        *payload = it->second;
    return true;
}

bool
ResultLedger::append(const JobKey &key, const std::string &payload,
                     std::string *error)
{
    const std::string canon = key.canonical();
    if (index_.count(canon)) {
        if (error)
            *error = "duplicate ledger key: " + canon;
        return false;
    }
    const std::string line = rowLine(key, payload, meta_);
    if (std::fwrite(line.data(), 1, line.size(), file_) !=
            line.size() ||
        std::fflush(file_) != 0) {
        if (error)
            *error = "ledger append to \"" + path_ + "\" failed";
        return false;
    }
    index_[canon] = payload;
    return true;
}

} // namespace hh::exp
