/**
 * @file
 * Job scheduler for experiment grids.
 *
 * The scheduler batches simulation jobs from any number of
 * ExperimentSpecs (or hand-built points) and runs them over the
 * ThreadPool with three cost savers stacked in front of the
 * simulator:
 *
 *  1. **Deduplication.** Jobs are keyed by (kind, config
 *     fingerprint, batch app, seed) — the same identity the
 *     checkpoint layer uses — so identical jobs submitted by
 *     different experiments in one process simulate once and share
 *     the result (fig11's five BFS runs are fig17's BFS column).
 *  2. **Memoization.** With a ResultLedger attached, previously
 *     simulated jobs are answered from the ledger; only missing keys
 *     simulate, and their rows are appended for the next run.
 *  3. **Warm starts.** Pending server jobs that share a *config
 *     prefix* — identical fingerprint apart from `requestsPerVm`,
 *     same app and seed — share the early trajectory (arrivals are
 *     chained, the warmup boundary is a fixed count), so the largest-
 *     budget member runs first as the *donor*, snapshots its state
 *     through src/snapshot/ while still inside every member's warmup
 *     window, and the other members resume from that snapshot with
 *     their arrival budget retargeted
 *     (ServerSim::retargetArrivalBudget). Results are byte-identical
 *     to cold runs; any validation failure falls back to a cold run.
 *
 * Jobs with tracing, metric sampling, auditing (including the
 * HH_AUDIT environment override) or fault injection enabled are
 * never deduplicated against clean jobs, memoized, or warm-started:
 * their results carry payloads the ledger codec deliberately
 * excludes.
 */

#ifndef HH_EXP_SCHEDULER_H
#define HH_EXP_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/server.h"
#include "cluster/system_config.h"
#include "exp/ledger.h"
#include "exp/spec.h"
#include "sim/time.h"

namespace hh::exp {

/** Prefix key grouping warm-start candidates: the fingerprint with
 *  the arrival budget zeroed, plus app and seed. */
std::string warmPrefixKey(const hh::cluster::SystemConfig &cfg,
                          const std::string &batchApp,
                          std::uint64_t seed);

class JobScheduler
{
  public:
    struct Options
    {
        /** Thread-pool workers; 0 = HH_THREADS or hardware. */
        unsigned workers = 0;
        /** Enable warm-starting of config-prefix groups. */
        bool warmStart = true;
        /**
         * Donor checkpoint target: fraction of the group's smallest
         * warmup boundary the leading VM reaches before the final
         * snapshot. Must stay below 1.0 — the snapshot must precede
         * every member's boundary — with enough margin that one
         * probe step cannot overshoot the boundary (overshoot falls
         * back to the halfway-milestone snapshot).
         */
        double warmFraction = 0.85;
        /** Donor advance step between snapshot probes (cycles). */
        hh::sim::Cycles warmStep = hh::sim::msToCycles(0.25);
        /** Memoization cache; may be nullptr (no caching). */
        ResultLedger *ledger = nullptr;
    };

    struct Stats
    {
        std::size_t submitted = 0;    //!< add*() calls.
        std::size_t unique = 0;       //!< Jobs after deduplication.
        std::size_t memoized = 0;     //!< Answered from the ledger.
        std::size_t simulated = 0;    //!< Cold runs (incl. donors).
        std::size_t warmStarted = 0;  //!< Resumed from a donor.
        std::size_t prefixGroups = 0; //!< Warm groups formed.
    };

    /** Identifies a submitted job; stable across run(). */
    using Handle = std::size_t;

    JobScheduler() : JobScheduler(Options()) {}
    explicit JobScheduler(Options opts) : opts_(std::move(opts)) {}

    /** Submit one ServerSim run. */
    Handle addServer(const hh::cluster::SystemConfig &cfg,
                     const std::string &batchApp, std::uint64_t seed);

    /** Submit every point of an expanded spec; handles in order. */
    std::vector<Handle> addSpec(const ExperimentSpec &spec);

    /**
     * Submit a custom job: @p fn computes a payload string that is
     * deduplicated, memoized and replayed by (kind, key, seed)
     * exactly like server results. @p fn must be deterministic; it
     * runs on a pool thread.
     */
    Handle addCustom(const std::string &kind, const std::string &key,
                     std::uint64_t seed,
                     std::function<std::string()> fn);

    /**
     * Run every pending job. Idempotent per submission batch: jobs
     * added after a run() are executed by the next run(). Fatal on
     * ledger append failures (a broken cache must not go unnoticed).
     */
    void run();

    /** Result of a server job (valid after run()). */
    const hh::cluster::ServerResults &serverResult(Handle h) const;

    /** Payload of a custom job (valid after run()). */
    const std::string &payload(Handle h) const;

    const Stats &stats() const { return stats_; }

  private:
    struct Slot
    {
        JobKey key;
        // Server jobs:
        hh::cluster::SystemConfig cfg;
        std::string batchApp;
        bool isServer = false;
        hh::cluster::ServerResults result;
        // Custom jobs:
        std::function<std::string()> fn;
        std::string payloadText;
        // Scheduling state:
        bool cacheable = false;
        bool done = false;
        bool fromLedger = false;
    };

    /** A warm-start group: donor + members, all pending. */
    struct WarmGroup
    {
        std::size_t donor = 0;        //!< Slot index.
        std::vector<std::size_t> members; //!< Non-donor slots.
        unsigned minBudget = 0;       //!< Smallest member budget.
        unsigned warmCap = 0;         //!< min warmupSkip over group.
        std::vector<std::uint8_t> blob; //!< Donor state snapshot.
    };

    Handle intern(Slot &&slot);
    void runServerCold(std::size_t slot);
    /** Donor run: capture the latest valid snapshot, then finish. */
    void runDonor(WarmGroup &g);
    /** Member run: load donor blob, retarget, finish; cold fallback. */
    void runWarmMember(const WarmGroup &g, std::size_t slot);

    Options opts_;
    Stats stats_;
    std::vector<Slot> slots_;
    std::map<std::string, std::size_t> index_; //!< canonical -> slot
    std::vector<std::size_t> handles_;         //!< handle -> slot
};

} // namespace hh::exp

#endif // HH_EXP_SCHEDULER_H
