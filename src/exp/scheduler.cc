#include "exp/scheduler.h"

#include <algorithm>
#include <cstdlib>

#include "cluster/checkpoint.h"
#include "cluster/parallel.h"
#include "exp/codec.h"
#include "sim/log.h"
#include "snapshot/archive.h"

namespace hh::exp {

namespace {

/** May this job's result be memoized / warm-started? */
bool
cacheableConfig(const hh::cluster::SystemConfig &cfg)
{
    if (cfg.traceEnabled || cfg.metricsEnabled || cfg.auditEnabled ||
        cfg.faults.enabled)
        return false;
    // HH_AUDIT=1 force-enables the auditor inside ServerSim without
    // touching the config (see server.cc); such runs carry audit
    // payloads the codec drops, so they must bypass the cache too.
    const char *audit_env = std::getenv("HH_AUDIT");
    if (audit_env && *audit_env && *audit_env != '0')
        return false;
    return true;
}

/** Snapshot a sim's full state; empty on serialization failure. */
std::vector<std::uint8_t>
trySave(hh::cluster::ServerSim &sim)
{
    hh::snap::Archive ar = hh::snap::Archive::forSave();
    sim.saveState(ar);
    if (!ar.ok())
        return {};
    return ar.take();
}

} // namespace

std::string
warmPrefixKey(const hh::cluster::SystemConfig &cfg,
              const std::string &batchApp, std::uint64_t seed)
{
    hh::cluster::SystemConfig prefix = cfg;
    prefix.requestsPerVm = 0;
    return hh::cluster::configFingerprint(prefix) + '\x1f' + batchApp +
           '\x1f' + std::to_string(seed);
}

JobScheduler::Handle
JobScheduler::intern(Slot &&slot)
{
    ++stats_.submitted;
    const std::string canon = slot.key.canonical();
    const auto it = index_.find(canon);
    std::size_t si;
    if (it != index_.end()) {
        si = it->second;
    } else {
        si = slots_.size();
        slots_.push_back(std::move(slot));
        index_.emplace(canon, si);
        ++stats_.unique;
    }
    handles_.push_back(si);
    return handles_.size() - 1;
}

JobScheduler::Handle
JobScheduler::addServer(const hh::cluster::SystemConfig &cfg,
                        const std::string &batchApp, std::uint64_t seed)
{
    Slot s;
    s.key.kind = "server";
    s.key.fingerprint = hh::cluster::configFingerprint(cfg);
    s.key.app = batchApp;
    s.key.seed = seed;
    s.cfg = cfg;
    s.batchApp = batchApp;
    s.isServer = true;
    s.cacheable = cacheableConfig(cfg);
    return intern(std::move(s));
}

std::vector<JobScheduler::Handle>
JobScheduler::addSpec(const ExperimentSpec &spec)
{
    std::vector<Handle> out;
    for (const ExperimentPoint &p : spec.points())
        out.push_back(addServer(p.cfg, p.batchApp, p.seed));
    return out;
}

JobScheduler::Handle
JobScheduler::addCustom(const std::string &kind, const std::string &key,
                        std::uint64_t seed,
                        std::function<std::string()> fn)
{
    Slot s;
    s.key.kind = kind;
    s.key.fingerprint = key;
    s.key.seed = seed;
    s.fn = std::move(fn);
    s.cacheable = true;
    return intern(std::move(s));
}

void
JobScheduler::runServerCold(std::size_t slot)
{
    Slot &s = slots_[slot];
    const hh::sim::LogTagScope tag("job" + std::to_string(slot));
    s.result =
        hh::cluster::runServer(s.cfg, s.batchApp, s.key.seed);
}

void
JobScheduler::runDonor(WarmGroup &g)
{
    Slot &s = slots_[g.donor];
    const hh::sim::LogTagScope tag("job" + std::to_string(g.donor) +
                                   "-donor");
    hh::cluster::ServerSim sim(s.cfg, s.batchApp, s.key.seed);
    sim.startRun();

    // No snapshot yet: if no probe lands inside the warm window the
    // blob stays empty and the members simply run cold (a t=0 blob
    // would only add a pointless save/load round trip).
    std::vector<std::uint8_t> valid;
    const auto goal = static_cast<unsigned>(
        opts_.warmFraction * static_cast<double>(g.warmCap));
    // Snapshots are the expensive part of probing (a full state
    // serialization), so probe with cheap progress counters every
    // step but save only when completion crosses a milestone —
    // halfway to the goal, then the goal. An invalidating step in
    // between costs at most half the warm window, not the blob.
    unsigned next_milestone = std::max(goal / 2, 1u);
    hh::sim::Cycles until = 0;
    while (!sim.finished() && until < hh::cluster::ServerSim::horizon()) {
        until = std::max(until, sim.now()) + opts_.warmStep;
        sim.advanceRun(until);
        bool ok = true;
        unsigned max_completed = 0;
        for (const auto &p : sim.arrivalProgress()) {
            if (p.consumed >= g.minBudget || p.completed > g.warmCap)
                ok = false;
            max_completed = std::max(max_completed, p.completed);
        }
        if (!ok)
            break;
        if (max_completed >= next_milestone) {
            std::vector<std::uint8_t> blob = trySave(sim);
            if (!blob.empty())
                valid = std::move(blob);
            if (max_completed >= goal)
                break;
            next_milestone = goal;
        }
    }
    g.blob = std::move(valid);

    sim.advanceRun(hh::cluster::ServerSim::horizon());
    s.result = sim.finishRun();
}

void
JobScheduler::runWarmMember(const WarmGroup &g, std::size_t slot)
{
    Slot &s = slots_[slot];
    if (!g.blob.empty()) {
        const hh::sim::LogTagScope tag("job" + std::to_string(slot) +
                                       "-warm");
        hh::cluster::ServerSim sim(s.cfg, s.batchApp, s.key.seed);
        hh::snap::Archive ar = hh::snap::Archive::forLoad(g.blob);
        sim.loadState(ar);
        std::string err;
        if (ar.ok() &&
            sim.retargetArrivalBudget(slots_[g.donor].cfg, &err)) {
            sim.advanceRun(hh::cluster::ServerSim::horizon());
            s.result = sim.finishRun();
            return;
        }
        hh::sim::warn("warm start of job ", slot, " failed (",
                      ar.ok() ? err : ar.error(),
                      "); falling back to a cold run");
    }
    s.done = false; // marker read by run(): fell back to cold
    runServerCold(slot);
}

void
JobScheduler::run()
{
    // 1. Memoize from the ledger.
    for (Slot &s : slots_) {
        if (s.done || !s.cacheable || !opts_.ledger)
            continue;
        std::string payload;
        if (!opts_.ledger->lookup(s.key, &payload))
            continue;
        if (s.isServer) {
            std::string err;
            if (!decodeServerResults(payload, &s.result, &err))
                hh::sim::fatal("ledger \"", opts_.ledger->path(),
                               "\" row for ", s.key.canonical(),
                               " does not decode (", err,
                               "); delete the ledger to rebuild it");
        } else {
            s.payloadText = payload;
        }
        s.done = true;
        s.fromLedger = true;
        ++stats_.memoized;
    }

    // 2. Form warm-start groups over the pending server jobs.
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].done)
            pending.push_back(i);
    }
    std::map<std::string, std::vector<std::size_t>> by_prefix;
    if (opts_.warmStart) {
        for (std::size_t i : pending) {
            const Slot &s = slots_[i];
            if (s.isServer && s.cacheable)
                by_prefix[warmPrefixKey(s.cfg, s.batchApp, s.key.seed)]
                    .push_back(i);
        }
    }
    std::vector<WarmGroup> groups;
    std::vector<bool> in_group(slots_.size(), false);
    for (auto &[prefix, members] : by_prefix) {
        if (members.size() < 2)
            continue;
        WarmGroup g;
        g.donor = members[0];
        for (std::size_t i : members) {
            if (slots_[i].cfg.requestsPerVm >
                slots_[g.donor].cfg.requestsPerVm)
                g.donor = i;
        }
        g.minBudget = slots_[members[0]].cfg.requestsPerVm;
        for (std::size_t i : members) {
            g.minBudget =
                std::min(g.minBudget, slots_[i].cfg.requestsPerVm);
            if (i != g.donor)
                g.members.push_back(i);
            in_group[i] = true;
        }
        const double wf = slots_[g.donor].cfg.warmupFraction;
        g.warmCap = static_cast<unsigned>(
            wf * static_cast<double>(g.minBudget));
        groups.push_back(std::move(g));
    }
    stats_.prefixGroups += groups.size();

    // 3. Phase A: customs, ungrouped servers, and the group donors.
    struct TaskRef
    {
        std::size_t slot = 0;
        WarmGroup *group = nullptr; //!< Donor task when set.
    };
    std::vector<TaskRef> phase_a;
    for (std::size_t i : pending) {
        if (!in_group[i])
            phase_a.push_back({i, nullptr});
    }
    for (WarmGroup &g : groups)
        phase_a.push_back({g.donor, &g});
    hh::cluster::runParallel<char>(
        phase_a.size(),
        [&](std::size_t t) -> char {
            const TaskRef &ref = phase_a[t];
            Slot &s = slots_[ref.slot];
            if (ref.group) {
                runDonor(*ref.group);
            } else if (s.isServer) {
                runServerCold(ref.slot);
            } else {
                const hh::sim::LogTagScope tag(
                    "job" + std::to_string(ref.slot));
                s.payloadText = s.fn();
            }
            return 0;
        },
        opts_.workers);
    stats_.simulated += phase_a.size();

    // 4. Phase B: warm-start the remaining group members.
    std::vector<std::pair<const WarmGroup *, std::size_t>> phase_b;
    for (const WarmGroup &g : groups) {
        for (std::size_t i : g.members)
            phase_b.push_back({&g, i});
    }
    const std::vector<char> warm = hh::cluster::runParallel<char>(
        phase_b.size(),
        [&](std::size_t t) -> char {
            slots_[phase_b[t].second].done = true; // warm marker
            runWarmMember(*phase_b[t].first, phase_b[t].second);
            return slots_[phase_b[t].second].done ? 1 : 0;
        },
        opts_.workers);
    for (std::size_t t = 0; t < phase_b.size(); ++t) {
        if (warm[t])
            ++stats_.warmStarted;
        else
            ++stats_.simulated;
    }

    for (std::size_t i : pending)
        slots_[i].done = true;

    // 5. Append the new rows, in deterministic slot order, so an
    // interrupted-and-resumed ledger is byte-identical to an
    // uninterrupted one.
    if (opts_.ledger) {
        for (Slot &s : slots_) {
            if (!s.done || !s.cacheable || s.fromLedger)
                continue;
            const std::string payload =
                s.isServer ? encodeServerResults(s.result)
                           : s.payloadText;
            std::string err;
            if (!opts_.ledger->append(s.key, payload, &err))
                hh::sim::fatal("ledger append failed: ", err);
            s.fromLedger = true;
        }
    }
}

const hh::cluster::ServerResults &
JobScheduler::serverResult(Handle h) const
{
    const Slot &s = slots_.at(handles_.at(h));
    if (!s.isServer || !s.done)
        hh::sim::fatal("JobScheduler::serverResult: handle ", h,
                       s.isServer ? " has not run yet"
                                  : " is not a server job");
    return s.result;
}

const std::string &
JobScheduler::payload(Handle h) const
{
    const Slot &s = slots_.at(handles_.at(h));
    if (s.isServer || !s.done)
        hh::sim::fatal("JobScheduler::payload: handle ", h,
                       s.isServer ? " is a server job"
                                  : " has not run yet");
    return s.payloadText;
}

} // namespace hh::exp
