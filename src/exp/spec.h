/**
 * @file
 * Declarative experiment specifications.
 *
 * An ExperimentSpec names a grid of SystemConfig variants — systems x
 * batch applications x seeds x swept config fields — and expands it
 * into concrete ExperimentPoints for the JobScheduler. Specs are
 * constructible in code (the figure benches build theirs directly)
 * and from a small key=value text format, so ad-hoc design-space
 * sweeps need no recompilation:
 *
 *     # fig19-style candidate sweep at two load levels
 *     name = candidate-sweep
 *     systems = HardHarvestBlock
 *     apps = BFS PRank
 *     seeds = 1 2 3
 *     requestsPerVm = 400
 *     accessSampling = 8
 *     sweep.candidateFraction = 0.25 0.5 0.75 1.0
 *
 * Lines are `key = value...`; `#` starts a comment. Scalar keys set
 * the field on every variant; `sweep.<key>` adds a cross-product
 * axis. The recognized keys are the SystemConfig fields listed in
 * applySpecKey() (docs/EXPERIMENTS_ENGINE.md has the catalogue).
 */

#ifndef HH_EXP_SPEC_H
#define HH_EXP_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/system_config.h"

namespace hh::exp {

/** One concrete job of an expanded experiment grid. */
struct ExperimentPoint
{
    /** Human-readable label, e.g. "HardHarvestBlock/BFS/seed1". */
    std::string label;
    hh::cluster::SystemConfig cfg;
    std::string batchApp;
    std::uint64_t seed = 1;
};

/** One swept SystemConfig field: a key and its grid of values. */
struct SweepAxis
{
    std::string key;
    std::vector<std::string> values;
};

/**
 * A named grid of SystemConfig variants x seeds x scales.
 */
struct ExperimentSpec
{
    std::string name;
    /** System kinds by name ("NoHarvest"...); empty = base config. */
    std::vector<std::string> systems;
    /** Batch applications; empty defaults to {"BFS"}. */
    std::vector<std::string> apps;
    /** Experiment seeds; empty defaults to {1}. */
    std::vector<std::uint64_t> seeds;
    /** Scalar `key = value` overrides applied to every variant. */
    std::vector<std::pair<std::string, std::string>> overrides;
    /** `sweep.key = v1 v2 ...` cross-product axes, in file order. */
    std::vector<SweepAxis> sweeps;

    /**
     * Expand the grid into concrete points, ordered systems-major
     * then apps, seeds, and sweep axes (last axis fastest). Fatal on
     * an unknown system name or config key.
     */
    std::vector<ExperimentPoint> points() const;
};

/**
 * Set one SystemConfig field from its spec key and value text.
 *
 * @return false (and sets @p error) on an unknown key or a value
 *         that does not parse for the field's type.
 */
bool applySpecKey(hh::cluster::SystemConfig &cfg, const std::string &key,
                  const std::string &value, std::string *error);

/**
 * Parse the key=value spec format.
 *
 * @return false (and sets @p error, with a line number) on syntax
 *         errors or unknown keys; recognized keys are validated
 *         against a scratch SystemConfig at parse time so a bad spec
 *         fails before any simulation starts.
 */
bool parseSpec(const std::string &text, ExperimentSpec *out,
               std::string *error);

/** Resolve a SystemKind from its printable name; false if unknown. */
bool systemKindByName(const std::string &name,
                      hh::cluster::SystemKind *out);

} // namespace hh::exp

#endif // HH_EXP_SPEC_H
