#include "exp/spec.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "cache/config.h"
#include "policy/harvest_policy.h"
#include "sim/log.h"
#include "sim/time.h"

namespace hh::exp {

namespace {

/** Split on whitespace. */
std::vector<std::string>
tokens(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string t;
    while (is >> t)
        out.push_back(t);
    return out;
}

bool
parseUnsigned(const std::string &v, unsigned *out)
{
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        return false;
    *out = static_cast<unsigned>(parsed);
    return true;
}

bool
parseDouble(const std::string &v, double *out)
{
    char *end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        return false;
    *out = parsed;
    return true;
}

bool
parseBool(const std::string &v, bool *out)
{
    if (v == "true" || v == "1") {
        *out = true;
        return true;
    }
    if (v == "false" || v == "0") {
        *out = false;
        return true;
    }
    return false;
}

/**
 * A harvest-way fraction must carve a non-degenerate region — at
 * least one harvest way AND at least one private way — out of every
 * partitioned structure (the five HarvestMask structures) at the
 * configured way scaling. A fraction that rounds to a 0-way or
 * all-way region would silently disable the partition's isolation
 * (the runtime clamps), so it is rejected at parse time instead.
 */
bool
validHarvestFraction(const hh::cluster::SystemConfig &cfg, double f,
                     std::string *error)
{
    struct Structure
    {
        const char *name;
        hh::cache::Geometry geom;
    };
    static const Structure kMasked[] = {
        {"L1D", hh::cache::kL1D},     {"L1I", hh::cache::kL1I},
        {"L2", hh::cache::kL2},       {"L1TLB", hh::cache::kL1Tlb},
        {"L2TLB", hh::cache::kL2Tlb},
    };
    for (const auto &s : kMasked) {
        const hh::cache::Geometry scaled =
            hh::cache::scaleWays(s.geom, cfg.waysFraction);
        if (scaled.ways < 2)
            continue; // partitioning skips 1-way structures
        const long n =
            std::lround(f * static_cast<double>(scaled.ways));
        if (n >= 1 && n < static_cast<long>(scaled.ways))
            continue;
        if (error) {
            std::ostringstream os;
            os << "harvestWayFraction " << f << " rounds to a "
               << (n < 1 ? "0-way" : "all-way")
               << " harvest region in the " << scaled.ways << "-way "
               << s.name << " (a valid fraction keeps 1.."
               << (scaled.ways - 1) << " harvest ways"
               << (cfg.waysFraction < 1.0 ? " at this waysFraction"
                                          : "")
               << ")";
            *error = os.str();
        }
        return false;
    }
    return true;
}

/**
 * A cache-lend L2 fraction must carve a usable, non-degenerate bonus
 * out of the lender cores' L2 at the configured way scaling: at least
 * one extra harvest way (a fraction that rounds to zero silently
 * leases nothing) while still leaving the owner at least one private
 * way on top of the configured harvestWayFraction region. Mirrors
 * validHarvestFraction's parse-time rejection of silent clamps.
 */
bool
validCacheLendL2Fraction(const hh::cluster::SystemConfig &cfg,
                         double f, std::string *error)
{
    if (f == 0.0)
        return true; // explicit "no L2 bonus"
    const hh::cache::Geometry scaled =
        hh::cache::scaleWays(hh::cache::kL2, cfg.waysFraction);
    if (scaled.ways < 2)
        return true; // partitioning skips 1-way structures
    const long bonus =
        std::lround(f * static_cast<double>(scaled.ways));
    const long base = std::lround(cfg.harvestWayFraction *
                                  static_cast<double>(scaled.ways));
    if (bonus >= 1 && base + bonus < static_cast<long>(scaled.ways)) {
        return true;
    }
    if (error) {
        std::ostringstream os;
        if (bonus < 1) {
            os << "cacheLendL2WayFraction " << f
               << " rounds to a 0-way lease bonus in the "
               << scaled.ways << "-way L2"
               << (cfg.waysFraction < 1.0 ? " at this waysFraction"
                                          : "")
               << " (use 0 to disable the L2 bonus explicitly)";
        } else {
            os << "cacheLendL2WayFraction " << f << " plus "
               << "harvestWayFraction " << cfg.harvestWayFraction
               << " covers all " << scaled.ways
               << " L2 ways (the owner must keep at least one "
                  "private way)";
        }
        *error = os.str();
    }
    return false;
}

} // namespace

bool
systemKindByName(const std::string &name, hh::cluster::SystemKind *out)
{
    using hh::cluster::SystemKind;
    static const std::pair<const char *, SystemKind> kNames[] = {
        {"NoHarvest", SystemKind::NoHarvest},
        {"Harvest-Term", SystemKind::HarvestTerm},
        {"HarvestTerm", SystemKind::HarvestTerm},
        {"Harvest-Block", SystemKind::HarvestBlock},
        {"HarvestBlock", SystemKind::HarvestBlock},
        {"HardHarvest-Term", SystemKind::HardHarvestTerm},
        {"HardHarvestTerm", SystemKind::HardHarvestTerm},
        {"HardHarvest-Block", SystemKind::HardHarvestBlock},
        {"HardHarvestBlock", SystemKind::HardHarvestBlock},
    };
    for (const auto &[n, k] : kNames) {
        if (name == n) {
            *out = k;
            return true;
        }
    }
    return false;
}

bool
applySpecKey(hh::cluster::SystemConfig &cfg, const std::string &key,
             const std::string &value, std::string *error)
{
    const auto fail = [&](const char *what) {
        if (error)
            *error = "key \"" + key + "\": " + what + " \"" + value +
                     "\"";
        return false;
    };

    // unsigned fields
    if (key == "requestsPerVm")
        return parseUnsigned(value, &cfg.requestsPerVm) ||
               fail("bad unsigned");
    if (key == "accessSampling")
        return parseUnsigned(value, &cfg.accessSampling) ||
               fail("bad unsigned");
    if (key == "cores")
        return parseUnsigned(value, &cfg.cores) || fail("bad unsigned");
    if (key == "primaryVms")
        return parseUnsigned(value, &cfg.primaryVms) ||
               fail("bad unsigned");
    if (key == "coresPerPrimary")
        return parseUnsigned(value, &cfg.coresPerPrimary) ||
               fail("bad unsigned");
    if (key == "hwEmergencyBuffer")
        return parseUnsigned(value, &cfg.hwEmergencyBuffer) ||
               fail("bad unsigned");

    // double fields
    if (key == "loadScale")
        return parseDouble(value, &cfg.loadScale) || fail("bad double");
    if (key == "warmupFraction")
        return parseDouble(value, &cfg.warmupFraction) ||
               fail("bad double");
    if (key == "candidateFraction")
        return parseDouble(value, &cfg.candidateFraction) ||
               fail("bad double");
    if (key == "harvestWayFraction") {
        double f = 0;
        if (!parseDouble(value, &f))
            return fail("bad double");
        if (!validHarvestFraction(cfg, f, error))
            return false;
        cfg.harvestWayFraction = f;
        return true;
    }
    if (key == "waysFraction") {
        double f = 0;
        if (!parseDouble(value, &f))
            return fail("bad double");
        if (f <= 0.0 || f > 1.0)
            return fail("waysFraction must be in (0, 1], got");
        cfg.waysFraction = f;
        // Re-check the fraction already configured: shrinking the
        // structures can make a previously fine region degenerate.
        if (!validHarvestFraction(cfg, cfg.harvestWayFraction, error))
            return false;
        return true;
    }
    if (key == "llcMbPerCore")
        return parseDouble(value, &cfg.llcMbPerCore) ||
               fail("bad double");

    // bool fields
    if (key == "harvesting")
        return parseBool(value, &cfg.harvesting) || fail("bad bool");
    if (key == "harvestOnBlock")
        return parseBool(value, &cfg.harvestOnBlock) ||
               fail("bad bool");
    if (key == "adaptiveHarvest")
        return parseBool(value, &cfg.adaptiveHarvest) ||
               fail("bad bool");
    if (key == "hwSched")
        return parseBool(value, &cfg.hwSched) || fail("bad bool");
    if (key == "hwQueue")
        return parseBool(value, &cfg.hwQueue) || fail("bad bool");
    if (key == "hwCtxtSwitch")
        return parseBool(value, &cfg.hwCtxtSwitch) || fail("bad bool");
    if (key == "partitioning")
        return parseBool(value, &cfg.partitioning) || fail("bad bool");
    if (key == "efficientFlush")
        return parseBool(value, &cfg.efficientFlush) ||
               fail("bad bool");
    if (key == "swFlushOnReassign")
        return parseBool(value, &cfg.swFlushOnReassign) ||
               fail("bad bool");
    if (key == "swReassignFree")
        return parseBool(value, &cfg.swReassignFree) ||
               fail("bad bool");
    if (key == "harvestVmIdle")
        return parseBool(value, &cfg.harvestVmIdle) || fail("bad bool");
    if (key == "infiniteCaches")
        return parseBool(value, &cfg.infiniteCaches) ||
               fail("bad bool");

    // harvest policy (PR 8)
    if (key == "policy") {
        if (!hh::policy::knownHarvestPolicy(value))
            return fail("unknown harvest policy (expected legacy, "
                        "static, hysteresis, critical or bandit), got");
        cfg.policy = value;
        return true;
    }
    if (key == "policyPeriodMs") {
        double ms = 0;
        if (!parseDouble(value, &ms) || ms <= 0.0)
            return fail("bad positive double");
        cfg.policyPeriod = hh::sim::msToCycles(ms);
        return true;
    }
    if (key == "policyClusters") {
        unsigned n = 0;
        if (!parseUnsigned(value, &n) || n == 0)
            return fail("bad positive unsigned");
        cfg.policyClusters = n;
        return true;
    }
    if (key == "policyEwmaAlpha") {
        double a = 0;
        if (!parseDouble(value, &a) || a <= 0.0 || a > 1.0)
            return fail("EWMA alpha must be in (0, 1], got");
        cfg.policyEwmaAlpha = a;
        return true;
    }
    if (key == "policyLendUtil" || key == "policyHoldUtil") {
        double u = 0;
        if (!parseDouble(value, &u) || u < 0.0 || u > 1.0)
            return fail("utilization threshold must be in [0, 1], "
                        "got");
        (key == "policyLendUtil" ? cfg.policyLendUtil
                                 : cfg.policyHoldUtil) = u;
        return true;
    }
    if (key == "policyEpsilon") {
        double e = 0;
        if (!parseDouble(value, &e) || e < 0.0 || e > 1.0)
            return fail("epsilon must be in [0, 1], got");
        cfg.policyEpsilon = e;
        return true;
    }
    if (key == "policyP99TargetMs") {
        double t = 0;
        if (!parseDouble(value, &t) || t < 0.0)
            return fail("bad non-negative double");
        cfg.policyP99TargetMs = t;
        return true;
    }
    if (key == "policyP99Penalty") {
        double p = 0;
        if (!parseDouble(value, &p) || p < 0.0)
            return fail("bad non-negative double");
        cfg.policyP99Penalty = p;
        return true;
    }

    // cache-capacity leasing (src/lease/)
    if (key == "cacheLendEnabled")
        return parseBool(value, &cfg.cacheLendEnabled) ||
               fail("bad bool");
    if (key == "cacheLendL3Ways") {
        unsigned n = 0;
        if (!parseUnsigned(value, &n))
            return fail("bad unsigned");
        // The per-VM L3 partitions are fixed 16-way; a 0-way lease is
        // no lease and a 16-way lease would evict the owner from its
        // own partition, so both degenerate masks are rejected here.
        if (n < 1 || n > 15) {
            if (error)
                *error = "key \"" + key + "\": leased L3 ways must "
                         "be in 1..15 (the owner keeps the rest of "
                         "its 16-way partition), got \"" + value +
                         "\"";
            return false;
        }
        cfg.cacheLendL3Ways = n;
        return true;
    }
    if (key == "cacheLendL2WayFraction") {
        double f = 0;
        if (!parseDouble(value, &f))
            return fail("bad double");
        if (f < 0.0 || f >= 1.0)
            return fail("L2 lease fraction must be in [0, 1), got");
        if (!validCacheLendL2Fraction(cfg, f, error))
            return false;
        cfg.cacheLendL2WayFraction = f;
        return true;
    }
    if (key == "cacheLendPeriodMs") {
        double ms = 0;
        if (!parseDouble(value, &ms) || ms <= 0.0)
            return fail("bad positive double");
        cfg.cacheLendPeriod = hh::sim::msToCycles(ms);
        return true;
    }
    if (key == "cacheLendTermMs") {
        double ms = 0;
        if (!parseDouble(value, &ms) || ms <= 0.0)
            return fail("bad positive double");
        cfg.cacheLendTerm = hh::sim::msToCycles(ms);
        return true;
    }

    // enums
    if (key == "repl") {
        using hh::cache::ReplKind;
        if (value == "LRU")
            cfg.repl = ReplKind::LRU;
        else if (value == "RRIP")
            cfg.repl = ReplKind::RRIP;
        else if (value == "HardHarvest")
            cfg.repl = ReplKind::HardHarvest;
        else if (value == "CDP")
            cfg.repl = ReplKind::CDP;
        else
            return fail("unknown replacement policy");
        return true;
    }

    if (error)
        *error = "unknown config key \"" + key + "\"";
    return false;
}

std::vector<ExperimentPoint>
ExperimentSpec::points() const
{
    using hh::cluster::SystemConfig;
    using hh::cluster::SystemKind;

    const std::vector<std::string> sys =
        systems.empty() ? std::vector<std::string>{"HardHarvestBlock"}
                        : systems;
    const std::vector<std::string> app_list =
        apps.empty() ? std::vector<std::string>{"BFS"} : apps;
    const std::vector<std::uint64_t> seed_list =
        seeds.empty() ? std::vector<std::uint64_t>{1} : seeds;

    std::vector<ExperimentPoint> out;
    for (const std::string &sname : sys) {
        SystemKind kind;
        if (!systemKindByName(sname, &kind))
            hh::sim::fatal("ExperimentSpec \"", name,
                           "\": unknown system \"", sname, "\"");
        SystemConfig base = hh::cluster::makeSystem(kind);
        for (const auto &[k, v] : overrides) {
            std::string err;
            if (!applySpecKey(base, k, v, &err))
                hh::sim::fatal("ExperimentSpec \"", name, "\": ", err);
        }

        // Cross product over the sweep axes, last axis fastest.
        std::size_t combos = 1;
        for (const auto &axis : sweeps)
            combos *= axis.values.size();
        for (std::size_t c = 0; c < combos; ++c) {
            SystemConfig cfg = base;
            std::string sweep_label;
            std::size_t rem = c;
            std::vector<std::size_t> idx(sweeps.size(), 0);
            for (std::size_t a = sweeps.size(); a-- > 0;) {
                idx[a] = rem % sweeps[a].values.size();
                rem /= sweeps[a].values.size();
            }
            for (std::size_t a = 0; a < sweeps.size(); ++a) {
                const std::string &v = sweeps[a].values[idx[a]];
                std::string err;
                if (!applySpecKey(cfg, sweeps[a].key, v, &err))
                    hh::sim::fatal("ExperimentSpec \"", name,
                                   "\": ", err);
                sweep_label += "/" + sweeps[a].key + "=" + v;
            }
            for (const std::string &app : app_list) {
                for (const std::uint64_t seed : seed_list) {
                    ExperimentPoint p;
                    p.cfg = cfg;
                    p.batchApp = app;
                    p.seed = seed;
                    p.label = sname + "/" + app + "/seed" +
                              std::to_string(seed) + sweep_label;
                    out.push_back(std::move(p));
                }
            }
        }
    }
    return out;
}

bool
parseSpec(const std::string &text, ExperimentSpec *out,
          std::string *error)
{
    ExperimentSpec spec;
    std::istringstream is(text);
    std::string line;
    unsigned lineno = 0;
    hh::cluster::SystemConfig scratch; // key/value validation only
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            if (!tokens(line).empty()) {
                if (error)
                    *error = "line " + std::to_string(lineno) +
                             ": expected key = value";
                return false;
            }
            continue;
        }
        const auto key_toks = tokens(line.substr(0, eq));
        const auto vals = tokens(line.substr(eq + 1));
        if (key_toks.size() != 1 || vals.empty()) {
            if (error)
                *error = "line " + std::to_string(lineno) +
                         ": expected key = value";
            return false;
        }
        const std::string &key = key_toks[0];

        if (key == "name") {
            spec.name = vals[0];
        } else if (key == "systems") {
            for (const auto &v : vals) {
                hh::cluster::SystemKind k;
                if (!systemKindByName(v, &k)) {
                    if (error)
                        *error = "line " + std::to_string(lineno) +
                                 ": unknown system \"" + v + "\"";
                    return false;
                }
            }
            spec.systems = vals;
        } else if (key == "apps") {
            spec.apps = vals;
        } else if (key == "seeds") {
            spec.seeds.clear();
            for (const auto &v : vals) {
                unsigned s = 0;
                if (!parseUnsigned(v, &s)) {
                    if (error)
                        *error = "line " + std::to_string(lineno) +
                                 ": bad seed \"" + v + "\"";
                    return false;
                }
                spec.seeds.push_back(s);
            }
        } else if (key.rfind("sweep.", 0) == 0) {
            SweepAxis axis;
            axis.key = key.substr(6);
            axis.values = vals;
            for (const auto &v : vals) {
                std::string err;
                if (!applySpecKey(scratch, axis.key, v, &err)) {
                    if (error)
                        *error = "line " + std::to_string(lineno) +
                                 ": " + err;
                    return false;
                }
            }
            spec.sweeps.push_back(std::move(axis));
        } else {
            if (vals.size() != 1) {
                if (error)
                    *error = "line " + std::to_string(lineno) +
                             ": scalar key \"" + key +
                             "\" takes one value";
                return false;
            }
            std::string err;
            if (!applySpecKey(scratch, key, vals[0], &err)) {
                if (error)
                    *error =
                        "line " + std::to_string(lineno) + ": " + err;
                return false;
            }
            spec.overrides.emplace_back(key, vals[0]);
        }
    }
    *out = std::move(spec);
    return true;
}

} // namespace hh::exp
