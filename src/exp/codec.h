/**
 * @file
 * Exact text round-trip of ServerResults for the result ledger.
 *
 * Doubles are written as C hexfloats and parsed with strtod, so a
 * decoded ServerResults compares bit-identical to the original — the
 * property the memoization cache needs for `repro_all` to reproduce
 * figure outputs byte-for-byte from cached rows.
 *
 * Only the figure-facing fields are covered (service latencies,
 * throughput, utilization, loan counters). Observability and audit
 * payloads are deliberately excluded: the JobScheduler never memoizes
 * runs that have tracing, metric sampling, auditing or fault
 * injection enabled, so nothing is lost.
 */

#ifndef HH_EXP_CODEC_H
#define HH_EXP_CODEC_H

#include <string>

#include "cluster/server.h"

namespace hh::exp {

/** Canonical text encoding of the figure-facing result fields. */
std::string encodeServerResults(const hh::cluster::ServerResults &r);

/**
 * Inverse of encodeServerResults().
 *
 * @return false (and sets @p error) on malformed input; @p out is
 *         then unspecified.
 */
bool decodeServerResults(const std::string &text,
                         hh::cluster::ServerResults *out,
                         std::string *error);

} // namespace hh::exp

#endif // HH_EXP_CODEC_H
