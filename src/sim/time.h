/**
 * @file
 * Simulated-time definitions for the HardHarvest simulator.
 *
 * All simulated time is kept in integer cycles of the server clock
 * (3 GHz, matching Table 1 of the paper). Helpers convert between
 * cycles and wall-clock units. Using integers keeps event ordering
 * exact and the simulation deterministic.
 */

#ifndef HH_SIM_TIME_H
#define HH_SIM_TIME_H

#include <cstdint>

namespace hh::sim {

/** Simulated time, in clock cycles. */
using Cycles = std::uint64_t;

/** Clock frequency of every simulated core, in Hz (Table 1: 3 GHz). */
inline constexpr std::uint64_t kClockHz = 3'000'000'000ULL;

/** Cycles per microsecond at the simulated clock. */
inline constexpr Cycles kCyclesPerUs = kClockHz / 1'000'000ULL;

/** Cycles per nanosecond at the simulated clock (3 cycles/ns). */
inline constexpr Cycles kCyclesPerNs = kClockHz / 1'000'000'000ULL;

/** Convert nanoseconds to cycles. */
constexpr Cycles
nsToCycles(double ns)
{
    return static_cast<Cycles>(ns * static_cast<double>(kCyclesPerNs));
}

/** Convert microseconds to cycles. */
constexpr Cycles
usToCycles(double us)
{
    return static_cast<Cycles>(us * static_cast<double>(kCyclesPerUs));
}

/** Convert milliseconds to cycles. */
constexpr Cycles
msToCycles(double ms)
{
    return usToCycles(ms * 1000.0);
}

/** Convert seconds to cycles. */
constexpr Cycles
secToCycles(double sec)
{
    return static_cast<Cycles>(sec * static_cast<double>(kClockHz));
}

/** Convert cycles to nanoseconds. */
constexpr double
cyclesToNs(Cycles c)
{
    return static_cast<double>(c) / static_cast<double>(kCyclesPerNs);
}

/** Convert cycles to microseconds. */
constexpr double
cyclesToUs(Cycles c)
{
    return static_cast<double>(c) / static_cast<double>(kCyclesPerUs);
}

/** Convert cycles to milliseconds. */
constexpr double
cyclesToMs(Cycles c)
{
    return cyclesToUs(c) / 1000.0;
}

/** Convert cycles to seconds. */
constexpr double
cyclesToSec(Cycles c)
{
    return static_cast<double>(c) / static_cast<double>(kClockHz);
}

} // namespace hh::sim

#endif // HH_SIM_TIME_H
