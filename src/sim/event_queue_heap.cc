#include "sim/event_queue_heap.h"

#include <algorithm>

#include "sim/log.h"
#include "snapshot/archive.h"

namespace hh::sim {

namespace {

constexpr std::uint32_t kGenShift = 32;

inline EventId
makeId(std::uint32_t gen, std::uint32_t slot)
{
    return (static_cast<EventId>(gen) << kGenShift) |
           (static_cast<EventId>(slot) + 1);
}

} // namespace

std::uint32_t
HeapEventQueue::allocSlot()
{
    if (!free_slots_.empty()) {
        const std::uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        return slot;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void
HeapEventQueue::freeSlot(std::uint32_t slot)
{
    Record &rec = slab_[slot];
    rec.cb.reset();
    rec.tag = hh::snap::SnapTag{};
    ++rec.gen;
    free_slots_.push_back(slot);
}

EventId
HeapEventQueue::schedule(Cycles when, Callback cb)
{
    const std::uint32_t slot = allocSlot();
    Record &rec = slab_[slot];
    rec.cb = std::move(cb);
    heap_.push_back(Entry{when, next_seq_++, slot, rec.gen});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return makeId(rec.gen, slot);
}

EventId
HeapEventQueue::schedule(Cycles when, const hh::snap::SnapTag &tag,
                         Callback cb)
{
    const EventId id = schedule(when, std::move(cb));
    slab_[static_cast<std::uint32_t>((id & 0xffffffffu) - 1)].tag =
        tag;
    return id;
}

void
HeapEventQueue::serialize(hh::snap::Archive &ar, const RearmFn &rearm)
{
    ar.section(0x45565451u, "event_queue"); // 'EVTQ'
    if (ar.saving()) {
        // Live entries in deterministic (seq) order; dead heap
        // entries are dropped, which a resumed run cannot observe.
        std::vector<Entry> live;
        live.reserve(live_);
        for (const Entry &e : heap_) {
            if (!dead(e))
                live.push_back(e);
        }
        std::sort(live.begin(), live.end(),
                  [](const Entry &a, const Entry &b) {
                      return a.seq < b.seq;
                  });
        std::uint64_t n = live.size();
        ar.io(n);
        for (Entry &e : live) {
            Record &rec = slab_[e.slot];
            if (rec.tag.kind == hh::snap::SnapTag::kNone) {
                panic("HeapEventQueue snapshot: live event at t=",
                      e.when, " (slot ", e.slot,
                      ") was scheduled without a snap tag");
            }
            ar.io(e.when);
            ar.io(e.seq);
            ar.io(e.slot);
            ar.io(e.gen);
            ar.io(rec.tag);
        }
        std::uint64_t slots = slab_.size();
        ar.io(slots);
        for (Record &rec : slab_)
            ar.io(rec.gen);
        ar.io(free_slots_);
        ar.io(next_seq_);
        ar.io(last_popped_);
        ar.io(monotonic_violations_);
        return;
    }

    std::uint64_t n = 0;
    ar.io(n);
    struct Saved
    {
        Entry entry;
        hh::snap::SnapTag tag;
    };
    std::vector<Saved> saved;
    saved.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && ar.ok(); ++i) {
        Saved s{};
        ar.io(s.entry.when);
        ar.io(s.entry.seq);
        ar.io(s.entry.slot);
        ar.io(s.entry.gen);
        ar.io(s.tag);
        saved.push_back(s);
    }
    std::uint64_t slots = 0;
    ar.io(slots);
    if (ar.loading() && slots > (1u << 28)) {
        ar.fail("event queue snapshot: implausible slab size");
        return;
    }
    std::vector<std::uint32_t> gens(
        static_cast<std::size_t>(slots));
    for (auto &g : gens)
        ar.io(g);
    std::vector<std::uint32_t> free_slots;
    ar.io(free_slots);
    std::uint64_t next_seq = 0;
    Cycles last_popped = 0;
    std::uint64_t monotonic = 0;
    ar.io(next_seq);
    ar.io(last_popped);
    ar.io(monotonic);
    if (!ar.ok())
        return;

    heap_.clear();
    slab_.clear();
    slab_.resize(gens.size());
    for (std::size_t i = 0; i < gens.size(); ++i)
        slab_[i].gen = gens[i];
    for (const Saved &s : saved) {
        if (s.entry.slot >= slab_.size()) {
            ar.fail("event queue snapshot: slot out of range");
            return;
        }
        Record &rec = slab_[s.entry.slot];
        rec.tag = s.tag;
        rec.cb = rearm(s.tag);
        if (!rec.cb) {
            panic("HeapEventQueue restore: re-arm hook returned no "
                  "callback for tag kind ", s.tag.kind);
        }
        heap_.push_back(s.entry);
    }
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    free_slots_ = std::move(free_slots);
    next_seq_ = next_seq;
    live_ = heap_.size();
    dead_ = 0;
    last_popped_ = last_popped;
    monotonic_violations_ = monotonic;
}

bool
HeapEventQueue::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    const std::uint32_t slot =
        static_cast<std::uint32_t>((id & 0xffffffffu) - 1);
    const std::uint32_t gen =
        static_cast<std::uint32_t>(id >> kGenShift);
    if (slot >= slab_.size() || slab_[slot].gen != gen ||
        !slab_[slot].cb)
        return false;
    freeSlot(slot);
    --live_;
    ++dead_;
    maybeCompact();
    return true;
}

void
HeapEventQueue::skipDead() const
{
    while (!heap_.empty() && dead(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        --dead_;
    }
}

void
HeapEventQueue::maybeCompact()
{
    if (dead_ <= 64 || dead_ <= live_)
        return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const Entry &e) {
                                   return dead(e);
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    dead_ = 0;
}

Cycles
HeapEventQueue::nextTime() const
{
    skipDead();
    if (heap_.empty())
        panic("HeapEventQueue::nextTime on empty queue");
    return heap_.front().when;
}

HeapEventQueue::Callback
HeapEventQueue::pop(Cycles &when)
{
    skipDead();
    if (heap_.empty())
        panic("HeapEventQueue::pop on empty queue");
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    when = top.when;
    if (when < last_popped_)
        ++monotonic_violations_;
    last_popped_ = when;
    Callback cb = std::move(slab_[top.slot].cb);
    freeSlot(top.slot);
    --live_;
    return cb;
}

} // namespace hh::sim
