#include "sim/rng.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "sim/log.h"
#include "sim/prof.h"
#include "snapshot/archive.h"

namespace hh::sim {

namespace {

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t x = seed ^ (stream * 0xD2B74407B1CE6E93ULL + 1);
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt: n must be > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::uniformInt: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

void
Rng::serialize(hh::snap::Archive &ar)
{
    for (auto &s : s_)
        ar.io(s);
    ar.io(has_cached_normal_);
    ar.io(cached_normal_);
}

ZipfSampler::ZipfSampler(std::size_t n, double theta)
{
    if (n == 0)
        panic("ZipfSampler: n must be > 0");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;

    bucket_.resize(kIndexBuckets + 1);
    for (std::size_t b = 0; b <= kIndexBuckets; ++b) {
        const double lo = static_cast<double>(b) /
                          static_cast<double>(kIndexBuckets);
        bucket_[b] = static_cast<std::uint32_t>(
            std::lower_bound(cdf_.begin(), cdf_.end(), lo) -
            cdf_.begin());
    }
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    HH_PROF_SCOPE("workload.zipf_sample");
    const double u = rng.uniform();
    // Narrow to the index slice containing u, then lower_bound
    // inside it: cdf_[bucket_[b]] is the first value >= b/B and u
    // lies in [b/B, (b+1)/B), so the answer is in
    // [bucket_[b], bucket_[b+1]] — the +1 below keeps the slice's
    // one-past-the-answer element searchable.
    std::size_t b = static_cast<std::size_t>(
        u * static_cast<double>(kIndexBuckets));
    b = std::min(b, kIndexBuckets - 1);
    const auto first = cdf_.begin() + bucket_[b];
    const auto last =
        cdf_.begin() +
        std::min<std::size_t>(bucket_[b + 1] + 1, cdf_.size());
    const auto it = std::lower_bound(first, last, u);
    return static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf_.begin(),
                                 static_cast<std::ptrdiff_t>(cdf_.size()) -
                                     1));
}

std::shared_ptr<const ZipfSampler>
sharedZipfSampler(std::size_t n, double theta)
{
    struct Key
    {
        std::size_t n;
        std::uint64_t theta_bits; //!< Exact-bits key, no FP compare.
        bool operator==(const Key &o) const
        {
            return n == o.n && theta_bits == o.theta_bits;
        }
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            return std::hash<std::size_t>{}(k.n) * 0x9E3779B97F4A7C15ULL ^
                   std::hash<std::uint64_t>{}(k.theta_bits);
        }
    };
    static std::mutex mu;
    static std::unordered_map<Key, std::weak_ptr<const ZipfSampler>,
                              KeyHash>
        cache;

    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(theta));
    std::memcpy(&bits, &theta, sizeof(bits));
    const Key key{n, bits};

    const std::lock_guard<std::mutex> lock(mu);
    if (auto it = cache.find(key); it != cache.end()) {
        if (auto hit = it->second.lock())
            return hit;
    }
    auto made = std::make_shared<const ZipfSampler>(n, theta);
    cache[key] = made;
    return made;
}

} // namespace hh::sim
