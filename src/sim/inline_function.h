/**
 * @file
 * A small-buffer-optimised, move-only callable wrapper.
 *
 * The discrete-event hot path schedules tens of millions of short
 * callbacks per simulated second. `std::function` heap-allocates for
 * anything larger than two pointers of captured state, and its copy
 * machinery drags in type-erasure overhead the simulator never uses
 * (events are executed exactly once and never copied).
 *
 * `InlineFunction<R(Args...), N>` stores any callable whose state
 * fits in N bytes directly inside the object — no allocation, one
 * indirect call to invoke — and transparently falls back to the heap
 * for oversized captures. It is move-only by design.
 */

#ifndef HH_SIM_INLINE_FUNCTION_H
#define HH_SIM_INLINE_FUNCTION_H

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hh::sim {

/** Default inline capacity: room for `this` plus several words of
 *  captured ids/cycles, the common shape of simulator events. */
inline constexpr std::size_t kInlineFunctionCapacity = 48;

template <typename Signature,
          std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction; // undefined; specialised below

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    InlineFunction() noexcept = default;

    /** Wrap any callable. Small, nothrow-movable callables live in
     *  the inline buffer; everything else goes to the heap. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f) // NOLINT(google-explicit-constructor)
    {
        assign(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction &
    operator=(F &&f)
    {
        reset();
        assign(std::forward<F>(f));
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Destroy the held callable, leaving the wrapper empty. */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(&buf_);
            ops_ = nullptr;
        }
    }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Invoke the held callable. @pre bool(*this). */
    R
    operator()(Args... args)
    {
        return ops_->invoke(&buf_, std::forward<Args>(args)...);
    }

    /** True when the held callable lives in the inline buffer (no
     *  heap allocation) — exposed for tests and benchmarks. */
    bool
    isInline() const noexcept
    {
        return ops_ != nullptr && ops_->inline_storage;
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool inline_storage;
    };

    template <typename F>
    static constexpr bool kFitsInline =
        sizeof(F) <= Capacity &&
        alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    template <typename F>
    struct InlineOps
    {
        static R
        invoke(void *p, Args &&...args)
        {
            return (*std::launder(reinterpret_cast<F *>(p)))(
                std::forward<Args>(args)...);
        }

        static void
        relocate(void *dst, void *src) noexcept
        {
            F *from = std::launder(reinterpret_cast<F *>(src));
            ::new (dst) F(std::move(*from));
            from->~F();
        }

        static void
        destroy(void *p) noexcept
        {
            std::launder(reinterpret_cast<F *>(p))->~F();
        }

        static constexpr Ops ops{&invoke, &relocate, &destroy, true};
    };

    template <typename F>
    struct HeapOps
    {
        static R
        invoke(void *p, Args &&...args)
        {
            return (**static_cast<F **>(p))(std::forward<Args>(args)...);
        }

        static void
        relocate(void *dst, void *src) noexcept
        {
            *static_cast<F **>(dst) = *static_cast<F **>(src);
        }

        static void
        destroy(void *p) noexcept
        {
            delete *static_cast<F **>(p);
        }

        static constexpr Ops ops{&invoke, &relocate, &destroy, false};
    };

    template <typename F>
    void
    assign(F &&f)
    {
        using D = std::decay_t<F>;
        if constexpr (kFitsInline<D>) {
            ::new (static_cast<void *>(&buf_)) D(std::forward<F>(f));
            ops_ = &InlineOps<D>::ops;
        } else {
            *reinterpret_cast<D **>(&buf_) = new D(std::forward<F>(f));
            ops_ = &HeapOps<D>::ops;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        if (other.ops_) {
            other.ops_->relocate(&buf_, &other.buf_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace hh::sim

#endif // HH_SIM_INLINE_FUNCTION_H
