/**
 * @file
 * The binary-heap event queue (PR-2 design), kept alongside the
 * timing-wheel `EventQueue` as a differential reference.
 *
 * `HeapEventQueue` is the exact slab + lazy-compaction binary heap
 * that shipped before the hierarchical timing wheel replaced it on
 * the hot path. It stays in the tree for three reasons:
 *  - the micro-benchmark shootout (`bench/micro_eventqueue.cpp`)
 *    measures legacy / heap / wheel side by side;
 *  - the fuzz property test asserts the wheel and the heap produce
 *    identical (time, seq) pop orders under random interleavings;
 *  - the snapshot tests restore heap-written checkpoints on the
 *    wheel and vice versa, proving the serialized encoding is a
 *    structure-independent contract.
 *
 * The public interface and the serialize() byte encoding are
 * identical to `EventQueue`'s; see event_queue.h for the contract.
 */

#ifndef HH_SIM_EVENT_QUEUE_HEAP_H
#define HH_SIM_EVENT_QUEUE_HEAP_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/inline_function.h"
#include "sim/time.h"
#include "snapshot/tag.h"

namespace hh::snap {
class Archive;
} // namespace hh::snap

namespace hh::sim {

/**
 * Min-heap of timestamped callbacks with stable FIFO tie-breaking.
 */
class HeapEventQueue
{
  public:
    using Callback = InlineFunction<void()>;
    using EventId = hh::sim::EventId;

    /** See EventQueue::schedule. */
    EventId schedule(Cycles when, Callback cb);

    /** See EventQueue::schedule (tagged overload). */
    EventId schedule(Cycles when, const hh::snap::SnapTag &tag,
                     Callback cb);

    /** See EventQueue::cancel. */
    bool cancel(EventId id);

    bool empty() const { return live_ == 0; }
    std::size_t size() const { return live_; }

    /** Time of the earliest live event. @pre !empty(). */
    Cycles nextTime() const;

    /** Pop and return the earliest live event. @pre !empty(). */
    Callback pop(Cycles &when);

    /** @name Introspection (tests/benchmarks) @{ */
    std::size_t heapEntries() const { return heap_.size(); }
    std::size_t slabSlots() const { return slab_.size(); }
    std::uint64_t monotonicViolations() const
    {
        return monotonic_violations_;
    }
    /** @} */

    using RearmFn =
        std::function<Callback(const hh::snap::SnapTag &)>;

    /**
     * Save or restore through @p ar; byte-compatible with
     * EventQueue::serialize (same structural encoding).
     */
    void serialize(hh::snap::Archive &ar, const RearmFn &rearm);

  private:
    /** One reusable event record. */
    struct Record
    {
        Callback cb;
        hh::snap::SnapTag tag;
        std::uint32_t gen = 1;
    };

    /** Heap entry: plain data, no callback, no hashing. */
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** Min-heap order on (when, seq) via std::*_heap's max-heap. */
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool dead(const Entry &e) const
    {
        return slab_[e.slot].gen != e.gen;
    }

    void skipDead() const;
    void maybeCompact();

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);

    mutable std::vector<Entry> heap_;
    std::vector<Record> slab_;
    std::vector<std::uint32_t> free_slots_;
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
    mutable std::size_t dead_ = 0;
    Cycles last_popped_ = 0;
    std::uint64_t monotonic_violations_ = 0;
};

} // namespace hh::sim

#endif // HH_SIM_EVENT_QUEUE_HEAP_H
