/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are arbitrary callbacks ordered by (time, insertion sequence);
 * ties are broken FIFO so the simulation is deterministic. Events can
 * be cancelled by id (used for timers that are superseded, e.g. a
 * polling core that gets a hardware notification first).
 */

#ifndef HH_SIM_EVENT_QUEUE_H
#define HH_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace hh::sim {

/** Opaque handle identifying a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel id returned for operations that cannot be cancelled. */
inline constexpr EventId kInvalidEventId = 0;

/**
 * Min-heap of timestamped callbacks with stable FIFO tie-breaking.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when Absolute simulated time; must be >= the time of the
     *             most recently popped event.
     * @param cb   The callback to run.
     * @return An id that can be passed to cancel().
     */
    EventId schedule(Cycles when, Callback cb);

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event existed and had not yet run.
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled, not-yet-run) events. */
    std::size_t size() const { return live_; }

    /** Time of the earliest live event. @pre !empty(). */
    Cycles nextTime() const;

    /**
     * Pop and return the earliest live event.
     *
     * @param[out] when Receives the event's timestamp.
     * @return The callback to execute.
     * @pre !empty().
     */
    Callback pop(Cycles &when);

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        EventId id;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries from the top of the heap. */
    void skipDead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    mutable std::unordered_set<EventId> cancelled_;
    std::unordered_map<EventId, Callback> callbacks_;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::size_t live_ = 0;
};

} // namespace hh::sim

#endif // HH_SIM_EVENT_QUEUE_H
