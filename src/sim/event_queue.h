/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are arbitrary callbacks ordered by (time, insertion sequence);
 * ties are broken FIFO so the simulation is deterministic. Events can
 * be cancelled by id (used for timers that are superseded, e.g. a
 * polling core that gets a hardware notification first).
 *
 * Hot-path design: a three-level hierarchical timing wheel replaces
 * the earlier binary heap (kept as `HeapEventQueue` for differential
 * testing). Level g covers 256 buckets of 2^(8g)-cycle granularity,
 * so the wheel spans 2^24 cycles (~5.6 ms at 3 GHz) from its origin;
 * later events wait in an overflow min-heap ("far list") ordered by
 * (when, seq). Bucket occupancy is tracked in 256-bit bitmaps, so
 * finding the earliest event is a handful of countr_zero scans, and a
 * level-0 bucket holds exactly one timestamp, making same-cycle pops
 * a bump of the bucket cursor — the property `Simulator::run()`'s
 * batched dispatch exploits.
 *
 * Callbacks live in a slab of reusable records and are stored in a
 * small-buffer-optimised `InlineFunction`, so the schedule/pop cycle
 * performs no heap allocation for typical events. An `EventId`
 * encodes (generation, slot); cancellation bumps the slot's
 * generation, which is O(1) and needs no hash-map lookup — stale
 * wheel nodes are recognised by a generation mismatch and discarded
 * lazily, with periodic compaction keeping stored nodes proportional
 * to the number of live events.
 *
 * Determinism contract (identical to the heap implementation):
 * pops deliver the globally minimal (when, seq) pair, where seq is
 * the schedule-order sequence number. Cascading preserves this
 * because (a) within any bucket, equal-time nodes appear in ascending
 * seq order — schedules append in seq order, cascades redistribute in
 * stored order, and the far heap drains in (when, seq) order — and
 * (b) every node moved by a cascade was scheduled before any node a
 * later schedule() appends behind it. The serialize() encoding is
 * structure-independent (live events sorted by seq, plus the slab
 * generation/free-slot state), so checkpoints written by the heap
 * restore on the wheel byte-for-byte and vice versa.
 */

#ifndef HH_SIM_EVENT_QUEUE_H
#define HH_SIM_EVENT_QUEUE_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/inline_function.h"
#include "sim/time.h"
#include "snapshot/tag.h"

namespace hh::snap {
class Archive;
} // namespace hh::snap

namespace hh::sim {

/**
 * Opaque handle identifying a scheduled event.
 *
 * Encodes (generation << 32) | (slot + 1); the +1 keeps 0 free as the
 * invalid sentinel. Generations make stale ids safe: cancelling or
 * running an event invalidates every outstanding id for its slot.
 */
using EventId = std::uint64_t;

/** Sentinel id returned for operations that cannot be cancelled. */
inline constexpr EventId kInvalidEventId = 0;

/**
 * Hierarchical timing wheel of timestamped callbacks with stable
 * FIFO tie-breaking.
 */
class EventQueue
{
  public:
    using Callback = InlineFunction<void()>;
    /** Member alias so generic code can name the id type. */
    using EventId = hh::sim::EventId;

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when Absolute simulated time; must be >= the time of the
     *             most recently popped event.
     * @param cb   The callback to run.
     * @return An id that can be passed to cancel().
     */
    EventId schedule(Cycles when, Callback cb);

    /**
     * Schedule a callback carrying a snapshot tag.
     *
     * The tag is the serializable identity of the closure: a
     * checkpoint stores it instead of the callback, and the owning
     * component's re-arm hook rebuilds an equivalent closure from it
     * on restore. Events scheduled without a tag cannot be
     * checkpointed — serialize() panics if one is live.
     */
    EventId schedule(Cycles when, const hh::snap::SnapTag &tag,
                     Callback cb);

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event existed and had not yet run.
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled, not-yet-run) events. */
    std::size_t size() const { return live_; }

    /** Time of the earliest live event. @pre !empty(). */
    Cycles nextTime() const;

    /**
     * Pop and return the earliest live event.
     *
     * @param[out] when Receives the event's timestamp.
     * @return The callback to execute.
     * @pre !empty().
     */
    Callback pop(Cycles &when);

    /** @name Introspection (tests/benchmarks) @{ */
    /** Nodes currently stored across all wheel levels and the far
     *  list, including not-yet-reaped cancelled ones. Bounded by
     *  compaction to O(live). */
    std::size_t heapEntries() const { return live_ + dead_; }
    /** Slab records allocated (high-water mark of concurrent
     *  events, live or reusable). */
    std::size_t slabSlots() const { return slab_.size(); }
    /** Pops whose timestamp went backwards relative to the previous
     *  pop. Always 0 for a correct queue; the invariant auditor
     *  asserts it (a regression in the wheel/cascade logic would
     *  silently reorder the simulation otherwise). */
    std::uint64_t monotonicViolations() const
    {
        return monotonic_violations_;
    }
    /** @} */

    /** Maps a stored snap-tag back to an equivalent callback. */
    using RearmFn =
        std::function<Callback(const hh::snap::SnapTag &)>;

    /**
     * Save or restore the queue through @p ar.
     *
     * The structural encoding preserves slot numbers, generations,
     * sequence numbers and the free-slot order, so `EventId`s held by
     * components (e.g. a core's pending completion) remain valid
     * verbatim across a restore. Saving panics on a live untagged
     * event; loading invokes @p rearm once per live event to rebuild
     * its callback into the original slot. Dead (cancelled) nodes
     * are dropped at save, which is observationally equivalent to
     * compaction having run. The byte stream is identical to the one
     * `HeapEventQueue` produces for the same logical state.
     */
    void serialize(hh::snap::Archive &ar, const RearmFn &rearm);

  private:
    /** Buckets per wheel level (one byte of the timestamp each). */
    static constexpr unsigned kSlots = 256;
    static constexpr unsigned kLevels = 3;

    /** One reusable event record. */
    struct Record
    {
        Callback cb;
        /** Serializable identity of cb; kNone for untagged events. */
        hh::snap::SnapTag tag;
        /** Bumped on cancel/pop; mismatching nodes are dead. */
        std::uint32_t gen = 1;
    };

    /** Wheel node: plain data, no callback, no hashing. */
    struct Node
    {
        Cycles when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** Min-heap order on (when, seq) via std::*_heap's max-heap. */
    struct Later
    {
        bool
        operator()(const Node &a, const Node &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** A bucket: append-only vector drained through a cursor. */
    struct Bucket
    {
        std::vector<Node> v;
        std::uint32_t head = 0;

        bool drained() const { return head >= v.size(); }
        void
        reset()
        {
            v.clear();
            head = 0;
        }
    };

    /** 256-bit occupancy bitmap, one bit per bucket. */
    struct Occupancy
    {
        std::array<std::uint64_t, 4> w{};

        void set(unsigned s) { w[s >> 6] |= 1ull << (s & 63); }
        void clear(unsigned s) { w[s >> 6] &= ~(1ull << (s & 63)); }
        bool
        any() const
        {
            return (w[0] | w[1] | w[2] | w[3]) != 0;
        }
        /** Lowest set bit, or kSlots when empty. */
        unsigned first() const;
    };

    bool dead(const Node &n) const
    {
        return slab_[n.slot].gen != n.gen;
    }

    /** Wheel level and bucket for @p when. @pre when >= org_. */
    void place(const Node &n);

    /** Move the earliest occupied coarse bucket down one level,
     *  advancing org_. @pre level 0 is drained. */
    void cascade();

    /** Advance a bucket's cursor past dead nodes; false if it
     *  drained (bucket reset, occupancy cleared). */
    bool skipDeadL0(unsigned s) const;

    /** Drop dead far-list tops. */
    void skipDeadFar() const;

    /** Re-anchor the wheel at @p when's window (contract-violating
     *  schedule into the past; O(n), never hit by legal callers). */
    void rebaseDown(Cycles when);

    /** Sweep cancelled nodes out of every bucket and the far list
     *  once they dominate. */
    void maybeCompact();

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);

    /** Level-0 window base; multiple of kSlots, only advances
     *  (except in rebaseDown). Every stored node has when >= org_. */
    Cycles org_ = 0;
    mutable std::array<std::array<Bucket, kSlots>, kLevels> wheel_{};
    mutable std::array<Occupancy, kLevels> occ_{};
    /** Overflow events >= 2^24 cycles past org_; (when, seq) heap. */
    mutable std::vector<Node> far_;

    std::vector<Record> slab_;
    std::vector<std::uint32_t> free_slots_;
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
    /** Cancelled nodes still stored in buckets or the far list. */
    mutable std::size_t dead_ = 0;
    Cycles last_popped_ = 0;
    std::uint64_t monotonic_violations_ = 0;
};

} // namespace hh::sim

#endif // HH_SIM_EVENT_QUEUE_H
