/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are arbitrary callbacks ordered by (time, insertion sequence);
 * ties are broken FIFO so the simulation is deterministic. Events can
 * be cancelled by id (used for timers that are superseded, e.g. a
 * polling core that gets a hardware notification first).
 *
 * Hot-path design: callbacks live in a slab of reusable records and
 * are stored in a small-buffer-optimised `InlineFunction`, so the
 * schedule/pop cycle performs no heap allocation for typical events.
 * An `EventId` encodes (generation, slot); cancellation bumps the
 * slot's generation, which is O(1) and needs no hash-map lookup —
 * stale heap entries are recognised by a generation mismatch and
 * discarded lazily, with periodic compaction keeping the heap
 * proportional to the number of live events.
 */

#ifndef HH_SIM_EVENT_QUEUE_H
#define HH_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/inline_function.h"
#include "sim/time.h"
#include "snapshot/tag.h"

namespace hh::snap {
class Archive;
} // namespace hh::snap

namespace hh::sim {

/**
 * Opaque handle identifying a scheduled event.
 *
 * Encodes (generation << 32) | (slot + 1); the +1 keeps 0 free as the
 * invalid sentinel. Generations make stale ids safe: cancelling or
 * running an event invalidates every outstanding id for its slot.
 */
using EventId = std::uint64_t;

/** Sentinel id returned for operations that cannot be cancelled. */
inline constexpr EventId kInvalidEventId = 0;

/**
 * Min-heap of timestamped callbacks with stable FIFO tie-breaking.
 */
class EventQueue
{
  public:
    using Callback = InlineFunction<void()>;
    /** Member alias so generic code can name the id type. */
    using EventId = hh::sim::EventId;

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when Absolute simulated time; must be >= the time of the
     *             most recently popped event.
     * @param cb   The callback to run.
     * @return An id that can be passed to cancel().
     */
    EventId schedule(Cycles when, Callback cb);

    /**
     * Schedule a callback carrying a snapshot tag.
     *
     * The tag is the serializable identity of the closure: a
     * checkpoint stores it instead of the callback, and the owning
     * component's re-arm hook rebuilds an equivalent closure from it
     * on restore. Events scheduled without a tag cannot be
     * checkpointed — serialize() panics if one is live.
     */
    EventId schedule(Cycles when, const hh::snap::SnapTag &tag,
                     Callback cb);

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event existed and had not yet run.
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled, not-yet-run) events. */
    std::size_t size() const { return live_; }

    /** Time of the earliest live event. @pre !empty(). */
    Cycles nextTime() const;

    /**
     * Pop and return the earliest live event.
     *
     * @param[out] when Receives the event's timestamp.
     * @return The callback to execute.
     * @pre !empty().
     */
    Callback pop(Cycles &when);

    /** @name Introspection (tests/benchmarks) @{ */
    /** Heap entries currently held, including not-yet-reaped
     *  cancelled ones. Bounded by compaction to O(live). */
    std::size_t heapEntries() const { return heap_.size(); }
    /** Slab records allocated (high-water mark of concurrent
     *  events, live or reusable). */
    std::size_t slabSlots() const { return slab_.size(); }
    /** Pops whose timestamp went backwards relative to the previous
     *  pop. Always 0 for a correct queue; the invariant auditor
     *  asserts it (a regression in the heap/compaction logic would
     *  silently reorder the simulation otherwise). */
    std::uint64_t monotonicViolations() const
    {
        return monotonic_violations_;
    }
    /** @} */

    /** Maps a stored snap-tag back to an equivalent callback. */
    using RearmFn =
        std::function<Callback(const hh::snap::SnapTag &)>;

    /**
     * Save or restore the queue through @p ar.
     *
     * The structural encoding preserves slot numbers, generations,
     * sequence numbers and the free-slot order, so `EventId`s held by
     * components (e.g. a core's pending completion) remain valid
     * verbatim across a restore. Saving panics on a live untagged
     * event; loading invokes @p rearm once per live event to rebuild
     * its callback into the original slot. Dead (cancelled) heap
     * entries are dropped at save, which is observationally
     * equivalent to compaction having run.
     */
    void serialize(hh::snap::Archive &ar, const RearmFn &rearm);

  private:
    /** One reusable event record. */
    struct Record
    {
        Callback cb;
        /** Serializable identity of cb; kNone for untagged events. */
        hh::snap::SnapTag tag;
        /** Bumped on cancel/pop; mismatching heap entries are dead. */
        std::uint32_t gen = 1;
    };

    /** Heap entry: plain data, no callback, no hashing. */
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** Min-heap order on (when, seq) via std::*_heap's max-heap. */
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool dead(const Entry &e) const
    {
        return slab_[e.slot].gen != e.gen;
    }

    /** Drop cancelled entries from the top of the heap. */
    void skipDead() const;

    /** Rebuild the heap without dead entries when they dominate. */
    void maybeCompact();

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);

    mutable std::vector<Entry> heap_;
    std::vector<Record> slab_;
    std::vector<std::uint32_t> free_slots_;
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
    /** Cancelled entries still sitting in heap_. */
    mutable std::size_t dead_ = 0;
    Cycles last_popped_ = 0;
    std::uint64_t monotonic_violations_ = 0;
};

} // namespace hh::sim

#endif // HH_SIM_EVENT_QUEUE_H
