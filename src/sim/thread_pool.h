/**
 * @file
 * A deliberately simple fixed-size thread pool for experiment-level
 * parallelism.
 *
 * The simulator itself stays strictly single-threaded — determinism
 * comes from the event queue's FIFO tie-breaking — but independent
 * simulations (servers of a cluster, points of a parameter sweep)
 * can run concurrently. Tasks are coarse (whole server runs, seconds
 * each), so a single mutex-protected queue is the right tool: no
 * work stealing, no lock-free cleverness, nothing for ThreadSanitizer
 * to frown at.
 */

#ifndef HH_SIM_THREAD_POOL_H
#define HH_SIM_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hh::sim {

/**
 * Fixed set of worker threads draining one shared FIFO of jobs.
 */
class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /**
     * @param workers Worker thread count; 0 selects defaultWorkers().
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins all workers; pending jobs are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Worker count used when none is requested: the `HH_THREADS`
     * environment variable if set, else the hardware concurrency
     * (at least 1).
     */
    static unsigned defaultWorkers();

    /** Number of worker threads. */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Enqueue a job. Must not be called concurrently with wait(). */
    void submit(Job job);

    /**
     * Block until every submitted job has finished.
     *
     * If any job threw, the first captured exception is rethrown
     * here (subsequent ones are dropped).
     */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<Job> queue_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::size_t in_flight_ = 0;
    std::exception_ptr first_error_;
    bool stopping_ = false;
};

} // namespace hh::sim

#endif // HH_SIM_THREAD_POOL_H
