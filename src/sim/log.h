/**
 * @file
 * Minimal logging and error-termination helpers, in the spirit of
 * gem5's logging.hh.
 *
 * - panic():  an internal simulator bug; aborts.
 * - fatal():  a user/configuration error; exits with status 1.
 * - warn()/inform(): non-fatal status messages on stderr.
 *
 * All take printf-like formatting via std::format-free variadic
 * streams to keep the dependency footprint small.
 */

#ifndef HH_SIM_LOG_H
#define HH_SIM_LOG_H

#include <sstream>
#include <string>

namespace hh::sim {

/** Severity labels used by the logging backend. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit one log line to stderr.
 *
 * Lines are serialized with a mutex (parallel cluster tasks would
 * otherwise interleave partial lines) and prefixed with the calling
 * thread's log tag, so warnings from `runParallel` workers stay
 * attributable to a server/task.
 *
 * @param level Severity of the message.
 * @param msg   Pre-formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/**
 * Set this thread's log tag (e.g. "server3"); shown as a bracketed
 * prefix on every line the thread logs. Empty clears the tag.
 */
void setLogTag(std::string tag);

/** This thread's current log tag ("" when unset). */
const std::string &logTag();

/** RAII scope that sets a log tag and restores the previous one. */
class LogTagScope
{
  public:
    explicit LogTagScope(std::string tag) : prev_(logTag())
    {
        setLogTag(std::move(tag));
    }
    ~LogTagScope() { setLogTag(prev_); }
    LogTagScope(const LogTagScope &) = delete;
    LogTagScope &operator=(const LogTagScope &) = delete;

  private:
    std::string prev_;
};

/** True once panic() or fatal() has been invoked (used by tests). */
bool errorReported();

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);

} // namespace detail

/** Terminate on an internal simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Terminate on a user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Warn about suspicious but non-fatal conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    logMessage(LogLevel::Inform,
               detail::concat(std::forward<Args>(args)...));
}

} // namespace hh::sim

#endif // HH_SIM_LOG_H
