/**
 * @file
 * Scoped cycle-counter profiling, gated like tracing.
 *
 * A `HH_PROF_SCOPE("name")` at the top of a function accumulates
 * elapsed TSC cycles and hit counts into a process-wide site
 * registry while profiling is enabled. When disabled (the default),
 * the scope constructor is a single untaken branch — cheap enough to
 * leave in the hottest simulator paths permanently, which is the
 * point: `bench_speed` flips the flag for one instrumented pass and
 * emits the per-site totals as the "profile" section of
 * BENCH_sim_speed.json, so every future PR can see where kernel time
 * goes without rebuilding with -pg.
 *
 * Counters are relaxed atomics: concurrent cluster shards may run
 * while profiling, and approximate per-site sums are fine for a
 * profile (the alternative — per-thread sites — would complicate the
 * registry for no analytical gain).
 */

#ifndef HH_SIM_PROF_H
#define HH_SIM_PROF_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace hh::sim::prof {

namespace detail {

inline std::atomic<bool> g_enabled{false};

inline std::uint64_t
now()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

} // namespace detail

/**
 * One instrumented site; constructed as a function-local static by
 * HH_PROF_SCOPE and linked into the global registry on first hit.
 */
struct Site
{
    const char *name;
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> hits{0};
    Site *next = nullptr;

    explicit Site(const char *n);
};

namespace detail {

inline std::mutex g_registry_mutex;
inline Site *g_sites = nullptr;

} // namespace detail

inline Site::Site(const char *n) : name(n)
{
    std::lock_guard<std::mutex> lock(detail::g_registry_mutex);
    next = detail::g_sites;
    detail::g_sites = this;
}

/** True while scopes are recording. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn recording on or off (off is the default). */
inline void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

/** Zero every registered site (start of a profile pass). */
inline void
reset()
{
    std::lock_guard<std::mutex> lock(detail::g_registry_mutex);
    for (Site *s = detail::g_sites; s; s = s->next) {
        s->cycles.store(0, std::memory_order_relaxed);
        s->hits.store(0, std::memory_order_relaxed);
    }
}

/** One site's totals at snapshot time. */
struct Sample
{
    std::string name;
    std::uint64_t cycles = 0;
    std::uint64_t hits = 0;
};

/** All sites with any hits, heaviest first. */
inline std::vector<Sample>
snapshot()
{
    std::vector<Sample> out;
    {
        std::lock_guard<std::mutex> lock(detail::g_registry_mutex);
        for (Site *s = detail::g_sites; s; s = s->next) {
            const std::uint64_t h =
                s->hits.load(std::memory_order_relaxed);
            if (h == 0)
                continue;
            out.push_back(Sample{
                s->name,
                s->cycles.load(std::memory_order_relaxed), h});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Sample &a, const Sample &b) {
                  return a.cycles > b.cycles;
              });
    return out;
}

/**
 * RAII cycle accumulator. Nested scopes double-count by design
 * (each site reports inclusive time, like a flat gprof profile).
 */
class Scope
{
  public:
    explicit Scope(Site &site)
    {
        if (!enabled()) [[likely]]
            return;
        site_ = &site;
        start_ = detail::now();
    }

    ~Scope()
    {
        if (!site_)
            return;
        site_->cycles.fetch_add(detail::now() - start_,
                                std::memory_order_relaxed);
        site_->hits.fetch_add(1, std::memory_order_relaxed);
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Site *site_ = nullptr;
    std::uint64_t start_ = 0;
};

} // namespace hh::sim::prof

#define HH_PROF_CONCAT2(a, b) a##b
#define HH_PROF_CONCAT(a, b) HH_PROF_CONCAT2(a, b)

/**
 * Accumulate cycles spent in the enclosing scope under @p name.
 * One untaken branch when profiling is off.
 */
#define HH_PROF_SCOPE(name)                                         \
    static ::hh::sim::prof::Site HH_PROF_CONCAT(                    \
        hh_prof_site_, __LINE__){name};                             \
    ::hh::sim::prof::Scope HH_PROF_CONCAT(hh_prof_scope_,           \
                                          __LINE__)(                \
        HH_PROF_CONCAT(hh_prof_site_, __LINE__))

#endif // HH_SIM_PROF_H
