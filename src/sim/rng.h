/**
 * @file
 * Deterministic random-number generation for the simulator.
 *
 * Every stochastic component owns its own Rng instance seeded from the
 * experiment seed plus a component-specific stream id, so results are
 * reproducible and independent of event interleaving. The core
 * generator is xoshiro256** (public-domain algorithm by Blackman and
 * Vigna), seeded through SplitMix64.
 */

#ifndef HH_SIM_RNG_H
#define HH_SIM_RNG_H

#include <cstdint>
#include <memory>
#include <vector>

namespace hh::snap {
class Archive;
} // namespace hh::snap

namespace hh::sim {

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 *
 * Satisfies the bare minimum of UniformRandomBitGenerator so it can
 * also be plugged into <random> adapters if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /**
     * Construct a generator.
     *
     * @param seed   Experiment-level seed.
     * @param stream Component-specific stream id; different streams
     *               from the same seed are statistically independent.
     */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL,
                 std::uint64_t stream = 0);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Exponential variate with the given mean (not rate). */
    double exponential(double mean);

    /** Standard normal variate (Box-Muller). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal variate parameterized by the mean and sigma of the
     * underlying normal distribution.
     */
    double lognormal(double mu, double sigma);

    /**
     * Save or restore the full generator state (xoshiro words plus
     * the cached Box-Muller normal), making a restored stream
     * position-exact: the next draw after restore equals the next
     * draw the saved generator would have produced.
     */
    void serialize(hh::snap::Archive &ar);

  private:
    std::uint64_t s_[4];
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

/**
 * Precomputed Zipf sampler over [0, n).
 *
 * Builds the CDF once; each sample is a binary search. Used to model
 * skewed page popularity inside a microservice working set.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of items (> 0).
     * @param theta Skew parameter; 0 means uniform, ~0.99 is a
     *              typical hot-spot workload.
     */
    ZipfSampler(std::size_t n, double theta);

    /** Draw one item index in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
    /**
     * First-level acceleration index: bucket_[b] is the lower_bound
     * of b / kIndexBuckets in cdf_, so a sample only binary-searches
     * the slice [bucket_[b], bucket_[b+1]] its uniform draw falls
     * in. Pure narrowing — the result is the exact lower_bound the
     * full-range search would return.
     */
    static constexpr std::size_t kIndexBuckets = 256;
    std::vector<std::uint32_t> bucket_;
};

/**
 * Process-wide cache of Zipf samplers keyed by (n, theta).
 *
 * A sampler is immutable after construction (sample() is const and
 * carries its own Rng), so instances with identical CDF parameters
 * can share one table. Service-graph fleets place the same tier
 * service on dozens of servers — without sharing, every server would
 * rebuild and hold its own copy of the same CDF plus 256-bucket
 * index. Thread-safe: servers construct concurrently under
 * runParallel.
 */
std::shared_ptr<const ZipfSampler> sharedZipfSampler(std::size_t n,
                                                     double theta);

} // namespace hh::sim

#endif // HH_SIM_RNG_H
