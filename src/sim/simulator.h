/**
 * @file
 * The simulation driver: owns the clock and the event queue.
 *
 * Components schedule callbacks relative to now(); run() executes
 * events in timestamp order until a horizon or until the queue
 * drains. The simulator is strictly single-threaded; determinism
 * comes from the FIFO tie-breaking in EventQueue plus per-component
 * RNG streams.
 */

#ifndef HH_SIM_SIMULATOR_H
#define HH_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace hh::sim {

/**
 * Discrete-event simulation driver.
 */
class Simulator
{
  public:
    using Callback = EventQueue::Callback;

    /** Current simulated time in cycles. */
    Cycles now() const { return now_; }

    /**
     * Schedule a callback @p delay cycles in the future.
     *
     * @return An id usable with cancel().
     */
    EventId schedule(Cycles delay, Callback cb);

    /** Schedule a tagged (checkpointable) callback; see EventQueue. */
    EventId schedule(Cycles delay, const hh::snap::SnapTag &tag,
                     Callback cb);

    /** Schedule a callback at an absolute time (>= now()). */
    EventId scheduleAt(Cycles when, Callback cb);

    /** Tagged (checkpointable) absolute-time variant. */
    EventId scheduleAt(Cycles when, const hh::snap::SnapTag &tag,
                       Callback cb);

    /** Cancel a pending event; returns false if it already ran. */
    bool cancel(EventId id);

    /**
     * Run until the queue drains or simulated time would exceed
     * @p horizon. Events stamped exactly at the horizon still run.
     *
     * @return Number of events executed.
     */
    std::uint64_t run(Cycles horizon = ~Cycles{0});

    /**
     * Execute the single earliest event.
     *
     * @return false if the queue was empty.
     */
    bool step();

    /** True when no events remain. */
    bool idle() const { return queue_.empty(); }

    /**
     * Timestamp of the earliest pending event (conservative-window
     * coordination across simulators). @pre !idle().
     */
    Cycles nextEventTime() const { return queue_.nextTime(); }

    /** Number of pending events. */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Install a hook invoked after every @p everyEvents executed
     * events (invariant auditing). Follows the tracing gating
     * pattern: when no hook is installed the per-event cost is a
     * single untaken branch. Pass a null hook or 0 to uninstall.
     *
     * The hook runs between events (never inside a callback), so it
     * may inspect any component state but must not mutate it.
     */
    void setAuditHook(std::function<void(Cycles)> hook,
                      std::uint64_t everyEvents)
    {
        audit_hook_ = std::move(hook);
        audit_every_ = audit_hook_ ? everyEvents : 0;
        since_audit_ = 0;
    }

    /** Pops that went backwards in time (bug if != 0). */
    std::uint64_t monotonicViolations() const
    {
        return queue_.monotonicViolations();
    }

    /**
     * Make run() return before executing another event (e.g. the
     * audit hook aborting on an invariant violation). Cleared when
     * run() returns, so a later run() proceeds normally.
     */
    void requestStop() { stop_requested_ = true; }
    bool stopRequested() const { return stop_requested_; }

    /**
     * Save or restore the clock, event counters and the queue. The
     * audit hook is *not* serialized — the owner re-installs it
     * before restoring (setAuditHook resets the audit phase, so it
     * must run first; serialize then overwrites `since_audit_`).
     */
    void serialize(hh::snap::Archive &ar,
                   const EventQueue::RearmFn &rearm);

  private:
    EventQueue queue_;
    Cycles now_ = 0;
    std::uint64_t executed_ = 0;
    /** Null unless auditing: step() branches on audit_every_. */
    std::function<void(Cycles)> audit_hook_;
    std::uint64_t audit_every_ = 0;
    std::uint64_t since_audit_ = 0;
    bool stop_requested_ = false;
};

} // namespace hh::sim

#endif // HH_SIM_SIMULATOR_H
