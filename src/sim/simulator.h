/**
 * @file
 * The simulation driver: owns the clock and the event queue.
 *
 * Components schedule callbacks relative to now(); run() executes
 * events in timestamp order until a horizon or until the queue
 * drains. The simulator is strictly single-threaded; determinism
 * comes from the FIFO tie-breaking in EventQueue plus per-component
 * RNG streams.
 */

#ifndef HH_SIM_SIMULATOR_H
#define HH_SIM_SIMULATOR_H

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace hh::sim {

/**
 * Discrete-event simulation driver.
 */
class Simulator
{
  public:
    using Callback = EventQueue::Callback;

    /** Current simulated time in cycles. */
    Cycles now() const { return now_; }

    /**
     * Schedule a callback @p delay cycles in the future.
     *
     * @return An id usable with cancel().
     */
    EventId schedule(Cycles delay, Callback cb);

    /** Schedule a callback at an absolute time (>= now()). */
    EventId scheduleAt(Cycles when, Callback cb);

    /** Cancel a pending event; returns false if it already ran. */
    bool cancel(EventId id);

    /**
     * Run until the queue drains or simulated time would exceed
     * @p horizon. Events stamped exactly at the horizon still run.
     *
     * @return Number of events executed.
     */
    std::uint64_t run(Cycles horizon = ~Cycles{0});

    /**
     * Execute the single earliest event.
     *
     * @return false if the queue was empty.
     */
    bool step();

    /** True when no events remain. */
    bool idle() const { return queue_.empty(); }

    /** Number of pending events. */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    EventQueue queue_;
    Cycles now_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace hh::sim

#endif // HH_SIM_SIMULATOR_H
