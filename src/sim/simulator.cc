#include "sim/simulator.h"

#include "sim/log.h"
#include "sim/prof.h"
#include "snapshot/archive.h"

namespace hh::sim {

EventId
Simulator::schedule(Cycles delay, Callback cb)
{
    return queue_.schedule(now_ + delay, std::move(cb));
}

EventId
Simulator::schedule(Cycles delay, const hh::snap::SnapTag &tag,
                    Callback cb)
{
    return queue_.schedule(now_ + delay, tag, std::move(cb));
}

EventId
Simulator::scheduleAt(Cycles when, Callback cb)
{
    if (when < now_)
        panic("Simulator::scheduleAt into the past (when=", when,
              " now=", now_, ")");
    return queue_.schedule(when, std::move(cb));
}

EventId
Simulator::scheduleAt(Cycles when, const hh::snap::SnapTag &tag,
                      Callback cb)
{
    if (when < now_)
        panic("Simulator::scheduleAt into the past (when=", when,
              " now=", now_, ")");
    return queue_.schedule(when, tag, std::move(cb));
}

void
Simulator::serialize(hh::snap::Archive &ar,
                     const EventQueue::RearmFn &rearm)
{
    ar.io(now_);
    ar.io(executed_);
    ar.io(since_audit_);
    queue_.serialize(ar, rearm);
}

bool
Simulator::cancel(EventId id)
{
    return queue_.cancel(id);
}

std::uint64_t
Simulator::run(Cycles horizon)
{
    HH_PROF_SCOPE("sim.run");
    std::uint64_t n = 0;
    while (!stop_requested_ && !queue_.empty()) {
        const Cycles t = queue_.nextTime();
        if (t > horizon)
            break;
        // Batched same-timestamp dispatch: drain every event sharing
        // this cycle in one burst. The wheel's level-0 bucket holds
        // exactly one timestamp, so the repeated nextTime() checks
        // resolve through the O(1) bucket-cursor fast path instead
        // of re-sifting a heap per event.
        do {
            step();
            ++n;
        } while (!stop_requested_ && !queue_.empty() &&
                 queue_.nextTime() == t);
    }
    stop_requested_ = false;
    return n;
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    Cycles when = 0;
    auto cb = queue_.pop(when);
    now_ = when;
    ++executed_;
    cb();
    if (audit_every_ && ++since_audit_ >= audit_every_) {
        since_audit_ = 0;
        audit_hook_(now_);
    }
    return true;
}

} // namespace hh::sim
