#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "sim/log.h"
#include "snapshot/archive.h"

namespace hh::sim {

namespace {

constexpr std::uint32_t kGenShift = 32;

inline EventId
makeId(std::uint32_t gen, std::uint32_t slot)
{
    return (static_cast<EventId>(gen) << kGenShift) |
           (static_cast<EventId>(slot) + 1);
}

} // namespace

unsigned
EventQueue::Occupancy::first() const
{
    for (unsigned i = 0; i < 4; ++i) {
        if (w[i])
            return i * 64 +
                   static_cast<unsigned>(std::countr_zero(w[i]));
    }
    return kSlots;
}

std::uint32_t
EventQueue::allocSlot()
{
    if (!free_slots_.empty()) {
        const std::uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        return slot;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Record &rec = slab_[slot];
    rec.cb.reset();
    rec.tag = hh::snap::SnapTag{};
    ++rec.gen;
    free_slots_.push_back(slot);
}

void
EventQueue::place(const Node &n)
{
    const Cycles t = n.when;
    unsigned lvl;
    unsigned slot;
    if ((t >> 8) == (org_ >> 8)) {
        lvl = 0;
        slot = static_cast<unsigned>(t & 0xff);
    } else if ((t >> 16) == (org_ >> 16)) {
        lvl = 1;
        slot = static_cast<unsigned>((t >> 8) & 0xff);
    } else if ((t >> 24) == (org_ >> 24)) {
        lvl = 2;
        slot = static_cast<unsigned>((t >> 16) & 0xff);
    } else {
        far_.push_back(n);
        std::push_heap(far_.begin(), far_.end(), Later{});
        return;
    }
    wheel_[lvl][slot].v.push_back(n);
    occ_[lvl].set(slot);
}

EventId
EventQueue::schedule(Cycles when, Callback cb)
{
    const std::uint32_t slot = allocSlot();
    Record &rec = slab_[slot];
    rec.cb = std::move(cb);
    // Contract-violating schedules into the past (when < org_ can
    // only follow when < last_popped_) re-anchor the whole wheel so
    // pop still delivers the global (when, seq) minimum, exactly as
    // the reference heap would.
    if (when < org_)
        rebaseDown(when);
    place(Node{when, next_seq_++, slot, rec.gen});
    ++live_;
    return makeId(rec.gen, slot);
}

EventId
EventQueue::schedule(Cycles when, const hh::snap::SnapTag &tag,
                     Callback cb)
{
    const EventId id = schedule(when, std::move(cb));
    slab_[static_cast<std::uint32_t>((id & 0xffffffffu) - 1)].tag =
        tag;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    const std::uint32_t slot =
        static_cast<std::uint32_t>((id & 0xffffffffu) - 1);
    const std::uint32_t gen =
        static_cast<std::uint32_t>(id >> kGenShift);
    if (slot >= slab_.size() || slab_[slot].gen != gen ||
        !slab_[slot].cb)
        return false;
    // Invalidate the slot; its wheel node becomes dead and is reaped
    // lazily on pop/cascade/compaction.
    freeSlot(slot);
    --live_;
    ++dead_;
    maybeCompact();
    return true;
}

bool
EventQueue::skipDeadL0(unsigned s) const
{
    Bucket &b = wheel_[0][s];
    while (b.head < b.v.size() && dead(b.v[b.head])) {
        ++b.head;
        --dead_;
    }
    if (b.drained()) {
        b.reset();
        occ_[0].clear(s);
        return false;
    }
    return true;
}

void
EventQueue::skipDeadFar() const
{
    while (!far_.empty() && dead(far_.front())) {
        std::pop_heap(far_.begin(), far_.end(), Later{});
        far_.pop_back();
        --dead_;
    }
}

void
EventQueue::cascade()
{
    for (unsigned lvl = 1; lvl < kLevels; ++lvl) {
        if (!occ_[lvl].any())
            continue;
        const unsigned s = occ_[lvl].first();
        // The bucket being opened becomes the new current window.
        // All legal nodes sit at or past org_, so s is past the
        // window the old org_ named and org_ only moves forward.
        if (lvl == 1)
            org_ = (org_ & ~Cycles{0xffff}) | (Cycles{s} << 8);
        else
            org_ = (org_ & ~Cycles{0xffffff}) | (Cycles{s} << 16);
        Bucket &b = wheel_[lvl][s];
        occ_[lvl].clear(s);
        // Redistribute in stored order: equal-time nodes keep their
        // ascending-seq order, preserving FIFO tie-breaking.
        for (std::size_t i = b.head; i < b.v.size(); ++i) {
            if (dead(b.v[i]))
                --dead_;
            else
                place(b.v[i]);
        }
        b.reset();
        return;
    }

    skipDeadFar();
    if (far_.empty())
        panic("EventQueue::cascade: no events to promote");
    // Open the far list's earliest 2^24 window and pour every event
    // in it into the wheel. The heap drains in (when, seq) order, so
    // equal-time nodes land in their buckets in ascending seq order.
    const Cycles window = far_.front().when >> 24;
    org_ = window << 24;
    while (!far_.empty() && (far_.front().when >> 24) == window) {
        std::pop_heap(far_.begin(), far_.end(), Later{});
        const Node n = far_.back();
        far_.pop_back();
        if (dead(n))
            --dead_;
        else
            place(n);
    }
}

void
EventQueue::rebaseDown(Cycles when)
{
    // Collect every live node, re-anchor the wheel at `when`'s
    // window, and re-place them. Replacing in ascending seq order
    // keeps equal-time nodes FIFO within their new buckets.
    std::vector<Node> alive;
    alive.reserve(live_);
    for (auto &level : wheel_) {
        for (auto &b : level) {
            for (std::size_t i = b.head; i < b.v.size(); ++i) {
                if (!dead(b.v[i]))
                    alive.push_back(b.v[i]);
            }
            b.reset();
        }
    }
    for (const Node &n : far_) {
        if (!dead(n))
            alive.push_back(n);
    }
    far_.clear();
    occ_ = {};
    dead_ = 0;
    std::sort(alive.begin(), alive.end(),
              [](const Node &a, const Node &b) {
                  return a.seq < b.seq;
              });
    org_ = (when >> 8) << 8;
    for (const Node &n : alive)
        place(n);
}

void
EventQueue::maybeCompact()
{
    // Sweep once cancelled nodes dominate. The threshold of 64
    // avoids sweeping tiny queues; the > live_ condition makes the
    // O(n) sweep amortised O(1) per cancel while capping stored
    // nodes at ~2x the live event count.
    if (dead_ <= 64 || dead_ <= live_)
        return;
    for (unsigned lvl = 0; lvl < kLevels; ++lvl) {
        // Visit only occupied buckets via the bitmap; a full
        // 256-slot walk per level would dwarf the sweep itself.
        for (unsigned word = 0; word < 4; ++word) {
            std::uint64_t bits = occ_[lvl].w[word];
            while (bits) {
                const unsigned s =
                    word * 64 +
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                Bucket &b = wheel_[lvl][s];
                std::size_t w = 0;
                for (std::size_t i = b.head; i < b.v.size(); ++i) {
                    if (!dead(b.v[i]))
                        b.v[w++] = b.v[i];
                }
                b.v.resize(w);
                b.head = 0;
                if (w == 0)
                    occ_[lvl].clear(s);
            }
        }
    }
    far_.erase(std::remove_if(far_.begin(), far_.end(),
                              [this](const Node &n) {
                                  return dead(n);
                              }),
               far_.end());
    std::make_heap(far_.begin(), far_.end(), Later{});
    dead_ = 0;
}

Cycles
EventQueue::nextTime() const
{
    if (live_ == 0)
        panic("EventQueue::nextTime on empty queue");
    // Level 0 fast path: the earliest occupied bucket holds exactly
    // one timestamp, so this is a bitmap scan plus a cursor read.
    for (;;) {
        const unsigned s = occ_[0].first();
        if (s >= kSlots)
            break;
        if (!skipDeadL0(s))
            continue;
        const Bucket &b = wheel_[0][s];
        return b.v[b.head].when;
    }
    // Coarse levels: every node in the earliest occupied bucket
    // precedes every node in later buckets and levels, so the
    // minimum live timestamp within that bucket is the answer. No
    // cascade here — org_ must not move before the matching pop, or
    // a legal schedule could land below the wheel origin.
    for (unsigned lvl = 1; lvl < kLevels; ++lvl) {
        while (occ_[lvl].any()) {
            const unsigned s = occ_[lvl].first();
            Bucket &b = wheel_[lvl][s];
            Cycles best = ~Cycles{0};
            bool found = false;
            for (std::size_t i = b.head; i < b.v.size(); ++i) {
                if (!dead(b.v[i])) {
                    found = true;
                    best = std::min(best, b.v[i].when);
                }
            }
            if (found)
                return best;
            dead_ -= b.v.size() - b.head;
            b.reset();
            occ_[lvl].clear(s);
        }
    }
    skipDeadFar();
    if (far_.empty())
        panic("EventQueue::nextTime: live count out of sync");
    return far_.front().when;
}

EventQueue::Callback
EventQueue::pop(Cycles &when)
{
    if (live_ == 0)
        panic("EventQueue::pop on empty queue");
    for (;;) {
        const unsigned s = occ_[0].first();
        if (s >= kSlots) {
            cascade();
            continue;
        }
        if (!skipDeadL0(s))
            continue;
        Bucket &b = wheel_[0][s];
        const Node n = b.v[b.head++];
        if (b.drained()) {
            b.reset();
            occ_[0].clear(s);
        }
        when = n.when;
        if (when < last_popped_)
            ++monotonic_violations_;
        last_popped_ = when;
        Callback cb = std::move(slab_[n.slot].cb);
        freeSlot(n.slot);
        --live_;
        return cb;
    }
}

void
EventQueue::serialize(hh::snap::Archive &ar, const RearmFn &rearm)
{
    ar.section(0x45565451u, "event_queue"); // 'EVTQ'
    if (ar.saving()) {
        // Live nodes in deterministic (seq) order; dead nodes are
        // dropped, which a resumed run cannot observe. This is the
        // exact encoding the heap implementation wrote, so existing
        // 'HHCP' checkpoints stay byte-identical.
        std::vector<Node> alive;
        alive.reserve(live_);
        for (auto &level : wheel_) {
            for (auto &b : level) {
                for (std::size_t i = b.head; i < b.v.size(); ++i) {
                    if (!dead(b.v[i]))
                        alive.push_back(b.v[i]);
                }
            }
        }
        for (const Node &n : far_) {
            if (!dead(n))
                alive.push_back(n);
        }
        std::sort(alive.begin(), alive.end(),
                  [](const Node &a, const Node &b) {
                      return a.seq < b.seq;
                  });
        std::uint64_t n = alive.size();
        ar.io(n);
        for (Node &e : alive) {
            Record &rec = slab_[e.slot];
            if (rec.tag.kind == hh::snap::SnapTag::kNone) {
                panic("EventQueue snapshot: live event at t=",
                      e.when, " (slot ", e.slot,
                      ") was scheduled without a snap tag");
            }
            ar.io(e.when);
            ar.io(e.seq);
            ar.io(e.slot);
            ar.io(e.gen);
            ar.io(rec.tag);
        }
        // Slot generations (all slots, so stale EventIds stay
        // invalid after restore) and the free-slot order (so slot
        // allocation resumes identically).
        std::uint64_t slots = slab_.size();
        ar.io(slots);
        for (Record &rec : slab_)
            ar.io(rec.gen);
        ar.io(free_slots_);
        ar.io(next_seq_);
        ar.io(last_popped_);
        ar.io(monotonic_violations_);
        return;
    }

    std::uint64_t n = 0;
    ar.io(n);
    struct Saved
    {
        Node node;
        hh::snap::SnapTag tag;
    };
    std::vector<Saved> saved;
    saved.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && ar.ok(); ++i) {
        Saved s{};
        ar.io(s.node.when);
        ar.io(s.node.seq);
        ar.io(s.node.slot);
        ar.io(s.node.gen);
        ar.io(s.tag);
        saved.push_back(s);
    }
    std::uint64_t slots = 0;
    ar.io(slots);
    if (ar.loading() && slots > (1u << 28)) {
        ar.fail("event queue snapshot: implausible slab size");
        return;
    }
    std::vector<std::uint32_t> gens(
        static_cast<std::size_t>(slots));
    for (auto &g : gens)
        ar.io(g);
    std::vector<std::uint32_t> free_slots;
    ar.io(free_slots);
    std::uint64_t next_seq = 0;
    Cycles last_popped = 0;
    std::uint64_t monotonic = 0;
    ar.io(next_seq);
    ar.io(last_popped);
    ar.io(monotonic);
    if (!ar.ok())
        return;

    for (auto &level : wheel_) {
        for (auto &b : level)
            b.reset();
    }
    occ_ = {};
    far_.clear();
    slab_.clear();
    slab_.resize(gens.size());
    for (std::size_t i = 0; i < gens.size(); ++i)
        slab_[i].gen = gens[i];
    // Re-anchor at the origin; saved nodes are in ascending seq
    // order, so placing them in stream order restores FIFO
    // tie-breaking, and the first pop cascades the wheel forward.
    org_ = 0;
    for (const Saved &s : saved) {
        if (s.node.slot >= slab_.size()) {
            ar.fail("event queue snapshot: slot out of range");
            return;
        }
        Record &rec = slab_[s.node.slot];
        rec.tag = s.tag;
        rec.cb = rearm(s.tag);
        if (!rec.cb) {
            panic("EventQueue restore: re-arm hook returned no "
                  "callback for tag kind ", s.tag.kind);
        }
        place(s.node);
    }
    free_slots_ = std::move(free_slots);
    next_seq_ = next_seq;
    live_ = saved.size();
    dead_ = 0;
    last_popped_ = last_popped;
    monotonic_violations_ = monotonic;
}

} // namespace hh::sim
