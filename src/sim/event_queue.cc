#include "sim/event_queue.h"

#include "sim/log.h"

namespace hh::sim {

EventId
EventQueue::schedule(Cycles when, Callback cb)
{
    const EventId id = next_id_++;
    heap_.push(Entry{when, next_seq_++, id});
    callbacks_.emplace(id, std::move(cb));
    ++live_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    const auto it = callbacks_.find(id);
    if (it == callbacks_.end())
        return false;
    callbacks_.erase(it);
    cancelled_.insert(id);
    --live_;
    return true;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() &&
           cancelled_.find(heap_.top().id) != cancelled_.end()) {
        cancelled_.erase(heap_.top().id);
        heap_.pop();
    }
}

Cycles
EventQueue::nextTime() const
{
    skipDead();
    if (heap_.empty())
        panic("EventQueue::nextTime on empty queue");
    return heap_.top().when;
}

EventQueue::Callback
EventQueue::pop(Cycles &when)
{
    skipDead();
    if (heap_.empty())
        panic("EventQueue::pop on empty queue");
    const Entry top = heap_.top();
    heap_.pop();
    when = top.when;
    const auto it = callbacks_.find(top.id);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    --live_;
    return cb;
}

} // namespace hh::sim
