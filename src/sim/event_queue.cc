#include "sim/event_queue.h"

#include <algorithm>

#include "sim/log.h"

namespace hh::sim {

namespace {

constexpr std::uint32_t kGenShift = 32;

inline EventId
makeId(std::uint32_t gen, std::uint32_t slot)
{
    return (static_cast<EventId>(gen) << kGenShift) |
           (static_cast<EventId>(slot) + 1);
}

} // namespace

std::uint32_t
EventQueue::allocSlot()
{
    if (!free_slots_.empty()) {
        const std::uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        return slot;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Record &rec = slab_[slot];
    rec.cb.reset();
    ++rec.gen;
    free_slots_.push_back(slot);
}

EventId
EventQueue::schedule(Cycles when, Callback cb)
{
    const std::uint32_t slot = allocSlot();
    Record &rec = slab_[slot];
    rec.cb = std::move(cb);
    heap_.push_back(Entry{when, next_seq_++, slot, rec.gen});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return makeId(rec.gen, slot);
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    const std::uint32_t slot =
        static_cast<std::uint32_t>((id & 0xffffffffu) - 1);
    const std::uint32_t gen =
        static_cast<std::uint32_t>(id >> kGenShift);
    if (slot >= slab_.size() || slab_[slot].gen != gen ||
        !slab_[slot].cb)
        return false;
    // Invalidate the slot; its heap entry becomes dead and is reaped
    // lazily on pop/compaction.
    freeSlot(slot);
    --live_;
    ++dead_;
    maybeCompact();
    return true;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() && dead(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        --dead_;
    }
}

void
EventQueue::maybeCompact()
{
    // Rebuild once cancelled entries dominate the heap. The threshold
    // of 64 avoids rebuilding tiny heaps; the > live_ condition makes
    // the O(n) rebuild amortised O(1) per cancel while capping heap
    // memory at ~2x the live event count.
    if (dead_ <= 64 || dead_ <= live_)
        return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const Entry &e) {
                                   return dead(e);
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    dead_ = 0;
}

Cycles
EventQueue::nextTime() const
{
    skipDead();
    if (heap_.empty())
        panic("EventQueue::nextTime on empty queue");
    return heap_.front().when;
}

EventQueue::Callback
EventQueue::pop(Cycles &when)
{
    skipDead();
    if (heap_.empty())
        panic("EventQueue::pop on empty queue");
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    when = top.when;
    if (when < last_popped_)
        ++monotonic_violations_;
    last_popped_ = when;
    Callback cb = std::move(slab_[top.slot].cb);
    freeSlot(top.slot);
    --live_;
    return cb;
}

} // namespace hh::sim
