#include "sim/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace hh::sim {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

// Atomic: parallel sweep tasks may report errors concurrently.
std::atomic<bool> g_error_reported{false};

// Serializes whole lines: a single unsynchronized stderr write path
// interleaves corrupted lines under runParallel.
std::mutex g_log_mutex;

thread_local std::string t_log_tag;

} // namespace

void
setLogTag(std::string tag)
{
    t_log_tag = std::move(tag);
}

const std::string &
logTag()
{
    return t_log_tag;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(g_log_mutex);
    if (t_log_tag.empty()) {
        std::fprintf(stderr, "[%s] %s\n", levelName(level),
                     msg.c_str());
    } else {
        std::fprintf(stderr, "[%s] [%s] %s\n", levelName(level),
                     t_log_tag.c_str(), msg.c_str());
    }
}

bool
errorReported()
{
    return g_error_reported;
}

namespace detail {

void
panicImpl(const std::string &msg)
{
    g_error_reported = true;
    logMessage(LogLevel::Panic, msg);
    // Throwing (rather than abort()) lets unit tests assert on panics
    // while still terminating the simulation by default.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const std::string &msg)
{
    g_error_reported = true;
    logMessage(LogLevel::Fatal, msg);
    throw std::runtime_error("fatal: " + msg);
}

} // namespace detail

} // namespace hh::sim
