#include "sim/thread_pool.h"

#include <cstdlib>

namespace hh::sim {

unsigned
ThreadPool::defaultWorkers()
{
    if (const char *env = std::getenv("HH_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(Job job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    work_available_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr err = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        std::exception_ptr err;
        try {
            job();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (err && !first_error_)
                first_error_ = err;
            if (--in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

} // namespace hh::sim
