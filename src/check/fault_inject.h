/**
 * @file
 * Deterministic fault-injection harness.
 *
 * A seeded perturbation layer that exercises the server's public
 * scheduling/harvesting surface with adversarial interleavings:
 * lend/reclaim storms, reclaim-during-flush, delayed completions,
 * bursty arrivals and chunk-exhaustion pressure. The injector owns
 * its own Rng stream, so a given (seed, config) pair replays the
 * exact same perturbation schedule — a violation found by the fuzz
 * driver is reproducible from its seed alone.
 *
 * The injector is a self-rescheduling event: each tick fires a few
 * randomly chosen registered actions, then reschedules itself after
 * an exponentially distributed delay. The owner must stop() it when
 * the workload drains (mirroring MetricSampler), or the tick chain
 * would keep the event queue non-empty to the horizon; maxActions
 * additionally bounds runaway configurations.
 */

#ifndef HH_CHECK_FAULT_INJECT_H
#define HH_CHECK_FAULT_INJECT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hh::stats {
class MetricRegistry;
}

namespace hh::check {

/**
 * Fault-injection parameters (part of SystemConfig).
 */
struct FaultConfig
{
    /** Master switch; off means no injector is constructed. */
    bool enabled = false;

    /** Mean delay between injection ticks (exponential). */
    hh::sim::Cycles meanPeriod = hh::sim::usToCycles(200);

    /** First tick time (lets the workload ramp up first). */
    hh::sim::Cycles startAt = hh::sim::usToCycles(50);

    /** Random actions fired per tick. */
    unsigned actionsPerTick = 2;

    /** Hard bound on total actions fired (runaway guard). */
    std::uint64_t maxActions = 100000;

    /**
     * Test-only regression switch: resurrect the seed's lend/reclaim
     * race (the PR-1 bug) by scheduling the lend-completion event
     * untracked, so a reclaim arriving mid-transition cannot cancel
     * it. Used to prove the auditor catches the orphaned-request
     * corruption at the offending sim-time instead of hanging to the
     * 600 s horizon.
     */
    bool resurrectLendRace = false;
};

/**
 * The injector: named actions fired on a seeded random schedule.
 */
class FaultInjector
{
  public:
    /**
     * One perturbation. Receives the injector's Rng so actions can
     * make their own random choices (victim core, burst size, ...)
     * without needing a stream of their own.
     */
    using Action = std::function<void(hh::sim::Rng &)>;

    /**
     * @param sim  Simulator the tick chain is scheduled on.
     * @param seed Experiment seed; the injector derives its own
     *             stream so it never perturbs other components' RNGs.
     * @param cfg  Schedule parameters.
     */
    FaultInjector(hh::sim::Simulator &sim, std::uint64_t seed,
                  const FaultConfig &cfg);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Register a named action; call before start(). */
    void addAction(std::string name, Action fn);

    /** Schedule the first tick (no-op without actions). */
    void start();

    /** Cancel the tick chain (idempotent). */
    void stop();

    /** Total actions fired so far. */
    std::uint64_t actionsFired() const { return fired_; }

    /** Ticks executed so far. */
    std::uint64_t ticks() const { return ticks_; }

    /** Fired count of one action; 0 for unknown names. */
    std::uint64_t actionCount(const std::string &name) const;

    /**
     * Register injector counters ("<prefix>.ticks",
     * "<prefix>.actions", "<prefix>.action.<name>").
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix);

    /**
     * Re-arm hook for snapshot restore: the callback a pending
     * kFaultTick event invokes.
     */
    hh::sim::Simulator::Callback
    rearmTick()
    {
        return [this] {
            pending_ = hh::sim::kInvalidEventId;
            tick();
        };
    }

    /**
     * Save/restore the schedule state: Rng stream position, tick and
     * fired counters (total plus per action, in registration order —
     * the restoring owner must have registered the same action list)
     * and the pending-event id. Do not call start() after loading;
     * the tick chain is restored through the event queue.
     */
    void serialize(hh::snap::Archive &ar);

  private:
    void tick();
    void scheduleNext(hh::sim::Cycles delay);

    struct Named
    {
        std::string name;
        Action fn;
        std::uint64_t fired = 0;
    };

    hh::sim::Simulator &sim_;
    FaultConfig cfg_;
    hh::sim::Rng rng_;
    std::vector<Named> actions_;
    std::uint64_t fired_ = 0;
    std::uint64_t ticks_ = 0;
    hh::sim::EventId pending_ = hh::sim::kInvalidEventId;
};

} // namespace hh::check

#endif // HH_CHECK_FAULT_INJECT_H
