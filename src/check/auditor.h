/**
 * @file
 * Simulator-wide invariant auditor.
 *
 * Components register named cross-component invariants (core
 * ownership vs controller loan state, RQ chunk accounting, harvest
 * way-mask partitioning, Request Context Memory leak-freedom,
 * event-queue monotonicity, ...). The owner of the Simulator installs
 * an audit hook that sweeps every registered check each N executed
 * events; a check that returns a message becomes a recorded
 * Violation stamped with the component name and the simulated time
 * at which it was observed.
 *
 * Auditing follows the PR-2 observability gating pattern: when
 * disabled the Auditor is never constructed and the simulator's hook
 * pointer stays null, so production runs pay only an untaken branch
 * per event. Violations are counted exactly but only the first
 * kMaxStoredViolations reports are kept verbatim (a broken invariant
 * usually fails every subsequent sweep; unbounded storage would turn
 * one bug into an OOM).
 */

#ifndef HH_CHECK_AUDITOR_H
#define HH_CHECK_AUDITOR_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.h"
#include "snapshot/archive.h"

namespace hh::stats {
class MetricRegistry;
}

namespace hh::check {

/** One observed invariant violation. */
struct Violation
{
    std::string component; //!< Registering component ("core", "rq", ...).
    std::string message;   //!< Human-readable description.
    hh::sim::Cycles time = 0; //!< Simulated time of the audit sweep.

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(component);
        ar.io(message);
        ar.io(time);
    }
};

/**
 * Registry of invariants plus the record of their violations.
 */
class Auditor
{
  public:
    /**
     * One invariant check. Returns std::nullopt when the invariant
     * holds, or a description of how it is broken. Checks must be
     * read-only observers: they run between events and must not
     * perturb simulation state (determinism depends on it).
     */
    using Check = std::function<std::optional<std::string>()>;

    /** Verbatim reports kept; further violations are only counted. */
    static constexpr std::size_t kMaxStoredViolations = 64;

    /**
     * Register an invariant.
     *
     * @param component Short component tag carried into Violation.
     * @param check     The check; must outlive the auditor.
     */
    void addInvariant(std::string component, Check check);

    /**
     * Sweep every registered invariant.
     *
     * @param now Simulated time stamped into any violations.
     * @return Number of violations observed in this sweep.
     */
    std::size_t audit(hh::sim::Cycles now);

    /**
     * Panic on the first violation instead of recording it. Off by
     * default so fuzz drivers can collect every report; tests that
     * want fail-fast behaviour turn it on.
     */
    void setPanicOnViolation(bool on) { panic_on_violation_ = on; }

    /** Stored violation reports, oldest first (capped). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** Total violations observed (uncapped). */
    std::uint64_t violationCount() const { return violation_count_; }

    /** Number of audit sweeps performed. */
    std::uint64_t auditsRun() const { return audits_run_; }

    /** Number of registered invariants. */
    std::size_t invariantCount() const { return checks_.size(); }

    /**
     * Register auditor counters ("<prefix>.audits",
     * "<prefix>.violations", "<prefix>.invariants").
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix);

    /**
     * Save/restore the violation record. Invariant checks and the
     * panic flag are re-registered by the owner at construction.
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(violations_);
        ar.io(violation_count_);
        ar.io(audits_run_);
    }

  private:
    struct Entry
    {
        std::string component;
        Check check;
    };

    std::vector<Entry> checks_;
    std::vector<Violation> violations_;
    std::uint64_t violation_count_ = 0;
    std::uint64_t audits_run_ = 0;
    bool panic_on_violation_ = false;
};

} // namespace hh::check

#endif // HH_CHECK_AUDITOR_H
