#include "check/auditor.h"

#include "sim/log.h"
#include "stats/registry.h"

namespace hh::check {

void
Auditor::addInvariant(std::string component, Check check)
{
    if (!check)
        hh::sim::panic("Auditor::addInvariant: null check for ",
                       component);
    checks_.push_back({std::move(component), std::move(check)});
}

std::size_t
Auditor::audit(hh::sim::Cycles now)
{
    ++audits_run_;
    std::size_t found = 0;
    for (const auto &entry : checks_) {
        auto msg = entry.check();
        if (!msg)
            continue;
        ++found;
        ++violation_count_;
        if (panic_on_violation_)
            hh::sim::panic("invariant violation [", entry.component,
                           "] at t=", now, ": ", *msg);
        if (violations_.size() < kMaxStoredViolations) {
            violations_.push_back(
                Violation{entry.component, std::move(*msg), now});
        }
    }
    return found;
}

void
Auditor::registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix)
{
    reg.registerCounter(prefix + ".audits", audits_run_);
    reg.registerCounter(prefix + ".violations", violation_count_);
    reg.registerGauge(prefix + ".invariants",
                      [this] { return double(invariantCount()); });
}

} // namespace hh::check
