#include "check/fault_inject.h"

#include <algorithm>

#include "sim/log.h"
#include "snapshot/archive.h"
#include "snapshot/tag.h"
#include "stats/registry.h"

namespace hh::check {

FaultInjector::FaultInjector(hh::sim::Simulator &sim,
                             std::uint64_t seed, const FaultConfig &cfg)
    : sim_(sim), cfg_(cfg), rng_(seed, 0xFA17ULL)
{
    if (cfg_.meanPeriod == 0)
        hh::sim::fatal("FaultInjector: meanPeriod must be > 0");
}

void
FaultInjector::addAction(std::string name, Action fn)
{
    if (!fn)
        hh::sim::panic("FaultInjector::addAction: null action ", name);
    actions_.push_back({std::move(name), std::move(fn), 0});
}

void
FaultInjector::start()
{
    if (actions_.empty() || pending_ != hh::sim::kInvalidEventId)
        return;
    const hh::sim::Cycles first =
        std::max<hh::sim::Cycles>(1, cfg_.startAt);
    scheduleNext(first);
}

void
FaultInjector::stop()
{
    if (pending_ != hh::sim::kInvalidEventId) {
        sim_.cancel(pending_);
        pending_ = hh::sim::kInvalidEventId;
    }
}

void
FaultInjector::scheduleNext(hh::sim::Cycles delay)
{
    pending_ = sim_.schedule(delay,
                             hh::snap::tag(hh::snap::SnapTag::kFaultTick),
                             [this] {
                                 pending_ = hh::sim::kInvalidEventId;
                                 tick();
                             });
}

void
FaultInjector::tick()
{
    ++ticks_;
    for (unsigned i = 0;
         i < cfg_.actionsPerTick && fired_ < cfg_.maxActions; ++i) {
        Named &a = actions_[rng_.uniformInt(
            static_cast<std::uint64_t>(actions_.size()))];
        ++a.fired;
        ++fired_;
        a.fn(rng_);
    }
    if (fired_ >= cfg_.maxActions)
        return;
    const auto delay = static_cast<hh::sim::Cycles>(std::max(
        1.0,
        rng_.exponential(static_cast<double>(cfg_.meanPeriod))));
    scheduleNext(delay);
}

std::uint64_t
FaultInjector::actionCount(const std::string &name) const
{
    for (const auto &a : actions_) {
        if (a.name == name)
            return a.fired;
    }
    return 0;
}

void
FaultInjector::serialize(hh::snap::Archive &ar)
{
    ar.io(rng_);
    ar.io(fired_);
    ar.io(ticks_);
    ar.io(pending_);
    std::uint64_t n = actions_.size();
    ar.io(n);
    if (ar.loading() && n != actions_.size()) {
        ar.fail("checkpoint fault-injector action list has " +
                std::to_string(n) + " entries, this run registered " +
                std::to_string(actions_.size()));
        return;
    }
    for (auto &a : actions_)
        ar.io(a.fired);
}

void
FaultInjector::registerMetrics(hh::stats::MetricRegistry &reg,
                               const std::string &prefix)
{
    reg.registerCounter(prefix + ".ticks", ticks_);
    reg.registerCounter(prefix + ".actions", fired_);
    for (auto &a : actions_)
        reg.registerCounter(prefix + ".action." + a.name, a.fired);
}

} // namespace hh::check
