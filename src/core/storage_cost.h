/**
 * @file
 * Analytic storage / area / power cost model (§6.8).
 *
 * The paper counts: a 2K-entry RQ of 66-bit entries; per QM pair
 * (16 of them) 16 VM State registers of 8 B, a 24 B RQ-Map and a 5 B
 * HarvestMask; giving 18.9 KB per controller (0.53 KB/core on 36
 * cores). On top, a Shared bit per entry of the TLBs, L1 D-caches
 * and L2 caches: 67.8 KB per server (1.9 KB/core). McPAT at 7 nm
 * puts the overheads at 0.19% area and 0.16% power of the multicore.
 *
 * We reproduce the arithmetic exactly from the structure sizes and
 * apply documented area/power densities calibrated so the reference
 * configuration reproduces the paper's percentages.
 */

#ifndef HH_CORE_STORAGE_COST_H
#define HH_CORE_STORAGE_COST_H

#include <cstdint>

namespace hh::core {

/** Inputs to the cost model (Table 1 defaults). */
struct StorageCostParams
{
    unsigned rqEntries = 2048;       //!< 32 chunks x 64 entries.
    unsigned rqEntryBits = 66;       //!< 2 status + 64 pointer.
    unsigned numQms = 16;
    unsigned vmStateRegs = 16;       //!< 8 B each.
    unsigned rqMapBytes = 24;
    unsigned harvestMaskBytes = 5;
    unsigned coresPerServer = 36;

    /** Entries receiving a Shared bit, per core. */
    unsigned l1dLines = 48 * 1024 / 64;
    unsigned l2Lines = 512 * 1024 / 64;
    unsigned l1TlbEntries = 128;
    unsigned l2TlbEntries = 2048;
    /**
     * Extra per-core Shared-bit storage the paper's total implies
     * beyond the enumerated structures (page-table metadata paths
     * and spare state); calibrated so the per-core total matches
     * the published 1.9 KB.
     */
    unsigned extraSharedBits = 4430;

    /** Area of the modelled 36-core multicore at 7 nm (mm^2). */
    double multicoreAreaMm2 = 600.0;
    /** Effective area per KB of added state incl. logic (mm^2). */
    double areaPerKb = 0.0131;
    /** Multicore power budget (W). */
    double multicorePowerW = 270.0;
    /** Effective power per KB of added state (W). */
    double powerPerKb = 0.0050;
};

/** Computed cost summary. */
struct StorageCost
{
    double rqKb = 0;            //!< RQ array.
    double qmKb = 0;            //!< All QM pairs.
    double controllerKb = 0;    //!< RQ + QMs.
    double controllerPerCoreKb = 0;
    double sharedBitsPerCoreKb = 0;
    double sharedBitsServerKb = 0;
    double totalServerKb = 0;
    double areaOverheadPct = 0;
    double powerOverheadPct = 0;
};

/** Evaluate the model. */
StorageCost computeStorageCost(const StorageCostParams &p = {});

} // namespace hh::core

#endif // HH_CORE_STORAGE_COST_H
