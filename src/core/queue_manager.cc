#include "core/queue_manager.h"

#include <algorithm>

#include "sim/log.h"
#include "stats/registry.h"

namespace hh::core {

QueueManager::QueueManager(unsigned id, std::uint32_t vmId, bool primary,
                           RequestQueue &rq)
    : id_(id), vm_(vmId), primary_(primary), queue_(rq)
{
}

void
QueueManager::bindCore(unsigned core)
{
    if (isBound(core))
        hh::sim::panic("QueueManager: core ", core, " already bound");
    cores_.push_back(core);
}

void
QueueManager::unbindCore(unsigned core)
{
    const auto it = std::find(cores_.begin(), cores_.end(), core);
    if (it == cores_.end())
        hh::sim::panic("QueueManager: core ", core, " not bound");
    cores_.erase(it);
    on_loan_.erase(core);
}

bool
QueueManager::isBound(unsigned core) const
{
    return std::find(cores_.begin(), cores_.end(), core) !=
           cores_.end();
}

void
QueueManager::noteLoan(unsigned core)
{
    if (!primary_)
        hh::sim::panic("QueueManager: Harvest VMs do not lend cores");
    if (!isBound(core))
        hh::sim::panic("QueueManager: cannot lend unbound core ", core);
    if (!on_loan_.insert(core).second)
        hh::sim::panic("QueueManager: core ", core, " already on loan");
}

void
QueueManager::noteReturn(unsigned core)
{
    if (on_loan_.erase(core) == 0)
        hh::sim::panic("QueueManager: core ", core, " was not on loan");
}

bool
QueueManager::isOnLoan(unsigned core) const
{
    return on_loan_.count(core) != 0;
}

int
QueueManager::loanedCoreToReclaim() const
{
    if (on_loan_.empty())
        return -1;
    return static_cast<int>(
        *std::min_element(on_loan_.begin(), on_loan_.end()));
}

void
QueueManager::registerMetrics(hh::stats::MetricRegistry &reg,
                              const std::string &prefix)
{
    queue_.registerMetrics(reg, prefix + ".rq");
    reg.registerGauge(prefix + ".bound_cores",
                      [this] { return double(cores_.size()); });
    reg.registerGauge(prefix + ".loaned",
                      [this] { return double(loanedCount()); });
}

} // namespace hh::core
