/**
 * @file
 * Hardware Queue Managers (§4.1.2-4.1.5).
 *
 * One QM per running VM. A QM owns the VM's request subqueue, its VM
 * State Register Set and its HarvestMask, knows whether it manages a
 * Primary or a Harvest VM and, if Primary, which of its bound cores
 * are currently "on loan" executing requests of a Harvest VM. QMs
 * operate decentralized (no global lock) on distinct subqueues.
 */

#ifndef HH_CORE_QUEUE_MANAGER_H
#define HH_CORE_QUEUE_MANAGER_H

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/harvest_mask.h"
#include "core/rq.h"
#include "core/vm_state.h"

namespace hh::core {

/**
 * One Queue Manager.
 */
class QueueManager
{
  public:
    /**
     * @param id       QM id within the controller (0..15).
     * @param vmId     Managed VM.
     * @param primary  True for Primary VMs.
     * @param rq       Physical RQ chunks are drawn from.
     */
    QueueManager(unsigned id, std::uint32_t vmId, bool primary,
                 RequestQueue &rq);

    unsigned id() const { return id_; }
    std::uint32_t vm() const { return vm_; }
    bool isPrimary() const { return primary_; }

    SubQueue &queue() { return queue_; }
    const SubQueue &queue() const { return queue_; }

    VmStateRegisterSet &vmState() { return vm_state_; }
    HarvestMask &harvestMask() { return mask_; }
    const HarvestMask &harvestMask() const { return mask_; }

    /** @name Core binding (the MyManager relation) @{ */
    void bindCore(unsigned core);
    void unbindCore(unsigned core);
    bool isBound(unsigned core) const;
    const std::vector<unsigned> &boundCores() const { return cores_; }
    /** @} */

    /** @name Loan tracking (Primary QMs, §4.1.5) @{ */
    void noteLoan(unsigned core);
    void noteReturn(unsigned core);
    bool isOnLoan(unsigned core) const;
    unsigned loanedCount() const
    {
        return static_cast<unsigned>(on_loan_.size());
    }
    /** Any bound core currently lent to a Harvest VM? */
    bool hasLoanedCore() const { return !on_loan_.empty(); }
    /** One loaned core (lowest id) to interrupt for reclamation. */
    int loanedCoreToReclaim() const;
    /** @} */

    /**
     * Register the subqueue's metrics plus QM-level gauges
     * ("<prefix>.bound_cores", "<prefix>.loaned").
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix);

    /**
     * Save/restore subqueue, registers, mask, bindings and loans.
     * Identity fields (id/vm/primary) are construction parameters
     * restored by the controller's QM-list rebuild.
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(queue_);
        ar.io(vm_state_);
        ar.io(mask_);
        ar.io(cores_);
        ar.io(on_loan_);
    }

  private:
    unsigned id_;
    std::uint32_t vm_;
    bool primary_;
    SubQueue queue_;
    VmStateRegisterSet vm_state_;
    HarvestMask mask_;
    std::vector<unsigned> cores_;
    std::unordered_set<unsigned> on_loan_;
};

} // namespace hh::core

#endif // HH_CORE_QUEUE_MANAGER_H
