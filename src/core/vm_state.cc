#include "core/vm_state.h"

#include "sim/log.h"

namespace hh::core {

std::uint64_t
VmStateRegisterSet::read(unsigned idx) const
{
    if (idx >= kNumRegs)
        hh::sim::panic("VmStateRegisterSet::read: bad index ", idx);
    return regs_[idx];
}

void
VmStateRegisterSet::write(unsigned idx, std::uint64_t value)
{
    if (idx >= kNumRegs)
        hh::sim::panic("VmStateRegisterSet::write: bad index ", idx);
    regs_[idx] = value;
}

} // namespace hh::core
