/**
 * @file
 * The hardware Request Queue (RQ) and per-VM subqueues (§4.1.2).
 *
 * The physical RQ is a dedicated SRAM array broken into chunks (32
 * chunks of 64 entries in the paper's implementation). A VM's
 * subqueue is a logically contiguous queue composed of one or more
 * chunks, mapped through the Queue Manager's RQ-Map (up to 32
 * entries of 5-bit physical chunk id + valid bit = 24 B). Chunks are
 * donated/reclaimed as VMs come and go; entries that no longer fit
 * spill to a per-VM In-memory Overflow Subqueue.
 *
 * Each RQ entry is 66 bits: 2 bits of request status (ready /
 * running / blocked) and a 64-bit pointer to the request payload in
 * the LLC.
 */

#ifndef HH_CORE_RQ_H
#define HH_CORE_RQ_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "snapshot/archive.h"
#include "stats/counter.h"

namespace hh::stats {
class MetricRegistry;
}

namespace hh::core {

/** Status field of an RQ entry (2 bits in hardware). */
enum class EntryStatus : std::uint8_t
{
    Empty = 0,
    Ready = 1,
    Running = 2,
    Blocked = 3,
};

/**
 * The physical chunked SRAM array. Owns chunk allocation; subqueues
 * borrow chunks through their RQ-Maps.
 */
class RequestQueue
{
  public:
    /**
     * @param chunks          Number of physical chunks (32).
     * @param entriesPerChunk Entries per chunk (64).
     */
    explicit RequestQueue(unsigned chunks = 32,
                          unsigned entriesPerChunk = 64);

    /** Allocate a free chunk; returns -1 when none are free. */
    int allocChunk();

    /** Return a chunk to the free pool. */
    void freeChunk(unsigned chunk);

    unsigned numChunks() const { return chunks_; }
    unsigned entriesPerChunk() const { return entries_per_chunk_; }
    unsigned freeChunks() const
    {
        return static_cast<unsigned>(free_.size());
    }
    /** Chunks currently handed out (== numChunks() - freeChunks()). */
    unsigned allocatedChunks() const
    {
        return chunks_ - freeChunks();
    }
    /** Allocation state of one chunk (invariant auditing). */
    bool isAllocated(unsigned chunk) const
    {
        return chunk < chunks_ && allocated_[chunk];
    }
    unsigned totalEntries() const { return chunks_ * entries_per_chunk_; }

    /** Storage of the RQ array in bits (66 bits per entry, §6.8). */
    std::uint64_t storageBits() const;

    /**
     * Save/restore the allocation state. The free list is
     * order-significant (allocChunk pops the back), so it is
     * serialized verbatim rather than recomputed.
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(free_);
        ar.io(allocated_);
    }

  private:
    unsigned chunks_;
    unsigned entries_per_chunk_;
    std::vector<unsigned> free_;
    std::vector<bool> allocated_;
};

/**
 * One VM's logical subqueue: an RQ-Map over physical chunks plus the
 * request bookkeeping (ready FIFO, running set, blocked set) and the
 * software In-memory Overflow Subqueue.
 *
 * Slot-level physical placement inside chunks is abstracted: the
 * model tracks exact capacity (chunks x entries/chunk) and exact
 * occupancy, which is what determines overflow behaviour.
 */
class SubQueue
{
  public:
    /** @param rq The physical array chunks are drawn from. */
    explicit SubQueue(RequestQueue &rq);

    /**
     * Frees the chunks. A subqueue destroyed while it still holds
     * request payloads (ready/running/blocked/overflow) is a request
     * leak: each payload is warned about once per destruction and
     * added to the process-wide teardownPayloadLeaks() counter so
     * the leak is visible instead of silently vanishing with the
     * queue.
     */
    ~SubQueue();

    SubQueue(const SubQueue &) = delete;
    SubQueue &operator=(const SubQueue &) = delete;

    /**
     * Append a freshly allocated physical chunk to the RQ-Map tail.
     * @return false if the RQ-Map is full (32 entries).
     */
    bool addChunk(unsigned physChunk);

    /**
     * Shed the tail chunk (donation to another VM, §4.1.2). Entries
     * that no longer fit spill to the overflow subqueue.
     *
     * @return The physical chunk id, or -1 if the subqueue has no
     *         chunks.
     */
    int shedTailChunk();

    /** Hardware capacity in entries. */
    unsigned capacity() const;

    /** Requests resident in hardware (ready + running + blocked). */
    unsigned occupancy() const;

    /** Requests waiting in the in-memory overflow subqueue. */
    std::size_t overflowSize() const { return overflow_.size(); }

    /**
     * Enqueue a ready request (§4.1.3). Goes to the overflow
     * subqueue when the hardware subqueue is full.
     *
     * Contract: the request is ALWAYS accepted. A `false` return
     * means *deferred to the in-memory overflow subqueue*, not
     * rejected — the payload re-enters the hardware ready FIFO
     * automatically (drainOverflow) as capacity frees up, preserving
     * arrival order. Callers must therefore never retry a `false`
     * enqueue: doing so would duplicate the request. The return
     * value exists purely so callers can account for the extra
     * overflow-path latency.
     *
     * @return true if it landed in hardware, false if it was
     *         deferred to the overflow subqueue.
     */
    bool enqueue(std::uint64_t payload);

    /**
     * Dequeue the oldest ready request (FIFO within the VM) and mark
     * it running.
     */
    std::optional<std::uint64_t> dequeue();

    /** Peek whether any ready request exists. */
    bool hasReady() const { return !ready_.empty(); }

    /** Number of ready requests (hardware only). */
    std::size_t readyCount() const { return ready_.size(); }

    /** Mark a running request blocked on I/O (entry stays). */
    void markBlocked(std::uint64_t payload);

    /**
     * Mark a blocked request ready again (I/O response arrived).
     * Re-enters the ready FIFO at the head, preserving arrival order
     * relative to younger requests.
     */
    void markReady(std::uint64_t payload);

    /** Remove a completed request and refill from overflow. */
    void complete(std::uint64_t payload);

    /**
     * A running request leaves the core without completing (the
     * Harvest vCPU was preempted): back to the head of the ready
     * FIFO (Fig 10: ID5 returns to a ready state).
     */
    void preempt(std::uint64_t payload);

    /** Current RQ-Map: physical chunk ids in logical order. */
    const std::vector<unsigned> &rqMap() const { return rq_map_; }

    /** @name Introspection (invariant auditor / tests) @{ */
    /** Ready FIFO contents, oldest first (hardware only). */
    const std::deque<std::uint64_t> &readyEntries() const
    {
        return ready_;
    }
    /** Requests currently marked running. */
    const std::unordered_set<std::uint64_t> &runningEntries() const
    {
        return running_;
    }
    /** Requests currently marked blocked. */
    const std::unordered_set<std::uint64_t> &blockedEntries() const
    {
        return blocked_;
    }
    /** In-memory overflow subqueue contents, oldest first. */
    const std::deque<std::uint64_t> &overflowEntries() const
    {
        return overflow_;
    }

    /**
     * Payloads discarded by ~SubQueue across every instance since
     * process start (or the last reset). Atomic because parallel
     * cluster runs tear servers down on pool threads.
     */
    static std::uint64_t teardownPayloadLeaks()
    {
        return teardown_leaks_.load(std::memory_order_relaxed);
    }
    static void resetTeardownPayloadLeaks()
    {
        teardown_leaks_.store(0, std::memory_order_relaxed);
    }
    /** @} */

    /** RQ-Map storage in bits (32 x (5 id + 1 valid), §6.8). */
    static constexpr std::uint64_t kRqMapBits = 32 * 6;

    /** @name Statistics @{ */
    const hh::stats::Counter &enqueues() const { return enqueues_; }
    const hh::stats::Counter &dequeues() const { return dequeues_; }
    const hh::stats::Counter &overflows() const { return overflows_; }

    /**
     * Register lifetime counters ("<prefix>.enqueues", ".dequeues",
     * ".overflows") and instantaneous gauges (".ready", ".occupancy",
     * ".overflow_size").
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix);
    /** @} */

    /**
     * Save/restore the RQ-Map and all request bookkeeping. Chunk
     * allocation in the physical array is restored separately by the
     * controller (the chunks named in rq_map_ must already be marked
     * allocated there).
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(rq_map_);
        ar.io(ready_);
        ar.io(running_);
        ar.io(blocked_);
        ar.io(overflow_);
        ar.io(enqueues_);
        ar.io(dequeues_);
        ar.io(overflows_);
    }

  private:
    /** Move overflowed requests into freed hardware slots. */
    void drainOverflow();

    RequestQueue &rq_;
    std::vector<unsigned> rq_map_;
    std::deque<std::uint64_t> ready_;
    std::unordered_set<std::uint64_t> running_;
    std::unordered_set<std::uint64_t> blocked_;
    std::deque<std::uint64_t> overflow_;
    hh::stats::Counter enqueues_{"rq.enqueues"};
    hh::stats::Counter dequeues_{"rq.dequeues"};
    hh::stats::Counter overflows_{"rq.overflows"};

    static std::atomic<std::uint64_t> teardown_leaks_;
};

} // namespace hh::core

#endif // HH_CORE_RQ_H
