#include "core/rq.h"

#include <algorithm>

#include "sim/log.h"
#include "stats/registry.h"

namespace hh::core {

RequestQueue::RequestQueue(unsigned chunks, unsigned entriesPerChunk)
    : chunks_(chunks), entries_per_chunk_(entriesPerChunk),
      allocated_(chunks, false)
{
    if (chunks == 0 || entriesPerChunk == 0)
        hh::sim::fatal("RequestQueue: chunks and entries must be > 0");
    free_.reserve(chunks);
    // Hand out low chunk ids first (freeChunk pushes back, so the
    // pool behaves LIFO afterwards; allocation order is not
    // architecturally visible).
    for (unsigned c = chunks; c-- > 0;)
        free_.push_back(c);
}

int
RequestQueue::allocChunk()
{
    if (free_.empty())
        return -1;
    const unsigned c = free_.back();
    free_.pop_back();
    allocated_[c] = true;
    return static_cast<int>(c);
}

void
RequestQueue::freeChunk(unsigned chunk)
{
    if (chunk >= chunks_)
        hh::sim::panic("RequestQueue::freeChunk: bad chunk ", chunk);
    if (!allocated_[chunk])
        hh::sim::panic("RequestQueue::freeChunk: double free of ",
                       chunk);
    allocated_[chunk] = false;
    free_.push_back(chunk);
}

std::uint64_t
RequestQueue::storageBits() const
{
    // 2 status bits + 64-bit payload pointer per entry (§6.8).
    return static_cast<std::uint64_t>(totalEntries()) * 66;
}

std::atomic<std::uint64_t> SubQueue::teardown_leaks_{0};

SubQueue::SubQueue(RequestQueue &rq) : rq_(rq) {}

SubQueue::~SubQueue()
{
    const std::size_t leaked = ready_.size() + running_.size() +
                               blocked_.size() + overflow_.size();
    if (leaked > 0) {
        teardown_leaks_.fetch_add(leaked, std::memory_order_relaxed);
        hh::sim::warn("SubQueue destroyed with ", leaked,
                      " live request(s): ", ready_.size(), " ready, ",
                      running_.size(), " running, ", blocked_.size(),
                      " blocked, ", overflow_.size(), " overflow");
    }
    for (unsigned c : rq_map_)
        rq_.freeChunk(c);
}

bool
SubQueue::addChunk(unsigned physChunk)
{
    if (rq_map_.size() >= 32)
        return false; // RQ-Map is a 32-entry hardware table.
    rq_map_.push_back(physChunk);
    drainOverflow();
    return true;
}

int
SubQueue::shedTailChunk()
{
    if (rq_map_.empty())
        return -1;
    const unsigned c = rq_map_.back();
    rq_map_.pop_back();
    // Entries that no longer fit move to the overflow subqueue,
    // youngest first (they are at the logical tail).
    while (occupancy() > capacity() && !ready_.empty()) {
        overflow_.push_front(ready_.back());
        ready_.pop_back();
    }
    return static_cast<int>(c);
}

unsigned
SubQueue::capacity() const
{
    return static_cast<unsigned>(rq_map_.size()) *
           rq_.entriesPerChunk();
}

unsigned
SubQueue::occupancy() const
{
    return static_cast<unsigned>(ready_.size() + running_.size() +
                                 blocked_.size());
}

bool
SubQueue::enqueue(std::uint64_t payload)
{
    enqueues_.inc();
    if (!overflow_.empty() || occupancy() >= capacity()) {
        // Preserve FIFO: once anything has overflowed, new arrivals
        // must queue behind it.
        overflows_.inc();
        overflow_.push_back(payload);
        return false;
    }
    ready_.push_back(payload);
    return true;
}

std::optional<std::uint64_t>
SubQueue::dequeue()
{
    if (ready_.empty())
        return std::nullopt;
    const std::uint64_t p = ready_.front();
    ready_.pop_front();
    running_.insert(p);
    dequeues_.inc();
    drainOverflow();
    return p;
}

void
SubQueue::markBlocked(std::uint64_t payload)
{
    if (running_.erase(payload) == 0)
        hh::sim::panic("SubQueue::markBlocked: request ", payload,
                       " is not running");
    blocked_.insert(payload);
}

void
SubQueue::markReady(std::uint64_t payload)
{
    if (blocked_.erase(payload) == 0)
        hh::sim::panic("SubQueue::markReady: request ", payload,
                       " is not blocked");
    ready_.push_front(payload);
}

void
SubQueue::complete(std::uint64_t payload)
{
    if (running_.erase(payload) == 0)
        hh::sim::panic("SubQueue::complete: request ", payload,
                       " is not running");
    drainOverflow();
}

void
SubQueue::preempt(std::uint64_t payload)
{
    if (running_.erase(payload) == 0)
        hh::sim::panic("SubQueue::preempt: request ", payload,
                       " is not running");
    ready_.push_front(payload);
}

void
SubQueue::drainOverflow()
{
    while (!overflow_.empty() && occupancy() < capacity()) {
        ready_.push_back(overflow_.front());
        overflow_.pop_front();
    }
}

void
SubQueue::registerMetrics(hh::stats::MetricRegistry &reg,
                          const std::string &prefix)
{
    reg.registerCounter(prefix + ".enqueues", enqueues_);
    reg.registerCounter(prefix + ".dequeues", dequeues_);
    reg.registerCounter(prefix + ".overflows", overflows_);
    reg.registerGauge(prefix + ".ready",
                      [this] { return double(readyCount()); });
    reg.registerGauge(prefix + ".occupancy",
                      [this] { return double(occupancy()); });
    reg.registerGauge(prefix + ".overflow_size",
                      [this] { return double(overflowSize()); });
}

} // namespace hh::core
