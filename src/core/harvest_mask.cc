#include "core/harvest_mask.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace hh::core {

HarvestMask::HarvestMask(const StructureWays &ways) : ways_(ways)
{
    unsigned total = 0;
    for (unsigned i = 0; i < kNumMaskedStructs; ++i) {
        if (ways_.ways[i] == 0 || ways_.ways[i] > 16)
            hh::sim::fatal("HarvestMask: structure way count must be "
                           "in [1, 16]");
        total += ways_.ways[i];
    }
    if (total > 40)
        hh::sim::fatal("HarvestMask: masks exceed the 5-byte register");
}

void
HarvestMask::setMask(MaskedStruct s, hh::cache::WayMask mask)
{
    const auto i = static_cast<unsigned>(s);
    const std::uint16_t limit =
        static_cast<std::uint16_t>((1u << ways_.ways[i]) - 1);
    masks_[i] = static_cast<std::uint16_t>(mask) & limit;
}

hh::cache::WayMask
HarvestMask::mask(MaskedStruct s) const
{
    return masks_[static_cast<unsigned>(s)];
}

unsigned
HarvestMask::wayCount(MaskedStruct s) const
{
    return ways_.ways[static_cast<unsigned>(s)];
}

void
HarvestMask::setFraction(double fraction)
{
    for (unsigned i = 0; i < kNumMaskedStructs; ++i) {
        const unsigned ways = ways_.ways[i];
        auto n = static_cast<unsigned>(
            std::lround(fraction * static_cast<double>(ways)));
        n = std::min(std::max(1u, n), ways - 1 > 0 ? ways - 1 : 1u);
        masks_[i] = static_cast<std::uint16_t>((1u << n) - 1);
    }
}

std::array<std::uint8_t, 5>
HarvestMask::pack() const
{
    // Concatenate the per-structure masks into a 40-bit little-endian
    // stream, each field ways_[i] bits wide.
    std::uint64_t stream = 0;
    unsigned shift = 0;
    for (unsigned i = 0; i < kNumMaskedStructs; ++i) {
        stream |= static_cast<std::uint64_t>(masks_[i]) << shift;
        shift += ways_.ways[i];
    }
    std::array<std::uint8_t, 5> bytes{};
    for (unsigned b = 0; b < 5; ++b)
        bytes[b] = static_cast<std::uint8_t>(stream >> (8 * b));
    return bytes;
}

void
HarvestMask::unpack(const std::array<std::uint8_t, 5> &bytes)
{
    std::uint64_t stream = 0;
    for (unsigned b = 0; b < 5; ++b)
        stream |= static_cast<std::uint64_t>(bytes[b]) << (8 * b);
    unsigned shift = 0;
    for (unsigned i = 0; i < kNumMaskedStructs; ++i) {
        const std::uint64_t field_mask =
            (std::uint64_t{1} << ways_.ways[i]) - 1;
        masks_[i] =
            static_cast<std::uint16_t>((stream >> shift) & field_mask);
        shift += ways_.ways[i];
    }
}

} // namespace hh::core
