/**
 * @file
 * VM State Register Sets (§4.1.2).
 *
 * Each Queue Manager is paired with a register set holding the VM
 * state shared by all threads of a VM — VMCS pointer, CR0, CR3, CR4,
 * GDTR, LDTR, IDTR and general configuration — 16 registers of 8
 * bytes each (Table 1, §6.8). When a core is re-assigned to a VM,
 * the controller ships this set to the core so it can enter the VM
 * without a hypervisor call.
 */

#ifndef HH_CORE_VM_STATE_H
#define HH_CORE_VM_STATE_H

#include <array>
#include <cstdint>

#include "snapshot/archive.h"

namespace hh::core {

/**
 * One VM State Register Set.
 */
class VmStateRegisterSet
{
  public:
    static constexpr unsigned kNumRegs = 16;

    /** Named architectural registers within the set. */
    enum Reg : unsigned
    {
        VmcsPtr = 0,
        Cr0 = 1,
        Cr3 = 2,
        Cr4 = 3,
        Gdtr = 4,
        Ldtr = 5,
        Idtr = 6,
        // 7..15 are implementation-defined configuration registers.
    };

    /** Read register @p idx. */
    std::uint64_t read(unsigned idx) const;

    /** Write register @p idx. */
    void write(unsigned idx, std::uint64_t value);

    /** Load a complete VM state image. */
    void
    load(const std::array<std::uint64_t, kNumRegs> &image)
    {
        regs_ = image;
    }

    /** Snapshot the full register set. */
    const std::array<std::uint64_t, kNumRegs> &image() const
    {
        return regs_;
    }

    /** Storage in bytes (16 x 8 B = 128 B, §6.8). */
    static constexpr std::uint64_t
    storageBytes()
    {
        return kNumRegs * 8;
    }

    void serialize(hh::snap::Archive &ar) { ar.io(regs_); }

  private:
    std::array<std::uint64_t, kNumRegs> regs_{};
};

} // namespace hh::core

#endif // HH_CORE_VM_STATE_H
