/**
 * @file
 * The HarvestMask register (§4.2.1).
 *
 * Per VM, a 5-byte register holding one bit per way for each of the
 * five partitionable structures (L1D 12 ways, L1I 8, L2 8, L1 TLB 4,
 * L2 TLB 8 = 40 bits). A set bit marks the way as part of the
 * harvest region. When a core is (re)assigned to a VM, the mask
 * reconfigures the private caches/TLBs CAT-style before execution
 * starts.
 */

#ifndef HH_CORE_HARVEST_MASK_H
#define HH_CORE_HARVEST_MASK_H

#include <array>
#include <cstdint>

#include "cache/config.h"
#include "snapshot/archive.h"

namespace hh::core {

/** The five way-partitioned structures. */
enum class MaskedStruct : unsigned
{
    L1D = 0,
    L1I = 1,
    L2 = 2,
    L1Tlb = 3,
    L2Tlb = 4,
};

inline constexpr unsigned kNumMaskedStructs = 5;

/**
 * The per-VM HarvestMask register.
 */
class HarvestMask
{
  public:
    /** Way counts of each structure (defaults follow Table 1). */
    struct StructureWays
    {
        std::array<std::uint8_t, kNumMaskedStructs> ways{12, 8, 8, 4, 8};
    };

    /** Default-construct with Table 1 way counts. */
    HarvestMask() : HarvestMask(StructureWays{}) {}

    explicit HarvestMask(const StructureWays &ways);

    /** Set the harvest-way mask of one structure. */
    void setMask(MaskedStruct s, hh::cache::WayMask mask);

    /** Harvest-way mask of one structure. */
    hh::cache::WayMask mask(MaskedStruct s) const;

    /**
     * Configure every structure so the lowest
     * round(fraction * ways) ways are the harvest region, keeping at
     * least one way on each side.
     */
    void setFraction(double fraction);

    /** Pack all masks into the 5-byte hardware image. */
    std::array<std::uint8_t, 5> pack() const;

    /** Load all masks from a 5-byte hardware image. */
    void unpack(const std::array<std::uint8_t, 5> &bytes);

    /** Way count of a structure. */
    unsigned wayCount(MaskedStruct s) const;

    /** Register size (§6.8). */
    static constexpr std::uint64_t storageBytes() { return 5; }

    /** Save/restore (way counts are construction-time constants). */
    void serialize(hh::snap::Archive &ar) { ar.io(masks_); }

  private:
    StructureWays ways_;
    /** Per-structure masks; L1D needs 12 bits so uint16 each. */
    std::array<std::uint16_t, kNumMaskedStructs> masks_{};
};

} // namespace hh::core

#endif // HH_CORE_HARVEST_MASK_H
