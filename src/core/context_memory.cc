#include "core/context_memory.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace hh::core {

RequestContextMemory::RequestContextMemory(const hh::noc::Mesh2D &mesh,
                                           unsigned bytesPerCtxt,
                                           double bytesPerCycle)
    : mesh_(mesh), bytes_per_ctxt_(bytesPerCtxt),
      bytes_per_cycle_(bytesPerCycle)
{
    if (bytesPerCycle <= 0)
        hh::sim::fatal("RequestContextMemory: bandwidth must be > 0");
}

hh::sim::Cycles
RequestContextMemory::transferCost(unsigned core) const
{
    const auto serialization = static_cast<hh::sim::Cycles>(std::ceil(
        static_cast<double>(bytes_per_ctxt_) / bytes_per_cycle_));
    return mesh_.latencyToCenter(core % mesh_.nodes()) + serialization;
}

hh::sim::Cycles
RequestContextMemory::saveCost(unsigned core) const
{
    return transferCost(core);
}

hh::sim::Cycles
RequestContextMemory::restoreCost(unsigned core) const
{
    return transferCost(core);
}

void
RequestContextMemory::store(std::uint64_t ctxtId)
{
    const auto it =
        std::lower_bound(stored_.begin(), stored_.end(), ctxtId);
    if (it == stored_.end() || *it != ctxtId)
        stored_.insert(it, ctxtId);
    peak_ = std::max(peak_, stored_.size());
}

void
RequestContextMemory::release(std::uint64_t ctxtId)
{
    const auto it =
        std::lower_bound(stored_.begin(), stored_.end(), ctxtId);
    if (it == stored_.end() || *it != ctxtId)
        hh::sim::panic("RequestContextMemory: releasing unknown "
                       "context ", ctxtId);
    stored_.erase(it);
}

bool
RequestContextMemory::contains(std::uint64_t ctxtId) const
{
    return std::binary_search(stored_.begin(), stored_.end(), ctxtId);
}

} // namespace hh::core
