/**
 * @file
 * The Request Context Memory (§4.1.4, §4.1.8).
 *
 * HardHarvest extends uManycore-style in-hardware context switching:
 * a special memory on the regular NoC where the hardware saves the
 * process register state of a preempted request and restores the
 * state of the next one, without entering the kernel. With this
 * support a core re-assignment takes a few 10s of ns; without it the
 * save/restore runs in software and a reassignment takes a few us.
 */

#ifndef HH_CORE_CONTEXT_MEMORY_H
#define HH_CORE_CONTEXT_MEMORY_H

#include <cstdint>
#include <vector>

#include "noc/mesh.h"
#include "sim/time.h"
#include "snapshot/archive.h"

namespace hh::core {

/**
 * Cost/occupancy model of the Request Context Memory.
 */
class RequestContextMemory
{
  public:
    /**
     * @param mesh          The regular NoC (transfer latency source).
     * @param bytesPerCtxt  Architectural context size moved per
     *                      save/restore.
     * @param bytesPerCycle NoC payload bandwidth toward the memory.
     */
    explicit RequestContextMemory(const hh::noc::Mesh2D &mesh,
                                  unsigned bytesPerCtxt = 1024,
                                  double bytesPerCycle = 32.0);

    /** Latency to save a context from core @p core. */
    hh::sim::Cycles saveCost(unsigned core) const;

    /** Latency to restore a context to core @p core. */
    hh::sim::Cycles restoreCost(unsigned core) const;

    /** Record a context as stored (occupancy statistics). */
    void store(std::uint64_t ctxtId);

    /** Remove a stored context; panics if unknown. */
    void release(std::uint64_t ctxtId);

    /** True if @p ctxtId is resident. */
    bool contains(std::uint64_t ctxtId) const;

    std::size_t occupancy() const { return stored_.size(); }
    std::size_t peakOccupancy() const { return peak_; }

    /**
     * stored_ is kept sorted, so writing it as a plain vector emits
     * exactly the bytes the old unordered_set encoding did (the
     * archive serializes unordered sets in ascending key order).
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        std::uint64_t peak = peak_;
        ar.io(stored_);
        ar.io(peak);
        peak_ = static_cast<std::size_t>(peak);
    }

  private:
    hh::sim::Cycles transferCost(unsigned core) const;

    const hh::noc::Mesh2D &mesh_;
    unsigned bytes_per_ctxt_;
    double bytes_per_cycle_;
    /** Resident context ids, ascending (flat set; tiny and scan-hot). */
    std::vector<std::uint64_t> stored_;
    std::size_t peak_ = 0;
};

} // namespace hh::core

#endif // HH_CORE_CONTEXT_MEMORY_H
