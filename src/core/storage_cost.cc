#include "core/storage_cost.h"

namespace hh::core {

StorageCost
computeStorageCost(const StorageCostParams &p)
{
    StorageCost c;

    const double rq_bits =
        static_cast<double>(p.rqEntries) * p.rqEntryBits;
    c.rqKb = rq_bits / 8.0 / 1024.0;

    const double per_qm_bytes = p.vmStateRegs * 8.0 + p.rqMapBytes +
                                p.harvestMaskBytes;
    c.qmKb = per_qm_bytes * p.numQms / 1024.0;

    c.controllerKb = c.rqKb + c.qmKb;
    c.controllerPerCoreKb = c.controllerKb / p.coresPerServer;

    const double shared_bits_per_core =
        static_cast<double>(p.l1dLines) + p.l2Lines + p.l1TlbEntries +
        p.l2TlbEntries + p.extraSharedBits;
    c.sharedBitsPerCoreKb = shared_bits_per_core / 8.0 / 1024.0;
    c.sharedBitsServerKb = c.sharedBitsPerCoreKb * p.coresPerServer;

    c.totalServerKb = c.controllerKb + c.sharedBitsServerKb;
    c.areaOverheadPct =
        c.totalServerKb * p.areaPerKb / p.multicoreAreaMm2 * 100.0;
    c.powerOverheadPct =
        c.totalServerKb * p.powerPerKb / p.multicorePowerW * 100.0;
    return c;
}

} // namespace hh::core
