#include "core/controller.h"

#include <algorithm>

#include "sim/log.h"
#include "stats/registry.h"

namespace hh::core {

HardHarvestController::HardHarvestController(const ControllerConfig &cfg,
                                             unsigned numCores)
    : cfg_(cfg), rq_(cfg.rqChunks, cfg.entriesPerChunk),
      tree_(numCores, cfg.treeFanout, cfg.treeHopLatency)
{
    if (cfg.maxQms == 0)
        hh::sim::fatal("HardHarvestController: need at least one QM");
}

QueueManager &
HardHarvestController::registerVm(std::uint32_t vmId, bool primary,
                                  unsigned weight)
{
    if (qmFor(vmId))
        hh::sim::panic("HardHarvestController: VM ", vmId,
                       " already registered");
    if (qms_.size() >= cfg_.maxQms)
        hh::sim::fatal("HardHarvestController: out of Queue Managers");
    if (weight == 0)
        hh::sim::fatal("HardHarvestController: VM weight must be > 0");

    Slot slot;
    slot.qm = std::make_unique<QueueManager>(next_qm_id_++, vmId,
                                             primary, rq_);
    slot.weight = weight;
    qms_.push_back(std::move(slot));
    rebalanceChunks();
    return *qms_.back().qm;
}

void
HardHarvestController::removeVm(std::uint32_t vmId)
{
    const auto it = std::find_if(qms_.begin(), qms_.end(),
                                 [&](const Slot &s) {
                                     return s.qm->vm() == vmId;
                                 });
    if (it == qms_.end())
        hh::sim::panic("HardHarvestController: VM ", vmId,
                       " not registered");
    // The SubQueue destructor returns its chunks to the RQ pool; the
    // survivors then grow into the freed space.
    qms_.erase(it);
    rebalanceChunks();
}

QueueManager *
HardHarvestController::qmFor(std::uint32_t vmId)
{
    for (auto &s : qms_) {
        if (s.qm->vm() == vmId)
            return s.qm.get();
    }
    return nullptr;
}

const QueueManager *
HardHarvestController::qmFor(std::uint32_t vmId) const
{
    return const_cast<HardHarvestController *>(this)->qmFor(vmId);
}

unsigned
HardHarvestController::totalWeight() const
{
    unsigned w = 0;
    for (const auto &s : qms_)
        w += s.weight;
    return w;
}

void
HardHarvestController::rebalanceChunks()
{
    if (qms_.empty())
        return;
    const unsigned total_weight = totalWeight();
    const unsigned chunks = rq_.numChunks();

    // Proportional targets, at least one chunk per VM.
    std::vector<unsigned> target(qms_.size());
    unsigned assigned = 0;
    for (std::size_t i = 0; i < qms_.size(); ++i) {
        target[i] = std::max(
            1u, chunks * qms_[i].weight / total_weight);
        assigned += target[i];
    }
    // Hand out any remainder round-robin (weights rarely divide 32).
    for (std::size_t i = 0; assigned < chunks && !qms_.empty();
         i = (i + 1) % qms_.size()) {
        ++target[i];
        ++assigned;
    }
    // If minimums overcommitted (many tiny VMs), trim the largest.
    while (assigned > chunks) {
        const auto it = std::max_element(target.begin(), target.end());
        if (*it <= 1)
            break;
        --*it;
        --assigned;
    }

    // Phase 1: donors shed tail chunks into the free pool.
    for (std::size_t i = 0; i < qms_.size(); ++i) {
        SubQueue &q = qms_[i].qm->queue();
        while (q.rqMap().size() > target[i]) {
            const int c = q.shedTailChunk();
            if (c < 0)
                break;
            rq_.freeChunk(static_cast<unsigned>(c));
        }
    }
    // Phase 2: takers grow from the free pool.
    for (std::size_t i = 0; i < qms_.size(); ++i) {
        SubQueue &q = qms_[i].qm->queue();
        while (q.rqMap().size() < target[i]) {
            const int c = rq_.allocChunk();
            if (c < 0)
                return; // pool exhausted; others already at target
            if (!q.addChunk(static_cast<unsigned>(c))) {
                rq_.freeChunk(static_cast<unsigned>(c));
                break;
            }
        }
    }
}

bool
HardHarvestController::enqueue(std::uint32_t vm, std::uint64_t payload)
{
    QueueManager *qm = qmFor(vm);
    if (!qm)
        hh::sim::panic("HardHarvestController::enqueue: unknown VM ",
                       vm);
    return qm->queue().enqueue(payload);
}

std::optional<std::uint64_t>
HardHarvestController::dequeue(std::uint32_t vm)
{
    QueueManager *qm = qmFor(vm);
    if (!qm)
        hh::sim::panic("HardHarvestController::dequeue: unknown VM ",
                       vm);
    return qm->queue().dequeue();
}

void
HardHarvestController::markBlocked(std::uint32_t vm,
                                   std::uint64_t payload)
{
    QueueManager *qm = qmFor(vm);
    if (!qm)
        hh::sim::panic("HardHarvestController::markBlocked: unknown "
                       "VM ", vm);
    qm->queue().markBlocked(payload);
}

void
HardHarvestController::markReady(std::uint32_t vm, std::uint64_t payload)
{
    QueueManager *qm = qmFor(vm);
    if (!qm)
        hh::sim::panic("HardHarvestController::markReady: unknown VM ",
                       vm);
    qm->queue().markReady(payload);
}

void
HardHarvestController::complete(std::uint32_t vm, std::uint64_t payload)
{
    QueueManager *qm = qmFor(vm);
    if (!qm)
        hh::sim::panic("HardHarvestController::complete: unknown VM ",
                       vm);
    qm->queue().complete(payload);
}

void
HardHarvestController::preempt(std::uint32_t vm, std::uint64_t payload)
{
    QueueManager *qm = qmFor(vm);
    if (!qm)
        hh::sim::panic("HardHarvestController::preempt: unknown VM ",
                       vm);
    qm->queue().preempt(payload);
}

hh::sim::Cycles
HardHarvestController::queueOpLatency() const
{
    return tree_.roundTrip() + cfg_.sramAccess;
}

hh::sim::Cycles
HardHarvestController::notifyLatency() const
{
    return tree_.coreToController();
}

void
HardHarvestController::serialize(hh::snap::Archive &ar)
{
    ar.section(0x51, "controller");
    ar.io(next_qm_id_);
    std::uint32_t n = static_cast<std::uint32_t>(qms_.size());
    ar.io(n);
    if (ar.loading() && n > cfg_.maxQms) {
        ar.fail("checkpoint names more QMs than this controller "
                "supports");
        return;
    }

    struct Ident
    {
        std::uint32_t id = 0;
        std::uint32_t vm = 0;
        bool primary = false;
        unsigned weight = 0;
    };
    std::vector<Ident> idents(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (ar.saving()) {
            idents[i] = {qms_[i].qm->id(), qms_[i].qm->vm(),
                         qms_[i].qm->isPrimary(), qms_[i].weight};
        }
        ar.io(idents[i].id);
        ar.io(idents[i].vm);
        ar.io(idents[i].primary);
        ar.io(idents[i].weight);
    }
    if (!ar.ok())
        return;

    if (ar.loading()) {
        // Reconcile the live QM list with the saved identity slots.
        // Matching slots keep their QueueManager object (metric
        // registrations point into it); mismatched or extra slots are
        // torn down and rebuilt. All teardown happens BEFORE the RQ
        // state is restored: destructors return chunks to the pool,
        // and the restored allocation state then overwrites the pool
        // wholesale.
        if (qms_.size() > n)
            qms_.resize(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            const Ident &w = idents[i];
            const bool match = i < qms_.size() &&
                               qms_[i].qm->id() == w.id &&
                               qms_[i].qm->vm() == w.vm &&
                               qms_[i].qm->isPrimary() == w.primary;
            if (match) {
                qms_[i].weight = w.weight;
                continue;
            }
            Slot slot;
            slot.qm = std::make_unique<QueueManager>(w.id, w.vm,
                                                     w.primary, rq_);
            slot.weight = w.weight;
            if (i < qms_.size())
                qms_[i] = std::move(slot);
            else
                qms_.push_back(std::move(slot));
        }
    }

    ar.io(rq_);
    for (std::uint32_t i = 0; i < n && ar.ok(); ++i)
        qms_[i].qm->serialize(ar);
}

void
HardHarvestController::registerMetrics(hh::stats::MetricRegistry &reg,
                                       const std::string &prefix)
{
    reg.registerGauge(prefix + ".free_chunks",
                      [this] { return double(rq_.freeChunks()); });
    reg.registerGauge(prefix + ".vms",
                      [this] { return double(numVms()); });
}

} // namespace hh::core
