/**
 * @file
 * The HardHarvest hardware controller (§4.1.2, Fig 9).
 *
 * A centralized per-processor module reached over the dedicated
 * control tree. It owns the physical Request Queue and up to 16
 * Queue Manager / VM State Register Set pairs. VM registration binds
 * a QM and carves the RQ into per-VM subqueues proportionally to
 * each VM's core count; arrivals and departures trigger chunk
 * donation between subqueue tails (§4.1.2). Cores interact only with
 * QMs (never with subqueues directly) through user-level dequeue /
 * complete / blocked instructions whose latency is the control-tree
 * round trip plus the SRAM access.
 */

#ifndef HH_CORE_CONTROLLER_H
#define HH_CORE_CONTROLLER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/queue_manager.h"
#include "core/rq.h"
#include "noc/control_tree.h"
#include "sim/time.h"

namespace hh::core {

/**
 * Controller construction parameters (Table 1 defaults).
 */
struct ControllerConfig
{
    unsigned rqChunks = 32;
    unsigned entriesPerChunk = 64;
    unsigned maxQms = 16;

    /** Worst-case harvest-region flush+invalidate bound (cycles). */
    hh::sim::Cycles flushBound = 1000;

    /** Control-tree parameters (§4.1.8). */
    unsigned treeFanout = 4;
    hh::sim::Cycles treeHopLatency = 2;

    /** One access to the dedicated RQ SRAM. */
    hh::sim::Cycles sramAccess = 4;
};

/**
 * The controller.
 */
class HardHarvestController
{
  public:
    /**
     * @param cfg      Configuration.
     * @param numCores Cores attached to the control tree.
     */
    HardHarvestController(const ControllerConfig &cfg, unsigned numCores);

    /** @name VM lifecycle @{ */

    /**
     * Register a VM: allocates a QM and gives the VM a share of the
     * RQ proportional to @p weight (its core count), donating chunks
     * from currently-active VMs if needed.
     */
    QueueManager &registerVm(std::uint32_t vmId, bool primary,
                             unsigned weight);

    /** Remove a VM; its chunks go to the remaining subqueues. */
    void removeVm(std::uint32_t vmId);

    /** QM in charge of a VM, or nullptr. */
    QueueManager *qmFor(std::uint32_t vmId);
    const QueueManager *qmFor(std::uint32_t vmId) const;

    unsigned numVms() const
    {
        return static_cast<unsigned>(qms_.size());
    }

    /**
     * Visit every registered QM in registration order (invariant
     * auditing / tests). @p fn receives a const QueueManager &.
     */
    template <typename Fn>
    void forEachQm(Fn &&fn) const
    {
        for (const auto &slot : qms_)
            fn(static_cast<const QueueManager &>(*slot.qm));
    }
    /** @} */

    /** @name Request path (§4.1.3) @{ */

    /**
     * Enqueue a ready request for @p vm.
     *
     * The request is always accepted (SubQueue::enqueue contract):
     * `false` means deferred to the in-memory overflow subqueue, not
     * rejected, and the entry drains back into hardware on its own.
     * Callers must not retry on `false` — that would duplicate the
     * request.
     *
     * @return true if it landed in the hardware subqueue, false if
     *         it spilled to the in-memory overflow subqueue.
     */
    bool enqueue(std::uint32_t vm, std::uint64_t payload);

    /** Dequeue the oldest ready request of @p vm (FIFO). */
    std::optional<std::uint64_t> dequeue(std::uint32_t vm);

    void markBlocked(std::uint32_t vm, std::uint64_t payload);
    void markReady(std::uint32_t vm, std::uint64_t payload);
    void complete(std::uint32_t vm, std::uint64_t payload);
    void preempt(std::uint32_t vm, std::uint64_t payload);
    /** @} */

    /** @name Latency model @{ */

    /** Core-issued queue instruction (tree round trip + SRAM). */
    hh::sim::Cycles queueOpLatency() const;

    /** Controller-initiated core notification/interrupt (one way). */
    hh::sim::Cycles notifyLatency() const;

    /** Side-channel-safe harvest-region flush bound. */
    hh::sim::Cycles flushBound() const { return cfg_.flushBound; }

    const hh::noc::ControlTree &tree() const { return tree_; }
    /** @} */

    RequestQueue &rq() { return rq_; }
    const ControllerConfig &config() const { return cfg_; }

    /** Total weight of registered VMs. */
    unsigned totalWeight() const;

    /**
     * Register controller-level gauges ("<prefix>.free_chunks",
     * "<prefix>.vms"). Per-VM subqueue metrics are registered by the
     * owner of each QM (registration order is VM-lifetime dependent).
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix);

    /**
     * Save/restore the full controller: RQ allocation state, QM
     * identity slots (id / vm / primary / weight, in registration
     * order, including ghost-VM managers) and every QM's internals.
     * On load any existing QMs are torn down first and the saved set
     * is rebuilt verbatim, bypassing rebalanceChunks — the restored
     * RQ-Maps already name their chunks.
     */
    void serialize(hh::snap::Archive &ar);

  private:
    /**
     * Re-proportion RQ chunks to subqueues according to VM weights:
     * over-provisioned subqueues shed tail chunks, under-provisioned
     * ones take them.
     */
    void rebalanceChunks();

    struct Slot
    {
        std::unique_ptr<QueueManager> qm;
        unsigned weight = 0;
    };

    ControllerConfig cfg_;
    RequestQueue rq_;
    hh::noc::ControlTree tree_;
    std::vector<Slot> qms_;
    unsigned next_qm_id_ = 0;
};

} // namespace hh::core

#endif // HH_CORE_CONTROLLER_H
