/**
 * @file
 * Physical core model.
 *
 * A core owns its private cache/TLB hierarchy and executes work
 * items (Primary-VM request segments or Harvest-VM batch slices)
 * whose durations are computed by replaying the workload's memory
 * accesses through the hierarchy. Scheduling decisions live in the
 * server layer; the core records what it is doing and for which VM,
 * and integrates busy time for the utilization statistics (§6.7).
 */

#ifndef HH_CPU_CORE_H
#define HH_CPU_CORE_H

#include <cstdint>
#include <memory>

#include "cache/hierarchy.h"
#include "sim/time.h"
#include "snapshot/archive.h"
#include "stats/registry.h"
#include "stats/utilization.h"

namespace hh::cpu {

/** What a core is currently doing. */
enum class CoreState
{
    Idle,          //!< No work (and not lent out).
    RunningPrimary,//!< Executing its Primary VM's request.
    RunningHarvest,//!< On loan (or natively) running Harvest work.
};

/**
 * One physical core.
 */
class Core
{
  public:
    /**
     * @param id   Core id within the server (0..35).
     * @param cfg  Hierarchy configuration.
     * @param l3   The owning VM's L3 partition (re-bound on loans).
     * @param dram Server DRAM.
     */
    Core(unsigned id, const hh::cache::HierarchyConfig &cfg,
         hh::cache::SetAssocArray *l3, hh::mem::Dram *dram);

    unsigned id() const { return id_; }

    CoreState state() const { return state_; }
    bool idle() const { return state_ == CoreState::Idle; }
    bool onLoan() const { return state_ == CoreState::RunningHarvest; }

    /** VM whose (sub)queue this core is bound to (MyManager). */
    std::uint32_t boundVm() const { return bound_vm_; }
    void setBoundVm(std::uint32_t vm) { bound_vm_ = vm; }

    /**
     * Transition the core's activity state, updating the busy-time
     * integral at time @p now.
     */
    void setState(hh::sim::Cycles now, CoreState s);

    /** The private hierarchy. */
    hh::cache::CoreHierarchy &hierarchy() { return *hier_; }

    /** Busy-time integral for utilization statistics. */
    const hh::stats::UtilizationTracker &busy() const { return busy_; }
    hh::stats::UtilizationTracker &busy() { return busy_; }

    /** Id of the request currently executing (0 when none). */
    std::uint64_t currentRequest() const { return current_request_; }
    void setCurrentRequest(std::uint64_t id) { current_request_ = id; }

    /**
     * Register the hierarchy counters and the busy-time integral
     * under "<prefix>.l1d.hits", "<prefix>.busy.util", ...
     *
     * @param now Simulated-time source for the utilization gauge.
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix,
                         hh::stats::MetricRegistry::NowFn now);

    /**
     * Save/restore activity state, binding, current request, the
     * busy-time integral and the whole private hierarchy. The L3
     * pointer inside the hierarchy is re-bound by the server (loan
     * state decides which VM's partition the core sees).
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(state_);
        ar.io(bound_vm_);
        ar.io(current_request_);
        ar.io(busy_);
        ar.io(*hier_);
    }

  private:
    unsigned id_;
    std::unique_ptr<hh::cache::CoreHierarchy> hier_;
    CoreState state_ = CoreState::Idle;
    std::uint32_t bound_vm_ = 0;
    std::uint64_t current_request_ = 0;
    hh::stats::UtilizationTracker busy_;
};

} // namespace hh::cpu

#endif // HH_CPU_CORE_H
