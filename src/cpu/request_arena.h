/**
 * @file
 * Arena storage for in-flight requests.
 *
 * The scheduling layer used to keep requests in a
 * `std::unordered_map<id, Request>`, which scatters every Request
 * node across the heap and adds a hash + chase to each hot-path
 * lookup (executeSegment/onSegmentDone run once per segment). The
 * arena stores Request records in fixed-size chunks — contiguous
 * within a chunk, addresses stable forever — and resolves ids
 * through a dense id->slot table, so a lookup is two array indexes.
 * Ids are handed out by a monotonic counter starting at 1, which
 * keeps the table small and append-only.
 *
 * Determinism/serialization contract: `serialize()` emits exactly
 * the bytes `Archive::io(std::unordered_map<std::uint64_t,
 * Request>&)` would for the same logical contents (count, then
 * ascending-id key/value pairs), so checkpoints taken before and
 * after the container swap are interchangeable and byte-identical.
 */

#ifndef HH_CPU_REQUEST_ARENA_H
#define HH_CPU_REQUEST_ARENA_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/request.h"
#include "sim/log.h"
#include "snapshot/archive.h"

namespace hh::cpu {

/**
 * Chunked arena of Request records indexed by request id.
 */
class RequestArena
{
  public:
    /**
     * Allocate (or recycle) a slot for @p id and return the
     * freshly reset record. @pre id > 0 and not already live.
     */
    Request &
    create(std::uint64_t id)
    {
        if (id == 0)
            hh::sim::panic("RequestArena: id 0 is reserved");
        if (id >= slot_of_.size())
            slot_of_.resize(static_cast<std::size_t>(id) + 1, -1);
        if (slot_of_[id] >= 0)
            hh::sim::panic("RequestArena: duplicate request ", id);

        std::uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            if (next_fresh_ ==
                static_cast<std::uint32_t>(chunks_.size()) *
                    kChunkSlots)
                chunks_.push_back(std::make_unique<Chunk>());
            slot = next_fresh_++;
        }
        slot_of_[id] = static_cast<std::int32_t>(slot);
        ++live_;
        Request &r = slotRef(slot);
        r = Request{};
        return r;
    }

    /** Live record for @p id, or nullptr. */
    Request *
    find(std::uint64_t id) noexcept
    {
        if (id >= slot_of_.size() || slot_of_[id] < 0)
            return nullptr;
        return &slotRef(static_cast<std::uint32_t>(slot_of_[id]));
    }

    const Request *
    find(std::uint64_t id) const noexcept
    {
        return const_cast<RequestArena *>(this)->find(id);
    }

    /** Live record for @p id; panics if absent. */
    Request &
    at(std::uint64_t id)
    {
        Request *r = find(id);
        if (!r)
            hh::sim::panic("RequestArena: unknown request ", id);
        return *r;
    }

    /** Release @p id's slot. @pre id is live. */
    void
    erase(std::uint64_t id)
    {
        if (id >= slot_of_.size() || slot_of_[id] < 0)
            hh::sim::panic("RequestArena: erasing unknown request ",
                           id);
        free_.push_back(static_cast<std::uint32_t>(slot_of_[id]));
        slot_of_[id] = -1;
        --live_;
    }

    std::size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }

    /**
     * Visit every live request in ascending id order (deterministic,
     * unlike the unordered_map this replaced). @p f receives
     * (id, Request&). Must not create or erase during the sweep.
     */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::uint64_t id = 1; id < slot_of_.size(); ++id) {
            if (slot_of_[id] < 0)
                continue;
            f(id, const_cast<RequestArena *>(this)->slotRef(
                      static_cast<std::uint32_t>(slot_of_[id])));
        }
    }

    /**
     * Save/restore. Byte-identical to the Archive's
     * unordered_map<uint64_t, Request> encoding; see file comment.
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        if (ar.saving()) {
            std::uint64_t n = live_;
            ar.io(n);
            forEach([&](std::uint64_t id, Request &r) {
                std::uint64_t key = id;
                ar.io(key);
                r.serialize(ar);
            });
        } else {
            chunks_.clear();
            free_.clear();
            slot_of_.clear();
            live_ = 0;
            next_fresh_ = 0;
            std::uint64_t n = 0;
            ar.io(n);
            for (std::uint64_t i = 0; i < n && ar.ok(); ++i) {
                std::uint64_t key = 0;
                ar.io(key);
                create(key).serialize(ar);
            }
        }
    }

  private:
    static constexpr std::uint32_t kChunkSlots = 256;
    using Chunk = std::array<Request, kChunkSlots>;

    Request &
    slotRef(std::uint32_t slot)
    {
        return (*chunks_[slot / kChunkSlots])[slot % kChunkSlots];
    }

    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::vector<std::uint32_t> free_; //!< Recycled slots (LIFO).
    /** id -> slot; -1 when not live. Grows with the id counter. */
    std::vector<std::int32_t> slot_of_;
    std::uint32_t next_fresh_ = 0; //!< First never-used slot.
    std::size_t live_ = 0;
};

} // namespace hh::cpu

#endif // HH_CPU_REQUEST_ARENA_H
