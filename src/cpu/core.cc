#include "cpu/core.h"

namespace hh::cpu {

Core::Core(unsigned id, const hh::cache::HierarchyConfig &cfg,
           hh::cache::SetAssocArray *l3, hh::mem::Dram *dram)
    : id_(id),
      hier_(std::make_unique<hh::cache::CoreHierarchy>(cfg, l3, dram))
{
}

void
Core::setState(hh::sim::Cycles now, CoreState s)
{
    busy_.setBusy(now, s != CoreState::Idle);
    state_ = s;
}

void
Core::registerMetrics(hh::stats::MetricRegistry &reg,
                      const std::string &prefix,
                      hh::stats::MetricRegistry::NowFn now)
{
    hier_->registerMetrics(reg, prefix);
    reg.registerUtilization(prefix + ".busy", busy_, std::move(now));
}

} // namespace hh::cpu
