/**
 * @file
 * Microservice request state as tracked by the scheduling layer.
 */

#ifndef HH_CPU_REQUEST_H
#define HH_CPU_REQUEST_H

#include <cstdint>

#include "sim/time.h"
#include "snapshot/archive.h"
#include "workload/service.h"

namespace hh::cpu {

/** Lifecycle of a request (§4.1.3: ready / running / blocked). */
enum class RequestState
{
    Queued,   //!< In a request queue, ready to run.
    Running,  //!< Executing on a core.
    Blocked,  //!< Waiting on a synchronous backend RPC.
    Done,     //!< Completed; latency recorded.
};

/**
 * Where a request's end-to-end latency went (Fig 6's breakdown).
 */
struct LatencyBreakdown
{
    hh::sim::Cycles queueing = 0;   //!< Arrival -> first dispatch.
    hh::sim::Cycles reassign = 0;   //!< Hypervisor/QM core moves.
    hh::sim::Cycles flush = 0;      //!< Cache/TLB flush waits.
    hh::sim::Cycles execution = 0;  //!< Compute + memory stalls.
    hh::sim::Cycles io = 0;         //!< Blocked on backends.

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(queueing);
        ar.io(reassign);
        ar.io(flush);
        ar.io(execution);
        ar.io(io);
    }
};

/**
 * One in-flight microservice invocation.
 */
struct Request
{
    std::uint64_t id = 0;
    std::uint32_t vm = 0;              //!< Owning Primary VM id.
    std::uint32_t serviceIndex = 0;    //!< Index into the service list.
    RequestState state = RequestState::Queued;

    hh::workload::InvocationPlan plan;
    std::uint32_t nextSegment = 0;     //!< Segment to execute next.

    hh::sim::Cycles arrival = 0;
    hh::sim::Cycles readySince = 0;    //!< Last time it became ready.
    hh::sim::Cycles completion = 0;

    LatencyBreakdown breakdown;

    /**
     * Residual access weight under sampled replay, in accesses.
     * Each segment replays round((accesses + carry) / sampling)
     * sampled accesses and banks the remainder here, so the
     * request's replayed total converges to accesses / sampling
     * instead of losing up to sampling-1 accesses per segment to
     * truncation. Range (-sampling/2, sampling/2].
     */
    std::int32_t samplingCarry = 0;

    /** True when every segment has executed. */
    bool
    finished() const
    {
        return nextSegment >= plan.segments.size();
    }

    /** End-to-end latency; valid once Done. */
    hh::sim::Cycles
    latency() const
    {
        return completion - arrival;
    }

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(id);
        ar.io(vm);
        ar.io(serviceIndex);
        ar.io(state);
        ar.io(plan);
        ar.io(nextSegment);
        ar.io(arrival);
        ar.io(readySince);
        ar.io(completion);
        ar.io(breakdown);
        ar.io(samplingCarry);
    }
};

} // namespace hh::cpu

#endif // HH_CPU_REQUEST_H
