#include "cluster/server.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "cluster/checkpoint.h"
#include "sim/log.h"
#include "sim/prof.h"

namespace hh::cluster {

using hh::sim::Cycles;
using hh::snap::SnapTag;
using hh::snap::tag;

namespace {

/** L3 partition geometry for a VM (CAT-style per-VM partition). */
hh::cache::Geometry
l3PartitionGeometry(double mbPerCore, unsigned vmCores)
{
    const double bytes = mbPerCore * 1024.0 * 1024.0 * vmCores;
    const auto sets = static_cast<std::uint32_t>(std::max(
        1.0, bytes / (hh::cache::kLineBytes * 16.0)));
    return hh::cache::Geometry{sets, 16, hh::cache::kL3PerCore.latency};
}

} // namespace

double
ServerResults::avgP99Ms() const
{
    if (services.empty())
        return 0;
    double s = 0;
    for (const auto &r : services)
        s += r.p99Ms;
    return s / static_cast<double>(services.size());
}

double
ServerResults::avgP50Ms() const
{
    if (services.empty())
        return 0;
    double s = 0;
    for (const auto &r : services)
        s += r.p50Ms;
    return s / static_cast<double>(services.size());
}

ServerSim::ServerSim(const SystemConfig &cfg, const std::string &batchApp,
                     std::uint64_t seed)
    : ServerSim(cfg, batchApp, GraphServerPlan{}, seed)
{}

ServerSim::ServerSim(const SystemConfig &cfg, const std::string &batchApp,
                     const GraphServerPlan &plan, std::uint64_t seed)
    : cfg_(cfg), seed_(seed ? seed : cfg.seed), dram_(),
      mesh_(6, 6), fabric_(), rng_(seed_, 0x5E8FULL), graph_plan_(plan)
{
    nic_ = std::make_unique<hh::net::Nic>(sim_);
    ctrl_ = std::make_unique<hh::core::HardHarvestController>(
        hh::core::ControllerConfig{}, cfg_.cores);
    ctxmem_ = std::make_unique<hh::core::RequestContextMemory>(mesh_);
    hyp_ = std::make_unique<hh::vm::Hypervisor>(cfg_.swCosts, seed_);

    buildVms(batchApp);
    buildCores();

    // Harvest policy (PR 8): constructed eagerly so snapshot restore
    // always finds its re-arm target; "legacy" keeps the pre-policy
    // inlined knob reads (differential testing).
    std::string policy_err;
    policy_ = hh::policy::makeHarvestPolicy(policyConfig(),
                                            &policy_err);
    if (!policy_err.empty())
        hh::sim::fatal("ServerSim: ", policy_err);
    policy_applied_fraction_.assign(vms_.size(),
                                    cfg_.harvestWayFraction);

    // Cache-capacity leasing (src/lease/): constructed only when the
    // second harvest dimension is on, so disabled runs carry no lease
    // state and their snapshots stay layout-compatible.
    if (cfg_.cacheLendEnabled)
        lease_mgr_ = std::make_unique<hh::lease::CacheLeaseManager>(
            static_cast<unsigned>(vms_.size()), cfg_.cacheLendTerm);

    if (cfg_.traceEnabled)
        tracer_ = std::make_unique<hh::trace::Tracer>(
            cfg_.traceCapacity);
    registerMetrics();

    // Invariant auditing (config flag or HH_AUDIT=1). Mirrors the
    // tracing gating: disabled means no Auditor exists and the
    // simulator's audit hook stays null.
    const char *audit_env = std::getenv("HH_AUDIT");
    if (cfg_.auditEnabled ||
        (audit_env && *audit_env && *audit_env != '0')) {
        auditor_ = std::make_unique<hh::check::Auditor>();
        auditor_->setPanicOnViolation(cfg_.auditPanic);
        registerInvariants();
        auditor_->registerMetrics(registry_, "audit");
        sim_.setAuditHook(
            [this](Cycles t) {
                auditor_->audit(t);
                if (cfg_.auditStopOnViolation &&
                    auditor_->violationCount() > 0)
                    sim_.requestStop();
            },
            std::max<std::uint64_t>(1, cfg_.auditPeriod));
    }
    if (cfg_.faults.enabled) {
        injector_ = std::make_unique<hh::check::FaultInjector>(
            sim_, seed_, cfg_.faults);
        registerFaultActions();
        injector_->registerMetrics(registry_, "faults");
    }

    nic_->setHandler([this](const hh::net::Packet &p) { onPacket(p); });
    nic_->setLlcLookup([this](std::uint32_t vm)
                           -> hh::cache::SetAssocArray * {
        return vm < vms_.size() ? vms_[vm].l3.get() : nullptr;
    });
}

ServerSim::~ServerSim() = default;

void
ServerSim::buildVms(const std::string &batchApp)
{
    const auto layout = hh::vm::defaultServerLayout(
        cfg_.cores, cfg_.primaryVms, cfg_.coresPerPrimary);
    const auto services = hh::workload::deathStarBenchServices();
    harvest_vm_ = cfg_.primaryVms;

    pending_reclaims_.assign(layout.size(), 0);
    last_reclaim_at_.assign(layout.size(), 0);
    ewma_block_cycles_.assign(layout.size(), 0.0);
    vm_lent_cycles_.assign(layout.size(), 0);
    vm_reclaims_.assign(layout.size(), 0);
    vm_reclaim_cycles_.assign(layout.size(), 0);
    for (const auto &desc : layout) {
        VmCtx v;
        v.desc = desc;
        v.latencies = hh::stats::LatencyRecorder(
            "vm" + std::to_string(desc.id) + ".latency_ms");
        v.l3 = std::make_unique<hh::cache::SetAssocArray>(
            l3PartitionGeometry(cfg_.llcMbPerCore,
                                static_cast<unsigned>(
                                    desc.cores.size())),
            hh::cache::makePolicy(hh::cache::ReplKind::LRU));
        if (desc.isPrimary() && graph_plan_.enabled) {
            // Graph mode: the placement plan decides which slots host
            // a tier service and which of those generate open-loop
            // arrivals (front tier only). Unused slots stay idle —
            // their cores are harvestable capacity.
            const GraphVmPlan gp =
                desc.id < graph_plan_.vms.size()
                    ? graph_plan_.vms[desc.id]
                    : GraphVmPlan{};
            if (gp.used) {
                const auto &spec =
                    hh::workload::serviceByName(gp.service);
                v.service =
                    std::make_unique<hh::workload::ServiceWorkload>(
                        spec, desc.asid, seed_);
                if (gp.front) {
                    const double rate =
                        spec.rpsPerCore *
                        static_cast<double>(desc.cores.size()) *
                        cfg_.loadScale * gp.rateScale;
                    v.loadgen =
                        std::make_unique<hh::workload::LoadGenerator>(
                            rate, cfg_.burst, seed_, desc.id);
                    v.arrivalsRemaining = cfg_.requestsPerVm;
                    v.warmupSkip = static_cast<unsigned>(
                        cfg_.warmupFraction *
                        static_cast<double>(cfg_.requestsPerVm));
                }
            }
        } else if (desc.isPrimary()) {
            const auto &spec = services[desc.id % services.size()];
            v.service = std::make_unique<hh::workload::ServiceWorkload>(
                spec, desc.asid, seed_);
            const double rate = spec.rpsPerCore *
                                static_cast<double>(desc.cores.size()) *
                                cfg_.loadScale;
            v.loadgen = std::make_unique<hh::workload::LoadGenerator>(
                rate, cfg_.burst, seed_, desc.id);
            v.arrivalsRemaining = cfg_.requestsPerVm;
            v.warmupSkip = static_cast<unsigned>(
                cfg_.warmupFraction *
                static_cast<double>(cfg_.requestsPerVm));
        }
        ctrl_->registerVm(desc.id, desc.isPrimary(),
                          static_cast<unsigned>(desc.cores.size()));
        auto *qm = ctrl_->qmFor(desc.id);
        qm->harvestMask().setFraction(cfg_.harvestWayFraction);
        for (unsigned c : desc.cores)
            qm->bindCore(c);
        vms_.push_back(std::move(v));
    }

    batch_ = std::make_unique<hh::workload::BatchWorkload>(
        hh::workload::batchByName(batchApp),
        vms_[harvest_vm_].desc.asid, seed_);
}

void
ServerSim::buildCores()
{
    hh::cache::HierarchyConfig hcfg;
    hcfg.repl = cfg_.repl;
    hcfg.candidateFraction =
        cfg_.repl == hh::cache::ReplKind::HardHarvest
            ? cfg_.candidateFraction
            : 1.0;
    hcfg.harvestWayFraction = cfg_.harvestWayFraction;
    hcfg.partitioning = cfg_.partitioning;
    hcfg.waysFraction = cfg_.waysFraction;
    hcfg.infinite = cfg_.infiniteCaches;
    hcfg.accessWeight = std::max(1u, cfg_.accessSampling);

    core_ctx_.assign(cfg_.cores, CoreCtx{});
    core_loan_start_.assign(cfg_.cores, kNotLent);
    for (const auto &v : vms_) {
        for (unsigned c : v.desc.cores) {
            while (cores_.size() <= c)
                cores_.push_back(nullptr);
        }
    }
    cores_.resize(cfg_.cores);
    for (const auto &v : vms_) {
        for (unsigned c : v.desc.cores) {
            cores_[c] = std::make_unique<hh::cpu::Core>(
                c, hcfg, v.l3.get(), &dram_);
            cores_[c]->setBoundVm(v.desc.id);
        }
    }
}

void
ServerSim::registerMetrics()
{
    // Hierarchical dotted names; the server prefix ("server0.") is
    // added by the exporter/cluster layer so names can be aggregated
    // by suffix across servers.
    const auto now = [this] { return sim_.now(); };
    nic_->registerMetrics(registry_, "nic");
    dram_.registerMetrics(registry_, "dram", now);
    hyp_->registerMetrics(registry_, "hv");
    ctrl_->registerMetrics(registry_, "ctrl");
    registry_.registerCounter("server.loans", loans_);
    registry_.registerCounter("server.reclaims", reclaims_);
    registry_.registerCounter("server.batch_tasks", batch_tasks_done_);
    for (auto &v : vms_) {
        const std::string p = "vm" + std::to_string(v.desc.id);
        ctrl_->qmFor(v.desc.id)->registerMetrics(registry_, p + ".qm");
        v.l3->registerMetrics(registry_, p + ".l3");
        if (v.desc.isPrimary())
            registry_.registerLatency(p + ".latency_ms", v.latencies);
    }
    for (const auto &core : cores_) {
        core->registerMetrics(
            registry_, "core" + std::to_string(core->id()), now);
    }
}

void
ServerSim::registerInvariants()
{
    using hh::sim::detail::concat;
    auto &aud = *auditor_;

    // Core ownership and scheduling-phase consistency: every core is
    // bound to exactly one QM (its VM's), the core's loan flag agrees
    // with the controller's, and each phase implies a coherent
    // (runningRequest, slice) pair.
    aud.addInvariant("core", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        for (unsigned c = 0; c < cores_.size(); ++c) {
            const CoreCtx &ctx = core_ctx_[c];
            const std::uint32_t bound = cores_[c]->boundVm();
            unsigned owners = 0;
            bool owner_is_vm = false;
            bool qm_loan = false;
            ctrl_->forEachQm([&](const hh::core::QueueManager &qm) {
                if (!qm.isBound(c))
                    return;
                ++owners;
                if (qm.vm() == bound) {
                    owner_is_vm = true;
                    qm_loan = qm.isOnLoan(c);
                }
            });
            if (owners != 1 || !owner_is_vm)
                return concat("core ", c, " bound by ", owners,
                              " QM(s), expected exactly one (vm ",
                              bound, ")");
            if (ctx.onLoan != qm_loan)
                return concat("core ", c, " onLoan=", ctx.onLoan,
                              " disagrees with its QM's loan state ",
                              qm_loan);
            switch (ctx.phase) {
            case Phase::Idle:
            case Phase::Transition:
                if (ctx.runningRequest != 0)
                    return concat("core ", c, " is ",
                                  ctx.phase == Phase::Idle
                                      ? "Idle"
                                      : "in Transition",
                                  " but still claims request ",
                                  ctx.runningRequest);
                if (ctx.slice)
                    return concat("core ", c,
                                  " holds a harvest slice outside "
                                  "RunHarvest");
                break;
            case Phase::RunPrimary: {
                if (ctx.runningRequest == 0)
                    return concat("core ", c,
                                  " RunPrimary without a request");
                if (ctx.slice)
                    return concat("core ", c,
                                  " RunPrimary with a harvest slice");
                const auto *req = requests_.find(ctx.runningRequest);
                if (!req)
                    return concat("core ", c, " runs unknown request ",
                                  ctx.runningRequest);
                if (req->state != hh::cpu::RequestState::Running)
                    return concat("request ", ctx.runningRequest,
                                  " on core ", c,
                                  " is not in Running state");
                const auto *qm = ctrl_->qmFor(req->vm);
                if (!qm || qm->queue().runningEntries().count(
                               ctx.runningRequest) == 0)
                    return concat("request ", ctx.runningRequest,
                                  " on core ", c,
                                  " missing from its subqueue's "
                                  "running set");
                break;
            }
            case Phase::RunHarvest:
                if (!ctx.slice)
                    return concat("core ", c,
                                  " RunHarvest without a slice");
                if (ctx.runningRequest != 0)
                    return concat("core ", c,
                                  " RunHarvest while claiming "
                                  "request ",
                                  ctx.runningRequest);
                break;
            }
        }
        return std::nullopt;
    });

    // Request-state cross-check: every Running request executes on
    // exactly one core (the PR-1 race orphaned requests here), and
    // every payload a subqueue holds maps back to a live request in
    // the matching state.
    aud.addInvariant("request", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        std::unordered_map<std::uint64_t, unsigned> claims;
        for (const CoreCtx &ctx : core_ctx_) {
            if (ctx.phase == Phase::RunPrimary &&
                ctx.runningRequest != 0)
                ++claims[ctx.runningRequest];
        }
        std::optional<std::string> req_err;
        requests_.forEach([&](std::uint64_t id,
                              const hh::cpu::Request &req) {
            if (req_err)
                return;
            const auto it = claims.find(id);
            const unsigned n = it == claims.end() ? 0 : it->second;
            switch (req.state) {
            case hh::cpu::RequestState::Running:
                if (n != 1)
                    req_err = concat(
                        "request ", id, " (vm ", req.vm,
                        ") is Running on ", n,
                        " cores (orphaned or duplicated)");
                break;
            case hh::cpu::RequestState::Queued:
            case hh::cpu::RequestState::Blocked:
                if (n != 0)
                    req_err = concat(
                        "request ", id, " (vm ", req.vm,
                        ") claimed by a core while ",
                        req.state == hh::cpu::RequestState::Queued
                            ? "Queued"
                            : "Blocked");
                break;
            case hh::cpu::RequestState::Done:
                req_err = concat("request ", id,
                                 " lingers in Done state");
                break;
            }
        });
        if (req_err)
            return req_err;
        std::optional<std::string> err;
        ctrl_->forEachQm([&](const hh::core::QueueManager &qm) {
            if (err)
                return;
            const auto &q = qm.queue();
            const auto check = [&](std::uint64_t id,
                                   hh::cpu::RequestState want,
                                   const char *where) {
                const auto *req = requests_.find(id);
                if (!req)
                    err = concat("vm ", qm.vm(), " ", where,
                                 " holds unknown request ", id);
                else if (req->vm != qm.vm())
                    err = concat("request ", id, " of vm ", req->vm,
                                 " found in vm ", qm.vm(),
                                 "'s subqueue");
                else if (req->state != want)
                    err = concat("request ", id, " in ", where,
                                 " of vm ", qm.vm(),
                                 " has inconsistent state");
            };
            for (const auto id : q.readyEntries())
                check(id, hh::cpu::RequestState::Queued, "ready");
            for (const auto id : q.overflowEntries())
                check(id, hh::cpu::RequestState::Queued, "overflow");
            for (const auto id : q.runningEntries())
                check(id, hh::cpu::RequestState::Running, "running");
            for (const auto id : q.blockedEntries())
                check(id, hh::cpu::RequestState::Blocked, "blocked");
        });
        return err;
    });

    // RQ chunk accounting: every allocated chunk is mapped by exactly
    // one subqueue and vice versa; no payload sits in two containers
    // of a subqueue; the overflow queue only backs a full subqueue
    // (the FIFO guarantee behind SubQueue::enqueue's contract).
    aud.addInvariant("rq", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        const auto &rq = ctrl_->rq();
        std::vector<unsigned> owners(rq.numChunks(), 0);
        std::size_t mapped = 0;
        std::optional<std::string> err;
        ctrl_->forEachQm([&](const hh::core::QueueManager &qm) {
            if (err)
                return;
            const auto &q = qm.queue();
            for (const unsigned chunk : q.rqMap()) {
                if (chunk >= rq.numChunks()) {
                    err = concat("vm ", qm.vm(),
                                 " maps nonexistent chunk ", chunk);
                    return;
                }
                if (++owners[chunk] > 1) {
                    err = concat("chunk ", chunk,
                                 " mapped by more than one subqueue");
                    return;
                }
                if (!rq.isAllocated(chunk)) {
                    err = concat("chunk ", chunk, " mapped by vm ",
                                 qm.vm(), " but marked free");
                    return;
                }
                ++mapped;
            }
            std::unordered_set<std::uint64_t> seen;
            const auto dup = [&](std::uint64_t id) {
                return !seen.insert(id).second;
            };
            for (const auto id : q.readyEntries())
                if (dup(id)) {
                    err = concat("request ", id,
                                 " present twice in vm ", qm.vm(),
                                 "'s subqueue");
                    return;
                }
            for (const auto id : q.runningEntries())
                if (dup(id)) {
                    err = concat("request ", id,
                                 " in two containers of vm ",
                                 qm.vm(), "'s subqueue");
                    return;
                }
            for (const auto id : q.blockedEntries())
                if (dup(id)) {
                    err = concat("request ", id,
                                 " in two containers of vm ",
                                 qm.vm(), "'s subqueue");
                    return;
                }
            for (const auto id : q.overflowEntries())
                if (dup(id)) {
                    err = concat("request ", id,
                                 " both in hardware and overflow of "
                                 "vm ",
                                 qm.vm());
                    return;
                }
            if (!q.overflowEntries().empty() &&
                q.occupancy() < q.capacity()) {
                err = concat("vm ", qm.vm(),
                             " has overflow entries while hardware "
                             "slots are free");
                return;
            }
        });
        if (err)
            return err;
        if (mapped != rq.allocatedChunks() ||
            mapped + rq.freeChunks() != rq.numChunks())
            return concat("chunk accounting broken: ", mapped,
                          " mapped, ", rq.allocatedChunks(),
                          " allocated, ", rq.freeChunks(),
                          " free of ", rq.numChunks());
        return std::nullopt;
    });

    // Cache way partitioning: per structure, the harvest region is a
    // subset of the way set, and under partitioning both the harvest
    // and non-harvest regions are non-empty (they must cover the
    // allowed mask between them).
    aud.addInvariant("cache", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        for (unsigned c = 0; c < cores_.size(); ++c) {
            auto &h = cores_[c]->hierarchy();
            hh::cache::SetAssocArray *arrs[] = {
                &h.l1d(), &h.l1i(), &h.l2(), &h.l1tlb(), &h.l2tlb()};
            const char *names[] = {"l1d", "l1i", "l2", "l1tlb",
                                   "l2tlb"};
            for (unsigned i = 0; i < 5; ++i) {
                const auto hw = arrs[i]->harvestWays();
                const auto all = arrs[i]->allWays();
                if (hw & ~all)
                    return concat("core ", c, " ", names[i],
                                  " harvest region escapes the way "
                                  "set");
                // Single-way structures (extreme waysFraction) are
                // legitimately left unpartitioned.
                const bool partitionable = (all & (all - 1)) != 0;
                if (cfg_.partitioning && partitionable && hw == 0)
                    return concat("core ", c, " ", names[i],
                                  " has an empty harvest region");
                if (cfg_.partitioning && partitionable &&
                    (all & ~hw) == 0)
                    return concat("core ", c, " ", names[i],
                                  " harvest region covers every way");
            }
        }
        return std::nullopt;
    });

    // Per-VM HarvestMask registers: masks fit their structures and
    // actually partition when partitioning is on.
    aud.addInvariant("qm", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        std::optional<std::string> err;
        ctrl_->forEachQm([&](const hh::core::QueueManager &qm) {
            if (err)
                return;
            const auto &m = qm.harvestMask();
            for (unsigned s = 0; s < hh::core::kNumMaskedStructs;
                 ++s) {
                const auto ms =
                    static_cast<hh::core::MaskedStruct>(s);
                const auto mask = m.mask(ms);
                const auto full = static_cast<hh::cache::WayMask>(
                    (1u << m.wayCount(ms)) - 1);
                if (mask & ~full) {
                    err = concat("vm ", qm.vm(),
                                 " harvest mask wider than "
                                 "structure ",
                                 s);
                    return;
                }
                if (cfg_.partitioning &&
                    (mask == 0 || mask == full)) {
                    err = concat("vm ", qm.vm(),
                                 " harvest mask for structure ", s,
                                 " does not partition");
                    return;
                }
            }
        });
        return err;
    });

    // Harvesting bookkeeping: pending reclaims equal the cores in a
    // reclaim transition, anchors balance, and reclaims never exceed
    // loans.
    aud.addInvariant("hv", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        for (const auto &v : vms_) {
            if (!v.desc.isPrimary())
                continue;
            unsigned restoring = 0;
            for (const unsigned c : v.desc.cores) {
                if (core_ctx_[c].phase == Phase::Transition &&
                    !core_ctx_[c].onLoan)
                    ++restoring;
            }
            if (pending_reclaims_[v.desc.id] != restoring)
                return concat("vm ", v.desc.id, " counts ",
                              pending_reclaims_[v.desc.id],
                              " pending reclaims but ", restoring,
                              " cores are in a reclaim transition");
        }
        if (reclaims_.value() > loans_.value())
            return concat("more reclaims (", reclaims_.value(),
                          ") than loans (", loans_.value(), ")");
        std::size_t anchored = 0;
        for (const CoreCtx &ctx : core_ctx_)
            anchored += ctx.anchoredBlocked;
        if (anchored != anchor_.size())
            return concat("anchor accounting broken: ",
                          anchor_.size(), " anchors vs ", anchored,
                          " anchored-blocked marks");
        for (const auto &[id, core] : anchor_) {
            const auto *req = requests_.find(id);
            if (!req)
                return concat("anchored request ", id,
                              " does not exist");
            if (req->state != hh::cpu::RequestState::Blocked &&
                req->state != hh::cpu::RequestState::Queued)
                return concat("anchored request ", id,
                              " neither blocked nor awaiting "
                              "redispatch");
        }
        return std::nullopt;
    });

    // Request Context Memory is leak-free: with hardware context
    // switching, exactly the anchored (preempted-while-blocked)
    // requests have a saved context.
    aud.addInvariant("ctxmem", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        if (!cfg_.hwCtxtSwitch)
            return std::nullopt;
        if (ctxmem_->occupancy() != anchor_.size())
            return concat("context memory holds ",
                          ctxmem_->occupancy(), " contexts but ",
                          anchor_.size(), " requests are anchored");
        for (const auto &[id, core] : anchor_) {
            if (!ctxmem_->contains(id))
                return concat("anchored request ", id,
                              " has no saved context");
        }
        if (done_ && ctxmem_->occupancy() != 0)
            return concat("run complete with ", ctxmem_->occupancy(),
                          " leaked context slots");
        return std::nullopt;
    });

    // Event-queue sanity: timestamps never went backwards.
    aud.addInvariant("sim", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        if (sim_.monotonicViolations() != 0)
            return concat(sim_.monotonicViolations(),
                          " event pops went backwards in time");
        return std::nullopt;
    });

    // End-state: once every request completed, nothing may linger in
    // the request map, the anchors, or any subqueue.
    aud.addInvariant("final", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        if (!done_)
            return std::nullopt;
        if (!requests_.empty())
            return concat(requests_.size(),
                          " requests alive after completion");
        if (!anchor_.empty())
            return concat(anchor_.size(),
                          " anchors alive after completion");
        std::optional<std::string> err;
        ctrl_->forEachQm([&](const hh::core::QueueManager &qm) {
            if (err)
                return;
            if (qm.queue().occupancy() != 0 ||
                qm.queue().overflowSize() != 0)
                err = concat("vm ", qm.vm(),
                             " subqueue not empty after completion");
        });
        return err;
    });

    // Service-graph tree consistency: delegate to the engine, which
    // cross-checks its nodes against this server's request states
    // (registered unconditionally — the hook null-check keeps classic
    // runs and the window between construction and setGraphHooks()
    // free of it).
    aud.addInvariant("svc", [this]() -> std::optional<std::string> {
        if (!graph_hooks_)
            return std::nullopt;
        return graph_hooks_->auditInvariant();
    });

    // Cache-lease consistency: every lender L3's harvest mask agrees
    // with its lease slot, and no borrower (batch-ASID) line survives
    // in ways whose lease ended — "no harvested line outlives its
    // lease". Registered unconditionally (null-check) so invariant
    // order is config-independent.
    aud.addInvariant("lease", [this]() -> std::optional<std::string> {
        using hh::sim::detail::concat;
        if (!lease_mgr_)
            return std::nullopt;
        const std::uint32_t batchAsid = vms_[harvest_vm_].desc.asid;
        for (const auto &v : vms_) {
            if (!v.desc.isPrimary() || !v.l3)
                continue;
            const auto &l = lease_mgr_->lease(v.desc.id);
            const hh::cache::WayMask held =
                l.active ? l.l3Ways : hh::cache::WayMask{0};
            if (v.l3->harvestWays() != held)
                return concat("vm ", v.desc.id,
                              " L3 harvest mask disagrees with its "
                              "lease slot");
            std::optional<std::string> err;
            v.l3->forEachValidInWays(
                l.everLeased & ~held,
                [&](std::uint32_t, unsigned way, hh::cache::Addr t) {
                    if (err)
                        return;
                    if (static_cast<std::uint32_t>(t >> 48) ==
                        batchAsid)
                        err = concat("vm ", v.desc.id, " L3 way ", way,
                                     " holds a batch line after its "
                                     "lease ended");
                });
            if (err)
                return err;
        }
        return std::nullopt;
    });
}

void
ServerSim::registerFaultActions()
{
    auto &inj = *injector_;

    // Lend storm: lend most idle Primary cores at once, deliberately
    // bypassing the emergency-buffer and anchored-request guards the
    // normal path honours (they are performance heuristics, not
    // correctness requirements).
    inj.addAction("lend_storm", [this](hh::sim::Rng &rng) {
        if (done_ || !cfg_.harvesting)
            return;
        for (const auto &v : vms_) {
            if (!v.desc.isPrimary())
                continue;
            for (const unsigned c : v.desc.cores) {
                const CoreCtx &ctx = core_ctx_[c];
                if (ctx.phase == Phase::Idle && !ctx.onLoan &&
                    rng.bernoulli(0.75))
                    lendCore(c);
            }
        }
    });

    // Reclaim storm: interrupt-reclaim a random subset of loaned
    // cores, whatever they are doing.
    inj.addAction("reclaim_storm", [this](hh::sim::Rng &rng) {
        if (done_ || !cfg_.harvesting)
            return;
        for (const auto &v : vms_) {
            if (!v.desc.isPrimary())
                continue;
            for (const unsigned c : v.desc.cores) {
                if (core_ctx_[c].onLoan && rng.bernoulli(0.5))
                    reclaimCore(c, v.desc.id);
            }
        }
    });

    // Reclaim-during-flush: reclaim exactly the cores still paying
    // their lend-transition costs — the window of the seed's
    // lend/reclaim race.
    inj.addAction("reclaim_during_flush", [this](hh::sim::Rng &) {
        if (done_ || !cfg_.harvesting)
            return;
        for (const auto &v : vms_) {
            if (!v.desc.isPrimary())
                continue;
            for (const unsigned c : v.desc.cores) {
                const CoreCtx &ctx = core_ctx_[c];
                if (ctx.onLoan && ctx.phase == Phase::Transition)
                    reclaimCore(c, v.desc.id);
            }
        }
    });

    // Bursty arrivals: pull a few future arrivals forward through
    // the normal NIC path. Shares the per-VM arrival budget, so the
    // total request count is unchanged.
    inj.addAction("burst", [this](hh::sim::Rng &rng) {
        if (done_)
            return;
        const std::uint64_t extra = 1 + rng.uniformInt(4);
        for (std::uint64_t i = 0; i < extra; ++i) {
            std::vector<std::uint32_t> cands;
            for (const auto &v : vms_) {
                if (v.desc.isPrimary() && v.arrivalsRemaining > 0)
                    cands.push_back(v.desc.id);
            }
            if (cands.empty())
                return;
            onArrival(cands[rng.uniformInt(cands.size())]);
        }
    });

    // Chunk-exhaustion pressure: register/remove ghost VMs so the
    // controller keeps rebalancing RQ chunks under load, forcing
    // subqueue tails to spill to overflow and drain back.
    inj.addAction("chunk_pressure", [this](hh::sim::Rng &rng) {
        if (done_)
            return;
        const bool remove = !ghost_vms_.empty() &&
                            (rng.bernoulli(0.5) ||
                             ctrl_->numVms() >=
                                 ctrl_->config().maxQms);
        if (remove) {
            const std::uint32_t id = ghost_vms_.back();
            ghost_vms_.pop_back();
            ctrl_->removeVm(id);
            return;
        }
        if (ctrl_->numVms() >= ctrl_->config().maxQms)
            return;
        const std::uint32_t id = 1000 + next_ghost_++;
        auto &qm = ctrl_->registerVm(
            id, true,
            1 + static_cast<unsigned>(rng.uniformInt(6)));
        qm.harvestMask().setFraction(cfg_.harvestWayFraction);
        ghost_vms_.push_back(id);
    });

    // Delayed completion: stretch one in-flight Primary segment by
    // rescheduling its completion event further out.
    inj.addAction("delayed_completion", [this](hh::sim::Rng &rng) {
        if (done_)
            return;
        std::vector<unsigned> cands;
        for (unsigned c = 0; c < core_ctx_.size(); ++c) {
            const CoreCtx &ctx = core_ctx_[c];
            if (ctx.phase == Phase::RunPrimary &&
                ctx.runningRequest != 0 &&
                ctx.pendingEvent != hh::sim::kInvalidEventId)
                cands.push_back(c);
        }
        if (cands.empty())
            return;
        const unsigned core = cands[rng.uniformInt(cands.size())];
        CoreCtx &ctx = core_ctx_[core];
        if (!sim_.cancel(ctx.pendingEvent))
            return;
        const std::uint64_t reqId = ctx.runningRequest;
        const Cycles remaining = ctx.segmentEnd > sim_.now()
                                     ? ctx.segmentEnd - sim_.now()
                                     : 0;
        const auto delay =
            remaining +
            1 +
            static_cast<Cycles>(rng.exponential(
                static_cast<double>(hh::sim::usToCycles(10))));
        ctx.segmentEnd = sim_.now() + delay;
        ctx.pendingEvent = sim_.schedule(
            delay, tag(SnapTag::kSegmentDone, core, reqId),
            [this, core, reqId] { onSegmentDone(core, reqId); });
    });

    // Lease overstay: plant a batch-ASID line in an L3 way whose
    // lease has ended — the positive control for the auditor's
    // "lease" invariant (flush-on-return must normally make this
    // state unreachable). Registered unconditionally so the action
    // roster (and the injector's serialized fire counts) does not
    // depend on the cache-lease config; without a returned leased
    // way it is a no-op.
    inj.addAction("lease_overstay", [this](hh::sim::Rng &rng) {
        if (done_ || !lease_mgr_)
            return;
        for (const auto &v : vms_) {
            if (!v.desc.isPrimary() || !v.l3)
                continue;
            const auto &l = lease_mgr_->lease(v.desc.id);
            const hh::cache::WayMask held =
                l.active ? l.l3Ways : hh::cache::WayMask{0};
            const hh::cache::WayMask returned = l.everLeased & ~held;
            if (!returned)
                continue;
            const auto way = static_cast<unsigned>(
                std::countr_zero(returned));
            const hh::cache::Addr page =
                (static_cast<hh::cache::Addr>(
                     vms_[harvest_vm_].desc.asid)
                 << 42) |
                rng.uniformInt(std::uint64_t{1} << 20);
            v.l3->access(page * hh::cache::kLinesPerPage, true,
                         hh::cache::WayMask{1} << way);
            return;
        }
    });
}

void
ServerSim::scheduleFirstArrivals()
{
    for (auto &v : vms_) {
        if (!v.desc.isPrimary() || v.arrivalsRemaining == 0 ||
            !v.loadgen)
            continue;
        const std::uint32_t vm = v.desc.id;
        const Cycles t = v.loadgen->next();
        sim_.scheduleAt(std::max(t, sim_.now()),
                        tag(SnapTag::kArrival, vm),
                        [this, vm] { onArrival(vm); });
    }
}

void
ServerSim::onArrival(std::uint32_t vm)
{
    VmCtx &v = vmCtx(vm);
    if (v.arrivalsRemaining == 0)
        return;
    --v.arrivalsRemaining;

    if (graph_hooks_) {
        // Graph mode: an arrival is a tree root. A saturated front VM
        // sheds it (budget spent either way — open-loop load does not
        // wait); the engine accounts both outcomes.
        if (graph_hooks_->admitRoot(vm)) {
            const std::uint64_t id = graphInjectRequest(vm);
            graph_hooks_->onRootArrival(vm, id);
        }
    } else {
        graphInjectRequest(vm);
    }

    if (v.arrivalsRemaining > 0) {
        const Cycles t =
            std::max(v.loadgen->next(), sim_.now() + 1);
        sim_.scheduleAt(t, tag(SnapTag::kArrival, vm),
                        [this, vm] { onArrival(vm); });
    }
}

std::uint64_t
ServerSim::graphInjectRequest(std::uint32_t vm)
{
    VmCtx &v = vmCtx(vm);
    const std::uint64_t id = next_request_id_++;
    hh::cpu::Request &req = requests_.create(id);
    req.id = id;
    req.vm = vm;
    req.plan = v.service->planInvocation();
    req.arrival = sim_.now();
    req.readySince = sim_.now();

    if (tracer_)
        tracer_->openSpan(id);

    hh::net::Packet pkt;
    pkt.kind = hh::net::PacketKind::NewRequest;
    pkt.dstVm = vm;
    pkt.requestId = id;
    nic_->receive(pkt);
    return id;
}

void
ServerSim::onPacket(const hh::net::Packet &pkt)
{
    // Multi-hop RPC packets target a tree node in the engine, not a
    // live request on this server — divert before the request lookup.
    if (pkt.kind == hh::net::PacketKind::GraphCall ||
        pkt.kind == hh::net::PacketKind::GraphDone) {
        if (!graph_hooks_)
            hh::sim::panic("ServerSim::onPacket: graph packet "
                           "without an installed engine");
        graph_hooks_->onGraphPacket(pkt);
        return;
    }

    const std::uint32_t vm = pkt.dstVm;
    hh::cpu::Request *found = requests_.find(pkt.requestId);
    if (!found)
        hh::sim::panic("ServerSim::onPacket: unknown request ",
                       pkt.requestId);
    hh::cpu::Request &req = *found;

    if (pkt.kind == hh::net::PacketKind::NewRequest) {
        ctrl_->enqueue(vm, req.id);
        req.state = hh::cpu::RequestState::Queued;
        if (tracer_)
            tracer_->instant(hh::trace::EventType::RqEnqueue,
                             sim_.now(), requestTrack(vm), req.id);
    } else {
        ctrl_->markReady(vm, req.id);
        req.state = hh::cpu::RequestState::Queued;
        req.readySince = sim_.now();
    }
    tryDispatch(vm);
}

ServerSim::VmCtx &
ServerSim::vmCtx(std::uint32_t vm)
{
    if (vm >= vms_.size())
        hh::sim::panic("ServerSim: bad VM id ", vm);
    return vms_[vm];
}

int
ServerSim::idleBoundCore(std::uint32_t vm) const
{
    for (unsigned c : vms_[vm].desc.cores) {
        const CoreCtx &ctx = core_ctx_[c];
        if (ctx.phase == Phase::Idle && !ctx.onLoan)
            return static_cast<int>(c);
    }
    return -1;
}

unsigned
ServerSim::idleBoundCores(std::uint32_t vm) const
{
    unsigned n = 0;
    for (unsigned c : vms_[vm].desc.cores) {
        const CoreCtx &ctx = core_ctx_[c];
        if (ctx.phase == Phase::Idle && !ctx.onLoan)
            ++n;
    }
    return n;
}

unsigned
ServerSim::busyPrimaryCores(std::uint32_t vm) const
{
    unsigned n = 0;
    for (unsigned c : vms_[vm].desc.cores) {
        if (core_ctx_[c].phase == Phase::RunPrimary ||
            core_ctx_[c].phase == Phase::Transition)
            ++n;
    }
    return n;
}

hh::sim::Cycles
ServerSim::dispatchOverhead(std::uint32_t vm)
{
    Cycles c = 0;
    // Scheduling: hardware notification vs discovering work by
    // polling a memory location.
    c += cfg_.hwSched ? ctrl_->notifyLatency() : hyp_->pollDelay();
    // Queue access: dedicated SRAM vs memory-mapped queue (which
    // also suffers lock contention when several cores poll it).
    if (cfg_.hwQueue) {
        c += ctrl_->queueOpLatency();
    } else {
        c += cfg_.swCosts.queueOp;
        if (idleBoundCores(vm) > 1)
            c += cfg_.swCosts.lockContention;
    }
    return c;
}

hh::sim::Cycles
ServerSim::ctxSwitchCost(unsigned core) const
{
    if (cfg_.hwCtxtSwitch)
        return ctxmem_->saveCost(core) + ctxmem_->restoreCost(core);
    return cfg_.swCosts.processCtxSwitch;
}

void
ServerSim::tryDispatch(std::uint32_t vm)
{
    if (vm == harvest_vm_)
        return;
    auto *qm = ctrl_->qmFor(vm);
    while (qm->queue().readyCount() > pending_reclaims_[vm]) {
        const int core = idleBoundCore(vm);
        if (core >= 0) {
            const auto id = ctrl_->dequeue(vm);
            if (!id)
                break;
            startRequestOnCore(static_cast<unsigned>(core), *id,
                               dispatchOverhead(vm), 0, 0);
            continue;
        }
        if (cfg_.harvesting && qm->hasLoanedCore()) {
            const int loaned = qm->loanedCoreToReclaim();
            if (loaned < 0)
                break;
            reclaimCore(static_cast<unsigned>(loaned), vm);
            continue;
        }
        break;
    }
}

void
ServerSim::startRequestOnCore(unsigned core, std::uint64_t reqId,
                              Cycles overhead, Cycles reassignPart,
                              Cycles flushPart)
{
    hh::cpu::Request *found = requests_.find(reqId);
    if (!found)
        hh::sim::panic("startRequestOnCore: unknown request ", reqId);
    hh::cpu::Request &req = *found;
    CoreCtx &ctx = core_ctx_[core];
    if (ctx.phase != Phase::Idle && ctx.phase != Phase::Transition)
        hh::sim::panic("startRequestOnCore: core ", core, " not idle");

    // Release the blocked-request anchor, if resuming.
    const auto a = anchor_.find(reqId);
    if (a != anchor_.end()) {
        if (core_ctx_[a->second].anchoredBlocked > 0)
            --core_ctx_[a->second].anchoredBlocked;
        anchor_.erase(a);
        if (cfg_.hwCtxtSwitch)
            ctxmem_->release(reqId);
    }

    const Cycles ctx_cost = ctxSwitchCost(core);
    req.state = hh::cpu::RequestState::Running;
    req.breakdown.queueing += (sim_.now() - req.readySince) + overhead;
    req.breakdown.reassign += reassignPart;
    req.breakdown.flush += flushPart;
    req.breakdown.queueing += ctx_cost;

    if (tracer_) {
        const std::uint32_t track = requestTrack(req.vm);
        if (sim_.now() > req.readySince)
            tracer_->record(hh::trace::EventType::QueueWait,
                            req.readySince,
                            sim_.now() - req.readySince, track, reqId);
        tracer_->instant(hh::trace::EventType::Dispatch, sim_.now(),
                         track, reqId);
        if (flushPart > 0)
            tracer_->record(hh::trace::EventType::HarvestFlush,
                            sim_.now(), flushPart, core, reqId);
        if (overhead + ctx_cost > 0)
            tracer_->record(hh::trace::EventType::CtxSwitchStall,
                            sim_.now(), overhead + ctx_cost, track,
                            reqId);
    }

    ctx.phase = Phase::RunPrimary;
    ctx.runningRequest = reqId;
    cores_[core]->setState(sim_.now(), hh::cpu::CoreState::RunningPrimary);
    cores_[core]->setCurrentRequest(reqId);

    sim_.schedule(overhead + ctx_cost,
                  tag(SnapTag::kExecSegment, core, reqId),
                  [this, core, reqId] { executeSegment(core, reqId); });
}

hh::sim::Cycles
ServerSim::replaySegment(unsigned core, std::uint64_t reqId,
                         const hh::workload::Segment &seg)
{
    HH_PROF_SCOPE("server.replay_segment");
    auto &req = requests_.at(reqId);
    auto &wl = *vms_[req.vm].service;
    const unsigned sampling = std::max(1u, cfg_.accessSampling);
    // Round to nearest and carry the residual weight forward so the
    // request's replayed access total converges to accesses/sampling
    // (plain truncation loses up to sampling-1 accesses per segment,
    // biasing short-segment services fast).
    const std::int64_t pool =
        static_cast<std::int64_t>(seg.accesses) + req.samplingCarry;
    const auto n = static_cast<std::uint32_t>(
        (pool + sampling / 2) / sampling);
    req.samplingCarry = static_cast<std::int32_t>(
        pool - static_cast<std::int64_t>(n) * sampling);
    // The cursor advances with the accumulated (de-sampled) memory
    // time so DRAM bandwidth sees correctly spaced traffic instead
    // of an artificial same-instant burst.
    Cycles t = sim_.now();
    for (std::uint32_t i = 0; i < n; ++i) {
        t += sampling * cores_[core]->hierarchy().access(
                            t, wl.nextAccess(req.plan));
    }
    return seg.compute + (t - sim_.now());
}

void
ServerSim::executeSegment(unsigned core, std::uint64_t reqId)
{
    hh::cpu::Request *found = requests_.find(reqId);
    if (!found)
        hh::sim::panic("executeSegment: unknown request ", reqId);
    hh::cpu::Request &req = *found;
    const auto &seg = req.plan.segments[req.nextSegment];

    const Cycles dur = replaySegment(core, reqId, seg);
    req.breakdown.execution += dur;
    if (tracer_)
        tracer_->record(hh::trace::EventType::ExecSegment, sim_.now(),
                        dur, requestTrack(req.vm), reqId);
    core_ctx_[core].segmentEnd = sim_.now() + dur;
    core_ctx_[core].pendingEvent = sim_.schedule(
        dur, tag(SnapTag::kSegmentDone, core, reqId),
        [this, core, reqId] { onSegmentDone(core, reqId); });
}

void
ServerSim::onSegmentDone(unsigned core, std::uint64_t reqId)
{
    hh::cpu::Request *found = requests_.find(reqId);
    if (!found)
        hh::sim::panic("onSegmentDone: unknown request ", reqId);
    hh::cpu::Request &req = *found;
    const auto seg = req.plan.segments[req.nextSegment];
    ++req.nextSegment;

    CoreCtx &ctx = core_ctx_[core];
    ctx.pendingEvent = hh::sim::kInvalidEventId;

    if (!req.finished() && seg.endsInIo) {
        // Block on a synchronous backend RPC.
        req.state = hh::cpu::RequestState::Blocked;
        ctrl_->markBlocked(req.vm, reqId);
        anchor_[reqId] = core;
        ++ctx.anchoredBlocked;
        if (cfg_.hwCtxtSwitch)
            ctxmem_->store(reqId);

        // Graph mode: the engine may claim this call site and fan out
        // real child RPCs instead of the synthetic backend. The I/O
        // duration is then the tree's — breakdown, EWMA and trace
        // accrue at graphUnblock() with the actual wait.
        if (graph_hooks_ && graph_hooks_->onCallSite(reqId)) {
            ctx.phase = Phase::Idle;
            ctx.runningRequest = 0;
            ctx.idleSince = sim_.now();
            cores_[core]->setState(sim_.now(),
                                   hh::cpu::CoreState::Idle);
            onCoreIdle(core);
            return;
        }

        const Cycles io_total =
            fabric_.roundTrip(256) + seg.ioTime;
        req.breakdown.io += io_total;
        if (tracer_)
            tracer_->record(hh::trace::EventType::IoBlocked,
                            sim_.now(), io_total,
                            requestTrack(req.vm), reqId);
        ewma_block_cycles_[req.vm] =
            0.2 * static_cast<double>(io_total) +
            0.8 * ewma_block_cycles_[req.vm];
        const std::uint32_t vm = req.vm;
        sim_.schedule(io_total, tag(SnapTag::kIoResponse, vm, reqId),
                      [this, vm, reqId] {
                          deliverIoResponse(vm, reqId);
                      });

        ctx.phase = Phase::Idle;
        ctx.runningRequest = 0;
        ctx.idleSince = sim_.now();
        cores_[core]->setState(sim_.now(), hh::cpu::CoreState::Idle);
        onCoreIdle(core);
        return;
    }

    if (!req.finished()) {
        // Consecutive segments without I/O execute back to back.
        executeSegment(core, reqId);
        return;
    }
    completeRequest(core, reqId);
}

void
ServerSim::completeRequest(unsigned core, std::uint64_t reqId)
{
    hh::cpu::Request &req = requests_.at(reqId);
    req.state = hh::cpu::RequestState::Done;
    req.completion = sim_.now();
    ctrl_->complete(req.vm, reqId);

    if (tracer_) {
        tracer_->record(hh::trace::EventType::RequestSpan, req.arrival,
                        sim_.now() - req.arrival, requestTrack(req.vm),
                        reqId);
        tracer_->closeSpan(reqId);
    }

    VmCtx &v = vmCtx(req.vm);
    ++v.completed;
    if (graph_hooks_) {
        // Graph mode: the engine drains the tree node and records
        // per-tier / end-to-end latencies into bounded histograms
        // (no per-sample vectors — the footprint must stay flat at
        // fleet scale). End-to-end roots tap latency_hist_us_ via
        // graphRecordE2e(), keeping the TelemetryHub fleet P99 an
        // end-to-end number.
        graph_hooks_->onComplete(reqId);
    } else if (v.completed > v.warmupSkip) {
        v.latencies.record(hh::sim::cyclesToMs(req.latency()));
        // Telemetry tap: epoch-resolved latency distribution for the
        // fleet P99-vs-harvest timeline (same warmup cut as p99Ms).
        latency_hist_us_.add(hh::sim::cyclesToMs(req.latency()) *
                             1000.0);
        v.breakdownSum.queueing += req.breakdown.queueing;
        v.breakdownSum.reassign += req.breakdown.reassign;
        v.breakdownSum.flush += req.breakdown.flush;
        v.breakdownSum.execution += req.breakdown.execution;
        v.breakdownSum.io += req.breakdown.io;
        ++v.breakdownCount;
    }
    requests_.erase(reqId);

    CoreCtx &ctx = core_ctx_[core];
    ctx.phase = Phase::Idle;
    ctx.runningRequest = 0;
    ctx.idleSince = sim_.now();
    cores_[core]->setState(sim_.now(), hh::cpu::CoreState::Idle);
    cores_[core]->setCurrentRequest(0);

    noteDoneMaybeFinish();
    onCoreIdle(core);
}

bool
ServerSim::blockHarvestAllowed(std::uint32_t vm) const
{
    if (policy_) {
        switch (policy_->decision(vm).blockMode) {
        case hh::policy::BlockHarvestMode::Never:
            return false;
        case hh::policy::BlockHarvestMode::AdaptiveEwma:
            // Adaptive extension (§4.1.5): the EWMA updates at I/O
            // block time, between policy epochs, so it is evaluated
            // here at lend time rather than frozen into the decision.
            return ewma_block_cycles_[vm] >=
                   static_cast<double>(cfg_.adaptiveBlockThreshold);
        case hh::policy::BlockHarvestMode::Always:
            return true;
        }
        return true;
    }
    // Legacy inlined path ("policy=legacy"): kept verbatim so the
    // StaticPolicy extraction can be differentially tested.
    if (!cfg_.harvestOnBlock)
        return false;
    // Adaptive extension (§4.1.5): when this VM's requests block
    // only briefly, harvesting the core is a net loss; fall back to
    // harvest-on-termination behaviour.
    if (cfg_.adaptiveHarvest &&
        ewma_block_cycles_[vm] <
            static_cast<double>(cfg_.adaptiveBlockThreshold)) {
        return false;
    }
    return true;
}

bool
ServerSim::coreLendable(unsigned core) const
{
    const CoreCtx &ctx = core_ctx_[core];
    const std::uint32_t vm = cores_[core]->boundVm();
    if (vm == harvest_vm_)
        return false;
    if (ctx.phase != Phase::Idle || ctx.onLoan)
        return false;
    // Policy gate: a held VM lends nothing at all.
    if (policy_ && !policy_->decision(vm).lendAllowed)
        return false;
    // Term-style harvesting never lends a core whose request is
    // blocked on I/O (the core is kept for the response).
    if (!blockHarvestAllowed(vm) && ctx.anchoredBlocked > 0)
        return false;
    // Burst-buffer extension (§4.1.5): keep some idle cores ready.
    const unsigned ebuf = policy_
                              ? policy_->decision(vm).emergencyBuffer
                              : cfg_.hwEmergencyBuffer;
    if (ebuf > 0 && idleBoundCores(vm) <= ebuf)
        return false;
    const auto *qm = ctrl_->qmFor(vm);
    return !qm->queue().hasReady();
}

void
ServerSim::onCoreIdle(unsigned core)
{
    if (done_)
        return;
    CoreCtx &ctx = core_ctx_[core];
    if (ctx.phase != Phase::Idle)
        return;
    const std::uint32_t vm = cores_[core]->boundVm();

    if (ctx.onLoan || vm == harvest_vm_) {
        // A Harvest-side core looks for the next slice.
        beginHarvestWork(core);
        return;
    }

    // First serve the core's own Primary VM.
    tryDispatch(vm);
    if (core_ctx_[core].phase != Phase::Idle)
        return;

    // Hardware harvesting lends instantly on idle; software lending
    // happens at agent ticks.
    if (cfg_.harvesting && cfg_.hwSched && coreLendable(core) &&
        !cfg_.harvestVmIdle) {
        lendCore(core);
    }
}

void
ServerSim::lendCore(unsigned core)
{
    CoreCtx &ctx = core_ctx_[core];
    const std::uint32_t vm = cores_[core]->boundVm();
    auto *qm = ctrl_->qmFor(vm);
    qm->noteLoan(core);
    loans_.inc();
    ctx.onLoan = true;
    ctx.phase = Phase::Transition;
    // Telemetry tap: harvested core-time accrues from the moment the
    // owner gives the core up, transition costs included.
    core_loan_start_[core] = sim_.now();

    Cycles cost = 0;
    if (!cfg_.hwSched && !cfg_.swReassignFree) {
        // The hypercall path serializes on the hypervisor's global
        // reassignment lock (§4.1.1).
        cost += hyp_->acquireReassignLock(
            sim_.now(), hyp_->reassignCost(cfg_.swImpl));
        cost += hyp_->reassignCost(cfg_.swImpl);
    }
    if (cfg_.hwSched)
        cost += ctrl_->notifyLatency();
    cost += ctxSwitchCost(core);

    // Flush semantics on the Primary -> Harvest transition: only the
    // harvest region is flushed under partitioning (and the Harvest
    // VM additionally waits out the worst-case flush bound to close
    // the timing side channel); otherwise a full wbinvd-style flush.
    auto &hier = cores_[core]->hierarchy();
    Cycles flush_cost = 0;
    if (cfg_.partitioning) {
        hier.flushHarvestRegion(sim_.now(), 0);
        flush_cost = cfg_.efficientFlush
                         ? ctrl_->flushBound()
                         : hyp_->wbinvdCost() / 2;
    } else if (cfg_.swFlushOnReassign) {
        hier.flushAll();
        flush_cost = hyp_->wbinvdCost();
    }
    cost += flush_cost;

    if (tracer_) {
        tracer_->instant(hh::trace::EventType::Lend, sim_.now(), core,
                         core);
        tracer_->record(hh::trace::EventType::LendTransition,
                        sim_.now(), cost, core, core);
        if (flush_cost > 0)
            tracer_->record(hh::trace::EventType::HarvestFlush,
                            sim_.now() + (cost - flush_cost),
                            flush_cost, core, core);
        tracer_->openSpan(lendKey(core));
    }

    if (cfg_.faults.resurrectLendRace) {
        // Deliberately resurrected seed bug (auditor regression
        // harness): the completion is NOT tracked in pendingEvent, so
        // a reclaim arriving mid-transition cannot cancel it and the
        // onLoan guard alone decides whether it fires. After
        // lend -> reclaim-in-transition -> lend, two completions are
        // in flight, both see onLoan=true, and two concurrent slice
        // chains run on one core; the rogue chain later clobbers the
        // core while it runs a Primary request, orphaning it.
        sim_.schedule(cost, tag(SnapTag::kLendDoneRace, core),
                      [this, core] { onLendDoneRace(core); });
        return;
    }

    // Track the completion so a reclaim arriving mid-transition
    // cancels it (via preemptHarvestSlice). The `onLoan` guard alone
    // is not enough: after lend -> reclaim-in-transition -> lend, two
    // completions would be in flight and both would see onLoan=true,
    // spawning two concurrent slice chains on one core — the second
    // chain's slice-done events escape cancellation and later clobber
    // the core while it runs a Primary request, orphaning it.
    ctx.pendingEvent =
        sim_.schedule(cost, tag(SnapTag::kLendDone, core),
                      [this, core] { onLendDone(core); });
}

void
ServerSim::onLendDone(unsigned core)
{
    CoreCtx &c = core_ctx_[core];
    c.pendingEvent = hh::sim::kInvalidEventId;
    if (!c.onLoan)
        return; // reclaimed while transitioning
    if (tracer_)
        tracer_->closeSpan(lendKey(core));
    c.phase = Phase::Idle;
    if (cfg_.harvestVmIdle) {
        // Fig 4 study: the Harvest VM has no work; the core sits
        // lent but idle until reclaimed.
        c.idleSince = sim_.now();
        return;
    }
    beginHarvestWork(core);
}

void
ServerSim::onLendDoneRace(unsigned core)
{
    CoreCtx &c = core_ctx_[core];
    if (!c.onLoan)
        return;
    if (tracer_)
        tracer_->closeSpan(lendKey(core));
    c.phase = Phase::Idle;
    if (cfg_.harvestVmIdle) {
        c.idleSince = sim_.now();
        return;
    }
    beginHarvestWork(core);
}

void
ServerSim::deliverIoResponse(std::uint32_t vm, std::uint64_t reqId)
{
    hh::net::Packet pkt;
    pkt.kind = hh::net::PacketKind::IoResponse;
    pkt.dstVm = vm;
    pkt.requestId = reqId;
    nic_->receive(pkt);
}

void
ServerSim::graphUnblock(std::uint32_t vm, std::uint64_t reqId,
                        hh::sim::Cycles blockedAt)
{
    hh::cpu::Request *found = requests_.find(reqId);
    if (!found)
        hh::sim::panic("graphUnblock: unknown request ", reqId);
    hh::cpu::Request &req = *found;

    // The synthetic-backend path charges its fixed io_total up front;
    // here the wait was the subtree's drain time, known only now.
    const Cycles io_total = sim_.now() - blockedAt;
    req.breakdown.io += io_total;
    if (tracer_)
        tracer_->record(hh::trace::EventType::IoBlocked, blockedAt,
                        io_total, requestTrack(req.vm), reqId);
    ewma_block_cycles_[req.vm] =
        0.2 * static_cast<double>(io_total) +
        0.8 * ewma_block_cycles_[req.vm];
    deliverIoResponse(vm, reqId);
}

void
ServerSim::graphLoopback(const hh::net::Packet &pkt)
{
    // Same-server tier: keep NIC processing and the DDIO deposit but
    // skip the fabric — the message never leaves the machine.
    nic_->receive(pkt);
}

void
ServerSim::graphScheduleWireArrival(const hh::net::Packet &pkt,
                                    hh::sim::Cycles when)
{
    sim_.scheduleAt(when, pkt.wireTag(),
                    [this, pkt] { nic_->receive(pkt); });
}

void
ServerSim::setGraphDone(hh::sim::Cycles end)
{
    if (done_)
        return;
    done_ = true;
    end_time_ = end;
    if (sampler_)
        sampler_->stop();
    if (injector_)
        injector_->stop();
    stopTelemetry();
    stopPolicy();
    stopLease();
}

bool
ServerSim::requestBlocked(std::uint64_t reqId) const
{
    const auto *req = requests_.find(reqId);
    return req && req->state == hh::cpu::RequestState::Blocked;
}

void
ServerSim::configureCoreForHarvest(unsigned core)
{
    auto &hier = cores_[core]->hierarchy();
    hier.setL3(vms_[harvest_vm_].l3.get());
    const bool borrowed = cores_[core]->boundVm() != harvest_vm_;
    hier.setHarvestMode(cfg_.partitioning && borrowed);
    // The core now runs batch work: point it at leased overflow ways.
    rebindLeaseOverflow();
}

void
ServerSim::configureCoreForPrimary(unsigned core)
{
    auto &hier = cores_[core]->hierarchy();
    hier.setL3(vms_[cores_[core]->boundVm()].l3.get());
    hier.setHarvestMode(false);
    // Reclaimed cores lose their overflow binding with the loan.
    rebindLeaseOverflow();
}

void
ServerSim::beginHarvestWork(unsigned core)
{
    if (done_) {
        core_ctx_[core].phase = Phase::Idle;
        cores_[core]->setState(sim_.now(), hh::cpu::CoreState::Idle);
        return;
    }
    configureCoreForHarvest(core);
    startHarvestSlice(core);
}

void
ServerSim::startHarvestSlice(unsigned core)
{
    CoreCtx &ctx = core_ctx_[core];
    HarvestSlice slice;
    if (!harvest_queue_.empty()) {
        slice = harvest_queue_.front();
        harvest_queue_.pop_front();
    } else {
        const auto task = batch_->planTask();
        slice.id = next_slice_id_++;
        slice.remainingCompute = task.compute;
        slice.remainingAccesses = task.accesses;
    }

    const Cycles dur = replayHarvest(core, slice);
    ctx.slice = slice;
    ctx.sliceStart = sim_.now();
    ctx.sliceDuration = std::max<Cycles>(1, dur);
    ctx.phase = Phase::RunHarvest;
    cores_[core]->setState(sim_.now(),
                           hh::cpu::CoreState::RunningHarvest);
    ctx.pendingEvent = sim_.schedule(
        ctx.sliceDuration, tag(SnapTag::kHarvestSliceDone, core),
        [this, core] { onHarvestSliceDone(core); });
}

hh::sim::Cycles
ServerSim::replayHarvest(unsigned core, HarvestSlice &slice)
{
    HH_PROF_SCOPE("server.replay_harvest");
    const unsigned sampling = std::max(1u, cfg_.accessSampling);
    // Same round-to-nearest + residual-carry scheme as
    // replaySegment, banked per slice across preemption resumes.
    const std::int64_t pool =
        static_cast<std::int64_t>(slice.remainingAccesses) +
        slice.samplingCarry;
    const auto n = static_cast<std::uint32_t>(
        (pool + sampling / 2) / sampling);
    slice.samplingCarry = static_cast<std::int32_t>(
        pool - static_cast<std::int64_t>(n) * sampling);
    Cycles t = sim_.now();
    for (std::uint32_t i = 0; i < n; ++i) {
        t += sampling *
             cores_[core]->hierarchy().access(t, batch_->nextAccess());
    }
    return slice.remainingCompute + (t - sim_.now());
}

void
ServerSim::onHarvestSliceDone(unsigned core)
{
    CoreCtx &ctx = core_ctx_[core];
    ctx.pendingEvent = hh::sim::kInvalidEventId;
    if (tracer_ && ctx.slice)
        tracer_->record(hh::trace::EventType::HarvestSlice,
                        ctx.sliceStart, sim_.now() - ctx.sliceStart,
                        core, ctx.slice->id);
    ctx.slice.reset();
    ++batch_tasks_done_;
    if (ctx.onLoan)
        ++batch_tasks_loaned_; // absorbed by a borrowed core

    ctx.phase = Phase::Idle;
    ctx.idleSince = sim_.now();
    cores_[core]->setState(sim_.now(), hh::cpu::CoreState::Idle);

    const std::uint32_t bound = cores_[core]->boundVm();
    if (ctx.onLoan) {
        // The owner reclaims through interrupts, but double-check:
        // if the Primary VM accumulated work, return voluntarily.
        auto *qm = ctrl_->qmFor(bound);
        if (qm->queue().hasReady()) {
            reclaimCore(core, bound);
            return;
        }
    }
    onCoreIdle(core);
}

void
ServerSim::preemptHarvestSlice(unsigned core)
{
    CoreCtx &ctx = core_ctx_[core];
    if (ctx.pendingEvent != hh::sim::kInvalidEventId) {
        sim_.cancel(ctx.pendingEvent);
        ctx.pendingEvent = hh::sim::kInvalidEventId;
    }
    if (!ctx.slice)
        return;
    if (tracer_) {
        tracer_->record(hh::trace::EventType::HarvestSlice,
                        ctx.sliceStart, sim_.now() - ctx.sliceStart,
                        core, ctx.slice->id);
        tracer_->instant(hh::trace::EventType::Preempt, sim_.now(),
                         core, ctx.slice->id);
    }
    // Return the unexecuted remainder to the Harvest VM's vCPU queue
    // (Fig 10: the preempted request becomes ready for another core).
    const double f =
        ctx.sliceDuration == 0
            ? 1.0
            : std::clamp(static_cast<double>(sim_.now() -
                                             ctx.sliceStart) /
                             static_cast<double>(ctx.sliceDuration),
                         0.0, 1.0);
    HarvestSlice rest = *ctx.slice;
    rest.remainingCompute = static_cast<Cycles>(
        static_cast<double>(rest.remainingCompute) * (1.0 - f));
    rest.remainingAccesses = static_cast<std::uint32_t>(
        static_cast<double>(rest.remainingAccesses) * (1.0 - f));
    if (rest.remainingCompute > 0 || rest.remainingAccesses > 0) {
        harvest_queue_.push_front(rest);
    } else {
        ++batch_tasks_done_; // effectively finished at preemption
        if (ctx.onLoan)
            ++batch_tasks_loaned_;
    }
    ctx.slice.reset();
}

void
ServerSim::reclaimCore(unsigned core, std::uint32_t vm)
{
    CoreCtx &ctx = core_ctx_[core];
    auto *qm = ctrl_->qmFor(vm);
    qm->noteReturn(core);
    reclaims_.inc();
    ++pending_reclaims_[vm];
    last_reclaim_at_[vm] = sim_.now();

    // A reclaim arriving while the lend transition is still paying
    // its costs cancels that lend; its span must close here or it
    // would be reported as an orphan.
    const bool lend_in_flight =
        ctx.onLoan && ctx.phase == Phase::Transition &&
        ctx.pendingEvent != hh::sim::kInvalidEventId;
    if (tracer_) {
        tracer_->instant(hh::trace::EventType::Reclaim, sim_.now(),
                         core, core);
        if (lend_in_flight) {
            tracer_->instant(hh::trace::EventType::LendCancelled,
                             sim_.now(), core, core);
            tracer_->closeSpan(lendKey(core));
        }
        tracer_->openSpan(reclaimKey(core));
    }

    preemptHarvestSlice(core);
    ctx.onLoan = false;
    ctx.phase = Phase::Transition;
    cores_[core]->setState(sim_.now(), hh::cpu::CoreState::Idle);

    Cycles reassign_cost = 0;
    if (cfg_.hwSched) {
        reassign_cost += ctrl_->notifyLatency();
    } else if (!cfg_.swReassignFree) {
        reassign_cost += hyp_->acquireReassignLock(
            sim_.now(), hyp_->reassignCost(cfg_.swImpl));
        reassign_cost += hyp_->reassignCost(cfg_.swImpl);
    }
    reassign_cost += ctxSwitchCost(core);

    Cycles flush_cost = 0;
    auto &hier = cores_[core]->hierarchy();
    if (cfg_.partitioning) {
        // Only the harvest region is flushed, in the background; the
        // Primary VM restarts right away on the non-harvest state.
        const Cycles bound = cfg_.efficientFlush
                                 ? ctrl_->flushBound()
                                 : hyp_->wbinvdCost() / 2;
        hier.flushHarvestRegion(sim_.now(), bound);
        if (tracer_)
            tracer_->record(hh::trace::EventType::HarvestFlush,
                            sim_.now(), bound, core, core);
    } else if (cfg_.swFlushOnReassign) {
        hier.flushAll();
        flush_cost = hyp_->wbinvdCost();
        if (tracer_)
            tracer_->record(hh::trace::EventType::HarvestFlush,
                            sim_.now(), flush_cost, core, core);
    }
    configureCoreForPrimary(core);

    const Cycles total = reassign_cost + flush_cost;
    // Telemetry taps, recorded at schedule time where the reclaim's
    // full latency is already deterministic: the latency histogram,
    // the per-VM reclaim accumulators, and the end of the core's
    // harvested-time interval.
    reclaim_hist_.add(static_cast<double>(total));
    ++vm_reclaims_[vm];
    vm_reclaim_cycles_[vm] += total;
    if (core_loan_start_[core] != kNotLent) {
        vm_lent_cycles_[vm] += sim_.now() - core_loan_start_[core];
        core_loan_start_[core] = kNotLent;
    }
    if (tracer_)
        tracer_->record(hh::trace::EventType::ReclaimTransition,
                        sim_.now(), total, core, core);
    sim_.schedule(total,
                  tag(SnapTag::kReclaimDone, core, vm, reassign_cost,
                      flush_cost),
                  [this, core, vm, reassign_cost, flush_cost] {
                      onReclaimDone(core, vm, reassign_cost,
                                    flush_cost);
                  });
}

void
ServerSim::onReclaimDone(unsigned core, std::uint32_t vm,
                         Cycles reassignCost, Cycles flushCost)
{
    CoreCtx &c = core_ctx_[core];
    if (pending_reclaims_[vm] > 0)
        --pending_reclaims_[vm];
    if (tracer_) {
        tracer_->closeSpan(reclaimKey(core));
        tracer_->instant(hh::trace::EventType::Restore, sim_.now(),
                         core, core);
    }
    c.phase = Phase::Idle;
    c.idleSince = sim_.now();
    const auto id = ctrl_->dequeue(vm);
    if (id) {
        startRequestOnCore(core, *id, 0, reassignCost, flushCost);
    } else {
        onCoreIdle(core);
    }
}

void
ServerSim::agentTick()
{
    if (done_)
        return;
    const Cycles now = sim_.now();
    for (auto &v : vms_) {
        if (!v.desc.isPrimary())
            continue;
        const std::uint32_t vm = v.desc.id;
        sw_policy_.observe(vm, busyPrimaryCores(vm));
        if (!cfg_.harvesting)
            continue;
        // Policy gate mirroring coreLendable's: a held VM lends
        // nothing through the software agent either.
        if (policy_ && !policy_->decision(vm).lendAllowed)
            continue;

        // Thrash avoidance: after a reclaim, wait out a backoff
        // proportional to the cost of a core move before lending
        // this VM's cores again.
        Cycles move_cost = ctxSwitchCost(0);
        if (!cfg_.swReassignFree)
            move_cost += hyp_->reassignCost(cfg_.swImpl);
        if (cfg_.swFlushOnReassign)
            move_cost += cfg_.swCosts.wbinvdMax;
        // A rational agent only moves a core when the expected idle
        // time amortizes the move. Sub-millisecond movers
        // (SmartHarvest) can chase short gaps; millisecond movers
        // (vanilla KVM) must wait for long troughs, which caps them
        // at the handful of moves per second the paper observes.
        const bool cheap_mover =
            move_cost < hh::sim::msToCycles(1.0);
        const Cycles backoff = std::max(
            sw_policy_.config().reclaimBackoff,
            (cheap_mover ? 4 : 18) * move_cost);
        if (sim_.now() - last_reclaim_at_[vm] < backoff &&
            last_reclaim_at_[vm] != 0) {
            continue;
        }

        unsigned idle = 0;
        unsigned idle_long = 0;
        std::vector<unsigned> candidates;
        for (unsigned c : v.desc.cores) {
            const CoreCtx &ctx = core_ctx_[c];
            if (ctx.phase == Phase::Idle && !ctx.onLoan) {
                ++idle;
                // Block-mode's defining aggression: a core whose
                // request just blocked on I/O is taken right away;
                // otherwise idleness must persist past the
                // prediction threshold. Expensive movers (KVM) only
                // ever take long-idle cores, which naturally caps
                // their reassignment rate at the handful per second
                // the paper's motivation study observes.
                const bool anchored = ctx.anchoredBlocked > 0;
                if (!blockHarvestAllowed(vm) && anchored)
                    continue;
                const Cycles idle_needed =
                    std::max(sw_policy_.config().idleThreshold,
                             (cheap_mover ? 2 : 9) * move_cost);
                const bool eager_ok = cheap_mover;
                const bool long_enough =
                    (blockHarvestAllowed(vm) && anchored &&
                     eager_ok) ||
                    now - ctx.idleSince >= idle_needed;
                if (long_enough) {
                    ++idle_long;
                    candidates.push_back(c);
                }
            }
        }
        const unsigned n = sw_policy_.lendableCores(
            vm, static_cast<unsigned>(v.desc.cores.size()), idle,
            idle_long);
        for (unsigned i = 0; i < n && i < candidates.size(); ++i)
            lendCore(candidates[i]);
    }
    sim_.schedule(sw_policy_.config().agentPeriod,
                  tag(SnapTag::kAgentTick), [this] { agentTick(); });
}

hh::stats::ServerCounters
ServerSim::telemetryCounters()
{
    hh::stats::ServerCounters s;
    s.t = sim_.now();
    s.vms.resize(vms_.size());

    // Per-core counters accumulate into the *owning* VM: a core keeps
    // its boundVm while on loan, so a lent core's busy time and cache
    // behaviour are attributed to the owner whose capacity is being
    // harvested (the loan itself is visible via coresLent/lentCycles).
    for (unsigned c = 0; c < cores_.size(); ++c) {
        const auto &core = *cores_[c];
        hh::stats::VmCounters &vc = s.vms[core.boundVm()];
        ++vc.coresBound;
        vc.busyCycles += cores_[c]->busy().busyCycles(s.t);
        auto &h = cores_[c]->hierarchy();
        vc.accesses += h.accesses();
        vc.misses += h.l2().misses();
        vc.validLines += h.l1d().validCount() +
                         h.l1i().validCount() + h.l2().validCount();
        vc.lineCapacity += h.l1d().geometry().entries() +
                           h.l1i().geometry().entries() +
                           h.l2().geometry().entries();
        if (core_ctx_[c].onLoan)
            ++vc.coresLent;
        if (core_loan_start_[c] != kNotLent)
            vc.lentCycles += s.t - core_loan_start_[c];
    }
    for (std::size_t v = 0; v < vms_.size(); ++v) {
        hh::stats::VmCounters &vc = s.vms[v];
        const auto *qm = ctrl_->qmFor(vms_[v].desc.id);
        vc.rqReady = qm->queue().readyCount();
        vc.rqOccupancy = qm->queue().occupancy();
        vc.rqOverflow = qm->queue().overflowSize();
        vc.pendingReclaims = pending_reclaims_[v];
        vc.lentCycles += vm_lent_cycles_[v];
        vc.reclaims = vm_reclaims_[v];
        vc.reclaimCycles = vm_reclaim_cycles_[v];
        if (lease_mgr_ && lease_mgr_->active(vms_[v].desc.id)) {
            const auto &l = lease_mgr_->lease(vms_[v].desc.id);
            vc.leasedWays = static_cast<std::uint32_t>(
                std::popcount(l.l3Ways));
            vc.leasedOccupancy =
                vms_[v].l3->validCountInWays(l.l3Ways);
        }
    }
    s.batchLoaned = batch_tasks_loaned_;
    s.batchNative = batch_tasks_done_ - batch_tasks_loaned_;
    s.reclaimHist = reclaim_hist_.counts();
    s.latencyHist = latency_hist_us_.counts();
    if (lease_mgr_) {
        s.leaseGrants = lease_mgr_->grants();
        s.leaseRecalls = lease_mgr_->recalls();
        s.leaseExpiries = lease_mgr_->expiries();
        s.leaseFlushedLines = lease_mgr_->flushedLines();
        s.leaseWayCycles = lease_mgr_->wayCycles(s.t);
    }
    return s;
}

void
ServerSim::telemetryTick()
{
    telemetry_pending_ = hh::sim::kInvalidEventId;
    if (!telemetry_running_)
        return;
    telemetry_->record(telemetryCounters());
    telemetry_pending_ = sim_.schedule(
        cfg_.telemetryPeriod, tag(SnapTag::kTelemetryTick),
        [this] { telemetryTick(); });
}

void
ServerSim::stopTelemetry()
{
    if (!telemetry_running_)
        return;
    telemetry_running_ = false;
    if (telemetry_pending_ != hh::sim::kInvalidEventId) {
        sim_.cancel(telemetry_pending_);
        telemetry_pending_ = hh::sim::kInvalidEventId;
    }
    // Final partial epoch; the view ignores the call when a periodic
    // tick already materialized this exact time.
    telemetry_->record(telemetryCounters());
}

hh::policy::PolicyConfig
ServerSim::policyConfig() const
{
    hh::policy::PolicyConfig pc;
    pc.kind = cfg_.policy;
    pc.vmCount = static_cast<std::uint32_t>(cfg_.primaryVms + 1);
    pc.harvestVm = harvest_vm_;
    pc.seed = seed_;
    pc.harvestOnBlock = cfg_.harvestOnBlock;
    pc.adaptiveHarvest = cfg_.adaptiveHarvest;
    pc.hwEmergencyBuffer = cfg_.hwEmergencyBuffer;
    pc.harvestWayFraction = cfg_.harvestWayFraction;
    pc.cacheLendEnabled = cfg_.cacheLendEnabled;
    pc.cacheLendL2WayFraction = cfg_.cacheLendL2WayFraction;
    pc.cacheLendL3Ways = cfg_.cacheLendL3Ways;
    pc.lendUtil = cfg_.policyLendUtil;
    pc.holdUtil = cfg_.policyHoldUtil;
    pc.ewmaAlpha = cfg_.policyEwmaAlpha;
    pc.clusters = cfg_.policyClusters;
    pc.epsilon = cfg_.policyEpsilon;
    pc.p99TargetMs = cfg_.policyP99TargetMs;
    pc.p99Penalty = cfg_.policyP99Penalty;
    return pc;
}

void
ServerSim::policyTick()
{
    policy_pending_ = hh::sim::kInvalidEventId;
    if (!policy_running_)
        return;
    // The policy rides its own ObservationView so its epoch cadence
    // is independent of (and composable with) the telemetry plane's.
    policy_view_->record(telemetryCounters());
    const auto rows = policy_view_->takeRows();
    for (const auto &row : rows)
        policy_->observe(row);
    applyPolicyDecisions();
    policy_pending_ = sim_.schedule(
        cfg_.policyPeriod, tag(SnapTag::kPolicyTick),
        [this] { policyTick(); });
}

void
ServerSim::stopPolicy()
{
    if (!policy_running_)
        return;
    policy_running_ = false;
    if (policy_pending_ != hh::sim::kInvalidEventId) {
        sim_.cancel(policy_pending_);
        policy_pending_ = hh::sim::kInvalidEventId;
    }
}

void
ServerSim::applyPolicyDecisions()
{
    if (!policy_)
        return;
    for (auto &v : vms_) {
        if (!v.desc.isPrimary())
            continue;
        const std::uint32_t vm = v.desc.id;
        const double f = policy_->decision(vm).harvestWayFraction;
        if (f == policy_applied_fraction_[vm])
            continue;
        policy_applied_fraction_[vm] = f;
        ctrl_->qmFor(vm)->harvestMask().setFraction(f);
        if (cfg_.partitioning) {
            for (unsigned c : v.desc.cores)
                cores_[c]->hierarchy().setHarvestWayFraction(f);
        }
    }
}

// ---------------------------------------------------- cache leasing

bool
ServerSim::vmHasIdleCapacity(std::uint32_t vm) const
{
    // A VM with an idle or lent core is not using its full cache
    // footprint either — that is the capacity the lease harvests.
    for (unsigned c : vms_[vm].desc.cores) {
        const CoreCtx &ctx = core_ctx_[c];
        if (ctx.onLoan || ctx.phase == Phase::Idle)
            return true;
    }
    return false;
}

void
ServerSim::leaseTick()
{
    lease_pending_ = hh::sim::kInvalidEventId;
    if (!lease_running_)
        return;
    for (const auto &v : vms_) {
        if (!v.desc.isPrimary())
            continue;
        const std::uint32_t vm = v.desc.id;
        // The policy's per-VM cache-lend decision; the "legacy"
        // selector falls back to the raw config knobs (== static).
        bool allowed = cfg_.cacheLendEnabled;
        double l2f = cfg_.cacheLendL2WayFraction;
        unsigned l3w = cfg_.cacheLendL3Ways;
        if (policy_) {
            const auto &d = policy_->decision(vm);
            allowed = d.cacheLendAllowed;
            l2f = d.cacheLendL2Fraction;
            l3w = d.cacheLendL3Ways;
        }
        if (lease_mgr_->active(vm)) {
            if (!allowed)
                leaseRelease(vm, false);
            else if (lease_mgr_->expired(vm, sim_.now()))
                leaseRelease(vm, true); // eligible to re-grant below
        }
        if (!lease_mgr_->active(vm) && allowed && l3w > 0 &&
            vmHasIdleCapacity(vm))
            leaseGrant(vm, l2f, l3w);
    }
    lease_pending_ = sim_.schedule(
        std::max<Cycles>(1, cfg_.cacheLendPeriod),
        tag(SnapTag::kLeaseTick), [this] { leaseTick(); });
}

void
ServerSim::stopLease()
{
    if (!lease_running_)
        return;
    lease_running_ = false;
    if (lease_pending_ != hh::sim::kInvalidEventId) {
        sim_.cancel(lease_pending_);
        lease_pending_ = hh::sim::kInvalidEventId;
    }
}

void
ServerSim::leaseGrant(std::uint32_t vm, double l2Fraction,
                      unsigned l3Ways)
{
    auto &v = vms_[vm];
    auto &l3 = *v.l3;
    // Lease the low ways, capped so the owner always keeps one.
    const unsigned ways = std::min<unsigned>(
        l3Ways, l3.geometry().ways - 1);
    if (ways == 0)
        return;
    const auto mask = static_cast<hh::cache::WayMask>(
        (hh::cache::WayMask{1} << ways) - 1);
    // L2 bonus: extra harvest ways on the lender's cores, so batch
    // work landing there sees more private capacity. Only meaningful
    // under partitioning (the mask is a no-op otherwise).
    std::uint32_t bonus = 0;
    if (cfg_.partitioning && l2Fraction > 0.0 &&
        !v.desc.cores.empty()) {
        const auto &l2g = cores_[v.desc.cores.front()]
                              ->hierarchy()
                              .l2()
                              .geometry();
        bonus = static_cast<std::uint32_t>(
            std::lround(l2Fraction * l2g.ways));
    }
    lease_mgr_->grant(vm, l3, sim_.now(), mask, bonus);
    if (bonus) {
        for (unsigned c : v.desc.cores)
            cores_[c]->hierarchy().setL2LeaseBonus(bonus);
    }
    rebindLeaseOverflow();
}

void
ServerSim::leaseRelease(std::uint32_t vm, bool expired)
{
    auto &v = vms_[vm];
    const std::uint32_t bonus = lease_mgr_->lease(vm).l2Bonus;
    lease_mgr_->release(vm, *v.l3, sim_.now(), expired);
    if (bonus) {
        for (unsigned c : v.desc.cores)
            cores_[c]->hierarchy().setL2LeaseBonus(0);
    }
    rebindLeaseOverflow();
}

void
ServerSim::rebindLeaseOverflow()
{
    if (!lease_mgr_)
        return;
    // Round-robin the batch-running cores over the active lenders'
    // leased ways. Pure function of (lease set, loan set), so the
    // binding is derived state: recomputed here on every change and
    // after snapshot load, never serialized.
    const auto lenders = lease_mgr_->activeLenders();
    for (unsigned c = 0; c < cores_.size(); ++c) {
        auto &hier = cores_[c]->hierarchy();
        const bool batchSide =
            cores_[c]->boundVm() == harvest_vm_ || core_ctx_[c].onLoan;
        if (!batchSide || lenders.empty()) {
            hier.setLeaseL3(nullptr, 0);
            continue;
        }
        const unsigned lender = lenders[c % lenders.size()];
        hier.setLeaseL3(vms_[lender].l3.get(),
                        lease_mgr_->lease(lender).l3Ways);
    }
}

bool
ServerSim::allDone() const
{
    for (const auto &v : vms_) {
        if (!v.desc.isPrimary())
            continue;
        if (v.arrivalsRemaining > 0 ||
            v.completed < cfg_.requestsPerVm)
            return false;
    }
    return true;
}

void
ServerSim::noteDoneMaybeFinish()
{
    // In graph mode a server never declares itself done: a back tier
    // with an empty queue may still receive RPCs over the wire. The
    // fleet coordinator calls setGraphDone() once every tree drained.
    if (graph_hooks_)
        return;
    if (!done_ && allDone()) {
        done_ = true;
        end_time_ = sim_.now();
        // The sampler's self-rescheduling tick would otherwise keep
        // the event queue non-empty all the way to the horizon.
        if (sampler_)
            sampler_->stop();
        // Likewise the injector's self-rescheduling perturbation tick.
        if (injector_)
            injector_->stop();
        // And the telemetry epoch tick (records the partial epoch).
        stopTelemetry();
        // And the policy epoch tick (decisions after the last
        // request are moot; the drain tail lends nothing new).
        stopPolicy();
        // And the lease tick (active leases stay put; the drain
        // tail grants and recalls nothing new).
        stopLease();
    }
}

ServerResults
ServerSim::run()
{
    startRun();
    advanceRun(horizon());
    return finishRun();
}

std::vector<ServerSim::ArrivalProgress>
ServerSim::arrivalProgress() const
{
    std::vector<ArrivalProgress> out;
    for (const auto &v : vms_) {
        if (!v.desc.isPrimary())
            continue;
        ArrivalProgress p;
        p.consumed = cfg_.requestsPerVm - v.arrivalsRemaining;
        p.completed = v.completed;
        out.push_back(p);
    }
    return out;
}

bool
ServerSim::retargetArrivalBudget(const SystemConfig &donorCfg,
                                 std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = "retargetArrivalBudget: " + what;
        return false;
    };
    if (donorCfg.requestsPerVm < cfg_.requestsPerVm)
        return fail("donor budget " +
                    std::to_string(donorCfg.requestsPerVm) +
                    " is smaller than target budget " +
                    std::to_string(cfg_.requestsPerVm));
    SystemConfig donor_prefix = donorCfg;
    SystemConfig target_prefix = cfg_;
    donor_prefix.requestsPerVm = 0;
    target_prefix.requestsPerVm = 0;
    if (configFingerprint(donor_prefix) !=
        configFingerprint(target_prefix))
        return fail("donor config differs beyond the arrival budget");

    const unsigned delta = donorCfg.requestsPerVm - cfg_.requestsPerVm;
    const unsigned donor_warm = static_cast<unsigned>(
        donorCfg.warmupFraction *
        static_cast<double>(donorCfg.requestsPerVm));
    const unsigned target_warm = static_cast<unsigned>(
        cfg_.warmupFraction * static_cast<double>(cfg_.requestsPerVm));
    const unsigned warm_cap = std::min(donor_warm, target_warm);

    // Validate every VM before touching any: a half-retargeted sim
    // would be unusable.
    for (const auto &v : vms_) {
        if (!v.desc.isPrimary())
            continue;
        if (v.arrivalsRemaining <= delta)
            return fail("vm" + std::to_string(v.desc.id) +
                        " consumed arrivals past the target budget");
        if (v.completed > warm_cap)
            return fail("vm" + std::to_string(v.desc.id) +
                        " completed past the warmup boundary");
    }
    for (auto &v : vms_) {
        if (!v.desc.isPrimary())
            continue;
        v.arrivalsRemaining -= delta;
        v.warmupSkip = target_warm;
    }
    return true;
}

void
ServerSim::startRun()
{
    if (cfg_.metricsEnabled) {
        sampler_ = std::make_unique<hh::stats::MetricSampler>(
            sim_, registry_, cfg_.metricsPeriod);
        sampler_->start();
    }
    if (cfg_.telemetryEnabled) {
        telemetry_ = std::make_unique<hh::stats::ObservationView>();
        telemetry_running_ = true;
        // No row at t=0 (it would be all zeros); the first epoch is
        // materialized at t=telemetryPeriod against an implicit
        // all-zero baseline.
        telemetry_pending_ = sim_.schedule(
            cfg_.telemetryPeriod, tag(SnapTag::kTelemetryTick),
            [this] { telemetryTick(); });
    }
    // Policy epoch tick. The static policy wants no tick, so its
    // event stream (and thus the run) is identical to the legacy
    // path's — the extraction is pure refactoring there.
    if (policy_ && policy_->wantsEpochTick()) {
        policy_view_ = std::make_unique<hh::stats::ObservationView>();
        policy_running_ = true;
        policy_pending_ = sim_.schedule(
            cfg_.policyPeriod, tag(SnapTag::kPolicyTick),
            [this] { policyTick(); });
    }
    // Cache-lease grant/recall tick (second harvest dimension).
    if (lease_mgr_) {
        lease_running_ = true;
        lease_pending_ = sim_.schedule(
            std::max<Cycles>(1, cfg_.cacheLendPeriod),
            tag(SnapTag::kLeaseTick), [this] { leaseTick(); });
    }

    // Harvest VM's own cores start working immediately.
    for (unsigned c : vms_[harvest_vm_].desc.cores)
        sim_.schedule(0, tag(SnapTag::kCoreIdle, c),
                      [this, c] { onCoreIdle(c); });

    // The Fig 4 idle-harvest study still lends cores via the agent,
    // so only the hardware scheduler skips the software tick.
    if (!cfg_.hwSched && cfg_.harvesting) {
        sim_.schedule(sw_policy_.config().agentPeriod,
                      tag(SnapTag::kAgentTick),
                      [this] { agentTick(); });
    }
    scheduleFirstArrivals();
    if (injector_)
        injector_->start();
}

void
ServerSim::advanceRun(hh::sim::Cycles until)
{
    // The hard horizon guards against pathological configurations.
    sim_.run(std::min(until, horizon()));
}

ServerResults
ServerSim::finishRun()
{
    // A final sweep so end-state invariants ("final", leak checks)
    // run even when the last event lands between audit periods.
    if (auditor_)
        auditor_->audit(sim_.now());
    if (!done_) {
        if (auditor_ && auditor_->violationCount() > 0 &&
            cfg_.auditStopOnViolation) {
            hh::sim::warn("ServerSim: run aborted by the invariant "
                          "auditor at t=", sim_.now(), " cycles");
        } else {
            hh::sim::warn("ServerSim: horizon reached before all "
                          "requests completed");
        }
        end_time_ = sim_.now();
    }
    if (sampler_)
        sampler_->stop();
    if (injector_)
        injector_->stop();
    stopTelemetry();
    stopPolicy();
    stopLease();
    // Batch slices still in flight when all requests completed drain
    // after the all-done stop; one more row at the drain time captures
    // that tail, so the fleet timeline's deltas sum exactly to the
    // run totals (the same-time guard makes this a no-op otherwise).
    if (telemetry_)
        telemetry_->record(telemetryCounters());

    ServerResults res;
    const Cycles end = end_time_ ? end_time_ : sim_.now();
    for (auto &v : vms_) {
        // Graph mode leaves unused Primary slots without a service;
        // non-front tier VMs also record nothing here (the engine
        // owns their latency accounting).
        if (!v.desc.isPrimary() || !v.service)
            continue;
        ServiceResult r;
        r.name = v.service->spec().name;
        r.count = v.latencies.count();
        r.meanMs = v.latencies.mean();
        r.p50Ms = v.latencies.p50();
        r.p99Ms = v.latencies.p99();
        if (v.breakdownCount > 0) {
            const double n = static_cast<double>(v.breakdownCount);
            r.queueMs = hh::sim::cyclesToMs(
                            static_cast<Cycles>(0) +
                            v.breakdownSum.queueing) / n;
            r.reassignMs =
                hh::sim::cyclesToMs(v.breakdownSum.reassign) / n;
            r.flushMs = hh::sim::cyclesToMs(v.breakdownSum.flush) / n;
            r.execMs =
                hh::sim::cyclesToMs(v.breakdownSum.execution) / n;
            r.ioMs = hh::sim::cyclesToMs(v.breakdownSum.io) / n;
        }
        res.services.push_back(std::move(r));
    }

    res.elapsedSec = hh::sim::cyclesToSec(end);
    res.batchTasksCompleted = batch_tasks_done_;
    res.batchThroughput =
        res.elapsedSec > 0
            ? static_cast<double>(batch_tasks_done_) / res.elapsedSec
            : 0;

    double busy = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_misses = 0;
    for (const auto &core : cores_) {
        busy += static_cast<double>(core->busy().busyCycles(end));
        if (core->boundVm() != harvest_vm_) {
            l2_hits += core->hierarchy().l2().hits();
            l2_misses += core->hierarchy().l2().misses();
        }
    }
    res.avgBusyCores = end > 0 ? busy / static_cast<double>(end) : 0;
    res.utilization =
        res.avgBusyCores / static_cast<double>(cfg_.cores);
    res.coreLoans = loans_.value();
    res.coreReclaims = reclaims_.value();
    res.primaryL2HitRate =
        (l2_hits + l2_misses) > 0
            ? static_cast<double>(l2_hits) /
                  static_cast<double>(l2_hits + l2_misses)
            : 0;

    if (tracer_) {
        res.traceEvents = tracer_->events();
        res.traceDropped = tracer_->dropped();
        res.traceOpenSpans = tracer_->openSpans();
        res.traceUnbalanced = tracer_->unbalancedCloses();
    }
    if (cfg_.metricsEnabled) {
        res.metricsFinal = registry_.snapshot();
        if (sampler_)
            res.metricSeries = sampler_->takeSeries();
    }
    if (auditor_) {
        res.auditsRun = auditor_->auditsRun();
        res.auditViolations = auditor_->violationCount();
        res.auditReports = auditor_->violations();
        for (std::size_t i = 0;
             i < res.auditReports.size() && i < 5; ++i) {
            const auto &v = res.auditReports[i];
            hh::sim::warn("invariant violation [", v.component,
                          "] at t=", v.time, ": ", v.message);
        }
    }
    if (injector_)
        res.faultsInjected = injector_->actionsFired();

    // Harvest-economics payload: always-on tap totals plus, when the
    // telemetry plane is enabled, the per-epoch observation rows.
    res.telemetry.enabled = cfg_.telemetryEnabled;
    res.telemetry.reclaimHist = reclaim_hist_.counts();
    res.telemetry.latencyHist = latency_hist_us_.counts();
    res.telemetry.reclaims = reclaim_hist_.totalCount();
    res.telemetry.batchLoaned = batch_tasks_loaned_;
    res.telemetry.batchNative =
        batch_tasks_done_ - batch_tasks_loaned_;
    std::uint64_t harvested = 0;
    for (const std::uint64_t c : vm_lent_cycles_)
        harvested += c;
    for (unsigned c = 0; c < cores_.size(); ++c) {
        // Loans still out at run end count up to the end time.
        if (core_loan_start_[c] != kNotLent &&
            end > core_loan_start_[c])
            harvested += end - core_loan_start_[c];
    }
    res.telemetry.harvestedCycles = harvested;
    res.telemetry.endTime = end;
    if (lease_mgr_) {
        res.telemetry.leaseGrants = lease_mgr_->grants();
        res.telemetry.leaseRecalls = lease_mgr_->recalls();
        res.telemetry.leaseExpiries = lease_mgr_->expiries();
        res.telemetry.leaseFlushedLines = lease_mgr_->flushedLines();
        res.telemetry.leaseWayCycles = lease_mgr_->wayCycles(end);
    }
    if (telemetry_)
        res.telemetry.rows = telemetry_->takeRows();
    return res;
}

hh::sim::Simulator::Callback
ServerSim::rearmEvent(const SnapTag &t)
{
    switch (t.kind) {
    case SnapTag::kArrival: {
        const auto vm = static_cast<std::uint32_t>(t.a);
        return [this, vm] { onArrival(vm); };
    }
    case SnapTag::kExecSegment: {
        const auto core = static_cast<unsigned>(t.a);
        const std::uint64_t reqId = t.b;
        return [this, core, reqId] { executeSegment(core, reqId); };
    }
    case SnapTag::kSegmentDone: {
        const auto core = static_cast<unsigned>(t.a);
        const std::uint64_t reqId = t.b;
        return [this, core, reqId] { onSegmentDone(core, reqId); };
    }
    case SnapTag::kIoResponse: {
        const auto vm = static_cast<std::uint32_t>(t.a);
        const std::uint64_t reqId = t.b;
        return [this, vm, reqId] { deliverIoResponse(vm, reqId); };
    }
    case SnapTag::kLendDone: {
        const auto core = static_cast<unsigned>(t.a);
        return [this, core] { onLendDone(core); };
    }
    case SnapTag::kLendDoneRace: {
        const auto core = static_cast<unsigned>(t.a);
        return [this, core] { onLendDoneRace(core); };
    }
    case SnapTag::kHarvestSliceDone: {
        const auto core = static_cast<unsigned>(t.a);
        return [this, core] { onHarvestSliceDone(core); };
    }
    case SnapTag::kReclaimDone: {
        const auto core = static_cast<unsigned>(t.a);
        const auto vm = static_cast<std::uint32_t>(t.b);
        const Cycles reassign = t.c;
        const Cycles flush = t.d;
        return [this, core, vm, reassign, flush] {
            onReclaimDone(core, vm, reassign, flush);
        };
    }
    case SnapTag::kAgentTick:
        return [this] { agentTick(); };
    case SnapTag::kCoreIdle: {
        const auto core = static_cast<unsigned>(t.a);
        return [this, core] { onCoreIdle(core); };
    }
    case SnapTag::kNicDeliver:
        return nic_->rearmDelivery(
            hh::net::Packet::fromDeliveryTag(t));
    case SnapTag::kGraphWireArrive: {
        // A cross-server RPC still on the wire: the tag packs the
        // whole packet, so replaying Nic::receive needs no engine
        // state at all.
        const auto pkt = hh::net::Packet::fromDeliveryTag(t);
        return [this, pkt] { nic_->receive(pkt); };
    }
    case SnapTag::kSamplerTick:
        return sampler_ ? sampler_->rearmTick()
                        : hh::sim::Simulator::Callback{};
    case SnapTag::kFaultTick:
        return injector_ ? injector_->rearmTick()
                         : hh::sim::Simulator::Callback{};
    case SnapTag::kTelemetryTick:
        return telemetry_ ? rearmTelemetryTick()
                          : hh::sim::Simulator::Callback{};
    case SnapTag::kPolicyTick:
        return policy_view_ ? rearmPolicyTick()
                            : hh::sim::Simulator::Callback{};
    case SnapTag::kLeaseTick:
        return lease_mgr_ ? rearmLeaseTick()
                          : hh::sim::Simulator::Callback{};
    default:
        // Empty: the event queue turns this into a hard error naming
        // the tag, which is how unknown kinds surface.
        return {};
    }
}

void
ServerSim::serializeState(hh::snap::Archive &ar)
{
    // The sampler is created lazily in startRun(); a freshly
    // constructed ServerSim being restored must have it before the
    // event queue re-arms a pending kSamplerTick. No start() — the
    // pending tick is restored with the queue, the collected rows in
    // section 0x14 below.
    if (ar.loading() && cfg_.metricsEnabled && !sampler_) {
        sampler_ = std::make_unique<hh::stats::MetricSampler>(
            sim_, registry_, cfg_.metricsPeriod);
    }
    // Same lazy construction for the telemetry view: a pending
    // kTelemetryTick must find its re-arm target. State arrives in
    // section 0x15 below.
    if (ar.loading() && cfg_.telemetryEnabled && !telemetry_)
        telemetry_ = std::make_unique<hh::stats::ObservationView>();
    // And for the policy's epoch view (pending kPolicyTick re-arm
    // target); policy state arrives in section 0x16 below.
    if (ar.loading() && policy_ && policy_->wantsEpochTick() &&
        !policy_view_)
        policy_view_ = std::make_unique<hh::stats::ObservationView>();

    ar.section(0x10, "simulator");
    sim_.serialize(ar,
                   [this](const SnapTag &t) { return rearmEvent(t); });
    if (!ar.ok())
        return;

    ar.section(0x11, "components");
    ar.io(rng_);
    ar.io(dram_);
    ar.io(*nic_);
    ctrl_->serialize(ar);
    ar.io(*ctxmem_);
    ar.io(*hyp_);
    ar.io(sw_policy_);
    if (!ar.ok())
        return;

    ar.section(0x12, "vms");
    for (auto &v : vms_) {
        ar.io(*v.l3);
        // Graph mode leaves unused slots without a service and
        // non-front tiers without a loadgen; presence is decided by
        // the placement plan at construction, so it always matches.
        if (v.desc.isPrimary() && v.service)
            ar.io(*v.service);
        if (v.desc.isPrimary() && v.loadgen)
            ar.io(*v.loadgen);
        ar.io(v.arrivalsRemaining);
        ar.io(v.completed);
        ar.io(v.warmupSkip);
        ar.io(v.latencies);
        ar.io(v.breakdownSum);
        ar.io(v.breakdownCount);
    }
    ar.io(*batch_);
    ar.io(harvest_queue_);
    ar.io(next_slice_id_);
    ar.io(batch_tasks_done_);
    if (!ar.ok())
        return;

    ar.section(0x13, "cores");
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        ar.io(*cores_[c]);
        // The hierarchy's L3 binding is a raw pointer into vms_;
        // persist *which* partition it pointed at (the harvest VM's
        // during lent execution, the bound VM's otherwise) and rebind
        // on load, mirroring configureCoreForHarvest/Primary.
        bool harvest_l3 = false;
        if (ar.saving())
            harvest_l3 = cores_[c]->hierarchy().l3Partition() ==
                         vms_[harvest_vm_].l3.get();
        ar.io(harvest_l3);
        if (ar.loading()) {
            cores_[c]->hierarchy().setL3(
                harvest_l3
                    ? vms_[harvest_vm_].l3.get()
                    : vms_[cores_[c]->boundVm()].l3.get());
        }
    }
    ar.io(core_ctx_);
    requests_.serialize(ar);
    ar.io(next_request_id_);
    ar.io(anchor_);
    ar.io(pending_reclaims_);
    ar.io(last_reclaim_at_);
    ar.io(ghost_vms_);
    ar.io(next_ghost_);
    ar.io(ewma_block_cycles_);
    ar.io(loans_);
    ar.io(reclaims_);
    ar.io(done_);
    ar.io(end_time_);
    if (!ar.ok())
        return;

    // Observability presence depends on env toggles (HH_TRACE,
    // HH_METRICS, HH_AUDIT) that are not part of the SystemConfig
    // fingerprint, so the mismatch check lives here.
    ar.section(0x14, "observability");
    bool have_tracer = tracer_ != nullptr;
    bool have_sampler = sampler_ != nullptr;
    bool have_auditor = auditor_ != nullptr;
    bool have_injector = injector_ != nullptr;
    ar.io(have_tracer);
    ar.io(have_sampler);
    ar.io(have_auditor);
    ar.io(have_injector);
    if (ar.loading() &&
        (have_tracer != (tracer_ != nullptr) ||
         have_sampler != (sampler_ != nullptr) ||
         have_auditor != (auditor_ != nullptr) ||
         have_injector != (injector_ != nullptr))) {
        ar.fail("checkpoint observability set (tracer/sampler/"
                "auditor/injector) does not match this run; restore "
                "with the same HH_TRACE/HH_METRICS/HH_AUDIT and fault "
                "settings the saving run used");
        return;
    }
    if (tracer_)
        ar.io(*tracer_);
    if (sampler_)
        ar.io(*sampler_);
    if (auditor_)
        ar.io(*auditor_);
    if (injector_)
        injector_->serialize(ar);
    if (!ar.ok())
        return;

    // Telemetry plane: the always-on economics taps, then (behind a
    // presence flag, like section 0x14) the per-epoch view and its
    // tick state. telemetryEnabled is part of the config fingerprint,
    // so cluster-level restores reject mismatches before reaching
    // this check.
    ar.section(0x15, "telemetry");
    ar.io(reclaim_hist_);
    ar.io(latency_hist_us_);
    ar.io(vm_lent_cycles_);
    ar.io(vm_reclaims_);
    ar.io(vm_reclaim_cycles_);
    ar.io(core_loan_start_);
    ar.io(batch_tasks_loaned_);
    bool have_telemetry = telemetry_ != nullptr;
    ar.io(have_telemetry);
    if (ar.loading() && have_telemetry != (telemetry_ != nullptr)) {
        ar.fail("checkpoint telemetry state does not match this run; "
                "restore with the same telemetryEnabled setting the "
                "saving run used");
        return;
    }
    if (telemetry_) {
        ar.io(telemetry_running_);
        ar.io(telemetry_pending_);
        ar.io(*telemetry_);
    }
    if (!ar.ok())
        return;

    // Harvest policy (PR 8). cfg_.policy is part of the config
    // fingerprint, so cluster-level restores reject mismatches
    // before reaching this check; the presence flag guards direct
    // saveState/loadState users the same way section 0x15 does.
    ar.section(0x16, "policy");
    bool have_policy = policy_ != nullptr;
    ar.io(have_policy);
    if (ar.loading() && have_policy != (policy_ != nullptr)) {
        ar.fail("checkpoint harvest-policy state does not match this "
                "run; restore with the same policy= setting the "
                "saving run used");
        return;
    }
    if (policy_) {
        policy_->serialize(ar);
        ar.io(policy_applied_fraction_);
        // The repartitioned way masks themselves ride sections 0x11
        // (QM masks) and 0x13 (core hierarchies), so nothing is
        // re-applied here; policy_applied_fraction_ keeps the
        // change-detection in applyPolicyDecisions coherent.
        if (policy_->wantsEpochTick()) {
            ar.io(policy_running_);
            ar.io(policy_pending_);
            ar.io(*policy_view_);
        }
    }
    if (!ar.ok())
        return;

    // Service-graph engine (src/svc/ RpcEngine). The graph spec rides
    // the config fingerprint, so cluster-level restores reject shape
    // mismatches early; the presence flag guards direct users.
    ar.section(0x17, "svc");
    bool have_graph = graph_hooks_ != nullptr;
    ar.io(have_graph);
    if (ar.loading() && have_graph != (graph_hooks_ != nullptr)) {
        ar.fail("checkpoint service-graph state does not match this "
                "run; restore a graph checkpoint into a graph-mode "
                "fleet with the same spec");
        return;
    }
    if (graph_hooks_)
        graph_hooks_->serialize(ar);
    if (!ar.ok())
        return;

    // Cache-capacity leasing (src/lease/). cacheLendEnabled rides the
    // config fingerprint, so cluster-level restores reject mismatches
    // early; the presence flag guards direct saveState/loadState
    // users like sections 0x15-0x17 do. The lender L3 harvest masks
    // and the lenders' L2 bonus masks ride sections 0x12/0x13 with
    // their arrays; the core->lender overflow bindings are derived
    // state recomputed below.
    ar.section(0x18, "lease");
    bool have_lease = lease_mgr_ != nullptr;
    ar.io(have_lease);
    if (ar.loading() && have_lease != (lease_mgr_ != nullptr)) {
        ar.fail("checkpoint cache-lease state does not match this "
                "run; restore with the same cacheLendEnabled setting "
                "the saving run used");
        return;
    }
    if (lease_mgr_) {
        lease_mgr_->serialize(ar);
        ar.io(lease_running_);
        ar.io(lease_pending_);
        if (ar.loading())
            rebindLeaseOverflow();
    }
}

} // namespace hh::cluster
