#include "cluster/telemetry_hub.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "cluster/checkpoint.h"
#include "sim/time.h"
#include "stats/histogram.h"

namespace hh::cluster {

namespace {

/**
 * FNV-1a over a byte string. Same polynomial as the experiment
 * ledger's row checksum; duplicated here because hh_cluster cannot
 * link hh_exp (the dependency points the other way).
 */
std::uint64_t
fnv64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscapeLocal(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Deterministic shortest-ish double rendering, matching the CSVs. */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

/** Close a JSONL row: append the CRC of everything emitted so far. */
void
sealRow(std::ostringstream &os, std::string row)
{
    row += ",\"crc\":" + std::to_string(fnv64(row)) + "}\n";
    os << row;
}

void
mergeCounts(std::vector<std::uint64_t> &into,
            const std::vector<std::uint64_t> &from)
{
    if (into.size() < from.size())
        into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i)
        into[i] += from[i];
}

} // namespace

TelemetryHub::TelemetryHub(const SystemConfig &cfg) : cfg_(cfg) {}

void
TelemetryHub::addServer(ServerTelemetry t)
{
    std::uint64_t prevT = 0;
    for (const auto &row : t.rows) {
        if (row.epoch == 0)
            continue;
        const std::size_t i = row.epoch - 1;
        if (timeline_.size() <= i) {
            timeline_.resize(i + 1);
            epochLatency_.resize(i + 1);
            epochBudget_.resize(i + 1, 0);
            timeline_[i].epoch = row.epoch;
        }
        FleetEpochRow &f = timeline_[i];
        f.t = std::max(f.t, row.t);
        ++f.serversReporting;
        f.batchLoanedDelta += row.batchLoanedDelta;
        f.batchNativeDelta += row.batchNativeDelta;
        f.harvestedCyclesDelta += row.harvestedCyclesDelta;
        f.reclaimsDelta += row.reclaimsDelta;
        for (const auto &vm : row.vms) {
            f.leasedWays += vm.leasedWays;
            f.leaseOccupancyDelta += vm.leaseOccupancyDelta;
        }
        f.leaseWayCyclesDelta += row.leaseWayCyclesDelta;
        epochBudget_[i] +=
            (row.t - prevT) * static_cast<std::uint64_t>(cfg_.cores);
        mergeCounts(epochLatency_[i], row.latencyHistDelta);
        prevT = row.t;
    }
    servers_.push_back(std::move(t));

    // Recompute the derived per-epoch rates; cheap relative to the
    // simulation and keeps timeline() a plain accessor.
    for (std::size_t i = 0; i < timeline_.size(); ++i) {
        FleetEpochRow &f = timeline_[i];
        f.harvestIntensity =
            epochBudget_[i] == 0
                ? 0
                : static_cast<double>(f.harvestedCyclesDelta) /
                      static_cast<double>(epochBudget_[i]);
        f.p99Ms =
            hh::stats::logBucketPercentile(epochLatency_[i], 99.0) /
            1000.0;
    }
}

TelemetrySummary
TelemetryHub::summary() const
{
    TelemetrySummary s;
    s.servers = static_cast<unsigned>(servers_.size());
    s.coresPerServer = cfg_.cores;
    std::uint64_t end = 0, harvested = 0, wayCycles = 0;
    std::vector<std::uint64_t> reclaimHist, latencyHist;
    for (const auto &t : servers_) {
        end = std::max(end, t.endTime);
        harvested += t.harvestedCycles;
        s.batchLoaned += t.batchLoaned;
        s.batchNative += t.batchNative;
        s.reclaims += t.reclaims;
        s.leaseGrants += t.leaseGrants;
        s.leaseRecalls += t.leaseRecalls;
        s.leaseExpiries += t.leaseExpiries;
        s.leaseFlushedLines += t.leaseFlushedLines;
        wayCycles += t.leaseWayCycles;
        mergeCounts(reclaimHist, t.reclaimHist);
        mergeCounts(latencyHist, t.latencyHist);
    }
    s.leaseWaySeconds = hh::sim::cyclesToSec(wayCycles);
    s.horizonSec = hh::sim::cyclesToSec(end);
    s.harvestedCoreSeconds = hh::sim::cyclesToSec(harvested);
    s.batchPerLentCoreSecond =
        s.harvestedCoreSeconds == 0
            ? 0
            : static_cast<double>(s.batchLoaned) /
                  s.harvestedCoreSeconds;
    s.reclaimP50Us = hh::sim::cyclesToUs(static_cast<hh::sim::Cycles>(
        hh::stats::logBucketPercentile(reclaimHist, 50.0)));
    s.reclaimP99Us = hh::sim::cyclesToUs(static_cast<hh::sim::Cycles>(
        hh::stats::logBucketPercentile(reclaimHist, 99.0)));
    s.latencyP99Ms =
        hh::stats::logBucketPercentile(latencyHist, 99.0) / 1000.0;
    return s;
}

std::string
TelemetryHub::jsonl() const
{
    std::ostringstream os;
    {
        std::ostringstream row;
        row << "{\"kind\":\"header\",\"version\":1,\"servers\":"
            << servers_.size() << ",\"cores\":" << cfg_.cores
            << ",\"period_cycles\":" << cfg_.telemetryPeriod
            << ",\"fp\":\"" << jsonEscapeLocal(configFingerprint(cfg_))
            << "\"";
        sealRow(os, row.str());
    }
    for (const auto &f : timeline_) {
        std::ostringstream row;
        row << "{\"kind\":\"epoch\",\"epoch\":" << f.epoch
            << ",\"t_ms\":" << num(hh::sim::cyclesToMs(f.t))
            << ",\"servers\":" << f.serversReporting
            << ",\"intensity\":" << num(f.harvestIntensity)
            << ",\"p99_ms\":" << num(f.p99Ms)
            << ",\"batch_loaned\":" << f.batchLoanedDelta
            << ",\"batch_native\":" << f.batchNativeDelta
            << ",\"harvested_cycles\":" << f.harvestedCyclesDelta
            << ",\"reclaims\":" << f.reclaimsDelta
            << ",\"lease_ways\":" << f.leasedWays
            << ",\"lease_occ_delta\":" << f.leaseOccupancyDelta
            << ",\"lease_way_cycles\":" << f.leaseWayCyclesDelta;
        sealRow(os, row.str());
    }
    for (std::size_t srv = 0; srv < servers_.size(); ++srv) {
        for (const auto &r : servers_[srv].rows) {
            for (const auto &vm : r.vms) {
                std::ostringstream row;
                row << "{\"kind\":\"vm\",\"server\":" << srv
                    << ",\"epoch\":" << r.epoch << ",\"vm\":"
                    << vm.vm << ",\"util\":" << num(vm.coreUtil)
                    << ",\"mpki\":" << num(vm.mpki) << ",\"occ\":"
                    << num(vm.cacheOccupancy) << ",\"rq_ready\":"
                    << vm.rqReady << ",\"rq_occ\":" << vm.rqOccupancy
                    << ",\"rq_over\":" << vm.rqOverflow
                    << ",\"cores\":" << vm.coresBound << ",\"lent\":"
                    << vm.coresLent << ",\"pending\":"
                    << vm.pendingReclaims << ",\"lent_cycles\":"
                    << vm.lentCycles << ",\"reclaims\":"
                    << vm.reclaims << ",\"reclaim_cycles\":"
                    << vm.reclaimCycles << ",\"lease_ways\":"
                    << vm.leasedWays << ",\"lease_occ_delta\":"
                    << vm.leaseOccupancyDelta;
                sealRow(os, row.str());
            }
        }
    }
    {
        const TelemetrySummary s = summary();
        std::ostringstream row;
        row << "{\"kind\":\"economics\",\"horizon_s\":"
            << num(s.horizonSec) << ",\"harvested_core_s\":"
            << num(s.harvestedCoreSeconds) << ",\"batch_loaned\":"
            << s.batchLoaned << ",\"batch_native\":" << s.batchNative
            << ",\"batch_per_lent_core_s\":"
            << num(s.batchPerLentCoreSecond) << ",\"reclaims\":"
            << s.reclaims << ",\"reclaim_p50_us\":"
            << num(s.reclaimP50Us) << ",\"reclaim_p99_us\":"
            << num(s.reclaimP99Us) << ",\"latency_p99_ms\":"
            << num(s.latencyP99Ms) << ",\"lease_grants\":"
            << s.leaseGrants << ",\"lease_recalls\":"
            << s.leaseRecalls << ",\"lease_expiries\":"
            << s.leaseExpiries << ",\"lease_flushed\":"
            << s.leaseFlushedLines << ",\"lease_way_s\":"
            << num(s.leaseWaySeconds);
        sealRow(os, row.str());
    }
    return os.str();
}

std::vector<hh::trace::CounterTrack>
TelemetryHub::counterTracks() const
{
    hh::trace::CounterTrack intensity, p99, loaned, reclaims, leased;
    intensity.name = "harvest_intensity";
    p99.name = "fleet_p99_ms";
    loaned.name = "batch_loaned_per_epoch";
    reclaims.name = "reclaims_per_epoch";
    leased.name = "leased_l3_ways";
    for (const auto &f : timeline_) {
        intensity.samples.push_back({f.t, f.harvestIntensity});
        p99.samples.push_back({f.t, f.p99Ms});
        loaned.samples.push_back(
            {f.t, static_cast<double>(f.batchLoanedDelta)});
        reclaims.samples.push_back(
            {f.t, static_cast<double>(f.reclaimsDelta)});
        leased.samples.push_back(
            {f.t, static_cast<double>(f.leasedWays)});
    }
    return {std::move(intensity), std::move(p99), std::move(loaned),
            std::move(reclaims), std::move(leased)};
}

std::string
TelemetryHub::counterTrackJson() const
{
    return hh::trace::chromeCounterJson(counterTracks());
}

std::string
TelemetryHub::report() const
{
    const TelemetrySummary s = summary();
    const double fleetCoreSec = s.horizonSec *
                                static_cast<double>(s.servers) *
                                static_cast<double>(s.coresPerServer);
    const std::uint64_t batchTotal = s.batchLoaned + s.batchNative;
    const FleetEpochRow *peakInt = nullptr, *peakP99 = nullptr;
    for (const auto &f : timeline_) {
        if (!peakInt || f.harvestIntensity > peakInt->harvestIntensity)
            peakInt = &f;
        if (!peakP99 || f.p99Ms > peakP99->p99Ms)
            peakP99 = &f;
    }

    std::ostringstream os;
    os << "Harvest telemetry report\n"
       << "========================\n"
       << "fleet: " << s.servers << " server(s) x "
       << s.coresPerServer << " cores, horizon "
       << num(s.horizonSec) << " s\n"
       << "epochs: " << timeline_.size() << " (period "
       << num(hh::sim::cyclesToMs(cfg_.telemetryPeriod)) << " ms)\n"
       << "\nHarvesting economics\n"
       << "  harvested core-seconds: " << num(s.harvestedCoreSeconds)
       << " (" << num(fleetCoreSec == 0
                          ? 0
                          : 100.0 * s.harvestedCoreSeconds /
                                fleetCoreSec)
       << "% of fleet capacity)\n"
       << "  batch tasks on lent cores: " << s.batchLoaned << " of "
       << batchTotal << " ("
       << num(batchTotal == 0 ? 0
                              : 100.0 *
                                    static_cast<double>(s.batchLoaned) /
                                    static_cast<double>(batchTotal))
       << "% of batch work)\n"
       << "  batch tasks per lent core-second: "
       << num(s.batchPerLentCoreSecond) << "\n"
       << "  reclaims: " << s.reclaims << " (p50 "
       << num(s.reclaimP50Us) << " us, p99 " << num(s.reclaimP99Us)
       << " us)\n"
       << "  fleet request P99: " << num(s.latencyP99Ms) << " ms\n";
    if (s.leaseGrants > 0) {
        os << "\nCache-lease economics\n"
           << "  leases: " << s.leaseGrants << " granted, "
           << s.leaseRecalls << " recalled, " << s.leaseExpiries
           << " expired\n"
           << "  leased way-seconds: " << num(s.leaseWaySeconds)
           << "\n"
           << "  lines flushed at handoff/return: "
           << s.leaseFlushedLines << "\n";
    }
    if (peakInt && peakP99) {
        os << "\nTimeline peaks\n"
           << "  max harvest intensity: "
           << num(peakInt->harvestIntensity) << " (epoch "
           << peakInt->epoch << ", t="
           << num(hh::sim::cyclesToMs(peakInt->t)) << " ms)\n"
           << "  max epoch P99: " << num(peakP99->p99Ms)
           << " ms (epoch " << peakP99->epoch << ", t="
           << num(hh::sim::cyclesToMs(peakP99->t)) << " ms)\n";
    }
    return os.str();
}

bool
writeTextFile(const std::string &path, const std::string &body)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    return ok;
}

} // namespace hh::cluster
