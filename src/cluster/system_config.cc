#include "cluster/system_config.h"

namespace hh::cluster {

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::NoHarvest:        return "NoHarvest";
      case SystemKind::HarvestTerm:      return "Harvest-Term";
      case SystemKind::HarvestBlock:     return "Harvest-Block";
      case SystemKind::HardHarvestTerm:  return "HardHarvest-Term";
      case SystemKind::HardHarvestBlock: return "HardHarvest-Block";
    }
    return "?";
}

SystemConfig
makeSystem(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    switch (kind) {
      case SystemKind::NoHarvest:
        cfg.harvesting = false;
        cfg.harvestOnBlock = false;
        cfg.hwSched = false;
        cfg.hwQueue = false;
        cfg.hwCtxtSwitch = false;
        cfg.partitioning = false;
        cfg.efficientFlush = false;
        cfg.repl = hh::cache::ReplKind::LRU;
        break;
      case SystemKind::HarvestTerm:
      case SystemKind::HarvestBlock:
        cfg.harvesting = true;
        cfg.harvestOnBlock = kind == SystemKind::HarvestBlock;
        cfg.hwSched = false;
        cfg.hwQueue = false;
        cfg.hwCtxtSwitch = false;
        cfg.partitioning = false;
        cfg.efficientFlush = false;
        cfg.repl = hh::cache::ReplKind::LRU;
        cfg.swImpl = hh::vm::ReassignImpl::Optimized;
        cfg.swFlushOnReassign = true;
        break;
      case SystemKind::HardHarvestTerm:
      case SystemKind::HardHarvestBlock:
        cfg.harvesting = true;
        cfg.harvestOnBlock = kind == SystemKind::HardHarvestBlock;
        cfg.hwSched = true;
        cfg.hwQueue = true;
        cfg.hwCtxtSwitch = true;
        cfg.partitioning = true;
        cfg.efficientFlush = true;
        cfg.repl = hh::cache::ReplKind::HardHarvest;
        break;
    }
    return cfg;
}

} // namespace hh::cluster
