/**
 * @file
 * Fleet-level telemetry hub: merges per-server ObservationView rows
 * into fleet time series and harvesting-economics accounting (PR 7).
 *
 * The hub is a pure post-processing step over the ServerTelemetry
 * payloads a run (or a resumed checkpoint) produced — it never touches
 * live simulation state. Everything it emits is derived only from
 * those payloads plus the SystemConfig, so its JSONL and report are
 * byte-identical for any thread-pool worker count and across
 * checkpoint save/load/resume, which the determinism tests assert.
 */

#ifndef HH_CLUSTER_TELEMETRY_HUB_H
#define HH_CLUSTER_TELEMETRY_HUB_H

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/server.h"
#include "cluster/system_config.h"
#include "trace/chrome_trace.h"

namespace hh::cluster {

/** One fleet epoch: servers merged by epoch index. */
struct FleetEpochRow
{
    std::uint64_t epoch = 0; //!< 1-based epoch index.
    std::uint64_t t = 0;     //!< Max epoch-end time across servers.
    unsigned serversReporting = 0;
    /**
     * Lent core-cycles over the epoch divided by the reporting
     * servers' total core-cycle budget for the epoch, in [0, 1].
     */
    double harvestIntensity = 0;
    /** Fleet P99 of requests completed during the epoch (ms). */
    double p99Ms = 0;
    std::uint64_t batchLoanedDelta = 0;
    std::uint64_t batchNativeDelta = 0;
    std::uint64_t harvestedCyclesDelta = 0;
    std::uint64_t reclaimsDelta = 0;
    /** @name Cache-lease signals (src/lease/) @{ */
    /** End-of-epoch L3 ways leased out, summed over servers/VMs. */
    std::uint64_t leasedWays = 0;
    /** Borrower-line occupancy change in leased ways over the epoch. */
    std::int64_t leaseOccupancyDelta = 0;
    /** Leased-way-cycles lent out during the epoch. */
    std::uint64_t leaseWayCyclesDelta = 0;
    /** @} */
};

/** Fleet-level harvesting economics over the whole run. */
struct TelemetrySummary
{
    unsigned servers = 0;
    unsigned coresPerServer = 0;
    double horizonSec = 0; //!< Max server end time.
    /** Core-seconds the Harvest VMs ran on borrowed Primary cores. */
    double harvestedCoreSeconds = 0;
    std::uint64_t batchLoaned = 0; //!< Batch tasks done on lent cores.
    std::uint64_t batchNative = 0; //!< ... on native harvest cores.
    /** Batch work absorbed per harvested core-second. */
    double batchPerLentCoreSecond = 0;
    std::uint64_t reclaims = 0;
    double reclaimP50Us = 0; //!< Fleet reclaim-latency median.
    double reclaimP99Us = 0; //!< Fleet reclaim-latency tail.
    double latencyP99Ms = 0; //!< Fleet post-warmup request P99.
    /** @name Cache-lease economics (src/lease/) @{ */
    std::uint64_t leaseGrants = 0;
    std::uint64_t leaseRecalls = 0;
    std::uint64_t leaseExpiries = 0;
    std::uint64_t leaseFlushedLines = 0;
    /** L3 way-seconds of capacity lent across the fleet. */
    double leaseWaySeconds = 0;
    /** @} */
};

/**
 * Merges per-server telemetry payloads into the fleet view.
 *
 * Feed payloads in server order (0, 1, ...); every product below is
 * then canonical. The hub deliberately excludes worker counts, host
 * names and wall-clock from its outputs — they would break the
 * any-worker-count byte-identity contract.
 */
class TelemetryHub
{
  public:
    explicit TelemetryHub(const SystemConfig &cfg);

    /** Add one server's payload; call in server order. */
    void addServer(ServerTelemetry t);

    /** Merged fleet timeline, one row per epoch index. */
    const std::vector<FleetEpochRow> &timeline() const
    {
        return timeline_;
    }

    /** Whole-run harvesting economics. */
    TelemetrySummary summary() const;

    /**
     * Append-only JSONL export: a header row, one row per fleet
     * epoch, one row per (server, epoch, VM) feature tuple, and a
     * final economics row. Every row carries a FNV-1a checksum of its
     * preceding bytes in a trailing "crc" field (ResultLedger-style).
     */
    std::string jsonl() const;

    /** Fleet time series as Chrome counter tracks. */
    std::vector<hh::trace::CounterTrack> counterTracks() const;

    /** counterTracks() rendered as a trace_event JSON document. */
    std::string counterTrackJson() const;

    /** One-page plain-text harvesting-economics report. */
    std::string report() const;

  private:
    SystemConfig cfg_;
    std::vector<ServerTelemetry> servers_;
    std::vector<FleetEpochRow> timeline_;
    /** Per-epoch merged request-latency histogram deltas (us). */
    std::vector<std::vector<std::uint64_t>> epochLatency_;
    /** Per-epoch summed core-cycle budget (epoch len x cores). */
    std::vector<std::uint64_t> epochBudget_;
};

/**
 * Write @p body to @p path; false on I/O failure. Shared by the
 * telemetry drivers for JSONL, counter-track and report files.
 */
bool writeTextFile(const std::string &path, const std::string &body);

} // namespace hh::cluster

#endif // HH_CLUSTER_TELEMETRY_HUB_H
