#include "cluster/checkpoint.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "cluster/parallel.h"
#include "sim/log.h"
#include "snapshot/archive.h"
#include "workload/batch.h"

namespace hh::cluster {

namespace {

/** Serialize one live server; throws on an archive failure. */
std::vector<std::uint8_t>
saveServer(ServerSim &sim)
{
    auto ar = hh::snap::Archive::forSave();
    sim.saveState(ar);
    if (!ar.ok())
        throw std::runtime_error("checkpoint save failed: " +
                                 ar.error());
    return ar.take();
}

/** Restore one freshly constructed server; throws on failure. */
void
loadServer(ServerSim &sim, const std::vector<std::uint8_t> &blob)
{
    auto ar = hh::snap::Archive::forLoad(blob);
    sim.loadState(ar);
    if (!ar.ok())
        throw std::runtime_error("checkpoint load failed: " +
                                 ar.error());
}

/** Comma-join the first @p servers batch application names. */
std::string
joinBatchApps(unsigned servers)
{
    const auto batch = hh::workload::batchApplications();
    std::string out;
    for (unsigned s = 0; s < servers; ++s) {
        if (s)
            out += ',';
        out += batch[s].name;
    }
    return out;
}

/** Split the manifest's comma-joined batch application names. */
std::vector<std::string>
splitBatchApps(const std::string &joined)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : joined) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Build the cluster's servers (not yet started). */
std::vector<std::unique_ptr<ServerSim>>
buildSims(const SystemConfig &cfg, unsigned servers,
          std::uint64_t seed)
{
    const auto batch = hh::workload::batchApplications();
    if (servers == 0 || servers > batch.size())
        hh::sim::fatal("cluster checkpoint: servers must be in [1, ",
                       batch.size(), "]");
    std::vector<std::unique_ptr<ServerSim>> sims;
    sims.reserve(servers);
    for (unsigned s = 0; s < servers; ++s) {
        sims.push_back(std::make_unique<ServerSim>(
            cfg, batch[s].name,
            seed + static_cast<std::uint64_t>(s)));
    }
    return sims;
}

/** Assemble and write the container for the given blobs. */
bool
writeContainer(const std::string &path, const SystemConfig &cfg,
               unsigned servers, std::uint64_t seed,
               hh::sim::Cycles savedAt,
               std::vector<std::vector<std::uint8_t>> blobs,
               std::string *error)
{
    hh::snap::CheckpointFile f;
    f.configFingerprint = configFingerprint(cfg);
    f.servers = servers;
    f.seed = seed;
    f.savedAtCycles = savedAt;
    f.batchApps = joinBatchApps(servers);
    f.blobs = std::move(blobs);
    return hh::snap::writeCheckpointFile(path, f, error);
}

bool
anyViolation(std::vector<std::unique_ptr<ServerSim>> &sims)
{
    for (auto &sim : sims) {
        const auto *aud = sim->auditor();
        if (aud && aud->violationCount() > 0)
            return true;
    }
    return false;
}

} // namespace

std::string
configFingerprint(const SystemConfig &cfg)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "kind=" << static_cast<int>(cfg.kind)
       << " harvesting=" << cfg.harvesting
       << " harvestOnBlock=" << cfg.harvestOnBlock
       << " adaptiveHarvest=" << cfg.adaptiveHarvest
       << " adaptiveBlockThreshold=" << cfg.adaptiveBlockThreshold
       << " hwEmergencyBuffer=" << cfg.hwEmergencyBuffer
       << " hwSched=" << cfg.hwSched << " hwQueue=" << cfg.hwQueue
       << " hwCtxtSwitch=" << cfg.hwCtxtSwitch
       << " partitioning=" << cfg.partitioning
       << " efficientFlush=" << cfg.efficientFlush
       << " repl=" << static_cast<int>(cfg.repl)
       << " candidateFraction=" << cfg.candidateFraction
       << " harvestWayFraction=" << cfg.harvestWayFraction
       << " swImpl=" << static_cast<int>(cfg.swImpl)
       << " swFlushOnReassign=" << cfg.swFlushOnReassign
       << " swReassignFree=" << cfg.swReassignFree
       << " harvestVmIdle=" << cfg.harvestVmIdle
       << " swCosts=" << cfg.swCosts.kvmDetachAttach << ','
       << cfg.swCosts.kvmVmContextLoad << ','
       << cfg.swCosts.optDetachAttach << ','
       << cfg.swCosts.optVmContextLoad << ','
       << cfg.swCosts.wbinvdMin << ',' << cfg.swCosts.wbinvdMax << ','
       << cfg.swCosts.wbinvdFence << ','
       << cfg.swCosts.processCtxSwitch << ','
       << cfg.swCosts.pollInterval << ',' << cfg.swCosts.queueOp
       << ',' << cfg.swCosts.lockContention
       << " waysFraction=" << cfg.waysFraction
       << " infiniteCaches=" << cfg.infiniteCaches
       << " llcMbPerCore=" << cfg.llcMbPerCore
       << " cores=" << cfg.cores
       << " primaryVms=" << cfg.primaryVms
       << " coresPerPrimary=" << cfg.coresPerPrimary
       << " traceEnabled=" << cfg.traceEnabled
       << " traceCapacity=" << cfg.traceCapacity
       << " metricsEnabled=" << cfg.metricsEnabled
       << " metricsPeriod=" << cfg.metricsPeriod
       << " telemetryEnabled=" << cfg.telemetryEnabled
       << " telemetryPeriod=" << cfg.telemetryPeriod
       << " auditEnabled=" << cfg.auditEnabled
       << " auditPeriod=" << cfg.auditPeriod
       << " auditPanic=" << cfg.auditPanic
       << " auditStopOnViolation=" << cfg.auditStopOnViolation
       << " faults=" << cfg.faults.enabled << ','
       << cfg.faults.meanPeriod << ',' << cfg.faults.startAt << ','
       << cfg.faults.actionsPerTick << ',' << cfg.faults.maxActions
       << ',' << cfg.faults.resurrectLendRace
       << " accessSampling=" << cfg.accessSampling
       << " loadScale=" << cfg.loadScale
       << " requestsPerVm=" << cfg.requestsPerVm
       << " warmupFraction=" << cfg.warmupFraction
       << " burst=" << cfg.burst.enabled << ','
       << cfg.burst.meanInterArrivalSec << ','
       << cfg.burst.meanDurationSec << ',' << cfg.burst.multiplier
       << " seed=" << cfg.seed
       << " policy=" << cfg.policy
       << " policyPeriod=" << cfg.policyPeriod
       << " policyEwmaAlpha=" << cfg.policyEwmaAlpha
       << " policyLendUtil=" << cfg.policyLendUtil
       << " policyHoldUtil=" << cfg.policyHoldUtil
       << " policyClusters=" << cfg.policyClusters
       << " policyEpsilon=" << cfg.policyEpsilon
       << " policyP99TargetMs=" << cfg.policyP99TargetMs
       << " policyP99Penalty=" << cfg.policyP99Penalty
       << " cacheLendEnabled=" << cfg.cacheLendEnabled
       << " cacheLendL2WayFraction=" << cfg.cacheLendL2WayFraction
       << " cacheLendL3Ways=" << cfg.cacheLendL3Ways
       << " cacheLendPeriod=" << cfg.cacheLendPeriod
       << " cacheLendTerm=" << cfg.cacheLendTerm
       << " graphSpec=" << cfg.graphSpec;
    return os.str();
}

bool
checkpointClusterAt(const SystemConfig &cfg, unsigned servers,
                    std::uint64_t seed, unsigned workers,
                    hh::sim::Cycles at, const std::string &path,
                    std::string *error)
{
    auto sims = buildSims(cfg, servers, seed);
    try {
        std::vector<std::vector<std::uint8_t>> blobs =
            runParallel<std::vector<std::uint8_t>>(
                servers,
                [&](std::size_t s) {
                    const hh::sim::LogTagScope tag(
                        "server" + std::to_string(s));
                    sims[s]->startRun();
                    sims[s]->advanceRun(at);
                    return saveServer(*sims[s]);
                },
                workers);
        return writeContainer(path, cfg, servers, seed, at,
                              std::move(blobs), error);
    } catch (const std::exception &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

std::optional<ClusterResults>
resumeCluster(const std::string &path, const SystemConfig &cfg,
              unsigned workers, std::string *error)
{
    hh::snap::CheckpointFile f;
    if (!hh::snap::readCheckpointFile(path, f, error))
        return std::nullopt;
    if (f.configFingerprint != configFingerprint(cfg)) {
        if (error)
            *error = "checkpoint \"" + path + "\" was taken under a "
                     "different SystemConfig than this run's; resume "
                     "with the exact configuration that saved it";
        return std::nullopt;
    }
    const auto apps = splitBatchApps(f.batchApps);
    if (apps.size() != f.servers || f.blobs.size() != f.servers) {
        if (error)
            *error = "checkpoint \"" + path +
                     "\" manifest is inconsistent (servers=" +
                     std::to_string(f.servers) + ", apps=" +
                     std::to_string(apps.size()) + ", blobs=" +
                     std::to_string(f.blobs.size()) + ")";
        return std::nullopt;
    }

    const unsigned servers = static_cast<unsigned>(f.servers);
    try {
        std::vector<ServerResults> runs =
            runParallel<ServerResults>(
                servers,
                [&](std::size_t s) {
                    const hh::sim::LogTagScope tag(
                        "server" + std::to_string(s));
                    ServerSim sim(
                        cfg, apps[s],
                        f.seed + static_cast<std::uint64_t>(s));
                    loadServer(sim, f.blobs[s]);
                    sim.advanceRun(ServerSim::horizon());
                    return sim.finishRun();
                },
                workers);
        return aggregateClusterResults(cfg, servers, std::move(runs));
    } catch (const std::exception &e) {
        if (error)
            *error = e.what();
        return std::nullopt;
    }
}

CheckpointedRun
runClusterCheckpointed(const SystemConfig &cfg, unsigned servers,
                       std::uint64_t seed, unsigned workers,
                       hh::sim::Cycles every, const std::string &path)
{
    if (every == 0)
        hh::sim::fatal("runClusterCheckpointed: checkpoint period "
                       "must be > 0");
    auto sims = buildSims(cfg, servers, seed);
    for (auto &sim : sims)
        sim->startRun();

    CheckpointedRun out;
    const hh::sim::Cycles horizon = ServerSim::horizon();

    // The state of the last violation-free epoch; seeded with the
    // post-startRun state so even a first-epoch violation has a
    // clean predecessor to dump.
    std::vector<std::vector<std::uint8_t>> prev_blobs;
    hh::sim::Cycles prev_at = 0;
    for (auto &sim : sims)
        prev_blobs.push_back(saveServer(*sim));

    bool violated = false;
    for (hh::sim::Cycles t = every;; t += every) {
        const hh::sim::Cycles target = std::min(t, horizon);
        runParallel<int>(
            servers,
            [&](std::size_t s) {
                const hh::sim::LogTagScope tag(
                    "server" + std::to_string(s));
                // Never advance a server the auditor stopped: the
                // simulator's stop latch clears when run() returns,
                // and resuming would execute events on a corrupted
                // server.
                const auto *aud = sims[s]->auditor();
                if (cfg.auditStopOnViolation && aud &&
                    aud->violationCount() > 0)
                    return 0;
                sims[s]->advanceRun(target);
                return 0;
            },
            workers);

        const bool now_violated = anyViolation(sims);
        if (now_violated && !violated) {
            violated = true;
            out.preViolationPath = path + ".previolation";
            std::string err;
            if (writeContainer(out.preViolationPath, cfg, servers,
                               seed, prev_at, std::move(prev_blobs),
                               &err)) {
                out.preViolationDumped = true;
            } else {
                hh::sim::warn("runClusterCheckpointed: pre-violation "
                              "dump failed: ", err);
            }
            prev_blobs.clear();
        }

        bool all_done = true;
        for (const auto &sim : sims) {
            const auto *aud = sim->auditor();
            const bool stopped = cfg.auditStopOnViolation && aud &&
                                 aud->violationCount() > 0;
            if (!sim->finished() && !stopped)
                all_done = false;
        }

        if (!now_violated) {
            std::vector<std::vector<std::uint8_t>> blobs;
            for (auto &sim : sims)
                blobs.push_back(saveServer(*sim));
            prev_blobs = blobs; // keep a copy for the dump path
            prev_at = target;
            std::string err;
            if (writeContainer(path, cfg, servers, seed, target,
                               std::move(blobs), &err)) {
                ++out.checkpointsWritten;
            } else {
                hh::sim::warn("runClusterCheckpointed: checkpoint "
                              "write failed: ", err);
            }
        }

        if (all_done || target >= horizon)
            break;
    }

    std::vector<ServerResults> runs = runParallel<ServerResults>(
        servers,
        [&](std::size_t s) {
            const hh::sim::LogTagScope tag("server" +
                                           std::to_string(s));
            // Drain to the horizon before finishing: a plain run does
            // not stop at the epoch boundary when the last request
            // completes — in-flight harvest slices past end_time_
            // still execute (and count). Handlers bail once done_ is
            // set, so this only replays that natural drain. Servers
            // the auditor stopped stay stopped.
            const auto *aud = sims[s]->auditor();
            if (!(cfg.auditStopOnViolation && aud &&
                  aud->violationCount() > 0))
                sims[s]->advanceRun(ServerSim::horizon());
            return sims[s]->finishRun();
        },
        workers);
    out.results =
        aggregateClusterResults(cfg, servers, std::move(runs));
    return out;
}

ViolationWindow
narrowViolationWindow(const SystemConfig &cfg,
                      const std::string &batchApp, std::uint64_t seed,
                      hh::sim::Cycles resolution)
{
    ViolationWindow w;
    if (resolution == 0)
        resolution = 1;

    // Probe run to the end to find the first violation.
    ServerSim probe(cfg, batchApp, seed);
    if (!probe.auditor())
        return w; // auditing disabled: nothing to bisect
    probe.startRun();
    std::vector<std::uint8_t> lo_bytes = saveServer(probe);
    probe.advanceRun(ServerSim::horizon());
    ++w.probes;
    const auto *aud = probe.auditor();
    if (aud->violationCount() == 0)
        return w;
    w.found = true;
    w.lo = 0;
    w.hi = aud->violations().front().time;
    w.component = aud->violations().front().component;
    w.message = aud->violations().front().message;

    while (w.hi - w.lo > resolution) {
        const hh::sim::Cycles mid = w.lo + (w.hi - w.lo) / 2;
        ServerSim sim(cfg, batchApp, seed);
        loadServer(sim, lo_bytes);
        sim.advanceRun(mid);
        ++w.probes;
        const auto *a = sim.auditor();
        if (a && a->violationCount() > 0) {
            // Reproduced early: the report's own time is an even
            // tighter upper bound than mid.
            w.hi = a->violations().front().time;
        } else {
            // Clean through mid (even if the last event fell short of
            // it, no event in (lo, mid] can violate), so the window
            // shrinks from below and the snapshot moves forward.
            w.lo = mid;
            lo_bytes = saveServer(sim);
        }
    }
    w.loState = std::move(lo_bytes);
    return w;
}

} // namespace hh::cluster
