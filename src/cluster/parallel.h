/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * Cluster experiments and figure sweeps are embarrassingly parallel:
 * every task is an independent simulation with its own seed and its
 * own `Simulator` instance (no shared mutable state — see
 * docs/PERFORMANCE.md). `runParallel()` fans tasks out over a
 * ThreadPool and collects results *by index*, so the output is
 * byte-identical to the sequential loop regardless of worker count
 * or completion order.
 */

#ifndef HH_CLUSTER_PARALLEL_H
#define HH_CLUSTER_PARALLEL_H

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/thread_pool.h"

namespace hh::cluster {

/**
 * Resolve a requested worker count against the task count.
 *
 * @param workers Requested workers; 0 means ThreadPool default
 *                (`HH_THREADS` env or hardware concurrency).
 * @param tasks   Number of independent tasks.
 */
inline unsigned
resolveWorkers(unsigned workers, std::size_t tasks)
{
    if (workers == 0)
        workers = hh::sim::ThreadPool::defaultWorkers();
    return static_cast<unsigned>(
        std::min<std::size_t>(workers, std::max<std::size_t>(tasks, 1)));
}

/**
 * Evaluate `fn(0) .. fn(n-1)` and return the results in index order.
 *
 * @tparam Result Element type of the returned vector; `fn(i)` must be
 *                convertible to it. Must be default-constructible.
 * @param n       Number of tasks.
 * @param fn      Task body; called exactly once per index. With more
 *                than one worker, invocations run concurrently and
 *                must not share mutable state.
 * @param workers Worker threads (0 = auto). With 1 worker the tasks
 *                run sequentially on the calling thread, in order.
 * @return results[i] == fn(i), independent of worker count.
 *
 * Exceptions thrown by fn propagate (the first one, for parallel
 * runs); remaining tasks still complete.
 */
template <typename Result, typename Fn>
std::vector<Result>
runParallel(std::size_t n, Fn &&fn, unsigned workers = 0)
{
    std::vector<Result> results(n);
    if (n == 0)
        return results;
    workers = resolveWorkers(workers, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            results[i] = fn(i);
        return results;
    }
    hh::sim::ThreadPool pool(workers);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&results, &fn, i] { results[i] = fn(i); });
    }
    pool.wait();
    return results;
}

} // namespace hh::cluster

#endif // HH_CLUSTER_PARALLEL_H
