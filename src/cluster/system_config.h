/**
 * @file
 * Configurations of the five evaluated architectures (§5) plus the
 * ablation knobs of Figures 12, 13 and 15 and the motivation-study
 * variants of Figures 4 and 5.
 */

#ifndef HH_CLUSTER_SYSTEM_CONFIG_H
#define HH_CLUSTER_SYSTEM_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "cache/config.h"
#include "check/fault_inject.h"
#include "vm/hypervisor.h"
#include "workload/loadgen.h"

namespace hh::cluster {

/** The five evaluated systems. */
enum class SystemKind
{
    NoHarvest,
    HarvestTerm,
    HarvestBlock,
    HardHarvestTerm,
    HardHarvestBlock,
};

/** Printable system name matching the paper's figures. */
const char *systemName(SystemKind kind);

/**
 * Full configuration of one simulated server/system.
 */
struct SystemConfig
{
    SystemKind kind = SystemKind::HardHarvestBlock;

    /** @name Harvesting behaviour @{ */
    bool harvesting = true;      //!< Lend idle Primary cores at all.
    bool harvestOnBlock = true;  //!< Also lend cores blocked on I/O.

    /**
     * Future-work extension (§4.1.5): adaptively fall back from
     * harvest-on-block to harvest-on-termination for VMs whose
     * requests spend only a very short time blocked on I/O.
     */
    bool adaptiveHarvest = false;
    /** Minimum EWMA blocked time for block-harvesting to pay off. */
    hh::sim::Cycles adaptiveBlockThreshold = hh::sim::usToCycles(60);

    /**
     * Future-work extension (§4.1.5): keep a buffer of idle cores
     * per Primary VM that hardware harvesting never lends, absorbing
     * bursts without even the (cheap) hardware reclaim.
     */
    unsigned hwEmergencyBuffer = 0;
    /** @} */

    /** @name Hardware (HardHarvest) features / ablation flags @{ */
    bool hwSched = true;      //!< QM notification vs software polling.
    bool hwQueue = true;      //!< SRAM RQ vs memory-mapped queues.
    bool hwCtxtSwitch = true; //!< Request Context Memory save/restore.
    bool partitioning = true; //!< Harvest/non-harvest way regions.
    bool efficientFlush = true; //!< 1000-cycle region flush vs wbinvd.
    hh::cache::ReplKind repl = hh::cache::ReplKind::HardHarvest;
    double candidateFraction = 0.75; //!< Eviction candidates M.
    double harvestWayFraction = 0.5; //!< Harvest region size.
    /** @} */

    /** @name Software-scheme parameters @{ */
    hh::vm::ReassignImpl swImpl = hh::vm::ReassignImpl::Optimized;
    bool swFlushOnReassign = true; //!< wbinvd on every core move.
    bool swReassignFree = false;   //!< Fig 5: flush cost only.
    bool harvestVmIdle = false;    //!< Fig 4: Harvest VM runs nothing.
    hh::vm::SoftwareCosts swCosts; //!< Hypervisor cost constants.
    /** @} */

    /** @name Cache scaling (sensitivity studies) @{ */
    double waysFraction = 1.0;  //!< Fig 7 way scaling.
    bool infiniteCaches = false;
    double llcMbPerCore = 2.0;  //!< Fig 18 LLC sweep.
    /** @} */

    /** @name Server shape (Table 1) @{ */
    unsigned cores = 36;
    unsigned primaryVms = 8;
    unsigned coresPerPrimary = 4;
    /** @} */

    /** @name Observability (PR 2) @{ */
    /**
     * Request-span and core-transition tracing. Off by default: the
     * tracer is then never constructed and hot paths pay only a
     * branch on a null pointer.
     */
    bool traceEnabled = false;
    /** Trace ring capacity in events (oldest overwritten beyond). */
    std::size_t traceCapacity = 1u << 17;
    /** Periodic metric time-series sampling into ServerResults. */
    bool metricsEnabled = false;
    /** Sampling cadence in cycles (1 ms at 3 GHz by default). */
    hh::sim::Cycles metricsPeriod = hh::sim::msToCycles(1.0);
    /**
     * Harvest telemetry plane (PR 7): per-epoch ObservationView rows
     * feeding the fleet-level TelemetryHub. Off by default — the view
     * is then never constructed and no epoch tick is scheduled.
     */
    bool telemetryEnabled = false;
    /** Telemetry epoch length in cycles (1 ms at 3 GHz by default). */
    hh::sim::Cycles telemetryPeriod = hh::sim::msToCycles(1.0);
    /** @} */

    /** @name Harvest policy (PR 8) @{ */
    /**
     * Harvest/reclaim policy selector (src/policy/): "static" (the
     * default — freezes the knobs above into one immutable decision
     * set, bit-identical to the legacy inlined path), "hysteresis",
     * "critical", "bandit", or "legacy" (no policy object at all;
     * kept for differential testing of the extraction).
     */
    std::string policy = "static";
    /** Policy epoch length in cycles (1 ms at 3 GHz by default). */
    hh::sim::Cycles policyPeriod = hh::sim::msToCycles(1.0);
    /** Hysteresis/critical: EWMA smoothing of epoch features. */
    double policyEwmaAlpha = 0.3;
    /** Hysteresis: lend aggressively below this EWMA utilization. */
    double policyLendUtil = 0.35;
    /**
     * Hysteresis: arm the reclaim guard band strictly above this EWMA
     * utilization (1.0, the default, disarms it — see
     * docs/POLICIES.md for the throughput/tail trade).
     */
    double policyHoldUtil = 1.0;
    /** Critical-aware: k-means cluster count. */
    unsigned policyClusters = 2;
    /** Bandit: exploration probability. */
    double policyEpsilon = 0.1;
    /** Bandit: epoch-P99 target (ms) before the penalty kicks in. */
    double policyP99TargetMs = 10.0;
    /** Bandit: penalty weight per ms of epoch P99 over target. */
    double policyP99Penalty = 1.0;
    /** @} */

    /** @name Cache-capacity harvesting (src/lease/) @{ */
    /**
     * Cross-VM cache-way leasing: idle Primary VMs lend private L2
     * ways and a slice of their L3 CAT partition to the batch VM
     * under explicit leases (grant -> use -> recall/expiry ->
     * flush-on-return). Off by default: no CacheLeaseManager is
     * constructed and no lease tick is scheduled, so existing runs
     * are bit-identical to before the subsystem existed.
     */
    bool cacheLendEnabled = false;
    /**
     * Extra L2 harvest-way fraction granted to a lender's cores while
     * its lease is active (on top of harvestWayFraction; the sum is
     * clamped so the primary region keeps at least one way).
     */
    double cacheLendL2WayFraction = 0.25;
    /** L3 partition ways leased to the batch VM (low ways first). */
    unsigned cacheLendL3Ways = 4;
    /** Lease-manager decision cadence in cycles (1 ms at 3 GHz). */
    hh::sim::Cycles cacheLendPeriod = hh::sim::msToCycles(1.0);
    /** Lease term: a grant auto-expires after this many cycles. */
    hh::sim::Cycles cacheLendTerm = hh::sim::msToCycles(4.0);
    /** @} */

    /** @name Invariant auditing / fault injection (PR 3) @{ */
    /**
     * Cross-component invariant auditing. Off by default: no Auditor
     * is constructed and the simulator's audit hook stays null, so
     * hot paths pay only an untaken branch per executed event. The
     * HH_AUDIT=1 environment variable force-enables it for any run.
     */
    bool auditEnabled = false;
    /** Executed events between audit sweeps. */
    std::uint64_t auditPeriod = 4096;
    /** Panic on the first violation instead of recording it. */
    bool auditPanic = false;
    /**
     * Abort the run (Simulator::requestStop) once a sweep reports a
     * violation: the fuzz driver then returns with the reports at
     * the offending sim-time instead of simulating a corrupted
     * server to the 600 s horizon.
     */
    bool auditStopOnViolation = false;
    /** Deterministic fault injection (fuzz tests only). */
    hh::check::FaultConfig faults;
    /** @} */

    /** @name Workload scale @{ */
    /**
     * Memory-access sampling: replay 1/N of each segment's accesses
     * and scale the measured memory stall by N. Keeps hit-rate
     * statistics while cutting simulation cost; 1 disables sampling.
     */
    unsigned accessSampling = 4;
    double loadScale = 1.0;       //!< Multiplies every arrival rate.
    unsigned requestsPerVm = 2000; //!< Arrival budget per Primary VM.
    double warmupFraction = 0.1;  //!< Requests excluded from stats.
    hh::workload::BurstConfig burst;
    std::uint64_t seed = 1;
    /** @} */

    /** @name Service-graph mode (src/svc/) @{ */
    /**
     * Canonical text of the ServiceGraphSpec driving this run, empty
     * in classic single-hop mode. Carried here (rather than in the
     * fleet layer) so the checkpoint configFingerprint covers the
     * graph shape — resuming a graph checkpoint under a different
     * topology must fail up front.
     */
    std::string graphSpec;
    /** @} */
};

/**
 * Build the canonical configuration of one of the five systems.
 */
SystemConfig makeSystem(SystemKind kind);

} // namespace hh::cluster

#endif // HH_CLUSTER_SYSTEM_CONFIG_H
