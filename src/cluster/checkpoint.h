/**
 * @file
 * Cluster-level checkpoint/restore drivers.
 *
 * Built on the snapshot subsystem (src/snapshot/, docs/SNAPSHOT.md),
 * this layer gives the benches and tests three consumers of
 * deterministic server state:
 *
 *  1. `checkpointClusterAt` / `resumeCluster` — run the cluster to a
 *     chosen simulated time, persist every server to one checkpoint
 *     file, and later resume to completion. The determinism contract
 *     is byte-identity: `run(0 -> end)` and
 *     `run(0 -> T) -> save -> load -> run(T -> end)` produce the same
 *     `ClusterResults::serialized()` text, trace JSON and audit
 *     sections, at any worker count.
 *  2. `runClusterCheckpointed` — a full run that writes a checkpoint
 *     every N cycles (the `--checkpoint-every` flag), keeping the run
 *     resumable after an interruption; on the first invariant
 *     violation it additionally dumps the last violation-free epoch
 *     to `<path>.previolation` for post-mortem replay.
 *  3. `narrowViolationWindow` — bisection over in-memory snapshots
 *     narrowing the simulated-time window that provokes a violation,
 *     so a debugging session replays microseconds instead of the
 *     full run.
 */

#ifndef HH_CLUSTER_CHECKPOINT_H
#define HH_CLUSTER_CHECKPOINT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "snapshot/file.h"

namespace hh::cluster {

/**
 * Canonical fingerprint of every SystemConfig field. Two configs
 * fingerprint equal iff a checkpoint taken under one restores
 * correctly under the other; resumeCluster() rejects mismatches with
 * a clear error instead of misinterpreting state.
 */
std::string configFingerprint(const SystemConfig &cfg);

/**
 * Aggregate per-server results into ClusterResults, in server order.
 * Shared by runCluster() and the checkpointed drivers so both paths
 * produce byte-identical serializations.
 */
ClusterResults aggregateClusterResults(const SystemConfig &cfg,
                                       unsigned servers,
                                       std::vector<ServerResults> runs);

/**
 * Run the cluster from time 0 to simulated time @p at and save every
 * server's state to @p path, then discard the simulations.
 *
 * @return false (with @p error set) on an I/O or serialization
 *         failure — e.g. a live event whose component forgot to tag
 *         it (see docs/SNAPSHOT.md).
 */
bool checkpointClusterAt(const SystemConfig &cfg, unsigned servers,
                         std::uint64_t seed, unsigned workers,
                         hh::sim::Cycles at, const std::string &path,
                         std::string *error = nullptr);

/**
 * Load @p path and run every server to completion.
 *
 * Fails (std::nullopt, @p error set) when the file is unreadable,
 * written by a different format version, or fingerprints to a
 * different SystemConfig than @p cfg; per-server blob corruption and
 * observability mismatches (e.g. restoring without the HH_AUDIT the
 * saving run had) are also reported here.
 */
std::optional<ClusterResults>
resumeCluster(const std::string &path, const SystemConfig &cfg,
              unsigned workers, std::string *error = nullptr);

/** What runClusterCheckpointed() did beyond the results. */
struct CheckpointedRun
{
    ClusterResults results;
    /** Periodic checkpoints written to the main path. */
    unsigned checkpointsWritten = 0;
    /** Set when a violation triggered a pre-violation dump. */
    bool preViolationDumped = false;
    /** The dump's path (`<path>.previolation`) when dumped. */
    std::string preViolationPath;
};

/**
 * Full cluster run that checkpoints all servers to @p path every
 * @p every cycles (overwriting — the file always holds the latest
 * violation-free epoch). When auditing is enabled and a sweep reports
 * the first violation, the previous epoch's state — the last point
 * known violation-free — is written to `<path>.previolation` so the
 * offending window can be replayed (see narrowViolationWindow()).
 */
CheckpointedRun runClusterCheckpointed(const SystemConfig &cfg,
                                       unsigned servers,
                                       std::uint64_t seed,
                                       unsigned workers,
                                       hh::sim::Cycles every,
                                       const std::string &path);

/** Result of a violation-window bisection. */
struct ViolationWindow
{
    /** False when the run never violates (lo/hi/state meaningless). */
    bool found = false;
    /** Latest known violation-free checkpoint time. */
    hh::sim::Cycles lo = 0;
    /** The first violation has fired by this time. */
    hh::sim::Cycles hi = 0;
    /** The first violation's report. */
    std::string component;
    std::string message;
    /** Server state at @p lo, loadable via ServerSim::loadState(). */
    std::vector<std::uint8_t> loState;
    /** Replays executed during the bisection (cost reporting). */
    unsigned probes = 0;
};

/**
 * Narrow the window containing a run's first invariant violation by
 * bisection: starting from [0, firstViolationTime], repeatedly resume
 * an in-memory snapshot at `lo`, advance to the midpoint, and move
 * `hi` down (violation reproduced) or `lo` up re-saving the snapshot
 * (still clean), until `hi - lo <= resolution`. Deterministic
 * snapshots make every probe replay the original schedule exactly, so
 * the window provably brackets the violation.
 *
 * Auditing must be enabled (cfg.auditEnabled or HH_AUDIT=1); returns
 * found=false otherwise, or when the run is violation-free.
 */
ViolationWindow narrowViolationWindow(const SystemConfig &cfg,
                                      const std::string &batchApp,
                                      std::uint64_t seed,
                                      hh::sim::Cycles resolution);

} // namespace hh::cluster

#endif // HH_CLUSTER_CHECKPOINT_H
