/**
 * @file
 * Cluster-level experiment drivers used by the benchmarks.
 *
 * The evaluated cluster is 8 servers, each running the same 8
 * microservices in its Primary VMs but a *different* batch
 * application in its Harvest VM (§5). Servers never communicate, so
 * the cluster is simulated as 8 independent server runs whose
 * results are aggregated.
 */

#ifndef HH_CLUSTER_EXPERIMENT_H
#define HH_CLUSTER_EXPERIMENT_H

#include <string>
#include <vector>

#include "cluster/server.h"
#include "cluster/system_config.h"
#include "trace/chrome_trace.h"

namespace hh::cluster {

/** Aggregated cluster results. */
struct ClusterResults
{
    /** Per-service results averaged across servers. */
    std::vector<ServiceResult> services;
    /** Per-batch-app throughput (tasks/sec), one per server. */
    std::vector<std::pair<std::string, double>> batchThroughput;
    double avgBusyCores = 0;
    double utilization = 0;
    std::uint64_t coreLoans = 0;
    std::uint64_t coreReclaims = 0;
    double primaryL2HitRate = 0;

    /** @name Cache-capacity leasing (src/lease/), summed @{ */
    std::uint64_t leaseGrants = 0;
    std::uint64_t leaseRecalls = 0;
    std::uint64_t leaseExpiries = 0;
    std::uint64_t leaseFlushedLines = 0;
    std::uint64_t leaseWayCycles = 0;
    /** @} */

    /** @name Observability (filled only when enabled) @{ */
    /** Per-server trace buffers (pid = server index). */
    std::vector<hh::trace::ServerTrace> traces;
    std::uint64_t traceOpenSpans = 0;  //!< Summed across servers.
    std::uint64_t traceUnbalanced = 0; //!< Summed across servers.
    /** Per-server end-of-run metric snapshots ("server<i>" label). */
    std::vector<std::vector<hh::stats::MetricRegistry::Sample>>
        serverMetrics;
    /** Per-server sampled time series ("server<i>" label). */
    std::vector<hh::stats::SampledSeries> metricSeries;
    /** Whether the telemetry plane was enabled for this run. */
    bool telemetryEnabled = false;
    /** Per-server telemetry payloads, in server order (PR 7). */
    std::vector<ServerTelemetry> serverTelemetry;
    /** @} */

    /** @name Auditing (filled only when auditing was enabled) @{ */
    std::uint64_t auditsRun = 0;       //!< Summed across servers.
    std::uint64_t auditViolations = 0; //!< Summed (bug if != 0).
    std::uint64_t faultsInjected = 0;  //!< Summed across servers.
    /** Violation reports, tagged with the originating server index. */
    std::vector<std::pair<unsigned, hh::check::Violation>>
        auditReports;
    /** @} */

    double avgP99Ms() const;
    double avgP50Ms() const;

    /**
     * Canonical byte-exact serialization (hexfloat) of every field.
     * Two runs are bit-identical iff their serializations compare
     * equal; used by the determinism tests and bench_speed. When
     * metrics are enabled this includes a registry-backed section
     * (every metric of every server); the trace buffers are covered
     * by their event count, drop count and span accounting.
     */
    std::string serialized() const;

    /** Chrome trace_event JSON of all servers' trace buffers. */
    std::string traceJson() const;
};

/**
 * Run one server (the common case for figure benches, since servers
 * are statistically identical apart from the batch app).
 */
ServerResults runServer(const SystemConfig &cfg,
                        const std::string &batchApp = "BFS",
                        std::uint64_t seed = 1);

/**
 * Run the full 8-server cluster: one batch application per server.
 *
 * Servers never communicate, so each runs as an independent task on
 * a thread pool, seeded `seed + serverIndex`; results are aggregated
 * in server order and are bit-identical for any worker count.
 *
 * @param cfg     System configuration (shared by all servers).
 * @param servers How many of the 8 batch apps to run (tests may use
 *                fewer); defaults to all 8.
 * @param seed    Base experiment seed.
 * @param workers Thread-pool workers: 0 picks the `HH_THREADS`
 *                environment variable or the hardware concurrency;
 *                1 forces the sequential path.
 */
ClusterResults runCluster(const SystemConfig &cfg, unsigned servers = 8,
                          std::uint64_t seed = 1, unsigned workers = 0);

} // namespace hh::cluster

#endif // HH_CLUSTER_EXPERIMENT_H
