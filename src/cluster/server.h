/**
 * @file
 * Full-server simulation: 36 cores, 8 Primary VMs + 1 Harvest VM,
 * NIC, DRAM, LLC partitions, and one of the five evaluated
 * scheduling/harvesting schemes (§5).
 *
 * The server is the composition root: it owns the discrete-event
 * simulator, wires workloads to cores through the scheduling layer
 * selected by the SystemConfig flags, and produces the per-service
 * latency distributions, Harvest-VM throughput, and core-utilization
 * statistics that the paper's figures report.
 */

#ifndef HH_CLUSTER_SERVER_H
#define HH_CLUSTER_SERVER_H

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/auditor.h"
#include "check/fault_inject.h"
#include "cluster/system_config.h"
#include "lease/cache_lease.h"
#include "policy/harvest_policy.h"
#include "core/context_memory.h"
#include "core/controller.h"
#include "cpu/core.h"
#include "cpu/request.h"
#include "cpu/request_arena.h"
#include "mem/dram.h"
#include "net/fabric.h"
#include "net/nic.h"
#include "noc/mesh.h"
#include "sim/simulator.h"
#include "snapshot/archive.h"
#include "snapshot/tag.h"
#include "stats/histogram.h"
#include "stats/observation_view.h"
#include "stats/percentile.h"
#include "stats/registry.h"
#include "stats/sampler.h"
#include "trace/trace.h"
#include "vm/hypervisor.h"
#include "vm/sw_harvest.h"
#include "vm/vm.h"
#include "workload/batch.h"
#include "workload/loadgen.h"
#include "workload/service.h"

namespace hh::cluster {

/** Per-service results of one run. */
struct ServiceResult
{
    std::string name;
    std::uint64_t count = 0;
    double meanMs = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    /** Mean per-request breakdown in ms (Fig 6). */
    double queueMs = 0;
    double reassignMs = 0;
    double flushMs = 0;
    double execMs = 0;
    double ioMs = 0;
};

/**
 * Per-server harvest-telemetry payload (filled in finishRun). The
 * economics totals and histograms come from always-on taps, so they
 * are populated for every run; the per-epoch `rows` exist only when
 * `SystemConfig::telemetryEnabled` scheduled the epoch tick.
 */
struct ServerTelemetry
{
    bool enabled = false; //!< telemetryEnabled of the producing run.
    /** Per-epoch observation rows (empty unless enabled). */
    std::vector<hh::stats::ObservationRow> rows;
    /** Final cumulative reclaim-latency bucket counts (cycles). */
    std::vector<std::uint64_t> reclaimHist;
    /** Final cumulative post-warmup request-latency buckets (us). */
    std::vector<std::uint64_t> latencyHist;
    std::uint64_t reclaims = 0;
    std::uint64_t batchLoaned = 0; //!< Batch tasks done on lent cores.
    std::uint64_t batchNative = 0; //!< ... on the Harvest VM's own.
    std::uint64_t harvestedCycles = 0; //!< Core-cycles spent on loan.
    std::uint64_t endTime = 0;         //!< Run end (cycles).

    /** @name Cache-capacity leasing (src/lease/) @{ */
    std::uint64_t leaseGrants = 0;   //!< Leases granted.
    std::uint64_t leaseRecalls = 0;  //!< Leases recalled by decision.
    std::uint64_t leaseExpiries = 0; //!< Leases lapsed at term.
    /** Lines flushed at grant/recall/expiry (§4.2 semantics). */
    std::uint64_t leaseFlushedLines = 0;
    /** Integral of leased-out L3 ways over time (way-cycles). */
    std::uint64_t leaseWayCycles = 0;
    /** @} */
};

/** Results of one server run. */
struct ServerResults
{
    std::vector<ServiceResult> services;
    double elapsedSec = 0;
    std::uint64_t batchTasksCompleted = 0;
    double batchThroughput = 0; //!< tasks per second.
    double avgBusyCores = 0;
    double utilization = 0;     //!< avgBusyCores / cores.
    std::uint64_t coreLoans = 0;
    std::uint64_t coreReclaims = 0;
    double primaryL2HitRate = 0;

    /** @name Observability (filled only when enabled) @{ */
    /** Buffered trace events, oldest first. */
    std::vector<hh::trace::Event> traceEvents;
    std::uint64_t traceDropped = 0;    //!< Ring overwrites.
    std::uint64_t traceOpenSpans = 0;  //!< Orphaned spans (bug if !=0).
    std::uint64_t traceUnbalanced = 0; //!< Double closes (bug if !=0).
    /** End-of-run snapshot of every registered metric. */
    std::vector<hh::stats::MetricRegistry::Sample> metricsFinal;
    /** Periodic samples (label filled by the cluster layer). */
    hh::stats::SampledSeries metricSeries;
    /** Harvest telemetry (economics totals always, rows if enabled). */
    ServerTelemetry telemetry;
    /** @} */

    /** @name Auditing (filled only when auditing is enabled) @{ */
    std::uint64_t auditsRun = 0;        //!< Invariant sweeps performed.
    std::uint64_t auditViolations = 0;  //!< Total violations (bug if !=0).
    std::uint64_t faultsInjected = 0;   //!< Fault actions fired.
    /** First violation reports (capped by the auditor). */
    std::vector<hh::check::Violation> auditReports;
    /** @} */

    /** Average P99 across services (ms). */
    double avgP99Ms() const;
    /** Average median across services (ms). */
    double avgP50Ms() const;
};

/** @name Service-graph seam (src/svc/) @{ */

/**
 * How one Primary VM slot participates in a service graph. Plain data
 * so `hh_cluster` needs no dependency on `src/svc/` — the fleet layer
 * computes placements and hands each server its plan.
 */
struct GraphVmPlan
{
    bool used = false;  //!< Slot hosts a graph tier VM.
    bool front = false; //!< Front tier: runs the open-loop loadgen.
    std::uint32_t tier = 0;
    std::string service; //!< ServiceSpec name of the tier.
    /** Alibaba-trace per-slot arrival-rate scale (front only). */
    double rateScale = 1.0;
};

/** Per-server placement plan; `enabled == false` is classic mode. */
struct GraphServerPlan
{
    bool enabled = false;
    std::vector<GraphVmPlan> vms; //!< One per Primary VM slot.
};

/**
 * Callbacks a server makes into the RPC-tree engine (implemented by
 * `hh::svc::RpcEngine`). The engine outlives the run and is installed
 * with `ServerSim::setGraphHooks` right after construction.
 */
class GraphHooks
{
  public:
    virtual ~GraphHooks() = default;
    /** May @p vm accept a new root right now? False = shed (the
     *  engine accounts the shed root; the arrival budget is spent). */
    virtual bool admitRoot(std::uint32_t vm) = 0;
    /** A root request was injected as @p reqId on @p vm. */
    virtual void onRootArrival(std::uint32_t vm,
                               std::uint64_t reqId) = 0;
    /** First I/O call site of @p reqId. Return true to take over the
     *  block (fan out child RPCs; the server skips its synthetic
     *  backend and waits for graphUnblock). */
    virtual bool onCallSite(std::uint64_t reqId) = 0;
    /** @p reqId ran all its segments; drain/record the tree node. */
    virtual void onComplete(std::uint64_t reqId) = 0;
    /** A GraphCall/GraphDone packet reached this server's NIC. */
    virtual void onGraphPacket(const hh::net::Packet &pkt) = 0;
    /** Engine state behind the server's 'svc' snapshot section. */
    virtual void serialize(hh::snap::Archive &ar) = 0;
    /** Cross-check tree state against the server (auditor). */
    virtual std::optional<std::string> auditInvariant() = 0;
    /** Resident engine footprint in bytes (bounded-memory gate). */
    virtual std::uint64_t footprintBytes() const = 0;
};

/** @} */

/**
 * One simulated server.
 */
class ServerSim
{
  public:
    /**
     * @param cfg      System configuration.
     * @param batchApp Batch application name for the Harvest VM.
     * @param seed     Experiment seed (overrides cfg.seed when
     *                 nonzero).
     */
    ServerSim(const SystemConfig &cfg, const std::string &batchApp,
              std::uint64_t seed = 0);

    /**
     * Graph-mode overload: @p plan replaces the default round-robin
     * service assignment — used slots host their tier's service (only
     * front slots generate arrivals), unused slots idle. The caller
     * must install the engine with setGraphHooks() before startRun()
     * or loadState().
     */
    ServerSim(const SystemConfig &cfg, const std::string &batchApp,
              const GraphServerPlan &plan, std::uint64_t seed = 0);

    ~ServerSim();

    ServerSim(const ServerSim &) = delete;
    ServerSim &operator=(const ServerSim &) = delete;

    /** Run the simulation to completion and collect results. */
    ServerResults run();

    /** @name Checkpointable run phases @{ */

    /**
     * Seed the initial events (arrivals, harvest cores, agent ticks,
     * sampler, injector). run() == startRun() + advanceRun(horizon())
     * + finishRun(); the split exists so callers can checkpoint
     * between bounded advances. Call exactly once per simulation —
     * and never after loadState(), which restores a started run.
     */
    void startRun();

    /**
     * Execute events up to min(@p until, horizon()). The clock ends
     * on the last executed event, not @p until, so resumed runs
     * replay identically regardless of where the epochs fell.
     */
    void advanceRun(hh::sim::Cycles until);

    /** Final audit sweep, teardown and result aggregation. */
    ServerResults finishRun();

    /** True once every request completed (end_time_ is valid). */
    bool finished() const { return done_; }

    /** Current simulated time (checkpoint manifests). */
    hh::sim::Cycles now() const { return sim_.now(); }

    /** Hard horizon guarding pathological configurations. */
    static hh::sim::Cycles horizon()
    {
        return hh::sim::secToCycles(600.0);
    }

    /**
     * Save the complete simulator state to @p ar / restore it from
     * @p ar (the archive's mode decides). Restoring requires a
     * ServerSim freshly constructed with the same SystemConfig,
     * batch application and seed; the caller checks ar.ok() after.
     */
    void saveState(hh::snap::Archive &ar) { serializeState(ar); }
    void loadState(hh::snap::Archive &ar) { serializeState(ar); }
    /** @} */

    /** @name Warm-start support (src/exp/ JobScheduler) @{ */

    /** Arrival-budget progress of one Primary VM. */
    struct ArrivalProgress
    {
        unsigned consumed = 0;  //!< Arrivals drawn from the budget.
        unsigned completed = 0; //!< Requests completed.
    };

    /** Per-Primary-VM progress, in VM order (donor pacing). */
    std::vector<ArrivalProgress> arrivalProgress() const;

    /**
     * Retarget state loaded from a donor run — same config apart from
     * a larger `requestsPerVm` — to this sim's smaller budget.
     *
     * Arrivals are chained per VM and the warmup boundary is a fixed
     * completion count, so a donor trajectory is byte-identical to
     * this config's until the smaller budget exhausts or the warmup
     * boundary is crossed. This call validates both conditions for
     * every Primary VM and patches `arrivalsRemaining` and
     * `warmupSkip`; on any violation it returns false (with @p error
     * set) and the caller must fall back to a cold run.
     */
    bool retargetArrivalBudget(const SystemConfig &donorCfg,
                               std::string *error);
    /** @} */

    /** The embedded HardHarvest controller (tests). */
    hh::core::HardHarvestController &controller() { return *ctrl_; }

    /** The server's metric registry (tests, ad-hoc inspection). */
    hh::stats::MetricRegistry &metrics() { return registry_; }

    /** The tracer, or nullptr when tracing is disabled. */
    hh::trace::Tracer *tracer() { return tracer_.get(); }

    /** The auditor, or nullptr when auditing is disabled. */
    hh::check::Auditor *auditor() { return auditor_.get(); }

    /** The fault injector, or nullptr when injection is disabled. */
    hh::check::FaultInjector *faultInjector() { return injector_.get(); }

    /** The observation view, or nullptr when telemetry is disabled. */
    hh::stats::ObservationView *telemetryView()
    {
        return telemetry_.get();
    }

    /** The harvest policy, or nullptr under the "legacy" selector. */
    hh::policy::HarvestPolicy *harvestPolicy()
    {
        return policy_.get();
    }

    /** The cache-lease manager, or nullptr unless cacheLendEnabled. */
    hh::lease::CacheLeaseManager *leaseManager()
    {
        return lease_mgr_.get();
    }

    const SystemConfig &config() const { return cfg_; }

    /** @name Service-graph seam (src/svc/ FleetSim + RpcEngine) @{ */

    /** Install the RPC-tree engine. Not owned; must outlive the sim. */
    void setGraphHooks(GraphHooks *hooks) { graph_hooks_ = hooks; }

    /** The installed engine, or nullptr in classic mode. */
    GraphHooks *graphHooks() { return graph_hooks_; }

    /** This server's placement plan (enabled=false in classic mode). */
    const GraphServerPlan &graphPlan() const { return graph_plan_; }

    /**
     * Inject one request on @p vm right now (root arrival body or a
     * child RPC's service invocation). @return its request id.
     */
    std::uint64_t graphInjectRequest(std::uint32_t vm);

    /**
     * Unblock @p reqId, parked at its onCallSite() since @p blockedAt:
     * accrues the real I/O wait (breakdown, EWMA, trace) and delivers
     * the response packet that re-readies it.
     */
    void graphUnblock(std::uint32_t vm, std::uint64_t reqId,
                      hh::sim::Cycles blockedAt);

    /** Deliver @p pkt to this server's own NIC (same-server tier). */
    void graphLoopback(const hh::net::Packet &pkt);

    /** Schedule a cross-server wire arrival at absolute @p when. */
    void graphScheduleWireArrival(const hh::net::Packet &pkt,
                                  hh::sim::Cycles when);

    /** Record a post-warmup end-to-end (tree-root) latency tap. */
    void graphRecordE2e(double us)
    {
        latency_hist_us_.add(us);
    }

    /**
     * Fleet-wide drain: mark the run finished at @p end. In graph
     * mode a server never self-finishes (a transiently idle back tier
     * is not done — more RPCs may still arrive over the wire); the
     * fleet coordinator declares the common end time instead.
     */
    void setGraphDone(hh::sim::Cycles end);

    /** True when the event queue is empty (fleet window barrier). */
    bool simIdle() const { return sim_.idle(); }

    /** Earliest pending event. @pre !simIdle() */
    hh::sim::Cycles nextEventTime() const
    {
        return sim_.nextEventTime();
    }

    /** One-way fabric latency for a @p bytes payload. */
    hh::sim::Cycles fabricOneWay(std::uint32_t bytes) const
    {
        return fabric_.oneWay(bytes);
    }

    /** Is @p reqId live and blocked on I/O? (engine audit) */
    bool requestBlocked(std::uint64_t reqId) const;
    /** @} */

  private:
    /** Phase of a core's scheduling state machine. */
    enum class Phase
    {
        Idle,        //!< Spinning/waiting for work.
        RunPrimary,  //!< Executing a Primary request segment.
        RunHarvest,  //!< Executing a Harvest slice (or lent idle).
        Transition,  //!< Paying reassignment/flush costs.
    };

    /** A partially executed Harvest VM task (vCPU work unit). */
    struct HarvestSlice
    {
        std::uint64_t id = 0;
        hh::sim::Cycles remainingCompute = 0;
        std::uint32_t remainingAccesses = 0;
        /** Residual sampled-replay weight (see Request). */
        std::int32_t samplingCarry = 0;

        void
        serialize(hh::snap::Archive &ar)
        {
            ar.io(id);
            ar.io(remainingCompute);
            ar.io(remainingAccesses);
            ar.io(samplingCarry);
        }
    };

    /** Runtime scheduling state of one core. */
    struct CoreCtx
    {
        Phase phase = Phase::Idle;
        std::uint64_t runningRequest = 0;
        std::optional<HarvestSlice> slice;
        hh::sim::Cycles sliceStart = 0;
        hh::sim::Cycles sliceDuration = 0;
        hh::sim::EventId pendingEvent = hh::sim::kInvalidEventId;
        /** When the in-flight segment completes (fault injection). */
        hh::sim::Cycles segmentEnd = 0;
        hh::sim::Cycles idleSince = 0;
        unsigned anchoredBlocked = 0; //!< Blocked requests anchored.
        bool onLoan = false;          //!< Lent to the Harvest VM.

        /** pendingEvent is restored verbatim: the structural event-
         *  queue snapshot keeps stored EventIds valid across a
         *  save/load cycle. */
        void
        serialize(hh::snap::Archive &ar)
        {
            ar.io(phase);
            ar.io(runningRequest);
            ar.io(slice);
            ar.io(sliceStart);
            ar.io(sliceDuration);
            ar.io(pendingEvent);
            ar.io(segmentEnd);
            ar.io(idleSince);
            ar.io(anchoredBlocked);
            ar.io(onLoan);
        }
    };

    /** Runtime state of one VM. */
    struct VmCtx
    {
        hh::vm::VmDesc desc;
        std::unique_ptr<hh::cache::SetAssocArray> l3;
        // Primary-only:
        std::unique_ptr<hh::workload::ServiceWorkload> service;
        std::unique_ptr<hh::workload::LoadGenerator> loadgen;
        unsigned arrivalsRemaining = 0;
        unsigned completed = 0;
        unsigned warmupSkip = 0;
        hh::stats::LatencyRecorder latencies; //!< ms
        // Mean-breakdown accumulators (cycles).
        hh::cpu::LatencyBreakdown breakdownSum;
        std::uint64_t breakdownCount = 0;
    };

    /** @name Setup @{ */
    void buildVms(const std::string &batchApp);
    void buildCores();
    void scheduleFirstArrivals();
    /** Register every component's stats into registry_. */
    void registerMetrics();
    /** Register the cross-component invariants into auditor_. */
    void registerInvariants();
    /** Register the perturbation actions into injector_. */
    void registerFaultActions();
    /** @} */

    /** @name Tracing helpers @{ */
    /** Request-span track for @p vm. */
    static std::uint32_t requestTrack(std::uint32_t vm)
    {
        return hh::trace::kRequestTrackBase + vm;
    }
    /** Span-accounting key of a core's lend transition. */
    static std::uint64_t lendKey(unsigned core)
    {
        return (std::uint64_t{2} << 60) + core;
    }
    /** Span-accounting key of a core's reclaim transition. */
    static std::uint64_t reclaimKey(unsigned core)
    {
        return (std::uint64_t{3} << 60) + core;
    }
    /** @} */

    /** @name Request path @{ */
    void onArrival(std::uint32_t vm);
    void onPacket(const hh::net::Packet &pkt);
    void tryDispatch(std::uint32_t vm);
    void startRequestOnCore(unsigned core, std::uint64_t reqId,
                            hh::sim::Cycles overhead,
                            hh::sim::Cycles reassignPart,
                            hh::sim::Cycles flushPart);
    void executeSegment(unsigned core, std::uint64_t reqId);
    void onSegmentDone(unsigned core, std::uint64_t reqId);
    void completeRequest(unsigned core, std::uint64_t reqId);
    /** @} */

    /** @name Harvesting @{ */
    void onCoreIdle(unsigned core);
    bool coreLendable(unsigned core) const;
    /** May blocked-anchored cores of @p vm be harvested right now? */
    bool blockHarvestAllowed(std::uint32_t vm) const;
    void lendCore(unsigned core);
    /** Lend-transition costs paid; take up harvest work (tracked). */
    void onLendDone(unsigned core);
    /** Untracked variant used by the resurrected PR-1 race. */
    void onLendDoneRace(unsigned core);
    void beginHarvestWork(unsigned core);
    void startHarvestSlice(unsigned core);
    void onHarvestSliceDone(unsigned core);
    void reclaimCore(unsigned core, std::uint32_t vm);
    /** Reclaim-transition costs paid; hand the core back. */
    void onReclaimDone(unsigned core, std::uint32_t vm,
                       hh::sim::Cycles reassignCost,
                       hh::sim::Cycles flushCost);
    void preemptHarvestSlice(unsigned core);
    void agentTick();
    /** @} */

    /** @name Snapshot plumbing @{ */
    /** Deliver a backend I/O response through the NIC. */
    void deliverIoResponse(std::uint32_t vm, std::uint64_t reqId);
    /** Rebuild the callback of a restored event from its tag. */
    hh::sim::Simulator::Callback
    rearmEvent(const hh::snap::SnapTag &t);
    /** Bidirectional body behind saveState()/loadState(). */
    void serializeState(hh::snap::Archive &ar);
    /** @} */

    /** @name Helpers @{ */
    VmCtx &vmCtx(std::uint32_t vm);
    int idleBoundCore(std::uint32_t vm) const;
    unsigned idleBoundCores(std::uint32_t vm) const;
    unsigned busyPrimaryCores(std::uint32_t vm) const;
    hh::sim::Cycles dispatchOverhead(std::uint32_t vm);
    hh::sim::Cycles ctxSwitchCost(unsigned core) const;
    hh::sim::Cycles replaySegment(unsigned core, std::uint64_t reqId,
                                  const hh::workload::Segment &seg);
    hh::sim::Cycles replayHarvest(unsigned core, HarvestSlice &slice);
    /** @} */

    /** @name Telemetry plane @{ */
    /** Epoch tick: materialize one ObservationRow, reschedule. */
    void telemetryTick();
    /** Cancel the tick and record the final partial epoch. */
    void stopTelemetry();
    /** Cumulative counters for ObservationView::record(). */
    hh::stats::ServerCounters telemetryCounters();
    /** Re-arm hook for a restored kTelemetryTick event. */
    hh::sim::Simulator::Callback
    rearmTelemetryTick()
    {
        return [this] { telemetryTick(); };
    }
    /** @} */

    /** @name Harvest policy (PR 8) @{ */
    /** The PolicyConfig mirror of cfg_ (src/policy is layer-free). */
    hh::policy::PolicyConfig policyConfig() const;
    /** Epoch tick: feed the policy one row, apply its decisions. */
    void policyTick();
    /** Cancel a pending policy tick (run teardown). */
    void stopPolicy();
    /** Push decision changes into masks/partitions at the boundary. */
    void applyPolicyDecisions();
    /** Re-arm hook for a restored kPolicyTick event. */
    hh::sim::Simulator::Callback
    rearmPolicyTick()
    {
        return [this] { policyTick(); };
    }
    /** @} */

    /** @name Cache-capacity leasing (src/lease/) @{ */
    /** Lease tick: expire/recall/grant per the policy, reschedule. */
    void leaseTick();
    /** Cancel a pending lease tick (run teardown). */
    void stopLease();
    /** Grant @p vm's lease (flush + mask the leased ways). */
    void leaseGrant(std::uint32_t vm, double l2Fraction,
                    unsigned l3Ways);
    /** Release @p vm's lease (flush-on-return). */
    void leaseRelease(std::uint32_t vm, bool expired);
    /** Does @p vm have an idle or lent core (idle cache to spare)? */
    bool vmHasIdleCapacity(std::uint32_t vm) const;
    /** Point every batch-running core at a lender's leased ways. */
    void rebindLeaseOverflow();
    /** Re-arm hook for a restored kLeaseTick event. */
    hh::sim::Simulator::Callback
    rearmLeaseTick()
    {
        return [this] { leaseTick(); };
    }
    /** @} */

    /** @name Helpers (cont.) @{ */
    void configureCoreForHarvest(unsigned core);
    void configureCoreForPrimary(unsigned core);
    bool allDone() const;
    void noteDoneMaybeFinish();
    /** @} */

    SystemConfig cfg_;
    std::uint64_t seed_;

    hh::sim::Simulator sim_;
    hh::mem::Dram dram_;
    hh::noc::Mesh2D mesh_;
    hh::net::Fabric fabric_;
    std::unique_ptr<hh::net::Nic> nic_;
    std::unique_ptr<hh::core::HardHarvestController> ctrl_;
    std::unique_ptr<hh::core::RequestContextMemory> ctxmem_;
    std::unique_ptr<hh::vm::Hypervisor> hyp_;
    hh::vm::SmartHarvestPolicy sw_policy_;
    hh::sim::Rng rng_;

    std::vector<VmCtx> vms_;      //!< [0..primaryVms-1] primary, last harvest.
    std::uint32_t harvest_vm_ = 0;
    std::unique_ptr<hh::workload::BatchWorkload> batch_;
    std::deque<HarvestSlice> harvest_queue_;
    std::uint64_t next_slice_id_ = 1;
    std::uint64_t batch_tasks_done_ = 0;

    std::vector<std::unique_ptr<hh::cpu::Core>> cores_;
    std::vector<CoreCtx> core_ctx_;

    /**
     * In-flight requests, arena-allocated so segment replay walks
     * chunk-contiguous records instead of hash-scattered nodes.
     * Serialized byte-identically to the unordered_map it replaced.
     */
    hh::cpu::RequestArena requests_;
    std::uint64_t next_request_id_ = 1;
    std::unordered_map<std::uint64_t, unsigned> anchor_; //!< req -> core

    /** Reclaims in flight per VM (requests they will consume). */
    std::vector<unsigned> pending_reclaims_;

    /** Last reclaim time per VM (software lending backoff). */
    std::vector<hh::sim::Cycles> last_reclaim_at_;

    /** Ghost VMs registered by the chunk-pressure fault action. */
    std::vector<std::uint32_t> ghost_vms_;
    std::uint32_t next_ghost_ = 0;

    /** EWMA of blocked-on-I/O durations per VM (adaptive ext.). */
    std::vector<double> ewma_block_cycles_;

    hh::stats::Counter loans_{"server.loans"};
    hh::stats::Counter reclaims_{"server.reclaims"};
    bool done_ = false;
    hh::sim::Cycles end_time_ = 0;

    /** @name Observability @{ */
    hh::stats::MetricRegistry registry_;
    std::unique_ptr<hh::stats::MetricSampler> sampler_;
    /** Null unless cfg_.traceEnabled: hot paths branch on this. */
    std::unique_ptr<hh::trace::Tracer> tracer_;
    /** @} */

    /** @name Harvest telemetry plane @{ */
    /** Sentinel for core_loan_start_: core not currently lent. */
    static constexpr std::uint64_t kNotLent = ~std::uint64_t{0};
    /** Reclaim-latency distribution in cycles (always-on tap). */
    hh::stats::LogHistogram reclaim_hist_{48};
    /** Post-warmup request latencies in us (always-on tap). */
    hh::stats::LogHistogram latency_hist_us_{48};
    /** Completed-loan core-cycles per VM (live loans added lazily). */
    std::vector<std::uint64_t> vm_lent_cycles_;
    std::vector<std::uint64_t> vm_reclaims_;
    std::vector<std::uint64_t> vm_reclaim_cycles_;
    /** Per-core loan start time, kNotLent when not on loan. */
    std::vector<std::uint64_t> core_loan_start_;
    /** Of batch_tasks_done_, those finished on lent cores. */
    std::uint64_t batch_tasks_loaned_ = 0;
    /** Null unless cfg_.telemetryEnabled. */
    std::unique_ptr<hh::stats::ObservationView> telemetry_;
    bool telemetry_running_ = false;
    hh::sim::EventId telemetry_pending_ = hh::sim::kInvalidEventId;
    /** @} */

    /** @name Harvest policy (PR 8) @{ */
    /** Null only under the "legacy" selector. */
    std::unique_ptr<hh::policy::HarvestPolicy> policy_;
    /** Policy's own epoch view; null unless wantsEpochTick(). */
    std::unique_ptr<hh::stats::ObservationView> policy_view_;
    bool policy_running_ = false;
    hh::sim::EventId policy_pending_ = hh::sim::kInvalidEventId;
    /** Last harvest-way fraction pushed into each VM's masks, so the
     *  boundary application only touches partitions that changed. */
    std::vector<double> policy_applied_fraction_;
    /** @} */

    /** @name Cache-capacity leasing (src/lease/) @{ */
    /** Null unless cfg_.cacheLendEnabled. */
    std::unique_ptr<hh::lease::CacheLeaseManager> lease_mgr_;
    bool lease_running_ = false;
    hh::sim::EventId lease_pending_ = hh::sim::kInvalidEventId;
    /** @} */

    /** @name Auditing / fault injection @{ */
    /** Null unless cfg_.auditEnabled (or HH_AUDIT=1). */
    std::unique_ptr<hh::check::Auditor> auditor_;
    /** Null unless cfg_.faults.enabled. */
    std::unique_ptr<hh::check::FaultInjector> injector_;
    /** @} */

    /** @name Service-graph mode (src/svc/) @{ */
    /** Placement plan; enabled=false means classic single-hop mode. */
    GraphServerPlan graph_plan_;
    /** RPC-tree engine, owned by the fleet layer; null in classic
     *  mode and between construction and setGraphHooks(). Every use
     *  null-checks — the auditor may fire before installation. */
    GraphHooks *graph_hooks_ = nullptr;
    /** @} */
};

} // namespace hh::cluster

#endif // HH_CLUSTER_SERVER_H
