#include "cluster/experiment.h"

#include <sstream>
#include <utility>

#include "cluster/checkpoint.h"
#include "cluster/parallel.h"
#include "sim/log.h"
#include "workload/batch.h"

namespace hh::cluster {

double
ClusterResults::avgP99Ms() const
{
    if (services.empty())
        return 0;
    double s = 0;
    for (const auto &r : services)
        s += r.p99Ms;
    return s / static_cast<double>(services.size());
}

double
ClusterResults::avgP50Ms() const
{
    if (services.empty())
        return 0;
    double s = 0;
    for (const auto &r : services)
        s += r.p50Ms;
    return s / static_cast<double>(services.size());
}

std::string
ClusterResults::serialized() const
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto &r : services) {
        os << r.name << ' ' << r.count << ' ' << r.meanMs << ' '
           << r.p50Ms << ' ' << r.p99Ms << ' ' << r.queueMs << ' '
           << r.reassignMs << ' ' << r.flushMs << ' ' << r.execMs
           << ' ' << r.ioMs << '\n';
    }
    for (const auto &[app, tput] : batchThroughput)
        os << app << ' ' << tput << '\n';
    os << avgBusyCores << ' ' << utilization << ' ' << coreLoans
       << ' ' << coreReclaims << ' ' << primaryL2HitRate << '\n';
    // Lease section: absent unless the cache-lease subsystem did
    // anything, so default-config serializations are unchanged.
    if (leaseGrants || leaseRecalls || leaseExpiries ||
        leaseFlushedLines || leaseWayCycles) {
        os << "lease " << leaseGrants << ' ' << leaseRecalls << ' '
           << leaseExpiries << ' ' << leaseFlushedLines << ' '
           << leaseWayCycles << '\n';
    }
    // Audit section: absent unless auditing ran, so default-config
    // serializations are unchanged. Covers the sweep/violation/fault
    // counts plus every (capped) report verbatim — the determinism
    // tests thereby assert that fault injection itself is replayable.
    // Emitted before the observability sections so that the prefix
    // property "enabling tracing/metrics only appends" holds whether
    // or not auditing is on (e.g. under an HH_AUDIT=1 test sweep).
    if (auditsRun > 0) {
        os << "audit " << auditsRun << ' ' << auditViolations << ' '
           << faultsInjected << '\n';
        for (const auto &[srv, v] : auditReports)
            os << "violation server" << srv << " [" << v.component
               << "] t=" << v.time << ' ' << v.message << '\n';
    }
    // Registry-backed section: every metric of every server, in
    // registry (= lexicographic) order. Empty unless metrics were
    // enabled, so default-config serializations are unchanged.
    for (std::size_t s = 0; s < serverMetrics.size(); ++s) {
        for (const auto &m : serverMetrics[s])
            os << "server" << s << '.' << m.name << ' ' << m.value
               << '\n';
    }
    if (!traces.empty()) {
        os << "trace";
        for (const auto &t : traces)
            os << ' ' << t.pid << ':' << t.events.size() << '/'
               << t.dropped;
        os << ' ' << traceOpenSpans << ' ' << traceUnbalanced << '\n';
    }
    // Telemetry section: absent unless the telemetry plane was on, so
    // default-config serializations are unchanged. Covers every epoch
    // row of every server verbatim (hexfloat features included): the
    // determinism tests thereby assert the ObservationView itself is
    // bit-identical across worker counts and checkpoint resume.
    if (telemetryEnabled) {
        for (std::size_t s = 0; s < serverTelemetry.size(); ++s) {
            const ServerTelemetry &t = serverTelemetry[s];
            os << "telemetry server" << s << " rows=" << t.rows.size()
               << " reclaims=" << t.reclaims << " loaned="
               << t.batchLoaned << " native=" << t.batchNative
               << " harvested=" << t.harvestedCycles << " end="
               << t.endTime << '\n';
            for (const auto &row : t.rows) {
                os << "telemetry.row server" << s << " e=" << row.epoch
                   << " t=" << row.t << " harv="
                   << row.harvestedCyclesDelta << " rec="
                   << row.reclaimsDelta << " bl="
                   << row.batchLoanedDelta << " bn="
                   << row.batchNativeDelta;
                for (const auto &vm : row.vms)
                    os << " vm" << vm.vm << '=' << vm.coreUtil << '/'
                       << vm.mpki << '/' << vm.cacheOccupancy << '/'
                       << vm.rqReady << '/' << vm.coresLent << '/'
                       << vm.lentCycles;
                os << '\n';
            }
        }
    }
    return os.str();
}

std::string
ClusterResults::traceJson() const
{
    return hh::trace::chromeTraceJson(traces);
}

ServerResults
runServer(const SystemConfig &cfg, const std::string &batchApp,
          std::uint64_t seed)
{
    ServerSim sim(cfg, batchApp, seed);
    return sim.run();
}

ClusterResults
runCluster(const SystemConfig &cfg, unsigned servers,
           std::uint64_t seed, unsigned workers)
{
    const auto batch = hh::workload::batchApplications();
    if (servers == 0 || servers > batch.size())
        hh::sim::fatal("runCluster: servers must be in [1, ",
                       batch.size(), "]");

    // One task per server; each ServerSim owns its Simulator, RNG
    // streams and stats, so tasks share nothing mutable. Results are
    // collected by server index, making the aggregation below — and
    // therefore ClusterResults — bit-identical for any worker count.
    std::vector<ServerResults> runs =
        runParallel<ServerResults>(
            servers,
            [&cfg, &batch, seed](std::size_t s) {
                // Tag this worker's log lines with the server it is
                // simulating so interleaved warnings stay
                // attributable.
                const hh::sim::LogTagScope tag(
                    "server" + std::to_string(s));
                return runServer(cfg, batch[s].name,
                                 seed + static_cast<std::uint64_t>(s));
            },
            workers);
    return aggregateClusterResults(cfg, servers, std::move(runs));
}

ClusterResults
aggregateClusterResults(const SystemConfig &cfg, unsigned servers,
                        std::vector<ServerResults> runs)
{
    const auto batch = hh::workload::batchApplications();
    ClusterResults agg;
    for (unsigned s = 0; s < servers; ++s) {
        ServerResults &run = runs[s];
        if (cfg.traceEnabled) {
            hh::trace::ServerTrace t;
            t.pid = s;
            t.events = std::move(run.traceEvents);
            t.dropped = run.traceDropped;
            agg.traces.push_back(std::move(t));
            agg.traceOpenSpans += run.traceOpenSpans;
            agg.traceUnbalanced += run.traceUnbalanced;
        }
        if (cfg.metricsEnabled) {
            agg.serverMetrics.push_back(std::move(run.metricsFinal));
            run.metricSeries.label = "server" + std::to_string(s);
            agg.metricSeries.push_back(std::move(run.metricSeries));
        }
        if (cfg.telemetryEnabled) {
            agg.telemetryEnabled = true;
            agg.serverTelemetry.push_back(std::move(run.telemetry));
        }
        agg.auditsRun += run.auditsRun;
        agg.auditViolations += run.auditViolations;
        agg.faultsInjected += run.faultsInjected;
        for (auto &v : run.auditReports)
            agg.auditReports.emplace_back(s, std::move(v));
    }
    for (unsigned s = 0; s < servers; ++s) {
        agg.batchThroughput.emplace_back(batch[s].name,
                                         runs[s].batchThroughput);
    }

    // Average per-service stats across servers (services appear once
    // per server, same order).
    const auto &first = runs.front().services;
    for (std::size_t i = 0; i < first.size(); ++i) {
        ServiceResult r = first[i];
        for (unsigned s = 1; s < servers; ++s) {
            const auto &o = runs[s].services[i];
            r.count += o.count;
            r.meanMs += o.meanMs;
            r.p50Ms += o.p50Ms;
            r.p99Ms += o.p99Ms;
            r.queueMs += o.queueMs;
            r.reassignMs += o.reassignMs;
            r.flushMs += o.flushMs;
            r.execMs += o.execMs;
            r.ioMs += o.ioMs;
        }
        const double n = static_cast<double>(servers);
        r.meanMs /= n;
        r.p50Ms /= n;
        r.p99Ms /= n;
        r.queueMs /= n;
        r.reassignMs /= n;
        r.flushMs /= n;
        r.execMs /= n;
        r.ioMs /= n;
        agg.services.push_back(std::move(r));
    }

    for (const auto &run : runs) {
        agg.avgBusyCores += run.avgBusyCores;
        agg.utilization += run.utilization;
        agg.coreLoans += run.coreLoans;
        agg.coreReclaims += run.coreReclaims;
        agg.primaryL2HitRate += run.primaryL2HitRate;
        agg.leaseGrants += run.telemetry.leaseGrants;
        agg.leaseRecalls += run.telemetry.leaseRecalls;
        agg.leaseExpiries += run.telemetry.leaseExpiries;
        agg.leaseFlushedLines += run.telemetry.leaseFlushedLines;
        agg.leaseWayCycles += run.telemetry.leaseWayCycles;
    }
    agg.avgBusyCores /= servers;
    agg.utilization /= servers;
    agg.primaryL2HitRate /= servers;
    return agg;
}

} // namespace hh::cluster
