#include "trace/trace.h"

#include "sim/log.h"

namespace hh::trace {

const char *
eventName(EventType t)
{
    switch (t) {
      case EventType::RequestSpan:       return "request";
      case EventType::QueueWait:         return "queue_wait";
      case EventType::CtxSwitchStall:    return "ctx_switch";
      case EventType::ExecSegment:       return "exec";
      case EventType::IoBlocked:         return "io_blocked";
      case EventType::RqEnqueue:         return "rq_enqueue";
      case EventType::Dispatch:          return "qm_dispatch";
      case EventType::LendTransition:    return "lend_transition";
      case EventType::ReclaimTransition: return "reclaim_transition";
      case EventType::HarvestFlush:      return "harvest_flush";
      case EventType::HarvestSlice:      return "harvest_slice";
      case EventType::Lend:              return "lend";
      case EventType::Reclaim:           return "reclaim";
      case EventType::Preempt:           return "preempt";
      case EventType::Restore:           return "restore";
      case EventType::LendCancelled:     return "lend_cancelled";
    }
    return "?";
}

const char *
eventCategory(EventType t)
{
    switch (t) {
      case EventType::RequestSpan:
      case EventType::QueueWait:
      case EventType::CtxSwitchStall:
      case EventType::ExecSegment:
      case EventType::IoBlocked:
      case EventType::RqEnqueue:
      case EventType::Dispatch:
        return "request";
      default:
        return "transition";
    }
}

const char *
eventCause(EventType t)
{
    switch (t) {
      case EventType::CtxSwitchStall: return "ctx_switch";
      case EventType::HarvestFlush:   return "harvest_flush";
      case EventType::QueueWait:      return "queueing";
      case EventType::IoBlocked:      return "backend_io";
      default:                        return nullptr;
    }
}

bool
eventIsSpan(EventType t)
{
    switch (t) {
      case EventType::RequestSpan:
      case EventType::QueueWait:
      case EventType::CtxSwitchStall:
      case EventType::ExecSegment:
      case EventType::IoBlocked:
      case EventType::LendTransition:
      case EventType::ReclaimTransition:
      case EventType::HarvestFlush:
      case EventType::HarvestSlice:
        return true;
      default:
        return false;
    }
}

Tracer::Tracer(std::size_t capacity)
{
    if (capacity == 0)
        hh::sim::panic("Tracer: capacity must be > 0");
    ring_.resize(capacity);
}

void
Tracer::record(EventType type, hh::sim::Cycles ts, hh::sim::Cycles dur,
               std::uint32_t track, std::uint64_t id)
{
    if (!enabled_)
        return;
    if (size_ == ring_.size())
        ++dropped_; // overwriting the oldest event
    else
        ++size_;
    ring_[head_] = Event{ts, dur, id, track, type};
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
}

void
Tracer::openSpan(std::uint64_t key)
{
    if (!enabled_)
        return;
    ++open_[key];
}

void
Tracer::closeSpan(std::uint64_t key)
{
    if (!enabled_)
        return;
    const auto it = open_.find(key);
    if (it == open_.end() || it->second == 0) {
        ++unbalanced_;
        return;
    }
    if (--it->second == 0)
        open_.erase(it);
}

std::size_t
Tracer::openSpans() const
{
    std::size_t n = 0;
    for (const auto &[key, count] : open_)
        n += count;
    return n;
}

std::vector<Event>
Tracer::events() const
{
    std::vector<Event> out;
    out.reserve(size_);
    // Oldest event sits at head_ once the ring has wrapped.
    const std::size_t start =
        size_ == ring_.size() ? head_ : head_ - size_;
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
Tracer::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    open_.clear();
    unbalanced_ = 0;
}

} // namespace hh::trace
