#include "trace/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace hh::trace {

namespace {

/** Flat reference into one server's event list. */
struct Ref
{
    hh::sim::Cycles ts;
    unsigned pid;
    std::size_t seq; //!< Index within the server's event order.
    const Event *ev;
};

void
appendEvent(std::ostringstream &os, unsigned pid, const Event &e,
            bool &first)
{
    char buf[160];
    const bool span = eventIsSpan(e.type);
    const char *cause = eventCause(e.type);
    if (!first)
        os << ",\n";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                  "\"ts\":%.3f,",
                  eventName(e.type), eventCategory(e.type),
                  span ? "X" : "i", hh::sim::cyclesToUs(e.ts));
    os << buf;
    if (span) {
        std::snprintf(buf, sizeof buf, "\"dur\":%.3f,",
                      hh::sim::cyclesToUs(e.dur));
        os << buf;
    } else {
        os << "\"s\":\"t\",";
    }
    std::snprintf(buf, sizeof buf,
                  "\"pid\":%u,\"tid\":%u,\"args\":{\"id\":%llu", pid,
                  e.track, static_cast<unsigned long long>(e.id));
    os << buf;
    if (cause)
        os << ",\"cause\":\"" << cause << "\"";
    os << "}}";
}

void
appendMetadata(std::ostringstream &os, unsigned pid,
               const std::string &name, std::uint32_t tid,
               const char *kind, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":" << pid;
    if (kind[0] == 't') // thread_name
        os << ",\"tid\":" << tid;
    os << ",\"args\":{\"name\":\"" << name << "\"}}";
}

} // namespace

std::string
chromeTraceJson(const std::vector<ServerTrace> &traces)
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;

    // Process/thread naming metadata, in (pid, tid) order.
    for (const auto &t : traces) {
        appendMetadata(os, t.pid, "server" + std::to_string(t.pid), 0,
                       "process_name", first);
        std::set<std::uint32_t> tracks;
        for (const auto &e : t.events)
            tracks.insert(e.track);
        for (const std::uint32_t track : tracks) {
            const std::string name =
                track >= kRequestTrackBase
                    ? "vm" +
                          std::to_string(track - kRequestTrackBase) +
                          " requests"
                    : "core " + std::to_string(track);
            appendMetadata(os, t.pid, name, track, "thread_name",
                           first);
        }
    }

    // Canonical event order: timestamp, then server, then each
    // server's deterministic recording order.
    std::vector<Ref> refs;
    for (const auto &t : traces) {
        refs.reserve(refs.size() + t.events.size());
        for (std::size_t i = 0; i < t.events.size(); ++i)
            refs.push_back(
                Ref{t.events[i].ts, t.pid, i, &t.events[i]});
    }
    std::sort(refs.begin(), refs.end(),
              [](const Ref &a, const Ref &b) {
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  if (a.pid != b.pid)
                      return a.pid < b.pid;
                  return a.seq < b.seq;
              });
    for (const Ref &r : refs)
        appendEvent(os, r.pid, *r.ev, first);

    os << "\n]}\n";
    return os.str();
}

std::string
chromeCounterJson(const std::vector<CounterTrack> &tracks)
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    // Name each distinct pid once, before its first track.
    std::set<unsigned> named;
    for (const auto &t : tracks) {
        if (named.insert(t.pid).second)
            appendMetadata(os, t.pid,
                           "fleet" + std::to_string(t.pid), 0,
                           "process_name", first);
    }
    char buf[64];
    for (const auto &t : tracks) {
        for (const auto &s : t.samples) {
            if (!first)
                os << ",\n";
            first = false;
            std::snprintf(buf, sizeof buf, "%.3f",
                          hh::sim::cyclesToUs(s.ts));
            os << "{\"name\":\"" << t.name
               << "\",\"ph\":\"C\",\"ts\":" << buf
               << ",\"pid\":" << t.pid << ",\"args\":{\"value\":";
            std::snprintf(buf, sizeof buf, "%.9g", s.value);
            os << buf << "}}";
        }
    }
    os << "\n]}\n";
    return os.str();
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<ServerTrace> &traces)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string body = chromeTraceJson(traces);
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    return ok;
}

} // namespace hh::trace
