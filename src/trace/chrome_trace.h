/**
 * @file
 * Chrome trace_event JSON exporter.
 *
 * Renders tracer events in the Trace Event Format understood by
 * chrome://tracing and Perfetto (JSON object form with a
 * "traceEvents" array). Each simulated server becomes a process
 * (pid); cores and per-VM request lanes become threads (tid) named
 * via metadata events.
 *
 * The output is canonical: events are ordered by (timestamp, pid,
 * original order), so two runs of the same experiment produce
 * byte-identical files regardless of thread-pool worker count — the
 * property the determinism tests assert.
 */

#ifndef HH_TRACE_CHROME_TRACE_H
#define HH_TRACE_CHROME_TRACE_H

#include <string>
#include <vector>

#include "trace/trace.h"

namespace hh::trace {

/** One server's worth of events, tagged with its Chrome pid. */
struct ServerTrace
{
    unsigned pid = 0;
    std::vector<Event> events;
    std::uint64_t dropped = 0; //!< Ring-buffer overwrites.
};

/**
 * Render traces as a Chrome trace_event JSON document.
 */
std::string chromeTraceJson(const std::vector<ServerTrace> &traces);

/** One sample of a counter track. */
struct CounterSample
{
    hh::sim::Cycles ts = 0;
    double value = 0;
};

/**
 * One named counter series, rendered as a Chrome counter track
 * ("ph":"C") under process @p pid. Used by the telemetry plane (PR 7)
 * to plot fleet time series (harvest intensity, epoch P99, batch
 * absorption) alongside the span traces.
 */
struct CounterTrack
{
    unsigned pid = 0;
    std::string name;
    std::vector<CounterSample> samples;
};

/**
 * Render counter tracks as a Chrome trace_event JSON document. Tracks
 * are emitted in the given order, samples in the given order within
 * each track, values as %.9g — callers that build tracks
 * deterministically therefore get byte-identical documents.
 */
std::string
chromeCounterJson(const std::vector<CounterTrack> &tracks);

/** Write chromeTraceJson() to @p path; false on I/O failure. */
bool writeChromeTrace(const std::string &path,
                      const std::vector<ServerTrace> &traces);

} // namespace hh::trace

#endif // HH_TRACE_CHROME_TRACE_H
