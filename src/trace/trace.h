/**
 * @file
 * Ring-buffered per-request span tracing and core/VM transition
 * timelines (PR 2 observability layer).
 *
 * The tracer records fixed-size POD events: request-lifecycle spans
 * (arrival -> RQ enqueue -> QM dispatch -> core execute ->
 * completion, with cause tags for context-switch and harvest-flush
 * stalls) on per-VM tracks, and the core transition timeline (every
 * lend, reclaim, flush, restore) on per-core tracks. Events are
 * exported as Chrome trace_event JSON (chrome_trace.h) so they open
 * directly in chrome://tracing or Perfetto.
 *
 * Cost model: when tracing is disabled the tracer is simply not
 * constructed — hot paths pay one branch on a cached pointer. When
 * enabled, recording is a bounds check plus a 32-byte store into a
 * preallocated ring; the ring overwrites its oldest events rather
 * than growing, so memory stays bounded on any run length.
 *
 * Span accounting (openSpan/closeSpan) exists to make lifecycle bugs
 * observable: an orphaned request or a double-completed core
 * transition (the PR-1 lend/reclaim race) shows up as a nonzero
 * openSpans()/unbalancedCloses() at end of simulation instead of a
 * silent hang.
 */

#ifndef HH_TRACE_TRACE_H
#define HH_TRACE_TRACE_H

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "snapshot/archive.h"

namespace hh::trace {

/** What one trace event describes. */
enum class EventType : std::uint8_t
{
    // Request lifecycle (track = kRequestTrackBase + vm).
    RequestSpan,    //!< X: arrival -> completion.
    QueueWait,      //!< X: ready -> dispatch (queueing delay).
    CtxSwitchStall, //!< X: context save/restore on dispatch.
    ExecSegment,    //!< X: one segment executing on a core.
    IoBlocked,      //!< X: blocked on a synchronous backend RPC.
    RqEnqueue,      //!< i: request entered the hardware RQ.
    Dispatch,       //!< i: QM handed the request to a core.

    // Core/VM transition timeline (track = core id).
    LendTransition,    //!< X: Primary -> Harvest reassignment.
    ReclaimTransition, //!< X: Harvest -> Primary reassignment.
    HarvestFlush,      //!< X: cache flush portion of a transition.
    HarvestSlice,      //!< X: a Harvest vCPU slice executing.
    Lend,              //!< i: lend decision.
    Reclaim,           //!< i: reclaim interrupt.
    Preempt,           //!< i: harvest slice preempted.
    Restore,           //!< i: core handed back to its Primary VM.
    LendCancelled,     //!< i: in-flight lend cancelled by a reclaim.
};

/** One ring-buffer record (POD; 32 bytes). */
struct Event
{
    hh::sim::Cycles ts = 0;  //!< Start time (cycles).
    hh::sim::Cycles dur = 0; //!< Duration; 0 for instant events.
    std::uint64_t id = 0;    //!< Request / slice / core id.
    std::uint32_t track = 0; //!< Chrome tid: core id or VM track.
    EventType type = EventType::RequestSpan;

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(ts);
        ar.io(dur);
        ar.io(id);
        ar.io(track);
        ar.io(type);
    }
};

/** Request tracks start here; track = base + vm id. */
inline constexpr std::uint32_t kRequestTrackBase = 1000;

/** Human-readable event name for exporters. */
const char *eventName(EventType t);

/** Chrome trace category ("request" or "transition"). */
const char *eventCategory(EventType t);

/** Stall-cause tag, or nullptr when the event carries none. */
const char *eventCause(EventType t);

/** True for duration ("X") events, false for instants ("i"). */
bool eventIsSpan(EventType t);

/**
 * The per-server tracer.
 */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 17;

    /** @param capacity Ring capacity in events (> 0). */
    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    /**
     * Runtime toggle. Callers are expected to cache the enabled
     * state (or the Tracer pointer itself) and branch on it so the
     * disabled path costs one predictable branch.
     */
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /** Record one event (dropped silently while disabled). */
    void record(EventType type, hh::sim::Cycles ts, hh::sim::Cycles dur,
                std::uint32_t track, std::uint64_t id);

    /** Record an instant event. */
    void
    instant(EventType type, hh::sim::Cycles ts, std::uint32_t track,
            std::uint64_t id)
    {
        record(type, ts, 0, track, id);
    }

    /** @name Span lifecycle accounting @{ */

    /** Note a logical span opening under @p key. */
    void openSpan(std::uint64_t key);

    /**
     * Note a span closing. A close without a matching open counts as
     * unbalanced (a double-completion bug) instead of underflowing.
     */
    void closeSpan(std::uint64_t key);

    /** Spans opened but never closed (0 at a clean end-of-sim). */
    std::size_t openSpans() const;

    /** Closes that had no matching open (0 when lifecycles are sane). */
    std::uint64_t unbalancedCloses() const { return unbalanced_; }
    /** @} */

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }

    /** Events overwritten by ring wraparound. */
    std::uint64_t dropped() const { return dropped_; }

    /** Buffered events, oldest first. */
    std::vector<Event> events() const;

    /** Drop all buffered events and span accounting. */
    void clear();

    /**
     * Save/restore the buffered events plus span accounting. The
     * ring is saved in logical (oldest-first) order and restored
     * normalized to slots 0..n-1; the physical write position is not
     * preserved, but the logical event sequence — which is all any
     * exporter observes — is byte-identical before and after.
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(enabled_);
        std::vector<Event> evs;
        if (ar.saving())
            evs = events();
        ar.io(evs);
        if (ar.loading()) {
            const std::size_t cap = ring_.size();
            size_ = std::min(evs.size(), cap);
            std::copy(evs.begin(), evs.begin() + size_, ring_.begin());
            head_ = cap ? size_ % cap : 0;
        }
        ar.io(dropped_);
        ar.io(open_);
        ar.io(unbalanced_);
    }

  private:
    bool enabled_ = true;
    std::vector<Event> ring_;
    std::size_t head_ = 0; //!< Next write slot.
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::unordered_map<std::uint64_t, std::uint32_t> open_;
    std::uint64_t unbalanced_ = 0;
};

} // namespace hh::trace

#endif // HH_TRACE_TRACE_H
