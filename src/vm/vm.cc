#include "vm/vm.h"

#include "sim/log.h"

namespace hh::vm {

std::vector<VmDesc>
defaultServerLayout(unsigned totalCores, unsigned primaryVms,
                    unsigned coresPerPrimary)
{
    if (primaryVms * coresPerPrimary >= totalCores)
        hh::sim::fatal("defaultServerLayout: no cores left for the "
                       "Harvest VM");
    std::vector<VmDesc> vms;
    unsigned next_core = 0;
    for (unsigned i = 0; i < primaryVms; ++i) {
        VmDesc vm;
        vm.id = i;
        vm.type = VmType::Primary;
        vm.name = "primary" + std::to_string(i);
        vm.asid = vm.id;
        for (unsigned c = 0; c < coresPerPrimary; ++c)
            vm.cores.push_back(next_core++);
        vms.push_back(std::move(vm));
    }
    VmDesc hv;
    hv.id = primaryVms;
    hv.type = VmType::Harvest;
    hv.name = "harvest";
    hv.asid = hv.id;
    while (next_core < totalCores)
        hv.cores.push_back(next_core++);
    vms.push_back(std::move(hv));
    return vms;
}

} // namespace hh::vm
