/**
 * @file
 * Software hypervisor cost model.
 *
 * Section 3 quantifies the costs this module encodes:
 *  - Moving a core across VMs under KVM takes ~5 ms: half spent
 *    detaching/attaching via cgroup hypercalls, half loading the new
 *    VM context.
 *  - SmartHarvest's optimized path reduces detach/attach to 100s of
 *    microseconds.
 *  - Flushing + invalidating a core's caches with wbinvd takes
 *    300-500 us (we add a fence so external caches complete too).
 *  - Software request dispatch pays queue polling, memory-mapped
 *    queue accesses with lock contention, and a process context
 *    switch.
 */

#ifndef HH_VM_HYPERVISOR_H
#define HH_VM_HYPERVISOR_H

#include <string>

#include "sim/rng.h"
#include "sim/time.h"
#include "snapshot/archive.h"
#include "stats/counter.h"

namespace hh::stats {
class MetricRegistry;
}

namespace hh::vm {

/** Which software reassignment implementation to charge. */
enum class ReassignImpl
{
    Kvm,       //!< Vanilla KVM cgroup detach/attach (~5 ms total).
    Optimized, //!< SmartHarvest-style optimized path (100s of us).
};

/**
 * Cost parameters for software scheduling and harvesting.
 */
struct SoftwareCosts
{
    /** KVM detach+attach hypercalls (both calls together). */
    hh::sim::Cycles kvmDetachAttach = hh::sim::msToCycles(2.5);
    /** KVM cross-VM context load. */
    hh::sim::Cycles kvmVmContextLoad = hh::sim::msToCycles(2.5);

    /** Optimized detach+attach (SmartHarvest). */
    hh::sim::Cycles optDetachAttach = hh::sim::usToCycles(150);
    /** Optimized cross-VM context load. */
    hh::sim::Cycles optVmContextLoad = hh::sim::usToCycles(100);

    /** wbinvd flush+invalidate latency range (uniform). */
    hh::sim::Cycles wbinvdMin = hh::sim::usToCycles(300);
    hh::sim::Cycles wbinvdMax = hh::sim::usToCycles(500);
    /** Fence waiting for external caches after wbinvd. */
    hh::sim::Cycles wbinvdFence = hh::sim::usToCycles(50);

    /** Software process (request-level) context switch: kernel
     *  scheduler pass, register/FPU state, vCPU bookkeeping. */
    hh::sim::Cycles processCtxSwitch = hh::sim::usToCycles(15);

    /** Mean interval between queue polls by an idle core. Idle VM
     *  vCPUs are typically halted; discovering work costs an IPI
     *  wake-up plus a scheduler pass, tens of microseconds. */
    hh::sim::Cycles pollInterval = hh::sim::usToCycles(50);

    /** One memory-mapped queue operation (cache-line ping-pong
     *  through the LLC plus DDIO interference). */
    hh::sim::Cycles queueOp = 3000;
    /** Extra cost per queue op when cores contend on the lock. */
    hh::sim::Cycles lockContention = 9000;
};

/**
 * Charges software costs; stateless except for the RNG used for the
 * wbinvd latency range.
 */
class Hypervisor
{
  public:
    explicit Hypervisor(const SoftwareCosts &costs, std::uint64_t seed);

    /** Total hypervisor cost to move a core between VMs. */
    hh::sim::Cycles reassignCost(ReassignImpl impl) const;

    /** Detach/attach component only. */
    hh::sim::Cycles detachAttachCost(ReassignImpl impl) const;

    /** VM context-load component only. */
    hh::sim::Cycles vmContextLoadCost(ReassignImpl impl) const;

    /** One wbinvd + fence full flush (randomized in range). */
    hh::sim::Cycles wbinvdCost();

    /** Dispatch-side polling delay for an idle software core. */
    hh::sim::Cycles pollDelay();

    /**
     * Acquire the hypervisor's global reassignment lock (§4.1.1:
     * a conventional detach/attach acquires a lock, serializing
     * concurrent core moves; HardHarvest's decentralized QMs avoid
     * this). The lock is held for @p hold cycles.
     *
     * @param now  Current simulated time.
     * @param hold How long the caller holds the lock.
     * @return Cycles the caller waits before obtaining the lock.
     */
    hh::sim::Cycles acquireReassignLock(hh::sim::Cycles now,
                                        hh::sim::Cycles hold);

    const SoftwareCosts &costs() const { return costs_; }

    /** @name Statistics @{ */
    /** wbinvd full flushes charged. */
    std::uint64_t wbinvdCount() const { return wbinvds_.value(); }
    /** Reassignment-lock acquisitions. */
    std::uint64_t lockAcquisitions() const
    {
        return lock_acquisitions_.value();
    }
    /** Total cycles spent waiting on the reassignment lock. */
    std::uint64_t lockWaitCycles() const
    {
        return lock_wait_cycles_.value();
    }

    /**
     * Register "<prefix>.wbinvd", "<prefix>.lock.acquisitions" and
     * "<prefix>.lock.wait_cycles".
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix);
    /** @} */

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(rng_);
        ar.io(lock_free_at_);
        ar.io(wbinvds_);
        ar.io(lock_acquisitions_);
        ar.io(lock_wait_cycles_);
    }

  private:
    SoftwareCosts costs_;
    hh::sim::Rng rng_;
    hh::sim::Cycles lock_free_at_ = 0;
    hh::stats::Counter wbinvds_{"hv.wbinvd"};
    hh::stats::Counter lock_acquisitions_{"hv.lock.acquisitions"};
    hh::stats::Counter lock_wait_cycles_{"hv.lock.wait_cycles"};
};

} // namespace hh::vm

#endif // HH_VM_HYPERVISOR_H
