/**
 * @file
 * SmartHarvest-like software core-harvesting policy.
 *
 * Mirrors the state-of-the-art software scheme (§2.2, §3): a
 * user-space agent periodically monitors per-Primary-VM core
 * utilization, predicts near-future demand from recent history, and
 * lends predicted-idle cores to the Harvest VM. Because software
 * reassignment is slow, the agent keeps an emergency buffer of idle
 * cores per VM that is never lent, so a Primary burst can be absorbed
 * without waiting for a reassignment. Reclaim is on demand.
 */

#ifndef HH_VM_SW_HARVEST_H
#define HH_VM_SW_HARVEST_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "snapshot/archive.h"

namespace hh::vm {

/**
 * Policy parameters.
 */
struct SwHarvestConfig
{
    /** Agent wake-up period. */
    hh::sim::Cycles agentPeriod = hh::sim::usToCycles(100);

    /** Idle cores per Primary VM never lent out. Software
     *  reassignment is slow, so SmartHarvest keeps stand-by cores
     *  that Primary bursts can claim without a reassignment. */
    unsigned emergencyBuffer = 2;

    /** A core must have been idle this long before it is lendable. */
    hh::sim::Cycles idleThreshold = hh::sim::usToCycles(50);

    /** EWMA smoothing for the per-VM busy-core prediction. */
    double ewmaAlpha = 0.3;

    /**
     * Minimum quiet time after a reclaim before the agent lends a
     * core of that VM again. Scaled up with the reassignment cost
     * by the server (thrash avoidance; the paper's motivation setup
     * observes only 11-36 KVM reassignments per second).
     */
    hh::sim::Cycles reclaimBackoff = hh::sim::usToCycles(500);
};

/**
 * The lending decision logic of the software agent.
 */
class SmartHarvestPolicy
{
  public:
    explicit SmartHarvestPolicy(const SwHarvestConfig &cfg = {});

    /**
     * Record a utilization observation for a VM at an agent tick.
     *
     * @param vm        Primary VM id.
     * @param busyCores Cores of the VM currently executing requests.
     */
    void observe(std::uint32_t vm, double busyCores);

    /**
     * How many cores of @p vm the agent may lend right now.
     *
     * @param vm         Primary VM id.
     * @param boundCores Cores bound to the VM.
     * @param idleCores  Of those, currently idle (not lent, not busy).
     * @param idleLongEnough Idle cores past the idle threshold.
     */
    unsigned lendableCores(std::uint32_t vm, unsigned boundCores,
                           unsigned idleCores,
                           unsigned idleLongEnough) const;

    /** Predicted busy cores for a VM (EWMA of observations). */
    double predictedBusy(std::uint32_t vm) const;

    const SwHarvestConfig &config() const { return cfg_; }

    void serialize(hh::snap::Archive &ar) { ar.io(ewma_); }

  private:
    SwHarvestConfig cfg_;
    std::unordered_map<std::uint32_t, double> ewma_;
};

} // namespace hh::vm

#endif // HH_VM_SW_HARVEST_H
