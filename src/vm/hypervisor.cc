#include "vm/hypervisor.h"

#include <algorithm>

#include "stats/registry.h"

namespace hh::vm {

using hh::sim::Cycles;

Hypervisor::Hypervisor(const SoftwareCosts &costs, std::uint64_t seed)
    : costs_(costs), rng_(seed, 0x4B56ULL)
{
}

Cycles
Hypervisor::detachAttachCost(ReassignImpl impl) const
{
    return impl == ReassignImpl::Kvm ? costs_.kvmDetachAttach
                                     : costs_.optDetachAttach;
}

Cycles
Hypervisor::vmContextLoadCost(ReassignImpl impl) const
{
    return impl == ReassignImpl::Kvm ? costs_.kvmVmContextLoad
                                     : costs_.optVmContextLoad;
}

Cycles
Hypervisor::reassignCost(ReassignImpl impl) const
{
    return detachAttachCost(impl) + vmContextLoadCost(impl);
}

Cycles
Hypervisor::wbinvdCost()
{
    wbinvds_.inc();
    const auto span =
        static_cast<double>(costs_.wbinvdMax - costs_.wbinvdMin);
    return costs_.wbinvdMin +
           static_cast<Cycles>(rng_.uniform() * span) +
           costs_.wbinvdFence;
}

Cycles
Hypervisor::acquireReassignLock(Cycles now, Cycles hold)
{
    const Cycles start = std::max(now, lock_free_at_);
    lock_free_at_ = start + hold;
    lock_acquisitions_.inc();
    lock_wait_cycles_.inc(start - now);
    return start - now;
}

Cycles
Hypervisor::pollDelay()
{
    // Idle cores poll periodically; a ready request waits on average
    // half the interval, exponentially distributed for variability.
    return static_cast<Cycles>(rng_.exponential(
        static_cast<double>(costs_.pollInterval) / 2.0));
}

void
Hypervisor::registerMetrics(hh::stats::MetricRegistry &reg,
                            const std::string &prefix)
{
    reg.registerCounter(prefix + ".wbinvd", wbinvds_);
    reg.registerCounter(prefix + ".lock.acquisitions",
                        lock_acquisitions_);
    reg.registerCounter(prefix + ".lock.wait_cycles",
                        lock_wait_cycles_);
}

} // namespace hh::vm
