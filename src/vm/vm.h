/**
 * @file
 * Virtual machine descriptors.
 *
 * Two VM types (§2.2): Primary VMs run latency-critical microservices
 * with a fixed core allocation; the Harvest VM runs batch work,
 * starts with its own cores, and grows by harvesting idle Primary
 * cores. Harvest VMs are configured with as many vCPUs as the server
 * has pCPUs (§4.1.5) so they can expand without software changes.
 */

#ifndef HH_VM_VM_H
#define HH_VM_VM_H

#include <cstdint>
#include <string>
#include <vector>

namespace hh::vm {

/** VM flavor. */
enum class VmType
{
    Primary,
    Harvest,
};

/**
 * Static description of one VM on a server.
 */
struct VmDesc
{
    std::uint32_t id = 0;
    VmType type = VmType::Primary;
    std::string name;

    /** Core ids bound to this VM at creation. */
    std::vector<unsigned> cores;

    /** Address-space id for cache keys (== id by convention). */
    std::uint32_t asid = 0;

    bool isPrimary() const { return type == VmType::Primary; }
};

/**
 * Build the evaluation's per-server VM layout (§5): 8 Primary VMs of
 * 4 cores each plus one Harvest VM with the remaining 4 cores.
 *
 * @param totalCores    Cores in the server (36).
 * @param primaryVms    Number of Primary VMs (8).
 * @param coresPerPrimary Cores per Primary VM (4).
 */
std::vector<VmDesc> defaultServerLayout(unsigned totalCores = 36,
                                        unsigned primaryVms = 8,
                                        unsigned coresPerPrimary = 4);

} // namespace hh::vm

#endif // HH_VM_VM_H
