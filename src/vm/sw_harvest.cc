#include "vm/sw_harvest.h"

#include <algorithm>
#include <cmath>

namespace hh::vm {

SmartHarvestPolicy::SmartHarvestPolicy(const SwHarvestConfig &cfg)
    : cfg_(cfg)
{
}

void
SmartHarvestPolicy::observe(std::uint32_t vm, double busyCores)
{
    auto [it, inserted] = ewma_.try_emplace(vm, busyCores);
    if (!inserted) {
        it->second = cfg_.ewmaAlpha * busyCores +
                     (1.0 - cfg_.ewmaAlpha) * it->second;
    }
}

double
SmartHarvestPolicy::predictedBusy(std::uint32_t vm) const
{
    const auto it = ewma_.find(vm);
    return it == ewma_.end() ? 0.0 : it->second;
}

unsigned
SmartHarvestPolicy::lendableCores(std::uint32_t vm, unsigned boundCores,
                                  unsigned idleCores,
                                  unsigned idleLongEnough) const
{
    // Predicted spare capacity beyond what is busy now plus the
    // emergency buffer.
    const double predicted = predictedBusy(vm);
    const auto needed = static_cast<unsigned>(std::ceil(predicted)) +
                        cfg_.emergencyBuffer;
    if (boundCores <= needed)
        return 0;
    const unsigned spare = boundCores - needed;
    return std::min({spare, idleCores, idleLongEnough});
}

} // namespace hh::vm
