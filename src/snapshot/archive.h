/**
 * @file
 * Bidirectional binary archive for deterministic snapshot/restore.
 *
 * One `serialize(Archive &)` method per component both saves and
 * loads, so the two directions cannot drift apart: the archive's mode
 * decides whether each `io()` call writes the value out or reads it
 * back. The encoding is fixed-width little-endian (the simulator only
 * targets little-endian hosts); doubles travel as their IEEE-754 bit
 * pattern so restored values are bit-exact, which the byte-identity
 * contract of the checkpoint subsystem depends on.
 *
 * Unordered containers are serialized in sorted key order so the byte
 * stream is a pure function of the *logical* state, independent of
 * hash-table iteration order.
 *
 * Errors (truncated input, section marker mismatch) latch a flag and
 * message instead of throwing; callers check `ok()` once at the end.
 * The library is dependency-free so the lowest-level simulator code
 * can link it.
 */

#ifndef HH_SNAPSHOT_ARCHIVE_H
#define HH_SNAPSHOT_ARCHIVE_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace hh::snap {

class Archive
{
  public:
    /** An archive that serializes into an internal buffer. */
    static Archive forSave() { return Archive(Mode::Save); }

    /** An archive that deserializes from @p bytes. */
    static Archive
    forLoad(std::vector<std::uint8_t> bytes)
    {
        Archive a(Mode::Load);
        a.buf_ = std::move(bytes);
        return a;
    }

    bool saving() const { return mode_ == Mode::Save; }
    bool loading() const { return mode_ == Mode::Load; }

    /** False once any io/section call failed; sticky. */
    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }

    /** Latch the first failure; later io() calls become no-ops. */
    void
    fail(const std::string &msg)
    {
        if (ok_) {
            ok_ = false;
            error_ = msg;
        }
    }

    /** Take the serialized bytes (save mode, after serializing). */
    std::vector<std::uint8_t> take() { return std::move(buf_); }

    /** Unread bytes (load mode). */
    std::size_t remaining() const { return buf_.size() - pos_; }

    /** True when every input byte was consumed (load mode). */
    bool atEnd() const { return pos_ == buf_.size(); }

    /**
     * Structure marker: written on save, verified on load. Sprinkled
     * between component sections so a reader/writer mismatch fails
     * loudly at the boundary instead of silently misparsing the rest
     * of the stream.
     */
    void
    section(std::uint32_t id, const char *what)
    {
        std::uint32_t v = id;
        io(v);
        if (loading() && ok_ && v != id) {
            fail(std::string("snapshot section mismatch at '") +
                 what + "'");
        }
    }

    /** @name Primitive values @{ */
    void
    io(bool &v)
    {
        std::uint8_t b = v ? 1 : 0;
        io(b);
        if (loading())
            v = b != 0;
    }

    void io(std::uint8_t &v) { fixed(v); }
    void io(std::uint16_t &v) { fixed(v); }
    void io(std::uint32_t &v) { fixed(v); }
    void io(std::uint64_t &v) { fixed(v); }
    void io(std::int32_t &v) { fixed(v); }
    void io(std::int64_t &v) { fixed(v); }

    void
    io(double &v)
    {
        std::uint64_t bits;
        if (saving())
            std::memcpy(&bits, &v, sizeof bits);
        io(bits);
        if (loading())
            std::memcpy(&v, &bits, sizeof v);
    }

    void
    io(std::string &s)
    {
        std::uint64_t n = s.size();
        io(n);
        if (loading()) {
            if (!boundCheck(n))
                return;
            s.resize(static_cast<std::size_t>(n));
        }
        if (n > 0)
            bytes(s.data(), static_cast<std::size_t>(n));
    }
    /** @} */

    /** @name Enums (via their underlying integer) @{ */
    template <typename E>
        requires std::is_enum_v<E>
    void
    io(E &e)
    {
        auto v = static_cast<std::int64_t>(
            static_cast<std::underlying_type_t<E>>(e));
        io(v);
        if (loading())
            e = static_cast<E>(
                static_cast<std::underlying_type_t<E>>(v));
    }
    /** @} */

    /** @name Objects exposing serialize(Archive &) @{ */
    template <typename T>
        requires requires(T &t, Archive &a) { t.serialize(a); }
    void
    io(T &t)
    {
        t.serialize(*this);
    }
    /** @} */

    /** @name Containers @{ */
    template <typename T>
    void
    io(std::vector<T> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (loading()) {
            if (!boundCheck(n))
                return;
            v.clear();
            v.resize(static_cast<std::size_t>(n));
        }
        for (auto &e : v) {
            if (!ok_)
                return;
            io(e);
        }
    }

    void
    io(std::vector<bool> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (loading()) {
            if (!boundCheck(n))
                return;
            v.assign(static_cast<std::size_t>(n), false);
        }
        for (std::size_t i = 0; i < v.size() && ok_; ++i) {
            bool b = v[i];
            io(b);
            if (loading())
                v[i] = b;
        }
    }

    template <typename T>
    void
    io(std::deque<T> &d)
    {
        std::uint64_t n = d.size();
        io(n);
        if (loading()) {
            if (!boundCheck(n))
                return;
            d.clear();
            d.resize(static_cast<std::size_t>(n));
        }
        for (auto &e : d) {
            if (!ok_)
                return;
            io(e);
        }
    }

    template <typename T, std::size_t N>
    void
    io(std::array<T, N> &a)
    {
        for (auto &e : a) {
            if (!ok_)
                return;
            io(e);
        }
    }

    template <typename A, typename B>
    void
    io(std::pair<A, B> &p)
    {
        io(p.first);
        io(p.second);
    }

    template <typename T>
    void
    io(std::optional<T> &o)
    {
        bool has = o.has_value();
        io(has);
        if (loading())
            o = has ? std::optional<T>(T{}) : std::nullopt;
        if (has)
            io(*o);
    }

    /** Unordered set, serialized in ascending key order. */
    template <typename K, typename H, typename Eq>
    void
    io(std::unordered_set<K, H, Eq> &s)
    {
        if (saving()) {
            std::vector<K> keys(s.begin(), s.end());
            std::sort(keys.begin(), keys.end());
            io(keys);
        } else {
            std::vector<K> keys;
            io(keys);
            s.clear();
            s.insert(keys.begin(), keys.end());
        }
    }

    /** Unordered map, serialized in ascending key order. */
    template <typename K, typename V, typename H, typename Eq>
    void
    io(std::unordered_map<K, V, H, Eq> &m)
    {
        if (saving()) {
            std::vector<K> keys;
            keys.reserve(m.size());
            for (const auto &kv : m)
                keys.push_back(kv.first);
            std::sort(keys.begin(), keys.end());
            std::uint64_t n = keys.size();
            io(n);
            for (const K &k : keys) {
                K key = k;
                io(key);
                io(m.at(k));
            }
        } else {
            std::uint64_t n = 0;
            io(n);
            m.clear();
            for (std::uint64_t i = 0; i < n && ok_; ++i) {
                K k{};
                io(k);
                V v{};
                io(v);
                m.emplace(std::move(k), std::move(v));
            }
        }
    }
    /** @} */

    /** Raw byte block (length managed by the caller). */
    void
    bytes(void *p, std::size_t n)
    {
        if (!ok_ || n == 0)
            return;
        if (saving()) {
            const auto *src = static_cast<const std::uint8_t *>(p);
            buf_.insert(buf_.end(), src, src + n);
        } else {
            if (remaining() < n) {
                fail("snapshot truncated: needed " +
                     std::to_string(n) + " bytes, " +
                     std::to_string(remaining()) + " left");
                return;
            }
            std::memcpy(p, buf_.data() + pos_, n);
            pos_ += n;
        }
    }

  private:
    enum class Mode { Save, Load };

    explicit Archive(Mode mode) : mode_(mode) {}

    template <typename T>
    void
    fixed(T &v)
    {
        bytes(&v, sizeof v);
    }

    /** Reject container sizes the remaining input cannot hold. */
    bool
    boundCheck(std::uint64_t n)
    {
        if (!ok_)
            return false;
        if (loading() && n > remaining()) {
            fail("snapshot corrupt: container of " +
                 std::to_string(n) + " elements exceeds " +
                 std::to_string(remaining()) + " remaining bytes");
            return false;
        }
        return true;
    }

    Mode mode_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace hh::snap

#endif // HH_SNAPSHOT_ARCHIVE_H
