/**
 * @file
 * Checkpoint file container: magic, format version, a human-readable
 * JSON manifest, and one opaque binary blob per server.
 *
 * The binary header fields are authoritative; the embedded manifest
 * JSON duplicates them for `jq`-style inspection of a checkpoint
 * without any tooling. Decoding validates the magic and the format
 * version *before* touching anything else, so loading a checkpoint
 * from a different build generation fails with a clear message
 * instead of misparsing bytes.
 */

#ifndef HH_SNAPSHOT_FILE_H
#define HH_SNAPSHOT_FILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace hh::snap {

/** Bumped whenever the serialized layout changes incompatibly. */
inline constexpr std::uint32_t kFormatVersion = 2;

/** 'HHCP' — HardHarvest CheckPoint. */
inline constexpr std::uint32_t kCheckpointMagic = 0x50434848u;

struct CheckpointFile
{
    std::uint32_t version = kFormatVersion;
    /** Canonical fingerprint of the full SystemConfig. */
    std::string configFingerprint;
    std::uint64_t servers = 0;
    std::uint64_t seed = 0;
    /** Simulated time at which every server blob was taken. */
    std::uint64_t savedAtCycles = 0;
    /** Comma-joined batch application names, one per server. */
    std::string batchApps;
    /** One serialized ServerSim per server, in server order. */
    std::vector<std::vector<std::uint8_t>> blobs;
};

/** The manifest JSON text embedded in (and derivable from) @p f. */
std::string manifestJson(const CheckpointFile &f);

/**
 * Serialize the container to bytes. Takes a mutable reference because
 * the bidirectional `Archive::io` calls are spelled once for both
 * directions; save mode leaves @p f unchanged.
 */
std::vector<std::uint8_t> encodeCheckpoint(CheckpointFile &f);

/**
 * Parse a container. Returns false and sets @p error on a bad magic,
 * a format-version mismatch, or truncated/corrupt input.
 */
bool decodeCheckpoint(const std::vector<std::uint8_t> &bytes,
                      CheckpointFile &out, std::string *error);

/** Write/read the container to/from a file (binary). */
bool writeCheckpointFile(const std::string &path, CheckpointFile &f,
                         std::string *error);
bool readCheckpointFile(const std::string &path, CheckpointFile &f,
                        std::string *error);

} // namespace hh::snap

#endif // HH_SNAPSHOT_FILE_H
