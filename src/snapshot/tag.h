/**
 * @file
 * Snapshot tags: the serializable identity of an in-flight event.
 *
 * Event callbacks are type-erased `InlineFunction` closures and cannot
 * be serialized. Instead, every event that can be live when a
 * checkpoint is taken carries a `SnapTag` describing *which* closure
 * it is (kind) and the values it captured (up to five integer args).
 * On restore, the owning component's re-arm hook maps the tag back to
 * an equivalent closure — see `EventQueue::serialize` and
 * `docs/SNAPSHOT.md` for the contract.
 *
 * The kind registry is central (this header) so tags stay unique
 * across components; a component adding a schedule site must add a
 * kind here and handle it in its re-arm hook. Saving a live *untagged*
 * event is a hard error, which is how coverage is enforced.
 */

#ifndef HH_SNAPSHOT_TAG_H
#define HH_SNAPSHOT_TAG_H

#include <cstdint>

#include "snapshot/archive.h"

namespace hh::snap {

struct SnapTag
{
    enum Kind : std::uint32_t
    {
        kNone = 0,         //!< Untagged; fatal if live at save time.
        // ServerSim request path:
        kArrival,          //!< a=vm
        kExecSegment,      //!< a=core, b=reqId
        kSegmentDone,      //!< a=core, b=reqId
        kIoResponse,       //!< a=vm, b=reqId
        // ServerSim harvesting:
        kLendDone,         //!< a=core (tracked in CoreCtx.pendingEvent)
        kLendDoneRace,     //!< a=core (untracked; fault injection)
        kHarvestSliceDone, //!< a=core
        kReclaimDone,      //!< a=core, b=vm, c=reassignCost, d=flushCost
        kAgentTick,        //!< software scheduling agent period
        kCoreIdle,         //!< a=core (run-start seeding)
        // Components with their own schedule sites:
        kNicDeliver,       //!< a=pktKind, b=dstVm, c=reqId, d=bytes, e=arrival
        kSamplerTick,      //!< MetricSampler period
        kFaultTick,        //!< FaultInjector period
        kTelemetryTick,    //!< ObservationView epoch period
        kPolicyTick,       //!< HarvestPolicy epoch period
        // Service-graph fleet coordination (src/svc/):
        kGraphWireArrive,  //!< a..e = packed Packet (multi-hop RPC)
        // Cache-capacity leasing (src/lease/):
        kLeaseTick,        //!< CacheLeaseManager grant/recall period
    };

    std::uint32_t kind = kNone;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint64_t d = 0;
    std::uint64_t e = 0;

    void
    serialize(Archive &ar)
    {
        ar.io(kind);
        ar.io(a);
        ar.io(b);
        ar.io(c);
        ar.io(d);
        ar.io(e);
    }
};

/** Convenience constructors keeping call sites one-liners. */
inline SnapTag
tag(SnapTag::Kind kind, std::uint64_t a = 0, std::uint64_t b = 0,
    std::uint64_t c = 0, std::uint64_t d = 0, std::uint64_t e = 0)
{
    return SnapTag{kind, a, b, c, d, e};
}

} // namespace hh::snap

#endif // HH_SNAPSHOT_TAG_H
