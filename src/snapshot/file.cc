#include "snapshot/file.h"

#include <cstdio>

#include "snapshot/archive.h"

namespace hh::snap {

namespace {

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    out += '"';
}

} // namespace

std::string
manifestJson(const CheckpointFile &f)
{
    std::string j = "{\n";
    j += "  \"format_version\": " + std::to_string(f.version) + ",\n";
    j += "  \"config_fingerprint\": ";
    appendJsonString(j, f.configFingerprint);
    j += ",\n";
    j += "  \"servers\": " + std::to_string(f.servers) + ",\n";
    j += "  \"seed\": " + std::to_string(f.seed) + ",\n";
    j += "  \"saved_at_cycles\": " + std::to_string(f.savedAtCycles) +
         ",\n";
    j += "  \"batch_apps\": ";
    appendJsonString(j, f.batchApps);
    j += "\n}\n";
    return j;
}

std::vector<std::uint8_t>
encodeCheckpoint(CheckpointFile &f)
{
    Archive ar = Archive::forSave();
    std::uint32_t magic = kCheckpointMagic;
    std::uint32_t version = f.version;
    ar.io(magic);
    ar.io(version);
    std::string manifest = manifestJson(f);
    ar.io(manifest);
    ar.io(f.configFingerprint);
    ar.io(f.servers);
    ar.io(f.seed);
    ar.io(f.savedAtCycles);
    ar.io(f.batchApps);
    ar.io(f.blobs);
    return ar.take();
}

bool
decodeCheckpoint(const std::vector<std::uint8_t> &bytes,
                 CheckpointFile &out, std::string *error)
{
    Archive ar = Archive::forLoad(bytes);
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    ar.io(magic);
    ar.io(version);
    if (!ar.ok() || magic != kCheckpointMagic) {
        if (error)
            *error = "not a HardHarvest checkpoint (bad magic)";
        return false;
    }
    if (version != kFormatVersion) {
        if (error)
            *error = "checkpoint format version " +
                     std::to_string(version) +
                     " is not supported by this build (expects " +
                     std::to_string(kFormatVersion) + ")";
        return false;
    }
    out.version = version;
    std::string manifest;
    ar.io(manifest); // human-readable copy; binary fields authoritative
    ar.io(out.configFingerprint);
    ar.io(out.servers);
    ar.io(out.seed);
    ar.io(out.savedAtCycles);
    ar.io(out.batchApps);
    ar.io(out.blobs);
    if (!ar.ok()) {
        if (error)
            *error = "corrupt checkpoint: " + ar.error();
        return false;
    }
    return true;
}

bool
writeCheckpointFile(const std::string &path, CheckpointFile &f,
                    std::string *error)
{
    const std::vector<std::uint8_t> bytes = encodeCheckpoint(f);
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    if (!fp) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), fp) == bytes.size();
    std::fclose(fp);
    if (!ok && error)
        *error = "short write to " + path;
    return ok;
}

bool
readCheckpointFile(const std::string &path, CheckpointFile &f,
                   std::string *error)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[65536];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, fp)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    std::fclose(fp);
    return decodeCheckpoint(bytes, f, error);
}

} // namespace hh::snap
