/**
 * @file
 * Pluggable harvest/reclaim policies (ROADMAP: "Pluggable harvest/
 * reclaim and partitioning policies").
 *
 * A `HarvestPolicy` observes the per-epoch `ObservationRow` feature
 * rows the telemetry plane materializes (src/stats/observation_view.h
 * — deliberately shaped as this input signature) and emits per-VM
 * `VmDecision`s: whether the VM's idle cores may be lent at all, how
 * eagerly blocked cores are harvested, how many idle cores are held
 * back as a reclaim guard, and how large the partitioned harvest
 * cache region is. The hypervisor/server applies decisions at epoch
 * boundaries; the lend/reclaim *mechanism* (transition costs,
 * flushes, RQ wiring) stays in src/cluster/server.cc.
 *
 * Four implementations ship:
 *  - `static`     — freezes today's SystemConfig knobs into one
 *                   immutable decision set; bit-identical to the
 *                   legacy inlined code path (regression-tested).
 *  - `hysteresis` — per-VM EWMA core-utilization thresholds with a
 *                   reclaim guard band between them.
 *  - `critical`   — k-means clustering of VMs by MPKI/occupancy with
 *                   way distribution across the clusters (after the
 *                   CAT framework's critical-aware policy).
 *  - `bandit`     — epsilon-greedy over lend-aggressiveness arms,
 *                   reward = batch per lent core-second minus a
 *                   P99-violation penalty (the same economics the
 *                   TelemetryHub reports fleet-wide).
 *
 * The selector string "legacy" is also accepted and means "no policy
 * object at all": the server keeps its pre-policy inlined reads of
 * the SystemConfig knobs. It exists so the StaticPolicy extraction
 * can be differentially tested against the original code path.
 *
 * Determinism contract: policies are plain deterministic state
 * machines over the observation stream (the bandit's exploration
 * draws come from a seeded, serialized Rng stream), and their full
 * state rides the 'HHCP' snapshot (section 0x16), so runs stay
 * byte-identical across worker counts and checkpoint save/load/
 * resume. See docs/POLICIES.md.
 */

#ifndef HH_POLICY_HARVEST_POLICY_H
#define HH_POLICY_HARVEST_POLICY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "snapshot/archive.h"
#include "stats/observation_view.h"

namespace hh::policy {

/** How eagerly a VM's blocked-on-I/O cores may be harvested. */
enum class BlockHarvestMode : std::uint32_t
{
    Never = 0,    //!< Harvest-on-termination semantics.
    Always = 1,   //!< Harvest-on-block semantics.
    /** Consult the server's blocked-time EWMA at lend time (the
     *  §4.1.5 adaptive extension). The EWMA is maintained and
     *  evaluated by the server because it updates at I/O block
     *  time, between policy epochs. */
    AdaptiveEwma = 2,
};

/**
 * Per-VM decision vector, consulted by the server at its existing
 * lend/reclaim decision sites and applied to the cache partition at
 * epoch boundaries.
 */
struct VmDecision
{
    /** Gate: may this VM's idle cores be lent at all? */
    bool lendAllowed = true;
    BlockHarvestMode blockMode = BlockHarvestMode::Always;
    /** Idle cores held back from lending (reclaim guard / burst buffer). */
    std::uint32_t emergencyBuffer = 0;
    /** Harvest-region size of the partitioned private caches. */
    double harvestWayFraction = 0.5;

    /** @name Cache-capacity leasing (src/lease/) @{ */
    /** Gate: may this VM lease cache ways to the batch VM? */
    bool cacheLendAllowed = false;
    /** Extra L2 harvest-way fraction on the lender's cores. */
    double cacheLendL2Fraction = 0.0;
    /** L3 partition ways offered to the batch VM (low ways first). */
    std::uint32_t cacheLendL3Ways = 0;
    /** @} */

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(lendAllowed);
        ar.io(blockMode);
        ar.io(emergencyBuffer);
        ar.io(harvestWayFraction);
        ar.io(cacheLendAllowed);
        ar.io(cacheLendL2Fraction);
        ar.io(cacheLendL3Ways);
    }
};

/**
 * Policy construction parameters, mirrored out of the cluster-level
 * SystemConfig by the server (src/policy does not depend on
 * src/cluster).
 */
struct PolicyConfig
{
    std::string kind = "static"; //!< Selector; see makeHarvestPolicy.
    std::uint32_t vmCount = 0;   //!< Primary VMs + the Harvest VM.
    std::uint32_t harvestVm = 0; //!< Id of the Harvest VM.
    std::uint64_t seed = 1;      //!< Experiment seed (bandit stream).

    /** @name Static knobs the extracted StaticPolicy freezes @{ */
    bool harvestOnBlock = true;
    bool adaptiveHarvest = false;
    unsigned hwEmergencyBuffer = 0;
    double harvestWayFraction = 0.5;
    /** @} */

    /** @name Cache-capacity leasing (mirrors cacheLend* knobs) @{ */
    bool cacheLendEnabled = false;
    double cacheLendL2WayFraction = 0.25;
    unsigned cacheLendL3Ways = 4;
    /** @} */

    /** @name Dynamic-policy parameters @{ */
    double lendUtil = 0.35;  //!< hysteresis: lend below this EWMA util
    /**
     * Hysteresis: arm the reclaim guard band strictly above this EWMA
     * utilization. Bound-core utilization saturates near 1 under the
     * paper's load, so the default 1.0 keeps the guard disarmed
     * (throughput-leaning); lowering it trades batch throughput for
     * fewer loan/reclaim cycles and primary tail latency.
     */
    double holdUtil = 1.0;
    double ewmaAlpha = 0.3;  //!< EWMA smoothing of epoch features
    unsigned clusters = 2;   //!< critical: k-means cluster count
    double epsilon = 0.1;    //!< bandit: exploration probability
    double p99TargetMs = 10.0; //!< bandit: epoch-P99 violation target
    double p99Penalty = 1.0;   //!< bandit: penalty weight per ms over
    /** @} */
};

/**
 * The policy interface. One instance per server; decisions index VM
 * ids in server layout order (primaries first, Harvest VM last).
 */
class HarvestPolicy
{
  public:
    virtual ~HarvestPolicy() = default;

    /** Selector name ("static", "hysteresis", ...). */
    virtual const char *name() const = 0;

    /**
     * Observe one materialized epoch row and update the decision
     * vector. Called once per policy epoch, strictly in epoch order.
     */
    virtual void observe(const hh::stats::ObservationRow &row) = 0;

    /**
     * Whether the policy consumes epoch rows at all. When false (the
     * static policy) the server schedules no policy tick and the
     * event stream is identical to the legacy path's.
     */
    virtual bool wantsEpochTick() const { return true; }

    /** Current decision for @p vm (falls back to the static decision
     *  for ids outside the layout, e.g. fault-injected ghost VMs). */
    const VmDecision &
    decision(std::uint32_t vm) const
    {
        return vm < decisions_.size() ? decisions_[vm] : fallback_;
    }

    std::uint32_t vmCount() const
    {
        return static_cast<std::uint32_t>(decisions_.size());
    }

    /**
     * Save/restore the decision vector plus derived state, so resumed
     * runs continue byte-identically ('HHCP' section 0x16).
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(decisions_);
        serializeState(ar);
    }

  protected:
    explicit HarvestPolicy(const PolicyConfig &cfg);

    /** Derived-state hook behind serialize(). */
    virtual void serializeState(hh::snap::Archive &ar) { (void)ar; }

    /** The decision the SystemConfig knobs describe (static seed). */
    static VmDecision staticDecision(const PolicyConfig &cfg);

    PolicyConfig cfg_;
    std::vector<VmDecision> decisions_;
    VmDecision fallback_;
};

/**
 * Build the policy selected by @p cfg.kind, or nullptr for "legacy"
 * (no policy object; the server keeps the inlined knob reads). On an
 * unknown selector returns nullptr with @p error set; "legacy"
 * leaves @p error empty.
 */
std::unique_ptr<HarvestPolicy>
makeHarvestPolicy(const PolicyConfig &cfg, std::string *error = nullptr);

/** All valid selector strings, "legacy" included. */
const std::vector<std::string> &harvestPolicyNames();

/** True when @p name is a valid selector. */
bool knownHarvestPolicy(const std::string &name);

} // namespace hh::policy

#endif // HH_POLICY_HARVEST_POLICY_H
