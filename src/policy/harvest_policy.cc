#include "policy/harvest_policy.h"

#include <algorithm>

#include "policy/policies.h"

namespace hh::policy {

HarvestPolicy::HarvestPolicy(const PolicyConfig &cfg) : cfg_(cfg)
{
    fallback_ = staticDecision(cfg);
    decisions_.assign(cfg.vmCount, fallback_);
}

VmDecision
HarvestPolicy::staticDecision(const PolicyConfig &cfg)
{
    VmDecision d;
    d.lendAllowed = true;
    d.blockMode = !cfg.harvestOnBlock ? BlockHarvestMode::Never
                  : cfg.adaptiveHarvest
                      ? BlockHarvestMode::AdaptiveEwma
                      : BlockHarvestMode::Always;
    d.emergencyBuffer = cfg.hwEmergencyBuffer;
    d.harvestWayFraction = cfg.harvestWayFraction;
    d.cacheLendAllowed = cfg.cacheLendEnabled;
    d.cacheLendL2Fraction =
        cfg.cacheLendEnabled ? cfg.cacheLendL2WayFraction : 0.0;
    d.cacheLendL3Ways = cfg.cacheLendEnabled ? cfg.cacheLendL3Ways : 0;
    return d;
}

// ---------------------------------------------------------------- static

StaticPolicy::StaticPolicy(const PolicyConfig &cfg) : HarvestPolicy(cfg)
{
}

void
StaticPolicy::observe(const hh::stats::ObservationRow &row)
{
    // Never called: wantsEpochTick() is false, so the server
    // schedules no policy tick for the static policy.
    (void)row;
}

// ------------------------------------------------------------ hysteresis

HysteresisPolicy::HysteresisPolicy(const PolicyConfig &cfg)
    : HarvestPolicy(cfg), ewma_(cfg.vmCount, 0.0),
      seeded_(cfg.vmCount, 0)
{
}

void
HysteresisPolicy::observe(const hh::stats::ObservationRow &row)
{
    const double a = cfg_.ewmaAlpha;
    for (const auto &f : row.vms) {
        if (f.vm >= decisions_.size() || f.vm == cfg_.harvestVm)
            continue;
        if (!seeded_[f.vm]) {
            ewma_[f.vm] = f.coreUtil;
            seeded_[f.vm] = 1;
        } else {
            ewma_[f.vm] = a * f.coreUtil + (1.0 - a) * ewma_[f.vm];
        }

        VmDecision &d = decisions_[f.vm];
        if (ewma_[f.vm] < cfg_.lendUtil) {
            // Idle VM: donate aggressively — no guard cores, widened
            // harvest region.
            d.lendAllowed = true;
            d.emergencyBuffer = 0;
            d.harvestWayFraction =
                std::min(0.75, cfg_.harvestWayFraction + 0.25);
            // Idle cores come with idle cache: offer the lease too.
            d.cacheLendAllowed = cfg_.cacheLendEnabled;
        } else if (ewma_[f.vm] > cfg_.holdUtil) {
            // Busy VM: reclaim guard band — keep one idle core back
            // so a burst is absorbed without a reclaim, and narrow
            // the harvest region.
            d.lendAllowed = true;
            d.emergencyBuffer =
                std::max(1u, cfg_.hwEmergencyBuffer);
            d.harvestWayFraction =
                std::max(0.25, cfg_.harvestWayFraction - 0.25);
            // Busy VM: recall its cache lease along with the guard.
            d.cacheLendAllowed = false;
        }
        // Inside [lendUtil, holdUtil]: hysteresis — keep the previous
        // decision so a VM hovering at one threshold does not flap
        // its partition and guard every epoch.
    }
}

void
HysteresisPolicy::serializeState(hh::snap::Archive &ar)
{
    ar.io(ewma_);
    ar.io(seeded_);
}

// --------------------------------------------------------------- factory

const std::vector<std::string> &
harvestPolicyNames()
{
    static const std::vector<std::string> kNames = {
        "legacy", "static", "hysteresis", "critical", "bandit"};
    return kNames;
}

bool
knownHarvestPolicy(const std::string &name)
{
    const auto &names = harvestPolicyNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<HarvestPolicy>
makeHarvestPolicy(const PolicyConfig &cfg, std::string *error)
{
    if (error)
        error->clear();
    if (cfg.kind == "legacy")
        return nullptr;
    if (cfg.kind == "static")
        return std::make_unique<StaticPolicy>(cfg);
    if (cfg.kind == "hysteresis")
        return std::make_unique<HysteresisPolicy>(cfg);
    if (cfg.kind == "critical")
        return std::make_unique<CriticalAwarePolicy>(cfg);
    if (cfg.kind == "bandit")
        return std::make_unique<BanditPolicy>(cfg);
    if (error) {
        *error = "unknown harvest policy \"" + cfg.kind +
                 "\" (expected legacy, static, hysteresis, critical "
                 "or bandit)";
    }
    return nullptr;
}

} // namespace hh::policy
